#!/usr/bin/env python3
"""Per-phase wall-time breakdown of a wlsms Chrome trace.

Reads the trace_event JSON written by `--trace-out` (or
obs::write_chrome_trace), groups the "X" complete events by span name, and
prints one row per name: event count, total wall time, and *self* time —
total minus the time covered by the span's direct children, computed from
the args.id / args.parent links the exporter embeds.

Merged traces from tools/trace_merge.py work too: span ids are scoped per
process, and when the trace covers more than one process each row is
prefixed with the process name from its process_name metadata record.

Usage:
    python3 tools/trace_summary.py run.trace.json

Exits non-zero on a missing, malformed, or empty trace, so CI can gate on
"the run actually produced spans".
"""

import json
import signal
import sys
from collections import defaultdict

# Die quietly when the output pipe closes (e.g. `... | head`).
signal.signal(signal.SIGPIPE, signal.SIG_DFL)


def load_events(path):
    """Returns ("X" events, {pid: process name}) from one trace file."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if not isinstance(document, dict) or "traceEvents" not in document:
        raise ValueError("not a Chrome trace: missing traceEvents")
    events = []
    processes = {}
    for event in document["traceEvents"]:
        if not isinstance(event, dict):
            continue
        if event.get("ph") == "M" and event.get("name") == "process_name":
            processes[event.get("pid", 0)] = event.get("args", {}).get(
                "name", "?")
        if event.get("ph") != "X":
            continue  # skips metadata and the merge tool's flow arrows
        for key in ("name", "ts", "dur"):
            if key not in event:
                raise ValueError(f"malformed event: missing {key!r}")
        events.append(event)
    return events, processes


def summarize(events, processes):
    """Returns [(name, (count, total_us, self_us))] sorted by total desc."""
    # Span ids are unique within a process; scope by pid so concatenated or
    # merged traces can never alias a parent across process boundaries.
    child_time = defaultdict(float)  # (pid, parent id) -> sum of child durs
    for event in events:
        parent = event.get("args", {}).get("parent", 0)
        if parent:
            child_time[(event.get("pid", 0), parent)] += float(event["dur"])

    multi = len({event.get("pid", 0) for event in events}) > 1
    rows = defaultdict(lambda: [0, 0.0, 0.0])
    for event in events:
        pid = event.get("pid", 0)
        duration = float(event["dur"])
        own = duration - child_time.get(
            (pid, event.get("args", {}).get("id")), 0.0)
        name = event["name"]
        if multi:
            label = processes.get(pid, f"pid {pid}").split(" [")[0]
            name = f"{label}: {name}"
        row = rows[name]
        row[0] += 1
        row[1] += duration
        row[2] += max(own, 0.0)
    return sorted(rows.items(), key=lambda item: item[1][1], reverse=True)


def main(argv):
    if len(argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    try:
        events, processes = load_events(argv[1])
    except (OSError, ValueError, json.JSONDecodeError) as error:
        print(f"trace_summary: {error}", file=sys.stderr)
        return 1
    if not events:
        print("trace_summary: trace contains no complete events",
              file=sys.stderr)
        return 1

    wall_us = max(e["ts"] + e["dur"] for e in events) - min(
        e["ts"] for e in events
    )
    rows = summarize(events, processes)

    name_width = max(len(name) for name, _ in rows)
    name_width = max(name_width, len("span"))
    header = (
        f"{'span':<{name_width}}  {'count':>7}  {'total [ms]':>11}  "
        f"{'self [ms]':>11}  {'self %':>7}"
    )
    print(header)
    print("-" * len(header))
    for name, (count, total_us, self_us) in rows:
        share = 100.0 * self_us / wall_us if wall_us > 0 else 0.0
        print(
            f"{name:<{name_width}}  {count:>7}  {total_us / 1e3:>11.3f}  "
            f"{self_us / 1e3:>11.3f}  {share:>6.1f}%"
        )
    print(
        f"\n{len(events)} spans over {wall_us / 1e3:.3f} ms of traced wall "
        "time (self % is relative to traced wall)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
