#!/usr/bin/env python3
"""Merge per-process wlsms traces into one time-aligned Perfetto timeline.

Each wlsms process writes its own Chrome trace_event file (`--trace-out`)
stamped with merge metadata: its random `trace_node` identity, its estimated
`clock_offset_us` to a reference process's clock, and `clock_reference` (the
trace_node of that reference). Workers learn their offset from the NTP-style
four-timestamp probe in the TCP handshake; serve clients from the
hello/welcome probe; the controller/daemon is its own reference (offset 0).

This script:
  1. loads every input trace and identifies the reference process (the one
     whose clock nobody else is — offset chains are followed transitively,
     so client -> daemon -> controller topologies align too);
  2. shifts every event's timestamps into the reference timebase;
  3. gives each process its own pid with a process_name metadata record;
  4. renumbers span ids so they cannot collide across processes, and
     resolves cross-process parent links (args.remote_trace /
     args.remote_parent) into ordinary args.parent references plus Perfetto
     flow events ("s"/"f"), so a request's spans connect visually across
     processes.

Usage:
    python3 tools/trace_merge.py -o merged.json a.trace.json b.trace.json ...

Exits non-zero on missing/malformed inputs or if no file can serve as the
reference timebase.
"""

import argparse
import json
import sys


def load_trace(path):
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if not isinstance(document, dict) or "traceEvents" not in document:
        raise ValueError(f"{path}: not a Chrome trace (missing traceEvents)")
    return document


def cumulative_offset(node, traces, seen=None):
    """Total shift (us) from `node`'s clock into the root reference clock,
    following clock_reference links transitively."""
    if seen is None:
        seen = set()
    if node in seen:  # defensive: a reference cycle has no root
        return 0.0
    seen.add(node)
    trace = traces.get(node)
    if trace is None:
        return 0.0
    reference = int(trace.get("clock_reference", 0))
    offset = float(trace.get("clock_offset_us", 0.0))
    if reference == 0 or reference == node:
        return 0.0
    return offset + cumulative_offset(reference, traces, seen)


def merge(documents):
    # Index by trace_node; a file without one (older exporter) gets a
    # synthetic negative node so it still merges, just without links.
    traces = {}
    for index, (path, document) in enumerate(documents):
        node = int(document.get("trace_node", 0)) or -(index + 1)
        if node in traces:
            raise ValueError(f"{path}: duplicate trace_node {node}")
        document["_path"] = path
        traces[node] = document

    merged = []
    id_maps = {}  # node -> {local span id -> global span id}
    next_id = 1
    for pid, (node, document) in enumerate(sorted(traces.items())):
        process = document.get("process", "wlsms")
        merged.append({
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": f"{process} [{document['_path']}]"},
        })
        shift = cumulative_offset(node, traces)
        id_map = {}
        for event in document["traceEvents"]:
            if not isinstance(event, dict) or event.get("ph") != "X":
                continue
            event = dict(event)
            args = dict(event.get("args", {}))
            local_id = int(args.get("id", 0))
            if local_id and local_id not in id_map:
                id_map[local_id] = next_id
                next_id += 1
            event["ts"] = float(event["ts"]) + shift
            event["pid"] = pid
            args["id"] = id_map.get(local_id, 0)
            args["node"] = node
            event["args"] = args
            merged.append(event)
        id_maps[node] = id_map

    # Second pass: remap local parents, resolve remote ones, emit flows.
    flows = []
    flow_id = 1
    unresolved = 0
    for event in merged:
        if event.get("ph") != "X":
            continue
        args = event["args"]
        node = args["node"]
        parent = int(args.get("parent", 0))
        args["parent"] = id_maps[node].get(parent, 0)
        remote_trace = int(args.pop("remote_trace", 0))
        remote_parent = int(args.pop("remote_parent", 0))
        if remote_trace == 0:
            continue
        resolved = id_maps.get(remote_trace, {}).get(remote_parent, 0)
        if resolved == 0:
            unresolved += 1
            continue
        args["parent"] = resolved
        # Perfetto flow: an arrow from the originating span to this one.
        origin = next(
            e for e in merged
            if e.get("ph") == "X" and e["args"]["id"] == resolved
        )
        for phase, source in (("s", origin), ("f", event)):
            flows.append({
                "name": "request",
                "cat": "wlsms",
                "ph": phase,
                "id": flow_id,
                "ts": source["ts"],
                "pid": source["pid"],
                "tid": source["tid"],
                **({"bp": "e"} if phase == "f" else {}),
            })
        flow_id += 1

    return {
        "traceEvents": merged + flows,
        "displayTimeUnit": "ms",
        "merged": {
            "processes": len(documents),
            "unresolved_remote_parents": unresolved,
        },
    }


def main(argv):
    parser = argparse.ArgumentParser(
        description="merge per-process wlsms traces into one timeline")
    parser.add_argument("-o", "--output", required=True)
    parser.add_argument("inputs", nargs="+")
    options = parser.parse_args(argv[1:])
    if len(options.inputs) < 2:
        print("trace_merge: need at least two traces to merge",
              file=sys.stderr)
        return 2
    try:
        documents = [(path, load_trace(path)) for path in options.inputs]
        result = merge(documents)
    except (OSError, ValueError, json.JSONDecodeError) as error:
        print(f"trace_merge: {error}", file=sys.stderr)
        return 1
    with open(options.output, "w", encoding="utf-8") as handle:
        json.dump(result, handle)
    spans = sum(1 for e in result["traceEvents"] if e.get("ph") == "X")
    print(
        f"merged {len(documents)} traces -> {options.output} "
        f"({spans} spans, {result['merged']['unresolved_remote_parents']} "
        "unresolved remote parents)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
