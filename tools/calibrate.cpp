// Development tool: scans the substrate's Fermi energy and reports the
// extracted exchange constants, used to fix the defaults in
// fe_parameters.hpp. Not part of the shipped build; compile by hand.
#include <cstdio>

#include "common/rng.hpp"
#include "lattice/structure.hpp"
#include "lsms/exchange.hpp"
#include "lsms/fe_parameters.hpp"
#include "lsms/solver.hpp"

using namespace wlsms;

int main() {
  const lattice::Structure cell = lattice::make_fe_supercell(2);
  std::printf("cell atoms: %zu\n", cell.size());
  std::printf("LIZ(11.5) size: %zu\n",
              cell.neighbors_within(0, 11.5).size() + 1);

  for (double ef : {0.25, 0.30, 0.35, 0.40, 0.42, 0.45, 0.50, 0.55, 0.60}) {
    lsms::LsmsParameters params = lsms::fe_lsms_parameters_fast();
    params.scattering.fermi_energy = ef;
    lsms::LsmsSolver solver(cell, params);
    Rng rng(42);
    const lsms::ExtractedExchange ex = lsms::extract_exchange(solver, 2, 24, rng);
    std::printf("EF=%.2f  J1=%+.4e  J2=%+.4e  rms=%.2e  e0=%+.4f\n", ef,
                ex.shells[0].j, ex.shells[1].j, ex.fit_rms, ex.e0);
  }
  return 0;
}
