// Reproduces Fig. 6 of the paper: the specific heat c(T) for the periodic
// 16- and 250-atom iron systems, computed from the moments of the density
// of states (eq. 16), and the Curie temperatures read off the peaks.
// Paper values: Tc(16) ~ 670 K, Tc(250) ~ 980 K, bulk experiment 1050 K.
#include "bench_common.hpp"

#include "io/csv.hpp"
#include "io/table.hpp"

int main() {
  using namespace wlsms;
  bench::banner("Figure 6",
                "specific heat c(T) for 16 and 250 Fe atoms; transition "
                "temperatures 670 K and 980 K read off the peaks");

  const bench::ConvergedRun run16 = bench::converge_fe_dos(2);
  const bench::ConvergedRun run250 = bench::converge_fe_dos(5);

  const auto sweep16 = thermo::temperature_sweep(run16.table, 200.0, 3000.0, 57);
  const auto sweep250 =
      thermo::temperature_sweep(run250.table, 200.0, 3000.0, 57);

  io::CsvWriter csv("fig6_specific_heat.csv",
                    {"temperature_k", "c_16_ry_per_k", "c_250_ry_per_k"});
  io::TextTable table({"T [K]", "c (16 sites) [Ry/K]", "c (250 sites) [Ry/K]"});
  for (std::size_t i = 0; i < sweep16.size(); ++i) {
    csv.row({sweep16[i].temperature, sweep16[i].specific_heat,
             sweep250[i].specific_heat});
    if (i % 4 == 0)
      table.row({io::format_double(sweep16[i].temperature, 0),
                 io::format_double(sweep16[i].specific_heat * 1e4, 3) + "e-4",
                 io::format_double(sweep250[i].specific_heat * 1e4, 3) + "e-4"});
  }
  table.print();
  std::printf("full series written to %s\n", csv.path().c_str());

  const auto tc16 = thermo::estimate_curie_temperature(run16.table, 250, 3000);
  const auto tc250 =
      thermo::estimate_curie_temperature(run250.table, 250, 3000);

  io::TextTable summary({"system", "Tc (paper)", "Tc (ours)", "peak c [Ry/K]"});
  summary.row({"16 atoms", "670 K", io::format_double(tc16.tc, 0) + " K",
               io::format_double(tc16.peak_height * 1e4, 2) + "e-4"});
  summary.row({"250 atoms", "980 K", io::format_double(tc250.tc, 0) + " K",
               io::format_double(tc250.peak_height * 1e4, 2) + "e-4"});
  summary.row({"bulk (expt)", "1050 K", "-", "-"});
  std::printf("\n");
  summary.print();

  std::printf(
      "\nShape checks vs the paper:\n"
      " - finite-size ordering Tc(16) < Tc(250) < Tc(bulk): %s\n"
      " - 250-site peak sharper (higher, per atom) than 16-site: %s\n"
      " - Tc(250) within 10%% of the paper's 980 K (calibrated): %s\n",
      (tc16.tc < tc250.tc) ? "yes" : "NO",
      (tc250.peak_height / 250.0 > tc16.peak_height / 16.0) ? "yes" : "NO",
      (std::abs(tc250.tc - 980.0) < 98.0) ? "yes" : "NO");
  return 0;
}
