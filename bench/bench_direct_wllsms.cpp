// The paper's §IV performance experiment, executed for real on this host:
// Wang-Landau walkers driving *actual multiple-scattering energies* through
// the asynchronous master-slave stack, 20 WL steps per walker (exactly the
// paper's benchmark schedule: "each walker executes 20 WL steps, which is
// far fewer than a real simulation").
//
// This is the direct WL-LSMS mode of DESIGN.md §2 — no Heisenberg
// surrogate anywhere: every energy is a fresh per-atom LIZ factorization.
// Flops are measured by the kernel instrumentation (the PAPI analogue) and
// reported as this host's sustained rate, the per-core number that anchors
// the Table II projection.
#include "bench_common.hpp"

#include "comm/factory.hpp"
#include "io/table.hpp"
#include "lsms/solver.hpp"
#include "perf/flops.hpp"
#include "wl/driver.hpp"

int main() {
  using namespace wlsms;
  bench::banner("direct WL-LSMS (paper §IV schedule on this host)",
                "walkers execute 20 WL steps of real multiple-scattering "
                "energies through the asynchronous driver");

  // 16-atom cell at reduced LIZ fidelity (15-atom zones, 8 contour points):
  // the same code path as the paper's lmax=3 / 65-atom production runs,
  // scaled to one core.
  auto solver = std::make_shared<const lsms::LsmsSolver>(
      lattice::make_fe_supercell(2), lsms::fe_lsms_parameters_fast());
  const wl::LsmsEnergy energy(solver);
  std::printf("system: %zu atoms, %zu-atom LIZ, %.3f GFlop per energy "
              "evaluation (analytic)\n",
              solver->n_atoms(), solver->liz_size(0),
              static_cast<double>(solver->flops_per_energy()) / 1e9);

  constexpr std::size_t kWalkers = 4;
  constexpr std::uint64_t kStepsPerWalker = 20;

  // Energy window from quick substrate probes (FM reference to above the
  // random-configuration band).
  Rng probe_rng(2);
  const double e_fm =
      solver->energy(spin::MomentConfiguration::ferromagnetic(16));
  double e_rand_max = -1e300;
  for (int k = 0; k < 8; ++k)
    e_rand_max = std::max(
        e_rand_max,
        solver->energy(spin::MomentConfiguration::random(16, probe_rng)));

  wl::WangLandauConfig config;
  config.grid.e_min = e_fm - 0.002;
  config.grid.e_max = e_rand_max + 0.01;
  config.grid.bins = 64;
  config.grid.kernel_width_fraction = 0.5 / 64.0;
  config.n_walkers = kWalkers;
  config.max_steps = kWalkers * kStepsPerWalker;

  comm::EnergyServiceSpec spec;
  spec.kind = comm::ServiceKind::kAsyncThreads;
  spec.energy = &energy;
  spec.n_instances = 2;
  const std::unique_ptr<wl::EnergyService> instances =
      comm::make_energy_service(spec);

  perf::FlopWindow flops;
  perf::Timer timer;
  wl::WlDriver driver(16, *instances, config,
                      std::make_unique<wl::HalvingSchedule>(1.0, 1e-8),
                      Rng(7));
  const wl::DriverStats& stats = driver.run();
  const double seconds = timer.seconds();
  const double retired = static_cast<double>(flops.elapsed());

  io::TextTable table({"quantity", "value"});
  table.row({"WL walkers", std::to_string(kWalkers)});
  table.row({"WL steps (energy calculations)",
             std::to_string(stats.total_steps)});
  table.row({"accepted", std::to_string(stats.accepted_steps)});
  table.row({"wall time", io::format_double(seconds, 2) + " s"});
  table.row({"retired flops (measured)",
             io::format_double(retired / 1e9, 2) + " GFlop"});
  table.row({"sustained", io::format_flops(retired / seconds)});
  table.print();

  std::printf(
      "\nReading: this is the paper's benchmark loop running for real —\n"
      "asynchronous energy requests, out-of-order returns, kernel-level\n"
      "flop counting. The sustained per-core rate measured here is the\n"
      "quantity the paper reports as 75.8%% of the Opteron peak; Table II's\n"
      "petaflop number is this rate times 147,456 instance cores (see\n"
      "bench_table2).\n");
  return 0;
}
