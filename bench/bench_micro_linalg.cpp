// Microbenchmarks of the dense complex kernels that dominate LSMS runtime
// (paper §II-B: "the bulk of the calculation is done by ZGEMM in the
// evaluation of the local sub-block of the inverse of the real space KKR
// matrix"). Reports achieved GFlop/s per kernel and size, the per-core
// efficiency number behind the Table II projection.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "linalg/blas.hpp"
#include "linalg/lu.hpp"
#include "perf/flops.hpp"

namespace {

using namespace wlsms;

linalg::ZMatrix random_matrix(std::size_t n, Rng& rng) {
  linalg::ZMatrix m(n, n);
  for (std::size_t c = 0; c < n; ++c)
    for (std::size_t r = 0; r < n; ++r)
      m(r, c) = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  for (std::size_t d = 0; d < n; ++d) m(d, d) += linalg::Complex{4.0, 0.0};
  return m;
}

void BM_Zgemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const linalg::ZMatrix a = random_matrix(n, rng);
  const linalg::ZMatrix b = random_matrix(n, rng);
  linalg::ZMatrix c(n, n);
  for (auto _ : state) {
    linalg::zgemm({1.0, 0.0}, a, b, {0.0, 0.0}, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFlop/s"] = benchmark::Counter(
      static_cast<double>(perf::cost::zgemm(n, n, n)) * state.iterations() /
          1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Zgemm)->Arg(30)->Arg(65)->Arg(130)->Arg(192);

void BM_Zgetrf(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  const linalg::ZMatrix a = random_matrix(n, rng);
  for (auto _ : state) {
    linalg::LuFactorization lu(a);
    benchmark::DoNotOptimize(lu.packed().data());
  }
  state.counters["GFlop/s"] = benchmark::Counter(
      static_cast<double>(perf::cost::zgetrf(n)) * state.iterations() / 1e9,
      benchmark::Counter::kIsRate);
}
// 130 = the 65-atom-LIZ s-channel matrix; 30 = the fast-test zone.
BENCHMARK(BM_Zgetrf)->Arg(30)->Arg(65)->Arg(130)->Arg(192);

void BM_CentralColumnsSolve(benchmark::State& state) {
  // Factor once, then the two central-column solves of the tau block.
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  const linalg::LuFactorization lu(random_matrix(n, rng));
  std::vector<linalg::Complex> col(n);
  for (auto _ : state) {
    std::fill(col.begin(), col.end(), linalg::Complex{0.0, 0.0});
    col[0] = {1.0, 0.0};
    lu.solve_in_place(col.data());
    benchmark::DoNotOptimize(col.data());
  }
}
BENCHMARK(BM_CentralColumnsSolve)->Arg(130);

void BM_LogDet(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  const linalg::ZMatrix a = random_matrix(n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::log_det(a));
  }
}
BENCHMARK(BM_LogDet)->Arg(65)->Arg(130);

}  // namespace
