// Microbenchmarks of the dense complex kernels that dominate LSMS runtime
// (paper §II-B: "the bulk of the calculation is done by ZGEMM in the
// evaluation of the local sub-block of the inverse of the real space KKR
// matrix"). Reports achieved GFlop/s per kernel and size, the per-core
// efficiency number behind the Table II projection.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "linalg/blas.hpp"
#include "linalg/lu.hpp"
#include "perf/flops.hpp"

namespace {

using namespace wlsms;

linalg::ZMatrix random_matrix(std::size_t n, Rng& rng) {
  linalg::ZMatrix m(n, n);
  for (std::size_t c = 0; c < n; ++c)
    for (std::size_t r = 0; r < n; ++r)
      m(r, c) = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  for (std::size_t d = 0; d < n; ++d) m(d, d) += linalg::Complex{4.0, 0.0};
  return m;
}

// Packed, register-blocked production kernel.
void BM_Zgemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const linalg::ZMatrix a = random_matrix(n, rng);
  const linalg::ZMatrix b = random_matrix(n, rng);
  linalg::ZMatrix c(n, n);
  for (auto _ : state) {
    linalg::zgemm({1.0, 0.0}, a, b, {0.0, 0.0}, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFlop/s"] = benchmark::Counter(
      static_cast<double>(perf::cost::zgemm(n, n, n)) * state.iterations() /
          1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Zgemm)->Arg(30)->Arg(65)->Arg(130)->Arg(192);

// Cache-tiled triple-loop reference, for the packed-vs-naive headline.
void BM_ZgemmNaive(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const linalg::ZMatrix a = random_matrix(n, rng);
  const linalg::ZMatrix b = random_matrix(n, rng);
  linalg::ZMatrix c(n, n);
  for (auto _ : state) {
    linalg::zgemm_naive({1.0, 0.0}, a, b, {0.0, 0.0}, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFlop/s"] = benchmark::Counter(
      static_cast<double>(perf::cost::zgemm(n, n, n)) * state.iterations() /
          1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ZgemmNaive)->Arg(30)->Arg(65)->Arg(130)->Arg(192);

// Blocked right-looking factorization (panel + TRSM + GEMM trailing
// update); gemm_frac is the measured share of flops the trailing ZGEMMs
// retire.
void BM_Zgetrf(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  const linalg::ZMatrix a = random_matrix(n, rng);
  perf::FlopWindow window;
  for (auto _ : state) {
    linalg::LuFactorization lu(a, linalg::LuAlgorithm::kBlocked);
    benchmark::DoNotOptimize(lu.packed().data());
  }
  state.counters["GFlop/s"] = benchmark::Counter(
      static_cast<double>(
          linalg::zgetrf_flops(n, linalg::LuAlgorithm::kBlocked)) *
          state.iterations() / 1e9,
      benchmark::Counter::kIsRate);
  state.counters["gemm_frac"] = window.gemm_fraction();
}
// 130 = the 65-atom-LIZ s-channel matrix; 30 = the fast-test zone.
BENCHMARK(BM_Zgetrf)->Arg(30)->Arg(65)->Arg(130)->Arg(192);

// Reference rank-1-update loop, for the blocked-vs-unblocked headline.
void BM_ZgetrfUnblocked(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  const linalg::ZMatrix a = random_matrix(n, rng);
  for (auto _ : state) {
    linalg::LuFactorization lu(a, linalg::LuAlgorithm::kUnblocked);
    benchmark::DoNotOptimize(lu.packed().data());
  }
  state.counters["GFlop/s"] = benchmark::Counter(
      static_cast<double>(
          linalg::zgetrf_flops(n, linalg::LuAlgorithm::kUnblocked)) *
          state.iterations() / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ZgetrfUnblocked)->Arg(30)->Arg(65)->Arg(130)->Arg(192);

void BM_CentralColumnsSolve(benchmark::State& state) {
  // Factor once, then the two central-column solves of the tau block.
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  const linalg::LuFactorization lu(random_matrix(n, rng));
  std::vector<linalg::Complex> col(n);
  for (auto _ : state) {
    std::fill(col.begin(), col.end(), linalg::Complex{0.0, 0.0});
    col[0] = {1.0, 0.0};
    lu.solve_in_place(col.data());
    benchmark::DoNotOptimize(col.data());
  }
}
BENCHMARK(BM_CentralColumnsSolve)->Arg(130);

void BM_LogDet(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  const linalg::ZMatrix a = random_matrix(n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::log_det(a));
  }
}
BENCHMARK(BM_LogDet)->Arg(65)->Arg(130);

}  // namespace
