// Reproduces Fig. 7 of the paper: weak scaling of the WL-LSMS runtime over
// the number of walkers for a periodic 1024-atom iron cell, 20 WL steps per
// walker, from 10 walkers (10,248 cores) to 144 walkers (147,464 cores) —
// plus the strong-scaling series §IV describes in the text.
//
// Hardware substitution (DESIGN.md §2): the Cray XT5 runs are simulated by
// the discrete-event model, with the per-evaluation compute time from the
// lmax=3 / 65-atom-LIZ cost model and the master's per-result service time
// *measured* from the real asynchronous driver running on this host.
#include "bench_common.hpp"

#include "cluster/des.hpp"
#include "comm/factory.hpp"
#include "io/csv.hpp"
#include "io/table.hpp"
#include "wl/driver.hpp"

namespace {

// Measures the wall time the Wang-Landau master needs per processed result
// (acceptance test + DOS update + next trial) by running the real driver on
// a cheap energy function and dividing out the evaluation cost.
double measure_master_service_time() {
  using namespace wlsms;
  wl::HeisenbergEnergy energy = bench::fe_surrogate(2);
  comm::EnergyServiceSpec spec;
  spec.kind = comm::ServiceKind::kSynchronous;
  spec.energy = &energy;
  const std::unique_ptr<wl::EnergyService> service =
      comm::make_energy_service(spec);

  Rng window_rng(5);
  wl::WangLandauConfig config;
  config.grid = wl::thermal_window(
      energy, energy.model().ferromagnetic_energy(), 150.0, window_rng);
  config.n_walkers = 8;
  config.max_steps = 200000;

  perf::Timer timer;
  wl::WlDriver driver(16, *service, config,
                      std::make_unique<wl::HalvingSchedule>(1.0, 1e-8),
                      Rng(1));
  driver.run();
  const double total = timer.seconds();

  // Subtract the energy-evaluation share measured separately.
  Rng rng(2);
  auto cfg = spin::MomentConfiguration::random(16, rng);
  perf::Timer etimer;
  constexpr int kEvals = 200000;
  double sink = 0.0;
  for (int k = 0; k < kEvals; ++k) sink += energy.total_energy(cfg);
  const double eval_share =
      etimer.seconds() / kEvals * static_cast<double>(driver.stats().total_steps);
  (void)sink;
  const double service_time =
      (total - eval_share) / static_cast<double>(driver.stats().total_steps);
  return std::max(1e-7, service_time);
}

}  // namespace

int main() {
  using namespace wlsms;
  bench::banner("Figure 7",
                "weak scaling over WL walkers, 1024-atom cell, 20 steps per "
                "walker, 10248 -> 147464 cores (near-flat runtime)");

  cluster::MachineDescription machine = cluster::jaguar_xt5();
  machine.master_service_time_s = measure_master_service_time();
  std::printf("master service time measured on this host: %.1f us/result\n\n",
              machine.master_service_time_s * 1e6);

  cluster::JobDescription job;
  job.n_atoms = 1024;
  job.steps_per_walker = 20;
  job.fidelity.lmax = 3;
  job.fidelity.liz_atoms = 65;
  job.fidelity.contour_points = 20;

  const std::vector<std::size_t> walker_counts = {10, 25, 50, 75, 100, 125,
                                                  144};
  const auto weak = cluster::weak_scaling(machine, job, walker_counts);

  io::CsvWriter csv("fig7_weak_scaling.csv",
                    {"walkers", "cores", "runtime_s", "sustained_tflops"});
  io::TextTable table(
      {"WL walkers", "cores", "runtime [s]", "vs 10-walker", "sustained"});
  for (const cluster::SimulationResult& r : weak) {
    csv.row({static_cast<double>(r.n_walkers), static_cast<double>(r.cores),
             r.makespan_s, r.sustained_flops / 1e12});
    table.row({std::to_string(r.n_walkers), std::to_string(r.cores),
               io::format_double(r.makespan_s, 1),
               io::format_double(r.makespan_s / weak.front().makespan_s, 3),
               io::format_flops(r.sustained_flops)});
  }
  table.print();
  std::printf("full series written to %s\n", csv.path().c_str());

  const double worst = [&] {
    double w = 1.0;
    for (const auto& r : weak)
      w = std::max(w, r.makespan_s / weak.front().makespan_s);
    return w;
  }();
  std::printf("\nweak-scaling check: runtime flat to %.1f%% from 10 to 144 "
              "walkers (paper: \"close to optimal\")\n",
              (worst - 1.0) * 100.0);

  // Strong scaling (§IV text): fixed total sample count.
  std::printf("\nStrong scaling: 2880 total WL steps distributed over the "
              "walkers\n");
  const auto strong =
      cluster::strong_scaling(machine, job, 2880, {10, 20, 40, 80, 144});
  io::TextTable stable({"WL walkers", "runtime [s]", "speedup", "ideal"});
  for (const cluster::SimulationResult& r : strong) {
    stable.row({std::to_string(r.n_walkers),
                io::format_double(r.makespan_s, 1),
                io::format_double(strong.front().makespan_s / r.makespan_s, 2),
                io::format_double(static_cast<double>(r.n_walkers) / 10.0, 2)});
  }
  stable.print();
  return 0;
}
