// Extension of the paper's §III: the finite-size-scaling estimate of the
// *bulk* Curie temperature via Binder's fourth-order cumulant (Binder &
// Landau, PRB 30, 1477 (1984) — the paper's ref [1], announced for the
// follow-up publication: "an estimate [of] the true transition temperature
// ... using the finite size scaling techniques of (1)").
//
// U4(T, L) curves for 16- and 128-atom cells cross at a temperature free of
// the leading finite-size shift that separates the c-peaks of Fig. 6;
// the crossing is the bulk-Tc estimate.
#include "bench_common.hpp"

#include "io/csv.hpp"
#include "io/table.hpp"
#include "thermo/binder.hpp"

int main() {
  using namespace wlsms;
  bench::banner("extension: finite-size scaling (paper §III, ref [1])",
                "Binder-cumulant crossing estimates the bulk Curie "
                "temperature");

  std::vector<double> temperatures;
  for (double t = 700.0; t <= 1500.0; t += 100.0) temperatures.push_back(t);

  thermo::CumulantConfig config;
  config.thermalization_steps = 200000;
  config.measurement_steps = 600000;
  config.measure_interval = 16;

  const wl::HeisenbergEnergy energy16 = bench::fe_surrogate(2);   // 16 atoms
  const wl::HeisenbergEnergy energy128 = bench::fe_surrogate(4);  // 128 atoms
  Rng rng16(3);
  Rng rng128(4);
  const auto sweep16 =
      thermo::binder_cumulant_sweep(energy16, temperatures, config, rng16);
  const auto sweep128 =
      thermo::binder_cumulant_sweep(energy128, temperatures, config, rng128);

  io::CsvWriter csv("finite_size_binder.csv",
                    {"temperature_k", "u4_16", "u4_128"});
  io::TextTable table({"T [K]", "U4 (16 atoms)", "U4 (128 atoms)"});
  for (std::size_t i = 0; i < temperatures.size(); ++i) {
    csv.row({temperatures[i], sweep16[i].binder_u4, sweep128[i].binder_u4});
    table.row({io::format_double(temperatures[i], 0),
               io::format_double(sweep16[i].binder_u4, 4),
               io::format_double(sweep128[i].binder_u4, 4)});
  }
  table.print();
  std::printf("full series written to finite_size_binder.csv\n");

  const double crossing = thermo::binder_crossing(sweep16, sweep128);
  const bench::ConvergedRun run250 = bench::converge_fe_dos(5);
  const double tc250 =
      thermo::estimate_curie_temperature(run250.table, 250.0, 3000.0).tc;

  io::TextTable summary({"estimator", "Tc [K]"});
  summary.row({"c-peak, 16 atoms (finite-size shifted)", "see fig6"});
  summary.row({"c-peak, 250 atoms", io::format_double(tc250, 0)});
  summary.row({"Binder crossing 16/128 (bulk estimate)",
               crossing > 0.0 ? io::format_double(crossing, 0) : "no crossing"});
  summary.row({"bulk iron, experiment (paper)", "1050"});
  std::printf("\n");
  summary.print();

  std::printf(
      "\nReading: the cumulant crossing removes the leading finite-size\n"
      "shift of the small-cell c-peaks and lands consistent with the\n"
      "250-atom estimate — the scaling analysis the paper announces for its\n"
      "128/432-atom follow-up study.\n");
  return 0;
}
