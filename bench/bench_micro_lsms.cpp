// Microbenchmarks of the multiple-scattering energy engine: cost of one
// frozen-potential energy evaluation vs LIZ radius and contour resolution,
// plus the incremental-move path that mirrors the paper's communication
// locality.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "lattice/structure.hpp"
#include "lsms/exchange.hpp"
#include "lsms/fe_parameters.hpp"
#include "lsms/solver.hpp"
#include "perf/flops.hpp"

namespace {

using namespace wlsms;

void BM_LsmsEnergy_LizRadius(benchmark::State& state) {
  const double radius = static_cast<double>(state.range(0)) / 10.0;
  lsms::LsmsParameters params = lsms::fe_lsms_parameters_fast();
  params.liz_radius = radius;
  const lsms::LsmsSolver solver(lattice::make_fe_supercell(2), params);
  Rng rng(1);
  const auto config = spin::MomentConfiguration::random(16, rng);
  for (auto _ : state) benchmark::DoNotOptimize(solver.energy(config));
  state.counters["zone_atoms"] = static_cast<double>(solver.liz_size(0));
  state.counters["GFlop/eval"] =
      static_cast<double>(solver.flops_per_energy()) / 1e9;
}
BENCHMARK(BM_LsmsEnergy_LizRadius)->Arg(50)->Arg(56)->Arg(77)->MinTime(0.2);

// The paper's production geometry: 11.5 a0 LIZ (65-atom zones, 130 x 130
// zone matrices) and the 16-point contour. One iteration = one full energy
// evaluation of the 16-atom cell; gemm_frac is the measured share of flops
// retired by the packed ZGEMM (acceptance bar: >= 0.6).
void BM_LsmsEnergy_PaperGeometry(benchmark::State& state) {
  const lsms::LsmsSolver solver(lattice::make_fe_supercell(2),
                                lsms::fe_lsms_parameters());
  Rng rng(4);
  const auto config = spin::MomentConfiguration::random(16, rng);
  perf::FlopWindow window;
  for (auto _ : state) benchmark::DoNotOptimize(solver.energy(config));
  state.counters["zone_atoms"] = static_cast<double>(solver.liz_size(0));
  state.counters["GFlop/eval"] =
      static_cast<double>(solver.flops_per_energy()) / 1e9;
  state.counters["GFlop/s"] = benchmark::Counter(
      static_cast<double>(solver.flops_per_energy()) * state.iterations() /
          1e9,
      benchmark::Counter::kIsRate);
  state.counters["gemm_frac"] = window.gemm_fraction();
}
BENCHMARK(BM_LsmsEnergy_PaperGeometry)->MinTime(0.5);

void BM_LsmsEnergy_ContourPoints(benchmark::State& state) {
  lsms::LsmsParameters params = lsms::fe_lsms_parameters_fast();
  params.contour_points = static_cast<std::size_t>(state.range(0));
  const lsms::LsmsSolver solver(lattice::make_fe_supercell(2), params);
  Rng rng(2);
  const auto config = spin::MomentConfiguration::random(16, rng);
  for (auto _ : state) benchmark::DoNotOptimize(solver.energy(config));
}
BENCHMARK(BM_LsmsEnergy_ContourPoints)->Arg(4)->Arg(8)->Arg(16)->MinTime(0.2);

void BM_LsmsIncrementalMove(benchmark::State& state) {
  const lsms::LsmsSolver solver(lattice::make_fe_supercell(2),
                                lsms::fe_lsms_parameters_fast());
  Rng rng(3);
  const auto config = spin::MomentConfiguration::random(16, rng);
  const lsms::LocalEnergies current = solver.energies(config);
  spin::TrialMove move;
  move.site = 3;
  for (auto _ : state) {
    move.new_direction = rng.unit_vector();
    benchmark::DoNotOptimize(solver.energy_after_move(config, move, current));
  }
  state.counters["affected_atoms"] =
      static_cast<double>(solver.affected_sites(3).size());
}
BENCHMARK(BM_LsmsIncrementalMove)->MinTime(0.2);

void BM_ExchangeExtraction(benchmark::State& state) {
  const lsms::LsmsSolver solver(lattice::make_fe_supercell(2),
                                lsms::fe_lsms_parameters_fast());
  for (auto _ : state) {
    Rng rng(42);
    benchmark::DoNotOptimize(lsms::extract_exchange(solver, 2, 16, rng));
  }
}
BENCHMARK(BM_ExchangeExtraction)->Iterations(2);

}  // namespace
