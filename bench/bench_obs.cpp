// Observability overhead audit: the full telemetry stack (metrics registry,
// span tracing, 100 ms snapshot writer) against the uninstrumented baseline
// on the paper-geometry energy evaluation, plus per-operation latencies of
// the primitives. The instrumentation budget is <2% of wall time — the
// telemetry must be cheap enough to leave on for production runs.
//
// Writes BENCH_obs.json (path = argv[1], default ./BENCH_obs.json) and
// exits non-zero if the measured overhead exceeds the budget.
#include "bench_common.hpp"

#include <algorithm>
#include <chrono>
#include <string>

#include "io/table.hpp"
#include "lsms/solver.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/snapshot.hpp"
#include "obs/trace.hpp"
#include "spin/moments.hpp"

namespace {

using namespace wlsms;

constexpr std::size_t kEvalsPerRep = 60;
constexpr std::size_t kReps = 5;
constexpr std::size_t kMaxReps = 20;
constexpr double kBudgetPercent = 2.0;

/// Wall seconds for one repetition of the workload: kEvalsPerRep full
/// energy evaluations of random moment configurations. When `stamped`,
/// each evaluation additionally pays the full distributed-tracing tax a
/// request pays in production: the driver's context capture (propagated on
/// the wire), the scheduler's six critical-path stage stamps, and the
/// daemon's per-request span emission.
double run_workload(const lsms::LsmsSolver& solver, Rng& rng,
                    bool stamped = false) {
  double sink = 0.0;
  perf::Timer timer;
  for (std::size_t k = 0; k < kEvalsPerRep; ++k) {
    obs::TraceContext context;
    std::uint64_t begin_us = 0;
    if (stamped) {
      context = obs::current_trace_context();
      begin_us = obs::trace_now_us();
    }
    sink += solver.energy(
        spin::MomentConfiguration::random(solver.n_atoms(), rng));
    if (stamped) {
      // admitted / queued / batch-formed / solved / serialized / sent.
      std::uint64_t last = begin_us;
      for (int stage = 0; stage < 6; ++stage) last = obs::trace_now_us();
      obs::emit_span("bench.request", begin_us, last, context);
    }
  }
  const double seconds = timer.seconds();
  // Keep the optimizer honest.
  if (sink == 0.1234567) std::printf("%f\n", sink);
  return seconds;
}

/// ns per operation of `op` iterated `iterations` times.
template <typename Op>
double op_latency_ns(std::size_t iterations, Op&& op) {
  perf::Timer timer;
  for (std::size_t i = 0; i < iterations; ++i) op();
  return 1e9 * timer.seconds() / static_cast<double>(iterations);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_obs.json";
  bench::banner("telemetry overhead (metrics + tracing + snapshots)",
                "kernel-counter style instrumentation must not perturb the "
                "measured science: budget <2% of energy-evaluation wall");

  // The paper-geometry substrate of bench_direct_wllsms: 16-atom bcc Fe
  // cell, 15-atom LIZ, reduced contour — the real multiple-scattering
  // energy path the WL driver hammers.
  const lsms::LsmsSolver solver(lattice::make_fe_supercell(2),
                                lsms::fe_lsms_parameters_fast());
  std::printf("workload: %zu evals x %zu reps of %zu-atom energies "
              "(%zu-atom LIZ)\n\n",
              kEvalsPerRep, kReps, solver.n_atoms(), solver.liz_size(0));

  obs::disable_tracing();
  {
    // Warm-up: touch caches, fault in the t-table, settle the clock.
    Rng rng(11);
    (void)run_workload(solver, rng);
  }

  // Alternate baseline and instrumented repetitions and keep the minimum of
  // each: min-of-reps cancels scheduler noise, alternation cancels drift.
  // If the measurement still reads over budget after kReps (e.g. the CPU is
  // hot from a preceding test suite), keep sampling up to kMaxReps — extra
  // reps can only tighten both minima, so a build that is genuinely within
  // budget converges while a real regression keeps failing.
  double base_s = 1e300;
  double instr_s = 1e300;
  std::size_t reps_used = 0;
  const std::string snapshot_path = out_path + ".snapshots.jsonl";
  for (std::size_t rep = 0; rep < kMaxReps; ++rep) {
    {
      Rng rng(42 + rep);
      base_s = std::min(base_s, run_workload(solver, rng));
    }
    {
      obs::enable_tracing();
      obs::SnapshotConfig config;
      config.path = snapshot_path;
      config.interval = std::chrono::milliseconds(100);
      obs::SnapshotWriter writer(config);
      Rng rng(42 + rep);
      instr_s = std::min(instr_s, run_workload(solver, rng, true));
      obs::disable_tracing();
      obs::reset_trace_for_testing();
    }
    reps_used = rep + 1;
    if (reps_used >= kReps &&
        100.0 * (instr_s - base_s) / base_s <= kBudgetPercent)
      break;
  }
  const double overhead_percent = 100.0 * (instr_s - base_s) / base_s;

  // Primitive latencies, the per-call costs the budget is built from.
  obs::Counter& counter = obs::Registry::instance().counter("bench.counter");
  obs::Gauge& gauge = obs::Registry::instance().gauge("bench.gauge");
  obs::Histogram& histogram = obs::Registry::instance().histogram(
      "bench.histogram", {1.0, 10.0, 100.0, 1000.0});
  constexpr std::size_t kOps = 2000000;
  const double counter_ns = op_latency_ns(kOps, [&] { counter.inc(); });
  const double gauge_ns = op_latency_ns(kOps, [&] { gauge.set(0.5); });
  const double histogram_ns =
      op_latency_ns(kOps, [&] { histogram.observe(42.0); });
  const double span_disabled_ns =
      op_latency_ns(kOps, [] { const obs::Span span("bench.span"); });
  obs::enable_tracing();
  const double span_enabled_ns =
      op_latency_ns(200000, [] { const obs::Span span("bench.span"); });
  // The distributed-tracing primitives added by the propagation layer:
  // context capture (what the driver stamps onto every outgoing request),
  // remote-parent adoption (what the worker/daemon pays per request),
  // stage stamping (six per request in the serve scheduler), and
  // retrospective span emission (one per request on the daemon).
  const double context_ns =
      op_latency_ns(200000, [] { (void)obs::current_trace_context(); });
  const obs::TraceContext remote{0x123456789ull, 0x42ull};
  const double span_adopt_ns = op_latency_ns(
      200000, [&] { const obs::Span span("bench.adopt", remote); });
  const double stamp_ns =
      op_latency_ns(kOps, [] { (void)obs::trace_now_us(); });
  const double emit_span_ns = op_latency_ns(200000, [&] {
    obs::emit_span("bench.emit", 1000, 2000, remote);
  });
  obs::disable_tracing();
  obs::reset_trace_for_testing();

  io::TextTable table({"quantity", "value"});
  table.row({"uninstrumented", io::format_double(1e3 * base_s, 2) + " ms"});
  table.row({"instrumented", io::format_double(1e3 * instr_s, 2) + " ms"});
  table.row({"overhead", io::format_double(overhead_percent, 2) + " %"});
  table.row({"budget", io::format_double(kBudgetPercent, 1) + " %"});
  table.row({"counter add", io::format_double(counter_ns, 1) + " ns"});
  table.row({"gauge set", io::format_double(gauge_ns, 1) + " ns"});
  table.row({"histogram observe", io::format_double(histogram_ns, 1) + " ns"});
  table.row({"span (disabled)", io::format_double(span_disabled_ns, 1) + " ns"});
  table.row({"span (enabled)", io::format_double(span_enabled_ns, 1) + " ns"});
  table.row({"context capture", io::format_double(context_ns, 1) + " ns"});
  table.row({"span (adopted)", io::format_double(span_adopt_ns, 1) + " ns"});
  table.row({"stage stamp", io::format_double(stamp_ns, 1) + " ns"});
  table.row({"emit span", io::format_double(emit_span_ns, 1) + " ns"});
  table.print();

  obs::JsonValue::Object ops;
  ops.emplace("counter_add", obs::JsonValue(counter_ns));
  ops.emplace("gauge_set", obs::JsonValue(gauge_ns));
  ops.emplace("histogram_observe", obs::JsonValue(histogram_ns));
  ops.emplace("span_disabled", obs::JsonValue(span_disabled_ns));
  ops.emplace("span_enabled", obs::JsonValue(span_enabled_ns));
  ops.emplace("context_capture", obs::JsonValue(context_ns));
  ops.emplace("span_adopted", obs::JsonValue(span_adopt_ns));
  ops.emplace("stage_stamp", obs::JsonValue(stamp_ns));
  ops.emplace("emit_span", obs::JsonValue(emit_span_ns));

  obs::JsonValue::Object workload;
  workload.emplace("atoms",
                   obs::JsonValue(std::uint64_t{solver.n_atoms()}));
  workload.emplace("evals_per_rep", obs::JsonValue(std::uint64_t{kEvalsPerRep}));
  workload.emplace("reps", obs::JsonValue(std::uint64_t{reps_used}));

  obs::JsonValue::Object doc;
  doc.emplace("bench", obs::JsonValue(std::string("obs_overhead")));
  doc.emplace("workload", obs::JsonValue(std::move(workload)));
  doc.emplace("uninstrumented_s", obs::JsonValue(base_s));
  doc.emplace("instrumented_s", obs::JsonValue(instr_s));
  doc.emplace("overhead_percent", obs::JsonValue(overhead_percent));
  doc.emplace("budget_percent", obs::JsonValue(kBudgetPercent));
  doc.emplace("within_budget",
              obs::JsonValue(overhead_percent <= kBudgetPercent));
  doc.emplace("op_latency_ns", obs::JsonValue(std::move(ops)));

  std::FILE* file = std::fopen(out_path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  const std::string text = obs::JsonValue(std::move(doc)).dump() + "\n";
  std::fwrite(text.data(), 1, text.size(), file);
  std::fclose(file);
  std::printf("\nresults written to %s\n", out_path.c_str());

  if (overhead_percent > kBudgetPercent) {
    std::fprintf(stderr,
                 "FAIL: telemetry overhead %.2f%% exceeds the %.1f%% budget\n",
                 overhead_percent, kBudgetPercent);
    return 1;
  }
  std::printf("telemetry overhead %.2f%% is within the %.1f%% budget\n",
              overhead_percent, kBudgetPercent);
  return 0;
}
