// Ablation: Wang-Landau vs conventional Metropolis (paper §I/§II-A).
//
// The paper's core efficiency claim: with a temperature-independent energy
// functional, one Wang-Landau run yields *all* temperatures, while
// Metropolis needs a separate importance-sampling run per temperature.
// This bench measures energy evaluations (the unit of ab initio cost) for
// both routes to a full U(T)/c(T) curve of matched accuracy on the 16-atom
// iron surrogate.
#include "bench_common.hpp"

#include <cmath>

#include "io/table.hpp"
#include "mc/metropolis.hpp"

int main() {
  using namespace wlsms;
  bench::banner("ablation: WL vs Metropolis cost",
                "one WL run gives all temperatures; Metropolis needs one "
                "run per temperature");

  wl::HeisenbergEnergy energy = bench::fe_surrogate(2);

  // One converged Wang-Landau run.
  const bench::ConvergedRun wl_run = bench::converge_fe_dos(2);

  // Metropolis sweep over the same temperature set.
  std::vector<double> temperatures;
  for (double t = 300.0; t <= 2400.0; t += 100.0) temperatures.push_back(t);
  mc::MetropolisConfig config;
  config.thermalization_steps = 200000;
  config.measurement_steps = 800000;
  config.measure_interval = 16;
  Rng rng(99);
  const auto mc_results =
      mc::metropolis_sweep(energy, temperatures, config, rng);
  std::uint64_t mc_evals = 0;
  for (const auto& r : mc_results) mc_evals += r.energy_evaluations;

  // Accuracy comparison at a few probe temperatures.
  io::TextTable table({"T [K]", "U (WL) [Ry]", "U (Metropolis) [Ry]", "|dU|"});
  double worst = 0.0;
  for (const auto& r : mc_results) {
    if (static_cast<int>(r.temperature) % 300 != 0) continue;
    const double u_wl =
        thermo::observables_at(wl_run.table, r.temperature).internal_energy;
    worst = std::max(worst, std::abs(u_wl - r.mean_energy));
    table.row({io::format_double(r.temperature, 0), io::format_double(u_wl, 5),
               io::format_double(r.mean_energy, 5),
               io::format_double(std::abs(u_wl - r.mean_energy), 5)});
  }
  table.print();

  io::TextTable cost({"method", "energy evaluations", "temperatures covered"});
  cost.row({"Wang-Landau (one run)",
            std::to_string(wl_run.stats.total_steps), "all (continuous)"});
  cost.row({"Metropolis sweep", std::to_string(mc_evals),
            std::to_string(temperatures.size()) + " points"});
  std::printf("\n");
  cost.print();

  std::printf(
      "\nmax |dU| across probes: %.5f Ry\n"
      "cost ratio (Metropolis/WL) at matched accuracy and %zu temperatures: "
      "%.1fx\n"
      "Reading: the WL cost is paid once; every additional temperature (and\n"
      "every re-weighted observable, eq. 12-16) is free, while Metropolis\n"
      "scales linearly in the number of temperatures — and would have to be\n"
      "repeated entirely for a finer grid. For ab initio energies (tens of\n"
      "seconds each) this gap is the paper's core economics.\n",
      worst, temperatures.size(),
      static_cast<double>(mc_evals) /
          static_cast<double>(wl_run.stats.total_steps));
  return 0;
}
