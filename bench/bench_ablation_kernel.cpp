// Ablation: the continuous-update kernel of eq. 8.
//
// The paper chooses an Epanechnikov kernel of width delta = 2 % of the
// energy range. This bench quantifies the interaction between delta and the
// bin width on the exactly solvable single Heisenberg bond (flat true DOS):
// when delta spills far beyond one bin, the per-step update raises bins the
// walk is being rejected from at the same rate as the bins it occupies, and
// the estimate destabilizes ("frozen walls"); with delta of order the bin
// width the estimator is stable and accurate. This is why the production
// configuration ties the kernel to half a bin (dos_grid.hpp).
#include "bench_common.hpp"

#include "io/table.hpp"
#include "lattice/cluster.hpp"

int main() {
  using namespace wlsms;
  bench::banner("ablation: kernel width (eq. 8)",
                "delta = 2% of the energy range with an Epanechnikov kernel");

  const auto structure = lattice::make_cubic_cluster(
      lattice::CubicLattice::kSimpleCubic, 1.0, 2, 1, 1);
  const wl::HeisenbergEnergy energy(
      heisenberg::HeisenbergModel(structure, {1.0}));

  io::TextTable table({"delta / bin width", "steps [M]", "forced iters",
                       "acceptance", "ln g error (true: 0)"});
  for (double ratio : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    wl::WangLandauConfig config;
    config.grid.e_min = -1.02;
    config.grid.e_max = 1.02;
    config.grid.bins = 102;
    config.grid.kernel_width_fraction = ratio / 102.0;
    config.n_walkers = 2;
    config.check_interval = 2000;
    config.flatness = 0.8;
    config.max_iteration_steps = 400000;
    config.max_steps = 40000000;

    wl::WangLandau sampler(energy, config,
                           std::make_unique<wl::HalvingSchedule>(1.0, 1e-4),
                           Rng(7));
    sampler.run();

    // True ln g is constant: the interior spread is the estimator error.
    const auto series = sampler.dos().visited_series();
    double lo = 1e300;
    double hi = -1e300;
    for (std::size_t i = 3; i + 3 < series.size(); ++i) {
      lo = std::min(lo, series[i].second);
      hi = std::max(hi, series[i].second);
    }
    table.row(
        {io::format_double(ratio, 2),
         io::format_double(sampler.stats().total_steps / 1e6, 1),
         std::to_string(sampler.stats().forced_iterations),
         io::format_double(100.0 * sampler.stats().accepted_steps /
                               sampler.stats().total_steps,
                           0) +
             "%",
         io::format_double(hi - lo, 2)});
  }
  table.print();
  std::printf(
      "\nReading: the update of eq. 8 is stable and accurate for delta up to\n"
      "about one bin width; wide spill (the paper's 2%% delta over fine bins)\n"
      "freezes ln g walls into the estimate and the error diverges. At\n"
      "matched delta/bin ratio the paper's choice is reproduced.\n");
  return 0;
}
