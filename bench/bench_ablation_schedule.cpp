// Ablation: the classic halving schedule (paper §II-A: "the modification
// factor is reduced such that ln f -> ln f / 2") vs the 1/t refinement of
// Belardinelli & Pereyra. On the exactly solvable single Heisenberg bond the
// true ln g is constant, so the interior spread of the estimate is a direct
// error measurement at matched step budgets.
#include "bench_common.hpp"

#include <cmath>

#include "io/table.hpp"
#include "lattice/cluster.hpp"

namespace {

struct Outcome {
  double error = 0.0;
  double u_error = 0.0;
  std::uint64_t steps = 0;
};

Outcome run_schedule(bool one_over_t, double gamma_final, std::uint64_t seed) {
  using namespace wlsms;
  const auto structure = lattice::make_cubic_cluster(
      lattice::CubicLattice::kSimpleCubic, 1.0, 2, 1, 1);
  const wl::HeisenbergEnergy energy(
      heisenberg::HeisenbergModel(structure, {1.0}));

  wl::WangLandauConfig config;
  config.grid = {-1.02, 1.02, 102, 0.005};
  config.n_walkers = 2;
  config.check_interval = 2000;
  config.flatness = 0.8;
  config.max_iteration_steps = 400000;
  config.max_steps = 60000000;

  std::unique_ptr<wl::ModificationSchedule> schedule;
  if (one_over_t)
    schedule = std::make_unique<wl::OneOverTSchedule>(config.grid.bins, 1.0,
                                                      gamma_final);
  else
    schedule = std::make_unique<wl::HalvingSchedule>(1.0, gamma_final);

  wl::WangLandau sampler(energy, config, std::move(schedule), Rng(seed));
  sampler.run();

  const auto series = sampler.dos().visited_series();
  double lo = 1e300;
  double hi = -1e300;
  for (std::size_t i = 3; i + 3 < series.size(); ++i) {
    lo = std::min(lo, series[i].second);
    hi = std::max(hi, series[i].second);
  }
  const thermo::DosTable dos = thermo::dos_table(sampler.dos());
  const double t = 1.0 / wlsms::units::k_boltzmann_ry;  // beta J = 1
  const double exact_u = -(1.0 / std::tanh(1.0) - 1.0);
  return {hi - lo,
          std::abs(thermo::observables_at(dos, t).internal_energy - exact_u),
          sampler.stats().total_steps};
}

}  // namespace

int main() {
  using namespace wlsms;
  bench::banner("ablation: modification-factor schedule",
                "classic ln f -> ln f/2 halving vs the 1/t refinement");

  io::TextTable table({"schedule", "gamma floor", "steps [M]",
                       "ln g spread (true 0)", "|dU| at beta J=1"});
  for (double gamma_final : {1e-4, 1e-6}) {
    for (bool one_over_t : {false, true}) {
      // Average over three seeds to damp run-to-run noise.
      double spread = 0.0;
      double du = 0.0;
      std::uint64_t steps = 0;
      for (std::uint64_t seed : {11u, 12u, 13u}) {
        const Outcome outcome = run_schedule(one_over_t, gamma_final, seed);
        spread += outcome.error / 3.0;
        du += outcome.u_error / 3.0;
        steps += outcome.steps / 3;
      }
      table.row({one_over_t ? "1/t (Belardinelli-Pereyra)" : "halving (paper)",
                 io::format_double(gamma_final, 6),
                 io::format_double(static_cast<double>(steps) / 1e6, 1),
                 io::format_double(spread, 3), io::format_double(du, 4)});
    }
  }
  table.print();
  std::printf(
      "\nReading: the halving schedule (the paper's) saturates: tightening\n"
      "the gamma floor stops improving the estimate. The 1/t refinement\n"
      "keeps converging (error ~ t^-1/2) by spending more steps, which is\n"
      "exactly Belardinelli-Pereyra's observation.\n");
  return 0;
}
