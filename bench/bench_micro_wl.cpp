// Microbenchmarks of the Wang-Landau hot path: surrogate energy updates,
// DOS kernel visits, acceptance lookups, and full WL steps — the "master"
// cost that bounds walker scalability (paper §II-C: the strategy scales
// "as long as the time for the Wang-Landau process to process one result
// ... is less than the time for one LSMS energy calculation").
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "heisenberg/heisenberg.hpp"
#include "lattice/structure.hpp"
#include "lsms/fe_parameters.hpp"
#include "wl/wanglandau.hpp"

namespace {

using namespace wlsms;

wl::HeisenbergEnergy surrogate(std::size_t n_cells) {
  std::vector<double> j = lsms::fe_reference_exchange();
  for (double& v : j) v *= lsms::fe_exchange_energy_scale;
  return wl::HeisenbergEnergy(
      heisenberg::HeisenbergModel(lattice::make_fe_supercell(n_cells), j));
}

void BM_SurrogateTotalEnergy(benchmark::State& state) {
  const wl::HeisenbergEnergy energy =
      surrogate(static_cast<std::size_t>(state.range(0)));
  Rng rng(1);
  const auto config =
      spin::MomentConfiguration::random(energy.n_sites(), rng);
  for (auto _ : state) benchmark::DoNotOptimize(energy.total_energy(config));
  state.counters["atoms"] = static_cast<double>(energy.n_sites());
}
BENCHMARK(BM_SurrogateTotalEnergy)->Arg(2)->Arg(5)->Arg(8);

void BM_SurrogateMoveDelta(benchmark::State& state) {
  const wl::HeisenbergEnergy energy =
      surrogate(static_cast<std::size_t>(state.range(0)));
  Rng rng(2);
  auto config = spin::MomentConfiguration::random(energy.n_sites(), rng);
  const double e = energy.total_energy(config);
  spin::UniformSphereMove mover;
  for (auto _ : state) {
    const spin::TrialMove move = mover.propose(config, rng);
    benchmark::DoNotOptimize(energy.energy_after_move(config, move, e));
  }
}
BENCHMARK(BM_SurrogateMoveDelta)->Arg(2)->Arg(5)->Arg(8);

void BM_DosVisit(benchmark::State& state) {
  wl::DosGridConfig grid{-1.0, 1.0, 201, 0.0025};
  wl::DosGrid dos(grid);
  Rng rng(3);
  for (auto _ : state) {
    dos.visit(rng.uniform(-1.0, 1.0), 0.01);
  }
}
BENCHMARK(BM_DosVisit);

void BM_DosLookup(benchmark::State& state) {
  wl::DosGridConfig grid{-1.0, 1.0, 201, 0.0025};
  wl::DosGrid dos(grid);
  Rng rng(4);
  for (int k = 0; k < 100000; ++k) dos.visit(rng.uniform(-1.0, 1.0), 0.01);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dos.ln_g(rng.uniform(-1.0, 1.0)));
  }
}
BENCHMARK(BM_DosLookup);

void BM_FlatnessCheck(benchmark::State& state) {
  wl::DosGridConfig grid{-1.0, 1.0, 201, 0.0025};
  wl::DosGrid dos(grid);
  Rng rng(5);
  for (int k = 0; k < 100000; ++k) dos.visit(rng.uniform(-1.0, 1.0), 0.01);
  for (auto _ : state) benchmark::DoNotOptimize(dos.is_flat(0.8));
}
BENCHMARK(BM_FlatnessCheck);

void BM_FullWlStep(benchmark::State& state) {
  // One complete WL step (propose + delta + acceptance + kernel visit) per
  // walker on the 250-atom surrogate: the per-result master work.
  const wl::HeisenbergEnergy energy = surrogate(5);
  Rng window_rng(5);
  wl::WangLandauConfig config;
  config.grid = wl::thermal_window(
      energy, energy.model().ferromagnetic_energy(), 150.0, window_rng);
  config.n_walkers = 1;
  config.check_interval = 1u << 30;  // exclude flatness checks from timing
  wl::WangLandau sampler(energy, config,
                         std::make_unique<wl::HalvingSchedule>(1.0, 1e-12),
                         Rng(6));
  for (auto _ : state) benchmark::DoNotOptimize(sampler.step());
}
BENCHMARK(BM_FullWlStep);

}  // namespace
