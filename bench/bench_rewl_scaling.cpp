// Weak scaling of replica-exchange windowed Wang-Landau (rewl.hpp), in the
// style of the paper's Fig. 7: Fig. 7 holds the work *per walker* fixed and
// grows the machine; here the work per *window* is held fixed — constant
// bins per window, constant walkers per window — while the windows (and
// with them the covered energy range) grow. Ideal weak scaling is a flat
// per-window step count: each extra window adds spectrum coverage at no
// extra time on a machine with one node per window.
//
// The system is the exactly solvable single Heisenberg bond (g(E) constant
// on [-J, J]), so every window sees the same local problem and deviations
// from flatness are pure algorithmic overhead (window edges, exchange,
// stitching) rather than physics.
#include "bench_common.hpp"

#include <cmath>

#include "io/csv.hpp"
#include "io/table.hpp"
#include "lattice/cluster.hpp"
#include "wl/rewl.hpp"

int main() {
  using namespace wlsms;
  bench::banner("REWL weak scaling (fig7-style)",
                "constant work per window while windows grow; runtime on a "
                "window-per-node machine stays near-flat");

  const auto structure = lattice::make_cubic_cluster(
      lattice::CubicLattice::kSimpleCubic, 1.0, 2, 1, 1);
  const wl::HeisenbergEnergy energy(
      heisenberg::HeisenbergModel(structure, {1.0}));

  // Fixed per-window problem: 24 bins of 0.01 Ry. The global grid for n
  // windows at 50 % overlap spans B(n) = 24 * (n - 0.5 (n-1)) bins, always
  // centred on E = 0 and inside the bond's [-1, 1] Ry spectrum.
  constexpr std::size_t kBinsPerWindow = 24;
  constexpr double kBinWidth = 0.01;
  constexpr double kOverlap = 0.5;

  io::CsvWriter csv("rewl_weak_scaling.csv",
                    {"windows", "global_bins", "range_ry", "max_window_steps",
                     "total_steps", "wall_s"});
  io::TextTable table({"windows", "global bins", "range [Ry]",
                       "steps/window [k]", "vs 1 window", "total steps [k]",
                       "wall [s]"});
  std::uint64_t base_steps = 0;
  for (std::size_t n : {1u, 2u, 4u, 8u}) {
    const double denom =
        static_cast<double>(n) - static_cast<double>(n - 1) * kOverlap;
    const auto global_bins = static_cast<std::size_t>(
        std::lround(static_cast<double>(kBinsPerWindow) * denom));
    const double half_range =
        0.5 * static_cast<double>(global_bins) * kBinWidth;

    wl::RewlConfig config;
    config.base.grid = {-half_range, half_range, global_bins,
                        0.5 / static_cast<double>(global_bins)};
    config.base.n_walkers = 2;
    config.base.check_interval = 2000;
    config.base.flatness = 0.8;
    config.base.max_iteration_steps = 300000;
    config.base.max_steps = 40000000;
    config.n_windows = n;
    config.overlap = kOverlap;
    config.exchange_interval = 2000;

    perf::Timer timer;
    const wl::RewlResult result =
        wl::run_rewl(energy, config, wl::HalvingSchedule(1.0, 1e-4), Rng(17));
    const double wall = timer.seconds();

    std::uint64_t max_steps = 0;
    std::uint64_t total_steps = 0;
    for (const wl::WangLandauStats& stats : result.per_window) {
      max_steps = std::max(max_steps, stats.total_steps);
      total_steps += stats.total_steps;
    }
    if (n == 1) base_steps = max_steps;

    csv.row({static_cast<double>(n), static_cast<double>(global_bins),
             2.0 * half_range, static_cast<double>(max_steps),
             static_cast<double>(total_steps), wall});
    table.row({std::to_string(n), std::to_string(global_bins),
               io::format_double(2.0 * half_range, 2),
               io::format_double(static_cast<double>(max_steps) / 1e3, 0),
               io::format_double(static_cast<double>(max_steps) /
                                     static_cast<double>(base_steps),
                                 2),
               io::format_double(static_cast<double>(total_steps) / 1e3, 0),
               io::format_double(wall, 2)});
  }
  table.print();
  std::printf("full series written to rewl_weak_scaling.csv\n");
  std::printf(
      "\nReading: the slowest window's step count — the wall-clock on a\n"
      "window-per-node machine — stays near-flat while the covered range\n"
      "grows %gx, the windowed analogue of Fig. 7's near-constant runtime\n"
      "from 10 to 144 walkers. (Total steps grow with the range: that is\n"
      "the added spectrum, spread across added nodes.)\n",
      8.0 - (8.0 - 1.0) * kOverlap);
  return 0;
}
