// Reproduces Table I of the paper: configuration details, total Wang-Landau
// steps, and CPU-core-hours required to converge the density of states of
// the 16- and 250-atom iron systems.
//
// Three claims are checked (DESIGN.md §4):
//  1. cost model: projecting the paper's *own* step counts through the
//     lmax=3 / 65-atom-LIZ / 31-point-contour evaluation-cost model and the
//     paper's walker/core layout reproduces the paper's core-hour budgets;
//  2. budget adequacy: with only the paper's step budget, the estimator
//     already localizes the specific-heat peak (the paper's operational
//     convergence was similarly lax);
//  3. full convergence: the steps our stricter criterion (A = 0.8,
//     ln f -> 1e-6, ~200 resolved bins) needs, and its projected cost.
#include "bench_common.hpp"

#include "cluster/des.hpp"
#include "io/table.hpp"

namespace {

using namespace wlsms;

struct PaperRow {
  std::size_t atoms;
  std::size_t cells;  // supercell edge count
  std::size_t walkers;
  std::size_t cores;
  double wl_steps;
  double core_hours;
};

// Table I as printed in the paper.
constexpr PaperRow kPaper16{16, 2, 16, 278, 23200, 12500};
constexpr PaperRow kPaper250{250, 5, 500, 125250, 1126000, 4885720};

double projected_core_hours(double total_steps, const PaperRow& layout) {
  const cluster::MachineDescription machine = cluster::jaguar_xt5();
  const lsms::LsmsFidelity fidelity;  // lmax 3, 65-atom LIZ, 31 points
  const double t_eval =
      lsms::seconds_per_energy(fidelity, machine.sustained_flops_per_core());
  const double wall = machine.setup_time_s +
                      total_steps / static_cast<double>(layout.walkers) * t_eval;
  return wall * static_cast<double>(layout.cores) / 3600.0;
}

double tc_with_budget(const PaperRow& row, std::uint64_t max_steps) {
  wl::HeisenbergEnergy energy = bench::fe_surrogate(row.cells);
  Rng window_rng(5);
  wl::WangLandauConfig config;
  config.grid = wl::thermal_window(
      energy, energy.model().ferromagnetic_energy(), 150.0, window_rng);
  config.n_walkers = row.walkers;
  config.check_interval = 2000;
  config.max_iteration_steps = std::max<std::uint64_t>(max_steps / 16, 2000);
  config.max_steps = max_steps;
  wl::WangLandau sampler(energy, config,
                         std::make_unique<wl::HalvingSchedule>(1.0, 1e-6),
                         Rng(321));
  sampler.run();
  const thermo::DosTable dos = thermo::dos_table(sampler.dos());
  return thermo::estimate_curie_temperature(dos, 250.0, 3000.0).tc;
}

}  // namespace

int main() {
  bench::banner("Table I",
                "WL steps and CPU-core-hours to converge g(E) for the 16- "
                "and 250-atom Fe systems");

  const bench::ConvergedRun run16 = bench::converge_fe_dos(2);
  const bench::ConvergedRun run250 = bench::converge_fe_dos(5);

  io::TextTable table({"atoms", "WL walkers", "cores", "WL steps",
                       "core-hours", "row"});
  const auto add_rows = [&table](const PaperRow& paper,
                                 const bench::ConvergedRun& run) {
    table.row({std::to_string(paper.atoms), std::to_string(paper.walkers),
               std::to_string(paper.cores),
               io::format_double(paper.wl_steps, 0),
               io::format_double(paper.core_hours, 0), "paper"});
    table.row({std::to_string(paper.atoms), std::to_string(paper.walkers),
               std::to_string(paper.cores),
               io::format_double(paper.wl_steps, 0),
               io::format_double(projected_core_hours(paper.wl_steps, paper), 0),
               "cost model @ paper steps"});
    table.row({std::to_string(paper.atoms), std::to_string(paper.walkers),
               std::to_string(paper.cores),
               std::to_string(run.stats.total_steps),
               io::format_double(
                   projected_core_hours(
                       static_cast<double>(run.stats.total_steps), paper),
                   0),
               "ours, strict convergence"});
  };
  add_rows(kPaper16, run16);
  add_rows(kPaper250, run250);
  table.print();

  std::printf("\nBudget check: Curie estimate with only the paper's step "
              "budget vs fully converged\n(the 16-atom budget already "
              "localizes the peak; the 250-atom one is a warm start)\n");
  io::TextTable budget({"atoms", "Tc @ paper budget", "Tc converged"});
  const double tc16_budget = tc_with_budget(kPaper16, 23200);
  const double tc16_full =
      thermo::estimate_curie_temperature(run16.table, 250.0, 3000.0).tc;
  const double tc250_budget = tc_with_budget(kPaper250, 1126000);
  const double tc250_full =
      thermo::estimate_curie_temperature(run250.table, 250.0, 3000.0).tc;
  budget.row({"16", io::format_double(tc16_budget, 0) + " K",
              io::format_double(tc16_full, 0) + " K"});
  budget.row({"250", io::format_double(tc250_budget, 0) + " K",
              io::format_double(tc250_full, 0) + " K"});
  budget.print();

  std::printf(
      "\nNotes:\n"
      " - 'cost model @ paper steps': the per-evaluation time of the\n"
      "   production KKR cost model reproduces the paper's 12,500 core-hours\n"
      "   for 16 atoms almost exactly and the 4.9M core-hours for 250 atoms\n"
      "   within a factor ~2 (their 250-atom run mixed walker generations).\n"
      " - 'ours, strict convergence': this library converges ln f to 1e-6\n"
      "   under a per-bin flatness criterion over ~200 bins, a far stricter\n"
      "   target than the paper's operational one; the surrogate makes those\n"
      "   steps cheap here (16 atoms: %.1f s, 250 atoms: %.1f s wall).\n",
      run16.wall_seconds, run250.wall_seconds);
  return 0;
}
