// Reproduces Table II of the paper: sustained floating-point performance of
// WL-LSMS on the Cray XT5 for 10/50/100/144 walkers of 1024 atoms each, 20
// WL steps per walker. Headline: 1.029 PFlop/s on 147,464 cores = 75.8 % of
// peak. Flops are counted analytically exactly as the paper's PAPI
// instrumentation counts retired FP operations; timing comes from the
// discrete-event machine model (DESIGN.md §2).
#include "bench_common.hpp"

#include "cluster/des.hpp"
#include "common/rng.hpp"
#include "io/csv.hpp"
#include "io/table.hpp"
#include "lattice/structure.hpp"
#include "lsms/fe_parameters.hpp"
#include "lsms/solver.hpp"
#include "perf/flops.hpp"

int main() {
  using namespace wlsms;
  bench::banner("Table II",
                "sustained performance on the Cray XT5: 1.029 PFlop/s on "
                "147,464 cores (75.8% of peak) at 144 walkers");

  const cluster::MachineDescription machine = cluster::jaguar_xt5();
  cluster::JobDescription job;
  job.n_atoms = 1024;
  job.steps_per_walker = 20;
  job.fidelity.lmax = 3;
  job.fidelity.liz_atoms = 65;
  job.fidelity.contour_points = 20;

  // The paper's peak-fraction is constant at 75.8%; its per-row TFlop/s
  // follow from the core counts.
  const auto paper_tflops = [&machine](std::size_t cores) {
    return 0.758 * static_cast<double>(cores) * machine.peak_flops_per_core /
           1e12;
  };

  io::CsvWriter csv("table2_sustained.csv",
                    {"walkers", "cores", "tflops", "fraction_of_peak"});
  io::TextTable table({"WL walkers", "cores", "TFlop/s (paper)",
                       "TFlop/s (ours)", "% of peak (paper)",
                       "% of peak (ours)"});
  for (std::size_t walkers : {10u, 50u, 100u, 144u}) {
    job.n_walkers = walkers;
    const cluster::SimulationResult r = cluster::simulate_wl_lsms(machine, job);
    csv.row({static_cast<double>(walkers), static_cast<double>(r.cores),
             r.sustained_flops / 1e12, r.fraction_of_peak});
    table.row({std::to_string(walkers), std::to_string(r.cores),
               io::format_double(paper_tflops(r.cores), 1),
               io::format_double(r.sustained_flops / 1e12, 1),
               "75.8", io::format_double(100.0 * r.fraction_of_peak, 1)});
  }
  table.print();
  std::printf("full series written to table2_sustained.csv\n");

  job.n_walkers = 144;
  const cluster::SimulationResult headline =
      cluster::simulate_wl_lsms(machine, job);
  std::printf(
      "\nheadline run: %s on %zu cores (%.1f%% of peak); paper: 1.029 "
      "PFlop/s on 147,464 cores (75.8%%)\n",
      io::format_flops(headline.sustained_flops).c_str(), headline.cores,
      100.0 * headline.fraction_of_peak);

  // Measured on this host rather than modeled: the share of retired flops
  // flowing through ZGEMM in one paper-geometry (65-atom LIZ) zone solve.
  // The paper attributes "the bulk of the calculation" to ZGEMM; the blocked
  // Schur path keeps that true of this reproduction.
  {
    const lsms::LsmsSolver solver(lattice::make_fe_supercell(2),
                                  lsms::fe_lsms_parameters());
    Rng rng(1);
    const auto config = spin::MomentConfiguration::random(16, rng);
    perf::FlopWindow window;
    solver.local_energy(0, config);
    std::printf(
        "measured on this host: %.1f%% of retired flops in ZGEMM for one "
        "65-atom LIZ solve\n",
        100.0 * window.gemm_fraction());
  }
  return 0;
}
