// Ablation: Wang-Landau vs spin dynamics — the paper's opening argument.
//
// §I: "for systems with corrugated energy surfaces, molecular or spin
// dynamics simulations tend to be stuck in local energy minima and
// unrealistically long simulations would be required to sample large
// enough parts of phase space"; Wang-Landau "provide[s] an intelligent way
// to overcome the time-scale dilemma".
//
// Demonstration on an anisotropic nanomagnet with a barrier of ~22 k_B T:
// stochastic LLG trajectories of growing length never cross the barrier,
// while one Wang-Landau joint-DOS run measures the *whole* free-energy
// profile including the barrier top.
#include "bench_common.hpp"

#include <cmath>

#include "dynamics/llg.hpp"
#include "io/table.hpp"
#include "lattice/cluster.hpp"
#include "thermo/joint_observables.hpp"
#include "wl/joint_wl.hpp"

namespace {

using namespace wlsms;

heisenberg::HeisenbergModel particle_model() {
  // An 8-spin cube with exchange and a strong shared easy axis.
  const auto structure = lattice::make_cubic_cluster(
      lattice::CubicLattice::kSimpleCubic, 1.0, 2, 2, 2);
  heisenberg::HeisenbergModel model(structure, {6.0e-3});
  model.set_uniform_anisotropy(2.0e-3, {0.0, 0.0, 1.0});
  return model;
}

}  // namespace

int main() {
  using namespace wlsms;
  bench::banner("ablation: spin dynamics vs Wang-Landau (§I)",
                "dynamics is trapped by the switching barrier; one WL run "
                "maps the whole landscape");

  const heisenberg::HeisenbergModel model = particle_model();
  const double t = 150.0;
  const double kt = units::k_boltzmann_ry * t;

  // --- stochastic LLG trajectories of growing length ----------------------
  io::TextTable llg_table(
      {"LLG steps", "reduced time", "min M_z reached", "switched?"});
  for (std::uint64_t steps : {20000u, 80000u, 320000u}) {
    dynamics::LlgParameters params;
    params.damping = 0.3;
    params.timestep = 1.0;
    params.temperature_k = t;
    params.seed = 17;
    dynamics::SpinDynamics trajectory(
        model, spin::MomentConfiguration::ferromagnetic(model.n_sites()),
        params);
    double min_mz = 1.0;
    for (std::uint64_t k = 0; k < steps / 100; ++k) {
      trajectory.run(100);
      min_mz = std::min(min_mz, trajectory.magnetization_z());
    }
    llg_table.row({std::to_string(steps),
                   io::format_double(trajectory.time(), 0),
                   io::format_double(min_mz, 3),
                   min_mz < -0.5 ? "yes" : "no"});
  }
  llg_table.print();

  // --- one Wang-Landau joint-DOS run ---------------------------------------
  const wl::HeisenbergEnergy energy(particle_model());
  const double e0 = energy.model().ferromagnetic_energy();
  wl::JointWangLandauConfig config;
  config.grid.e_min = e0 + 0.5 * 8.0 * units::k_boltzmann_ry * 100.0;
  config.grid.e_max = 0.4 * std::abs(e0);
  config.grid.e_bins = 40;
  config.grid.m_min = -1.02;
  config.grid.m_max = 1.02;
  config.grid.m_bins = 21;
  config.grid.e_kernel_fraction = 0.012;
  config.grid.m_kernel_fraction = 0.024;
  config.flatness = 0.6;
  config.check_interval = 10000;
  config.max_iteration_steps = 3000000;
  config.max_steps = 200000000;
  wl::JointWangLandau sampler(energy, config,
                              std::make_unique<wl::HalvingSchedule>(1.0, 1e-5),
                              Rng(31));
  sampler.run();

  const double barrier = thermo::switching_barrier(sampler.dos(), t);
  std::printf(
      "\nWang-Landau: %llu steps -> full F(M_z; %.0f K) profile;\n"
      "switching barrier dF = %.3f mRy = %.1f k_B T (the trajectories above\n"
      "would need ~exp(dF/k_B T) ~ %.0e attempt times to cross it once).\n",
      static_cast<unsigned long long>(sampler.stats().total_steps), t,
      1e3 * barrier, barrier / kt, std::exp(barrier / kt));
  std::printf(
      "\nReading: the dynamics never leaves the +z well on any feasible\n"
      "trajectory, yet the flat-histogram walk visits the barrier top as\n"
      "often as the wells and measures dF directly — the paper's case for\n"
      "WL over dynamics, reproduced end to end.\n");
  return 0;
}
