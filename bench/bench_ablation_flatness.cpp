// Ablation: the flatness parameter A of eq. 7 ("the flatness parameter
// 0 < A < 1 controls the accuracy of the estimated g(E), with increasing
// accuracy as A approaches unity"). Measures cost (WL steps) and accuracy
// (Curie temperature and U(900 K) against a fixed Metropolis reference) on
// the 16-atom iron surrogate.
#include "bench_common.hpp"

#include "io/table.hpp"
#include "mc/metropolis.hpp"

int main() {
  using namespace wlsms;
  bench::banner("ablation: flatness parameter A (eq. 7)",
                "accuracy of g(E) increases as A -> 1, at higher cost");

  wl::HeisenbergEnergy energy = bench::fe_surrogate(2);

  // Metropolis reference at 900 K.
  Rng mc_rng(99);
  mc::MetropolisConfig mc_config;
  mc_config.temperature_k = 900.0;
  mc_config.thermalization_steps = 200000;
  mc_config.measurement_steps = 800000;
  mc_config.measure_interval = 16;
  const mc::MetropolisResult reference = mc::metropolis_run(
      energy, spin::MomentConfiguration::random(16, mc_rng), mc_config,
      mc_rng);
  std::printf("Metropolis reference: U(900 K) = %.5f Ry\n\n",
              reference.mean_energy);

  io::TextTable table({"A", "WL steps [M]", "forced iters", "U(900K) [Ry]",
                       "|dU| vs Metropolis", "Tc [K]"});
  for (double flatness : {0.5, 0.7, 0.8, 0.9, 0.95}) {
    Rng window_rng(5);
    wl::WangLandauConfig config;
    config.grid = wl::thermal_window(
        energy, energy.model().ferromagnetic_energy(), 150.0, window_rng);
    config.n_walkers = 8;
    config.check_interval = 5000;
    config.flatness = flatness;
    config.max_iteration_steps = 2000000;
    config.max_steps = 300000000;

    wl::WangLandau sampler(energy, config,
                           std::make_unique<wl::HalvingSchedule>(1.0, 1e-6),
                           Rng(123));
    sampler.run();
    const thermo::DosTable dos = thermo::dos_table(sampler.dos());
    const double u900 = thermo::observables_at(dos, 900.0).internal_energy;
    const auto tc = thermo::estimate_curie_temperature(dos, 250, 3000);

    table.row({io::format_double(flatness, 2),
               io::format_double(sampler.stats().total_steps / 1e6, 1),
               std::to_string(sampler.stats().forced_iterations),
               io::format_double(u900, 5),
               io::format_double(std::abs(u900 - reference.mean_energy), 5),
               io::format_double(tc.tc, 0)});
  }
  table.print();
  std::printf(
      "\nReading: larger A demands more visits per iteration, so the cost\n"
      "grows steeply with A (the paper's accuracy/cost dial, §II-A). On\n"
      "this 16-atom system the estimator is already canonical-accurate at\n"
      "A = 0.5; the stricter settings buy insurance for rougher landscapes.\n");
  return 0;
}
