// Speculative mixed-fidelity evaluation measured at the paper geometry: the
// same Wang-Landau schedule driven twice over the 16-atom multiple-
// scattering substrate — once exact-only through the synchronous service,
// once with the Heisenberg speculator screening proposals in front of it —
// and the screening accounted for: hit rate (moves resolved without an
// exact LSMS call), audited surrogate mismatch vs the error budget, and
// effective WL steps per second both ways.
//
// The surrogate warm-starts from the shipped reference exchange constants
// (what a production run would do; the online refit keeps improving them
// from the audit stream), and the driver's forced-iteration cap walks gamma
// down so the run samples both the rough-ln-g and the converged regime.
//
// Writes BENCH_spec.json (path = argv[1], default ./BENCH_spec.json) for
// regression tracking; `ctest -L perf` runs it as perf_speculation. Fails
// loudly when the hit rate drops below the 40 % acceptance floor or the
// audited mismatch leaves the error budget.
#include "bench_common.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>

#include "comm/factory.hpp"
#include "io/table.hpp"
#include "lsms/solver.hpp"
#include "wl/driver.hpp"
#include "wl/speculator.hpp"

namespace {

using namespace wlsms;

constexpr std::size_t kCells = 2;        // paper geometry: 2x2x2 bcc = 16 atoms
constexpr std::uint64_t kSteps = 8000;   // WL steps per run
constexpr double kHitFloor = 0.40;       // acceptance: >= 40 % resolved
constexpr double kErrorBudget = 2e-3;    // [Ry] audited-mismatch trip level

struct RunResult {
  double seconds = 0.0;
  wl::DriverStats stats;
  wl::SpeculationStats speculation;
  double residual_rms = 0.0;
};

RunResult run(const wl::LsmsEnergy& energy, const wl::WangLandauConfig& config,
              std::size_t n_atoms, bool speculate) {
  comm::EnergyServiceSpec spec;
  spec.kind = comm::ServiceKind::kSynchronous;
  spec.energy = &energy;
  if (speculate) {
    spec.speculate = true;
    spec.speculation.band = 1.5;
    spec.speculation.audit_fraction = 0.05;
    spec.speculation.refit_interval = 32;
    spec.speculation.error_budget = kErrorBudget;
    spec.speculation.n_shells = 4;  // 2 extra shells below the 2-shell floor
    std::vector<double> j = lsms::fe_reference_exchange();
    for (double& v : j) v *= lsms::fe_exchange_energy_scale;
    spec.speculation.initial_j = std::move(j);
  }
  const auto service = comm::make_energy_service(spec);

  RunResult out;
  perf::Timer timer;
  wl::WlDriver driver(n_atoms, *service, config,
                      std::make_unique<wl::HalvingSchedule>(1.0, 1e-8),
                      Rng(2024));
  out.stats = driver.run();
  out.seconds = timer.seconds();
  if (const auto* speculative =
          dynamic_cast<const wl::SpeculativeEnergyService*>(service.get())) {
    out.speculation = speculative->stats();
    out.residual_rms = speculative->speculator().residual_rms();
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner(
      "speculative mixed-fidelity evaluation (Heisenberg screen before LSMS)",
      "surrogate resolves accept/reject away from the WL boundary; exact "
      "solves only for boundary moves plus a deterministic audit stream");

  const std::string json_path = argc > 1 ? argv[1] : "BENCH_spec.json";

  const auto solver = std::make_shared<const lsms::LsmsSolver>(
      lattice::make_fe_supercell(kCells), lsms::fe_lsms_parameters_fast());
  const wl::LsmsEnergy energy(solver);
  const std::size_t n = solver->n_atoms();
  std::printf("substrate: %zu atoms, %zu-atom LIZ, %zu contour points\n",
              n, solver->liz_size(0), solver->contour().size());

  Rng rng(7);
  const double e_fm =
      energy.total_energy(spin::MomentConfiguration::ferromagnetic(n));
  double e_max = -1e300;
  for (int k = 0; k < 8; ++k)
    e_max = std::max(
        e_max, energy.total_energy(spin::MomentConfiguration::random(n, rng)));

  wl::WangLandauConfig config;
  config.grid.e_min = e_fm - 0.002;
  config.grid.e_max = e_max + 0.01;
  config.grid.bins = 64;
  config.grid.kernel_width_fraction = 0.5 / 64.0;
  config.n_walkers = 4;
  config.max_steps = kSteps;
  config.check_interval = 200;
  config.max_iteration_steps = 400;  // force gamma down over the run
  std::printf("workload: %llu WL steps, %zu walkers, window [%.3f, %.3f] Ry\n\n",
              static_cast<unsigned long long>(kSteps), config.n_walkers,
              config.grid.e_min, config.grid.e_max);

  const RunResult exact = run(energy, config, n, /*speculate=*/false);
  const RunResult spec = run(energy, config, n, /*speculate=*/true);
  const wl::SpeculationStats& s = spec.speculation;

  const double exact_rate =
      static_cast<double>(exact.stats.total_steps) / exact.seconds;
  const double spec_rate =
      static_cast<double>(spec.stats.total_steps) / spec.seconds;

  io::TextTable table({"mode", "s total", "WL steps/s", "exact calls"});
  table.row({"exact-only", io::format_double(exact.seconds, 3),
             io::format_double(exact_rate, 2),
             std::to_string(exact.stats.total_steps)});
  const std::uint64_t exact_calls =
      s.proposed - s.speculated + s.forwarded + s.retries;
  table.row({"speculative", io::format_double(spec.seconds, 3),
             io::format_double(spec_rate, 2), std::to_string(exact_calls)});
  table.print();

  std::printf(
      "\nscreened %llu proposals: %llu resolved by surrogate (hit rate "
      "%.1f %%), %llu audited, %llu boundary, %llu warmup, %llu tripped\n",
      static_cast<unsigned long long>(s.proposed),
      static_cast<unsigned long long>(s.speculated), 100.0 * s.hit_rate(),
      static_cast<unsigned long long>(s.audits),
      static_cast<unsigned long long>(s.boundary_exact),
      static_cast<unsigned long long>(s.warmup_exact),
      static_cast<unsigned long long>(s.tripped_exact));
  std::printf(
      "surrogate upkeep: %llu refits adopted, %llu rejected; residual rms "
      "%.3e Ry (budget %.1e), %llu trips / %llu recoveries\n",
      static_cast<unsigned long long>(s.refits),
      static_cast<unsigned long long>(s.refits_rejected), spec.residual_rms,
      kErrorBudget, static_cast<unsigned long long>(s.trips),
      static_cast<unsigned long long>(s.untrips));
  std::printf("effective WL throughput: %.2fx exact-only\n",
              spec_rate / exact_rate);

  const bool hit_ok = s.hit_rate() >= kHitFloor;
  const bool budget_ok = spec.residual_rms <= kErrorBudget;
  if (!hit_ok)
    std::printf("** hit rate %.1f %% below the %.0f %% acceptance floor **\n",
                100.0 * s.hit_rate(), 100.0 * kHitFloor);
  if (!budget_ok)
    std::printf("** audited mismatch rms %.3e over the %.1e Ry budget **\n",
                spec.residual_rms, kErrorBudget);

  std::FILE* json = std::fopen(json_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(
      json,
      "{\n"
      "  \"atoms\": %zu,\n"
      "  \"wl_steps\": %llu,\n"
      "  \"proposed\": %llu,\n"
      "  \"speculated\": %llu,\n"
      "  \"hit_rate\": %.4f,\n"
      "  \"audits\": %llu,\n"
      "  \"audited_mismatch_rms_ry\": %.6e,\n"
      "  \"error_budget_ry\": %.6e,\n"
      "  \"trips\": %llu,\n"
      "  \"untrips\": %llu,\n"
      "  \"refits_adopted\": %llu,\n"
      "  \"refits_rejected\": %llu,\n"
      "  \"exact_only\": {\"s_total\": %.6e, \"steps_per_s\": %.4f},\n"
      "  \"speculative\": {\"s_total\": %.6e, \"steps_per_s\": %.4f, "
      "\"exact_calls\": %llu},\n"
      "  \"effective_speedup\": %.4f\n"
      "}\n",
      n, static_cast<unsigned long long>(kSteps),
      static_cast<unsigned long long>(s.proposed),
      static_cast<unsigned long long>(s.speculated), s.hit_rate(),
      static_cast<unsigned long long>(s.audits), spec.residual_rms,
      kErrorBudget, static_cast<unsigned long long>(s.trips),
      static_cast<unsigned long long>(s.untrips),
      static_cast<unsigned long long>(s.refits),
      static_cast<unsigned long long>(s.refits_rejected), exact.seconds,
      exact_rate, spec.seconds, spec_rate,
      static_cast<unsigned long long>(exact_calls), spec_rate / exact_rate);
  std::fclose(json);
  std::printf("results written to %s\n", json_path.c_str());

  return (hit_ok && budget_ok) ? 0 : 1;
}
