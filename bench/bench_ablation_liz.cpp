// Ablation: the local-interaction-zone radius (paper §II-B: the LIZ is the
// range of the Green function; production runs use 11.5 a0 = 65 atoms).
// Sweeps the LIZ radius on the real multiple-scattering substrate and
// reports the zone size, the FM/AFM energy splitting, the extracted
// nearest-neighbour exchange, and the per-energy-evaluation flop cost —
// the locality/cost trade-off behind LSMS's linear scaling.
#include "bench_common.hpp"

#include "io/table.hpp"
#include "lsms/cost_model.hpp"
#include "lsms/exchange.hpp"
#include "lsms/solver.hpp"

int main() {
  using namespace wlsms;
  bench::banner("ablation: LIZ radius (paper: 11.5 a0 -> 65 atoms)",
                "the Green function is nearsighted; each atom needs only its "
                "zone");

  const lattice::Structure cell = lattice::make_fe_supercell(2);
  std::vector<bool> sublattice(cell.size());
  for (std::size_t i = 0; i < cell.size(); ++i) sublattice[i] = (i % 2 == 1);

  io::TextTable table({"LIZ radius [a0]", "zone atoms", "E_AFM - E_FM [mRy]",
                       "J1 [mRy]", "GFlop / energy eval"});
  double previous_split = 0.0;
  for (double radius : {5.0, 5.6, 7.7, 9.0, 9.5}) {
    lsms::LsmsParameters params = lsms::fe_lsms_parameters_fast();
    params.liz_radius = radius;
    const lsms::LsmsSolver solver(cell, params);

    const double e_fm =
        solver.energy(spin::MomentConfiguration::ferromagnetic(cell.size()));
    const double e_afm =
        solver.energy(spin::MomentConfiguration::staggered(sublattice));
    Rng rng(42);
    const lsms::ExtractedExchange exchange =
        lsms::extract_exchange(solver, 1, 16, rng);

    table.row({io::format_double(radius, 1),
               std::to_string(solver.liz_size(0)),
               io::format_double(1e3 * (e_afm - e_fm), 2),
               io::format_double(1e3 * exchange.shells[0].j, 3),
               io::format_double(
                   static_cast<double>(solver.flops_per_energy()) / 1e9, 2)});
    previous_split = e_afm - e_fm;
  }
  (void)previous_split;
  table.print();
  std::printf(
      "\nReading: the exchange physics converges with the zone radius while\n"
      "the dense-solve cost grows ~cubically with zone size — the paper's\n"
      "one-atom-per-core decomposition pays exactly this cost per core.\n"
      "(The production 11.5 a0 / 65-atom zone at lmax = 3 costs %.0f GFlop\n"
      "per atom per energy evaluation.)\n",
      static_cast<double>(lsms::flops_per_atom_point(lsms::LsmsFidelity{})) *
          31.0 / 1e9);
  return 0;
}
