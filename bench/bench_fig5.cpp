// Reproduces Fig. 5 of the paper: the free energy F' = F + k_B T ln g0 for
// a system of 250 iron atoms as a function of temperature. The plotted
// quantity carries the unknown normalization g0 (paper eqs. 9-10), so only
// its shape — monotone decreasing, increasingly steep — is physical.
#include "bench_common.hpp"

#include "io/csv.hpp"
#include "io/table.hpp"

int main() {
  using namespace wlsms;
  bench::banner("Figure 5",
                "free energy F' (with unknown g0 offset) of 250 Fe atoms vs "
                "temperature");

  const bench::ConvergedRun run = bench::converge_fe_dos(5);
  const auto sweep = thermo::temperature_sweep(run.table, 100.0, 3000.0, 59);

  io::CsvWriter csv("fig5_free_energy_250.csv",
                    {"temperature_k", "free_energy_ry", "entropy_ry_per_k"});
  io::TextTable table({"T [K]", "F' [Ry]", "S' [Ry/K]"});
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    csv.row({sweep[i].temperature, sweep[i].free_energy, sweep[i].entropy});
    if (i % 4 == 0)
      table.row({io::format_double(sweep[i].temperature, 0),
                 io::format_double(sweep[i].free_energy, 4),
                 io::format_double(sweep[i].entropy * 1e6, 2) + "e-6"});
  }
  table.print();
  std::printf("full series written to %s\n", csv.path().c_str());

  // Shape checks matching the paper's figure.
  bool monotone = true;
  for (std::size_t i = 1; i < sweep.size(); ++i)
    monotone = monotone && (sweep[i].free_energy < sweep[i - 1].free_energy);
  std::printf("\nF'(T) monotone decreasing: %s (paper: yes)\n",
              monotone ? "yes" : "NO");
  const double slope_low =
      (sweep[4].free_energy - sweep[0].free_energy) /
      (sweep[4].temperature - sweep[0].temperature);
  const double slope_high =
      (sweep.back().free_energy - sweep[sweep.size() - 5].free_energy) /
      (sweep.back().temperature - sweep[sweep.size() - 5].temperature);
  std::printf("slope steepens from %.2e to %.2e Ry/K (entropy growth): %s\n",
              slope_low, slope_high,
              (slope_high < slope_low) ? "yes" : "NO");
  return 0;
}
