// The communication layer measured for real: submit -> retrieve round-trip
// latency of the distributed energy service on both transports, the
// group-sharded evaluation time of the paper's 16-site iron cell, and a
// Fig.-7-style weak-scaling series over genuine fork()ed OS processes
// (groups x 1 rank, fixed WL evaluations per group — the paper's "adding
// walkers adds cores at constant runtime" experiment, scaled to this host).
//
// Every distributed total is cross-checked against the serial solver: the
// per-atom gather plus atom-ordered sum makes them bit-identical, and this
// bench fails loudly if they ever are not.
//
// Writes BENCH_comm.json (path = argv[1], default ./BENCH_comm.json) for
// regression tracking; `ctest -L perf` runs it as perf_comm.
#include "bench_common.hpp"

#include <cmath>
#include <cstdlib>
#include <string>

#include "comm/distributed_service.hpp"
#include "comm/factory.hpp"
#include "io/table.hpp"
#include "lsms/solver.hpp"
#include "obs/metrics.hpp"

namespace {

using namespace wlsms;

/// Wire-level counters of the byte-stream transports (process + tcp): a
/// "frame" is one logical message, a "batch" is one physical write —
/// frames/batch is the controller-side coalescing win.
struct StreamCounters {
  std::uint64_t frames = 0;
  std::uint64_t batches = 0;
  std::uint64_t bytes = 0;
};

StreamCounters stream_counters() {
  StreamCounters c;
  c.frames = obs::Registry::instance().counter("comm.stream.frames_sent").value();
  c.batches =
      obs::Registry::instance().counter("comm.stream.batches_sent").value();
  c.bytes = obs::Registry::instance().counter("comm.stream.bytes_sent").value();
  return c;
}

StreamCounters operator-(const StreamCounters& a, const StreamCounters& b) {
  return {a.frames - b.frames, a.batches - b.batches, a.bytes - b.bytes};
}

struct EvalRun {
  double seconds = 0.0;
  double max_diff = 0.0;  ///< vs the serial solver (must be exactly 0)
};

// Pushes `n_evals` random configurations through a freshly built
// distributed service (construction excluded from the timing) and checks
// every total against the serial reference.
EvalRun run_evals(const wl::LsmsEnergy& energy, comm::Transport transport,
                  std::size_t groups, std::size_t group_size,
                  std::size_t n_evals, std::uint64_t seed) {
  comm::EnergyServiceSpec spec;
  spec.kind = comm::ServiceKind::kDistributed;
  spec.energy = &energy;
  spec.distributed.n_groups = groups;
  spec.distributed.group_size = group_size;
  spec.distributed.transport = transport;
  const std::unique_ptr<wl::EnergyService> service =
      comm::make_energy_service(spec);

  Rng rng(seed);
  std::vector<spin::MomentConfiguration> configs;
  for (std::size_t k = 0; k < n_evals; ++k)
    configs.push_back(
        spin::MomentConfiguration::random(energy.n_sites(), rng));

  perf::Timer timer;
  for (std::size_t k = 0; k < n_evals; ++k)
    service->submit({k % groups, k + 1, configs[k]});
  std::vector<double> energies(n_evals, 0.0);
  for (std::size_t k = 0; k < n_evals; ++k) {
    const wl::EnergyResult result = service->retrieve();
    energies[result.ticket - 1] = result.energy;
  }
  EvalRun run;
  run.seconds = timer.seconds();
  for (std::size_t k = 0; k < n_evals; ++k)
    run.max_diff = std::max(
        run.max_diff,
        std::fabs(energies[k] - energy.total_energy(configs[k])));
  return run;
}

struct DeltaWalk {
  double seconds = 0.0;
  std::size_t evals = 0;
  StreamCounters wire;    ///< frames/batches/bytes the walk put on the wire
  double max_diff = 0.0;  ///< vs the serial solver (must be exactly 0)
};

// A Wang-Landau-shaped workload on one group: sequential single-moved-site
// evaluations, so after the first full scatter every frame is a small delta
// — the traffic controller-side coalescing exists for.
DeltaWalk run_delta_walk(const wl::LsmsEnergy& energy,
                         std::shared_ptr<const lsms::LsmsSolver> solver,
                         comm::Transport transport, std::size_t group_size,
                         std::size_t n_evals, std::uint64_t seed) {
  comm::DistributedConfig config;
  config.n_groups = 1;
  config.group_size = group_size;
  config.transport = transport;
  comm::DistributedEnergyService service(std::move(solver), config);

  Rng rng(seed);
  spin::MomentConfiguration moments =
      spin::MomentConfiguration::random(energy.n_sites(), rng);
  DeltaWalk walk;
  walk.evals = n_evals;
  const StreamCounters before = stream_counters();
  perf::Timer timer;
  for (std::size_t k = 0; k < n_evals; ++k) {
    moments.set(rng.uniform_index(energy.n_sites()), rng.unit_vector());
    service.submit({0, k + 1, moments});
    const wl::EnergyResult result = service.retrieve();
    walk.max_diff = std::max(
        walk.max_diff, std::fabs(result.energy - energy.total_energy(moments)));
  }
  walk.seconds = timer.seconds();
  walk.wire = stream_counters() - before;
  return walk;
}

struct BurstResult {
  std::size_t frames_sent = 0;  ///< logical messages the controller sent
  StreamCounters wire;          ///< what actually hit the wire
};

// The coalescing micro-demonstration: a burst of small frames to every rank
// of a TCP echo group, corked per rank and flushed as one batched write per
// rank — frames/batch is the syscall (and, with TCP_NODELAY, packet) win.
BurstResult run_tcp_burst(std::size_t n_ranks, std::size_t frames_per_rank) {
  auto comm = comm::make_tcp_communicator(
      n_ranks,
      [](comm::WorkerChannel& channel) {
        while (std::optional<comm::Message> message = channel.recv())
          channel.send(*message);
      },
      comm::TcpOptions{});

  BurstResult burst;
  const StreamCounters before = stream_counters();
  comm::Message small;
  small.payload.resize(64);
  for (std::size_t f = 0; f < frames_per_rank; ++f)
    for (std::size_t r = 0; r < n_ranks; ++r) {
      small.tag = static_cast<std::uint32_t>(f);
      if (comm->send(r, small)) ++burst.frames_sent;
    }
  // Echoes drain only after the corks flush (first recv cycle) — collect
  // them all so the workers finished before the counters are read.
  std::size_t echoed = 0;
  while (echoed < burst.frames_sent)
    if (comm->recv(std::chrono::milliseconds(100))) ++echoed;
  burst.wire = stream_counters() - before;
  comm->shutdown();
  return burst;
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner("communication layer (transports, sharding, weak scaling)",
                "one WL master feeding M independent N-core LSMS groups "
                "(Fig. 3); runtime stays flat as walkers add groups (Fig. 7)");

  const std::string json_path = argc > 1 ? argv[1] : "BENCH_comm.json";

  // The paper's 16-site benchmark geometry at reduced-LIZ fidelity.
  const auto solver = std::make_shared<const lsms::LsmsSolver>(
      lattice::make_fe_supercell(2), lsms::fe_lsms_parameters_fast());
  const wl::LsmsEnergy energy(solver);

  // Serial reference cost (amortized over a few evaluations).
  {
    Rng rng(3);
    auto cfg = spin::MomentConfiguration::random(energy.n_sites(), rng);
    (void)energy.total_energy(cfg);  // warm the t-matrix cache paths
  }
  perf::Timer serial_timer;
  constexpr std::size_t kSerialEvals = 4;
  {
    Rng rng(4);
    for (std::size_t k = 0; k < kSerialEvals; ++k)
      (void)energy.total_energy(
          spin::MomentConfiguration::random(energy.n_sites(), rng));
  }
  const double serial_s = serial_timer.seconds() / kSerialEvals;
  std::printf("serial reference: %.1f ms per 16-site evaluation\n\n",
              serial_s * 1e3);

  // --- submit -> retrieve latency per transport, single 1-rank group ------
  constexpr std::size_t kLatencyEvals = 6;
  const EvalRun lat_inproc = run_evals(energy, comm::Transport::kInProcess, 1,
                                       1, kLatencyEvals, 11);
  const EvalRun lat_proc =
      run_evals(energy, comm::Transport::kProcess, 1, 1, kLatencyEvals, 11);
  const EvalRun lat_tcp =
      run_evals(energy, comm::Transport::kTcp, 1, 1, kLatencyEvals, 11);

  // --- group-sharded 16-site evaluation (1 group x 4 ranks) ---------------
  constexpr std::size_t kShardEvals = 6;
  const EvalRun shard_inproc = run_evals(energy, comm::Transport::kInProcess,
                                         1, 4, kShardEvals, 13);
  const EvalRun shard_proc =
      run_evals(energy, comm::Transport::kProcess, 1, 4, kShardEvals, 13);
  const EvalRun shard_tcp =
      run_evals(energy, comm::Transport::kTcp, 1, 4, kShardEvals, 13);

  io::TextTable table({"configuration", "s/eval", "vs serial", "max |dE|"});
  const auto add_row = [&](const char* label, const EvalRun& run,
                           std::size_t evals) {
    table.row({label, io::format_double(run.seconds / evals, 4),
               io::format_double(run.seconds / evals / serial_s, 2) + "x",
               run.max_diff == 0.0 ? "0 (bit-identical)"
                                   : io::format_double(run.max_diff, 12)});
  };
  add_row("inprocess 1x1", lat_inproc, kLatencyEvals);
  add_row("process   1x1", lat_proc, kLatencyEvals);
  add_row("tcp       1x1 (loopback)", lat_tcp, kLatencyEvals);
  add_row("inprocess 1x4 (sharded)", shard_inproc, kShardEvals);
  add_row("process   1x4 (sharded)", shard_proc, kShardEvals);
  add_row("tcp       1x4 (sharded)", shard_tcp, kShardEvals);
  table.print();

  // --- delta-scatter wire traffic, 1x4 TCP group --------------------------
  // Frames vs batches per evaluation: heartbeats and small delta frames to
  // the same rank cork into one physical write, so batches/eval stays below
  // frames/eval — each batch is one syscall and (TCP_NODELAY) one packet.
  constexpr std::size_t kWalkEvals = 16;
  const DeltaWalk walk = run_delta_walk(energy, solver, comm::Transport::kTcp,
                                        4, kWalkEvals, 19);
  std::printf("\ndelta-scatter walk, tcp 1x4, %zu evals:\n", walk.evals);
  std::printf("  wire frames  / eval: %.2f\n",
              static_cast<double>(walk.wire.frames) / walk.evals);
  std::printf("  wire batches / eval: %.2f  (%.2f frames per batch)\n",
              static_cast<double>(walk.wire.batches) / walk.evals,
              walk.wire.batches > 0 ? static_cast<double>(walk.wire.frames) /
                                          static_cast<double>(walk.wire.batches)
                                    : 0.0);
  std::printf("  wire bytes   / eval: %.0f\n",
              static_cast<double>(walk.wire.bytes) / walk.evals);

  // --- coalescing burst: 16 small frames to each of 4 TCP ranks -----------
  const BurstResult burst = run_tcp_burst(4, 16);
  std::printf("\ncoalescing burst, tcp 4 ranks x 16 small frames:\n");
  std::printf("  frames sent: %zu   physical writes: %llu   (%.1fx fewer)\n",
              burst.frames_sent,
              static_cast<unsigned long long>(burst.wire.batches),
              burst.wire.batches > 0
                  ? static_cast<double>(burst.wire.frames) /
                        static_cast<double>(burst.wire.batches)
                  : 0.0);
  if (burst.wire.batches >= burst.wire.frames)
    std::printf("  ** coalescing had no effect — every frame paid a write **\n");

  // --- weak scaling over real OS processes (Fig. 7 shape) -----------------
  // Fixed evaluations per group; each group is one fork()ed rank. On a
  // multi-core host the runtime stays near-flat as groups are added; the
  // series still verifies the multi-process plumbing end to end on any
  // host (and the largest point runs >= 4 real processes).
  std::printf("\nweak scaling, process transport, %d evals per group:\n", 3);
  constexpr std::size_t kEvalsPerGroup = 3;
  const std::vector<std::size_t> group_counts = {1, 2, 4};
  std::vector<EvalRun> weak;
  io::TextTable wtable({"groups (= processes)", "runtime [s]", "vs 1 group"});
  for (std::size_t g : group_counts) {
    weak.push_back(run_evals(energy, comm::Transport::kProcess, g, 1,
                             g * kEvalsPerGroup, 17));
    wtable.row({std::to_string(g), io::format_double(weak.back().seconds, 3),
                io::format_double(weak.back().seconds / weak.front().seconds,
                                  2)});
  }
  wtable.print();

  double worst_diff = std::max(
      std::max(lat_inproc.max_diff, lat_proc.max_diff),
      std::max(shard_inproc.max_diff, shard_proc.max_diff));
  worst_diff = std::max(worst_diff, lat_tcp.max_diff);
  worst_diff = std::max(worst_diff, shard_tcp.max_diff);
  worst_diff = std::max(worst_diff, walk.max_diff);
  for (const EvalRun& run : weak)
    worst_diff = std::max(worst_diff, run.max_diff);
  std::printf("\nbit-identity vs serial solver: max |dE| = %.3e Ry%s\n",
              worst_diff, worst_diff == 0.0 ? " (exact)" : "  ** MISMATCH **");

  std::FILE* json = std::fopen(json_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(json,
               "{\n"
               "  \"serial_s_per_eval\": %.6e,\n"
               "  \"latency_s_per_eval\": {\"inprocess\": %.6e, "
               "\"process\": %.6e, \"tcp\": %.6e},\n"
               "  \"sharded_1x4_s_per_eval\": {\"inprocess\": %.6e, "
               "\"process\": %.6e, \"tcp\": %.6e},\n"
               "  \"delta_walk_tcp_1x4\": {\"evals\": %zu, "
               "\"frames_per_eval\": %.4f, \"batches_per_eval\": %.4f, "
               "\"bytes_per_eval\": %.1f},\n"
               "  \"coalescing_burst_tcp_4x16\": {\"frames\": %llu, "
               "\"batches\": %llu, \"frames_per_batch\": %.4f},\n"
               "  \"weak_scaling_process\": [\n",
               serial_s, lat_inproc.seconds / kLatencyEvals,
               lat_proc.seconds / kLatencyEvals,
               lat_tcp.seconds / kLatencyEvals,
               shard_inproc.seconds / kShardEvals,
               shard_proc.seconds / kShardEvals,
               shard_tcp.seconds / kShardEvals, walk.evals,
               static_cast<double>(walk.wire.frames) / walk.evals,
               static_cast<double>(walk.wire.batches) / walk.evals,
               static_cast<double>(walk.wire.bytes) / walk.evals,
               static_cast<unsigned long long>(burst.wire.frames),
               static_cast<unsigned long long>(burst.wire.batches),
               burst.wire.batches > 0
                   ? static_cast<double>(burst.wire.frames) /
                         static_cast<double>(burst.wire.batches)
                   : 0.0);
  for (std::size_t i = 0; i < weak.size(); ++i)
    std::fprintf(json,
                 "    {\"groups\": %zu, \"evals\": %zu, \"runtime_s\": %.6e}%s\n",
                 group_counts[i], group_counts[i] * kEvalsPerGroup,
                 weak[i].seconds, i + 1 < weak.size() ? "," : "");
  std::fprintf(json,
               "  ],\n"
               "  \"max_abs_energy_diff_vs_serial\": %.6e\n"
               "}\n",
               worst_diff);
  std::fclose(json);
  std::printf("results written to %s\n", json_path.c_str());

  return worst_diff == 0.0 ? 0 : 1;
}
