// The communication layer measured for real: submit -> retrieve round-trip
// latency of the distributed energy service on both transports, the
// group-sharded evaluation time of the paper's 16-site iron cell, and a
// Fig.-7-style weak-scaling series over genuine fork()ed OS processes
// (groups x 1 rank, fixed WL evaluations per group — the paper's "adding
// walkers adds cores at constant runtime" experiment, scaled to this host).
//
// Every distributed total is cross-checked against the serial solver: the
// per-atom gather plus atom-ordered sum makes them bit-identical, and this
// bench fails loudly if they ever are not.
//
// Writes BENCH_comm.json (path = argv[1], default ./BENCH_comm.json) for
// regression tracking; `ctest -L perf` runs it as perf_comm.
#include "bench_common.hpp"

#include <cmath>
#include <cstdlib>
#include <string>

#include "comm/factory.hpp"
#include "io/table.hpp"
#include "lsms/solver.hpp"

namespace {

using namespace wlsms;

struct EvalRun {
  double seconds = 0.0;
  double max_diff = 0.0;  ///< vs the serial solver (must be exactly 0)
};

// Pushes `n_evals` random configurations through a freshly built
// distributed service (construction excluded from the timing) and checks
// every total against the serial reference.
EvalRun run_evals(const wl::LsmsEnergy& energy, comm::Transport transport,
                  std::size_t groups, std::size_t group_size,
                  std::size_t n_evals, std::uint64_t seed) {
  comm::EnergyServiceSpec spec;
  spec.kind = comm::ServiceKind::kDistributed;
  spec.energy = &energy;
  spec.distributed.n_groups = groups;
  spec.distributed.group_size = group_size;
  spec.distributed.transport = transport;
  const std::unique_ptr<wl::EnergyService> service =
      comm::make_energy_service(spec);

  Rng rng(seed);
  std::vector<spin::MomentConfiguration> configs;
  for (std::size_t k = 0; k < n_evals; ++k)
    configs.push_back(
        spin::MomentConfiguration::random(energy.n_sites(), rng));

  perf::Timer timer;
  for (std::size_t k = 0; k < n_evals; ++k)
    service->submit({k % groups, k + 1, configs[k]});
  std::vector<double> energies(n_evals, 0.0);
  for (std::size_t k = 0; k < n_evals; ++k) {
    const wl::EnergyResult result = service->retrieve();
    energies[result.ticket - 1] = result.energy;
  }
  EvalRun run;
  run.seconds = timer.seconds();
  for (std::size_t k = 0; k < n_evals; ++k)
    run.max_diff = std::max(
        run.max_diff,
        std::fabs(energies[k] - energy.total_energy(configs[k])));
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner("communication layer (transports, sharding, weak scaling)",
                "one WL master feeding M independent N-core LSMS groups "
                "(Fig. 3); runtime stays flat as walkers add groups (Fig. 7)");

  const std::string json_path = argc > 1 ? argv[1] : "BENCH_comm.json";

  // The paper's 16-site benchmark geometry at reduced-LIZ fidelity.
  const auto solver = std::make_shared<const lsms::LsmsSolver>(
      lattice::make_fe_supercell(2), lsms::fe_lsms_parameters_fast());
  const wl::LsmsEnergy energy(solver);

  // Serial reference cost (amortized over a few evaluations).
  {
    Rng rng(3);
    auto cfg = spin::MomentConfiguration::random(energy.n_sites(), rng);
    (void)energy.total_energy(cfg);  // warm the t-matrix cache paths
  }
  perf::Timer serial_timer;
  constexpr std::size_t kSerialEvals = 4;
  {
    Rng rng(4);
    for (std::size_t k = 0; k < kSerialEvals; ++k)
      (void)energy.total_energy(
          spin::MomentConfiguration::random(energy.n_sites(), rng));
  }
  const double serial_s = serial_timer.seconds() / kSerialEvals;
  std::printf("serial reference: %.1f ms per 16-site evaluation\n\n",
              serial_s * 1e3);

  // --- submit -> retrieve latency per transport, single 1-rank group ------
  constexpr std::size_t kLatencyEvals = 6;
  const EvalRun lat_inproc = run_evals(energy, comm::Transport::kInProcess, 1,
                                       1, kLatencyEvals, 11);
  const EvalRun lat_proc =
      run_evals(energy, comm::Transport::kProcess, 1, 1, kLatencyEvals, 11);

  // --- group-sharded 16-site evaluation (1 group x 4 ranks) ---------------
  constexpr std::size_t kShardEvals = 6;
  const EvalRun shard_inproc = run_evals(energy, comm::Transport::kInProcess,
                                         1, 4, kShardEvals, 13);
  const EvalRun shard_proc =
      run_evals(energy, comm::Transport::kProcess, 1, 4, kShardEvals, 13);

  io::TextTable table({"configuration", "s/eval", "vs serial", "max |dE|"});
  const auto add_row = [&](const char* label, const EvalRun& run,
                           std::size_t evals) {
    table.row({label, io::format_double(run.seconds / evals, 4),
               io::format_double(run.seconds / evals / serial_s, 2) + "x",
               run.max_diff == 0.0 ? "0 (bit-identical)"
                                   : io::format_double(run.max_diff, 12)});
  };
  add_row("inprocess 1x1", lat_inproc, kLatencyEvals);
  add_row("process   1x1", lat_proc, kLatencyEvals);
  add_row("inprocess 1x4 (sharded)", shard_inproc, kShardEvals);
  add_row("process   1x4 (sharded)", shard_proc, kShardEvals);
  table.print();

  // --- weak scaling over real OS processes (Fig. 7 shape) -----------------
  // Fixed evaluations per group; each group is one fork()ed rank. On a
  // multi-core host the runtime stays near-flat as groups are added; the
  // series still verifies the multi-process plumbing end to end on any
  // host (and the largest point runs >= 4 real processes).
  std::printf("\nweak scaling, process transport, %d evals per group:\n", 3);
  constexpr std::size_t kEvalsPerGroup = 3;
  const std::vector<std::size_t> group_counts = {1, 2, 4};
  std::vector<EvalRun> weak;
  io::TextTable wtable({"groups (= processes)", "runtime [s]", "vs 1 group"});
  for (std::size_t g : group_counts) {
    weak.push_back(run_evals(energy, comm::Transport::kProcess, g, 1,
                             g * kEvalsPerGroup, 17));
    wtable.row({std::to_string(g), io::format_double(weak.back().seconds, 3),
                io::format_double(weak.back().seconds / weak.front().seconds,
                                  2)});
  }
  wtable.print();

  double worst_diff = std::max(
      std::max(lat_inproc.max_diff, lat_proc.max_diff),
      std::max(shard_inproc.max_diff, shard_proc.max_diff));
  for (const EvalRun& run : weak)
    worst_diff = std::max(worst_diff, run.max_diff);
  std::printf("\nbit-identity vs serial solver: max |dE| = %.3e Ry%s\n",
              worst_diff, worst_diff == 0.0 ? " (exact)" : "  ** MISMATCH **");

  std::FILE* json = std::fopen(json_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(json,
               "{\n"
               "  \"serial_s_per_eval\": %.6e,\n"
               "  \"latency_s_per_eval\": {\"inprocess\": %.6e, "
               "\"process\": %.6e},\n"
               "  \"sharded_1x4_s_per_eval\": {\"inprocess\": %.6e, "
               "\"process\": %.6e},\n"
               "  \"weak_scaling_process\": [\n",
               serial_s, lat_inproc.seconds / kLatencyEvals,
               lat_proc.seconds / kLatencyEvals,
               shard_inproc.seconds / kShardEvals,
               shard_proc.seconds / kShardEvals);
  for (std::size_t i = 0; i < weak.size(); ++i)
    std::fprintf(json,
                 "    {\"groups\": %zu, \"evals\": %zu, \"runtime_s\": %.6e}%s\n",
                 group_counts[i], group_counts[i] * kEvalsPerGroup,
                 weak[i].seconds, i + 1 < weak.size() ? "," : "");
  std::fprintf(json,
               "  ],\n"
               "  \"max_abs_energy_diff_vs_serial\": %.6e\n"
               "}\n",
               worst_diff);
  std::fclose(json);
  std::printf("results written to %s\n", json_path.c_str());

  return worst_diff == 0.0 ? 0 : 1;
}
