// Extension of the paper's §II-B: "we can easily transform back to the
// moments ... to determine the magnetization as a function of T in a joint
// density of states calculation". Converges the joint DOS g(E, M_z) of the
// 16-atom iron cell and reports the magnetization curve M(T) alongside the
// canonical Metropolis estimate.
#include "bench_common.hpp"

#include "io/csv.hpp"
#include "io/table.hpp"
#include "mc/metropolis.hpp"
#include "thermo/joint_observables.hpp"
#include "wl/joint_wl.hpp"

int main() {
  using namespace wlsms;
  bench::banner("extension: M(T) from the joint DOS (§II-B)",
                "magnetization vs temperature in a joint density of states "
                "calculation");

  wl::HeisenbergEnergy energy = bench::fe_surrogate(2);
  const double e_ground = energy.model().ferromagnetic_energy();

  wl::JointWangLandauConfig config;
  config.grid.e_min = e_ground + 0.5 * 16.0 * units::k_boltzmann_ry * 200.0;
  config.grid.e_max = 0.30 * std::abs(e_ground);
  config.grid.e_bins = 40;
  config.grid.m_min = -1.02;
  config.grid.m_max = 1.02;
  config.grid.m_bins = 21;
  config.grid.e_kernel_fraction = 0.012;   // ~half an E bin
  config.grid.m_kernel_fraction = 0.024;   // ~half an M bin
  config.flatness = 0.6;
  config.check_interval = 10000;
  config.max_iteration_steps = 3000000;
  config.max_steps = 200000000;

  wl::JointWangLandau sampler(energy, config,
                              std::make_unique<wl::HalvingSchedule>(1.0, 1e-5),
                              Rng(31));
  sampler.run();
  std::printf("joint DOS converged: %llu WL steps, %zu cells visited\n\n",
              static_cast<unsigned long long>(sampler.stats().total_steps),
              sampler.dos().visited_cells());

  // Metropolis reference for <|M|>(T). Note the observables differ slightly
  // (<|M_z|> from the joint DOS vs <|M|> canonically); for an isotropic
  // Heisenberg system they track each other up to a geometric factor that
  // tends to 1 in the ordered phase.
  std::vector<double> temperatures = {300.0, 600.0, 900.0, 1200.0, 1800.0};
  mc::MetropolisConfig mc_config;
  mc_config.thermalization_steps = 200000;
  mc_config.measurement_steps = 600000;
  mc_config.measure_interval = 16;
  Rng mc_rng(99);
  const auto mc_results =
      mc::metropolis_sweep(energy, temperatures, mc_config, mc_rng);

  io::CsvWriter csv("magnetization_curve.csv",
                    {"temperature_k", "m_joint_dos", "m_metropolis"});
  io::TextTable table(
      {"T [K]", "<|M_z|> (joint DOS)", "<|M|> (Metropolis)"});
  for (std::size_t i = 0; i < temperatures.size(); ++i) {
    const double m_wl =
        thermo::mean_abs_magnetization(sampler.dos(), temperatures[i]);
    csv.row({temperatures[i], m_wl, mc_results[i].mean_magnetization});
    table.row({io::format_double(temperatures[i], 0),
               io::format_double(m_wl, 3),
               io::format_double(mc_results[i].mean_magnetization, 3)});
  }
  table.print();
  std::printf("full series written to magnetization_curve.csv\n");

  std::printf(
      "\nShape checks: M(T) from the joint DOS is saturated at low T and\n"
      "collapses through the transition region, tracking the canonical\n"
      "reference qualitatively — and it comes from *one* converged g(E, M_z)\n"
      "with no further sampling, as §II-B asserts. (The constrained 2-D\n"
      "estimator resolves relative column weights less sharply than direct\n"
      "canonical sampling at matched cost; <|M_z|> vs <|M|> also differ by a\n"
      "geometric factor at high T.)\n");
  return 0;
}
