// Reproduces Fig. 4 of the paper: the unnormalized logarithmic Wang-Landau
// density of states ln g(E) for periodic systems of 16 (upper panel) and 250
// (lower panel) iron atoms. The series are printed (subsampled) and written
// as CSV next to the binary for replotting.
#include "bench_common.hpp"

#include "io/csv.hpp"
#include "io/table.hpp"

namespace {

void report_panel(const wlsms::bench::ConvergedRun& run, const char* csv_name) {
  using namespace wlsms;
  std::printf("\nln g(E), %zu sites (%zu visited bins, E in [%.4f, %.4f] Ry)\n",
              run.n_atoms, run.table.energy.size(), run.table.energy.front(),
              run.table.energy.back());

  io::CsvWriter csv(csv_name, {"energy_ry", "ln_g"});
  for (std::size_t i = 0; i < run.table.energy.size(); ++i)
    csv.row({run.table.energy[i], run.table.ln_g[i]});
  std::printf("full series written to %s\n", csv.path().c_str());

  io::TextTable table({"E [Ry]", "ln g(E)"});
  const std::size_t stride = std::max<std::size_t>(1, run.table.energy.size() / 16);
  for (std::size_t i = 0; i < run.table.energy.size(); i += stride)
    table.row({io::format_double(run.table.energy[i], 4),
               io::format_double(run.table.ln_g[i], 2)});
  table.print();

  // Shape checks the paper's panels show: ln g rises from the (ordered)
  // low-energy edge toward the high-entropy region.
  std::size_t argmax = 0;
  for (std::size_t i = 0; i < run.table.ln_g.size(); ++i)
    if (run.table.ln_g[i] > run.table.ln_g[argmax]) argmax = i;
  std::printf("maximum of ln g at E = %.4f Ry (bin %zu of %zu); "
              "ln g span = %.1f\n",
              run.table.energy[argmax], argmax, run.table.energy.size(),
              run.table.ln_g[argmax]);
}

}  // namespace

int main() {
  using namespace wlsms;
  bench::banner("Figure 4",
                "unnormalized ln g(E) for periodic 16- and 250-atom Fe "
                "systems (upper/lower panel)");

  const bench::ConvergedRun run16 = bench::converge_fe_dos(2);
  report_panel(run16, "fig4_16_sites.csv");

  const bench::ConvergedRun run250 = bench::converge_fe_dos(5);
  report_panel(run250, "fig4_250_sites.csv");

  std::printf(
      "\nExpected correspondence with the paper: both panels are smooth,\n"
      "monotonically rising from the ferromagnetic edge over the sampled\n"
      "window, with the 250-site ln g span roughly N-fold larger than the\n"
      "16-site one (extensive entropy).\n");
  return 0;
}
