#pragma once

/// \file bench_common.hpp
/// Shared setup for the reproduction harness: the calibrated iron surrogate
/// and the standard Wang-Landau convergence runs behind Tables I and
/// Figures 4-6 of the paper.

#include <cstdio>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "heisenberg/heisenberg.hpp"
#include "lattice/structure.hpp"
#include "lsms/fe_parameters.hpp"
#include "perf/timer.hpp"
#include "thermo/observables.hpp"
#include "wl/wanglandau.hpp"

namespace wlsms::bench {

/// The production surrogate for an n x n x n bcc Fe supercell: reference
/// exchange constants (extracted from the multiple-scattering substrate at
/// production fidelity) times the Curie-temperature calibration scale.
inline wl::HeisenbergEnergy fe_surrogate(std::size_t n_cells) {
  std::vector<double> j = lsms::fe_reference_exchange();
  for (double& v : j) v *= lsms::fe_exchange_energy_scale;
  return wl::HeisenbergEnergy(
      heisenberg::HeisenbergModel(lattice::make_fe_supercell(n_cells), j));
}

/// Result of one production Wang-Landau convergence run.
struct ConvergedRun {
  std::size_t n_atoms = 0;
  wl::WangLandauStats stats;
  thermo::DosTable table;
  double wall_seconds = 0.0;
  std::size_t n_walkers = 0;
};

/// Converges ln g(E) for the n x n x n iron cell down to gamma_final, with
/// the paper's walker counts scaled to this machine. Deterministic for a
/// given seed.
inline ConvergedRun converge_fe_dos(std::size_t n_cells,
                                    double gamma_final = 1e-6,
                                    std::uint64_t seed = 123) {
  wl::HeisenbergEnergy energy = fe_surrogate(n_cells);

  Rng window_rng(5);
  wl::WangLandauConfig config;
  config.grid = wl::thermal_window(
      energy, energy.model().ferromagnetic_energy(), 150.0, window_rng);
  config.n_walkers = 8;
  config.check_interval = 5000;
  config.flatness = 0.8;
  config.max_iteration_steps = 2000000;
  config.max_steps = 400000000;

  perf::Timer timer;
  wl::WangLandau sampler(energy, config,
                         std::make_unique<wl::HalvingSchedule>(1.0, gamma_final),
                         Rng(seed));
  sampler.run();

  ConvergedRun run;
  run.n_atoms = energy.n_sites();
  run.stats = sampler.stats();
  run.table = thermo::dos_table(sampler.dos());
  run.wall_seconds = timer.seconds();
  run.n_walkers = config.n_walkers;
  return run;
}

/// Prints the standard reproduction banner.
inline void banner(const char* experiment, const char* paper_statement) {
  std::printf("==============================================================\n");
  std::printf("WL-LSMS reproduction: %s\n", experiment);
  std::printf("Paper: %s\n", paper_statement);
  std::printf("==============================================================\n");
}

}  // namespace wlsms::bench
