// Ablation: single vs multiple Wang-Landau masters (paper §V outlook:
// "for cases where the energy evaluation [is] very fast ... we will try to
// distribute the work of the master, in order to scale to large numbers of
// walkers without running into limitations of Amdahl's law").
//
// Two parts:
//  1. the machine-level story via the discrete-event model: results/s vs
//     walker count for 1-8 masters at a fast (1 ms) energy function;
//  2. a correctness demonstration of the real threaded multi-master
//     implementation on the exactly solvable single bond.
#include "bench_common.hpp"

#include <cmath>

#include "cluster/des.hpp"
#include "io/table.hpp"
#include "lattice/cluster.hpp"
#include "wl/multimaster.hpp"

int main() {
  using namespace wlsms;
  bench::banner("ablation: multiple masters (§V outlook)",
                "distribute the master to escape Amdahl's law for fast "
                "energy functions");

  cluster::MachineDescription machine = cluster::jaguar_xt5();
  machine.master_service_time_s = 50e-6;
  machine.setup_time_s = 0.0;

  std::printf("throughput [results/s] for a 1 ms energy function "
              "(ideal master limit: %.0f /s per master)\n\n",
              1.0 / machine.master_service_time_s);

  io::TextTable table({"walkers", "1 master", "2 masters", "4 masters",
                       "8 masters", "ideal (no master)"});
  for (std::size_t walkers : {8u, 32u, 128u, 512u, 2048u}) {
    std::vector<std::string> cells{std::to_string(walkers)};
    for (std::size_t masters : {1u, 2u, 4u, 8u}) {
      cluster::JobDescription job;
      job.n_atoms = 16;
      job.n_walkers = walkers;
      job.steps_per_walker = 50;
      job.n_masters = masters;
      job.energy_time_override_s = 1e-3;
      job.compute_jitter = 0.0;
      const cluster::SimulationResult r =
          cluster::simulate_wl_lsms(machine, job);
      cells.push_back(io::format_double(
          static_cast<double>(r.results_processed) / r.makespan_s, 0));
    }
    cells.push_back(io::format_double(
        static_cast<double>(walkers) / 1e-3, 0));
    table.row(std::move(cells));
  }
  table.print();

  std::printf(
      "\nReading: one master saturates near 1/(service time) results/s; K\n"
      "masters scale the wall by K, exactly the fix the paper proposes.\n"
      "(With the production LSMS energies of tens of seconds the master is\n"
      "idle and a single driver suffices — see bench_fig7.)\n");

  // Correctness of the real threaded multi-master merge.
  const auto structure = lattice::make_cubic_cluster(
      lattice::CubicLattice::kSimpleCubic, 1.0, 2, 1, 1);
  const wl::HeisenbergEnergy energy(
      heisenberg::HeisenbergModel(structure, {1.0}));
  wl::WangLandauConfig per_master;
  per_master.grid = {-1.02, 1.02, 102, 0.005};
  per_master.n_walkers = 2;
  per_master.check_interval = 2000;
  per_master.flatness = 0.8;
  per_master.max_iteration_steps = 300000;
  per_master.max_steps = 40000000;

  std::printf("\nthreaded multi-master on the exact single bond "
              "(U at beta*J = 1; exact: %.5f)\n", -(1.0 / std::tanh(1.0) - 1.0));
  io::TextTable mm_table({"masters", "U(beta J = 1)", "total steps [M]"});
  for (std::size_t masters : {1u, 2u, 4u}) {
    const wl::MultiMasterResult result =
        wl::run_multimaster(energy, per_master, masters, 1e-4, Rng(17));
    const thermo::DosTable dos = thermo::dos_table(result.merged_dos);
    const double t = 1.0 / units::k_boltzmann_ry;
    std::uint64_t steps = 0;
    for (const auto& s : result.per_master) steps += s.total_steps;
    mm_table.row({std::to_string(masters),
                  io::format_double(
                      thermo::observables_at(dos, t).internal_energy, 5),
                  io::format_double(static_cast<double>(steps) / 1e6, 2)});
  }
  mm_table.print();
  return 0;
}
