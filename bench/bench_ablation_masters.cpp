// Ablation: single vs multiple Wang-Landau masters (paper §V outlook:
// "for cases where the energy evaluation [is] very fast ... we will try to
// distribute the work of the master, in order to scale to large numbers of
// walkers without running into limitations of Amdahl's law").
//
// Three parts:
//  1. the machine-level story via the discrete-event model: results/s vs
//     walker count for 1-8 masters at a fast (1 ms) energy function;
//  2. a correctness demonstration of the real threaded multi-master
//     implementation on the exactly solvable single bond;
//  3. the replica-exchange windowed decomposition (rewl.hpp) against the
//     single-master baseline at equal flatness and final gamma — the
//     energy-domain alternative to replicating masters.
#include "bench_common.hpp"

#include <cmath>

#include "cluster/des.hpp"
#include "io/table.hpp"
#include "lattice/cluster.hpp"
#include "wl/multimaster.hpp"
#include "wl/rewl.hpp"

int main() {
  using namespace wlsms;
  bench::banner("ablation: multiple masters (§V outlook)",
                "distribute the master to escape Amdahl's law for fast "
                "energy functions");

  cluster::MachineDescription machine = cluster::jaguar_xt5();
  machine.master_service_time_s = 50e-6;
  machine.setup_time_s = 0.0;

  std::printf("throughput [results/s] for a 1 ms energy function "
              "(ideal master limit: %.0f /s per master)\n\n",
              1.0 / machine.master_service_time_s);

  io::TextTable table({"walkers", "1 master", "2 masters", "4 masters",
                       "8 masters", "ideal (no master)"});
  for (std::size_t walkers : {8u, 32u, 128u, 512u, 2048u}) {
    std::vector<std::string> cells{std::to_string(walkers)};
    for (std::size_t masters : {1u, 2u, 4u, 8u}) {
      cluster::JobDescription job;
      job.n_atoms = 16;
      job.n_walkers = walkers;
      job.steps_per_walker = 50;
      job.n_masters = masters;
      job.energy_time_override_s = 1e-3;
      job.compute_jitter = 0.0;
      const cluster::SimulationResult r =
          cluster::simulate_wl_lsms(machine, job);
      cells.push_back(io::format_double(
          static_cast<double>(r.results_processed) / r.makespan_s, 0));
    }
    cells.push_back(io::format_double(
        static_cast<double>(walkers) / 1e-3, 0));
    table.row(std::move(cells));
  }
  table.print();

  std::printf(
      "\nReading: one master saturates near 1/(service time) results/s; K\n"
      "masters scale the wall by K, exactly the fix the paper proposes.\n"
      "(With the production LSMS energies of tens of seconds the master is\n"
      "idle and a single driver suffices — see bench_fig7.)\n");

  // Correctness of the real threaded multi-master merge.
  const auto structure = lattice::make_cubic_cluster(
      lattice::CubicLattice::kSimpleCubic, 1.0, 2, 1, 1);
  const wl::HeisenbergEnergy energy(
      heisenberg::HeisenbergModel(structure, {1.0}));
  wl::WangLandauConfig per_master;
  per_master.grid = {-1.02, 1.02, 102, 0.005};
  per_master.n_walkers = 2;
  per_master.check_interval = 2000;
  per_master.flatness = 0.8;
  per_master.max_iteration_steps = 300000;
  per_master.max_steps = 40000000;

  std::printf("\nthreaded multi-master on the exact single bond "
              "(U at beta*J = 1; exact: %.5f)\n", -(1.0 / std::tanh(1.0) - 1.0));
  io::TextTable mm_table({"masters", "U(beta J = 1)", "total steps [M]"});
  for (std::size_t masters : {1u, 2u, 4u}) {
    const wl::MultiMasterResult result =
        wl::run_multimaster(energy, per_master, masters, 1e-4, Rng(17));
    const thermo::DosTable dos = thermo::dos_table(result.merged_dos);
    const double t = 1.0 / units::k_boltzmann_ry;
    std::uint64_t steps = 0;
    for (const auto& s : result.per_master) steps += s.total_steps;
    mm_table.row({std::to_string(masters),
                  io::format_double(
                      thermo::observables_at(dos, t).internal_energy, 5),
                  io::format_double(static_cast<double>(steps) / 1e6, 2)});
  }
  mm_table.print();

  // Part 3: replica-exchange windowed WL (REWL) vs the single-master
  // baseline on the production 16-atom iron surrogate at equal flatness
  // and final gamma. All runs share one CPU here, so any speedup is
  // *algorithmic*: a walker confined to a narrow window flattens its
  // histogram in far fewer steps than one diffusing across the full
  // spectrum. A modest overlap (35 %) keeps the summed window width — and
  // with it the total work — below the single-window run; the 75 % overlap
  // of Vogel et al. is tuned for exchange acceptance on real parallel
  // hardware, where wall-clock divides by the window count on top of this.
  const wl::HeisenbergEnergy fe = bench::fe_surrogate(2);
  Rng window_rng(5);
  wl::RewlConfig rewl;
  rewl.base.grid = wl::thermal_window(
      fe, fe.model().ferromagnetic_energy(), 150.0, window_rng);
  rewl.base.n_walkers = 2;
  rewl.base.check_interval = 5000;
  rewl.base.flatness = 0.8;
  rewl.base.max_iteration_steps = 1000000;
  rewl.base.max_steps = 120000000;
  rewl.overlap = 0.35;
  rewl.exchange_interval = 2000;

  std::printf("\nREWL vs single master, 16-atom Fe surrogate "
              "(flatness 0.8, gamma_final 1e-5, overlap 35 %%)\n");
  io::TextTable rewl_table({"windows", "wall [s]", "speedup", "steps [M]",
                            "U(900 K)", "exch acc"});
  double base_wall = 0.0;
  for (std::size_t windows : {1u, 2u, 4u, 8u}) {
    rewl.n_windows = windows;
    perf::Timer timer;
    const wl::RewlResult result = wl::run_rewl(
        fe, rewl, wl::HalvingSchedule(1.0, 1e-5), Rng(17));
    const double wall = timer.seconds();
    if (windows == 1) base_wall = wall;
    std::uint64_t steps = 0;
    for (const auto& s : result.per_window) steps += s.total_steps;
    const thermo::DosTable dos = thermo::dos_table(result.stitched);
    std::string acceptance = "-";
    if (result.exchange_attempts > 0)
      acceptance = io::format_double(
          static_cast<double>(result.exchange_accepts) /
              static_cast<double>(result.exchange_attempts),
          2);
    rewl_table.row(
        {std::to_string(windows), io::format_double(wall, 2),
         io::format_double(base_wall / wall, 2),
         io::format_double(static_cast<double>(steps) / 1e6, 2),
         io::format_double(
             thermo::observables_at(dos, 900.0).internal_energy, 4),
         acceptance});
  }
  rewl_table.print();
  std::printf(
      "\nReading: equal physics (U at 900 K within the Metropolis reference\n"
      "band -0.100 +/- 0.012) at a fraction of the steps and wall-clock; on\n"
      "a K-node machine each window runs on its own node and the wall-clock\n"
      "column divides by K again.\n");
  return 0;
}
