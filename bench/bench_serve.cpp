// The serving daemon's cross-walker batched dispatch measured for real:
// eight concurrent walkers' energy requests coalesced by the BatchScheduler
// into lock-step Schur solves (one zgemm_view_batch per elimination round)
// versus the same requests computed one at a time through the synchronous
// service — and the same comparison end-to-end over a live TCP daemon with
// eight connected tenants. Every batched energy is cross-checked against
// the serial solver and the bench fails loudly unless they are
// bit-identical.
//
// Writes BENCH_serve.json (path = argv[1], default ./BENCH_serve.json) for
// regression tracking; `ctest -L perf` runs it as perf_serve.
#include "bench_common.hpp"

#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "io/table.hpp"
#include "linalg/blas.hpp"
#include "serve/client.hpp"
#include "serve/daemon.hpp"
#include "serve/scheduler.hpp"

namespace {

using namespace wlsms;

constexpr std::size_t kWalkers = 8;   // concurrent walkers (acceptance: >= 8)
constexpr std::size_t kRounds = 4;    // submissions per walker
constexpr std::size_t kEvals = kWalkers * kRounds;
constexpr int kReps = 5;              // timing reps, min taken

/// Serving-fidelity substrate: the fast contour but a 50-member LIZ, so the
/// order-102 zone solves sit above the blocked-LU threshold and the batch
/// actually takes the lock-step elimination path (the fast test LIZ falls
/// back to per-item singleton solves).
std::shared_ptr<const lsms::LsmsSolver> serving_solver() {
  lsms::LsmsParameters params = lsms::fe_lsms_parameters_fast();
  params.liz_radius = 9.1;  // 1st-4th bcc shells: 50 neighbours
  return std::make_shared<const lsms::LsmsSolver>(lattice::make_fe_supercell(2),
                                                  params);
}

struct Timed {
  double seconds = 0.0;
  double occupancy = 0.0;  ///< requests per solver dispatch (1 = no batching)
  double max_diff = 0.0;   ///< vs the serial solver (must be exactly 0)
};

// One walker per session, round-robin submission order — the daemon's view
// of M independent Wang-Landau walkers hammering one substrate.
Timed run_batched(const std::shared_ptr<const lsms::LsmsSolver>& solver,
                  const std::vector<spin::MomentConfiguration>& configs,
                  const std::vector<double>& reference) {
  serve::ServeLimits limits;
  limits.max_pending = kEvals + 8;
  limits.max_session_outstanding = kRounds;
  limits.max_batch = kWalkers;
  serve::BatchScheduler scheduler(solver, limits);

  Timed timed;
  perf::Timer timer;
  std::vector<serve::BatchScheduler::Completed> completed;
  for (std::size_t round = 0; round < kRounds; ++round) {
    for (std::size_t w = 0; w < kWalkers; ++w) {
      const std::size_t k = round * kWalkers + w;
      scheduler.submit(w + 1, {w, k + 1, configs[k]});
    }
    while (scheduler.pending() > 0) scheduler.run_next_batch(completed);
  }
  timed.seconds = timer.seconds();

  const serve::BatchScheduler::Stats stats = scheduler.stats();
  if (stats.batches > 0)
    timed.occupancy = static_cast<double>(stats.batched_requests +
                                          stats.singleton_requests) /
                      static_cast<double>(stats.batches);
  for (const serve::BatchScheduler::Completed& done : completed)
    timed.max_diff =
        std::max(timed.max_diff, std::fabs(done.result.energy -
                                           reference[done.result.ticket - 1]));
  return timed;
}

Timed run_one_at_a_time(const wl::LsmsEnergy& energy,
                        const std::vector<spin::MomentConfiguration>& configs,
                        const std::vector<double>& reference) {
  wl::SynchronousEnergyService sync(energy);
  Timed timed;
  timed.occupancy = 1.0;
  perf::Timer timer;
  for (std::size_t k = 0; k < kEvals; ++k) {
    sync.submit({k % kWalkers, k + 1, configs[k]});
    const wl::EnergyResult result = sync.retrieve();
    timed.max_diff = std::max(
        timed.max_diff, std::fabs(result.energy - reference[result.ticket - 1]));
  }
  timed.seconds = timer.seconds();
  return timed;
}

// End-to-end over loopback TCP: eight connected tenants, one walker each,
// all rounds pipelined so the daemon's batch window sees the full fan-in.
Timed run_tcp_daemon(const std::shared_ptr<const lsms::LsmsSolver>& solver,
                     const std::vector<spin::MomentConfiguration>& configs,
                     const std::vector<double>& reference) {
  serve::ServeOptions options;
  options.limits.max_pending = kEvals + 8;
  options.limits.max_session_outstanding = kRounds;
  options.limits.max_batch = kWalkers;
  options.limits.batch_window = std::chrono::milliseconds(10);
  serve::Daemon daemon(solver, options);
  std::thread server([&daemon] { daemon.run(); });

  Timed timed;
  {
    std::vector<std::unique_ptr<serve::ServeClient>> clients;
    for (std::size_t w = 0; w < kWalkers; ++w) {
      serve::ClientOptions client_options;
      client_options.tenant = "walker" + std::to_string(w);
      clients.push_back(std::make_unique<serve::ServeClient>(daemon.address(),
                                                             client_options));
    }
    perf::Timer timer;
    for (std::size_t round = 0; round < kRounds; ++round)
      for (std::size_t w = 0; w < kWalkers; ++w) {
        const std::size_t k = round * kWalkers + w;
        clients[w]->submit({w, k + 1, configs[k]});
      }
    for (std::size_t w = 0; w < kWalkers; ++w)
      while (clients[w]->outstanding() > 0) {
        const wl::EnergyResult result = clients[w]->retrieve();
        timed.max_diff =
            std::max(timed.max_diff, std::fabs(result.energy -
                                               reference[result.ticket - 1]));
      }
    timed.seconds = timer.seconds();
  }
  daemon.stop();
  server.join();

  const serve::BatchScheduler::Stats stats = daemon.scheduler_stats();
  if (stats.batches > 0)
    timed.occupancy = static_cast<double>(stats.batched_requests +
                                          stats.singleton_requests) /
                      static_cast<double>(stats.batches);
  return timed;
}

Timed best_of(const std::vector<Timed>& reps) {
  Timed best = reps.front();
  for (const Timed& t : reps) {
    if (t.seconds < best.seconds) {
      const double diff = best.max_diff;
      best = t;
      best.max_diff = diff;
    }
    best.max_diff = std::max(best.max_diff, t.max_diff);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner(
      "serving daemon (cross-walker batched ZGEMM dispatch)",
      "M independent walkers' LIZ solves coalesced into lock-step batched "
      "GEMM without changing a single bit of any energy");

  const std::string json_path = argc > 1 ? argv[1] : "BENCH_serve.json";

  const auto solver = serving_solver();
  const wl::LsmsEnergy energy(solver);
  std::printf("substrate: %zu atoms, %zu-atom LIZ, %zu contour points\n",
              solver->n_atoms(), solver->liz_size(0),
              solver->contour().size());
  std::printf("workload: %zu walkers x %zu rounds = %zu evaluations, "
              "best of %d reps\n\n",
              kWalkers, kRounds, kEvals, kReps);

  Rng rng(41);
  std::vector<spin::MomentConfiguration> configs;
  std::vector<double> reference(kEvals);
  for (std::size_t k = 0; k < kEvals; ++k)
    configs.push_back(
        spin::MomentConfiguration::random(solver->n_atoms(), rng));
  for (std::size_t k = 0; k < kEvals; ++k)
    reference[k] = energy.total_energy(configs[k]);  // also warms caches

  // The batch dispatch parallelizes BETWEEN items (bit-identical at any
  // worker count); give it the machine. On a single-core host this is a
  // no-op and the comparison is pure dispatch arithmetic.
  const std::size_t saved_threads = linalg::zgemm_batch_threads();
  linalg::set_zgemm_batch_threads(
      std::max(1u, std::thread::hardware_concurrency()));

  // Alternate which mode runs first so thermal / frequency drift over the
  // run cannot systematically favour either side of the min.
  std::vector<Timed> serial_reps, batched_reps, tcp_reps;
  for (int rep = 0; rep < kReps; ++rep) {
    if (rep % 2 == 0) {
      serial_reps.push_back(run_one_at_a_time(energy, configs, reference));
      batched_reps.push_back(run_batched(solver, configs, reference));
    } else {
      batched_reps.push_back(run_batched(solver, configs, reference));
      serial_reps.push_back(run_one_at_a_time(energy, configs, reference));
    }
  }
  tcp_reps.push_back(run_tcp_daemon(solver, configs, reference));
  linalg::set_zgemm_batch_threads(saved_threads);
  const Timed serial = best_of(serial_reps);
  const Timed batched = best_of(batched_reps);
  const Timed tcp = best_of(tcp_reps);

  const double serial_tput = kEvals / serial.seconds;
  const double batched_tput = kEvals / batched.seconds;
  const double tcp_tput = kEvals / tcp.seconds;

  io::TextTable table(
      {"mode", "s total", "evals/s", "occupancy", "max |dE|"});
  const auto add_row = [&](const char* label, const Timed& t) {
    table.row({label, io::format_double(t.seconds, 3),
               io::format_double(kEvals / t.seconds, 2),
               io::format_double(t.occupancy, 2),
               t.max_diff == 0.0 ? "0 (bit-identical)"
                                 : io::format_double(t.max_diff, 12)});
  };
  add_row("one-at-a-time (sync)", serial);
  add_row("batched scheduler", batched);
  add_row("tcp daemon, 8 tenants", tcp);
  table.print();

  std::printf("\nbatched vs one-at-a-time: %.2fx aggregate throughput at "
              "%zu concurrent walkers, occupancy %.1f\n",
              batched_tput / serial_tput, kWalkers, batched.occupancy);
  if (batched.occupancy <= 1.0)
    std::printf("** batching never engaged — occupancy <= 1 **\n");
  if (batched_tput <= serial_tput)
    std::printf("** batched dispatch did not beat one-at-a-time **\n");

  const double worst_diff =
      std::max(batched.max_diff, std::max(tcp.max_diff, serial.max_diff));
  std::printf("bit-identity vs serial solver: max |dE| = %.3e Ry%s\n",
              worst_diff, worst_diff == 0.0 ? " (exact)" : "  ** MISMATCH **");

  std::FILE* json = std::fopen(json_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(json,
               "{\n"
               "  \"walkers\": %zu,\n"
               "  \"evals\": %zu,\n"
               "  \"one_at_a_time\": {\"s_total\": %.6e, \"evals_per_s\": "
               "%.4f},\n"
               "  \"batched\": {\"s_total\": %.6e, \"evals_per_s\": %.4f, "
               "\"batch_occupancy\": %.4f},\n"
               "  \"tcp_daemon\": {\"s_total\": %.6e, \"evals_per_s\": %.4f, "
               "\"batch_occupancy\": %.4f},\n"
               "  \"batched_vs_one_at_a_time_speedup\": %.4f,\n"
               "  \"max_abs_energy_diff_vs_serial\": %.6e\n"
               "}\n",
               kWalkers, kEvals, serial.seconds, serial_tput, batched.seconds,
               batched_tput, batched.occupancy, tcp.seconds, tcp_tput,
               tcp.occupancy, batched_tput / serial_tput, worst_diff);
  std::fclose(json);
  std::printf("results written to %s\n", json_path.c_str());

  return (worst_diff == 0.0 && batched.occupancy > 1.0) ? 0 : 1;
}
