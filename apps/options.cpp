#include "options.hpp"

#include <stdexcept>

namespace wlsms::cli {
namespace {

/// Non-negative count with a lower bound; get_long already rejects
/// non-numeric text, this adds the range check a silent size_t cast loses.
std::size_t get_size(const Options& options, const std::string& key,
                     std::size_t fallback, std::size_t min_value) {
  const long value = options.get_long(key, static_cast<long>(fallback));
  if (value < static_cast<long>(min_value))
    throw std::runtime_error("--" + key + ": must be >= " +
                             std::to_string(min_value) + ", got " +
                             std::to_string(value));
  return static_cast<std::size_t>(value);
}

double get_min(const Options& options, const std::string& key, double fallback,
               double min_value, bool exclusive = false) {
  const double value = options.get_double(key, fallback);
  if (exclusive ? value <= min_value : value < min_value)
    throw std::runtime_error("--" + key + ": must be " +
                             (exclusive ? "> " : ">= ") +
                             std::to_string(min_value));
  return value;
}

double get_fraction(const Options& options, const std::string& key,
                    double fallback) {
  const double value = options.get_double(key, fallback);
  if (!(value >= 0.0 && value <= 1.0))
    throw std::runtime_error("--" + key + ": must be in [0, 1]");
  return value;
}

bool get_bool(const Options& options, const std::string& key, bool fallback) {
  return options.get_long(key, fallback ? 1 : 0) != 0;
}

std::string get_required(const Options& options, const std::string& key,
                         const std::string& command) {
  const std::string value = options.get_string(key, "");
  if (value.empty())
    throw std::runtime_error(command + ": --" + key + " is required");
  return value;
}

}  // namespace

SpeculateOptions SpeculateOptions::parse(const Options& options) {
  SpeculateOptions parsed;
  parsed.enabled = get_bool(options, "speculate", false);
  parsed.band = get_min(options, "spec-band", parsed.band, 0.0);
  parsed.audit_fraction =
      get_fraction(options, "spec-audit-frac", parsed.audit_fraction);
  parsed.refit_interval =
      options.get_u64("spec-refit-interval", parsed.refit_interval);
  parsed.error_budget =
      get_min(options, "spec-budget", parsed.error_budget, 0.0);
  return parsed;
}

CurieOptions CurieOptions::parse(const Options& options) {
  CurieOptions parsed;
  parsed.cells = get_size(options, "cells", parsed.cells, 1);
  parsed.gamma_final =
      get_min(options, "gamma-final", parsed.gamma_final, 0.0, true);
  parsed.walkers = get_size(options, "walkers", parsed.walkers, 1);
  parsed.flatness = get_fraction(options, "flatness", parsed.flatness);
  parsed.seed = options.get_u64("seed", parsed.seed);
  parsed.t_min = get_min(options, "tmin", parsed.t_min, 0.0, true);
  parsed.dos_path = options.get_string("dos", "");
  parsed.rewl_windows = get_size(options, "rewl-windows", parsed.rewl_windows, 1);
  parsed.rewl_overlap =
      get_fraction(options, "rewl-overlap", parsed.rewl_overlap);
  parsed.rewl_interval = options.get_u64("rewl-exchange-interval", 2000);
  if (parsed.rewl_interval < 1)
    throw std::runtime_error("--rewl-exchange-interval: must be >= 1");
  return parsed;
}

ThermoOptions ThermoOptions::parse(const Options& options) {
  ThermoOptions parsed;
  parsed.dos_path = get_required(options, "dos", "thermo");
  parsed.t_min = get_min(options, "tmin", parsed.t_min, 0.0, true);
  parsed.t_max = get_min(options, "tmax", parsed.t_max, 0.0, true);
  if (parsed.t_max <= parsed.t_min)
    throw std::runtime_error("--tmax: must be > --tmin");
  parsed.points = get_size(options, "points", parsed.points, 2);
  return parsed;
}

ExtractOptions ExtractOptions::parse(const Options& options) {
  ExtractOptions parsed;
  parsed.cells = get_size(options, "cells", parsed.cells, 1);
  parsed.liz = get_min(options, "liz", parsed.liz, 0.0, true);
  parsed.contour = get_size(options, "contour", parsed.contour, 1);
  parsed.shells = get_size(options, "shells", parsed.shells, 1);
  parsed.samples =
      get_size(options, "samples", parsed.samples, parsed.shells + 2);
  return parsed;
}

ScalingOptions ScalingOptions::parse(const Options& options) {
  ScalingOptions parsed;
  parsed.walkers = get_size(options, "walkers", parsed.walkers, 1);
  parsed.steps = get_size(options, "steps", parsed.steps, 1);
  parsed.atoms = get_size(options, "atoms", parsed.atoms, 1);
  return parsed;
}

DistributedOptions DistributedOptions::parse(const Options& options) {
  DistributedOptions parsed;
  parsed.transport = options.get_string("transport", parsed.transport);
  parsed.groups = get_size(options, "groups", parsed.groups, 1);
  parsed.group_size = get_size(options, "group-size", parsed.group_size, 1);
  parsed.cells = get_size(options, "cells", parsed.cells, 1);
  parsed.evals = get_size(options, "evals", parsed.evals, 1);
  parsed.seed = options.get_u64("seed", parsed.seed);
  parsed.check = get_bool(options, "check", parsed.check);
  parsed.wl_steps = options.get_u64("wl-steps", parsed.wl_steps);
  parsed.wl_walkers = get_size(options, "wl-walkers", parsed.wl_walkers, 1);
  parsed.listen = options.get_string("listen", parsed.listen);
  parsed.external = get_bool(options, "external", parsed.external);
  parsed.status_listen = options.get_string("status-listen", "");
  parsed.speculate = SpeculateOptions::parse(options);
  if (parsed.speculate.enabled && parsed.wl_steps == 0)
    throw std::runtime_error(
        "--speculate: needs a WL driver to screen for; set --wl-steps");
  return parsed;
}

WorkerOptions WorkerOptions::parse(const Options& options) {
  WorkerOptions parsed;
  parsed.connect = get_required(options, "connect", "worker");
  parsed.cells = get_size(options, "cells", parsed.cells, 1);
  return parsed;
}

ServeOptions ServeOptions::parse(const Options& options) {
  ServeOptions parsed;
  parsed.cells = get_size(options, "cells", parsed.cells, 1);
  parsed.listen = options.get_string("listen", parsed.listen);
  parsed.max_pending = get_size(options, "max-pending", parsed.max_pending, 1);
  parsed.max_outstanding =
      get_size(options, "max-outstanding", parsed.max_outstanding, 1);
  parsed.max_batch = get_size(options, "max-batch", parsed.max_batch, 1);
  parsed.batch_window_ms = options.get_long("batch-window", parsed.batch_window_ms);
  if (parsed.batch_window_ms < 0)
    throw std::runtime_error("--batch-window: must be >= 0");
  parsed.checkpoint_dir = options.get_string("checkpoint-dir", "");
  parsed.batch_threads =
      get_size(options, "batch-threads", parsed.batch_threads, 0);
  return parsed;
}

StatusOptions StatusOptions::parse(const Options& options) {
  StatusOptions parsed;
  parsed.connect = options.positional().empty()
                       ? options.get_string("connect", "")
                       : options.positional();
  if (parsed.connect.empty())
    throw std::runtime_error("status: give the target as `wlsms status "
                             "host:port` or via --connect");
  parsed.timeout_ms = options.get_long("timeout", parsed.timeout_ms);
  if (parsed.timeout_ms < 1)
    throw std::runtime_error("--timeout: must be >= 1 (milliseconds)");
  return parsed;
}

ClientOptions ClientOptions::parse(const Options& options) {
  ClientOptions parsed;
  parsed.connect = get_required(options, "connect", "client");
  parsed.tenant = options.get_string("tenant", parsed.tenant);
  parsed.evals = get_size(options, "evals", parsed.evals, 1);
  parsed.walkers = get_size(options, "walkers", parsed.walkers, 1);
  parsed.seed = options.get_u64("seed", parsed.seed);
  parsed.check = get_bool(options, "check", parsed.check);
  parsed.cells = get_size(options, "cells", parsed.cells, 1);
  parsed.resume_session = options.get_u64("resume-session", 0);
  parsed.resume_token = options.get_u64("resume-token", 0);
  return parsed;
}

}  // namespace wlsms::cli
