#pragma once

/// \file cli.hpp
/// Minimal command-line option parsing for the wlsms driver binary:
/// --key value pairs with typed lookups and unknown-flag detection.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace wlsms::cli {

/// Parsed command line: one subcommand plus --key value options.
class Options {
 public:
  /// Parses argv[1] as the subcommand, an optional bare token right after
  /// it as the positional argument (e.g. `wlsms status host:port`), and the
  /// rest as --key value pairs. Throws std::runtime_error on malformed
  /// input (missing value, bare token after the options started).
  static Options parse(int argc, char** argv);

  const std::string& command() const { return command_; }
  bool empty_command() const { return command_.empty(); }

  /// The bare token following the subcommand, or "" when none was given.
  const std::string& positional() const { return positional_; }

  /// Typed lookups with defaults; throw std::runtime_error on a present
  /// but unparseable value.
  std::string get_string(const std::string& key,
                         const std::string& fallback) const;
  double get_double(const std::string& key, double fallback) const;
  long get_long(const std::string& key, long fallback) const;
  /// Full-range unsigned parse for 64-bit ids such as resume tokens, which
  /// routinely exceed INT64_MAX and would be rejected by get_long.
  std::uint64_t get_u64(const std::string& key, std::uint64_t fallback) const;
  bool has(const std::string& key) const;

  /// Keys that were provided but never queried; used to reject typos.
  std::vector<std::string> unused_keys() const;

 private:
  std::string command_;
  std::string positional_;
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> queried_;
};

}  // namespace wlsms::cli
