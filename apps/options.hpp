#pragma once

/// \file options.hpp
/// Typed per-subcommand option structs for the wlsms binary. Each
/// subcommand turns the stringly --key value map into exactly one validated
/// struct up front (parse once, validate once), so the command bodies read
/// named fields instead of re-pulling keys ad hoc. Every parse() throws
/// std::runtime_error on a malformed or out-of-range value.
///
/// The structs are plain data over the cli::Options map only — no library
/// types — so wlsms_cli_lib (and test_cli) stay dependency-free; the
/// commands translate fields into library configs at the call site.

#include <cstddef>
#include <cstdint>
#include <string>

#include "cli.hpp"

namespace wlsms::cli {

/// The speculation knobs shared by subcommands that run a WL driver
/// (--speculate 0|1, --spec-band, --spec-audit-frac, --spec-refit-interval,
/// --spec-budget).
struct SpeculateOptions {
  bool enabled = false;
  double band = 2.0;             ///< confidence half-width in rms units
  double audit_fraction = 0.05;  ///< exact-dispatch fraction of resolvable
  std::uint64_t refit_interval = 64;
  double error_budget = 0.0;     ///< rms trip threshold [Ry]; 0 = no trip

  static SpeculateOptions parse(const Options& options);
};

struct CurieOptions {
  std::size_t cells = 2;
  double gamma_final = 1e-6;
  std::size_t walkers = 8;
  double flatness = 0.8;
  std::uint64_t seed = 123;
  double t_min = 150.0;
  std::string dos_path;
  std::size_t rewl_windows = 1;
  double rewl_overlap = 0.75;
  std::uint64_t rewl_interval = 2000;

  static CurieOptions parse(const Options& options);
};

struct ThermoOptions {
  std::string dos_path;  ///< required
  double t_min = 200.0;
  double t_max = 3000.0;
  std::size_t points = 15;

  static ThermoOptions parse(const Options& options);
};

struct ExtractOptions {
  std::size_t cells = 2;
  double liz = 5.6;
  std::size_t contour = 8;
  std::size_t shells = 2;
  std::size_t samples = 24;

  static ExtractOptions parse(const Options& options);
};

struct ScalingOptions {
  std::size_t walkers = 144;
  std::size_t steps = 20;
  std::size_t atoms = 1024;

  static ScalingOptions parse(const Options& options);
};

struct DistributedOptions {
  std::string transport = "inprocess";
  std::size_t groups = 2;
  std::size_t group_size = 2;
  std::size_t cells = 2;
  std::size_t evals = 8;
  std::uint64_t seed = 7;
  bool check = true;
  std::uint64_t wl_steps = 0;
  std::size_t wl_walkers = 4;
  std::string listen = "127.0.0.1:0";
  bool external = false;
  /// When non-empty, the controller also serves live Prometheus text on
  /// this address (answered by serve::StatusServer; probe with
  /// `wlsms status host:port`).
  std::string status_listen;
  SpeculateOptions speculate;

  static DistributedOptions parse(const Options& options);
};

struct WorkerOptions {
  std::string connect;  ///< required
  std::size_t cells = 2;

  static WorkerOptions parse(const Options& options);
};

struct ServeOptions {
  std::size_t cells = 2;
  std::string listen = "127.0.0.1:7878";
  std::size_t max_pending = 256;
  std::size_t max_outstanding = 64;
  std::size_t max_batch = 16;
  long batch_window_ms = 5;
  std::string checkpoint_dir;
  std::size_t batch_threads = 0;

  static ServeOptions parse(const Options& options);
};

/// `wlsms status <host:port>`: fetch a daemon's or controller's live
/// metrics as Prometheus text and print them.
struct StatusOptions {
  std::string connect;  ///< required (positional or --connect)
  long timeout_ms = 5000;

  static StatusOptions parse(const Options& options);
};

struct ClientOptions {
  std::string connect;  ///< required
  std::string tenant = "default";
  std::size_t evals = 8;
  std::size_t walkers = 4;
  std::uint64_t seed = 11;
  bool check = false;
  std::size_t cells = 2;
  std::uint64_t resume_session = 0;
  std::uint64_t resume_token = 0;

  static ClientOptions parse(const Options& options);
};

}  // namespace wlsms::cli
