// wlsms — command-line driver for the WL-LSMS reproduction.
//
// Subcommands:
//   curie    converge the Wang-Landau DOS of an n^3-cell bcc Fe system and
//            report thermodynamics + the Curie temperature; optionally save
//            the DOS table as CSV
//   thermo   recompute F/U/c/S from a saved DOS table (no resampling)
//   extract  run the multiple-scattering substrate and print the extracted
//            exchange constants
//   scaling  simulate the paper's Cray XT5 runs (Fig. 7 / Table II)
//   distributed  evaluate LSMS energies sharded over real worker ranks
//            (threads, forked processes, or TCP workers) and cross-check
//            against the serial solver
//   worker   join a TCP controller as one worker rank (the multi-node
//            worker side of `distributed --transport tcp --external 1`)
//   serve    run the persistent multi-tenant energy daemon: clients submit
//            walker configurations over TCP and concurrent requests are
//            coalesced into cross-walker batched ZGEMM dispatches
//   client   drive a running daemon: submit random configurations as one
//            tenant and (optionally) cross-check the energies against a
//            local serial solver
//   status   fetch a running daemon's (or a --status-listen controller's)
//            live metrics as Prometheus text and print them
//
// Examples:
//   wlsms curie --cells 5 --gamma-final 1e-6 --dos fe250.csv
//   wlsms thermo --dos fe250.csv --tmin 300 --tmax 1500 --points 13
//   wlsms extract --liz 5.6 --contour 8 --shells 2
//   wlsms scaling --walkers 144 --steps 20
//   wlsms distributed --transport process --groups 2 --group-size 2
//   wlsms distributed --transport tcp --listen 0.0.0.0:7777 --external 1
//   wlsms worker --connect controller-host:7777
//   wlsms serve --cells 2 --listen 127.0.0.1:7878 --checkpoint-dir /tmp/wlsms
//   wlsms client --connect 127.0.0.1:7878 --tenant alice --evals 16
#include <algorithm>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <exception>
#include <memory>

#include "cli.hpp"
#include "cluster/des.hpp"
#include "options.hpp"
#include "comm/distributed_service.hpp"
#include "comm/factory.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "heisenberg/heisenberg.hpp"
#include "io/dos_io.hpp"
#include "io/table.hpp"
#include "lsms/exchange.hpp"
#include "lsms/fe_parameters.hpp"
#include "lsms/solver.hpp"
#include "obs/snapshot.hpp"
#include "obs/trace.hpp"
#include "serve/client.hpp"
#include "serve/daemon.hpp"
#include "serve/status.hpp"
#include "thermo/observables.hpp"
#include "wl/driver.hpp"
#include "wl/rewl.hpp"
#include "wl/wanglandau.hpp"

namespace {

using namespace wlsms;

int usage() {
  std::printf(
      "usage: wlsms <command> [--option value ...]\n"
      "\n"
      "commands:\n"
      "  curie    --cells N [--gamma-final G] [--walkers W] [--flatness A]\n"
      "           [--seed S] [--tmin K] [--dos out.csv]\n"
      "           [--rewl-windows N] [--rewl-overlap F]\n"
      "           [--rewl-exchange-interval STEPS]\n"
      "  thermo   --dos in.csv [--tmin K] [--tmax K] [--points N]\n"
      "  extract  [--liz R_a0] [--contour N] [--shells S] [--samples M]\n"
      "           [--cells N]\n"
      "  scaling  [--walkers N] [--steps N] [--atoms N]\n"
      "  distributed  [--transport inprocess|process|tcp] [--groups M]\n"
      "           [--group-size N] [--cells C] [--evals K] [--seed S]\n"
      "           [--check 0|1] [--wl-steps N] [--wl-walkers W]\n"
      "           [--status-listen HOST:PORT]   (live Prometheus endpoint;\n"
      "           probe it with `wlsms status`)\n"
      "           [--listen HOST:PORT] [--external 0|1]   (tcp only;\n"
      "           --external 1 waits for `wlsms worker` processes to join\n"
      "           instead of forking local workers)\n"
      "           [--speculate 0|1] [--spec-band B] [--spec-audit-frac F]\n"
      "           [--spec-refit-interval N] [--spec-budget RY]\n"
      "           (--speculate screens the --wl-steps run's proposals with\n"
      "           the online Heisenberg surrogate; exact mode is default)\n"
      "  worker   --connect HOST:PORT [--cells C]   (one TCP worker rank;\n"
      "           --cells must match the controller's)\n"
      "  serve    [--cells C] [--listen HOST:PORT] [--max-pending N]\n"
      "           [--max-outstanding N] [--max-batch N] [--batch-window MS]\n"
      "           [--checkpoint-dir DIR] [--batch-threads N]\n"
      "           (multi-tenant energy daemon; Ctrl-C checkpoints live\n"
      "           sessions and exits)\n"
      "  client   --connect HOST:PORT [--tenant NAME] [--evals K]\n"
      "           [--walkers W] [--seed S] [--cells C] [--check 0|1]\n"
      "           [--resume-session ID --resume-token TOK]\n"
      "           (--check needs --cells matching the daemon's; resume\n"
      "           reclaims a checkpointed session's in-flight work)\n"
      "  status   HOST:PORT [--timeout MS]   (print a running daemon's or\n"
      "           --status-listen controller's metrics as Prometheus text)\n"
      "\n"
      "observability (any command):\n"
      "  --metrics-out FILE.jsonl   periodic run-health snapshots (metrics\n"
      "                             registry + per-kernel flops + Flop/s)\n"
      "  --snapshot-interval MS     snapshot period, default 1000\n"
      "  --trace-out FILE.json      Chrome trace_event spans; open the file\n"
      "                             in Perfetto (https://ui.perfetto.dev)\n"
      "  --log-level LEVEL          debug|info|warn|error|off\n");
  return 2;
}

/// RAII wiring of the shared observability flags: constructed in main()
/// before the command dispatch, torn down after it — the teardown order
/// guarantees the final snapshot record and the trace file are written even
/// when the command exits early.
class ObsScope {
 public:
  /// Returns nullptr (after printing a diagnostic) on a malformed
  /// --log-level; otherwise the configured scope.
  static std::unique_ptr<ObsScope> from_options(const cli::Options& options) {
    const std::string level_str = options.get_string("log-level", "");
    if (!level_str.empty()) {
      LogLevel level = LogLevel::kInfo;
      if (!parse_log_level(level_str, level)) {
        std::fprintf(stderr,
                     "error: --log-level '%s' is not one of "
                     "debug|info|warn|error|off\n",
                     level_str.c_str());
        return nullptr;
      }
      set_log_level(level);
    }
    auto scope = std::unique_ptr<ObsScope>(new ObsScope);
    scope->trace_path_ = options.get_string("trace-out", "");
    if (!scope->trace_path_.empty()) obs::enable_tracing();
    const std::string metrics_path = options.get_string("metrics-out", "");
    if (!metrics_path.empty()) {
      obs::SnapshotConfig config;
      config.path = metrics_path;
      config.interval = std::chrono::milliseconds(
          std::max<long>(1, options.get_long("snapshot-interval", 1000)));
      scope->snapshots_ = std::make_unique<obs::SnapshotWriter>(config);
    }
    return scope;
  }

  ObsScope(const ObsScope&) = delete;
  ObsScope& operator=(const ObsScope&) = delete;

  ~ObsScope() {
    // Final snapshot first (the writer's destructor emits the "final"
    // record), then drain the span rings into the trace file.
    snapshots_.reset();
    if (!trace_path_.empty()) {
      try {
        obs::write_chrome_trace(trace_path_);
        std::fprintf(stderr, "trace written to %s\n", trace_path_.c_str());
      } catch (const std::exception& error) {
        std::fprintf(stderr, "error: trace export failed: %s\n", error.what());
      }
      obs::disable_tracing();
    }
  }

 private:
  ObsScope() = default;

  std::string trace_path_;
  std::unique_ptr<obs::SnapshotWriter> snapshots_;
};

wl::HeisenbergEnergy surrogate(std::size_t cells) {
  std::vector<double> j = lsms::fe_reference_exchange();
  for (double& v : j) v *= lsms::fe_exchange_energy_scale;
  return wl::HeisenbergEnergy(
      heisenberg::HeisenbergModel(lattice::make_fe_supercell(cells), j));
}

int cmd_curie(const cli::CurieOptions& opt) {
  wl::HeisenbergEnergy energy = surrogate(opt.cells);
  std::printf("system: %zu bcc Fe atoms (%zu^3 cells)\n", energy.n_sites(),
              opt.cells);

  Rng window_rng(5);
  wl::WangLandauConfig config;
  config.grid = wl::thermal_window(
      energy, energy.model().ferromagnetic_energy(), opt.t_min, window_rng);
  config.n_walkers = opt.walkers;
  config.flatness = opt.flatness;
  config.check_interval = 5000;
  config.max_iteration_steps = 2000000;

  thermo::DosTable dos;
  if (opt.rewl_windows > 1) {
    // Replica-exchange windowed decomposition (rewl.hpp).
    wl::RewlConfig rewl;
    rewl.base = config;
    rewl.n_windows = opt.rewl_windows;
    rewl.overlap = opt.rewl_overlap;
    rewl.exchange_interval = opt.rewl_interval;
    const wl::RewlResult result =
        wl::run_rewl(energy, rewl, wl::HalvingSchedule(1.0, opt.gamma_final),
                     Rng(opt.seed));
    std::uint64_t total_steps = 0;
    std::size_t iterations = 0;
    for (const wl::WangLandauStats& stats : result.per_window) {
      total_steps += stats.total_steps;
      iterations = std::max(iterations, stats.iterations);
    }
    std::printf(
        "converged: %llu WL steps over %zu windows (overlap %.0f %%), "
        "%zu gamma levels; %llu/%llu exchanges accepted\n",
        static_cast<unsigned long long>(total_steps), result.windows.size(),
        100.0 * opt.rewl_overlap, iterations,
        static_cast<unsigned long long>(result.exchange_accepts),
        static_cast<unsigned long long>(result.exchange_attempts));
    dos = thermo::dos_table(result.stitched);
  } else {
    wl::WangLandau sampler(
        energy, config,
        std::make_unique<wl::HalvingSchedule>(1.0, opt.gamma_final),
        Rng(opt.seed));
    sampler.run();
    std::printf("converged: %llu WL steps, %zu gamma levels (%zu forced)\n",
                static_cast<unsigned long long>(sampler.stats().total_steps),
                sampler.stats().iterations, sampler.stats().forced_iterations);
    dos = thermo::dos_table(sampler.dos());
  }
  if (!opt.dos_path.empty()) {
    io::save_dos(opt.dos_path, dos);
    std::printf("DOS written to %s (%zu bins)\n", opt.dos_path.c_str(),
                dos.energy.size());
  }

  io::TextTable table({"T [K]", "U [Ry]", "c [Ry/K]"});
  for (double t = 300.0; t <= 1800.0; t += 300.0) {
    const thermo::Observables obs = thermo::observables_at(dos, t);
    table.row({io::format_double(t, 0), io::format_double(obs.internal_energy, 5),
               io::format_double(obs.specific_heat * 1e4, 3) + "e-4"});
  }
  table.print();
  const thermo::CurieEstimate tc =
      thermo::estimate_curie_temperature(dos, 250.0, 3000.0);
  std::printf("Curie temperature (c-peak): %.0f K\n", tc.tc);
  return 0;
}

int cmd_thermo(const cli::ThermoOptions& opt) {
  const thermo::DosTable dos = io::load_dos(opt.dos_path);
  std::printf("loaded %zu DOS bins from %s (E in [%.4f, %.4f] Ry)\n",
              dos.energy.size(), opt.dos_path.c_str(), dos.energy.front(),
              dos.energy.back());

  io::TextTable table({"T [K]", "F' [Ry]", "U [Ry]", "c [Ry/K]", "S' [Ry/K]"});
  for (const thermo::Observables& obs :
       thermo::temperature_sweep(dos, opt.t_min, opt.t_max, opt.points)) {
    table.row({io::format_double(obs.temperature, 0),
               io::format_double(obs.free_energy, 4),
               io::format_double(obs.internal_energy, 5),
               io::format_double(obs.specific_heat * 1e4, 3) + "e-4",
               io::format_double(obs.entropy * 1e6, 2) + "e-6"});
  }
  table.print();
  const thermo::CurieEstimate tc =
      thermo::estimate_curie_temperature(dos, opt.t_min, opt.t_max);
  std::printf("c-peak: %.0f K\n", tc.tc);
  return 0;
}

int cmd_extract(const cli::ExtractOptions& opt) {
  lsms::LsmsParameters params = lsms::fe_lsms_parameters_fast();
  params.liz_radius = opt.liz;
  params.contour_points = opt.contour;
  const lsms::LsmsSolver solver(lattice::make_fe_supercell(opt.cells), params);
  std::printf("substrate: %zu atoms, %zu-atom LIZ, %zu contour points "
              "(%.2f GFlop per energy evaluation)\n",
              solver.n_atoms(), solver.liz_size(0), opt.contour,
              static_cast<double>(solver.flops_per_energy()) / 1e9);

  Rng rng(42);
  const lsms::ExtractedExchange exchange =
      lsms::extract_exchange(solver, opt.shells, opt.samples, rng);
  io::TextTable table({"shell", "radius [a0]", "bonds", "J [mRy]"});
  for (std::size_t s = 0; s < exchange.shells.size(); ++s)
    table.row({std::to_string(s + 1),
               io::format_double(exchange.shells[s].radius, 3),
               std::to_string(exchange.shells[s].bonds),
               io::format_double(1e3 * exchange.shells[s].j, 4)});
  table.print();
  std::printf("fit rms: %.3e Ry over %zu samples\n", exchange.fit_rms,
              opt.samples);
  return 0;
}

int cmd_scaling(const cli::ScalingOptions& opt) {
  const cluster::MachineDescription machine = cluster::jaguar_xt5();
  cluster::JobDescription job;
  job.n_atoms = opt.atoms;
  job.n_walkers = opt.walkers;
  job.steps_per_walker = opt.steps;
  job.fidelity.contour_points = 20;
  const cluster::SimulationResult r = cluster::simulate_wl_lsms(machine, job);

  io::TextTable table({"quantity", "value"});
  table.row({"walkers", std::to_string(r.n_walkers)});
  table.row({"cores", std::to_string(r.cores)});
  table.row({"runtime", io::format_double(r.makespan_s, 1) + " s"});
  table.row({"sustained", io::format_flops(r.sustained_flops)});
  table.row({"fraction of peak",
             io::format_double(100.0 * r.fraction_of_peak, 1) + " %"});
  table.row({"core-hours", io::format_double(r.core_hours, 0)});
  table.print();
  return 0;
}

int cmd_distributed(const cli::DistributedOptions& opt) {
  // Live introspection: the controller has no listener of its own, so the
  // Prometheus endpoint is a background StatusServer over the same framing.
  std::unique_ptr<serve::StatusServer> status_server;
  if (!opt.status_listen.empty()) {
    status_server = std::make_unique<serve::StatusServer>(opt.status_listen);
    std::printf("status endpoint on %s (probe: wlsms status %s)\n",
                status_server->address().c_str(),
                status_server->address().c_str());
    std::fflush(stdout);
  }
  const auto solver = std::make_shared<const lsms::LsmsSolver>(
      lattice::make_fe_supercell(opt.cells), lsms::fe_lsms_parameters_fast());
  const wl::LsmsEnergy energy(solver);
  std::printf("substrate: %zu atoms, %zu-atom LIZ, %zu contour points\n",
              solver->n_atoms(), solver->liz_size(0),
              solver->contour().size());

  comm::EnergyServiceSpec spec;
  spec.kind = comm::ServiceKind::kDistributed;
  spec.energy = &energy;
  spec.distributed.n_groups = opt.groups;
  spec.distributed.group_size = opt.group_size;
  spec.distributed.transport = comm::parse_transport(opt.transport);
  if (spec.distributed.transport == comm::Transport::kTcp) {
    spec.distributed.tcp.listen = opt.listen;
    if (opt.external) {
      // External workers: print where to point `wlsms worker` and wait for
      // the operator to start one per rank (possibly on other nodes).
      const std::size_t n_ranks = opt.groups * opt.group_size;
      const std::size_t cells = opt.cells;
      spec.distributed.tcp.spawn_workers = false;
      spec.distributed.tcp.accept_timeout = std::chrono::minutes(10);
      spec.distributed.tcp.on_listening =
          [n_ranks, cells](const std::string& address) {
            std::printf(
                "listening on %s; start %zu workers, e.g.\n"
                "  wlsms worker --connect %s --cells %zu\n",
                address.c_str(), n_ranks, address.c_str(), cells);
            std::fflush(stdout);
          };
    }
  }
  if (opt.speculate.enabled) {
    spec.speculate = true;
    spec.speculation.band = opt.speculate.band;
    spec.speculation.audit_fraction = opt.speculate.audit_fraction;
    spec.speculation.refit_interval = opt.speculate.refit_interval;
    spec.speculation.error_budget = opt.speculate.error_budget;
  }
  const std::unique_ptr<wl::EnergyService> service =
      comm::make_energy_service(spec);

  Rng rng(opt.seed);
  std::vector<spin::MomentConfiguration> configs;
  configs.reserve(opt.evals);
  for (std::size_t k = 0; k < opt.evals; ++k)
    configs.push_back(spin::MomentConfiguration::random(solver->n_atoms(), rng));

  const auto start = std::chrono::steady_clock::now();
  for (std::size_t k = 0; k < opt.evals; ++k)
    service->submit({k % opt.groups, k + 1, configs[k]});
  std::vector<double> energies(opt.evals, 0.0);
  for (std::size_t k = 0; k < opt.evals; ++k) {
    const wl::EnergyResult result = service->retrieve();
    energies[result.ticket - 1] = result.energy;
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  io::TextTable table({"quantity", "value"});
  table.row({"transport", comm::transport_name(spec.distributed.transport)});
  table.row({"worker ranks",
             std::to_string(opt.groups) + " groups x " +
                 std::to_string(opt.group_size)});
  table.row({"evaluations", std::to_string(opt.evals)});
  table.row({"wall time", io::format_double(seconds, 3) + " s"});
  table.row(
      {"evals/s", io::format_double(opt.evals / std::max(seconds, 1e-9), 2)});
  table.print();

  if (opt.check) {
    double max_diff = 0.0;
    for (std::size_t k = 0; k < opt.evals; ++k)
      max_diff = std::max(
          max_diff, std::fabs(energies[k] - energy.total_energy(configs[k])));
    std::printf("max |E_distributed - E_serial| = %.3e Ry%s\n", max_diff,
                max_diff == 0.0 ? " (bit-identical)" : "");
    if (max_diff != 0.0) return 1;
  }

  if (opt.wl_steps > 0) {
    // Short Wang-Landau run over the distributed service (the paper's §IV
    // benchmark schedule) so --metrics-out / --trace-out capture the whole
    // two-level stack: WL acceptance and flatness, comm frame traffic and
    // retrieve latency, and per-kernel flops, in one telemetry stream.
    const std::size_t n = solver->n_atoms();
    const double e_fm =
        solver->energy(spin::MomentConfiguration::ferromagnetic(n));
    double e_rand_max = -1e300;
    for (int k = 0; k < 8; ++k)
      e_rand_max = std::max(
          e_rand_max, solver->energy(spin::MomentConfiguration::random(n, rng)));

    wl::WangLandauConfig wl_config;
    wl_config.grid.e_min = e_fm - 0.002;
    wl_config.grid.e_max = e_rand_max + 0.01;
    wl_config.grid.bins = 64;
    wl_config.grid.kernel_width_fraction = 0.5 / 64.0;
    wl_config.n_walkers = opt.wl_walkers;
    wl_config.max_steps = opt.wl_steps;
    wl_config.check_interval = std::max<std::uint64_t>(opt.wl_steps / 4, 1);

    wl::WlDriver driver(n, *service, wl_config,
                        std::make_unique<wl::HalvingSchedule>(1.0, 1e-8),
                        Rng(opt.seed + 1));
    const wl::DriverStats& stats = driver.run();
    std::printf(
        "WL over distributed service: %llu steps, %llu accepted, "
        "%llu resubmissions\n",
        static_cast<unsigned long long>(stats.total_steps),
        static_cast<unsigned long long>(stats.accepted_steps),
        static_cast<unsigned long long>(stats.resubmissions));
    if (const auto* speculative =
            dynamic_cast<const wl::SpeculativeEnergyService*>(service.get())) {
      const wl::SpeculationStats& spec_stats = speculative->stats();
      std::printf(
          "speculation: %llu proposed, %llu resolved by surrogate "
          "(hit rate %.1f %%), %llu audits, %llu refits, %llu trips; "
          "residual rms %.3e Ry\n",
          static_cast<unsigned long long>(spec_stats.proposed),
          static_cast<unsigned long long>(spec_stats.speculated),
          100.0 * spec_stats.hit_rate(),
          static_cast<unsigned long long>(spec_stats.audits),
          static_cast<unsigned long long>(spec_stats.refits),
          static_cast<unsigned long long>(spec_stats.trips),
          speculative->speculator().residual_rms());
    }
  }
  return 0;
}

/// SIGINT -> Daemon::stop() (a self-pipe write, async-signal-safe).
serve::Daemon* g_serve_daemon = nullptr;

extern "C" void serve_sigint(int) {
  if (g_serve_daemon != nullptr) g_serve_daemon->stop();
}

int cmd_serve(const cli::ServeOptions& opt) {
  serve::ServeOptions serve_options;
  serve_options.listen = opt.listen;
  serve_options.limits.max_pending = opt.max_pending;
  serve_options.limits.max_session_outstanding = opt.max_outstanding;
  serve_options.limits.max_batch = opt.max_batch;
  serve_options.limits.batch_window =
      std::chrono::milliseconds(opt.batch_window_ms);
  serve_options.checkpoint_dir = opt.checkpoint_dir;
  serve_options.gemm_batch_threads = opt.batch_threads;
  serve_options.on_listening = [](const std::string& address) {
    std::printf("serving on %s\n", address.c_str());
    std::fflush(stdout);
  };

  const auto solver = std::make_shared<const lsms::LsmsSolver>(
      lattice::make_fe_supercell(opt.cells), lsms::fe_lsms_parameters_fast());
  std::printf("substrate: %zu atoms, %zu-atom LIZ, %zu contour points\n",
              solver->n_atoms(), solver->liz_size(0),
              solver->contour().size());

  serve::Daemon daemon(solver, serve_options);
  g_serve_daemon = &daemon;
  std::signal(SIGINT, serve_sigint);
  std::signal(SIGTERM, serve_sigint);
  daemon.run();
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  g_serve_daemon = nullptr;

  const serve::BatchScheduler::Stats& stats = daemon.scheduler_stats();
  io::TextTable table({"quantity", "value"});
  table.row({"batches dispatched", std::to_string(stats.batches)});
  table.row({"requests batched", std::to_string(stats.batched_requests)});
  table.row({"requests singleton", std::to_string(stats.singleton_requests)});
  table.print();
  return 0;
}

int cmd_client(const cli::ClientOptions& opt) {
  // Built through the factory like every other service realization; the
  // serve-specific accessors (session, resume token) come back via the
  // concrete type.
  comm::EnergyServiceSpec spec;
  spec.kind = comm::ServiceKind::kServeClient;
  spec.serve_address = opt.connect;
  spec.serve_client.tenant = opt.tenant;
  spec.serve_client.resume_session = opt.resume_session;
  spec.serve_client.resume_token = opt.resume_token;
  const std::unique_ptr<wl::EnergyService> service =
      comm::make_energy_service(spec);
  auto& client = dynamic_cast<serve::ServeClient&>(*service);
  std::printf("session %llu as tenant '%s' (%zu atoms served)\n",
              static_cast<unsigned long long>(client.session()),
              opt.tenant.c_str(), client.n_atoms());
  std::printf("resume with: --resume-session %llu --resume-token %llu\n",
              static_cast<unsigned long long>(client.session()),
              static_cast<unsigned long long>(client.resume_token()));
  if (client.resumed())
    std::printf("resumed: %zu result(s) replayed or re-enqueued\n",
                client.outstanding());

  Rng rng(opt.seed);
  std::vector<spin::MomentConfiguration> configs;
  configs.reserve(opt.evals);
  for (std::size_t k = 0; k < opt.evals; ++k)
    configs.push_back(
        spin::MomentConfiguration::random(client.n_atoms(), rng));

  const auto start = std::chrono::steady_clock::now();
  for (std::size_t k = 0; k < opt.evals; ++k)
    client.submit({k % opt.walkers, k + 1, configs[k]});
  std::vector<double> energies(opt.evals, 0.0);
  std::size_t failures = 0;
  while (client.outstanding() > 0) {
    const wl::EnergyResult result = client.retrieve();
    if (result.failed)
      ++failures;
    else if (result.ticket >= 1 && result.ticket <= opt.evals)
      energies[result.ticket - 1] = result.energy;
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  io::TextTable table({"quantity", "value"});
  table.row({"evaluations", std::to_string(opt.evals)});
  table.row({"failures/rejects", std::to_string(failures)});
  table.row({"wall time", io::format_double(seconds, 3) + " s"});
  table.row(
      {"evals/s", io::format_double(opt.evals / std::max(seconds, 1e-9), 2)});
  table.print();

  if (opt.check) {
    const lsms::LsmsSolver solver(lattice::make_fe_supercell(opt.cells),
                                  lsms::fe_lsms_parameters_fast());
    if (solver.n_atoms() != client.n_atoms()) {
      std::fprintf(stderr,
                   "client: --cells %zu gives %zu atoms but the daemon "
                   "serves %zu\n",
                   opt.cells, solver.n_atoms(), client.n_atoms());
      return 2;
    }
    double max_diff = 0.0;
    for (std::size_t k = 0; k < opt.evals; ++k)
      max_diff = std::max(max_diff,
                          std::fabs(energies[k] - solver.energy(configs[k])));
    std::printf("max |E_daemon - E_serial| = %.3e Ry%s\n", max_diff,
                max_diff == 0.0 ? " (bit-identical)" : "");
    if (max_diff != 0.0) return 1;
  }
  return 0;
}

int cmd_status(const cli::StatusOptions& opt) {
  const std::string text = serve::fetch_status(
      opt.connect, std::chrono::milliseconds(opt.timeout_ms));
  std::fputs(text.c_str(), stdout);
  return 0;
}

int cmd_worker(const cli::WorkerOptions& opt) {
  // The worker builds its own solver (there is no shared address space over
  // TCP); --cells must match the controller so shard atom ranges agree.
  const auto solver = std::make_shared<const lsms::LsmsSolver>(
      lattice::make_fe_supercell(opt.cells), lsms::fe_lsms_parameters_fast());
  std::printf("worker: %zu atoms (%zu^3 cells), connecting to %s\n",
              solver->n_atoms(), opt.cells, opt.connect.c_str());
  std::fflush(stdout);

  const std::size_t rank = comm::run_tcp_worker(
      opt.connect, [solver](comm::WorkerChannel& channel) {
        std::printf("worker: joined as rank %zu\n", channel.rank());
        std::fflush(stdout);
        comm::run_shard_worker(channel, solver);
      });
  std::printf("worker: rank %zu done (controller shut down)\n", rank);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const cli::Options options = cli::Options::parse(argc, argv);
    if (options.empty_command()) return usage();

    // Label this process's trace file by subcommand, so a merged timeline
    // reads "distributed / worker / serve" instead of three "wlsms" rows.
    obs::set_trace_process_name(options.command());
    const std::unique_ptr<ObsScope> obs_scope = ObsScope::from_options(options);
    if (!obs_scope) return 2;

    // Parse the whole stringly map into one validated struct per subcommand
    // before any work starts; the command bodies never touch raw options.
    int status = 2;
    if (options.command() == "curie")
      status = cmd_curie(cli::CurieOptions::parse(options));
    else if (options.command() == "thermo")
      status = cmd_thermo(cli::ThermoOptions::parse(options));
    else if (options.command() == "extract")
      status = cmd_extract(cli::ExtractOptions::parse(options));
    else if (options.command() == "scaling")
      status = cmd_scaling(cli::ScalingOptions::parse(options));
    else if (options.command() == "distributed")
      status = cmd_distributed(cli::DistributedOptions::parse(options));
    else if (options.command() == "worker")
      status = cmd_worker(cli::WorkerOptions::parse(options));
    else if (options.command() == "serve")
      status = cmd_serve(cli::ServeOptions::parse(options));
    else if (options.command() == "client")
      status = cmd_client(cli::ClientOptions::parse(options));
    else if (options.command() == "status")
      status = cmd_status(cli::StatusOptions::parse(options));
    else {
      std::fprintf(stderr, "unknown command '%s'\n\n",
                   options.command().c_str());
      return usage();
    }

    for (const std::string& key : options.unused_keys())
      std::fprintf(stderr, "warning: unrecognized option --%s ignored\n",
                   key.c_str());
    return status;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
