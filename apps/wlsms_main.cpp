// wlsms — command-line driver for the WL-LSMS reproduction.
//
// Subcommands:
//   curie    converge the Wang-Landau DOS of an n^3-cell bcc Fe system and
//            report thermodynamics + the Curie temperature; optionally save
//            the DOS table as CSV
//   thermo   recompute F/U/c/S from a saved DOS table (no resampling)
//   extract  run the multiple-scattering substrate and print the extracted
//            exchange constants
//   scaling  simulate the paper's Cray XT5 runs (Fig. 7 / Table II)
//   distributed  evaluate LSMS energies sharded over real worker ranks
//            (threads, forked processes, or TCP workers) and cross-check
//            against the serial solver
//   worker   join a TCP controller as one worker rank (the multi-node
//            worker side of `distributed --transport tcp --external 1`)
//   serve    run the persistent multi-tenant energy daemon: clients submit
//            walker configurations over TCP and concurrent requests are
//            coalesced into cross-walker batched ZGEMM dispatches
//   client   drive a running daemon: submit random configurations as one
//            tenant and (optionally) cross-check the energies against a
//            local serial solver
//
// Examples:
//   wlsms curie --cells 5 --gamma-final 1e-6 --dos fe250.csv
//   wlsms thermo --dos fe250.csv --tmin 300 --tmax 1500 --points 13
//   wlsms extract --liz 5.6 --contour 8 --shells 2
//   wlsms scaling --walkers 144 --steps 20
//   wlsms distributed --transport process --groups 2 --group-size 2
//   wlsms distributed --transport tcp --listen 0.0.0.0:7777 --external 1
//   wlsms worker --connect controller-host:7777
//   wlsms serve --cells 2 --listen 127.0.0.1:7878 --checkpoint-dir /tmp/wlsms
//   wlsms client --connect 127.0.0.1:7878 --tenant alice --evals 16
#include <algorithm>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <exception>
#include <memory>

#include "cli.hpp"
#include "cluster/des.hpp"
#include "comm/distributed_service.hpp"
#include "comm/factory.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "heisenberg/heisenberg.hpp"
#include "io/dos_io.hpp"
#include "io/table.hpp"
#include "lsms/exchange.hpp"
#include "lsms/fe_parameters.hpp"
#include "lsms/solver.hpp"
#include "obs/snapshot.hpp"
#include "obs/trace.hpp"
#include "serve/client.hpp"
#include "serve/daemon.hpp"
#include "thermo/observables.hpp"
#include "wl/driver.hpp"
#include "wl/rewl.hpp"
#include "wl/wanglandau.hpp"

namespace {

using namespace wlsms;

int usage() {
  std::printf(
      "usage: wlsms <command> [--option value ...]\n"
      "\n"
      "commands:\n"
      "  curie    --cells N [--gamma-final G] [--walkers W] [--flatness A]\n"
      "           [--seed S] [--tmin K] [--dos out.csv]\n"
      "           [--rewl-windows N] [--rewl-overlap F]\n"
      "           [--rewl-exchange-interval STEPS]\n"
      "  thermo   --dos in.csv [--tmin K] [--tmax K] [--points N]\n"
      "  extract  [--liz R_a0] [--contour N] [--shells S] [--samples M]\n"
      "           [--cells N]\n"
      "  scaling  [--walkers N] [--steps N] [--atoms N]\n"
      "  distributed  [--transport inprocess|process|tcp] [--groups M]\n"
      "           [--group-size N] [--cells C] [--evals K] [--seed S]\n"
      "           [--check 0|1] [--wl-steps N] [--wl-walkers W]\n"
      "           [--listen HOST:PORT] [--external 0|1]   (tcp only;\n"
      "           --external 1 waits for `wlsms worker` processes to join\n"
      "           instead of forking local workers)\n"
      "  worker   --connect HOST:PORT [--cells C]   (one TCP worker rank;\n"
      "           --cells must match the controller's)\n"
      "  serve    [--cells C] [--listen HOST:PORT] [--max-pending N]\n"
      "           [--max-outstanding N] [--max-batch N] [--batch-window MS]\n"
      "           [--checkpoint-dir DIR] [--batch-threads N]\n"
      "           (multi-tenant energy daemon; Ctrl-C checkpoints live\n"
      "           sessions and exits)\n"
      "  client   --connect HOST:PORT [--tenant NAME] [--evals K]\n"
      "           [--walkers W] [--seed S] [--cells C] [--check 0|1]\n"
      "           [--resume-session ID --resume-token TOK]\n"
      "           (--check needs --cells matching the daemon's; resume\n"
      "           reclaims a checkpointed session's in-flight work)\n"
      "\n"
      "observability (any command):\n"
      "  --metrics-out FILE.jsonl   periodic run-health snapshots (metrics\n"
      "                             registry + per-kernel flops + Flop/s)\n"
      "  --snapshot-interval MS     snapshot period, default 1000\n"
      "  --trace-out FILE.json      Chrome trace_event spans; open the file\n"
      "                             in Perfetto (https://ui.perfetto.dev)\n"
      "  --log-level LEVEL          debug|info|warn|error|off\n");
  return 2;
}

/// RAII wiring of the shared observability flags: constructed in main()
/// before the command dispatch, torn down after it — the teardown order
/// guarantees the final snapshot record and the trace file are written even
/// when the command exits early.
class ObsScope {
 public:
  /// Returns nullptr (after printing a diagnostic) on a malformed
  /// --log-level; otherwise the configured scope.
  static std::unique_ptr<ObsScope> from_options(const cli::Options& options) {
    const std::string level_str = options.get_string("log-level", "");
    if (!level_str.empty()) {
      LogLevel level = LogLevel::kInfo;
      if (!parse_log_level(level_str, level)) {
        std::fprintf(stderr,
                     "error: --log-level '%s' is not one of "
                     "debug|info|warn|error|off\n",
                     level_str.c_str());
        return nullptr;
      }
      set_log_level(level);
    }
    auto scope = std::unique_ptr<ObsScope>(new ObsScope);
    scope->trace_path_ = options.get_string("trace-out", "");
    if (!scope->trace_path_.empty()) obs::enable_tracing();
    const std::string metrics_path = options.get_string("metrics-out", "");
    if (!metrics_path.empty()) {
      obs::SnapshotConfig config;
      config.path = metrics_path;
      config.interval = std::chrono::milliseconds(
          std::max<long>(1, options.get_long("snapshot-interval", 1000)));
      scope->snapshots_ = std::make_unique<obs::SnapshotWriter>(config);
    }
    return scope;
  }

  ObsScope(const ObsScope&) = delete;
  ObsScope& operator=(const ObsScope&) = delete;

  ~ObsScope() {
    // Final snapshot first (the writer's destructor emits the "final"
    // record), then drain the span rings into the trace file.
    snapshots_.reset();
    if (!trace_path_.empty()) {
      try {
        obs::write_chrome_trace(trace_path_);
        std::fprintf(stderr, "trace written to %s\n", trace_path_.c_str());
      } catch (const std::exception& error) {
        std::fprintf(stderr, "error: trace export failed: %s\n", error.what());
      }
      obs::disable_tracing();
    }
  }

 private:
  ObsScope() = default;

  std::string trace_path_;
  std::unique_ptr<obs::SnapshotWriter> snapshots_;
};

wl::HeisenbergEnergy surrogate(std::size_t cells) {
  std::vector<double> j = lsms::fe_reference_exchange();
  for (double& v : j) v *= lsms::fe_exchange_energy_scale;
  return wl::HeisenbergEnergy(
      heisenberg::HeisenbergModel(lattice::make_fe_supercell(cells), j));
}

int cmd_curie(const cli::Options& options) {
  const auto cells = static_cast<std::size_t>(options.get_long("cells", 2));
  const double gamma_final = options.get_double("gamma-final", 1e-6);
  const auto walkers = static_cast<std::size_t>(options.get_long("walkers", 8));
  const double flatness = options.get_double("flatness", 0.8);
  const auto seed = options.get_u64("seed", 123);
  const double t_min = options.get_double("tmin", 150.0);
  const std::string dos_path = options.get_string("dos", "");
  const auto rewl_windows =
      static_cast<std::size_t>(options.get_long("rewl-windows", 1));
  const double rewl_overlap = options.get_double("rewl-overlap", 0.75);
  const auto rewl_interval = static_cast<std::uint64_t>(
      options.get_long("rewl-exchange-interval", 2000));

  wl::HeisenbergEnergy energy = surrogate(cells);
  std::printf("system: %zu bcc Fe atoms (%zu^3 cells)\n", energy.n_sites(),
              cells);

  Rng window_rng(5);
  wl::WangLandauConfig config;
  config.grid = wl::thermal_window(
      energy, energy.model().ferromagnetic_energy(), t_min, window_rng);
  config.n_walkers = walkers;
  config.flatness = flatness;
  config.check_interval = 5000;
  config.max_iteration_steps = 2000000;

  thermo::DosTable dos;
  if (rewl_windows > 1) {
    // Replica-exchange windowed decomposition (rewl.hpp).
    wl::RewlConfig rewl;
    rewl.base = config;
    rewl.n_windows = rewl_windows;
    rewl.overlap = rewl_overlap;
    rewl.exchange_interval = rewl_interval;
    const wl::RewlResult result = wl::run_rewl(
        energy, rewl, wl::HalvingSchedule(1.0, gamma_final), Rng(seed));
    std::uint64_t total_steps = 0;
    std::size_t iterations = 0;
    for (const wl::WangLandauStats& stats : result.per_window) {
      total_steps += stats.total_steps;
      iterations = std::max(iterations, stats.iterations);
    }
    std::printf(
        "converged: %llu WL steps over %zu windows (overlap %.0f %%), "
        "%zu gamma levels; %llu/%llu exchanges accepted\n",
        static_cast<unsigned long long>(total_steps), result.windows.size(),
        100.0 * rewl_overlap, iterations,
        static_cast<unsigned long long>(result.exchange_accepts),
        static_cast<unsigned long long>(result.exchange_attempts));
    dos = thermo::dos_table(result.stitched);
  } else {
    wl::WangLandau sampler(
        energy, config,
        std::make_unique<wl::HalvingSchedule>(1.0, gamma_final), Rng(seed));
    sampler.run();
    std::printf("converged: %llu WL steps, %zu gamma levels (%zu forced)\n",
                static_cast<unsigned long long>(sampler.stats().total_steps),
                sampler.stats().iterations, sampler.stats().forced_iterations);
    dos = thermo::dos_table(sampler.dos());
  }
  if (!dos_path.empty()) {
    io::save_dos(dos_path, dos);
    std::printf("DOS written to %s (%zu bins)\n", dos_path.c_str(),
                dos.energy.size());
  }

  io::TextTable table({"T [K]", "U [Ry]", "c [Ry/K]"});
  for (double t = 300.0; t <= 1800.0; t += 300.0) {
    const thermo::Observables obs = thermo::observables_at(dos, t);
    table.row({io::format_double(t, 0), io::format_double(obs.internal_energy, 5),
               io::format_double(obs.specific_heat * 1e4, 3) + "e-4"});
  }
  table.print();
  const thermo::CurieEstimate tc =
      thermo::estimate_curie_temperature(dos, 250.0, 3000.0);
  std::printf("Curie temperature (c-peak): %.0f K\n", tc.tc);
  return 0;
}

int cmd_thermo(const cli::Options& options) {
  const std::string dos_path = options.get_string("dos", "");
  if (dos_path.empty()) {
    std::fprintf(stderr, "thermo: --dos <file.csv> is required\n");
    return 2;
  }
  const double t_min = options.get_double("tmin", 200.0);
  const double t_max = options.get_double("tmax", 3000.0);
  const auto points = static_cast<std::size_t>(options.get_long("points", 15));

  const thermo::DosTable dos = io::load_dos(dos_path);
  std::printf("loaded %zu DOS bins from %s (E in [%.4f, %.4f] Ry)\n",
              dos.energy.size(), dos_path.c_str(), dos.energy.front(),
              dos.energy.back());

  io::TextTable table({"T [K]", "F' [Ry]", "U [Ry]", "c [Ry/K]", "S' [Ry/K]"});
  for (const thermo::Observables& obs :
       thermo::temperature_sweep(dos, t_min, t_max, points)) {
    table.row({io::format_double(obs.temperature, 0),
               io::format_double(obs.free_energy, 4),
               io::format_double(obs.internal_energy, 5),
               io::format_double(obs.specific_heat * 1e4, 3) + "e-4",
               io::format_double(obs.entropy * 1e6, 2) + "e-6"});
  }
  table.print();
  const thermo::CurieEstimate tc =
      thermo::estimate_curie_temperature(dos, t_min, t_max);
  std::printf("c-peak: %.0f K\n", tc.tc);
  return 0;
}

int cmd_extract(const cli::Options& options) {
  const auto cells = static_cast<std::size_t>(options.get_long("cells", 2));
  const double liz = options.get_double("liz", 5.6);
  const auto contour = static_cast<std::size_t>(options.get_long("contour", 8));
  const auto shells = static_cast<std::size_t>(options.get_long("shells", 2));
  const auto samples =
      static_cast<std::size_t>(options.get_long("samples", 24));

  lsms::LsmsParameters params = lsms::fe_lsms_parameters_fast();
  params.liz_radius = liz;
  params.contour_points = contour;
  const lsms::LsmsSolver solver(lattice::make_fe_supercell(cells), params);
  std::printf("substrate: %zu atoms, %zu-atom LIZ, %zu contour points "
              "(%.2f GFlop per energy evaluation)\n",
              solver.n_atoms(), solver.liz_size(0), contour,
              static_cast<double>(solver.flops_per_energy()) / 1e9);

  Rng rng(42);
  const lsms::ExtractedExchange exchange =
      lsms::extract_exchange(solver, shells, samples, rng);
  io::TextTable table({"shell", "radius [a0]", "bonds", "J [mRy]"});
  for (std::size_t s = 0; s < exchange.shells.size(); ++s)
    table.row({std::to_string(s + 1),
               io::format_double(exchange.shells[s].radius, 3),
               std::to_string(exchange.shells[s].bonds),
               io::format_double(1e3 * exchange.shells[s].j, 4)});
  table.print();
  std::printf("fit rms: %.3e Ry over %zu samples\n", exchange.fit_rms,
              samples);
  return 0;
}

int cmd_scaling(const cli::Options& options) {
  const auto walkers = static_cast<std::size_t>(options.get_long("walkers", 144));
  const auto steps = static_cast<std::size_t>(options.get_long("steps", 20));
  const auto atoms = static_cast<std::size_t>(options.get_long("atoms", 1024));

  const cluster::MachineDescription machine = cluster::jaguar_xt5();
  cluster::JobDescription job;
  job.n_atoms = atoms;
  job.n_walkers = walkers;
  job.steps_per_walker = steps;
  job.fidelity.contour_points = 20;
  const cluster::SimulationResult r = cluster::simulate_wl_lsms(machine, job);

  io::TextTable table({"quantity", "value"});
  table.row({"walkers", std::to_string(r.n_walkers)});
  table.row({"cores", std::to_string(r.cores)});
  table.row({"runtime", io::format_double(r.makespan_s, 1) + " s"});
  table.row({"sustained", io::format_flops(r.sustained_flops)});
  table.row({"fraction of peak",
             io::format_double(100.0 * r.fraction_of_peak, 1) + " %"});
  table.row({"core-hours", io::format_double(r.core_hours, 0)});
  table.print();
  return 0;
}

int cmd_distributed(const cli::Options& options) {
  const std::string transport_str =
      options.get_string("transport", "inprocess");
  const auto groups = static_cast<std::size_t>(options.get_long("groups", 2));
  const auto group_size =
      static_cast<std::size_t>(options.get_long("group-size", 2));
  const auto cells = static_cast<std::size_t>(options.get_long("cells", 2));
  const auto evals = static_cast<std::size_t>(options.get_long("evals", 8));
  const auto seed = options.get_u64("seed", 7);
  const bool check = options.get_long("check", 1) != 0;
  const auto wl_steps =
      options.get_u64("wl-steps", 0);
  const auto wl_walkers =
      static_cast<std::size_t>(options.get_long("wl-walkers", 4));

  const auto solver = std::make_shared<const lsms::LsmsSolver>(
      lattice::make_fe_supercell(cells), lsms::fe_lsms_parameters_fast());
  const wl::LsmsEnergy energy(solver);
  std::printf("substrate: %zu atoms, %zu-atom LIZ, %zu contour points\n",
              solver->n_atoms(), solver->liz_size(0),
              solver->contour().size());

  comm::EnergyServiceSpec spec;
  spec.kind = comm::ServiceKind::kDistributed;
  spec.energy = &energy;
  spec.distributed.n_groups = groups;
  spec.distributed.group_size = group_size;
  spec.distributed.transport = comm::parse_transport(transport_str);
  if (spec.distributed.transport == comm::Transport::kTcp) {
    spec.distributed.tcp.listen =
        options.get_string("listen", "127.0.0.1:0");
    if (options.get_long("external", 0) != 0) {
      // External workers: print where to point `wlsms worker` and wait for
      // the operator to start one per rank (possibly on other nodes).
      const std::size_t n_ranks = groups * group_size;
      spec.distributed.tcp.spawn_workers = false;
      spec.distributed.tcp.accept_timeout = std::chrono::minutes(10);
      spec.distributed.tcp.on_listening =
          [n_ranks, cells](const std::string& address) {
            std::printf(
                "listening on %s; start %zu workers, e.g.\n"
                "  wlsms worker --connect %s --cells %zu\n",
                address.c_str(), n_ranks, address.c_str(), cells);
            std::fflush(stdout);
          };
    }
  }
  const std::unique_ptr<wl::EnergyService> service =
      comm::make_energy_service(spec);

  Rng rng(seed);
  std::vector<spin::MomentConfiguration> configs;
  configs.reserve(evals);
  for (std::size_t k = 0; k < evals; ++k)
    configs.push_back(spin::MomentConfiguration::random(solver->n_atoms(), rng));

  const auto start = std::chrono::steady_clock::now();
  for (std::size_t k = 0; k < evals; ++k)
    service->submit({k % std::max<std::size_t>(groups, 1), k + 1, configs[k]});
  std::vector<double> energies(evals, 0.0);
  for (std::size_t k = 0; k < evals; ++k) {
    const wl::EnergyResult result = service->retrieve();
    energies[result.ticket - 1] = result.energy;
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  io::TextTable table({"quantity", "value"});
  table.row({"transport", comm::transport_name(spec.distributed.transport)});
  table.row({"worker ranks",
             std::to_string(groups) + " groups x " +
                 std::to_string(group_size)});
  table.row({"evaluations", std::to_string(evals)});
  table.row({"wall time", io::format_double(seconds, 3) + " s"});
  table.row({"evals/s", io::format_double(evals / std::max(seconds, 1e-9), 2)});
  table.print();

  if (check) {
    double max_diff = 0.0;
    for (std::size_t k = 0; k < evals; ++k)
      max_diff = std::max(
          max_diff, std::fabs(energies[k] - energy.total_energy(configs[k])));
    std::printf("max |E_distributed - E_serial| = %.3e Ry%s\n", max_diff,
                max_diff == 0.0 ? " (bit-identical)" : "");
    if (max_diff != 0.0) return 1;
  }

  if (wl_steps > 0) {
    // Short Wang-Landau run over the distributed service (the paper's §IV
    // benchmark schedule) so --metrics-out / --trace-out capture the whole
    // two-level stack: WL acceptance and flatness, comm frame traffic and
    // retrieve latency, and per-kernel flops, in one telemetry stream.
    const std::size_t n = solver->n_atoms();
    const double e_fm =
        solver->energy(spin::MomentConfiguration::ferromagnetic(n));
    double e_rand_max = -1e300;
    for (int k = 0; k < 8; ++k)
      e_rand_max = std::max(
          e_rand_max, solver->energy(spin::MomentConfiguration::random(n, rng)));

    wl::WangLandauConfig wl_config;
    wl_config.grid.e_min = e_fm - 0.002;
    wl_config.grid.e_max = e_rand_max + 0.01;
    wl_config.grid.bins = 64;
    wl_config.grid.kernel_width_fraction = 0.5 / 64.0;
    wl_config.n_walkers = wl_walkers;
    wl_config.max_steps = wl_steps;
    wl_config.check_interval = std::max<std::uint64_t>(wl_steps / 4, 1);

    wl::WlDriver driver(n, *service, wl_config,
                        std::make_unique<wl::HalvingSchedule>(1.0, 1e-8),
                        Rng(seed + 1));
    const wl::DriverStats& stats = driver.run();
    std::printf(
        "WL over distributed service: %llu steps, %llu accepted, "
        "%llu resubmissions\n",
        static_cast<unsigned long long>(stats.total_steps),
        static_cast<unsigned long long>(stats.accepted_steps),
        static_cast<unsigned long long>(stats.resubmissions));
  }
  return 0;
}

/// SIGINT -> Daemon::stop() (a self-pipe write, async-signal-safe).
serve::Daemon* g_serve_daemon = nullptr;

extern "C" void serve_sigint(int) {
  if (g_serve_daemon != nullptr) g_serve_daemon->stop();
}

int cmd_serve(const cli::Options& options) {
  const auto cells = static_cast<std::size_t>(options.get_long("cells", 2));

  serve::ServeOptions serve_options;
  serve_options.listen = options.get_string("listen", "127.0.0.1:7878");
  serve_options.limits.max_pending =
      static_cast<std::size_t>(options.get_long("max-pending", 256));
  serve_options.limits.max_session_outstanding =
      static_cast<std::size_t>(options.get_long("max-outstanding", 64));
  serve_options.limits.max_batch =
      static_cast<std::size_t>(options.get_long("max-batch", 16));
  serve_options.limits.batch_window =
      std::chrono::milliseconds(options.get_long("batch-window", 5));
  serve_options.checkpoint_dir = options.get_string("checkpoint-dir", "");
  serve_options.gemm_batch_threads =
      static_cast<std::size_t>(options.get_long("batch-threads", 0));
  serve_options.on_listening = [](const std::string& address) {
    std::printf("serving on %s\n", address.c_str());
    std::fflush(stdout);
  };

  const auto solver = std::make_shared<const lsms::LsmsSolver>(
      lattice::make_fe_supercell(cells), lsms::fe_lsms_parameters_fast());
  std::printf("substrate: %zu atoms, %zu-atom LIZ, %zu contour points\n",
              solver->n_atoms(), solver->liz_size(0),
              solver->contour().size());

  serve::Daemon daemon(solver, serve_options);
  g_serve_daemon = &daemon;
  std::signal(SIGINT, serve_sigint);
  std::signal(SIGTERM, serve_sigint);
  daemon.run();
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  g_serve_daemon = nullptr;

  const serve::BatchScheduler::Stats& stats = daemon.scheduler_stats();
  io::TextTable table({"quantity", "value"});
  table.row({"batches dispatched", std::to_string(stats.batches)});
  table.row({"requests batched", std::to_string(stats.batched_requests)});
  table.row({"requests singleton", std::to_string(stats.singleton_requests)});
  table.print();
  return 0;
}

int cmd_client(const cli::Options& options) {
  const std::string connect = options.get_string("connect", "");
  if (connect.empty()) {
    std::fprintf(stderr, "client: --connect <host:port> is required\n");
    return 2;
  }
  const auto evals = static_cast<std::size_t>(options.get_long("evals", 8));
  const auto walkers =
      static_cast<std::size_t>(options.get_long("walkers", 4));
  const auto seed = options.get_u64("seed", 11);
  const bool check = options.get_long("check", 0) != 0;
  const auto cells = static_cast<std::size_t>(options.get_long("cells", 2));

  serve::ClientOptions client_options;
  client_options.tenant = options.get_string("tenant", "default");
  client_options.resume_session =
      options.get_u64("resume-session", 0);
  client_options.resume_token =
      options.get_u64("resume-token", 0);
  serve::ServeClient client(connect, client_options);
  std::printf("session %llu as tenant '%s' (%zu atoms served)\n",
              static_cast<unsigned long long>(client.session()),
              client_options.tenant.c_str(), client.n_atoms());
  std::printf("resume with: --resume-session %llu --resume-token %llu\n",
              static_cast<unsigned long long>(client.session()),
              static_cast<unsigned long long>(client.resume_token()));
  if (client.resumed())
    std::printf("resumed: %zu result(s) replayed or re-enqueued\n",
                client.outstanding());

  Rng rng(seed);
  std::vector<spin::MomentConfiguration> configs;
  configs.reserve(evals);
  for (std::size_t k = 0; k < evals; ++k)
    configs.push_back(
        spin::MomentConfiguration::random(client.n_atoms(), rng));

  const auto start = std::chrono::steady_clock::now();
  for (std::size_t k = 0; k < evals; ++k)
    client.submit({k % std::max<std::size_t>(walkers, 1), k + 1, configs[k]});
  std::vector<double> energies(evals, 0.0);
  std::size_t failures = 0;
  while (client.outstanding() > 0) {
    const wl::EnergyResult result = client.retrieve();
    if (result.failed)
      ++failures;
    else if (result.ticket >= 1 && result.ticket <= evals)
      energies[result.ticket - 1] = result.energy;
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  io::TextTable table({"quantity", "value"});
  table.row({"evaluations", std::to_string(evals)});
  table.row({"failures/rejects", std::to_string(failures)});
  table.row({"wall time", io::format_double(seconds, 3) + " s"});
  table.row({"evals/s", io::format_double(evals / std::max(seconds, 1e-9), 2)});
  table.print();

  if (check) {
    const lsms::LsmsSolver solver(lattice::make_fe_supercell(cells),
                                  lsms::fe_lsms_parameters_fast());
    if (solver.n_atoms() != client.n_atoms()) {
      std::fprintf(stderr,
                   "client: --cells %zu gives %zu atoms but the daemon "
                   "serves %zu\n",
                   cells, solver.n_atoms(), client.n_atoms());
      return 2;
    }
    double max_diff = 0.0;
    for (std::size_t k = 0; k < evals; ++k)
      max_diff = std::max(max_diff,
                          std::fabs(energies[k] - solver.energy(configs[k])));
    std::printf("max |E_daemon - E_serial| = %.3e Ry%s\n", max_diff,
                max_diff == 0.0 ? " (bit-identical)" : "");
    if (max_diff != 0.0) return 1;
  }
  return 0;
}

int cmd_worker(const cli::Options& options) {
  const std::string connect = options.get_string("connect", "");
  if (connect.empty()) {
    std::fprintf(stderr, "worker: --connect <host:port> is required\n");
    return 2;
  }
  const auto cells = static_cast<std::size_t>(options.get_long("cells", 2));

  // The worker builds its own solver (there is no shared address space over
  // TCP); --cells must match the controller so shard atom ranges agree.
  const auto solver = std::make_shared<const lsms::LsmsSolver>(
      lattice::make_fe_supercell(cells), lsms::fe_lsms_parameters_fast());
  std::printf("worker: %zu atoms (%zu^3 cells), connecting to %s\n",
              solver->n_atoms(), cells, connect.c_str());
  std::fflush(stdout);

  const std::size_t rank = comm::run_tcp_worker(
      connect, [solver](comm::WorkerChannel& channel) {
        std::printf("worker: joined as rank %zu\n", channel.rank());
        std::fflush(stdout);
        comm::run_shard_worker(channel, solver);
      });
  std::printf("worker: rank %zu done (controller shut down)\n", rank);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const cli::Options options = cli::Options::parse(argc, argv);
    if (options.empty_command()) return usage();

    const std::unique_ptr<ObsScope> obs_scope = ObsScope::from_options(options);
    if (!obs_scope) return 2;

    int status = 2;
    if (options.command() == "curie")
      status = cmd_curie(options);
    else if (options.command() == "thermo")
      status = cmd_thermo(options);
    else if (options.command() == "extract")
      status = cmd_extract(options);
    else if (options.command() == "scaling")
      status = cmd_scaling(options);
    else if (options.command() == "distributed")
      status = cmd_distributed(options);
    else if (options.command() == "worker")
      status = cmd_worker(options);
    else if (options.command() == "serve")
      status = cmd_serve(options);
    else if (options.command() == "client")
      status = cmd_client(options);
    else {
      std::fprintf(stderr, "unknown command '%s'\n\n",
                   options.command().c_str());
      return usage();
    }

    for (const std::string& key : options.unused_keys())
      std::fprintf(stderr, "warning: unrecognized option --%s ignored\n",
                   key.c_str());
    return status;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
