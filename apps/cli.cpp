#include "cli.hpp"

#include <charconv>
#include <stdexcept>

namespace wlsms::cli {

Options Options::parse(int argc, char** argv) {
  Options options;
  int i = 1;
  if (i < argc && argv[i][0] != '-') options.command_ = argv[i++];
  if (i < argc && argv[i][0] != '-') options.positional_ = argv[i++];
  while (i < argc) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) != 0)
      throw std::runtime_error("expected --option, got '" + token + "'");
    if (i + 1 >= argc)
      throw std::runtime_error("missing value for '" + token + "'");
    options.values_[token.substr(2)] = argv[i + 1];
    i += 2;
  }
  return options;
}

std::string Options::get_string(const std::string& key,
                                const std::string& fallback) const {
  queried_[key] = true;
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

double Options::get_double(const std::string& key, double fallback) const {
  queried_[key] = true;
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  // std::from_chars, unlike std::stod, skips no leading whitespace, takes no
  // hex floats, and flags overflow — so "1e999", " 1.5", "0x10", a lone "-",
  // and trailing garbage all fail loudly instead of half-parsing.
  const std::string& text = it->second;
  double value = 0.0;
  const auto [end, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || end != text.data() + text.size())
    throw std::runtime_error("--" + key + ": expected a number, got '" + text +
                             "'");
  return value;
}

long Options::get_long(const std::string& key, long fallback) const {
  queried_[key] = true;
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    std::size_t used = 0;
    const long value = std::stol(it->second, &used);
    if (used != it->second.size()) throw std::invalid_argument(key);
    return value;
  } catch (const std::exception&) {
    throw std::runtime_error("--" + key + ": expected an integer, got '" +
                             it->second + "'");
  }
}

std::uint64_t Options::get_u64(const std::string& key,
                               std::uint64_t fallback) const {
  queried_[key] = true;
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  // std::stoull accepts a leading '-' by wrapping modulo 2^64; reject it so
  // a negative id fails loudly instead of becoming a huge token.
  const std::string& text = it->second;
  try {
    if (text.empty() || text[0] == '-') throw std::invalid_argument(key);
    std::size_t used = 0;
    const unsigned long long value = std::stoull(text, &used);
    if (used != text.size()) throw std::invalid_argument(key);
    return static_cast<std::uint64_t>(value);
  } catch (const std::exception&) {
    throw std::runtime_error("--" + key +
                             ": expected an unsigned integer, got '" + text +
                             "'");
  }
}

bool Options::has(const std::string& key) const {
  queried_[key] = true;
  return values_.count(key) > 0;
}

std::vector<std::string> Options::unused_keys() const {
  std::vector<std::string> unused;
  for (const auto& [key, value] : values_)
    if (!queried_.count(key)) unused.push_back(key);
  return unused;
}

}  // namespace wlsms::cli
