
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/apps/wlsms_main.cpp" "apps/CMakeFiles/wlsms.dir/wlsms_main.cpp.o" "gcc" "apps/CMakeFiles/wlsms.dir/wlsms_main.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/apps/CMakeFiles/wlsms_cli_lib.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/cluster/CMakeFiles/wlsms_cluster.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/parallel/CMakeFiles/wlsms_parallel.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/mc/CMakeFiles/wlsms_mc.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/thermo/CMakeFiles/wlsms_thermo.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/wl/CMakeFiles/wlsms_wl.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/heisenberg/CMakeFiles/wlsms_heisenberg.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/lsms/CMakeFiles/wlsms_lsms.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/spin/CMakeFiles/wlsms_spin.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/lattice/CMakeFiles/wlsms_lattice.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/linalg/CMakeFiles/wlsms_linalg.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/perf/CMakeFiles/wlsms_perf.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/io/CMakeFiles/wlsms_io.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/wlsms_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/parallel/CMakeFiles/wlsms_threads.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
