
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/heisenberg/heisenberg.cpp" "src/heisenberg/CMakeFiles/wlsms_heisenberg.dir/heisenberg.cpp.o" "gcc" "src/heisenberg/CMakeFiles/wlsms_heisenberg.dir/heisenberg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/wlsms_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/lattice/CMakeFiles/wlsms_lattice.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/spin/CMakeFiles/wlsms_spin.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/linalg/CMakeFiles/wlsms_linalg.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/perf/CMakeFiles/wlsms_perf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
