file(REMOVE_RECURSE
  "libwlsms_spin.a"
)
