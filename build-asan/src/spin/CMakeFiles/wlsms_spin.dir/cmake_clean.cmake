file(REMOVE_RECURSE
  "CMakeFiles/wlsms_spin.dir/moments.cpp.o"
  "CMakeFiles/wlsms_spin.dir/moments.cpp.o.d"
  "CMakeFiles/wlsms_spin.dir/moves.cpp.o"
  "CMakeFiles/wlsms_spin.dir/moves.cpp.o.d"
  "CMakeFiles/wlsms_spin.dir/rotation.cpp.o"
  "CMakeFiles/wlsms_spin.dir/rotation.cpp.o.d"
  "libwlsms_spin.a"
  "libwlsms_spin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wlsms_spin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
