# Empty compiler generated dependencies file for wlsms_spin.
# This may be replaced when dependencies are built.
