file(REMOVE_RECURSE
  "libwlsms_mc.a"
)
