# Empty dependencies file for wlsms_mc.
# This may be replaced when dependencies are built.
