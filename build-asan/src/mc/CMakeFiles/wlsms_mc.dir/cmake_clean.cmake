file(REMOVE_RECURSE
  "CMakeFiles/wlsms_mc.dir/metropolis.cpp.o"
  "CMakeFiles/wlsms_mc.dir/metropolis.cpp.o.d"
  "libwlsms_mc.a"
  "libwlsms_mc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wlsms_mc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
