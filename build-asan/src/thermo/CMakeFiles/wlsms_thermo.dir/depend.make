# Empty dependencies file for wlsms_thermo.
# This may be replaced when dependencies are built.
