file(REMOVE_RECURSE
  "libwlsms_thermo.a"
)
