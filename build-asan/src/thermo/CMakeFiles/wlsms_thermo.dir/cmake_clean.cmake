file(REMOVE_RECURSE
  "CMakeFiles/wlsms_thermo.dir/binder.cpp.o"
  "CMakeFiles/wlsms_thermo.dir/binder.cpp.o.d"
  "CMakeFiles/wlsms_thermo.dir/joint_observables.cpp.o"
  "CMakeFiles/wlsms_thermo.dir/joint_observables.cpp.o.d"
  "CMakeFiles/wlsms_thermo.dir/observables.cpp.o"
  "CMakeFiles/wlsms_thermo.dir/observables.cpp.o.d"
  "libwlsms_thermo.a"
  "libwlsms_thermo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wlsms_thermo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
