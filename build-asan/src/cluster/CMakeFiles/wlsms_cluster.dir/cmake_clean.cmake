file(REMOVE_RECURSE
  "CMakeFiles/wlsms_cluster.dir/des.cpp.o"
  "CMakeFiles/wlsms_cluster.dir/des.cpp.o.d"
  "libwlsms_cluster.a"
  "libwlsms_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wlsms_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
