# Empty compiler generated dependencies file for wlsms_cluster.
# This may be replaced when dependencies are built.
