file(REMOVE_RECURSE
  "libwlsms_cluster.a"
)
