
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wl/checkpoint.cpp" "src/wl/CMakeFiles/wlsms_wl.dir/checkpoint.cpp.o" "gcc" "src/wl/CMakeFiles/wlsms_wl.dir/checkpoint.cpp.o.d"
  "/root/repo/src/wl/dos_grid.cpp" "src/wl/CMakeFiles/wlsms_wl.dir/dos_grid.cpp.o" "gcc" "src/wl/CMakeFiles/wlsms_wl.dir/dos_grid.cpp.o.d"
  "/root/repo/src/wl/driver.cpp" "src/wl/CMakeFiles/wlsms_wl.dir/driver.cpp.o" "gcc" "src/wl/CMakeFiles/wlsms_wl.dir/driver.cpp.o.d"
  "/root/repo/src/wl/energy_function.cpp" "src/wl/CMakeFiles/wlsms_wl.dir/energy_function.cpp.o" "gcc" "src/wl/CMakeFiles/wlsms_wl.dir/energy_function.cpp.o.d"
  "/root/repo/src/wl/energy_service.cpp" "src/wl/CMakeFiles/wlsms_wl.dir/energy_service.cpp.o" "gcc" "src/wl/CMakeFiles/wlsms_wl.dir/energy_service.cpp.o.d"
  "/root/repo/src/wl/joint_dos.cpp" "src/wl/CMakeFiles/wlsms_wl.dir/joint_dos.cpp.o" "gcc" "src/wl/CMakeFiles/wlsms_wl.dir/joint_dos.cpp.o.d"
  "/root/repo/src/wl/joint_wl.cpp" "src/wl/CMakeFiles/wlsms_wl.dir/joint_wl.cpp.o" "gcc" "src/wl/CMakeFiles/wlsms_wl.dir/joint_wl.cpp.o.d"
  "/root/repo/src/wl/multimaster.cpp" "src/wl/CMakeFiles/wlsms_wl.dir/multimaster.cpp.o" "gcc" "src/wl/CMakeFiles/wlsms_wl.dir/multimaster.cpp.o.d"
  "/root/repo/src/wl/rewl.cpp" "src/wl/CMakeFiles/wlsms_wl.dir/rewl.cpp.o" "gcc" "src/wl/CMakeFiles/wlsms_wl.dir/rewl.cpp.o.d"
  "/root/repo/src/wl/schedule.cpp" "src/wl/CMakeFiles/wlsms_wl.dir/schedule.cpp.o" "gcc" "src/wl/CMakeFiles/wlsms_wl.dir/schedule.cpp.o.d"
  "/root/repo/src/wl/wanglandau.cpp" "src/wl/CMakeFiles/wlsms_wl.dir/wanglandau.cpp.o" "gcc" "src/wl/CMakeFiles/wlsms_wl.dir/wanglandau.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/common/CMakeFiles/wlsms_common.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/spin/CMakeFiles/wlsms_spin.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/heisenberg/CMakeFiles/wlsms_heisenberg.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/lsms/CMakeFiles/wlsms_lsms.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/parallel/CMakeFiles/wlsms_threads.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/linalg/CMakeFiles/wlsms_linalg.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/lattice/CMakeFiles/wlsms_lattice.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/perf/CMakeFiles/wlsms_perf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
