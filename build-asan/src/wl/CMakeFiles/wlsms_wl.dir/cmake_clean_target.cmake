file(REMOVE_RECURSE
  "libwlsms_wl.a"
)
