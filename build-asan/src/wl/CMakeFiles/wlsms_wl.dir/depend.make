# Empty dependencies file for wlsms_wl.
# This may be replaced when dependencies are built.
