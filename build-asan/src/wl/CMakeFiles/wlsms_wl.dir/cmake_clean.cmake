file(REMOVE_RECURSE
  "CMakeFiles/wlsms_wl.dir/checkpoint.cpp.o"
  "CMakeFiles/wlsms_wl.dir/checkpoint.cpp.o.d"
  "CMakeFiles/wlsms_wl.dir/dos_grid.cpp.o"
  "CMakeFiles/wlsms_wl.dir/dos_grid.cpp.o.d"
  "CMakeFiles/wlsms_wl.dir/driver.cpp.o"
  "CMakeFiles/wlsms_wl.dir/driver.cpp.o.d"
  "CMakeFiles/wlsms_wl.dir/energy_function.cpp.o"
  "CMakeFiles/wlsms_wl.dir/energy_function.cpp.o.d"
  "CMakeFiles/wlsms_wl.dir/energy_service.cpp.o"
  "CMakeFiles/wlsms_wl.dir/energy_service.cpp.o.d"
  "CMakeFiles/wlsms_wl.dir/joint_dos.cpp.o"
  "CMakeFiles/wlsms_wl.dir/joint_dos.cpp.o.d"
  "CMakeFiles/wlsms_wl.dir/joint_wl.cpp.o"
  "CMakeFiles/wlsms_wl.dir/joint_wl.cpp.o.d"
  "CMakeFiles/wlsms_wl.dir/multimaster.cpp.o"
  "CMakeFiles/wlsms_wl.dir/multimaster.cpp.o.d"
  "CMakeFiles/wlsms_wl.dir/rewl.cpp.o"
  "CMakeFiles/wlsms_wl.dir/rewl.cpp.o.d"
  "CMakeFiles/wlsms_wl.dir/schedule.cpp.o"
  "CMakeFiles/wlsms_wl.dir/schedule.cpp.o.d"
  "CMakeFiles/wlsms_wl.dir/wanglandau.cpp.o"
  "CMakeFiles/wlsms_wl.dir/wanglandau.cpp.o.d"
  "libwlsms_wl.a"
  "libwlsms_wl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wlsms_wl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
