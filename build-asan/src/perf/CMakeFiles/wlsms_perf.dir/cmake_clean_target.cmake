file(REMOVE_RECURSE
  "libwlsms_perf.a"
)
