# Empty dependencies file for wlsms_perf.
# This may be replaced when dependencies are built.
