file(REMOVE_RECURSE
  "CMakeFiles/wlsms_perf.dir/flops.cpp.o"
  "CMakeFiles/wlsms_perf.dir/flops.cpp.o.d"
  "libwlsms_perf.a"
  "libwlsms_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wlsms_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
