file(REMOVE_RECURSE
  "libwlsms_linalg.a"
)
