# Empty compiler generated dependencies file for wlsms_linalg.
# This may be replaced when dependencies are built.
