file(REMOVE_RECURSE
  "CMakeFiles/wlsms_linalg.dir/blas.cpp.o"
  "CMakeFiles/wlsms_linalg.dir/blas.cpp.o.d"
  "CMakeFiles/wlsms_linalg.dir/lu.cpp.o"
  "CMakeFiles/wlsms_linalg.dir/lu.cpp.o.d"
  "CMakeFiles/wlsms_linalg.dir/matrix.cpp.o"
  "CMakeFiles/wlsms_linalg.dir/matrix.cpp.o.d"
  "libwlsms_linalg.a"
  "libwlsms_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wlsms_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
