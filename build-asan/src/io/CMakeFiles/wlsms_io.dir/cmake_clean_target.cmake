file(REMOVE_RECURSE
  "libwlsms_io.a"
)
