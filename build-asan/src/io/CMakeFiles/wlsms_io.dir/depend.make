# Empty dependencies file for wlsms_io.
# This may be replaced when dependencies are built.
