file(REMOVE_RECURSE
  "CMakeFiles/wlsms_io.dir/csv.cpp.o"
  "CMakeFiles/wlsms_io.dir/csv.cpp.o.d"
  "CMakeFiles/wlsms_io.dir/dos_io.cpp.o"
  "CMakeFiles/wlsms_io.dir/dos_io.cpp.o.d"
  "CMakeFiles/wlsms_io.dir/table.cpp.o"
  "CMakeFiles/wlsms_io.dir/table.cpp.o.d"
  "libwlsms_io.a"
  "libwlsms_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wlsms_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
