
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lattice/cluster.cpp" "src/lattice/CMakeFiles/wlsms_lattice.dir/cluster.cpp.o" "gcc" "src/lattice/CMakeFiles/wlsms_lattice.dir/cluster.cpp.o.d"
  "/root/repo/src/lattice/shells.cpp" "src/lattice/CMakeFiles/wlsms_lattice.dir/shells.cpp.o" "gcc" "src/lattice/CMakeFiles/wlsms_lattice.dir/shells.cpp.o.d"
  "/root/repo/src/lattice/structure.cpp" "src/lattice/CMakeFiles/wlsms_lattice.dir/structure.cpp.o" "gcc" "src/lattice/CMakeFiles/wlsms_lattice.dir/structure.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/common/CMakeFiles/wlsms_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
