# Empty compiler generated dependencies file for wlsms_lattice.
# This may be replaced when dependencies are built.
