file(REMOVE_RECURSE
  "libwlsms_lattice.a"
)
