file(REMOVE_RECURSE
  "CMakeFiles/wlsms_lattice.dir/cluster.cpp.o"
  "CMakeFiles/wlsms_lattice.dir/cluster.cpp.o.d"
  "CMakeFiles/wlsms_lattice.dir/shells.cpp.o"
  "CMakeFiles/wlsms_lattice.dir/shells.cpp.o.d"
  "CMakeFiles/wlsms_lattice.dir/structure.cpp.o"
  "CMakeFiles/wlsms_lattice.dir/structure.cpp.o.d"
  "libwlsms_lattice.a"
  "libwlsms_lattice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wlsms_lattice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
