file(REMOVE_RECURSE
  "CMakeFiles/wlsms_lsms.dir/contour.cpp.o"
  "CMakeFiles/wlsms_lsms.dir/contour.cpp.o.d"
  "CMakeFiles/wlsms_lsms.dir/cost_model.cpp.o"
  "CMakeFiles/wlsms_lsms.dir/cost_model.cpp.o.d"
  "CMakeFiles/wlsms_lsms.dir/exchange.cpp.o"
  "CMakeFiles/wlsms_lsms.dir/exchange.cpp.o.d"
  "CMakeFiles/wlsms_lsms.dir/kkr.cpp.o"
  "CMakeFiles/wlsms_lsms.dir/kkr.cpp.o.d"
  "CMakeFiles/wlsms_lsms.dir/scattering.cpp.o"
  "CMakeFiles/wlsms_lsms.dir/scattering.cpp.o.d"
  "CMakeFiles/wlsms_lsms.dir/solver.cpp.o"
  "CMakeFiles/wlsms_lsms.dir/solver.cpp.o.d"
  "libwlsms_lsms.a"
  "libwlsms_lsms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wlsms_lsms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
