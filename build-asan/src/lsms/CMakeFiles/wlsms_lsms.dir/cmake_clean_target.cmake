file(REMOVE_RECURSE
  "libwlsms_lsms.a"
)
