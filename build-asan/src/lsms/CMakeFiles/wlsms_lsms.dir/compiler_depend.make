# Empty compiler generated dependencies file for wlsms_lsms.
# This may be replaced when dependencies are built.
