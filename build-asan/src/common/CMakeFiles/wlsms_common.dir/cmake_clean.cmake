file(REMOVE_RECURSE
  "CMakeFiles/wlsms_common.dir/logging.cpp.o"
  "CMakeFiles/wlsms_common.dir/logging.cpp.o.d"
  "CMakeFiles/wlsms_common.dir/rng.cpp.o"
  "CMakeFiles/wlsms_common.dir/rng.cpp.o.d"
  "libwlsms_common.a"
  "libwlsms_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wlsms_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
