# Empty dependencies file for wlsms_common.
# This may be replaced when dependencies are built.
