file(REMOVE_RECURSE
  "libwlsms_common.a"
)
