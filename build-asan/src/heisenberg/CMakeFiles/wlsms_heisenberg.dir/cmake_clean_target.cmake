file(REMOVE_RECURSE
  "libwlsms_heisenberg.a"
)
