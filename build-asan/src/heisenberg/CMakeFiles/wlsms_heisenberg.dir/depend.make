# Empty dependencies file for wlsms_heisenberg.
# This may be replaced when dependencies are built.
