file(REMOVE_RECURSE
  "CMakeFiles/wlsms_heisenberg.dir/heisenberg.cpp.o"
  "CMakeFiles/wlsms_heisenberg.dir/heisenberg.cpp.o.d"
  "libwlsms_heisenberg.a"
  "libwlsms_heisenberg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wlsms_heisenberg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
