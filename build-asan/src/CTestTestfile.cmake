# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-asan/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("perf")
subdirs("linalg")
subdirs("lattice")
subdirs("spin")
subdirs("lsms")
subdirs("heisenberg")
subdirs("dynamics")
subdirs("wl")
subdirs("mc")
subdirs("thermo")
subdirs("parallel")
subdirs("cluster")
subdirs("io")
