# Empty dependencies file for wlsms_parallel.
# This may be replaced when dependencies are built.
