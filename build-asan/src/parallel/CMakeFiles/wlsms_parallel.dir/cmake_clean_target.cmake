file(REMOVE_RECURSE
  "libwlsms_parallel.a"
)
