file(REMOVE_RECURSE
  "CMakeFiles/wlsms_parallel.dir/async_service.cpp.o"
  "CMakeFiles/wlsms_parallel.dir/async_service.cpp.o.d"
  "CMakeFiles/wlsms_parallel.dir/failure.cpp.o"
  "CMakeFiles/wlsms_parallel.dir/failure.cpp.o.d"
  "libwlsms_parallel.a"
  "libwlsms_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wlsms_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
