file(REMOVE_RECURSE
  "CMakeFiles/wlsms_threads.dir/thread_pool.cpp.o"
  "CMakeFiles/wlsms_threads.dir/thread_pool.cpp.o.d"
  "libwlsms_threads.a"
  "libwlsms_threads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wlsms_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
