# Empty dependencies file for wlsms_threads.
# This may be replaced when dependencies are built.
