file(REMOVE_RECURSE
  "libwlsms_threads.a"
)
