file(REMOVE_RECURSE
  "CMakeFiles/wlsms_dynamics.dir/llg.cpp.o"
  "CMakeFiles/wlsms_dynamics.dir/llg.cpp.o.d"
  "libwlsms_dynamics.a"
  "libwlsms_dynamics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wlsms_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
