# Empty compiler generated dependencies file for wlsms_dynamics.
# This may be replaced when dependencies are built.
