file(REMOVE_RECURSE
  "libwlsms_dynamics.a"
)
