# Empty dependencies file for test_lsms_solver.
# This may be replaced when dependencies are built.
