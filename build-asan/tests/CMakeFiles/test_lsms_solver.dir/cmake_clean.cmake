file(REMOVE_RECURSE
  "CMakeFiles/test_lsms_solver.dir/test_lsms_solver.cpp.o"
  "CMakeFiles/test_lsms_solver.dir/test_lsms_solver.cpp.o.d"
  "test_lsms_solver"
  "test_lsms_solver.pdb"
  "test_lsms_solver[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lsms_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
