# Empty compiler generated dependencies file for test_cluster_des.
# This may be replaced when dependencies are built.
