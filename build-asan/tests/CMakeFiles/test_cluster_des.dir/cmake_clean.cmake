file(REMOVE_RECURSE
  "CMakeFiles/test_cluster_des.dir/test_cluster_des.cpp.o"
  "CMakeFiles/test_cluster_des.dir/test_cluster_des.cpp.o.d"
  "test_cluster_des"
  "test_cluster_des.pdb"
  "test_cluster_des[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cluster_des.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
