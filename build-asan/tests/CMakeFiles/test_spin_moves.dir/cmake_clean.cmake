file(REMOVE_RECURSE
  "CMakeFiles/test_spin_moves.dir/test_spin_moves.cpp.o"
  "CMakeFiles/test_spin_moves.dir/test_spin_moves.cpp.o.d"
  "test_spin_moves"
  "test_spin_moves.pdb"
  "test_spin_moves[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spin_moves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
