file(REMOVE_RECURSE
  "CMakeFiles/test_heisenberg.dir/test_heisenberg.cpp.o"
  "CMakeFiles/test_heisenberg.dir/test_heisenberg.cpp.o.d"
  "test_heisenberg"
  "test_heisenberg.pdb"
  "test_heisenberg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_heisenberg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
