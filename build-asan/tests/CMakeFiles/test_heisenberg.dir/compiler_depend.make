# Empty compiler generated dependencies file for test_heisenberg.
# This may be replaced when dependencies are built.
