file(REMOVE_RECURSE
  "CMakeFiles/test_linalg_lu.dir/test_linalg_lu.cpp.o"
  "CMakeFiles/test_linalg_lu.dir/test_linalg_lu.cpp.o.d"
  "test_linalg_lu"
  "test_linalg_lu.pdb"
  "test_linalg_lu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_linalg_lu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
