file(REMOVE_RECURSE
  "CMakeFiles/test_wl_schedule.dir/test_wl_schedule.cpp.o"
  "CMakeFiles/test_wl_schedule.dir/test_wl_schedule.cpp.o.d"
  "test_wl_schedule"
  "test_wl_schedule.pdb"
  "test_wl_schedule[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wl_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
