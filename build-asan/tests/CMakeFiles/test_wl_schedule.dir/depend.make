# Empty dependencies file for test_wl_schedule.
# This may be replaced when dependencies are built.
