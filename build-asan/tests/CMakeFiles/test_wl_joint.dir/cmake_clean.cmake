file(REMOVE_RECURSE
  "CMakeFiles/test_wl_joint.dir/test_wl_joint.cpp.o"
  "CMakeFiles/test_wl_joint.dir/test_wl_joint.cpp.o.d"
  "test_wl_joint"
  "test_wl_joint.pdb"
  "test_wl_joint[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wl_joint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
