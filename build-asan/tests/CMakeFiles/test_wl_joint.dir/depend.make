# Empty dependencies file for test_wl_joint.
# This may be replaced when dependencies are built.
