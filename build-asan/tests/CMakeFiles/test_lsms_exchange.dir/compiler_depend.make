# Empty compiler generated dependencies file for test_lsms_exchange.
# This may be replaced when dependencies are built.
