file(REMOVE_RECURSE
  "CMakeFiles/test_lsms_exchange.dir/test_lsms_exchange.cpp.o"
  "CMakeFiles/test_lsms_exchange.dir/test_lsms_exchange.cpp.o.d"
  "test_lsms_exchange"
  "test_lsms_exchange.pdb"
  "test_lsms_exchange[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lsms_exchange.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
