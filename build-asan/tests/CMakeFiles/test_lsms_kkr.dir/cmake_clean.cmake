file(REMOVE_RECURSE
  "CMakeFiles/test_lsms_kkr.dir/test_lsms_kkr.cpp.o"
  "CMakeFiles/test_lsms_kkr.dir/test_lsms_kkr.cpp.o.d"
  "test_lsms_kkr"
  "test_lsms_kkr.pdb"
  "test_lsms_kkr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lsms_kkr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
