# Empty compiler generated dependencies file for test_lsms_kkr.
# This may be replaced when dependencies are built.
