file(REMOVE_RECURSE
  "CMakeFiles/test_lsms_cost_model.dir/test_lsms_cost_model.cpp.o"
  "CMakeFiles/test_lsms_cost_model.dir/test_lsms_cost_model.cpp.o.d"
  "test_lsms_cost_model"
  "test_lsms_cost_model.pdb"
  "test_lsms_cost_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lsms_cost_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
