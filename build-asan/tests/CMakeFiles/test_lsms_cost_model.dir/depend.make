# Empty dependencies file for test_lsms_cost_model.
# This may be replaced when dependencies are built.
