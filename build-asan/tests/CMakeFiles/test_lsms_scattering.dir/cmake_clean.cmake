file(REMOVE_RECURSE
  "CMakeFiles/test_lsms_scattering.dir/test_lsms_scattering.cpp.o"
  "CMakeFiles/test_lsms_scattering.dir/test_lsms_scattering.cpp.o.d"
  "test_lsms_scattering"
  "test_lsms_scattering.pdb"
  "test_lsms_scattering[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lsms_scattering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
