# Empty dependencies file for test_lsms_scattering.
# This may be replaced when dependencies are built.
