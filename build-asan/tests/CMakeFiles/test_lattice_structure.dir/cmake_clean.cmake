file(REMOVE_RECURSE
  "CMakeFiles/test_lattice_structure.dir/test_lattice_structure.cpp.o"
  "CMakeFiles/test_lattice_structure.dir/test_lattice_structure.cpp.o.d"
  "test_lattice_structure"
  "test_lattice_structure.pdb"
  "test_lattice_structure[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lattice_structure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
