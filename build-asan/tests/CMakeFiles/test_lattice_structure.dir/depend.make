# Empty dependencies file for test_lattice_structure.
# This may be replaced when dependencies are built.
