# Empty dependencies file for test_wl_multimaster.
# This may be replaced when dependencies are built.
