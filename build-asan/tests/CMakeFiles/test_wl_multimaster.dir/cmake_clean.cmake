file(REMOVE_RECURSE
  "CMakeFiles/test_wl_multimaster.dir/test_wl_multimaster.cpp.o"
  "CMakeFiles/test_wl_multimaster.dir/test_wl_multimaster.cpp.o.d"
  "test_wl_multimaster"
  "test_wl_multimaster.pdb"
  "test_wl_multimaster[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wl_multimaster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
