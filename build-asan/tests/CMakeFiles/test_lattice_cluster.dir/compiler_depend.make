# Empty compiler generated dependencies file for test_lattice_cluster.
# This may be replaced when dependencies are built.
