file(REMOVE_RECURSE
  "CMakeFiles/test_lattice_cluster.dir/test_lattice_cluster.cpp.o"
  "CMakeFiles/test_lattice_cluster.dir/test_lattice_cluster.cpp.o.d"
  "test_lattice_cluster"
  "test_lattice_cluster.pdb"
  "test_lattice_cluster[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lattice_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
