file(REMOVE_RECURSE
  "CMakeFiles/test_wl_dos_grid.dir/test_wl_dos_grid.cpp.o"
  "CMakeFiles/test_wl_dos_grid.dir/test_wl_dos_grid.cpp.o.d"
  "test_wl_dos_grid"
  "test_wl_dos_grid.pdb"
  "test_wl_dos_grid[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wl_dos_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
