# Empty dependencies file for test_wl_dos_grid.
# This may be replaced when dependencies are built.
