file(REMOVE_RECURSE
  "CMakeFiles/test_lsms_properties.dir/test_lsms_properties.cpp.o"
  "CMakeFiles/test_lsms_properties.dir/test_lsms_properties.cpp.o.d"
  "test_lsms_properties"
  "test_lsms_properties.pdb"
  "test_lsms_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lsms_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
