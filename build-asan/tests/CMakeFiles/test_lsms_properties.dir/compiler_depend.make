# Empty compiler generated dependencies file for test_lsms_properties.
# This may be replaced when dependencies are built.
