# Empty dependencies file for test_vec3.
# This may be replaced when dependencies are built.
