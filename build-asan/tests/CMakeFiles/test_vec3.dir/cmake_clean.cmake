file(REMOVE_RECURSE
  "CMakeFiles/test_vec3.dir/test_vec3.cpp.o"
  "CMakeFiles/test_vec3.dir/test_vec3.cpp.o.d"
  "test_vec3"
  "test_vec3.pdb"
  "test_vec3[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vec3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
