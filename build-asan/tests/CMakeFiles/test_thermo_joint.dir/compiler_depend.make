# Empty compiler generated dependencies file for test_thermo_joint.
# This may be replaced when dependencies are built.
