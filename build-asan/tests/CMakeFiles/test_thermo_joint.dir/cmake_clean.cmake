file(REMOVE_RECURSE
  "CMakeFiles/test_thermo_joint.dir/test_thermo_joint.cpp.o"
  "CMakeFiles/test_thermo_joint.dir/test_thermo_joint.cpp.o.d"
  "test_thermo_joint"
  "test_thermo_joint.pdb"
  "test_thermo_joint[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_thermo_joint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
