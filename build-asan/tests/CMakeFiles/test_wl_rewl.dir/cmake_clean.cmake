file(REMOVE_RECURSE
  "CMakeFiles/test_wl_rewl.dir/test_wl_rewl.cpp.o"
  "CMakeFiles/test_wl_rewl.dir/test_wl_rewl.cpp.o.d"
  "test_wl_rewl"
  "test_wl_rewl.pdb"
  "test_wl_rewl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wl_rewl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
