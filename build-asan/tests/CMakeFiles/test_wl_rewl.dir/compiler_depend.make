# Empty compiler generated dependencies file for test_wl_rewl.
# This may be replaced when dependencies are built.
