# Empty dependencies file for test_linalg_matrix.
# This may be replaced when dependencies are built.
