file(REMOVE_RECURSE
  "CMakeFiles/test_linalg_matrix.dir/test_linalg_matrix.cpp.o"
  "CMakeFiles/test_linalg_matrix.dir/test_linalg_matrix.cpp.o.d"
  "test_linalg_matrix"
  "test_linalg_matrix.pdb"
  "test_linalg_matrix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_linalg_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
