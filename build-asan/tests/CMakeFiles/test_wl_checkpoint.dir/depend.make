# Empty dependencies file for test_wl_checkpoint.
# This may be replaced when dependencies are built.
