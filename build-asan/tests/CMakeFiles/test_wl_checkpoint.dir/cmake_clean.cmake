file(REMOVE_RECURSE
  "CMakeFiles/test_wl_checkpoint.dir/test_wl_checkpoint.cpp.o"
  "CMakeFiles/test_wl_checkpoint.dir/test_wl_checkpoint.cpp.o.d"
  "test_wl_checkpoint"
  "test_wl_checkpoint.pdb"
  "test_wl_checkpoint[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wl_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
