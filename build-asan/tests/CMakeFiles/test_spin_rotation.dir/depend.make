# Empty dependencies file for test_spin_rotation.
# This may be replaced when dependencies are built.
