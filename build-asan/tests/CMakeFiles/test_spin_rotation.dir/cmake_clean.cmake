file(REMOVE_RECURSE
  "CMakeFiles/test_spin_rotation.dir/test_spin_rotation.cpp.o"
  "CMakeFiles/test_spin_rotation.dir/test_spin_rotation.cpp.o.d"
  "test_spin_rotation"
  "test_spin_rotation.pdb"
  "test_spin_rotation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spin_rotation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
