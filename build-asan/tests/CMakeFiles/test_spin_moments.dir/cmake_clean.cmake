file(REMOVE_RECURSE
  "CMakeFiles/test_spin_moments.dir/test_spin_moments.cpp.o"
  "CMakeFiles/test_spin_moments.dir/test_spin_moments.cpp.o.d"
  "test_spin_moments"
  "test_spin_moments.pdb"
  "test_spin_moments[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spin_moments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
