# Empty dependencies file for test_spin_moments.
# This may be replaced when dependencies are built.
