file(REMOVE_RECURSE
  "CMakeFiles/test_wl_exact.dir/test_wl_exact.cpp.o"
  "CMakeFiles/test_wl_exact.dir/test_wl_exact.cpp.o.d"
  "test_wl_exact"
  "test_wl_exact.pdb"
  "test_wl_exact[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wl_exact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
