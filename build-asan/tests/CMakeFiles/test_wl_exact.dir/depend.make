# Empty dependencies file for test_wl_exact.
# This may be replaced when dependencies are built.
