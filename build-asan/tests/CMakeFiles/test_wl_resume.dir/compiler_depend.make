# Empty compiler generated dependencies file for test_wl_resume.
# This may be replaced when dependencies are built.
