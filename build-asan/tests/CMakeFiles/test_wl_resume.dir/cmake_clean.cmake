file(REMOVE_RECURSE
  "CMakeFiles/test_wl_resume.dir/test_wl_resume.cpp.o"
  "CMakeFiles/test_wl_resume.dir/test_wl_resume.cpp.o.d"
  "test_wl_resume"
  "test_wl_resume.pdb"
  "test_wl_resume[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wl_resume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
