file(REMOVE_RECURSE
  "CMakeFiles/test_linalg_blas.dir/test_linalg_blas.cpp.o"
  "CMakeFiles/test_linalg_blas.dir/test_linalg_blas.cpp.o.d"
  "test_linalg_blas"
  "test_linalg_blas.pdb"
  "test_linalg_blas[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_linalg_blas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
