# Empty compiler generated dependencies file for test_linalg_blas.
# This may be replaced when dependencies are built.
