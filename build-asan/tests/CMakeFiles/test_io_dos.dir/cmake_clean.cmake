file(REMOVE_RECURSE
  "CMakeFiles/test_io_dos.dir/test_io_dos.cpp.o"
  "CMakeFiles/test_io_dos.dir/test_io_dos.cpp.o.d"
  "test_io_dos"
  "test_io_dos.pdb"
  "test_io_dos[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_io_dos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
