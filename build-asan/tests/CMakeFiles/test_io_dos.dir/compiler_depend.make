# Empty compiler generated dependencies file for test_io_dos.
# This may be replaced when dependencies are built.
