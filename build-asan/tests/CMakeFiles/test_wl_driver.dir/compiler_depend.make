# Empty compiler generated dependencies file for test_wl_driver.
# This may be replaced when dependencies are built.
