file(REMOVE_RECURSE
  "CMakeFiles/test_wl_driver.dir/test_wl_driver.cpp.o"
  "CMakeFiles/test_wl_driver.dir/test_wl_driver.cpp.o.d"
  "test_wl_driver"
  "test_wl_driver.pdb"
  "test_wl_driver[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wl_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
