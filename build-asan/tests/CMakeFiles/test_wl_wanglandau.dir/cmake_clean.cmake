file(REMOVE_RECURSE
  "CMakeFiles/test_wl_wanglandau.dir/test_wl_wanglandau.cpp.o"
  "CMakeFiles/test_wl_wanglandau.dir/test_wl_wanglandau.cpp.o.d"
  "test_wl_wanglandau"
  "test_wl_wanglandau.pdb"
  "test_wl_wanglandau[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wl_wanglandau.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
