# Empty dependencies file for test_wl_wanglandau.
# This may be replaced when dependencies are built.
