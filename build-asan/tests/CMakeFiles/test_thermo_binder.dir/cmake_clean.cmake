file(REMOVE_RECURSE
  "CMakeFiles/test_thermo_binder.dir/test_thermo_binder.cpp.o"
  "CMakeFiles/test_thermo_binder.dir/test_thermo_binder.cpp.o.d"
  "test_thermo_binder"
  "test_thermo_binder.pdb"
  "test_thermo_binder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_thermo_binder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
