# Empty compiler generated dependencies file for test_thermo_binder.
# This may be replaced when dependencies are built.
