file(REMOVE_RECURSE
  "CMakeFiles/test_lattice_sweep.dir/test_lattice_sweep.cpp.o"
  "CMakeFiles/test_lattice_sweep.dir/test_lattice_sweep.cpp.o.d"
  "test_lattice_sweep"
  "test_lattice_sweep.pdb"
  "test_lattice_sweep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lattice_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
