file(REMOVE_RECURSE
  "CMakeFiles/test_lsms_contour.dir/test_lsms_contour.cpp.o"
  "CMakeFiles/test_lsms_contour.dir/test_lsms_contour.cpp.o.d"
  "test_lsms_contour"
  "test_lsms_contour.pdb"
  "test_lsms_contour[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lsms_contour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
