# Empty dependencies file for test_lsms_contour.
# This may be replaced when dependencies are built.
