# Empty dependencies file for test_mc_metropolis.
# This may be replaced when dependencies are built.
