file(REMOVE_RECURSE
  "CMakeFiles/test_mc_metropolis.dir/test_mc_metropolis.cpp.o"
  "CMakeFiles/test_mc_metropolis.dir/test_mc_metropolis.cpp.o.d"
  "test_mc_metropolis"
  "test_mc_metropolis.pdb"
  "test_mc_metropolis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mc_metropolis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
