file(REMOVE_RECURSE
  "CMakeFiles/wlsms_cli_lib.dir/cli.cpp.o"
  "CMakeFiles/wlsms_cli_lib.dir/cli.cpp.o.d"
  "libwlsms_cli_lib.a"
  "libwlsms_cli_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wlsms_cli_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
