# Empty compiler generated dependencies file for wlsms_cli_lib.
# This may be replaced when dependencies are built.
