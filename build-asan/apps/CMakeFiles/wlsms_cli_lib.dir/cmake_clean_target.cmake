file(REMOVE_RECURSE
  "libwlsms_cli_lib.a"
)
