# Empty dependencies file for wlsms.
# This may be replaced when dependencies are built.
