file(REMOVE_RECURSE
  "CMakeFiles/wlsms.dir/wlsms_main.cpp.o"
  "CMakeFiles/wlsms.dir/wlsms_main.cpp.o.d"
  "wlsms"
  "wlsms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wlsms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
