file(REMOVE_RECURSE
  "CMakeFiles/fe_curie.dir/fe_curie.cpp.o"
  "CMakeFiles/fe_curie.dir/fe_curie.cpp.o.d"
  "fe_curie"
  "fe_curie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fe_curie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
