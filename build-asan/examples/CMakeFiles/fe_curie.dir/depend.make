# Empty dependencies file for fe_curie.
# This may be replaced when dependencies are built.
