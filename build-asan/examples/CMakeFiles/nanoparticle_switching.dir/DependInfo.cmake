
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/nanoparticle_switching.cpp" "examples/CMakeFiles/nanoparticle_switching.dir/nanoparticle_switching.cpp.o" "gcc" "examples/CMakeFiles/nanoparticle_switching.dir/nanoparticle_switching.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/cluster/CMakeFiles/wlsms_cluster.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/parallel/CMakeFiles/wlsms_parallel.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/mc/CMakeFiles/wlsms_mc.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/thermo/CMakeFiles/wlsms_thermo.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/wl/CMakeFiles/wlsms_wl.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/heisenberg/CMakeFiles/wlsms_heisenberg.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/lsms/CMakeFiles/wlsms_lsms.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/spin/CMakeFiles/wlsms_spin.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/lattice/CMakeFiles/wlsms_lattice.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/linalg/CMakeFiles/wlsms_linalg.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/perf/CMakeFiles/wlsms_perf.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/io/CMakeFiles/wlsms_io.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/common/CMakeFiles/wlsms_common.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/parallel/CMakeFiles/wlsms_threads.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
