# Empty dependencies file for nanoparticle_switching.
# This may be replaced when dependencies are built.
