file(REMOVE_RECURSE
  "CMakeFiles/nanoparticle_switching.dir/nanoparticle_switching.cpp.o"
  "CMakeFiles/nanoparticle_switching.dir/nanoparticle_switching.cpp.o.d"
  "nanoparticle_switching"
  "nanoparticle_switching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nanoparticle_switching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
