# Empty compiler generated dependencies file for metropolis_vs_wl.
# This may be replaced when dependencies are built.
