file(REMOVE_RECURSE
  "CMakeFiles/metropolis_vs_wl.dir/metropolis_vs_wl.cpp.o"
  "CMakeFiles/metropolis_vs_wl.dir/metropolis_vs_wl.cpp.o.d"
  "metropolis_vs_wl"
  "metropolis_vs_wl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metropolis_vs_wl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
