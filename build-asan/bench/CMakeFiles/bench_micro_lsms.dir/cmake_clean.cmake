file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_lsms.dir/bench_micro_lsms.cpp.o"
  "CMakeFiles/bench_micro_lsms.dir/bench_micro_lsms.cpp.o.d"
  "bench_micro_lsms"
  "bench_micro_lsms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_lsms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
