# Empty compiler generated dependencies file for bench_micro_lsms.
# This may be replaced when dependencies are built.
