file(REMOVE_RECURSE
  "CMakeFiles/bench_finite_size.dir/bench_finite_size.cpp.o"
  "CMakeFiles/bench_finite_size.dir/bench_finite_size.cpp.o.d"
  "bench_finite_size"
  "bench_finite_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_finite_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
