# Empty dependencies file for bench_finite_size.
# This may be replaced when dependencies are built.
