# Empty compiler generated dependencies file for bench_ablation_kernel.
# This may be replaced when dependencies are built.
