# Empty compiler generated dependencies file for bench_direct_wllsms.
# This may be replaced when dependencies are built.
