file(REMOVE_RECURSE
  "CMakeFiles/bench_direct_wllsms.dir/bench_direct_wllsms.cpp.o"
  "CMakeFiles/bench_direct_wllsms.dir/bench_direct_wllsms.cpp.o.d"
  "bench_direct_wllsms"
  "bench_direct_wllsms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_direct_wllsms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
