file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_dynamics.dir/bench_ablation_dynamics.cpp.o"
  "CMakeFiles/bench_ablation_dynamics.dir/bench_ablation_dynamics.cpp.o.d"
  "bench_ablation_dynamics"
  "bench_ablation_dynamics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
