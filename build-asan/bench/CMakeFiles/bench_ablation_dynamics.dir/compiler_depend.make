# Empty compiler generated dependencies file for bench_ablation_dynamics.
# This may be replaced when dependencies are built.
