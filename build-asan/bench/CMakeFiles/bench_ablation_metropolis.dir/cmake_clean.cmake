file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_metropolis.dir/bench_ablation_metropolis.cpp.o"
  "CMakeFiles/bench_ablation_metropolis.dir/bench_ablation_metropolis.cpp.o.d"
  "bench_ablation_metropolis"
  "bench_ablation_metropolis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_metropolis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
