# Empty dependencies file for bench_ablation_metropolis.
# This may be replaced when dependencies are built.
