file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_masters.dir/bench_ablation_masters.cpp.o"
  "CMakeFiles/bench_ablation_masters.dir/bench_ablation_masters.cpp.o.d"
  "bench_ablation_masters"
  "bench_ablation_masters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_masters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
