# Empty compiler generated dependencies file for bench_ablation_masters.
# This may be replaced when dependencies are built.
