file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_flatness.dir/bench_ablation_flatness.cpp.o"
  "CMakeFiles/bench_ablation_flatness.dir/bench_ablation_flatness.cpp.o.d"
  "bench_ablation_flatness"
  "bench_ablation_flatness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_flatness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
