# Empty compiler generated dependencies file for bench_ablation_flatness.
# This may be replaced when dependencies are built.
