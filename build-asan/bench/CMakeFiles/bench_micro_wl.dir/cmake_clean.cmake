file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_wl.dir/bench_micro_wl.cpp.o"
  "CMakeFiles/bench_micro_wl.dir/bench_micro_wl.cpp.o.d"
  "bench_micro_wl"
  "bench_micro_wl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_wl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
