# Empty dependencies file for bench_micro_wl.
# This may be replaced when dependencies are built.
