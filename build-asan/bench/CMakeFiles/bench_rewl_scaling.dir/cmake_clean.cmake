file(REMOVE_RECURSE
  "CMakeFiles/bench_rewl_scaling.dir/bench_rewl_scaling.cpp.o"
  "CMakeFiles/bench_rewl_scaling.dir/bench_rewl_scaling.cpp.o.d"
  "bench_rewl_scaling"
  "bench_rewl_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rewl_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
