# Empty dependencies file for bench_ablation_liz.
# This may be replaced when dependencies are built.
