file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_liz.dir/bench_ablation_liz.cpp.o"
  "CMakeFiles/bench_ablation_liz.dir/bench_ablation_liz.cpp.o.d"
  "bench_ablation_liz"
  "bench_ablation_liz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_liz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
