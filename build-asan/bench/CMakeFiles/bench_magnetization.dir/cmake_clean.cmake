file(REMOVE_RECURSE
  "CMakeFiles/bench_magnetization.dir/bench_magnetization.cpp.o"
  "CMakeFiles/bench_magnetization.dir/bench_magnetization.cpp.o.d"
  "bench_magnetization"
  "bench_magnetization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_magnetization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
