# Empty dependencies file for bench_magnetization.
# This may be replaced when dependencies are built.
