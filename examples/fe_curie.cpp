// The paper's full pipeline, end to end and from scratch:
//
//   1. build the multiple-scattering (LSMS) substrate for bcc iron and
//      verify its ferromagnetic ground state,
//   2. extract the effective exchange interaction from frozen-potential
//      energies (the substrate -> surrogate bridge of DESIGN.md §2),
//   3. converge the Wang-Landau density of states for the 16-atom and
//      250-atom cells on that surrogate,
//   4. compute F, U, c (paper eqs. 13-16) and estimate the Curie
//      temperature from the specific-heat peaks (paper Fig. 6).
//
// The extraction here runs at reduced LIZ fidelity so the whole program
// finishes in seconds; pass --production-liz to use the paper's 11.5 a0 /
// 65-atom zones (about a minute of dense complex linear algebra).
#include <cstdio>
#include <cstring>
#include <memory>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "io/table.hpp"
#include "lsms/exchange.hpp"
#include "lsms/fe_parameters.hpp"
#include "lsms/solver.hpp"
#include "thermo/observables.hpp"
#include "wl/wanglandau.hpp"

namespace {

using namespace wlsms;

thermo::CurieEstimate converge_and_report(std::size_t n_cells,
                                          const std::vector<double>& j_shells) {
  const lattice::Structure cell = lattice::make_fe_supercell(n_cells);
  const wl::HeisenbergEnergy energy(
      heisenberg::HeisenbergModel(cell, j_shells));

  Rng window_rng(5);
  wl::WangLandauConfig config;
  config.grid = wl::thermal_window(
      energy, energy.model().ferromagnetic_energy(), 150.0, window_rng);
  config.n_walkers = 8;
  config.check_interval = 5000;
  config.max_iteration_steps = 2000000;

  wl::WangLandau sampler(energy, config,
                         std::make_unique<wl::HalvingSchedule>(1.0, 1e-6),
                         Rng(123));
  sampler.run();

  const thermo::DosTable dos = thermo::dos_table(sampler.dos());
  const thermo::CurieEstimate tc =
      thermo::estimate_curie_temperature(dos, 250.0, 3000.0);
  std::printf("  %zu atoms: %llu WL steps -> Tc = %.0f K\n", cell.size(),
              static_cast<unsigned long long>(sampler.stats().total_steps),
              tc.tc);
  return tc;
}

}  // namespace

int main(int argc, char** argv) {
  const bool production_liz =
      argc > 1 && std::strcmp(argv[1], "--production-liz") == 0;

  std::printf("== 1. LSMS substrate for bcc Fe ==\n");
  const lattice::Structure cell16 = lattice::make_fe_supercell(2);
  lsms::LsmsParameters params = production_liz
                                    ? lsms::fe_lsms_parameters()
                                    : lsms::fe_lsms_parameters_fast();
  const lsms::LsmsSolver solver(cell16, params);
  std::printf("  LIZ: %.1f a0 radius, %zu atoms per zone, %zu contour "
              "points\n",
              params.liz_radius, solver.liz_size(0), params.contour_points);

  const double e_fm =
      solver.energy(spin::MomentConfiguration::ferromagnetic(16));
  Rng rng(1);
  const double e_rand =
      solver.energy(spin::MomentConfiguration::random(16, rng));
  std::printf("  E(ferromagnet) = %.5f Ry < E(random) = %.5f Ry : %s\n", e_fm,
              e_rand, e_fm < e_rand ? "FM ground state" : "NOT FM?!");

  std::printf("\n== 2. Exchange extraction (frozen-potential energies) ==\n");
  Rng extraction_rng(42);
  const lsms::ExtractedExchange exchange = lsms::extract_exchange(
      solver, lsms::fe_surrogate_shells, 24, extraction_rng);
  std::vector<double> j_shells;
  for (const lsms::ShellExchange& shell : exchange.shells) {
    std::printf("  shell r = %.3f a0 (%zu bonds): J = %+.4f mRy\n",
                shell.radius, shell.bonds, 1e3 * shell.j);
    j_shells.push_back(shell.j * lsms::fe_exchange_energy_scale);
  }
  std::printf("  fit rms %.2e Ry; Curie calibration scale %.2f applied\n",
              exchange.fit_rms, lsms::fe_exchange_energy_scale);
  if (!production_liz) {
    // The reduced-LIZ extraction underestimates J1; for the thermodynamics
    // below use the production-fidelity reference constants instead
    // (regenerate them with --production-liz).
    j_shells = lsms::fe_reference_exchange();
    for (double& v : j_shells) v *= lsms::fe_exchange_energy_scale;
    std::printf("  (fast mode: thermodynamics below use the stored "
                "production-fidelity reference J)\n");
  }

  std::printf("\n== 3./4. Wang-Landau DOS and Curie temperatures ==\n");
  const thermo::CurieEstimate tc16 = converge_and_report(2, j_shells);
  const thermo::CurieEstimate tc250 = converge_and_report(5, j_shells);

  std::printf("\n== Summary (paper Fig. 6) ==\n");
  wlsms::io::TextTable table({"system", "Tc (this run)", "Tc (paper)"});
  table.row({"16 atoms", wlsms::io::format_double(tc16.tc, 0) + " K", "670 K"});
  table.row(
      {"250 atoms", wlsms::io::format_double(tc250.tc, 0) + " K", "980 K"});
  table.row({"bulk Fe (experiment)", "-", "1050 K"});
  table.print();
  return 0;
}
