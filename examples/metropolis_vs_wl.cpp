// Side-by-side comparison of the two sampling strategies the paper
// contrasts (§I, §II-A): conventional Metropolis importance sampling — one
// simulation per temperature — versus a single Wang-Landau run whose
// density of states yields every temperature at once. Also demonstrates the
// asynchronous master-slave driver with out-of-order results and injected
// node failures (the parallelization and resilience story of §II-C/§V).
#include <cstdio>
#include <memory>

#include "comm/factory.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "heisenberg/heisenberg.hpp"
#include "io/table.hpp"
#include "lattice/structure.hpp"
#include "lsms/fe_parameters.hpp"
#include "mc/metropolis.hpp"
#include "perf/timer.hpp"
#include "thermo/observables.hpp"
#include "wl/driver.hpp"

int main() {
  using namespace wlsms;

  std::vector<double> j = lsms::fe_reference_exchange();
  for (double& v : j) v *= lsms::fe_exchange_energy_scale;
  const wl::HeisenbergEnergy energy(
      heisenberg::HeisenbergModel(lattice::make_fe_supercell(2), j));

  // --- Wang-Landau through the full asynchronous stack -------------------
  // Thread-pool "LSMS instances" + failure injection: 1 % of all results
  // are lost in flight and transparently resubmitted by the driver.
  Rng window_rng(5);
  wl::WangLandauConfig config;
  config.grid = wl::thermal_window(
      energy, energy.model().ferromagnetic_energy(), 150.0, window_rng);
  config.n_walkers = 8;
  config.check_interval = 5000;
  config.max_iteration_steps = 2000000;

  comm::EnergyServiceSpec spec;
  spec.kind = comm::ServiceKind::kAsyncThreads;
  spec.energy = &energy;
  spec.n_instances = 4;
  spec.failure_probability = 0.01;
  spec.failure_seed = 7;
  const std::unique_ptr<wl::EnergyService> flaky =
      comm::make_energy_service(spec);

  perf::Timer wl_timer;
  wl::WlDriver driver(energy.n_sites(), *flaky, config,
                      std::make_unique<wl::HalvingSchedule>(1.0, 1e-5),
                      Rng(123));
  const wl::DriverStats& wl_stats = driver.run();
  const double wl_seconds = wl_timer.seconds();
  const thermo::DosTable dos = thermo::dos_table(driver.dos());

  std::printf("Wang-Landau (async driver, 4 instances, 1%% node loss):\n");
  std::printf("  %llu energy evaluations, %llu resubmitted after failures, "
              "%.1f s\n\n",
              static_cast<unsigned long long>(wl_stats.total_steps),
              static_cast<unsigned long long>(wl_stats.resubmissions),
              wl_seconds);

  // --- Metropolis temperature sweep ---------------------------------------
  std::vector<double> temperatures;
  for (double t = 300.0; t <= 2100.0; t += 200.0) temperatures.push_back(t);
  mc::MetropolisConfig mc_config;
  mc_config.thermalization_steps = 200000;
  mc_config.measurement_steps = 800000;
  mc_config.measure_interval = 16;

  perf::Timer mc_timer;
  Rng mc_rng(99);
  const auto mc_results =
      mc::metropolis_sweep(energy, temperatures, mc_config, mc_rng);
  const double mc_seconds = mc_timer.seconds();
  std::uint64_t mc_evals = 0;
  for (const auto& r : mc_results) mc_evals += r.energy_evaluations;
  std::printf("Metropolis sweep (%zu temperatures): %llu energy "
              "evaluations, %.1f s\n\n",
              temperatures.size(),
              static_cast<unsigned long long>(mc_evals), mc_seconds);

  // --- Agreement and economics --------------------------------------------
  io::TextTable table(
      {"T [K]", "U (WL) [Ry]", "U (Metropolis) [Ry]", "c (WL)", "c (MC)"});
  for (const auto& r : mc_results) {
    const thermo::Observables obs =
        thermo::observables_at(dos, r.temperature);
    table.row({io::format_double(r.temperature, 0),
               io::format_double(obs.internal_energy, 5),
               io::format_double(r.mean_energy, 5),
               io::format_double(obs.specific_heat * 1e4, 2) + "e-4",
               io::format_double(r.specific_heat * 1e4, 2) + "e-4"});
  }
  table.print();

  std::printf(
      "\nSame physics, different economics: the Metropolis sweep spent\n"
      "%.1fx the WL evaluation count *per %zu temperatures* and must be\n"
      "rerun for every new temperature, field, or observable, while the WL\n"
      "density of states above evaluates *any* temperature (and F and S,\n"
      "paper eqs. 13-16) without further sampling. With ab initio energies\n"
      "at tens of seconds each, that difference is the paper's reason to\n"
      "build WL-LSMS.\n",
      static_cast<double>(mc_evals) /
          static_cast<double>(wl_stats.total_steps),
      temperatures.size());
  return 0;
}
