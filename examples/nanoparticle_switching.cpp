// The paper's motivating application (§I, §V and ref [14]): the
// temperature-dependent free-energy barrier for magnetization switching of
// an anisotropic magnetic nanoparticle, from the *joint* density of states
// g(E, M_z).
//
// An FePt-like particle is modelled as a spherical bcc cluster with
// ferromagnetic exchange and a uniaxial easy axis; the surface shell (the
// region the paper singles out: "in small particles ... the surface region
// contains a significant fraction of the particle volume") carries weakened
// exchange. The switching barrier dF(T) = F(M_z ~ 0; T) - F(M_z ~ +-1; T)
// is read off the constrained free-energy profile.
#include <cstdio>
#include <memory>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "heisenberg/heisenberg.hpp"
#include "io/table.hpp"
#include "lattice/cluster.hpp"
#include "lsms/fe_parameters.hpp"
#include "thermo/joint_observables.hpp"
#include "wl/joint_wl.hpp"

int main() {
  using namespace wlsms;

  // A ~60-atom particle: small enough to converge the 2-D DOS in seconds,
  // large enough to have a genuine surface shell.
  const double a = units::fe_lattice_parameter_a0;
  const lattice::Structure particle =
      lattice::make_spherical_cluster(lattice::CubicLattice::kBcc, a, 1.9 * a);
  const double nn_cutoff = a * 0.9;
  const auto surface = lattice::surface_atoms(particle, nn_cutoff, 8);
  std::printf("nanoparticle: %zu atoms, %zu on the surface (%.0f%%)\n",
              particle.size(), surface.size(),
              100.0 * static_cast<double>(surface.size()) /
                  static_cast<double>(particle.size()));

  // Exchange from the iron surrogate; uniaxial anisotropy along z with an
  // FePt-like strength (large K is what makes FePt interesting for storage).
  std::vector<double> j = lsms::fe_reference_exchange();
  for (double& v : j) v *= lsms::fe_exchange_energy_scale;
  heisenberg::HeisenbergModel model(particle, j);
  const double k_aniso = 1.2e-3;  // Ry per atom
  model.set_uniform_anisotropy(k_aniso, {0.0, 0.0, 1.0});
  const wl::HeisenbergEnergy energy(std::move(model));

  // Joint Wang-Landau over (E, M_z).
  const double e_ground = energy.model().ferromagnetic_energy();
  wl::JointWangLandauConfig config;
  config.grid.e_min = e_ground + 0.5 * static_cast<double>(particle.size()) *
                                      units::k_boltzmann_ry * 200.0;
  config.grid.e_max = 0.35 * std::abs(e_ground);
  config.grid.e_bins = 60;
  config.grid.m_min = -1.02;
  config.grid.m_max = 1.02;
  config.grid.m_bins = 41;
  config.grid.e_kernel_fraction = 0.008;   // ~half an E bin
  config.grid.m_kernel_fraction = 0.012;   // ~half an M bin
  config.flatness = 0.5;
  config.check_interval = 10000;
  config.max_iteration_steps = 4000000;
  config.max_steps = 120000000;

  std::printf("converging joint DOS g(E, M_z) ...\n");
  wl::JointWangLandau sampler(energy, config,
                              std::make_unique<wl::HalvingSchedule>(1.0, 1e-4),
                              Rng(31));
  sampler.run();
  std::printf("done: %llu WL steps, %zu gamma levels, %zu cells visited\n\n",
              static_cast<unsigned long long>(sampler.stats().total_steps),
              sampler.stats().iterations, sampler.dos().visited_cells());

  // Free-energy profile F(M_z; T) and the switching barrier vs temperature.
  io::TextTable table({"T [K]", "barrier dF [mRy]", "dF / k_B T", "<|M_z|>"});
  for (double t : {300.0, 500.0, 700.0, 900.0, 1200.0}) {
    const double barrier = thermo::switching_barrier(sampler.dos(), t);
    const double m = thermo::mean_abs_magnetization(sampler.dos(), t);
    table.row({io::format_double(t, 0), io::format_double(1e3 * barrier, 3),
               io::format_double(barrier / (units::k_boltzmann_ry * t), 1),
               io::format_double(m, 3)});
  }
  table.print();

  std::printf(
      "\nReading: the barrier (in units of k_B T, the quantity controlling\n"
      "the thermal switching rate and hence data retention) decreases with\n"
      "temperature — the behaviour refs [14]/[15] map out for FePt and that\n"
      "WL-LSMS was built to compute from first principles.\n");

  // A low-temperature profile for inspection.
  const thermo::FreeEnergyProfile profile =
      thermo::free_energy_profile(sampler.dos(), 400.0);
  std::printf("\nF(M_z; 400 K) [mRy], minimum shifted to zero:\n");
  for (std::size_t i = 0; i < profile.m.size(); i += 2)
    std::printf("  M_z = %+5.2f : %8.3f\n", profile.m[i], 1e3 * profile.f[i]);
  return 0;
}
