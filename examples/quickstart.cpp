// Quickstart: the WL-LSMS public API in ~60 lines.
//
// Builds a 16-atom bcc iron cell, converges the Wang-Landau density of
// states on the calibrated exchange surrogate, and reads the Curie
// temperature off the specific-heat peak — the end-to-end pipeline of the
// paper at laptop scale.
//
//   $ ./quickstart
#include <cstdio>
#include <memory>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "heisenberg/heisenberg.hpp"
#include "lattice/structure.hpp"
#include "lsms/fe_parameters.hpp"
#include "thermo/observables.hpp"
#include "wl/wanglandau.hpp"

int main() {
  using namespace wlsms;

  // 1. Geometry: a 2x2x2 bcc supercell of iron (16 atoms, paper §III).
  const lattice::Structure cell = lattice::make_fe_supercell(2);

  // 2. Energy functional: classical Heisenberg exchange extracted from the
  //    multiple-scattering substrate (see fe_curie.cpp for the extraction
  //    itself), calibrated to the iron energy scale.
  std::vector<double> j = lsms::fe_reference_exchange();
  for (double& v : j) v *= lsms::fe_exchange_energy_scale;
  const wl::HeisenbergEnergy energy(heisenberg::HeisenbergModel(cell, j));

  // 3. Wang-Landau: flat-histogram walk over the thermally relevant energy
  //    window; eight concurrent walkers share one density of states.
  Rng rng(5);
  wl::WangLandauConfig config;
  config.grid = wl::thermal_window(
      energy, energy.model().ferromagnetic_energy(), /*t_min_k=*/150.0, rng);
  config.n_walkers = 8;

  wl::WangLandau sampler(
      energy, config,
      std::make_unique<wl::HalvingSchedule>(/*gamma_initial=*/1.0,
                                            /*gamma_final=*/1e-6),
      Rng(123));
  sampler.run();
  std::printf("converged ln g(E) in %llu WL steps (%zu gamma levels)\n",
              static_cast<unsigned long long>(sampler.stats().total_steps),
              sampler.stats().iterations);

  // 4. Thermodynamics from the density of states (paper eqs. 9-16).
  const thermo::DosTable dos = thermo::dos_table(sampler.dos());
  std::printf("\n   T [K]      U [Ry]       c [Ry/K]\n");
  for (double t = 300.0; t <= 1800.0; t += 300.0) {
    const thermo::Observables obs = thermo::observables_at(dos, t);
    std::printf("  %6.0f   %+9.5f   %.3e\n", t, obs.internal_energy,
                obs.specific_heat);
  }

  const thermo::CurieEstimate tc =
      thermo::estimate_curie_temperature(dos, 250.0, 3000.0);
  std::printf("\nCurie temperature (c-peak): %.0f K"
              "  [paper, 16 atoms: 670 K; bulk experiment: 1050 K]\n",
              tc.tc);
  return 0;
}
