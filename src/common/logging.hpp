#pragma once

/// \file logging.hpp
/// Tiny leveled logger for the library. Benchmarks and examples run with
/// info-level progress lines; tests silence it. No global construction order
/// issues: state lives in function-local statics.

#include <sstream>
#include <string>
#include <string_view>

namespace wlsms {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level that is actually emitted.
void set_log_level(LogLevel level);

/// Current global level.
LogLevel log_level();

/// Short lowercase name of a level ("debug", "info", "warn", "error", "off").
const char* log_level_name(LogLevel level);

/// Parses one of the log_level_name strings; returns false (leaving `out`
/// untouched) on anything else.
bool parse_log_level(std::string_view text, LogLevel& out);

/// Emits `message` to stderr if `level` passes the global threshold. The
/// whole record — a wall-clock epoch stamp (seconds, for cross-process
/// alignment with metrics snapshots' wall_ms), a monotonic timestamp, the
/// level, and the message — is written with a single write under one mutex,
/// so concurrent ranks and threads never interleave partial lines.
void log_message(LogLevel level, const std::string& message);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  if constexpr (sizeof...(Args) == 0) {
    return {};
  } else {
    std::ostringstream os;
    (os << ... << args);
    return os.str();
  }
}
}  // namespace detail

template <typename... Args>
void log_info(Args&&... args) {
  if (log_level() <= LogLevel::kInfo)
    log_message(LogLevel::kInfo, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_warn(Args&&... args) {
  if (log_level() <= LogLevel::kWarn)
    log_message(LogLevel::kWarn, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_debug(Args&&... args) {
  if (log_level() <= LogLevel::kDebug)
    log_message(LogLevel::kDebug, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_error(Args&&... args) {
  if (log_level() <= LogLevel::kError)
    log_message(LogLevel::kError, detail::concat(std::forward<Args>(args)...));
}

}  // namespace wlsms
