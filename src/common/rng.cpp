#include "common/rng.hpp"

#include <cmath>

#include "common/error.hpp"

namespace wlsms {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t v, int k) {
  return (v << k) | (v >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 significant bits -> uniform in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  WLSMS_EXPECTS(n > 0);
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = max() - max() % n;
  std::uint64_t v = next();
  while (v >= limit) v = next();
  return v % n;
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

Vec3 Rng::unit_vector() {
  // Marsaglia (1972): uniform on S^2 without trigonometry.
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0);
  const double factor = 2.0 * std::sqrt(1.0 - s);
  return {u * factor, v * factor, 1.0 - 2.0 * s};
}

void Rng::jump() {
  // Published jump polynomial for xoshiro256**: advances 2^128 steps.
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::array<std::uint64_t, 4> acc{};
  for (std::uint64_t word : kJump) {
    for (int bit = 0; bit < 64; ++bit) {
      if (word & (std::uint64_t{1} << bit)) {
        for (int i = 0; i < 4; ++i) acc[static_cast<std::size_t>(i)] ^= state_[static_cast<std::size_t>(i)];
      }
      next();
    }
  }
  state_ = acc;
}

Rng Rng::split(unsigned index) const {
  Rng derived = *this;
  for (unsigned i = 0; i <= index; ++i) derived.jump();
  return derived;
}

}  // namespace wlsms
