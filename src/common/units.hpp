#pragma once

/// \file units.hpp
/// Physical constants and unit conventions used throughout WL-LSMS.
///
/// Conventions (see DESIGN.md §7):
///  - energies in Rydberg [Ry]
///  - temperatures in Kelvin [K]
///  - lengths in Bohr radii [a0]
/// These match the units the paper reports (Fig. 4-6 use Ry and K; the
/// lattice parameter 5.42 a0 and LIZ radius 11.5 a0 are in Bohr radii).

namespace wlsms::units {

/// Boltzmann constant in Ry/K.
inline constexpr double k_boltzmann_ry = 6.333628e-6;

/// One Rydberg in electron volts.
inline constexpr double ry_in_ev = 13.605693;

/// Experimental bcc-Fe lattice parameter used by the paper [a0].
inline constexpr double fe_lattice_parameter_a0 = 5.42;

/// LIZ radius used by the paper [a0]; encloses 65 atoms on bcc Fe.
inline constexpr double fe_liz_radius_a0 = 11.5;

/// Experimental Curie temperature of bulk iron [K] quoted by the paper.
inline constexpr double fe_curie_experiment_k = 1050.0;

/// Convert a temperature in Kelvin to an inverse temperature beta in 1/Ry.
constexpr double beta_from_kelvin(double temperature_k) {
  return 1.0 / (k_boltzmann_ry * temperature_k);
}

}  // namespace wlsms::units
