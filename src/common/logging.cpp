#include "common/logging.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace wlsms {

namespace {
std::atomic<LogLevel>& level_slot() {
  static std::atomic<LogLevel> level{LogLevel::kWarn};
  return level;
}
std::mutex& emit_mutex() {
  static std::mutex m;
  return m;
}
const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    default:
      return "off";
  }
}
}  // namespace

void set_log_level(LogLevel level) { level_slot().store(level); }

LogLevel log_level() { return level_slot().load(); }

void log_message(LogLevel level, const std::string& message) {
  if (level < log_level()) return;
  const std::scoped_lock lock(emit_mutex());
  std::fprintf(stderr, "[wlsms:%s] %s\n", level_name(level), message.c_str());
}

}  // namespace wlsms
