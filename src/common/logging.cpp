#include "common/logging.hpp"

#include <pthread.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace wlsms {

namespace {

std::atomic<LogLevel>& level_slot() {
  static std::atomic<LogLevel> level{LogLevel::kWarn};
  return level;
}

std::mutex& emit_mutex() {
  // The process transport fork()s worker ranks; hold the mutex across the
  // fork so a child never inherits it locked by a vanished thread.
  static std::mutex* m = [] {
    static std::mutex mutex;
    pthread_atfork([] { mutex.lock(); }, [] { mutex.unlock(); },
                   [] { mutex.unlock(); });
    return &mutex;
  }();
  return *m;
}

std::chrono::steady_clock::time_point log_epoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

}  // namespace

void set_log_level(LogLevel level) { level_slot().store(level); }

LogLevel log_level() { return level_slot().load(); }

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    default:
      return "off";
  }
}

bool parse_log_level(std::string_view text, LogLevel& out) {
  if (text == "debug")
    out = LogLevel::kDebug;
  else if (text == "info")
    out = LogLevel::kInfo;
  else if (text == "warn")
    out = LogLevel::kWarn;
  else if (text == "error")
    out = LogLevel::kError;
  else if (text == "off")
    out = LogLevel::kOff;
  else
    return false;
  return true;
}

void log_message(LogLevel level, const std::string& message) {
  if (level < log_level()) return;
  // Render the whole record first so one fwrite emits it: interleaved
  // worker-rank processes share stderr, and partial lines from two ranks
  // must never splice. Two timestamps per record: a process-local monotonic
  // clock for ordering within one process (wall time can step, which would
  // scramble the narration of a failover), and a wall-clock epoch stamp so
  // lines from different processes — and metrics snapshots, which carry the
  // same wall_ms field — line up on one timeline.
  const double t_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - log_epoch())
                          .count();
  const double wall_s =
      std::chrono::duration<double>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  char prefix[80];
  const int prefix_len =
      std::snprintf(prefix, sizeof prefix, "[wlsms %.3f %12.3f %-5s] ",
                    wall_s, t_ms, log_level_name(level));
  std::string record;
  record.reserve(static_cast<std::size_t>(prefix_len) + message.size() + 1);
  record.append(prefix, static_cast<std::size_t>(prefix_len));
  record += message;
  record += '\n';

  const std::scoped_lock lock(emit_mutex());
  std::fwrite(record.data(), 1, record.size(), stderr);
  std::fflush(stderr);
}

}  // namespace wlsms
