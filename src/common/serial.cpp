#include "common/serial.hpp"

#include <cstring>

namespace wlsms::serial {

namespace {

const char* kind_name(PayloadKind kind) {
  switch (kind) {
    case PayloadKind::kCheckpoint: return "checkpoint";
    case PayloadKind::kEnergyRequest: return "energy-request";
    case PayloadKind::kEnergyResult: return "energy-result";
    case PayloadKind::kMomentConfiguration: return "moment-configuration";
    case PayloadKind::kShardRequest: return "shard-request";
    case PayloadKind::kShardResult: return "shard-result";
    case PayloadKind::kTcpHello: return "tcp-hello";
    case PayloadKind::kTcpWelcome: return "tcp-welcome";
    case PayloadKind::kServeHello: return "serve-hello";
    case PayloadKind::kServeWelcome: return "serve-welcome";
    case PayloadKind::kServeSubmit: return "serve-submit";
    case PayloadKind::kServeResult: return "serve-result";
    case PayloadKind::kServeReject: return "serve-reject";
    case PayloadKind::kServeSession: return "serve-session";
    case PayloadKind::kShardEvict: return "shard-evict";
    case PayloadKind::kServeStatus: return "serve-status";
    case PayloadKind::kServeStatusText: return "serve-status-text";
  }
  return "unknown";
}

}  // namespace

void Encoder::put_u32(std::uint32_t v) {
  for (int k = 0; k < 4; ++k)
    buffer_.push_back(static_cast<std::byte>((v >> (8 * k)) & 0xFFu));
}

void Encoder::put_u64(std::uint64_t v) {
  for (int k = 0; k < 8; ++k)
    buffer_.push_back(static_cast<std::byte>((v >> (8 * k)) & 0xFFu));
}

void Encoder::put_double(double v) {
  static_assert(sizeof(double) == 8);
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, 8);
  put_u64(bits);
}

void Encoder::put_bytes(const void* data, std::size_t n) {
  const auto* bytes = static_cast<const std::byte*>(data);
  buffer_.insert(buffer_.end(), bytes, bytes + n);
}

std::uint8_t Decoder::get_u8() {
  if (remaining() < 1) throw SerializationError("truncated buffer: need 1 byte");
  return static_cast<std::uint8_t>(data_[offset_++]);
}

std::uint32_t Decoder::get_u32() {
  if (remaining() < 4)
    throw SerializationError("truncated buffer: need 4 bytes, have " +
                             std::to_string(remaining()));
  std::uint32_t v = 0;
  for (int k = 0; k < 4; ++k)
    v |= static_cast<std::uint32_t>(data_[offset_ + k]) << (8 * k);
  offset_ += 4;
  return v;
}

std::uint64_t Decoder::get_u64() {
  if (remaining() < 8)
    throw SerializationError("truncated buffer: need 8 bytes, have " +
                             std::to_string(remaining()));
  std::uint64_t v = 0;
  for (int k = 0; k < 8; ++k)
    v |= static_cast<std::uint64_t>(data_[offset_ + k]) << (8 * k);
  offset_ += 8;
  return v;
}

double Decoder::get_double() {
  const std::uint64_t bits = get_u64();
  double v = 0.0;
  std::memcpy(&v, &bits, 8);
  return v;
}

void Decoder::get_bytes(void* out, std::size_t n) {
  if (remaining() < n)
    throw SerializationError("truncated buffer: need " + std::to_string(n) +
                             " bytes, have " + std::to_string(remaining()));
  std::memcpy(out, data_ + offset_, n);
  offset_ += n;
}

void Decoder::expect_end() const {
  if (remaining() != 0)
    throw SerializationError("trailing garbage: " +
                             std::to_string(remaining()) +
                             " bytes after payload");
}

void Decoder::expect_sequence(std::uint64_t count,
                              std::size_t element_size) const {
  if (count > remaining() / element_size)
    throw SerializationError(
        "corrupt sequence count " + std::to_string(count) + " (only " +
        std::to_string(remaining()) + " bytes remain)");
}

void write_header(Encoder& encoder, PayloadKind kind) {
  encoder.put_u32(kMagic);
  encoder.put_u32(kSchemaVersion);
  encoder.put_u32(static_cast<std::uint32_t>(kind));
}

void read_header(Decoder& decoder, PayloadKind expected_kind) {
  const std::uint32_t magic = decoder.get_u32();
  if (magic != kMagic)
    throw SerializationError("bad magic: not wlsms-serialized data");
  const std::uint32_t version = decoder.get_u32();
  if (version != kSchemaVersion)
    throw SerializationError(
        "schema version mismatch: data is version " + std::to_string(version) +
        ", this build reads version " + std::to_string(kSchemaVersion));
  const std::uint32_t kind = decoder.get_u32();
  if (kind != static_cast<std::uint32_t>(expected_kind))
    throw SerializationError(
        std::string("payload kind mismatch: expected ") +
        kind_name(expected_kind) + ", got " +
        kind_name(static_cast<PayloadKind>(kind)) + " (" +
        std::to_string(kind) + ")");
}

}  // namespace wlsms::serial
