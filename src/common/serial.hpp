#pragma once

/// \file serial.hpp
/// The one versioned binary serialization schema shared by everything that
/// persists or transmits state: Wang-Landau checkpoints (wl/checkpoint) and
/// the comm wire protocol (comm/wire) both frame their payloads with the
/// same header — magic + schema version + payload kind — and build the
/// payload from the same bounds-checked primitive encoders.
///
/// Layout rules:
///  - all integers little-endian, fixed width (u8/u32/u64);
///  - doubles are the 8 raw IEEE-754 bytes (bit-exact round trips — the
///    distributed energy path depends on configurations surviving the wire
///    unchanged to the last ulp);
///  - sequences are a u64 count followed by the elements;
///  - decoding NEVER reads past the buffer: truncated or corrupted input
///    throws SerializationError, it cannot crash.
///
/// Versioning: one schema version covers every payload kind. A reader
/// rejects mismatched magic ("not wlsms data at all") and mismatched
/// version ("wlsms data from an incompatible build") with distinct,
/// explicit errors.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace wlsms::serial {

/// Thrown on malformed, truncated, or version-mismatched serialized data.
class SerializationError : public Error {
 public:
  explicit SerializationError(const std::string& what) : Error(what) {}
};

/// First four bytes of every wlsms-serialized buffer ("WLSM").
inline constexpr std::uint32_t kMagic = 0x4D534C57u;

/// Schema version shared by all payload kinds. Version 1 was checkpoint's
/// bespoke text layout (retired); version 2 the unified binary schema;
/// version 3 adds the session identity to energy/shard requests, the
/// serving-daemon payload kinds (9-14), and the shard-evict control
/// payload (15); version 4 adds trace-context propagation (trace node +
/// parent span on energy/shard/submit requests), the four-timestamp clock
/// probe fields on the TCP and serve handshakes, the per-request stage
/// breakdown on serve results, and the status introspection payloads
/// (16-17).
inline constexpr std::uint32_t kSchemaVersion = 4;

/// What a framed buffer carries. The kind is part of the header so a
/// message routed to the wrong decoder fails loudly instead of
/// misinterpreting bytes.
enum class PayloadKind : std::uint32_t {
  kCheckpoint = 1,
  kEnergyRequest = 2,
  kEnergyResult = 3,
  kMomentConfiguration = 4,
  kShardRequest = 5,
  kShardResult = 6,
  kTcpHello = 7,        ///< TCP worker -> controller handshake
  kTcpWelcome = 8,      ///< TCP controller -> worker rank assignment
  kServeHello = 9,      ///< serve client -> daemon session handshake
  kServeWelcome = 10,   ///< serve daemon -> client session grant
  kServeSubmit = 11,    ///< serve client -> daemon energy request
  kServeResult = 12,    ///< serve daemon -> client energy result
  kServeReject = 13,    ///< serve daemon -> client admission rejection
  kServeSession = 14,   ///< serve daemon session-resume checkpoint
  kShardEvict = 15,     ///< controller -> worker delta-cache eviction
  kServeStatus = 16,    ///< status client -> daemon metrics request
  kServeStatusText = 17,  ///< daemon -> status client Prometheus text
};

/// Appends primitives to a growing byte buffer.
class Encoder {
 public:
  void put_u8(std::uint8_t v) { buffer_.push_back(static_cast<std::byte>(v)); }
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_double(double v);
  void put_bytes(const void* data, std::size_t n);

  const std::vector<std::byte>& bytes() const { return buffer_; }
  std::vector<std::byte> take() { return std::move(buffer_); }

 private:
  std::vector<std::byte> buffer_;
};

/// Reads primitives from a byte buffer; every read is bounds-checked and
/// throws SerializationError on overrun.
class Decoder {
 public:
  Decoder(const std::byte* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit Decoder(const std::vector<std::byte>& buffer)
      : Decoder(buffer.data(), buffer.size()) {}

  std::uint8_t get_u8();
  std::uint32_t get_u32();
  std::uint64_t get_u64();
  double get_double();
  void get_bytes(void* out, std::size_t n);

  std::size_t remaining() const { return size_ - offset_; }

  /// Throws unless the buffer is fully consumed (trailing garbage is as
  /// suspect as truncation).
  void expect_end() const;

  /// Bounds-checks a forthcoming `count`-element sequence of elements at
  /// least `element_size` bytes each, so hostile counts fail before any
  /// allocation instead of via std::bad_alloc.
  void expect_sequence(std::uint64_t count, std::size_t element_size) const;

 private:
  const std::byte* data_;
  std::size_t size_;
  std::size_t offset_ = 0;
};

/// Writes the shared header: magic, schema version, payload kind.
void write_header(Encoder& encoder, PayloadKind kind);

/// Validates the shared header, throwing a SerializationError naming the
/// problem (bad magic / unsupported version / wrong payload kind).
void read_header(Decoder& decoder, PayloadKind expected_kind);

}  // namespace wlsms::serial
