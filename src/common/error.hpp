#pragma once

/// \file error.hpp
/// Contract-checking helpers (C++ Core Guidelines I.6 "Expects" / I.8
/// "Ensures"). Violations throw wlsms::ContractError so tests can assert on
/// misuse; hot loops use plain asserts via WLSMS_ASSUME in release builds.

#include <stdexcept>
#include <string>

namespace wlsms {

/// Root of the library's exception hierarchy. Every error the library
/// raises deliberately — contract violations, malformed serialized data,
/// transport failures — derives from this, so callers that do not care
/// about the specific failure can catch one type.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a WLSMS_EXPECTS/WLSMS_ENSURES contract is violated.
class ContractError : public Error {
 public:
  explicit ContractError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line) {
  throw ContractError(std::string(kind) + " failed: " + expr + " at " + file +
                      ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace wlsms

/// Precondition check; throws wlsms::ContractError on violation.
#define WLSMS_EXPECTS(cond)                                              \
  do {                                                                   \
    if (!(cond))                                                         \
      ::wlsms::detail::contract_fail("precondition", #cond, __FILE__,    \
                                     __LINE__);                          \
  } while (0)

/// Postcondition check; throws wlsms::ContractError on violation.
#define WLSMS_ENSURES(cond)                                              \
  do {                                                                   \
    if (!(cond))                                                         \
      ::wlsms::detail::contract_fail("postcondition", #cond, __FILE__,   \
                                     __LINE__);                          \
  } while (0)
