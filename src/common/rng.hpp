#pragma once

/// \file rng.hpp
/// Deterministic pseudo-random number generation for WL-LSMS.
///
/// The paper's WL driver uses a pseudo-random sequence whose determinism is
/// deliberately given up when energies return out of order (§II-C); here we
/// keep the generator itself fully deterministic and seedable so that serial
/// runs are reproducible bit-for-bit and tests can pin down behaviour.
///
/// Engine: xoshiro256** (public-domain algorithm by Blackman & Vigna),
/// implemented from the published reference description. It is small, fast,
/// and passes BigCrush — appropriate for Monte Carlo sampling.

#include <array>
#include <cstdint>

#include "common/vec3.hpp"

namespace wlsms {

/// xoshiro256** pseudo-random generator with convenience distributions used
/// by the Monte Carlo layers (uniform doubles, uniform unit vectors, ...).
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the state from a single 64-bit seed via splitmix64, which is the
  /// recommended seeding procedure for the xoshiro family.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// UniformRandomBitGenerator interface.
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }
  result_type operator()() { return next(); }

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n).
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal deviate (Marsaglia polar method, cached pair).
  double normal();

  /// Uniformly distributed point on the unit sphere (Marsaglia 1972).
  /// This is the trial-move generator of the WL walker: "generating a new
  /// random direction on a sphere" (paper §II-C).
  Vec3 unit_vector();

  /// Jump to a statistically independent subsequence; used to derive
  /// per-walker streams from one master seed.
  void jump();

  /// Convenience: derived generator for walker `index` (jumps `index` times).
  Rng split(unsigned index) const;

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace wlsms
