#pragma once

/// \file solver.hpp
/// The LSMS energy engine: frozen-potential band energies of moment
/// configurations, one LIZ solve per atom per contour point.
///
/// For every atom i the solver computes the local band energy
///
///   e_i = -(1/pi) Im Integral_C  z Tr_spin[ tau_00^{(i)}(z) ] dz ,
///
/// with tau_00 the central block of the LIZ scattering-path operator and C
/// the complex contour from the band bottom to the Fermi energy. The total
/// energy E({e}) = Sum_i e_i is the classical energy functional the
/// Wang-Landau walk samples; differences between configurations are the
/// frozen-potential (magnetic force theorem) energy differences of §II-B.
///
/// Hot-path structure (the paper's "bulk of the calculation is done by
/// ZGEMM"): per zone and contour point the center's tau block is obtained
/// by Schur complement of the member block (center ordered last), whose
/// elimination is a blocked, GEMM-dominated LU. Configuration-independent
/// hopping blocks are precomputed per distinct geometry per contour point;
/// the inverse single-site t-matrices are cached per (site, contour point)
/// and refreshed incrementally — after a single-moment trial move only the
/// moved site's entries are recomputed.
///
/// Domain decomposition follows the paper: each atom's solve is independent
/// given the t-matrices of its LIZ ("one atom per processor"); here the atom
/// loop is OpenMP-parallel and, in the distributed harness (src/parallel,
/// src/cluster), one walker's atoms map onto one LSMS instance.

#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "lattice/structure.hpp"
#include "lsms/contour.hpp"
#include "lsms/kkr.hpp"
#include "lsms/scattering.hpp"
#include "spin/moments.hpp"
#include "spin/moves.hpp"

namespace wlsms::lsms {

/// Solver configuration.
struct LsmsParameters {
  ScatteringParameters scattering;
  double liz_radius = 11.5;        ///< LIZ radius [a0]; paper: 11.5 -> 65 atoms
  std::size_t contour_points = 16; ///< Gauss-Legendre nodes on the contour
};

/// Per-configuration energy breakdown.
struct LocalEnergies {
  std::vector<double> per_atom;  ///< e_i [Ry]
  double total = 0.0;            ///< Sum_i e_i [Ry]
};

/// Frozen-potential multiple-scattering energy engine for one structure.
///
/// Geometry-dependent data (LIZ membership and the center-last hopping
/// blocks at every contour point) is precomputed at construction and shared
/// between congruent zones, so per-energy-evaluation work is exactly the
/// dense linear algebra the paper profiles.
class LsmsSolver {
 public:
  LsmsSolver(lattice::Structure structure, LsmsParameters params);

  const lattice::Structure& structure() const { return structure_; }
  const LsmsParameters& params() const { return params_; }
  const Scatterer& scatterer() const { return scatterer_; }
  std::size_t n_atoms() const { return structure_.size(); }

  /// The complex-energy integration contour (shared by every zone).
  const std::vector<ContourPoint>& contour() const { return contour_; }

  /// Atoms per LIZ (zone size, centre included) of site i.
  std::size_t liz_size(std::size_t i) const { return lizs_[i].zone_size(); }

  /// Local band energy of atom i for the given moments [Ry].
  double local_energy(std::size_t i,
                      const spin::MomentConfiguration& moments) const;

  /// Total energy and the per-atom breakdown (atom loop is OpenMP-parallel).
  LocalEnergies energies(const spin::MomentConfiguration& moments) const;

  /// Local band energies of the contiguous atom shard [first, first+count):
  /// the worker-rank kernel of the distributed energy service (src/comm),
  /// where one configuration's atoms are sharded across the ranks of an
  /// LSMS group. Strictly serial — no OpenMP — so it is safe in fork()ed
  /// worker processes; each e_i is bitwise identical to energies().per_atom
  /// (same zone solve, same t-table refresh).
  std::vector<double> shard_energies(const spin::MomentConfiguration& moments,
                                     std::size_t first,
                                     std::size_t count) const;

  /// Total energy only.
  double energy(const spin::MomentConfiguration& moments) const;

  /// Energies of many independent configurations at once, with the
  /// per-atom LIZ solves that share a (geometry, contour point) — i.e. one
  /// SchurTemplates instance — coalesced into lock-step Schur eliminations
  /// feeding zgemm_view_batch. This is the serving scheduler's cross-walker
  /// batching path (DESIGN.md §12) and the traffic shape a batched
  /// accelerator GEMM wants. Bit-identical per configuration to
  /// energies(): every zone solve's arithmetic and the atom-order total
  /// reduction are unchanged; only independent solves execute together.
  /// Serial on the calling thread (no OpenMP) apart from the optional
  /// zgemm_batch_threads pool spread.
  std::vector<LocalEnergies> batch_energies(
      const std::vector<const spin::MomentConfiguration*>& configs) const;

  /// Sites whose local energy changes when `site` moves: site itself plus
  /// every atom whose LIZ contains it. Mirrors the paper's communication
  /// pattern (a t-matrix is sent exactly to the zones that list it).
  const std::vector<std::size_t>& affected_sites(std::size_t site) const;

  /// Energy after applying `move` to `moments`, given the current per-atom
  /// breakdown; recomputes only affected_sites(move.site). Returns the new
  /// breakdown. `moments` is left unchanged.
  LocalEnergies energy_after_move(const spin::MomentConfiguration& moments,
                                  const spin::TrialMove& move,
                                  const LocalEnergies& current) const;

  /// Analytic count of real flops one full energy evaluation retires
  /// (assembly and closed-form 2x2 algebra excluded; member-block
  /// factorization + panel solve + Schur GEMM, summed over atoms and
  /// contour points). Matches the instrumented perf counters exactly.
  std::uint64_t flops_per_energy() const;

  /// Analytic flops of atom i's zone solve across the contour (the
  /// per-zone term of flops_per_energy).
  std::uint64_t flops_per_zone_energy(std::size_t i) const;

 private:
  double zone_energy(const LizGeometry& liz,
                     const std::vector<spin::Spin2x2>& t_table) const;

  /// Copies the t^-1 table for `moments` into `out` (site-major, one
  /// Spin2x2 per site per contour point), refreshing the shared cache
  /// incrementally: only sites whose direction changed since the last call
  /// are recomputed. Thread-safe; the copy decouples concurrent callers.
  void refresh_t_table(const spin::MomentConfiguration& moments,
                       std::vector<spin::Spin2x2>& out) const;

  lattice::Structure structure_;
  LsmsParameters params_;
  Scatterer scatterer_;
  std::vector<ContourPoint> contour_;
  std::vector<LizGeometry> lizs_;
  /// lizs_[i] -> its center-last hopping templates (one per contour point),
  /// shared between congruent zones.
  std::vector<std::shared_ptr<const std::vector<SchurTemplates>>> templates_;
  std::vector<std::vector<std::size_t>> affected_;

  /// Incremental per-(site, contour point) t^-1 cache (see refresh_t_table).
  mutable std::mutex t_cache_mutex_;
  mutable std::vector<Vec3> t_cache_directions_;
  mutable std::vector<spin::Spin2x2> t_cache_table_;
};

}  // namespace wlsms::lsms
