#include "lsms/scattering.hpp"

#include <cmath>

#include "common/error.hpp"

namespace wlsms::lsms {

namespace {
constexpr Complex kI{0.0, 1.0};
}

Complex momentum(Complex z) {
  // std::sqrt uses the principal branch: arg in (-pi/2, pi/2]. For z in the
  // upper half-plane this already gives Im kappa > 0; for real positive z it
  // gives the physical kappa > 0.
  return std::sqrt(z);
}

Complex free_propagator(double r, Complex z) {
  WLSMS_EXPECTS(r > 0.0);
  const Complex kappa = momentum(z);
  return std::exp(kI * kappa * r) / r;
}

Scatterer::Scatterer(const ScatteringParameters& params) : params_(params) {
  WLSMS_EXPECTS(params.width > 0.0);
  WLSMS_EXPECTS(params.band_bottom > 0.0);
  WLSMS_EXPECTS(params.fermi_energy > params.band_bottom);
}

Complex Scatterer::t_resonant(double resonance, Complex z) const {
  const Complex kappa = momentum(z);
  const Complex cot_delta = 2.0 * (resonance - z) / params_.width;
  return -1.0 / (kappa * (cot_delta - kI));
}

Complex Scatterer::t_up(Complex z) const {
  return t_resonant(params_.resonance_up, z);
}

Complex Scatterer::t_down(Complex z) const {
  return t_resonant(params_.resonance_down, z);
}

Spin2x2 Scatterer::t_matrix(const Vec3& e, Complex z) const {
  return spin::rotated_t_matrix(t_up(z), t_down(z), e);
}

Spin2x2 Scatterer::t_inverse(const Vec3& e, Complex z) const {
  const Complex a = 0.5 * (t_up(z) + t_down(z));
  const Complex b = 0.5 * (t_up(z) - t_down(z));
  const Complex denom = a * a - b * b;  // = t_up * t_down
  const Complex ia = a / denom;
  const Complex ib = -b / denom;
  const Spin2x2 sde = spin::pauli_dot(e);
  return {ia + ib * sde[0], ib * sde[1], ib * sde[2], ia + ib * sde[3]};
}

double Scatterer::phase_shift_up(double e) const {
  const double cot_delta = 2.0 * (params_.resonance_up - e) / params_.width;
  const double delta = std::atan2(1.0, cot_delta);  // in (0, pi)
  return delta;
}

double Scatterer::phase_shift_down(double e) const {
  const double cot_delta = 2.0 * (params_.resonance_down - e) / params_.width;
  return std::atan2(1.0, cot_delta);
}

}  // namespace wlsms::lsms
