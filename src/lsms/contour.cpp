#include "lsms/contour.hpp"

#include <cmath>

#include "common/error.hpp"

namespace wlsms::lsms {

void gauss_legendre(std::size_t n, std::vector<double>& nodes,
                    std::vector<double>& weights) {
  WLSMS_EXPECTS(n >= 1);
  nodes.assign(n, 0.0);
  weights.assign(n, 0.0);
  const double pi = std::acos(-1.0);
  const std::size_t half = (n + 1) / 2;
  for (std::size_t i = 0; i < half; ++i) {
    // Chebyshev-like initial guess for the i-th root of P_n.
    double x = std::cos(pi * (static_cast<double>(i) + 0.75) /
                        (static_cast<double>(n) + 0.5));
    double dp = 0.0;
    for (int iter = 0; iter < 100; ++iter) {
      // Evaluate P_n(x) and P'_n(x) by the three-term recurrence.
      double p0 = 1.0;
      double p1 = x;
      for (std::size_t k = 2; k <= n; ++k) {
        const double kk = static_cast<double>(k);
        const double p2 = ((2.0 * kk - 1.0) * x * p1 - (kk - 1.0) * p0) / kk;
        p0 = p1;
        p1 = p2;
      }
      dp = static_cast<double>(n) * (x * p1 - p0) / (x * x - 1.0);
      const double dx = p1 / dp;
      x -= dx;
      if (std::abs(dx) < 1e-15) break;
    }
    nodes[i] = -x;
    nodes[n - 1 - i] = x;
    const double w = 2.0 / ((1.0 - x * x) * dp * dp);
    weights[i] = w;
    weights[n - 1 - i] = w;
  }
  if (n == 1) {
    nodes[0] = 0.0;
    weights[0] = 2.0;
  }
}

std::vector<ContourPoint> semicircle_contour(double e_bottom, double e_fermi,
                                             std::size_t n_points) {
  WLSMS_EXPECTS(e_fermi > e_bottom);
  WLSMS_EXPECTS(n_points >= 1);
  const double pi = std::acos(-1.0);
  const double center = 0.5 * (e_bottom + e_fermi);
  const double radius = 0.5 * (e_fermi - e_bottom);

  std::vector<double> nodes;
  std::vector<double> weights;
  gauss_legendre(n_points, nodes, weights);

  std::vector<ContourPoint> contour;
  contour.reserve(n_points);
  const Complex i_unit{0.0, 1.0};
  for (std::size_t k = 0; k < n_points; ++k) {
    // Map [-1, 1] -> theta in [pi, 0] (so the path runs e_bottom -> e_fermi).
    const double theta = 0.5 * pi * (1.0 - nodes[k]);
    const Complex phase = std::exp(i_unit * theta);
    const Complex z = center + radius * phase;
    // dz = i R e^{i theta} dtheta, dtheta = -(pi/2) dnode.
    const Complex w = i_unit * radius * phase * (-0.5 * pi) * weights[k];
    contour.push_back({z, w});
  }
  return contour;
}

}  // namespace wlsms::lsms
