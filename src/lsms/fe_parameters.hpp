#pragma once

/// \file fe_parameters.hpp
/// Calibrated "iron" parameter set for the multiple-scattering substrate.
///
/// The paper uses the self-consistent ferromagnetic Fe potential; this
/// reproduction replaces it with the resonant s-channel scatterer of
/// scattering.hpp whose free parameters are fixed here once and used by
/// every test, bench and example:
///
///  - exchange splitting 0.20 Ry (~2.7 eV, the Fe d-band splitting scale),
///  - resonance width 0.10 Ry (~1.4 eV, a d-band width scale),
///  - Fermi energy placed between the spin resonances, where the substrate's
///    extracted nearest-neighbour exchange comes out ferromagnetic (see the
///    calibration test in tests/test_lsms_exchange.cpp).
///
/// The LIZ radius and lattice constant are the paper's own values.

#include "common/units.hpp"
#include "lsms/solver.hpp"

namespace wlsms::lsms {

/// Scattering parameters for the Fe substrate.
///
/// Calibration provenance (tools/calibrate.cpp, production fidelity:
/// LIZ 11.5 a0 / 65 atoms, 16 contour points, 16-atom cell):
/// E_F = 0.32 Ry maximizes the ferromagnetic stability of the extracted
/// exchange: J = [+4.1e-3, +8.1e-5, -6.9e-5, -1.0e-3] Ry for shells 1-4.
inline ScatteringParameters fe_scattering_parameters() {
  ScatteringParameters p;
  p.resonance_up = 0.30;
  p.resonance_down = 0.50;
  p.width = 0.20;
  p.band_bottom = 0.02;
  p.fermi_energy = 0.32;
  return p;
}

/// Full solver parameters at the paper's production fidelity:
/// LIZ radius 11.5 a0 (65 atoms on bcc Fe).
inline LsmsParameters fe_lsms_parameters() {
  LsmsParameters p;
  p.scattering = fe_scattering_parameters();
  p.liz_radius = units::fe_liz_radius_a0;
  p.contour_points = 16;
  return p;
}

/// Reduced-fidelity parameters for fast tests and development: first-two-
/// shell LIZ (15 atoms on bcc) and a short contour. Same code path, much
/// smaller matrices.
inline LsmsParameters fe_lsms_parameters_fast() {
  LsmsParameters p;
  p.scattering = fe_scattering_parameters();
  p.liz_radius = 5.6;  // 1st + 2nd bcc shells: 8 + 6 = 14 neighbours
  p.contour_points = 8;
  return p;
}

/// Number of exchange shells the production surrogate keeps. The substrate's
/// RKKY tail (J4 ~= -1.0e-3 Ry at coordination 24) would frustrate large
/// cells into a non-collinear ground state; bcc iron is experimentally a
/// simple ferromagnet, so the surrogate truncates to the two (ferromagnetic)
/// leading shells, preserving the paper-relevant physics: a ferromagnetic
/// minimum, an antiferromagnetic-like maximum, one ordering transition.
inline constexpr std::size_t fe_surrogate_shells = 2;

/// Reference exchange constants [Ry] extracted from the substrate at
/// production fidelity (see fe_scattering_parameters provenance note).
/// Benches and examples may use these directly instead of re-running the
/// ~minute-long extraction; tests cross-check them against a fresh
/// extraction.
inline std::vector<double> fe_reference_exchange() {
  return {4.115e-3, 8.064e-5};
}

/// Curie-temperature calibration: multiplies the extracted (or reference)
/// exchange before the surrogate Wang-Landau runs so that the 250-atom
/// specific-heat peak lands at the paper's 980 K. Value fixed by the
/// calibration runs recorded in EXPERIMENTS.md (scale 0.77 gave 1033 K).
inline constexpr double fe_exchange_energy_scale = 0.73;

}  // namespace wlsms::lsms
