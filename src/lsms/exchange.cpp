#include "lsms/exchange.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "lattice/shells.hpp"
#include "linalg/lu.hpp"

namespace wlsms::lsms {

double ExtractedExchange::energy(
    const spin::MomentConfiguration& moments) const {
  double e = e0;
  for (const ExchangeBond& bond : bond_list)
    e -= shells[bond.shell].j * moments[bond.site_a].dot(moments[bond.site_b]);
  return e;
}

std::vector<double> ExtractedExchange::j_values() const {
  std::vector<double> out;
  out.reserve(shells.size());
  for (const ShellExchange& s : shells) out.push_back(s.j);
  return out;
}

std::vector<ExchangeBond> enumerate_bonds(const lattice::Structure& structure,
                                          std::size_t n_shells,
                                          std::vector<double>* shell_radii) {
  WLSMS_EXPECTS(n_shells >= 1);
  // Shell radii from site 0 with a generous cutoff grown until enough shells
  // are found. All sites of the paper's monoatomic crystals are equivalent.
  double cutoff = 2.0;
  std::vector<lattice::Shell> shells;
  for (int attempt = 0; attempt < 32; ++attempt) {
    shells = lattice::neighbor_shells(structure, 0, cutoff);
    if (shells.size() >= n_shells) break;
    cutoff *= 1.5;
  }
  WLSMS_ENSURES(shells.size() >= n_shells);
  shells.resize(n_shells);

  if (shell_radii) {
    shell_radii->clear();
    for (const lattice::Shell& s : shells) shell_radii->push_back(s.radius);
  }
  const double max_radius = shells.back().radius + 1e-6;

  std::vector<ExchangeBond> bonds;
  for (std::size_t i = 0; i < structure.size(); ++i) {
    for (const lattice::Neighbor& n :
         structure.neighbors_within(i, max_radius)) {
      // Count each unordered pair once; drop self-image bonds (constant
      // contribution) and de-duplicate image multiplicity by keeping every
      // (i < j) entry -- distinct images of the same pair are genuinely
      // distinct bonds and each occurrence from site i's list is kept.
      if (n.site <= i) continue;
      std::size_t shell_index = shells.size();
      for (std::size_t s = 0; s < shells.size(); ++s)
        if (std::abs(n.distance - shells[s].radius) < 1e-6) {
          shell_index = s;
          break;
        }
      if (shell_index == shells.size()) continue;  // between shells
      bonds.push_back({i, n.site, shell_index});
    }
  }
  return bonds;
}

std::vector<double> exchange_fit_row(const std::vector<ExchangeBond>& bonds,
                                     std::size_t n_shells,
                                     const spin::MomentConfiguration& config) {
  std::vector<double> row(n_shells + 1, 0.0);
  row[0] = 1.0;
  for (const ExchangeBond& bond : bonds)
    row[bond.shell + 1] -= config[bond.site_a].dot(config[bond.site_b]);
  return row;
}

ExchangeFit fit_exchange_rows(const std::vector<std::vector<double>>& rows,
                              const std::vector<double>& targets,
                              std::size_t n_shells, double ridge) {
  const std::size_t n_params = n_shells + 1;  // e0 plus one J per shell
  WLSMS_EXPECTS(rows.size() == targets.size());
  WLSMS_EXPECTS(rows.size() >= n_params);
  for (const std::vector<double>& row : rows)
    WLSMS_EXPECTS(row.size() == n_params);

  // Normal equations (A^T A) p = A^T y, solved with the complex LU kept
  // real. The system is tiny (n_shells + 1 square).
  linalg::ZMatrix ata(n_params, n_params);
  std::vector<linalg::Complex> aty(n_params, linalg::Complex{0.0, 0.0});
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::size_t a = 0; a < n_params; ++a) {
      aty[a] += rows[r][a] * targets[r];
      for (std::size_t b = 0; b < n_params; ++b)
        ata(a, b) += linalg::Complex{rows[r][a] * rows[r][b], 0.0};
    }
  }
  if (ridge > 0.0) {
    double max_diag = 0.0;
    for (std::size_t a = 0; a < n_params; ++a)
      max_diag = std::max(max_diag, ata(a, a).real());
    for (std::size_t a = 0; a < n_params; ++a)
      ata(a, a) += linalg::Complex{ridge * max_diag, 0.0};
  }
  linalg::LuFactorization lu(ata);
  lu.solve_in_place(aty.data());

  ExchangeFit fit;
  fit.e0 = aty[0].real();
  fit.j.resize(n_shells);
  for (std::size_t s = 0; s < n_shells; ++s) fit.j[s] = aty[s + 1].real();

  double ss = 0.0;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    double predicted = 0.0;
    for (std::size_t a = 0; a < n_params; ++a)
      predicted += rows[r][a] * aty[a].real();
    const double resid = targets[r] - predicted;
    ss += resid * resid;
  }
  fit.rms = std::sqrt(ss / static_cast<double>(rows.size()));
  return fit;
}

ExtractedExchange extract_exchange(const LsmsSolver& solver,
                                   std::size_t n_shells,
                                   std::size_t n_samples, Rng& rng) {
  WLSMS_EXPECTS(n_samples >= n_shells + 2);
  const lattice::Structure& structure = solver.structure();

  std::vector<double> radii;
  std::vector<ExchangeBond> bonds = enumerate_bonds(structure, n_shells, &radii);
  WLSMS_ENSURES(!bonds.empty());

  // Build the regression rows: y = E_lsms, x = [1, -b_1, ..., -b_S] with
  // b_s the shell bond sum, so the coefficient of column s+1 is J_s.
  std::vector<std::vector<double>> rows;
  std::vector<double> targets;
  const auto add_sample = [&](const spin::MomentConfiguration& config) {
    rows.push_back(exchange_fit_row(bonds, n_shells, config));
    targets.push_back(solver.energy(config));
  };

  add_sample(spin::MomentConfiguration::ferromagnetic(structure.size()));
  for (std::size_t s = 0; s + 1 < n_samples; ++s)
    add_sample(spin::MomentConfiguration::random(structure.size(), rng));

  const ExchangeFit fit = fit_exchange_rows(rows, targets, n_shells);

  ExtractedExchange result;
  result.e0 = fit.e0;
  result.shells.resize(n_shells);
  std::vector<std::size_t> bond_counts(n_shells, 0);
  for (const ExchangeBond& bond : bonds) ++bond_counts[bond.shell];
  for (std::size_t s = 0; s < n_shells; ++s) {
    result.shells[s].radius = radii[s];
    result.shells[s].bonds = bond_counts[s];
    result.shells[s].j = fit.j[s];
  }
  result.bond_list = std::move(bonds);
  result.fit_rms = fit.rms;
  return result;
}

double pair_exchange_embedding(const LsmsSolver& solver, std::size_t site_a,
                               std::size_t site_b) {
  WLSMS_EXPECTS(site_a != site_b);
  const std::size_t n = solver.n_atoms();
  WLSMS_EXPECTS(site_a < n && site_b < n);

  const auto energy_with = [&](double sa, double sb) {
    std::vector<Vec3> dirs(n, Vec3{1.0, 0.0, 0.0});
    dirs[site_a] = Vec3{0.0, 0.0, sa};
    dirs[site_b] = Vec3{0.0, 0.0, sb};
    return solver.energy(spin::MomentConfiguration::from_directions(dirs));
  };

  const double e_pp = energy_with(+1.0, +1.0);
  const double e_mm = energy_with(-1.0, -1.0);
  const double e_pm = energy_with(+1.0, -1.0);
  const double e_mp = energy_with(-1.0, +1.0);
  return 0.25 * (e_pm + e_mp - e_pp - e_mm);
}

}  // namespace wlsms::lsms
