#pragma once

/// \file exchange.hpp
/// Extraction of effective Heisenberg exchange constants from the
/// multiple-scattering substrate.
///
/// The frozen-potential energy is, to second order in the moment rotations,
/// a bilinear function of the directions (paper §II-B: "valid to second
/// order"); projecting it onto shell-resolved Heisenberg couplings
///
///   E({e}) ~= E0 - Sum_s J_s Sum_{bonds (i,j) in shell s} e_i . e_j
///
/// yields the surrogate Hamiltonian the production Wang-Landau runs
/// converge (DESIGN.md §2, substitution 2). Two independent estimators are
/// provided and cross-checked in tests:
///  1. least-squares regression of LSMS energies over random configurations;
///  2. the four-state pair-embedding formula with spectator moments
///     perpendicular to the probed pair.

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "lsms/solver.hpp"

namespace wlsms::lsms {

/// One unordered exchange bond (possibly through a periodic image).
struct ExchangeBond {
  std::size_t site_a = 0;
  std::size_t site_b = 0;
  std::size_t shell = 0;  ///< shell index the bond belongs to
};

/// Shell-resolved result of an extraction.
struct ShellExchange {
  double radius = 0.0;        ///< shell distance [a0]
  std::size_t bonds = 0;      ///< number of bonds in this shell (whole cell)
  double j = 0.0;             ///< exchange constant [Ry]; J > 0 ferromagnetic
};

/// The fitted effective model.
struct ExtractedExchange {
  double e0 = 0.0;                    ///< configuration-independent offset [Ry]
  std::vector<ShellExchange> shells;  ///< per-shell couplings
  std::vector<ExchangeBond> bond_list;///< every bond, tagged with its shell
  double fit_rms = 0.0;  ///< rms residual of the fit [Ry]; measures how
                         ///< Heisenberg-like the substrate is

  /// Energy of `moments` under the fitted model [Ry].
  double energy(const spin::MomentConfiguration& moments) const;

  /// Per-shell J values only (convenience).
  std::vector<double> j_values() const;
};

/// Result of a shell-coupling least-squares fit over precomputed samples.
struct ExchangeFit {
  double e0 = 0.0;        ///< configuration-independent offset [Ry]
  std::vector<double> j;  ///< one coupling per shell [Ry]
  double rms = 0.0;       ///< rms residual of the fit [Ry]
};

/// Solves the shell-coupling regression shared by extract_exchange and the
/// online speculator refit (wl/speculator.hpp): each row is
/// [1, -b_1, ..., -b_S] with b_s the shell-s bond sum of one configuration,
/// each target the exact energy of that configuration. `ridge` scales a
/// Tikhonov term (ridge * max diagonal of A^T A added to the diagonal) that
/// keeps the normal equations solvable on the correlated samples a random
/// walk produces. Throws linalg::SingularMatrixError when the (possibly
/// ridged) system is still singular, wlsms::Error on shape mismatches.
ExchangeFit fit_exchange_rows(const std::vector<std::vector<double>>& rows,
                              const std::vector<double>& targets,
                              std::size_t n_shells, double ridge = 0.0);

/// Builds one regression row for fit_exchange_rows: [1, -b_1, ..., -b_S]
/// with b_s = sum over shell-s bonds of e_i . e_j.
std::vector<double> exchange_fit_row(const std::vector<ExchangeBond>& bonds,
                                     std::size_t n_shells,
                                     const spin::MomentConfiguration& config);

/// Enumerates the unordered exchange bonds of `structure` out to
/// `n_shells` neighbour shells and tags each with its shell index. Bonds
/// whose two ends are periodic images of the same site contribute a
/// configuration-independent constant and are dropped.
std::vector<ExchangeBond> enumerate_bonds(const lattice::Structure& structure,
                                          std::size_t n_shells,
                                          std::vector<double>* shell_radii);

/// Least-squares extraction: evaluates `solver` on `n_samples` random
/// configurations (plus the ferromagnetic reference) and regresses onto the
/// shell bond sums.
ExtractedExchange extract_exchange(const LsmsSolver& solver,
                                   std::size_t n_shells,
                                   std::size_t n_samples, Rng& rng);

/// Four-state pair-embedding estimate of J between `site_a` and `site_b`:
/// spectators along +x, the pair along +-z;
/// J = [E(+-) + E(-+) - E(++) - E(--)] / 4.
double pair_exchange_embedding(const LsmsSolver& solver, std::size_t site_a,
                               std::size_t site_b);

}  // namespace wlsms::lsms
