#pragma once

/// \file cost_model.hpp
/// Analytic cost model of a production LSMS energy evaluation.
///
/// The discrete-event cluster simulator (src/cluster) needs the time one
/// LSMS instance spends on one Wang-Landau energy request at the *paper's*
/// fidelity (lmax = 3, 65-atom LIZ, ~30 contour points), which is far more
/// expensive than the s-channel substrate this repository runs numerically.
/// The flop structure is identical, only the block size differs:
/// per atom and contour point the dominant work is factorizing the LIZ
/// matrix of order  n = 2 (lmax+1)^2 N_LIZ  and back-solving for the central
/// block of the inverse (2 (lmax+1)^2 right-hand sides). This module turns
/// those counts into seconds via a per-core sustained-flop-rate parameter
/// calibrated to the paper's Table II (75.8 % of the 9.2 GFlop/s Opteron
/// peak).

#include <cstdint>

namespace wlsms::lsms {

/// Fidelity of an LSMS energy evaluation.
struct LsmsFidelity {
  std::uint32_t lmax = 3;            ///< angular-momentum cutoff
  std::uint32_t liz_atoms = 65;      ///< atoms per LIZ (paper: 65)
  std::uint32_t contour_points = 31; ///< energy points on the contour

  /// Block order per atom: n = 2 (lmax+1)^2 N_LIZ.
  std::uint64_t matrix_order() const;
  /// Scattering channels per atom: 2 (lmax+1)^2.
  std::uint64_t channels_per_atom() const;
};

/// Real flops retired by one atom's solve at one contour point
/// (ZGETRF of the LIZ matrix + ZGETRS for the central columns).
std::uint64_t flops_per_atom_point(const LsmsFidelity& fidelity);

/// Real flops for one full energy evaluation of an `n_atoms` system with one
/// atom per core (every core factorizes its own LIZ matrix at every contour
/// point).
std::uint64_t flops_per_energy(const LsmsFidelity& fidelity,
                               std::uint64_t n_atoms);

/// Wall-clock seconds for one energy evaluation when each atom runs on its
/// own core sustaining `flops_per_second_per_core`.
double seconds_per_energy(const LsmsFidelity& fidelity,
                          double flops_per_second_per_core);

}  // namespace wlsms::lsms
