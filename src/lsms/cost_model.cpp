#include "lsms/cost_model.hpp"

#include "common/error.hpp"
#include "perf/flops.hpp"

namespace wlsms::lsms {

std::uint64_t LsmsFidelity::channels_per_atom() const {
  const std::uint64_t lp1 = lmax + 1;
  return 2ULL * lp1 * lp1;
}

std::uint64_t LsmsFidelity::matrix_order() const {
  return channels_per_atom() * liz_atoms;
}

std::uint64_t flops_per_atom_point(const LsmsFidelity& fidelity) {
  const std::uint64_t n = fidelity.matrix_order();
  const std::uint64_t rhs = fidelity.channels_per_atom();
  return perf::cost::zgetrf(n) + perf::cost::zgetrs(n, rhs);
}

std::uint64_t flops_per_energy(const LsmsFidelity& fidelity,
                               std::uint64_t n_atoms) {
  return flops_per_atom_point(fidelity) * fidelity.contour_points * n_atoms;
}

double seconds_per_energy(const LsmsFidelity& fidelity,
                          double flops_per_second_per_core) {
  WLSMS_EXPECTS(flops_per_second_per_core > 0.0);
  // One atom per core: the per-energy wall time is the per-atom work, all
  // atoms proceeding concurrently (communication is "a small fraction of the
  // total computation time" per §II-B and is modelled separately by the DES).
  const std::uint64_t per_atom =
      flops_per_atom_point(fidelity) * fidelity.contour_points;
  return static_cast<double>(per_atom) / flops_per_second_per_core;
}

}  // namespace wlsms::lsms
