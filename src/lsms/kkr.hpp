#pragma once

/// \file kkr.hpp
/// Real-space KKR matrix assembly over a local interaction zone and the
/// extraction of the central-atom scattering-path block.
///
/// For atom i with LIZ atoms {0 = i, 1..L} the real-space KKR matrix at
/// complex energy z is, in site (x) spin space,
///
///   M(z) = t(z)^-1 - G0(z) ,
///
/// with site-diagonal 2x2 blocks t_j(e_j, z)^-1 and site-off-diagonal blocks
/// -g0(r_jk; z) * 1_spin (the s-wave free propagator; spin is conserved in
/// propagation, all spin dependence lives in the t-matrices). The
/// scattering-path operator of the zone is tau(z) = M(z)^-1, and the atom's
/// local electronic structure needs only the central 2x2 block tau_00(z) --
/// this is LSMS's "local sub-block of the inverse of the real space KKR
/// matrix" whose evaluation dominates the paper's runtime (§II-B).

#include <cstddef>
#include <vector>

#include "lattice/structure.hpp"
#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"
#include "lsms/scattering.hpp"
#include "spin/moments.hpp"

namespace wlsms::lsms {

/// The geometry of one atom's local interaction zone: the central site plus
/// every structure site (or periodic image) within the LIZ radius.
struct LizGeometry {
  std::size_t center = 0;                  ///< central site index
  std::vector<lattice::Neighbor> members;  ///< all other LIZ atoms
  /// Total number of atoms in the zone, center included.
  std::size_t zone_size() const { return members.size() + 1; }
};

/// Builds the LIZ of `site` with radius `liz_radius` (a0).
LizGeometry build_liz(const lattice::Structure& structure, std::size_t site,
                      double liz_radius);

/// Canonical cache key for a LIZ geometry: the sorted, quantized displacement
/// list. Two atoms with congruent zones (every atom of a perfect periodic
/// crystal) share propagator matrices through this key.
std::vector<std::int64_t> geometry_key(const LizGeometry& liz);

/// Scalar (spin-independent) propagator matrix of a zone at one energy:
/// P[j][k] = g0(|r_j - r_k|; z) for j != k, 0 on the diagonal, with index 0
/// the central atom. Depends on geometry and z only, so it is precomputed
/// once per distinct geometry and reused for every moment configuration.
linalg::ZMatrix scalar_propagator_matrix(const LizGeometry& liz,
                                         Complex z);

/// Assembles the full KKR matrix M(z) = t^-1 - G0 of the zone
/// (2 * zone_size square). `directions` supplies the moment direction of
/// every *structure* site; LIZ members look theirs up via Neighbor::site.
linalg::ZMatrix assemble_kkr_matrix(const Scatterer& scatterer,
                                    const LizGeometry& liz,
                                    const spin::MomentConfiguration& moments,
                                    Complex z,
                                    const linalg::ZMatrix& scalar_propagator);

/// Central 2x2 block of M^-1, computed by factorizing M once and solving for
/// the two central columns (not by forming the full inverse).
spin::Spin2x2 central_tau_block(const linalg::ZMatrix& kkr);

}  // namespace wlsms::lsms
