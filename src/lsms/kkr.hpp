#pragma once

/// \file kkr.hpp
/// Real-space KKR matrix assembly over a local interaction zone and the
/// extraction of the central-atom scattering-path block.
///
/// For atom i with LIZ atoms {0 = i, 1..L} the real-space KKR matrix at
/// complex energy z is, in site (x) spin space,
///
///   M(z) = t(z)^-1 - G0(z) ,
///
/// with site-diagonal 2x2 blocks t_j(e_j, z)^-1 and site-off-diagonal blocks
/// -g0(r_jk; z) * 1_spin (the s-wave free propagator; spin is conserved in
/// propagation, all spin dependence lives in the t-matrices). The
/// scattering-path operator of the zone is tau(z) = M(z)^-1, and the atom's
/// local electronic structure needs only the central 2x2 block tau_00(z) --
/// this is LSMS's "local sub-block of the inverse of the real space KKR
/// matrix" whose evaluation dominates the paper's runtime (§II-B).
///
/// Two evaluation paths are provided:
///  - `central_tau_block`: factorize the full zone matrix (center ordered
///    first) and solve for the two central columns. Reference path.
///  - `central_tau_schur`: order the center *last* and eliminate the
///    member block A by blocked LU, so tau_00 = (D - C A^{-1} B)^{-1} --
///    the Schur complement of the member block. The elimination is the
///    GEMM-rich blocked factorization and the full back-substitution for
///    zone columns is skipped entirely; only geometry-independent 2x2
///    algebra remains. This is the production hot path.

#include <cstddef>
#include <vector>

#include "lattice/structure.hpp"
#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"
#include "lsms/scattering.hpp"
#include "spin/moments.hpp"

namespace wlsms::lsms {

/// The geometry of one atom's local interaction zone: the central site plus
/// every structure site (or periodic image) within the LIZ radius.
struct LizGeometry {
  std::size_t center = 0;                  ///< central site index
  std::vector<lattice::Neighbor> members;  ///< all other LIZ atoms
  /// Total number of atoms in the zone, center included.
  std::size_t zone_size() const { return members.size() + 1; }
};

/// Builds the LIZ of `site` with radius `liz_radius` (a0).
LizGeometry build_liz(const lattice::Structure& structure, std::size_t site,
                      double liz_radius);

/// Canonical cache key for a LIZ geometry: the sorted, quantized displacement
/// list. Two atoms with congruent zones (every atom of a perfect periodic
/// crystal) share propagator matrices through this key.
std::vector<std::int64_t> geometry_key(const LizGeometry& liz);

/// Scalar (spin-independent) propagator matrix of a zone at one energy:
/// P[j][k] = g0(|r_j - r_k|; z) for j != k, 0 on the diagonal, with index 0
/// the central atom. Depends on geometry and z only, so it is precomputed
/// once per distinct geometry and reused for every moment configuration.
linalg::ZMatrix scalar_propagator_matrix(const LizGeometry& liz,
                                         Complex z);

/// Assembles the full KKR matrix M(z) = t^-1 - G0 of the zone
/// (2 * zone_size square). `directions` supplies the moment direction of
/// every *structure* site; LIZ members look theirs up via Neighbor::site.
linalg::ZMatrix assemble_kkr_matrix(const Scatterer& scatterer,
                                    const LizGeometry& liz,
                                    const spin::MomentConfiguration& moments,
                                    Complex z,
                                    const linalg::ZMatrix& scalar_propagator);

/// Central 2x2 block of M^-1, computed by factorizing M once and solving for
/// the two central columns (not by forming the full inverse). Reference.
spin::Spin2x2 central_tau_block(const linalg::ZMatrix& kkr);

/// Configuration-independent blocks of the center-last zone matrix
///
///   M' = [ A  B ]    A: 2L x 2L member-member,  B: 2L x 2 member-center,
///        [ C  D ]    C: 2 x 2L center-member,   D: 2 x 2 center t^-1,
///
/// with only the site-diagonal 2x2 t^-1 blocks of A and all of D depending
/// on the moments. `a0`/`b0`/`c0` hold the -strength * g0 hopping terms
/// (diagonal blocks of a0 zero); one instance per distinct geometry per
/// contour point, shared between congruent zones and reused by every
/// energy evaluation.
struct SchurTemplates {
  linalg::ZMatrix a0;  ///< 2L x 2L member block, t^-1 diagonals left zero
  linalg::ZMatrix b0;  ///< 2L x 2 member-center coupling
  linalg::ZMatrix c0;  ///< 2 x 2L center-member coupling
};

/// Builds the hopping templates of a zone from its scalar propagator matrix
/// (index 0 = center) and the calibrated hybridization strength.
SchurTemplates make_schur_templates(const linalg::ZMatrix& scalar_propagator,
                                    double strength);

/// Reusable workspace for central_tau_schur: the member matrix the blocked
/// LU destroys, the B panel the solve overwrites, and the pivot sequence.
/// Sized on first use per zone order and reused across contour points and
/// energy evaluations (one instance per thread), so the hot path performs
/// no allocation in steady state.
struct SchurWorkspace {
  linalg::ZMatrix a;
  linalg::ZMatrix bx;
  std::vector<std::size_t> pivots;
};

/// Central 2x2 block of the zone's M^-1 via block elimination of the member
/// block: tau_00 = (D - C A^{-1} B)^{-1}. `member_t_inverse[j]` is the
/// inverse t-matrix of LIZ member j (zone order), `center_t_inverse` that
/// of the central atom (= D). Agrees with central_tau_block to roundoff;
/// the member elimination runs the blocked, GEMM-dominated LU.
spin::Spin2x2 central_tau_schur(const SchurTemplates& templates,
                                const spin::Spin2x2& center_t_inverse,
                                const spin::Spin2x2* member_t_inverse,
                                SchurWorkspace& workspace);

/// One zone solve of a batched Schur dispatch. Every item of a batch
/// shares one SchurTemplates — same geometry, same contour point — and
/// differs only in its t^-1 blocks, which is exactly the coalescing key
/// the serving scheduler groups cross-walker solves by.
struct SchurBatchItem {
  const spin::Spin2x2* center_t_inverse = nullptr;
  const spin::Spin2x2* member_t_inverse = nullptr;  ///< zone order, L entries
  spin::Spin2x2* tau = nullptr;                     ///< out: central block
};

/// Computes every item's central tau block. Bit-identical to calling
/// central_tau_schur once per item: the member eliminations advance panel
/// by panel in lock step, with each round's trailing updates issued as one
/// zgemm_view_batch dispatch — work is reordered only BETWEEN matrices,
/// never within one, so each item's floating-point stream is unchanged
/// (DESIGN.md §12). Orders the auto LU algorithm factorizes unblocked (or
/// a single item) fall through to the singleton path directly. `workspaces`
/// is grown to `count` entries and reused across calls. Throws
/// SingularMatrixError on a zero pivot in any item's elimination, matching
/// the singleton failure mode (co-batched items are abandoned mid-solve;
/// the caller retries them individually).
void central_tau_schur_batch(const SchurTemplates& templates,
                             const SchurBatchItem* items, std::size_t count,
                             std::vector<SchurWorkspace>& workspaces);

}  // namespace wlsms::lsms
