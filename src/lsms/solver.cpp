#include "lsms/solver.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "perf/flops.hpp"

namespace wlsms::lsms {

LsmsSolver::LsmsSolver(lattice::Structure structure, LsmsParameters params)
    : structure_(std::move(structure)),
      params_(params),
      scatterer_(params.scattering),
      contour_(semicircle_contour(params.scattering.band_bottom,
                                  params.scattering.fermi_energy,
                                  params.contour_points)) {
  const std::size_t n = structure_.size();
  lizs_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    lizs_.push_back(build_liz(structure_, i, params_.liz_radius));

  // Propagator matrices are pure geometry: share them between congruent
  // zones (every atom of a perfect crystal) through the canonical key.
  std::map<std::vector<std::int64_t>,
           std::shared_ptr<const std::vector<linalg::ZMatrix>>>
      cache;
  propagators_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto key = geometry_key(lizs_[i]);
    auto it = cache.find(key);
    if (it == cache.end()) {
      auto matrices = std::make_shared<std::vector<linalg::ZMatrix>>();
      matrices->reserve(contour_.size());
      for (const ContourPoint& cp : contour_)
        matrices->push_back(scalar_propagator_matrix(lizs_[i], cp.z));
      it = cache.emplace(std::move(key), std::move(matrices)).first;
    }
    propagators_.push_back(it->second);
  }

  // Reverse map: which zones does each site appear in?
  affected_.assign(n, {});
  for (std::size_t i = 0; i < n; ++i) affected_[i].push_back(i);
  for (std::size_t i = 0; i < n; ++i)
    for (const lattice::Neighbor& member : lizs_[i].members)
      if (member.site != i) affected_[member.site].push_back(i);
  for (std::vector<std::size_t>& list : affected_) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
}

double LsmsSolver::zone_energy(const LizGeometry& liz,
                               const spin::MomentConfiguration& moments) const {
  const std::vector<linalg::ZMatrix>& props =
      *propagators_[liz.center];
  Complex accumulated{0.0, 0.0};
  for (std::size_t k = 0; k < contour_.size(); ++k) {
    const linalg::ZMatrix m =
        assemble_kkr_matrix(scatterer_, liz, moments, contour_[k].z, props[k]);
    const spin::Spin2x2 tau = central_tau_block(m);
    const Complex trace = tau[0] + tau[3];
    accumulated += contour_[k].weight * contour_[k].z * trace;
  }
  const double pi = std::acos(-1.0);
  return -accumulated.imag() / pi;
}

double LsmsSolver::local_energy(std::size_t i,
                                const spin::MomentConfiguration& moments) const {
  WLSMS_EXPECTS(i < n_atoms());
  WLSMS_EXPECTS(moments.size() == n_atoms());
  return zone_energy(lizs_[i], moments);
}

LocalEnergies LsmsSolver::energies(
    const spin::MomentConfiguration& moments) const {
  WLSMS_EXPECTS(moments.size() == n_atoms());
  LocalEnergies out;
  out.per_atom.assign(n_atoms(), 0.0);
  const std::int64_t n = static_cast<std::int64_t>(n_atoms());
#pragma omp parallel for schedule(dynamic)
  for (std::int64_t i = 0; i < n; ++i)
    out.per_atom[static_cast<std::size_t>(i)] =
        zone_energy(lizs_[static_cast<std::size_t>(i)], moments);
  for (double e : out.per_atom) out.total += e;
  return out;
}

double LsmsSolver::energy(const spin::MomentConfiguration& moments) const {
  return energies(moments).total;
}

const std::vector<std::size_t>& LsmsSolver::affected_sites(
    std::size_t site) const {
  WLSMS_EXPECTS(site < n_atoms());
  return affected_[site];
}

LocalEnergies LsmsSolver::energy_after_move(
    const spin::MomentConfiguration& moments, const spin::TrialMove& move,
    const LocalEnergies& current) const {
  WLSMS_EXPECTS(moments.size() == n_atoms());
  WLSMS_EXPECTS(current.per_atom.size() == n_atoms());
  WLSMS_EXPECTS(move.site < n_atoms());

  spin::MomentConfiguration trial = moments;
  trial.set(move.site, move.new_direction);

  LocalEnergies out = current;
  const std::vector<std::size_t>& affected = affected_[move.site];
  const std::int64_t n_affected = static_cast<std::int64_t>(affected.size());
#pragma omp parallel for schedule(dynamic)
  for (std::int64_t k = 0; k < n_affected; ++k) {
    const std::size_t i = affected[static_cast<std::size_t>(k)];
    out.per_atom[i] = zone_energy(lizs_[i], trial);
  }
  out.total = 0.0;
  for (double e : out.per_atom) out.total += e;
  return out;
}

std::uint64_t LsmsSolver::flops_per_energy() const {
  std::uint64_t total = 0;
  for (const LizGeometry& liz : lizs_) {
    const std::uint64_t order = 2 * liz.zone_size();
    const std::uint64_t per_point =
        perf::cost::zgetrf(order) + 2 * perf::cost::zgetrs(order, 1);
    total += per_point * contour_.size();
  }
  return total;
}

}  // namespace wlsms::lsms
