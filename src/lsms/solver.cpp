#include "lsms/solver.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "linalg/lu.hpp"
#include "obs/trace.hpp"
#include "perf/flops.hpp"

namespace wlsms::lsms {

namespace {

/// Hard cap on the zone solves one lock-step Schur dispatch carries. Bounds
/// workspace memory (each item holds a 2L x 2L member matrix: order 128 ->
/// 256 KiB, so 64 items stay around 16 MiB) without capping how many
/// requests the serving scheduler may coalesce — larger batches just run
/// as several full dispatches.
constexpr std::size_t kMaxSchurBatch = 64;

/// Items per dispatch actually used. Between-item parallelism only needs a
/// few items per GEMM worker, while every live item's workspace competes
/// for the same cache — so the chunk scales with the worker count instead
/// of always maxing out (on a serial host a small chunk keeps the working
/// set cache-resident and beats one-at-a-time solves outright).
std::size_t schur_chunk_cap() {
  return std::min(kMaxSchurBatch,
                  std::max<std::size_t>(8, 8 * linalg::zgemm_batch_threads()));
}

}  // namespace

LsmsSolver::LsmsSolver(lattice::Structure structure, LsmsParameters params)
    : structure_(std::move(structure)),
      params_(params),
      scatterer_(params.scattering),
      contour_(semicircle_contour(params.scattering.band_bottom,
                                  params.scattering.fermi_energy,
                                  params.contour_points)) {
  const obs::Span span("lsms.build_solver");
  const std::size_t n = structure_.size();
  lizs_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    lizs_.push_back(build_liz(structure_, i, params_.liz_radius));

  // Hopping templates are pure geometry: share them between congruent zones
  // (every atom of a perfect crystal) through the canonical key.
  const double strength = params_.scattering.propagator_strength;
  std::map<std::vector<std::int64_t>,
           std::shared_ptr<const std::vector<SchurTemplates>>>
      cache;
  templates_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto key = geometry_key(lizs_[i]);
    auto it = cache.find(key);
    if (it == cache.end()) {
      auto templates = std::make_shared<std::vector<SchurTemplates>>();
      templates->reserve(contour_.size());
      for (const ContourPoint& cp : contour_)
        templates->push_back(make_schur_templates(
            scalar_propagator_matrix(lizs_[i], cp.z), strength));
      it = cache.emplace(std::move(key), std::move(templates)).first;
    }
    templates_.push_back(it->second);
  }

  // Reverse map: which zones does each site appear in?
  affected_.assign(n, {});
  for (std::size_t i = 0; i < n; ++i) affected_[i].push_back(i);
  for (std::size_t i = 0; i < n; ++i)
    for (const lattice::Neighbor& member : lizs_[i].members)
      if (member.site != i) affected_[member.site].push_back(i);
  for (std::vector<std::size_t>& list : affected_) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }

  const double nan = std::numeric_limits<double>::quiet_NaN();
  t_cache_directions_.assign(n, Vec3{nan, nan, nan});
  t_cache_table_.assign(n * contour_.size(), spin::Spin2x2{});
}

void LsmsSolver::refresh_t_table(const spin::MomentConfiguration& moments,
                                 std::vector<spin::Spin2x2>& out) const {
  const obs::Span span("lsms.t_table_refresh");
  const std::size_t n_points = contour_.size();
  std::lock_guard<std::mutex> lock(t_cache_mutex_);
  for (std::size_t i = 0; i < n_atoms(); ++i) {
    const Vec3& e = moments[i];
    // NaN-initialized cache directions compare unequal to everything, so the
    // first call populates every site; later calls only touch moved sites.
    if (e == t_cache_directions_[i]) continue;
    t_cache_directions_[i] = e;
    spin::Spin2x2* row = t_cache_table_.data() + i * n_points;
    for (std::size_t k = 0; k < n_points; ++k)
      row[k] = scatterer_.t_inverse(e, contour_[k].z);
  }
  out = t_cache_table_;
}

double LsmsSolver::zone_energy(
    const LizGeometry& liz, const std::vector<spin::Spin2x2>& t_table) const {
  const std::vector<SchurTemplates>& templates = *templates_[liz.center];
  const std::size_t n_points = contour_.size();
  const std::size_t n_members = liz.members.size();

  // Per-thread reusable scratch: the member matrix / B panel / pivots the
  // Schur elimination destroys, plus the zone-ordered t^-1 gather. Sized on
  // first use, so steady-state evaluations allocate nothing.
  static thread_local SchurWorkspace workspace;
  static thread_local std::vector<spin::Spin2x2> member_tinv;
  member_tinv.resize(n_members);

  Complex accumulated{0.0, 0.0};
  for (std::size_t k = 0; k < n_points; ++k) {
    const spin::Spin2x2& center = t_table[liz.center * n_points + k];
    for (std::size_t j = 0; j < n_members; ++j)
      member_tinv[j] = t_table[liz.members[j].site * n_points + k];
    const spin::Spin2x2 tau =
        central_tau_schur(templates[k], center, member_tinv.data(), workspace);
    const Complex trace = tau[0] + tau[3];
    accumulated += contour_[k].weight * contour_[k].z * trace;
  }
  const double pi = std::acos(-1.0);
  return -accumulated.imag() / pi;
}

double LsmsSolver::local_energy(std::size_t i,
                                const spin::MomentConfiguration& moments) const {
  WLSMS_EXPECTS(i < n_atoms());
  WLSMS_EXPECTS(moments.size() == n_atoms());
  static thread_local std::vector<spin::Spin2x2> table;
  refresh_t_table(moments, table);
  return zone_energy(lizs_[i], table);
}

LocalEnergies LsmsSolver::energies(
    const spin::MomentConfiguration& moments) const {
  const obs::Span span("lsms.energies");
  WLSMS_EXPECTS(moments.size() == n_atoms());
  std::vector<spin::Spin2x2> table;
  refresh_t_table(moments, table);
  LocalEnergies out;
  out.per_atom.assign(n_atoms(), 0.0);
  const std::int64_t n = static_cast<std::int64_t>(n_atoms());
#pragma omp parallel for schedule(dynamic)
  for (std::int64_t i = 0; i < n; ++i)
    out.per_atom[static_cast<std::size_t>(i)] =
        zone_energy(lizs_[static_cast<std::size_t>(i)], table);
  for (double e : out.per_atom) out.total += e;
  return out;
}

double LsmsSolver::energy(const spin::MomentConfiguration& moments) const {
  return energies(moments).total;
}

std::vector<double> LsmsSolver::shard_energies(
    const spin::MomentConfiguration& moments, std::size_t first,
    std::size_t count) const {
  const obs::Span span("lsms.shard_solve");
  WLSMS_EXPECTS(moments.size() == n_atoms());
  WLSMS_EXPECTS(count >= 1);
  WLSMS_EXPECTS(first + count <= n_atoms());
  std::vector<spin::Spin2x2> table;
  refresh_t_table(moments, table);
  std::vector<double> out(count);
  for (std::size_t k = 0; k < count; ++k)
    out[k] = zone_energy(lizs_[first + k], table);
  return out;
}

std::vector<LocalEnergies> LsmsSolver::batch_energies(
    const std::vector<const spin::MomentConfiguration*>& configs) const {
  const obs::Span span("lsms.batch_energies");
  const std::size_t n_configs = configs.size();
  const std::size_t n = n_atoms();
  const std::size_t n_points = contour_.size();
  for (const spin::MomentConfiguration* config : configs) {
    WLSMS_EXPECTS(config != nullptr);
    WLSMS_EXPECTS(config->size() == n);
  }
  if (n_configs == 0) return {};

  // All scratch is thread-local and persists across calls, like the
  // singleton path's workspace: the serving scheduler dispatches batches
  // back to back, and reallocating (and first-touching) the several MB of
  // per-item Schur workspaces each time costs more than the batching saves.
  static thread_local std::vector<std::vector<spin::Spin2x2>> tables;
  static thread_local std::vector<Complex> acc;
  static thread_local std::vector<SchurWorkspace> workspaces;
  static thread_local std::vector<spin::Spin2x2> member_buf;
  static thread_local std::vector<spin::Spin2x2> taus;
  static thread_local std::vector<SchurBatchItem> items;

  // Per-configuration t^-1 tables, computed directly rather than through
  // the shared incremental cache (which alternating configurations would
  // thrash into full recomputes anyway). t_inverse is pure, so the values
  // are bitwise the ones refresh_t_table hands the singleton path.
  if (tables.size() < n_configs) tables.resize(n_configs);
  for (std::size_t c = 0; c < n_configs; ++c) {
    tables[c].resize(n * n_points);
    for (std::size_t i = 0; i < n; ++i) {
      const Vec3& e = (*configs[c])[i];
      spin::Spin2x2* row = tables[c].data() + i * n_points;
      for (std::size_t k = 0; k < n_points; ++k)
        row[k] = scatterer_.t_inverse(e, contour_[k].z);
    }
  }

  // Group the (config, atom) zone solves by shared hopping templates: one
  // group = one geometry, whose per-contour-point SchurTemplates is the
  // coalescing key of the batched dispatch.
  std::map<const std::vector<SchurTemplates>*,
           std::vector<std::pair<std::size_t, std::size_t>>>
      groups;
  for (std::size_t i = 0; i < n; ++i) {
    auto& list = groups[templates_[i].get()];
    for (std::size_t c = 0; c < n_configs; ++c) list.emplace_back(c, i);
  }

  // Per-(config, atom) contour accumulators, advanced in ascending-k order
  // exactly like zone_energy's serial loop.
  acc.assign(n_configs * n, Complex{0.0, 0.0});

  for (const auto& [templates_ptr, pairs] : groups) {
    const std::vector<SchurTemplates>& templates = *templates_ptr;
    // Congruent zones share the geometry, hence the member count.
    const std::size_t n_members =
        lizs_[pairs.front().second].members.size();
    const std::size_t chunk_cap = schur_chunk_cap();
    for (std::size_t k = 0; k < n_points; ++k) {
      for (std::size_t p0 = 0; p0 < pairs.size(); p0 += chunk_cap) {
        const std::size_t chunk = std::min(chunk_cap, pairs.size() - p0);
        member_buf.resize(chunk * n_members);
        taus.resize(chunk);
        items.resize(chunk);
        for (std::size_t q = 0; q < chunk; ++q) {
          const auto [c, i] = pairs[p0 + q];
          const LizGeometry& liz = lizs_[i];
          const std::vector<spin::Spin2x2>& table = tables[c];
          spin::Spin2x2* gathered = member_buf.data() + q * n_members;
          for (std::size_t j = 0; j < n_members; ++j)
            gathered[j] = table[liz.members[j].site * n_points + k];
          items[q].center_t_inverse = &table[liz.center * n_points + k];
          items[q].member_t_inverse = gathered;
          items[q].tau = &taus[q];
        }
        central_tau_schur_batch(templates[k], items.data(), chunk,
                                workspaces);
        for (std::size_t q = 0; q < chunk; ++q) {
          const auto [c, i] = pairs[p0 + q];
          const Complex trace = taus[q][0] + taus[q][3];
          acc[c * n + i] += contour_[k].weight * contour_[k].z * trace;
        }
      }
    }
  }

  const double pi = std::acos(-1.0);
  std::vector<LocalEnergies> out(n_configs);
  for (std::size_t c = 0; c < n_configs; ++c) {
    out[c].per_atom.resize(n);
    for (std::size_t i = 0; i < n; ++i)
      out[c].per_atom[i] = -acc[c * n + i].imag() / pi;
    for (double e : out[c].per_atom) out[c].total += e;
  }
  return out;
}

const std::vector<std::size_t>& LsmsSolver::affected_sites(
    std::size_t site) const {
  WLSMS_EXPECTS(site < n_atoms());
  return affected_[site];
}

LocalEnergies LsmsSolver::energy_after_move(
    const spin::MomentConfiguration& moments, const spin::TrialMove& move,
    const LocalEnergies& current) const {
  const obs::Span span("lsms.energy_after_move");
  WLSMS_EXPECTS(moments.size() == n_atoms());
  WLSMS_EXPECTS(current.per_atom.size() == n_atoms());
  WLSMS_EXPECTS(move.site < n_atoms());

  spin::MomentConfiguration trial = moments;
  trial.set(move.site, move.new_direction);

  // The incremental refresh recomputes t^-1 only for sites whose direction
  // differs from the cached configuration -- for the usual accept/reject
  // walk that is the moved site alone (plus a possible revert).
  std::vector<spin::Spin2x2> table;
  refresh_t_table(trial, table);

  LocalEnergies out = current;
  const std::vector<std::size_t>& affected = affected_[move.site];
  const std::int64_t n_affected = static_cast<std::int64_t>(affected.size());
#pragma omp parallel for schedule(dynamic)
  for (std::int64_t k = 0; k < n_affected; ++k) {
    const std::size_t i = affected[static_cast<std::size_t>(k)];
    out.per_atom[i] = zone_energy(lizs_[i], table);
  }
  out.total = 0.0;
  for (double e : out.per_atom) out.total += e;
  return out;
}

std::uint64_t LsmsSolver::flops_per_zone_energy(std::size_t i) const {
  WLSMS_EXPECTS(i < n_atoms());
  const std::uint64_t l = lizs_[i].members.size();
  if (l == 0) return 0;  // zone is the bare center: closed-form 2x2 only
  const std::uint64_t order = 2 * l;
  // Member-block factorization + two-column panel solve + 2x2 Schur GEMM;
  // assembly and the closed-form 2x2 inversion are uncounted on both the
  // analytic and instrumented sides.
  const std::uint64_t per_point = linalg::zgetrf_flops(order) +
                                  perf::cost::zgetrs(order, 2) +
                                  perf::cost::zgemm(2, 2, order);
  return per_point * contour_.size();
}

std::uint64_t LsmsSolver::flops_per_energy() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n_atoms(); ++i) total += flops_per_zone_energy(i);
  return total;
}

}  // namespace wlsms::lsms
