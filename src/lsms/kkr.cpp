#include "lsms/kkr.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>

#include "common/error.hpp"
#include "linalg/blas.hpp"

namespace wlsms::lsms {

LizGeometry build_liz(const lattice::Structure& structure, std::size_t site,
                      double liz_radius) {
  WLSMS_EXPECTS(liz_radius > 0.0);
  LizGeometry liz;
  liz.center = site;
  liz.members = structure.neighbors_within(site, liz_radius);
  return liz;
}

std::vector<std::int64_t> geometry_key(const LizGeometry& liz) {
  // Quantize to 1e-9 a0; displacements are already sorted by distance and
  // site index by neighbors_within, which is stable across congruent zones
  // of a periodic crystal only up to site relabeling -- so the key uses the
  // displacement vectors alone, re-sorted lexicographically.
  std::vector<std::array<std::int64_t, 3>> rows;
  rows.reserve(liz.members.size());
  const auto quantize = [](double x) {
    return static_cast<std::int64_t>(std::llround(x * 1e9));
  };
  for (const lattice::Neighbor& n : liz.members)
    rows.push_back({quantize(n.displacement.x), quantize(n.displacement.y),
                    quantize(n.displacement.z)});
  std::sort(rows.begin(), rows.end());
  std::vector<std::int64_t> key;
  key.reserve(rows.size() * 3);
  for (const auto& r : rows) key.insert(key.end(), r.begin(), r.end());
  return key;
}

linalg::ZMatrix scalar_propagator_matrix(const LizGeometry& liz, Complex z) {
  const std::size_t n = liz.zone_size();
  linalg::ZMatrix p(n, n);

  // Positions relative to the centre; index 0 is the centre itself.
  std::vector<Vec3> pos(n);
  pos[0] = Vec3{0.0, 0.0, 0.0};
  for (std::size_t j = 0; j < liz.members.size(); ++j)
    pos[j + 1] = liz.members[j].displacement;

  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t k = 0; k < n; ++k) {
      if (j == k) continue;
      const double r = (pos[j] - pos[k]).norm();
      // Distinct LIZ members can be images of the same structure site, but
      // they are distinct scatterers at distinct positions, so r > 0 always.
      p(j, k) = free_propagator(r, z);
    }
  return p;
}

linalg::ZMatrix assemble_kkr_matrix(const Scatterer& scatterer,
                                    const LizGeometry& liz,
                                    const spin::MomentConfiguration& moments,
                                    Complex z,
                                    const linalg::ZMatrix& scalar_propagator) {
  const std::size_t n = liz.zone_size();
  WLSMS_EXPECTS(scalar_propagator.rows() == n && scalar_propagator.cols() == n);
  linalg::ZMatrix m(2 * n, 2 * n);

  // Off-diagonal: -g0(r_jk) in each spin channel (spin-conserving hopping),
  // scaled by the calibrated hybridization strength.
  const double strength = scatterer.params().propagator_strength;
  for (std::size_t k = 0; k < n; ++k)
    for (std::size_t j = 0; j < n; ++j) {
      if (j == k) continue;
      const Complex g = strength * scalar_propagator(j, k);
      m(2 * j, 2 * k) = -g;
      m(2 * j + 1, 2 * k + 1) = -g;
    }

  // Diagonal: inverse single-site t-matrices, rotated to each moment.
  const auto put_block = [&m](std::size_t j, const spin::Spin2x2& b) {
    m(2 * j, 2 * j) = b[0];
    m(2 * j, 2 * j + 1) = b[1];
    m(2 * j + 1, 2 * j) = b[2];
    m(2 * j + 1, 2 * j + 1) = b[3];
  };
  put_block(0, scatterer.t_inverse(moments[liz.center], z));
  for (std::size_t j = 0; j < liz.members.size(); ++j)
    put_block(j + 1, scatterer.t_inverse(moments[liz.members[j].site], z));

  return m;
}

spin::Spin2x2 central_tau_block(const linalg::ZMatrix& kkr) {
  WLSMS_EXPECTS(kkr.square() && kkr.rows() >= 2);
  const linalg::LuFactorization lu(kkr);
  const std::size_t n = kkr.rows();

  std::vector<Complex> col0(n, Complex{0.0, 0.0});
  std::vector<Complex> col1(n, Complex{0.0, 0.0});
  col0[0] = Complex{1.0, 0.0};
  col1[1] = Complex{1.0, 0.0};
  lu.solve_in_place(col0.data());
  lu.solve_in_place(col1.data());

  return {col0[0], col1[0], col0[1], col1[1]};
}

SchurTemplates make_schur_templates(const linalg::ZMatrix& scalar_propagator,
                                    double strength) {
  WLSMS_EXPECTS(scalar_propagator.square() && scalar_propagator.rows() >= 1);
  const std::size_t l = scalar_propagator.rows() - 1;  // member count
  SchurTemplates t;
  t.a0 = linalg::ZMatrix(2 * l, 2 * l);
  t.b0 = linalg::ZMatrix(2 * l, 2);
  t.c0 = linalg::ZMatrix(2, 2 * l);
  for (std::size_t k = 0; k < l; ++k) {
    for (std::size_t j = 0; j < l; ++j) {
      if (j == k) continue;
      const Complex g = -strength * scalar_propagator(j + 1, k + 1);
      t.a0(2 * j, 2 * k) = g;
      t.a0(2 * j + 1, 2 * k + 1) = g;
    }
    const Complex gb = -strength * scalar_propagator(k + 1, 0);
    t.b0(2 * k, 0) = gb;
    t.b0(2 * k + 1, 1) = gb;
    const Complex gc = -strength * scalar_propagator(0, k + 1);
    t.c0(0, 2 * k) = gc;
    t.c0(1, 2 * k + 1) = gc;
  }
  return t;
}

spin::Spin2x2 central_tau_schur(const SchurTemplates& templates,
                                const spin::Spin2x2& center_t_inverse,
                                const spin::Spin2x2* member_t_inverse,
                                SchurWorkspace& ws) {
  const std::size_t n = templates.a0.rows();  // 2L
  const std::size_t l = n / 2;
  // Schur complement S = D - C A^{-1} B, stored column-major in s
  // ({s00, s10, s01, s11}); starts as D = the center's t^-1 block.
  std::array<Complex, 4> s = {center_t_inverse[0], center_t_inverse[2],
                              center_t_inverse[1], center_t_inverse[3]};
  if (l > 0) {
    // A = hopping template + t^-1 site diagonals; the template's diagonal
    // blocks are zero, so overwriting them places the moment dependence.
    ws.a = templates.a0;
    for (std::size_t j = 0; j < l; ++j) {
      const spin::Spin2x2& ti = member_t_inverse[j];
      ws.a(2 * j, 2 * j) = ti[0];
      ws.a(2 * j, 2 * j + 1) = ti[1];
      ws.a(2 * j + 1, 2 * j) = ti[2];
      ws.a(2 * j + 1, 2 * j + 1) = ti[3];
    }
    ws.bx = templates.b0;
    linalg::zgetrf_in_place(ws.a, ws.pivots);
    linalg::zgetrs_in_place(ws.a, ws.pivots, ws.bx.data(), 2, n);
    // S -= C * X with X = A^{-1} B.
    linalg::zgemm_view(2, 2, n, Complex{-1.0, 0.0}, templates.c0.data(), 2,
                       ws.bx.data(), n, Complex{1.0, 0.0}, s.data(), 2);
  }
  // tau_00 = S^{-1}, closed form for the 2x2 block. Match the reference
  // full-LU path's failure mode (zgetrf throws on a zero pivot) instead of
  // silently propagating Inf/NaN tau into the energies.
  const Complex det = s[0] * s[3] - s[2] * s[1];
  if (det == Complex{0.0, 0.0}) throw linalg::SingularMatrixError(n);
  const Complex inv_det = Complex{1.0, 0.0} / det;
  return {s[3] * inv_det, -s[2] * inv_det, -s[1] * inv_det, s[0] * inv_det};
}

void central_tau_schur_batch(const SchurTemplates& templates,
                             const SchurBatchItem* items, std::size_t count,
                             std::vector<SchurWorkspace>& workspaces) {
  if (count == 0) return;
  const std::size_t n = templates.a0.rows();  // 2L
  const std::size_t l = n / 2;
  if (l == 0 || n < linalg::kLuBlockedThreshold || count == 1 ||
      linalg::zgemm_batch_threads() <= 1) {
    // Orders the auto algorithm factorizes unblocked have no trailing
    // GEMMs to fuse (and a lone item has nothing to fuse with); the
    // singleton path is already the exact arithmetic. The lock-step
    // elimination exists solely to expose between-item parallelism to the
    // GEMM worker pool — with a single worker it only multiplies the live
    // working set (count x the per-item Schur matrices, evicting each
    // other every panel round), so a serial host takes the cache-friendly
    // one-item-at-a-time path instead.
    if (workspaces.empty()) workspaces.resize(1);
    for (std::size_t i = 0; i < count; ++i)
      *items[i].tau =
          central_tau_schur(templates, *items[i].center_t_inverse,
                            items[i].member_t_inverse, workspaces[0]);
    return;
  }
  if (workspaces.size() < count) workspaces.resize(count);

  // Stage every member matrix and B panel exactly as the singleton path
  // does, then advance all eliminations in lock step: per panel round,
  // every item factorizes its pivot panel and runs its row-panel TRSM,
  // and the trailing updates go out as one batched GEMM dispatch.
  for (std::size_t i = 0; i < count; ++i) {
    SchurWorkspace& ws = workspaces[i];
    ws.a = templates.a0;
    for (std::size_t j = 0; j < l; ++j) {
      const spin::Spin2x2& ti = items[i].member_t_inverse[j];
      ws.a(2 * j, 2 * j) = ti[0];
      ws.a(2 * j, 2 * j + 1) = ti[1];
      ws.a(2 * j + 1, 2 * j) = ti[2];
      ws.a(2 * j + 1, 2 * j + 1) = ti[3];
    }
    ws.bx = templates.b0;
  }
  std::vector<linalg::BlockedLuStepper> steppers;
  steppers.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    steppers.emplace_back(workspaces[i].a, workspaces[i].pivots);
  std::vector<linalg::ZgemmBatchItem> updates;
  updates.reserve(count);
  while (!steppers.front().done()) {
    updates.clear();
    for (linalg::BlockedLuStepper& stepper : steppers) {
      const linalg::ZgemmBatchItem update = stepper.step();
      if (update.m != 0) updates.push_back(update);
    }
    linalg::zgemm_view_batch(updates.data(), updates.size());
  }

  for (std::size_t i = 0; i < count; ++i) {
    SchurWorkspace& ws = workspaces[i];
    linalg::zgetrs_in_place(ws.a, ws.pivots, ws.bx.data(), 2, n);
    const SchurBatchItem& item = items[i];
    std::array<Complex, 4> s = {(*item.center_t_inverse)[0],
                                (*item.center_t_inverse)[2],
                                (*item.center_t_inverse)[1],
                                (*item.center_t_inverse)[3]};
    linalg::zgemm_view(2, 2, n, Complex{-1.0, 0.0}, templates.c0.data(), 2,
                       ws.bx.data(), n, Complex{1.0, 0.0}, s.data(), 2);
    const Complex det = s[0] * s[3] - s[2] * s[1];
    if (det == Complex{0.0, 0.0}) throw linalg::SingularMatrixError(n);
    const Complex inv_det = Complex{1.0, 0.0} / det;
    *item.tau = {s[3] * inv_det, -s[2] * inv_det, -s[1] * inv_det,
                 s[0] * inv_det};
  }
}

}  // namespace wlsms::lsms
