#include "lsms/kkr.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>

#include "common/error.hpp"

namespace wlsms::lsms {

LizGeometry build_liz(const lattice::Structure& structure, std::size_t site,
                      double liz_radius) {
  WLSMS_EXPECTS(liz_radius > 0.0);
  LizGeometry liz;
  liz.center = site;
  liz.members = structure.neighbors_within(site, liz_radius);
  return liz;
}

std::vector<std::int64_t> geometry_key(const LizGeometry& liz) {
  // Quantize to 1e-9 a0; displacements are already sorted by distance and
  // site index by neighbors_within, which is stable across congruent zones
  // of a periodic crystal only up to site relabeling -- so the key uses the
  // displacement vectors alone, re-sorted lexicographically.
  std::vector<std::array<std::int64_t, 3>> rows;
  rows.reserve(liz.members.size());
  const auto quantize = [](double x) {
    return static_cast<std::int64_t>(std::llround(x * 1e9));
  };
  for (const lattice::Neighbor& n : liz.members)
    rows.push_back({quantize(n.displacement.x), quantize(n.displacement.y),
                    quantize(n.displacement.z)});
  std::sort(rows.begin(), rows.end());
  std::vector<std::int64_t> key;
  key.reserve(rows.size() * 3);
  for (const auto& r : rows) key.insert(key.end(), r.begin(), r.end());
  return key;
}

linalg::ZMatrix scalar_propagator_matrix(const LizGeometry& liz, Complex z) {
  const std::size_t n = liz.zone_size();
  linalg::ZMatrix p(n, n);

  // Positions relative to the centre; index 0 is the centre itself.
  std::vector<Vec3> pos(n);
  pos[0] = Vec3{0.0, 0.0, 0.0};
  for (std::size_t j = 0; j < liz.members.size(); ++j)
    pos[j + 1] = liz.members[j].displacement;

  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t k = 0; k < n; ++k) {
      if (j == k) continue;
      const double r = (pos[j] - pos[k]).norm();
      // Distinct LIZ members can be images of the same structure site, but
      // they are distinct scatterers at distinct positions, so r > 0 always.
      p(j, k) = free_propagator(r, z);
    }
  return p;
}

linalg::ZMatrix assemble_kkr_matrix(const Scatterer& scatterer,
                                    const LizGeometry& liz,
                                    const spin::MomentConfiguration& moments,
                                    Complex z,
                                    const linalg::ZMatrix& scalar_propagator) {
  const std::size_t n = liz.zone_size();
  WLSMS_EXPECTS(scalar_propagator.rows() == n && scalar_propagator.cols() == n);
  linalg::ZMatrix m(2 * n, 2 * n);

  // Off-diagonal: -g0(r_jk) in each spin channel (spin-conserving hopping),
  // scaled by the calibrated hybridization strength.
  const double strength = scatterer.params().propagator_strength;
  for (std::size_t k = 0; k < n; ++k)
    for (std::size_t j = 0; j < n; ++j) {
      if (j == k) continue;
      const Complex g = strength * scalar_propagator(j, k);
      m(2 * j, 2 * k) = -g;
      m(2 * j + 1, 2 * k + 1) = -g;
    }

  // Diagonal: inverse single-site t-matrices, rotated to each moment.
  const auto put_block = [&m](std::size_t j, const spin::Spin2x2& b) {
    m(2 * j, 2 * j) = b[0];
    m(2 * j, 2 * j + 1) = b[1];
    m(2 * j + 1, 2 * j) = b[2];
    m(2 * j + 1, 2 * j + 1) = b[3];
  };
  put_block(0, scatterer.t_inverse(moments[liz.center], z));
  for (std::size_t j = 0; j < liz.members.size(); ++j)
    put_block(j + 1, scatterer.t_inverse(moments[liz.members[j].site], z));

  return m;
}

spin::Spin2x2 central_tau_block(const linalg::ZMatrix& kkr) {
  WLSMS_EXPECTS(kkr.square() && kkr.rows() >= 2);
  const linalg::LuFactorization lu(kkr);
  const std::size_t n = kkr.rows();

  std::vector<Complex> col0(n, Complex{0.0, 0.0});
  std::vector<Complex> col1(n, Complex{0.0, 0.0});
  col0[0] = Complex{1.0, 0.0};
  col1[1] = Complex{1.0, 0.0};
  lu.solve_in_place(col0.data());
  lu.solve_in_place(col1.data());

  return {col0[0], col1[0], col0[1], col1[1]};
}

}  // namespace wlsms::lsms
