#pragma once

/// \file contour.hpp
/// Complex-energy integration contour.
///
/// LSMS exploits the analyticity of the Green function to move the energy
/// integral off the real axis: "the required integral over electron energy
/// levels can be analytically continued onto a contour in the complex plane
/// where the imaginary part of the energy further restricts its range"
/// (paper §II-B, property 2). We use the standard semicircular contour from
/// the band bottom E_b to the Fermi energy E_F in the upper half-plane,
/// discretized with Gauss-Legendre quadrature:
///
///   z(theta) = c + R e^{i theta},  theta: pi -> 0,
///   c = (E_b + E_F)/2,  R = (E_F - E_b)/2,
///   integral f(z) dz  ~=  sum_k w_k f(z_k),  w_k = i R e^{i theta_k} dtheta_k.

#include <complex>
#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace wlsms::lsms {

using linalg::Complex;

/// One quadrature node: evaluation point and complex weight (the Jacobian
/// dz/dtheta folded into the Gauss-Legendre weight).
struct ContourPoint {
  Complex z;
  Complex weight;
};

/// Gauss-Legendre nodes and weights on [-1, 1]. Computed by Newton iteration
/// on the Legendre polynomial; accurate to ~1e-15 for the orders used here.
void gauss_legendre(std::size_t n, std::vector<double>& nodes,
                    std::vector<double>& weights);

/// Semicircular contour from `e_bottom` to `e_fermi` through the upper
/// half-plane with `n_points` Gauss-Legendre nodes. Integrating an analytic
/// f along the returned points (sum of weight * f(z)) equals the real-axis
/// integral from e_bottom to e_fermi.
std::vector<ContourPoint> semicircle_contour(double e_bottom, double e_fermi,
                                             std::size_t n_points);

}  // namespace wlsms::lsms
