#pragma once

/// \file scattering.hpp
/// Single-site scattering: the "t-matrices" of the multiple-scattering
/// method.
///
/// The paper's LSMS solves the Kohn-Sham problem with lmax = 3 muffin-tin
/// scatterers; per DESIGN.md §2 this reproduction replaces the self-consistent
/// potential with a *spin-split resonant s-channel scatterer* whose phase
/// shift has the Wigner resonance form
///
///   cot delta_sigma(E) = 2 (E_sigma - E) / Gamma ,
///
/// i.e. a narrow "d-band-like" resonance at E_up for majority spin and E_dn
/// for minority spin (exchange splitting E_dn - E_up). The on-shell t-matrix
///
///   t_sigma(z) = -1/(kappa (cot delta_sigma(z) - i)) ,   kappa = sqrt(z)
///
/// is analytic in the upper half of the complex energy plane (its pole sits
/// at z = E_sigma - i Gamma/2), which is what the contour integration of the
/// Green function requires (paper §II-B, property 2).
///
/// The frozen-potential moment rotation enters exactly as in LSMS: the
/// exchange part of the potential is rotated, so
/// t_i(z) = t_bar(z) 1 + dt(z) (sigma . e_i) in spin space.

#include <complex>

#include "common/vec3.hpp"
#include "spin/rotation.hpp"

namespace wlsms::lsms {

using linalg::Complex;
using spin::Spin2x2;

/// Parameters of the spin-split resonant scatterer plus the energy window
/// over which occupied states are integrated.
struct ScatteringParameters {
  double resonance_up = 0.30;    ///< majority-spin resonance energy [Ry]
  double resonance_down = 0.50;  ///< minority-spin resonance energy [Ry]
  double width = 0.10;           ///< resonance full width Gamma [Ry]
  double band_bottom = 0.02;     ///< contour start E_b [Ry]
  double fermi_energy = 0.42;    ///< contour end E_F [Ry]
  /// Dimensionless hybridization strength multiplying the inter-site
  /// propagator. The single s channel underestimates the hybridization a
  /// five-fold-degenerate d resonance provides; this factor stands in for
  /// that orbital multiplicity and is calibrated (fe_parameters.hpp) so the
  /// extracted exchange reproduces the Fe Curie-temperature scale.
  double propagator_strength = 1.0;

  /// Exchange splitting E_dn - E_up [Ry].
  double splitting() const { return resonance_down - resonance_up; }
};

/// Complex momentum kappa = sqrt(z) with Im kappa >= 0 (decaying free
/// propagator in the upper half-plane; Rydberg units, E = kappa^2).
Complex momentum(Complex z);

/// Free-space s-wave propagator between sites separated by r (> 0):
/// g0(r; z) = exp(i kappa r) / r. Its exponential decay for Im z > 0 is the
/// "nearsightedness" that justifies the LIZ truncation (paper §II-B).
Complex free_propagator(double r, Complex z);

/// Single-site scattering amplitudes.
class Scatterer {
 public:
  explicit Scatterer(const ScatteringParameters& params);

  const ScatteringParameters& params() const { return params_; }

  /// Spin-resolved on-shell t-matrix at complex energy z.
  Complex t_up(Complex z) const;
  Complex t_down(Complex z) const;

  /// 2x2 spin-space t-matrix for an atom whose moment points along e.
  Spin2x2 t_matrix(const Vec3& e, Complex z) const;

  /// Inverse of t_matrix(e, z), computed in closed form:
  /// (a 1 + b sigma.e)^-1 = (a 1 - b sigma.e) / (a^2 - b^2).
  Spin2x2 t_inverse(const Vec3& e, Complex z) const;

  /// Real-axis phase shift delta_sigma(E) in (0, pi), for diagnostics.
  double phase_shift_up(double e) const;
  double phase_shift_down(double e) const;

 private:
  Complex t_resonant(double resonance, Complex z) const;
  ScatteringParameters params_;
};

}  // namespace wlsms::lsms
