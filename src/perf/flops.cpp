#include "perf/flops.hpp"

#include <atomic>

namespace wlsms::perf {

namespace {

std::atomic<std::uint64_t>& global_counter() {
  static std::atomic<std::uint64_t> counter{0};
  return counter;
}

// Per-thread tally that drains into the global counter in chunks to keep
// atomic traffic off the kernel hot path.
struct ThreadTally {
  std::uint64_t local = 0;
  std::uint64_t drained = 0;
  ~ThreadTally() { global_counter().fetch_add(local - drained); }
};

thread_local ThreadTally tally;

constexpr std::uint64_t kDrainThreshold = 1ULL << 20;

}  // namespace

void add_flops(std::uint64_t count) {
  tally.local += count;
  if (tally.local - tally.drained >= kDrainThreshold) {
    global_counter().fetch_add(tally.local - tally.drained);
    tally.drained = tally.local;
  }
}

std::uint64_t thread_flops() { return tally.local; }

std::uint64_t total_flops() {
  // Include this thread's undrained part so single-threaded callers see an
  // exact value without a synchronization point.
  return global_counter().load() + (tally.local - tally.drained);
}

FlopWindow::FlopWindow() : start_(total_flops()) {}

std::uint64_t FlopWindow::elapsed() const { return total_flops() - start_; }

}  // namespace wlsms::perf
