#include "perf/flops.hpp"

#include <atomic>

namespace wlsms::perf {

namespace {

std::atomic<std::uint64_t>& global_counter(std::size_t kernel) {
  static std::atomic<std::uint64_t> counters[kKernelCount]{};
  return counters[kernel];
}

// Per-thread, per-kernel tally that drains into the global counters in
// chunks to keep atomic traffic off the kernel hot path.
struct ThreadTally {
  std::uint64_t local[kKernelCount]{};
  std::uint64_t drained[kKernelCount]{};
  ~ThreadTally() {
    for (std::size_t k = 0; k < kKernelCount; ++k)
      global_counter(k).fetch_add(local[k] - drained[k]);
  }
};

thread_local ThreadTally tally;

constexpr std::uint64_t kDrainThreshold = 1ULL << 20;

}  // namespace

void add_flops(Kernel kernel, std::uint64_t count) {
  const auto k = static_cast<std::size_t>(kernel);
  tally.local[k] += count;
  if (tally.local[k] - tally.drained[k] >= kDrainThreshold) {
    global_counter(k).fetch_add(tally.local[k] - tally.drained[k]);
    tally.drained[k] = tally.local[k];
  }
}

void add_flops(std::uint64_t count) { add_flops(Kernel::kOther, count); }

std::uint64_t thread_flops() {
  std::uint64_t total = 0;
  for (std::size_t k = 0; k < kKernelCount; ++k) total += tally.local[k];
  return total;
}

std::uint64_t total_flops(Kernel kernel) {
  const auto k = static_cast<std::size_t>(kernel);
  // Include this thread's undrained part so single-threaded callers see an
  // exact value without a synchronization point.
  return global_counter(k).load() + (tally.local[k] - tally.drained[k]);
}

std::uint64_t total_flops() {
  std::uint64_t total = 0;
  for (std::size_t k = 0; k < kKernelCount; ++k)
    total += total_flops(static_cast<Kernel>(k));
  return total;
}

FlopWindow::FlopWindow() {
  for (std::size_t k = 0; k < kKernelCount; ++k)
    start_[k] = total_flops(static_cast<Kernel>(k));
}

std::uint64_t FlopWindow::elapsed() const {
  std::uint64_t total = 0;
  for (std::size_t k = 0; k < kKernelCount; ++k)
    total += elapsed(static_cast<Kernel>(k));
  return total;
}

std::uint64_t FlopWindow::elapsed(Kernel kernel) const {
  const auto k = static_cast<std::size_t>(kernel);
  return total_flops(kernel) - start_[k];
}

double FlopWindow::gemm_fraction() const {
  const std::uint64_t total = elapsed();
  if (total == 0) return 0.0;
  return static_cast<double>(elapsed(Kernel::kZgemm)) /
         static_cast<double>(total);
}

}  // namespace wlsms::perf
