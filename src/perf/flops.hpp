#pragma once

/// \file flops.hpp
/// Floating-point-operation accounting.
///
/// The paper instruments WL-LSMS with PAPI FP_OPS counters to report the
/// sustained petaflop number (Table II). PAPI is hardware-specific, so this
/// library provides the equivalent observable in software: every linear
/// algebra kernel reports the number of real floating-point operations it
/// retired into a thread-local counter, which can be aggregated across
/// threads. The discrete-event cluster model (src/cluster) combines these
/// counts with the machine description to compute sustained Flop/s at scale.

#include <cstdint>

namespace wlsms::perf {

/// Adds `count` retired real floating-point operations to this thread's
/// counter. Kernels call this once per call with an analytic count, so the
/// overhead is negligible.
void add_flops(std::uint64_t count);

/// Flops retired by the calling thread since thread start (monotonic).
std::uint64_t thread_flops();

/// Flops retired by all threads that ever reported, aggregated.
std::uint64_t total_flops();

/// RAII window over the *global* counter: records the total at construction
/// and reports the delta. Captures work done by every thread, so it is the
/// right tool around an OpenMP region.
class FlopWindow {
 public:
  FlopWindow();
  /// Flops retired globally since construction.
  std::uint64_t elapsed() const;

 private:
  std::uint64_t start_;
};

/// Analytic real-flop counts for the complex kernels (1 complex multiply =
/// 6 real flops, 1 complex add = 2 real flops), matching what PAPI would
/// count on scalar hardware.
namespace cost {

/// C += A*B with A (m x k), B (k x n), complex double.
constexpr std::uint64_t zgemm(std::uint64_t m, std::uint64_t n,
                              std::uint64_t k) {
  return 8ULL * m * n * k;
}

/// LU factorization with partial pivoting of an n x n complex matrix.
constexpr std::uint64_t zgetrf(std::uint64_t n) {
  return 8ULL * n * n * n / 3ULL;
}

/// Triangular solves for one right-hand side after zgetrf.
constexpr std::uint64_t zgetrs(std::uint64_t n, std::uint64_t nrhs) {
  return 8ULL * n * n * nrhs;
}

}  // namespace cost

}  // namespace wlsms::perf
