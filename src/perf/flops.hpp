#pragma once

/// \file flops.hpp
/// Floating-point-operation accounting with per-kernel attribution.
///
/// The paper instruments WL-LSMS with PAPI FP_OPS counters to report the
/// sustained petaflop number (Table II) and attributes "the bulk of the
/// calculation" to ZGEMM (§II-B). PAPI is hardware-specific, so this
/// library provides the equivalent observable in software: every linear
/// algebra kernel reports the number of real floating-point operations it
/// retired into a thread-local counter, tagged with the kernel that retired
/// them, so the harness can report both sustained Flop/s and the fraction
/// of flops flowing through ZGEMM. The discrete-event cluster model
/// (src/cluster) combines these counts with the machine description to
/// compute sustained Flop/s at scale.

#include <array>
#include <cstddef>
#include <cstdint>

namespace wlsms::perf {

/// Kernel classes flops are attributed to. kOther collects everything that
/// is not one of the named level-3 kernels (GEMV, small closed-form ops).
enum class Kernel : unsigned {
  kZgemm = 0,  ///< packed/naive matrix-matrix multiply
  kTrsm = 1,   ///< triangular solves (TRSM row panels, GETRS substitution)
  kPanel = 2,  ///< unblocked LU panel factorization (rank-1 updates, scaling)
  kOther = 3,  ///< everything else (GEMV, accumulations)
};

inline constexpr std::size_t kKernelCount = 4;

/// Adds `count` retired real floating-point operations to this thread's
/// counter for `kernel`. Kernels call this once per call with an analytic
/// count, so the overhead is negligible.
void add_flops(Kernel kernel, std::uint64_t count);

/// Unattributed convenience overload: books under Kernel::kOther.
void add_flops(std::uint64_t count);

/// Flops retired by the calling thread since thread start (monotonic),
/// summed over kernels.
std::uint64_t thread_flops();

/// Flops retired by all threads that ever reported, aggregated over kernels.
std::uint64_t total_flops();

/// Aggregated flops retired by one kernel class across all threads.
std::uint64_t total_flops(Kernel kernel);

/// RAII window over the *global* counters: records the totals at
/// construction and reports deltas. Captures work done by every thread, so
/// it is the right tool around an OpenMP region.
class FlopWindow {
 public:
  FlopWindow();
  /// Flops retired globally since construction, all kernels.
  std::uint64_t elapsed() const;
  /// Flops retired globally since construction by one kernel class.
  std::uint64_t elapsed(Kernel kernel) const;
  /// Fraction of the window's flops retired by ZGEMM (0 if none retired).
  double gemm_fraction() const;

 private:
  std::array<std::uint64_t, kKernelCount> start_{};
};

/// Analytic real-flop counts for the complex kernels (1 complex multiply =
/// 6 real flops, 1 complex add = 2 real flops, so 1 complex fused
/// multiply-add = 8 real flops), matching what PAPI would count on scalar
/// hardware.
namespace cost {

/// C += A*B with A (m x k), B (k x n), complex double.
constexpr std::uint64_t zgemm(std::uint64_t m, std::uint64_t n,
                              std::uint64_t k) {
  return 8ULL * m * n * k;
}

/// LU factorization with partial pivoting of an n x n complex matrix
/// (classical leading-order count; the DES cost model uses this).
constexpr std::uint64_t zgetrf(std::uint64_t n) {
  return 8ULL * n * n * n / 3ULL;
}

/// Triangular solves for one right-hand side after zgetrf.
constexpr std::uint64_t zgetrs(std::uint64_t n, std::uint64_t nrhs) {
  return 8ULL * n * n * nrhs;
}

/// Unit-lower triangular solve L X = B with L (n x n, unit diagonal) and
/// nrhs right-hand sides: per column, n(n-1)/2 complex fused multiply-adds.
constexpr std::uint64_t ztrsm_unit_lower(std::uint64_t n,
                                         std::uint64_t nrhs) {
  return n == 0 ? 0 : 4ULL * n * (n - 1) * nrhs;
}

/// Unblocked partial-pivoting LU of an m x n panel (m >= n): per column j,
/// one reciprocal (booked as 6 flops), (m-j-1) complex scalings (6 flops
/// each) and (m-j-1)(n-j-1) complex fused multiply-adds (8 flops each).
/// This is the exact count the panel kernel retires, used so instrumented
/// counters and the analytic model agree to the flop.
constexpr std::uint64_t zgetrf_panel(std::uint64_t m, std::uint64_t n) {
  std::uint64_t total = 0;
  const std::uint64_t cols = m < n ? m : n;
  for (std::uint64_t j = 0; j < cols; ++j) {
    const std::uint64_t below = m - j - 1;
    total += 6 + 6 * below + 8 * below * (n - j - 1);
  }
  return total;
}

/// Blocked right-looking LU of an n x n matrix with block size nb: per
/// panel, an unblocked panel factorization + a unit-lower TRSM on the row
/// panel + a ZGEMM trailing update. Exactly the sum of what the blocked
/// kernel's pieces retire.
constexpr std::uint64_t zgetrf_blocked(std::uint64_t n, std::uint64_t nb) {
  std::uint64_t total = 0;
  for (std::uint64_t k0 = 0; k0 < n; k0 += nb) {
    const std::uint64_t w = (n - k0) < nb ? (n - k0) : nb;
    const std::uint64_t rem = n - k0 - w;
    total += zgetrf_panel(n - k0, w);
    if (rem > 0) total += ztrsm_unit_lower(w, rem) + zgemm(rem, rem, w);
  }
  return total;
}

}  // namespace cost

}  // namespace wlsms::perf
