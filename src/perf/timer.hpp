#pragma once

/// \file timer.hpp
/// Wall-clock timing helpers; the software analogue of the paper's
/// PAPI_get_real_usec() measurements.

#include <chrono>

namespace wlsms::perf {

/// Monotonic stopwatch.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace wlsms::perf
