#include "heisenberg/heisenberg.hpp"

#include <cmath>

#include "common/error.hpp"
#include "lattice/shells.hpp"

namespace wlsms::heisenberg {

HeisenbergModel::HeisenbergModel(const lattice::Structure& structure,
                                 std::vector<double> j_shells)
    : n_sites_(structure.size()) {
  WLSMS_EXPECTS(!j_shells.empty());

  // Determine shell radii from site 0 (the paper's crystals are monoatomic,
  // all sites equivalent); grow the probe cutoff until enough shells exist.
  double cutoff = 2.0;
  std::vector<lattice::Shell> shells;
  for (int attempt = 0; attempt < 32; ++attempt) {
    shells = lattice::neighbor_shells(structure, 0, cutoff);
    if (shells.size() >= j_shells.size()) break;
    cutoff *= 1.5;
  }
  WLSMS_ENSURES(shells.size() >= j_shells.size());
  const double max_radius = shells[j_shells.size() - 1].radius + 1e-6;

  for (std::size_t i = 0; i < n_sites_; ++i) {
    for (const lattice::Neighbor& n :
         structure.neighbors_within(i, max_radius)) {
      if (n.site <= i) continue;  // each unordered bond once; drop self-image
      for (std::size_t s = 0; s < j_shells.size(); ++s) {
        if (std::abs(n.distance - shells[s].radius) < 1e-6) {
          if (j_shells[s] != 0.0) bonds_.push_back({i, n.site, j_shells[s]});
          break;
        }
      }
    }
  }

  adjacency_.assign(n_sites_, {});
  for (const Bond& b : bonds_) {
    adjacency_[b.site_a].push_back({b.site_b, b.j});
    adjacency_[b.site_b].push_back({b.site_a, b.j});
  }
  anisotropy_.assign(n_sites_, {});
}

void HeisenbergModel::set_uniform_anisotropy(double k, const Vec3& axis) {
  WLSMS_EXPECTS(axis.norm2() > 0.0);
  const Vec3 unit = axis.normalized();
  for (SiteAnisotropy& a : anisotropy_) a = {k, unit};
}

void HeisenbergModel::set_site_anisotropy(
    const std::vector<std::size_t>& sites, double k, const Vec3& axis) {
  WLSMS_EXPECTS(axis.norm2() > 0.0);
  const Vec3 unit = axis.normalized();
  for (std::size_t i : sites) {
    WLSMS_EXPECTS(i < n_sites_);
    anisotropy_[i] = {k, unit};
  }
}

double HeisenbergModel::energy(const spin::MomentConfiguration& moments) const {
  WLSMS_EXPECTS(moments.size() == n_sites_);
  double e = 0.0;
  for (const Bond& b : bonds_)
    e -= b.j * moments[b.site_a].dot(moments[b.site_b]);
  for (std::size_t i = 0; i < n_sites_; ++i) {
    const SiteAnisotropy& a = anisotropy_[i];
    if (a.k != 0.0) {
      const double proj = moments[i].dot(a.axis);
      e -= a.k * proj * proj;
    }
  }
  return e;
}

double HeisenbergModel::energy_delta(const spin::MomentConfiguration& moments,
                                     const spin::TrialMove& move) const {
  WLSMS_EXPECTS(moments.size() == n_sites_);
  WLSMS_EXPECTS(move.site < n_sites_);
  const Vec3 old_dir = moments[move.site];
  const Vec3 new_dir = move.new_direction.normalized();
  const Vec3 diff = new_dir - old_dir;

  double delta = 0.0;
  for (const HalfBond& hb : adjacency_[move.site])
    delta -= hb.j * diff.dot(moments[hb.other]);
  const SiteAnisotropy& a = anisotropy_[move.site];
  if (a.k != 0.0) {
    const double new_proj = new_dir.dot(a.axis);
    const double old_proj = old_dir.dot(a.axis);
    delta -= a.k * (new_proj * new_proj - old_proj * old_proj);
  }
  return delta;
}

double HeisenbergModel::anisotropy_constant(std::size_t i) const {
  WLSMS_EXPECTS(i < n_sites_);
  return anisotropy_[i].k;
}

const Vec3& HeisenbergModel::anisotropy_axis(std::size_t i) const {
  WLSMS_EXPECTS(i < n_sites_);
  return anisotropy_[i].axis;
}

Vec3 HeisenbergModel::effective_field(
    std::size_t i, const spin::MomentConfiguration& moments) const {
  WLSMS_EXPECTS(i < n_sites_);
  WLSMS_EXPECTS(moments.size() == n_sites_);
  Vec3 field;
  for (const HalfBond& hb : adjacency_[i]) field += hb.j * moments[hb.other];
  const SiteAnisotropy& a = anisotropy_[i];
  if (a.k != 0.0) field += (2.0 * a.k * moments[i].dot(a.axis)) * a.axis;
  return field;
}

double HeisenbergModel::ferromagnetic_energy() const {
  double e = 0.0;
  for (const Bond& b : bonds_) e -= b.j;
  for (const SiteAnisotropy& a : anisotropy_) e -= a.k;
  return e;
}

double HeisenbergModel::staggered_energy(
    const std::vector<bool>& sublattice) const {
  WLSMS_EXPECTS(sublattice.size() == n_sites_);
  double e = 0.0;
  for (const Bond& b : bonds_) {
    const double sa = sublattice[b.site_a] ? -1.0 : 1.0;
    const double sb = sublattice[b.site_b] ? -1.0 : 1.0;
    e -= b.j * sa * sb;
  }
  for (const SiteAnisotropy& a : anisotropy_) e -= a.k;
  return e;
}

}  // namespace wlsms::heisenberg
