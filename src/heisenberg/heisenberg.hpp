#pragma once

/// \file heisenberg.hpp
/// Classical Heisenberg Hamiltonian on neighbour shells, with optional
/// uniaxial anisotropy:
///
///   H({e}) = -Sum_s J_s Sum_{bonds (i,j) in shell s} e_i . e_j
///            - Sum_i K_i (e_i . k_hat)^2 .
///
/// Two roles in this reproduction (DESIGN.md §2):
///  1. the *surrogate* Hamiltonian carrying the LSMS-extracted couplings
///     J_s, on which the production Wang-Landau runs converge g(E);
///  2. the *empirical models* the paper contrasts with (FePt nanoparticle
///     switching with anisotropy, ref [14]) in examples and benches.
///
/// Total energies are O(bonds); single-moment updates are O(coordination)
/// via the cached per-site bond lists.

#include <cstddef>
#include <vector>

#include "common/vec3.hpp"
#include "lattice/structure.hpp"
#include "spin/moments.hpp"
#include "spin/moves.hpp"

namespace wlsms::heisenberg {

/// A single exchange bond with its coupling [Ry].
struct Bond {
  std::size_t site_a = 0;
  std::size_t site_b = 0;
  double j = 0.0;
};

/// Classical Heisenberg model over an explicit bond list.
class HeisenbergModel {
 public:
  /// Builds the model for `structure` with per-shell couplings `j_shells`
  /// [Ry] (shell 1 = nearest neighbours, ...). Shells are detected from the
  /// structure's own geometry. Self-image bonds (periodic image of the same
  /// site) contribute a constant and are dropped.
  HeisenbergModel(const lattice::Structure& structure,
                  std::vector<double> j_shells);

  /// Adds uniaxial anisotropy -K (e_i . axis)^2 on every site [Ry].
  void set_uniform_anisotropy(double k, const Vec3& axis);

  /// Adds anisotropy on selected sites only (e.g. the surface shell of a
  /// nanoparticle).
  void set_site_anisotropy(const std::vector<std::size_t>& sites, double k,
                           const Vec3& axis);

  std::size_t n_sites() const { return n_sites_; }
  const std::vector<Bond>& bonds() const { return bonds_; }

  /// Anisotropy constant K_i of site i [Ry] (0 when unset).
  double anisotropy_constant(std::size_t i) const;
  /// Easy axis of site i (unit vector; +z when unset).
  const Vec3& anisotropy_axis(std::size_t i) const;

  /// Effective field -dE/de_i at site i [Ry per unit moment]:
  /// sum_j J_ij e_j + 2 K_i (e_i . n_i) n_i. This is the torque source of
  /// spin-dynamics integrators (dynamics/llg.hpp).
  Vec3 effective_field(std::size_t i,
                       const spin::MomentConfiguration& moments) const;

  /// Total energy [Ry].
  double energy(const spin::MomentConfiguration& moments) const;

  /// Energy change if `move` were applied to `moments` (O(coordination)).
  double energy_delta(const spin::MomentConfiguration& moments,
                      const spin::TrialMove& move) const;

  /// Ground-state (ferromagnetic) energy when all J_s >= 0 and no
  /// anisotropy: -Sum_bonds J. With anisotropy along `axis`, moments align
  /// with the axis and the anisotropy adds -Sum_i K_i.
  double ferromagnetic_energy() const;

  /// Energy of the +/-z staggered configuration given a sublattice parity
  /// (used to bracket the energy range, paper §II-A: delta = 2% of the
  /// FM-AFM difference).
  double staggered_energy(const std::vector<bool>& sublattice) const;

 private:
  struct SiteAnisotropy {
    double k = 0.0;
    Vec3 axis{0.0, 0.0, 1.0};
  };
  struct HalfBond {
    std::size_t other;
    double j;
  };

  std::size_t n_sites_ = 0;
  std::vector<Bond> bonds_;
  std::vector<std::vector<HalfBond>> adjacency_;
  std::vector<SiteAnisotropy> anisotropy_;
};

}  // namespace wlsms::heisenberg
