#pragma once

/// \file metrics.hpp
/// Process-wide metrics registry: named counters, gauges, and fixed-bucket
/// histograms — the software analogue of the paper's PAPI counter harness,
/// generalized from flops (src/perf keeps those) to run health: WL
/// acceptance rates, comm reroutes, retrieve latencies, GEMM-pool queue
/// depths.
///
/// Concurrency model: every writer-side operation lands in a thread-local
/// shard (one relaxed atomic per thread per metric), so hot-path cost is a
/// thread-local cache lookup plus one uncontended atomic add — cheap enough
/// for call-granularity instrumentation and clean under tsan. snapshot()
/// aggregates shards; with all writers quiescent the aggregate equals the
/// exact sum of every recorded operation (no sampling, no loss — shards of
/// exited threads are retained by the owning metric).
///
/// Lifetime: metrics are created through Registry::instance() and are never
/// destroyed (the registry is a leaked singleton), so cached references and
/// thread-local shard pointers stay valid for the life of the process.
/// fork() discipline: the registry installs pthread_atfork handlers that
/// hold every metric mutex across the fork, so forked worker ranks (the
/// kProcess transport) can keep instrumenting without inheriting a mutex
/// locked by a vanished thread.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace wlsms::obs {

/// Monotonic event count, sharded per thread.
class Counter {
 public:
  void add(std::uint64_t n);
  void inc() { add(1); }

  /// Sum over all shards. Exact when writers are quiescent; otherwise a
  /// consistent lower bound of the operations that happened-before the call.
  std::uint64_t value() const;

 private:
  friend class Registry;
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  struct Shard;
  Shard& shard();

  mutable std::mutex mutex_;                   ///< guards shards_ growth
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// Last-writer-wins instantaneous value (acceptance rate, ln f, queue depth).
class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class Registry;
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  std::atomic<double> value_{0.0};
};

/// Point-in-time aggregate of one histogram.
struct HistogramSnapshot {
  /// Finite bucket upper bounds (strictly increasing). counts has one more
  /// entry than upper_bounds: the final bucket collects every observation
  /// above the last bound (and NaN, which compares into no finite bucket).
  std::vector<double> upper_bounds;
  std::vector<std::uint64_t> counts;
  std::uint64_t total = 0;  ///< sum of counts
  double sum = 0.0;         ///< sum of finite observed values
};

/// Fixed-bucket histogram, sharded per thread. A value v lands in the first
/// bucket whose upper bound satisfies v <= bound ("le" semantics: a value
/// exactly on a boundary belongs to the bucket it bounds); values above the
/// last bound — and NaN — land in the overflow bucket.
class Histogram {
 public:
  void observe(double value);
  const std::vector<double>& upper_bounds() const { return bounds_; }
  HistogramSnapshot snapshot_values() const;

 private:
  friend class Registry;
  explicit Histogram(std::vector<double> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  struct Shard;
  Shard& shard();

  std::vector<double> bounds_;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// Aggregate view of every registered metric.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

/// The process-wide name -> metric table. Lookups take a mutex; hot call
/// sites cache the returned reference in a function-local static.
class Registry {
 public:
  static Registry& instance();

  /// Returns the counter registered under `name`, creating it on first use.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);

  /// Returns the histogram registered under `name`, creating it with the
  /// given finite bucket upper bounds (strictly increasing, non-empty) on
  /// first use. Re-registration with different bounds throws wlsms::Error.
  Histogram& histogram(std::string_view name, std::vector<double> bounds);

  /// Aggregates every metric. Exact iff writers are quiescent.
  MetricsSnapshot snapshot() const;

  /// Zeroes every counter/histogram shard and every gauge. Testing and
  /// benchmarking only; callers must ensure no concurrent writers.
  void reset_values_for_testing();

 private:
  Registry() = default;

  void lock_for_fork();
  void unlock_after_fork();
  static void install_fork_handlers();

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace wlsms::obs
