#pragma once

/// \file snapshot.hpp
/// Run-health snapshots: a background thread that periodically serializes
/// the metrics registry — plus the per-kernel flop counters of src/perf and
/// the derived Flop/s and gemm_fraction, the paper's Table II observables —
/// to JSON Lines. One JSON object per line, timestamped with the writer's
/// monotonic clock; a final summary record (reason "final") is written when
/// the writer is destroyed, so even a crashed-early run leaves a parseable
/// stream with a terminal aggregate.
///
/// Snapshot record schema (all fields always present):
///   t_ms           milliseconds since the writer started
///   reason         "start" | "interval" | <caller tag> | "final"
///   counters       { name: integer, ... }
///   gauges         { name: number, ... }
///   histograms     { name: {bounds:[...], counts:[...], count, sum, mean} }
///   flops          { zgemm, trsm, panel, other, total }  (process lifetime)
///   flops_per_s    total-flop rate since the previous record
///   gemm_fraction  ZGEMM share of flops retired since the writer started

#include <array>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>

#include "perf/flops.hpp"

namespace wlsms::obs {

struct SnapshotConfig {
  std::string path;  ///< JSONL output file (truncated on open)
  std::chrono::milliseconds interval{1000};
};

/// Periodic JSONL exporter of the registry + flop counters.
class SnapshotWriter {
 public:
  /// Opens `config.path`, writes a "start" record, and launches the
  /// background thread. Throws wlsms::Error if the file cannot be opened.
  explicit SnapshotWriter(SnapshotConfig config);

  /// Stops the thread and writes the "final" summary record.
  ~SnapshotWriter();

  SnapshotWriter(const SnapshotWriter&) = delete;
  SnapshotWriter& operator=(const SnapshotWriter&) = delete;

  /// Serializes one record immediately (in the calling thread), tagged with
  /// `reason`. Safe to call concurrently with the background thread.
  void write_record(const char* reason);

 private:
  using Clock = std::chrono::steady_clock;

  void writer_loop();
  std::string render_record(const char* reason);

  SnapshotConfig config_;
  std::FILE* file_ = nullptr;
  Clock::time_point start_;

  std::mutex write_mutex_;  ///< serializes render (rate state) + fwrite
  Clock::time_point last_time_;
  std::uint64_t last_total_flops_ = 0;
  std::array<std::uint64_t, perf::kKernelCount> run_start_flops_{};

  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  bool stopping_ = false;
  std::thread thread_;
};

}  // namespace wlsms::obs
