#include "obs/trace.hpp"

#include <pthread.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <random>

#include "common/error.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace wlsms::obs {

namespace {

using Clock = std::chrono::steady_clock;

// One thread's event buffer. The ring (buf/next/size/dropped) is shared
// with collectors and guarded by `mutex`; the span stack and id counter are
// touched only by the owning thread.
struct ThreadRing {
  std::mutex mutex;
  std::vector<TraceEvent> buf;
  std::size_t capacity = 0;
  std::size_t next = 0;  ///< slot the next event lands in (== oldest when full)
  std::size_t size = 0;
  std::uint64_t dropped = 0;

  std::uint32_t tid = 0;
  std::uint64_t next_local_id = 1;        ///< owner-thread only
  std::vector<std::uint64_t> span_stack;  ///< owner-thread only
};

struct TraceState {
  std::atomic<bool> enabled{false};
  std::mutex mutex;  ///< guards rings registration, capacity, and metadata
  std::vector<std::unique_ptr<ThreadRing>> rings;
  std::size_t capacity = kDefaultTraceRingCapacity;
  Clock::time_point epoch = Clock::now();
  /// Wall-clock instant of `epoch`, so merged traces and logs can line up
  /// on real time even across machines.
  std::uint64_t wall_epoch_ms = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  /// Random nonzero per-process id; 0 = not yet drawn (lazily, and re-drawn
  /// after fork so child ranks never collide with the parent).
  std::atomic<std::uint64_t> trace_node{0};
  std::atomic<double> clock_offset_us{0.0};
  std::atomic<std::uint64_t> clock_reference{0};
  std::string process_name = "wlsms";
};

TraceState& state() {
  // Leaked for the same reason as the metrics registry: spans may run
  // during static destruction of other translation units.
  static TraceState* s = [] {
    // Mirror metrics.cpp: hold the trace locks across fork() so a child
    // worker rank never inherits a mutex locked by a vanished thread.
    pthread_atfork(
        [] {
          state().mutex.lock();
          for (std::unique_ptr<ThreadRing>& ring : state().rings)
            ring->mutex.lock();
        },
        [] {
          for (std::unique_ptr<ThreadRing>& ring : state().rings)
            ring->mutex.unlock();
          state().mutex.unlock();
        },
        [] {
          for (std::unique_ptr<ThreadRing>& ring : state().rings)
            ring->mutex.unlock();
          state().mutex.unlock();
          // The child is a new process: force a fresh trace-node draw so
          // its spans never alias the parent's in a merged trace.
          state().trace_node.store(0, std::memory_order_relaxed);
        });
    return new TraceState();
  }();
  return *s;
}

thread_local ThreadRing* tl_ring = nullptr;

ThreadRing& ring_for_this_thread() {
  if (tl_ring != nullptr) return *tl_ring;
  TraceState& s = state();
  const std::scoped_lock lock(s.mutex);
  s.rings.push_back(std::make_unique<ThreadRing>());
  ThreadRing* ring = s.rings.back().get();
  ring->capacity = s.capacity;
  ring->buf.resize(ring->capacity);
  ring->tid = static_cast<std::uint32_t>(s.rings.size());
  tl_ring = ring;
  return *ring;
}

std::uint64_t now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            state().epoch)
          .count());
}

Counter& dropped_counter() {
  static Counter& counter =
      Registry::instance().counter("trace.dropped_events");
  return counter;
}

// Pushes one completed event into `ring`, counting an overwritten oldest
// event as dropped. The ring mutex is taken inside.
void record_event(ThreadRing& ring, const TraceEvent& event) {
  bool dropped = false;
  {
    const std::scoped_lock lock(ring.mutex);
    ring.buf[ring.next] = event;
    ring.next = (ring.next + 1) % ring.capacity;
    if (ring.size < ring.capacity) {
      ++ring.size;
    } else {
      ++ring.dropped;  // the slot we just overwrote held the oldest event
      dropped = true;
    }
  }
  if (dropped) dropped_counter().inc();
}

}  // namespace

void enable_tracing(std::size_t ring_capacity) {
  WLSMS_EXPECTS(ring_capacity >= 1);
  TraceState& s = state();
  {
    const std::scoped_lock lock(s.mutex);
    s.capacity = ring_capacity;
  }
  s.enabled.store(true, std::memory_order_relaxed);
}

void disable_tracing() {
  state().enabled.store(false, std::memory_order_relaxed);
}

bool tracing_enabled() {
  return state().enabled.load(std::memory_order_relaxed);
}

std::uint64_t trace_now_us() { return now_us(); }

std::uint64_t local_trace_node() {
  TraceState& s = state();
  std::uint64_t node = s.trace_node.load(std::memory_order_relaxed);
  if (node != 0) return node;
  // Draw a 48-bit nonzero id: the JSON writer stores numbers as doubles,
  // and 48 bits round-trip exactly where a full u64 would not.
  std::random_device rd;
  do {
    node = (static_cast<std::uint64_t>(rd()) << 32 | rd()) &
           ((std::uint64_t{1} << 48) - 1);
  } while (node == 0);
  std::uint64_t expected = 0;
  // Lost race: another thread drew first; use theirs.
  if (!s.trace_node.compare_exchange_strong(expected, node,
                                            std::memory_order_relaxed))
    node = expected;
  return node;
}

void set_clock_offset(double offset_us, std::uint64_t reference_node) {
  TraceState& s = state();
  s.clock_offset_us.store(offset_us, std::memory_order_relaxed);
  s.clock_reference.store(reference_node, std::memory_order_relaxed);
}

double clock_offset_us() {
  return state().clock_offset_us.load(std::memory_order_relaxed);
}

void set_trace_process_name(const std::string& name) {
  TraceState& s = state();
  const std::scoped_lock lock(s.mutex);
  s.process_name = name;
}

TraceContext current_trace_context() {
  if (!state().enabled.load(std::memory_order_relaxed)) return {};
  ThreadRing& ring = ring_for_this_thread();
  return {local_trace_node(),
          ring.span_stack.empty() ? 0 : ring.span_stack.back()};
}

Span::Span(const char* name) {
  if (!state().enabled.load(std::memory_order_relaxed)) return;
  ThreadRing& ring = ring_for_this_thread();
  // Copy now, not at destruction: `name` may be the c_str() of a temporary
  // that is gone before the span ends.
  std::strncpy(name_, name, kTraceNameCapacity);
  parent_ = ring.span_stack.empty() ? 0 : ring.span_stack.back();
  // Ids are allocated per thread (tid in the high bits), so no global
  // atomic sits on the span hot path.
  id_ = (static_cast<std::uint64_t>(ring.tid) << 32) | ring.next_local_id++;
  ring.span_stack.push_back(id_);
  ring_ = &ring;
  begin_us_ = now_us();
}

Span::Span(const char* name, const TraceContext& remote_parent) {
  if (!state().enabled.load(std::memory_order_relaxed)) return;
  ThreadRing& ring = ring_for_this_thread();
  std::strncpy(name_, name, kTraceNameCapacity);
  if (remote_parent.trace_id != 0 &&
      remote_parent.trace_id == local_trace_node()) {
    // The "remote" parent lives in this very process (in-process transport,
    // or a client and daemon sharing a binary in tests): link it locally so
    // the single-file trace already nests without a merge step.
    parent_ = remote_parent.span_id;
  } else if (remote_parent.trace_id != 0) {
    remote_trace_ = remote_parent.trace_id;
    remote_parent_ = remote_parent.span_id;
  } else {
    parent_ = ring.span_stack.empty() ? 0 : ring.span_stack.back();
  }
  id_ = (static_cast<std::uint64_t>(ring.tid) << 32) | ring.next_local_id++;
  ring.span_stack.push_back(id_);
  ring_ = &ring;
  begin_us_ = now_us();
}

Span::~Span() {
  if (ring_ == nullptr) return;
  const std::uint64_t end = now_us();
  ThreadRing& ring = *static_cast<ThreadRing*>(ring_);
  // Spans are scoped objects: destruction order is LIFO per thread.
  ring.span_stack.pop_back();

  TraceEvent event;
  std::memcpy(event.name, name_, sizeof name_);
  event.begin_us = begin_us_;
  event.dur_us = end - begin_us_;
  event.tid = ring.tid;
  event.id = id_;
  event.parent = parent_;
  event.remote_trace = remote_trace_;
  event.remote_parent = remote_parent_;
  record_event(ring, event);
}

void emit_span(const char* name, std::uint64_t begin_us, std::uint64_t end_us,
               const TraceContext& remote_parent) {
  if (!state().enabled.load(std::memory_order_relaxed)) return;
  ThreadRing& ring = ring_for_this_thread();

  TraceEvent event;
  std::strncpy(event.name, name, kTraceNameCapacity);
  event.begin_us = begin_us;
  event.dur_us = end_us > begin_us ? end_us - begin_us : 0;
  event.tid = ring.tid;
  event.id = (static_cast<std::uint64_t>(ring.tid) << 32) |
             ring.next_local_id++;
  if (remote_parent.trace_id != 0 &&
      remote_parent.trace_id == local_trace_node()) {
    event.parent = remote_parent.span_id;
  } else if (remote_parent.trace_id != 0) {
    event.remote_trace = remote_parent.trace_id;
    event.remote_parent = remote_parent.span_id;
  }
  record_event(ring, event);
}

std::vector<TraceEvent> collect_trace_events() {
  std::vector<TraceEvent> events;
  TraceState& s = state();
  const std::scoped_lock lock(s.mutex);
  for (const std::unique_ptr<ThreadRing>& ring : s.rings) {
    const std::scoped_lock ring_lock(ring->mutex);
    const std::size_t oldest =
        ring->size < ring->capacity ? 0 : ring->next;
    for (std::size_t k = 0; k < ring->size; ++k)
      events.push_back(ring->buf[(oldest + k) % ring->capacity]);
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.begin_us != b.begin_us ? a.begin_us < b.begin_us
                                              : a.id < b.id;
            });
  return events;
}

std::uint64_t dropped_trace_events() {
  std::uint64_t total = 0;
  TraceState& s = state();
  const std::scoped_lock lock(s.mutex);
  for (const std::unique_ptr<ThreadRing>& ring : s.rings) {
    const std::scoped_lock ring_lock(ring->mutex);
    total += ring->dropped;
  }
  return total;
}

void reset_trace_for_testing() {
  TraceState& s = state();
  const std::scoped_lock lock(s.mutex);
  for (const std::unique_ptr<ThreadRing>& ring : s.rings) {
    const std::scoped_lock ring_lock(ring->mutex);
    ring->next = 0;
    ring->size = 0;
    ring->dropped = 0;
    // Capacity changes from a later enable_tracing() apply on reset too,
    // so tests can shrink the ring of an already-registered thread.
    if (ring->capacity != s.capacity) {
      ring->capacity = s.capacity;
      ring->buf.assign(ring->capacity, TraceEvent{});
    }
  }
}

void write_chrome_trace(const std::string& path) {
  const std::vector<TraceEvent> events = collect_trace_events();

  JsonValue::Array array;
  array.reserve(events.size());
  for (const TraceEvent& event : events) {
    JsonValue::Object entry;
    entry.emplace("name", JsonValue(std::string(event.name)));
    entry.emplace("cat", JsonValue(std::string("wlsms")));
    entry.emplace("ph", JsonValue(std::string("X")));
    entry.emplace("ts", JsonValue(static_cast<double>(event.begin_us)));
    entry.emplace("dur", JsonValue(static_cast<double>(event.dur_us)));
    entry.emplace("pid", JsonValue(0.0));
    entry.emplace("tid", JsonValue(static_cast<double>(event.tid)));
    JsonValue::Object args;
    args.emplace("id", JsonValue(static_cast<double>(event.id)));
    args.emplace("parent", JsonValue(static_cast<double>(event.parent)));
    if (event.remote_trace != 0) {
      args.emplace("remote_trace",
                   JsonValue(static_cast<double>(event.remote_trace)));
      args.emplace("remote_parent",
                   JsonValue(static_cast<double>(event.remote_parent)));
    }
    entry.emplace("args", JsonValue(std::move(args)));
    array.push_back(JsonValue(std::move(entry)));
  }
  JsonValue::Object root;
  root.emplace("traceEvents", JsonValue(std::move(array)));
  root.emplace("displayTimeUnit", JsonValue(std::string("ms")));
  root.emplace("droppedEvents",
               JsonValue(static_cast<double>(dropped_trace_events())));
  // Merge metadata (tools/trace_merge.py); Perfetto ignores unknown keys.
  TraceState& s = state();
  root.emplace("trace_node",
               JsonValue(static_cast<double>(local_trace_node())));
  root.emplace("clock_offset_us",
               JsonValue(s.clock_offset_us.load(std::memory_order_relaxed)));
  root.emplace("clock_reference",
               JsonValue(static_cast<double>(
                   s.clock_reference.load(std::memory_order_relaxed))));
  root.emplace("wall_epoch_ms",
               JsonValue(static_cast<double>(s.wall_epoch_ms)));
  {
    const std::scoped_lock lock(s.mutex);
    root.emplace("process", JsonValue(s.process_name));
  }

  const std::string text = JsonValue(std::move(root)).dump();
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr)
    throw Error("cannot open trace output '" + path + "'");
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), file);
  const int close_rc = std::fclose(file);
  if (written != text.size() || close_rc != 0)
    throw Error("short write to trace output '" + path + "'");
}

}  // namespace wlsms::obs
