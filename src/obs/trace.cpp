#include "obs/trace.hpp"

#include <pthread.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>

#include "common/error.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace wlsms::obs {

namespace {

using Clock = std::chrono::steady_clock;

// One thread's event buffer. The ring (buf/next/size/dropped) is shared
// with collectors and guarded by `mutex`; the span stack and id counter are
// touched only by the owning thread.
struct ThreadRing {
  std::mutex mutex;
  std::vector<TraceEvent> buf;
  std::size_t capacity = 0;
  std::size_t next = 0;  ///< slot the next event lands in (== oldest when full)
  std::size_t size = 0;
  std::uint64_t dropped = 0;

  std::uint32_t tid = 0;
  std::uint64_t next_local_id = 1;        ///< owner-thread only
  std::vector<std::uint64_t> span_stack;  ///< owner-thread only
};

struct TraceState {
  std::atomic<bool> enabled{false};
  std::mutex mutex;  ///< guards rings registration and capacity
  std::vector<std::unique_ptr<ThreadRing>> rings;
  std::size_t capacity = kDefaultTraceRingCapacity;
  Clock::time_point epoch = Clock::now();
};

TraceState& state() {
  // Leaked for the same reason as the metrics registry: spans may run
  // during static destruction of other translation units.
  static TraceState* s = [] {
    // Mirror metrics.cpp: hold the trace locks across fork() so a child
    // worker rank never inherits a mutex locked by a vanished thread.
    pthread_atfork(
        [] {
          state().mutex.lock();
          for (std::unique_ptr<ThreadRing>& ring : state().rings)
            ring->mutex.lock();
        },
        [] {
          for (std::unique_ptr<ThreadRing>& ring : state().rings)
            ring->mutex.unlock();
          state().mutex.unlock();
        },
        [] {
          for (std::unique_ptr<ThreadRing>& ring : state().rings)
            ring->mutex.unlock();
          state().mutex.unlock();
        });
    return new TraceState();
  }();
  return *s;
}

thread_local ThreadRing* tl_ring = nullptr;

ThreadRing& ring_for_this_thread() {
  if (tl_ring != nullptr) return *tl_ring;
  TraceState& s = state();
  const std::scoped_lock lock(s.mutex);
  s.rings.push_back(std::make_unique<ThreadRing>());
  ThreadRing* ring = s.rings.back().get();
  ring->capacity = s.capacity;
  ring->buf.resize(ring->capacity);
  ring->tid = static_cast<std::uint32_t>(s.rings.size());
  tl_ring = ring;
  return *ring;
}

std::uint64_t now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            state().epoch)
          .count());
}

Counter& dropped_counter() {
  static Counter& counter =
      Registry::instance().counter("trace.dropped_events");
  return counter;
}

}  // namespace

void enable_tracing(std::size_t ring_capacity) {
  WLSMS_EXPECTS(ring_capacity >= 1);
  TraceState& s = state();
  {
    const std::scoped_lock lock(s.mutex);
    s.capacity = ring_capacity;
  }
  s.enabled.store(true, std::memory_order_relaxed);
}

void disable_tracing() {
  state().enabled.store(false, std::memory_order_relaxed);
}

bool tracing_enabled() {
  return state().enabled.load(std::memory_order_relaxed);
}

Span::Span(const char* name) {
  if (!state().enabled.load(std::memory_order_relaxed)) return;
  ThreadRing& ring = ring_for_this_thread();
  // Copy now, not at destruction: `name` may be the c_str() of a temporary
  // that is gone before the span ends.
  std::strncpy(name_, name, kTraceNameCapacity);
  parent_ = ring.span_stack.empty() ? 0 : ring.span_stack.back();
  // Ids are allocated per thread (tid in the high bits), so no global
  // atomic sits on the span hot path.
  id_ = (static_cast<std::uint64_t>(ring.tid) << 32) | ring.next_local_id++;
  ring.span_stack.push_back(id_);
  ring_ = &ring;
  begin_us_ = now_us();
}

Span::~Span() {
  if (ring_ == nullptr) return;
  const std::uint64_t end = now_us();
  ThreadRing& ring = *static_cast<ThreadRing*>(ring_);
  // Spans are scoped objects: destruction order is LIFO per thread.
  ring.span_stack.pop_back();

  TraceEvent event;
  std::memcpy(event.name, name_, sizeof name_);
  event.begin_us = begin_us_;
  event.dur_us = end - begin_us_;
  event.tid = ring.tid;
  event.id = id_;
  event.parent = parent_;

  bool dropped = false;
  {
    const std::scoped_lock lock(ring.mutex);
    ring.buf[ring.next] = event;
    ring.next = (ring.next + 1) % ring.capacity;
    if (ring.size < ring.capacity) {
      ++ring.size;
    } else {
      ++ring.dropped;  // the slot we just overwrote held the oldest event
      dropped = true;
    }
  }
  if (dropped) dropped_counter().inc();
}

std::vector<TraceEvent> collect_trace_events() {
  std::vector<TraceEvent> events;
  TraceState& s = state();
  const std::scoped_lock lock(s.mutex);
  for (const std::unique_ptr<ThreadRing>& ring : s.rings) {
    const std::scoped_lock ring_lock(ring->mutex);
    const std::size_t oldest =
        ring->size < ring->capacity ? 0 : ring->next;
    for (std::size_t k = 0; k < ring->size; ++k)
      events.push_back(ring->buf[(oldest + k) % ring->capacity]);
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.begin_us != b.begin_us ? a.begin_us < b.begin_us
                                              : a.id < b.id;
            });
  return events;
}

std::uint64_t dropped_trace_events() {
  std::uint64_t total = 0;
  TraceState& s = state();
  const std::scoped_lock lock(s.mutex);
  for (const std::unique_ptr<ThreadRing>& ring : s.rings) {
    const std::scoped_lock ring_lock(ring->mutex);
    total += ring->dropped;
  }
  return total;
}

void reset_trace_for_testing() {
  TraceState& s = state();
  const std::scoped_lock lock(s.mutex);
  for (const std::unique_ptr<ThreadRing>& ring : s.rings) {
    const std::scoped_lock ring_lock(ring->mutex);
    ring->next = 0;
    ring->size = 0;
    ring->dropped = 0;
    // Capacity changes from a later enable_tracing() apply on reset too,
    // so tests can shrink the ring of an already-registered thread.
    if (ring->capacity != s.capacity) {
      ring->capacity = s.capacity;
      ring->buf.assign(ring->capacity, TraceEvent{});
    }
  }
}

void write_chrome_trace(const std::string& path) {
  const std::vector<TraceEvent> events = collect_trace_events();

  JsonValue::Array array;
  array.reserve(events.size());
  for (const TraceEvent& event : events) {
    JsonValue::Object entry;
    entry.emplace("name", JsonValue(std::string(event.name)));
    entry.emplace("cat", JsonValue(std::string("wlsms")));
    entry.emplace("ph", JsonValue(std::string("X")));
    entry.emplace("ts", JsonValue(static_cast<double>(event.begin_us)));
    entry.emplace("dur", JsonValue(static_cast<double>(event.dur_us)));
    entry.emplace("pid", JsonValue(0.0));
    entry.emplace("tid", JsonValue(static_cast<double>(event.tid)));
    JsonValue::Object args;
    args.emplace("id", JsonValue(static_cast<double>(event.id)));
    args.emplace("parent", JsonValue(static_cast<double>(event.parent)));
    entry.emplace("args", JsonValue(std::move(args)));
    array.push_back(JsonValue(std::move(entry)));
  }
  JsonValue::Object root;
  root.emplace("traceEvents", JsonValue(std::move(array)));
  root.emplace("displayTimeUnit", JsonValue(std::string("ms")));
  root.emplace("droppedEvents",
               JsonValue(static_cast<double>(dropped_trace_events())));

  const std::string text = JsonValue(std::move(root)).dump();
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr)
    throw Error("cannot open trace output '" + path + "'");
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), file);
  const int close_rc = std::fclose(file);
  if (written != text.size() || close_rc != 0)
    throw Error("short write to trace output '" + path + "'");
}

}  // namespace wlsms::obs
