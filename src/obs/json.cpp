#include "obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace wlsms::obs {

namespace {

[[noreturn]] void type_error(const char* wanted) {
  throw JsonError(std::string("JSON value is not a ") + wanted);
}

void append_utf8(std::string& out, std::uint32_t code_point) {
  if (code_point < 0x80) {
    out.push_back(static_cast<char>(code_point));
  } else if (code_point < 0x800) {
    out.push_back(static_cast<char>(0xC0 | (code_point >> 6)));
    out.push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
  } else if (code_point < 0x10000) {
    out.push_back(static_cast<char>(0xE0 | (code_point >> 12)));
    out.push_back(static_cast<char>(0x80 | ((code_point >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
  } else {
    out.push_back(static_cast<char>(0xF0 | (code_point >> 18)));
    out.push_back(static_cast<char>(0x80 | ((code_point >> 12) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | ((code_point >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
  }
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size())
      throw JsonError("trailing characters after JSON document");
    return value;
  }

 private:
  char peek() {
    skip_whitespace();
    if (pos_ >= text_.size()) throw JsonError("unexpected end of JSON");
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (take() != c)
      throw JsonError(std::string("expected '") + c + "' in JSON");
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value() {
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return JsonValue(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue(true);
        throw JsonError("malformed literal in JSON");
      case 'f':
        if (consume_literal("false")) return JsonValue(false);
        throw JsonError("malformed literal in JSON");
      case 'n':
        if (consume_literal("null")) return JsonValue(nullptr);
        throw JsonError("malformed literal in JSON");
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue::Object object;
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(object));
    }
    while (true) {
      if (peek() != '"') throw JsonError("object key must be a string");
      std::string key = parse_string();
      expect(':');
      object.emplace(std::move(key), parse_value());
      const char next = take();
      if (next == '}') return JsonValue(std::move(object));
      if (next != ',') throw JsonError("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue::Array array;
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(array));
    }
    while (true) {
      array.push_back(parse_value());
      const char next = take();
      if (next == ']') return JsonValue(std::move(array));
      if (next != ',') throw JsonError("expected ',' or ']' in array");
    }
  }

  std::uint32_t parse_hex4() {
    if (pos_ + 4 > text_.size()) throw JsonError("truncated \\u escape");
    std::uint32_t value = 0;
    for (int k = 0; k < 4; ++k) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9')
        value |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f')
        value |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        value |= static_cast<std::uint32_t>(c - 'A' + 10);
      else
        throw JsonError("bad hex digit in \\u escape");
    }
    return value;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) throw JsonError("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) throw JsonError("unterminated escape");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          std::uint32_t code_point = parse_hex4();
          if (code_point >= 0xD800 && code_point <= 0xDBFF) {
            // High surrogate: a \uXXXX low surrogate must follow.
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u')
              throw JsonError("unpaired surrogate in \\u escape");
            pos_ += 2;
            const std::uint32_t low = parse_hex4();
            if (low < 0xDC00 || low > 0xDFFF)
              throw JsonError("invalid low surrogate in \\u escape");
            code_point =
                0x10000 + ((code_point - 0xD800) << 10) + (low - 0xDC00);
          }
          append_utf8(out, code_point);
          break;
        }
        default:
          throw JsonError("unknown escape in string");
      }
    }
  }

  JsonValue parse_number() {
    skip_whitespace();
    const char* begin = text_.data() + pos_;
    char* end = nullptr;
    const double value = std::strtod(begin, &end);
    if (end == begin) throw JsonError("malformed number in JSON");
    pos_ += static_cast<std::size_t>(end - begin);
    return JsonValue(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void dump_value(const JsonValue& value, std::string& out);

void dump_string(const std::string& text, std::string& out) {
  out.push_back('"');
  out += json_escape(text);
  out.push_back('"');
}

void dump_value(const JsonValue& value, std::string& out) {
  if (value.is_null()) {
    out += "null";
  } else if (value.is_bool()) {
    out += value.as_bool() ? "true" : "false";
  } else if (value.is_number()) {
    out += json_number(value.as_number());
  } else if (value.is_string()) {
    dump_string(value.as_string(), out);
  } else if (value.is_array()) {
    out.push_back('[');
    bool first = true;
    for (const JsonValue& entry : value.as_array()) {
      if (!first) out.push_back(',');
      first = false;
      dump_value(entry, out);
    }
    out.push_back(']');
  } else {
    out.push_back('{');
    bool first = true;
    for (const auto& [key, entry] : value.as_object()) {
      if (!first) out.push_back(',');
      first = false;
      dump_string(key, out);
      out.push_back(':');
      dump_value(entry, out);
    }
    out.push_back('}');
  }
}

}  // namespace

JsonValue::JsonValue(const JsonValue&) = default;
JsonValue::JsonValue(JsonValue&&) noexcept = default;
JsonValue& JsonValue::operator=(const JsonValue&) = default;
JsonValue& JsonValue::operator=(JsonValue&&) noexcept = default;
JsonValue::~JsonValue() = default;

bool JsonValue::as_bool() const {
  if (!is_bool()) type_error("bool");
  return std::get<bool>(value_);
}

double JsonValue::as_number() const {
  if (!is_number()) type_error("number");
  return std::get<double>(value_);
}

const std::string& JsonValue::as_string() const {
  if (!is_string()) type_error("string");
  return std::get<std::string>(value_);
}

const JsonValue::Array& JsonValue::as_array() const {
  if (!is_array()) type_error("array");
  return std::get<Array>(value_);
}

const JsonValue::Object& JsonValue::as_object() const {
  if (!is_object()) type_error("object");
  return std::get<Object>(value_);
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const Object& object = as_object();
  const auto it = object.find(key);
  if (it == object.end()) throw JsonError("missing JSON key '" + key + "'");
  return it->second;
}

bool JsonValue::contains(const std::string& key) const {
  const Object& object = as_object();
  return object.count(key) > 0;
}

std::string JsonValue::dump() const {
  std::string out;
  dump_value(*this, out);
  return out;
}

JsonValue JsonValue::parse(std::string_view text) {
  return Parser(text).parse_document();
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";  // JSON has no Inf/NaN
  char buffer[32];
  if (value == std::floor(value) && std::fabs(value) < 9.007199254740992e15) {
    std::snprintf(buffer, sizeof buffer, "%.0f", value);
  } else {
    std::snprintf(buffer, sizeof buffer, "%.17g", value);
  }
  return buffer;
}

}  // namespace wlsms::obs
