#include "obs/snapshot.hpp"

#include "common/error.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace wlsms::obs {

namespace {

const char* kKernelNames[perf::kKernelCount] = {"zgemm", "trsm", "panel",
                                                "other"};

JsonValue histogram_json(const HistogramSnapshot& histogram) {
  JsonValue::Object object;
  JsonValue::Array bounds;
  for (double bound : histogram.upper_bounds)
    bounds.push_back(JsonValue(bound));
  JsonValue::Array counts;
  for (std::uint64_t count : histogram.counts)
    counts.push_back(JsonValue(count));
  object.emplace("bounds", JsonValue(std::move(bounds)));
  object.emplace("counts", JsonValue(std::move(counts)));
  object.emplace("count", JsonValue(histogram.total));
  object.emplace("sum", JsonValue(histogram.sum));
  object.emplace("mean",
                 JsonValue(histogram.total > 0
                               ? histogram.sum /
                                     static_cast<double>(histogram.total)
                               : 0.0));
  return JsonValue(std::move(object));
}

}  // namespace

SnapshotWriter::SnapshotWriter(SnapshotConfig config)
    : config_(std::move(config)) {
  WLSMS_EXPECTS(config_.interval.count() > 0);
  file_ = std::fopen(config_.path.c_str(), "w");
  if (file_ == nullptr)
    throw Error("cannot open metrics output '" + config_.path + "'");
  start_ = Clock::now();
  last_time_ = start_;
  last_total_flops_ = perf::total_flops();
  for (std::size_t k = 0; k < perf::kKernelCount; ++k)
    run_start_flops_[k] = perf::total_flops(static_cast<perf::Kernel>(k));
  write_record("start");
  thread_ = std::thread([this] { writer_loop(); });
}

SnapshotWriter::~SnapshotWriter() {
  {
    const std::scoped_lock lock(stop_mutex_);
    stopping_ = true;
  }
  stop_cv_.notify_all();
  thread_.join();
  write_record("final");
  std::fclose(file_);
}

void SnapshotWriter::writer_loop() {
  std::unique_lock lock(stop_mutex_);
  while (!stopping_) {
    if (stop_cv_.wait_for(lock, config_.interval,
                          [this] { return stopping_; }))
      return;  // final record is written by the destructor
    lock.unlock();
    write_record("interval");
    lock.lock();
  }
}

void SnapshotWriter::write_record(const char* reason) {
  const std::scoped_lock lock(write_mutex_);
  const std::string record = render_record(reason);
  // One fwrite per record keeps lines whole even if another process shares
  // the file descriptor; flush so `tail -f` follows a live run.
  std::fwrite(record.data(), 1, record.size(), file_);
  std::fflush(file_);
}

std::string SnapshotWriter::render_record(const char* reason) {
  const Clock::time_point now = Clock::now();
  const MetricsSnapshot metrics = Registry::instance().snapshot();

  JsonValue::Object root;
  root.emplace(
      "t_ms",
      JsonValue(std::chrono::duration<double, std::milli>(now - start_)
                    .count()));
  // Wall-clock epoch stamp, so records from different processes (and the
  // log stream, which carries the same field) line up on one timeline.
  root.emplace("wall_ms",
               JsonValue(std::chrono::duration<double, std::milli>(
                             std::chrono::system_clock::now()
                                 .time_since_epoch())
                             .count()));
  root.emplace("reason", JsonValue(std::string(reason)));

  // Trace health + clock alignment, present in EVERY record (not only once
  // drops or offsets happen): dropped span count, this process's estimated
  // offset to its reference clock, and every per-rank offset gauge the
  // controller has observed via heartbeat echoes.
  {
    JsonValue::Object trace;
    trace.emplace("dropped_events", JsonValue(dropped_trace_events()));
    trace.emplace("clock_offset_us", JsonValue(clock_offset_us()));
    JsonValue::Object offsets;
    for (const auto& [name, value] : metrics.gauges)
      if (name.rfind("comm.clock_offset_us.", 0) == 0)
        offsets.emplace(name.substr(sizeof("comm.clock_offset_us.") - 1),
                        JsonValue(value));
    trace.emplace("rank_clock_offsets_us", JsonValue(std::move(offsets)));
    root.emplace("trace", JsonValue(std::move(trace)));
  }

  JsonValue::Object counters;
  for (const auto& [name, value] : metrics.counters)
    counters.emplace(name, JsonValue(value));
  root.emplace("counters", JsonValue(std::move(counters)));

  JsonValue::Object gauges;
  for (const auto& [name, value] : metrics.gauges)
    gauges.emplace(name, JsonValue(value));
  root.emplace("gauges", JsonValue(std::move(gauges)));

  JsonValue::Object histograms;
  for (const auto& [name, histogram] : metrics.histograms)
    histograms.emplace(name, histogram_json(histogram));
  root.emplace("histograms", JsonValue(std::move(histograms)));

  // Per-kernel flop counters (the PAPI FP_OPS analogue, process lifetime)
  // plus the derived rates the paper reports: sustained Flop/s since the
  // previous record and the ZGEMM share since the writer started (§II-B:
  // "the bulk of the calculation is done by ZGEMM").
  JsonValue::Object flops;
  std::uint64_t total = 0;
  std::uint64_t window_total = 0;
  std::uint64_t window_gemm = 0;
  for (std::size_t k = 0; k < perf::kKernelCount; ++k) {
    const std::uint64_t value =
        perf::total_flops(static_cast<perf::Kernel>(k));
    flops.emplace(kKernelNames[k], JsonValue(value));
    total += value;
    window_total += value - run_start_flops_[k];
    if (static_cast<perf::Kernel>(k) == perf::Kernel::kZgemm)
      window_gemm = value - run_start_flops_[k];
  }
  flops.emplace("total", JsonValue(total));
  root.emplace("flops", JsonValue(std::move(flops)));

  const double dt = std::chrono::duration<double>(now - last_time_).count();
  const double rate =
      dt > 0.0 ? static_cast<double>(total - last_total_flops_) / dt : 0.0;
  last_time_ = now;
  last_total_flops_ = total;
  root.emplace("flops_per_s", JsonValue(rate));
  root.emplace("gemm_fraction",
               JsonValue(window_total > 0
                             ? static_cast<double>(window_gemm) /
                                   static_cast<double>(window_total)
                             : 0.0));

  return JsonValue(std::move(root)).dump() + "\n";
}

}  // namespace wlsms::obs
