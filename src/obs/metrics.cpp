#include "obs/metrics.hpp"

#include <pthread.h>

#include <cmath>
#include <unordered_map>

#include "common/error.hpp"

namespace wlsms::obs {

namespace {

// Per-thread cache from metric address to that thread's shard. Metrics are
// never destroyed (leaked-singleton registry), so entries can never dangle;
// shards are owned by the metric, so a thread may exit without losing its
// contribution.
thread_local std::unordered_map<const void*, void*> tl_shards;

void* find_shard(const void* metric) {
  const auto it = tl_shards.find(metric);
  return it == tl_shards.end() ? nullptr : it->second;
}

// Exact-regardless-of-interleaving double accumulation would require
// fixed-point; a CAS loop at least makes each add atomic (no lost updates),
// which keeps histogram sums exact whenever the observed values sum exactly
// in floating point (e.g. integer-valued latencies in the tests).
void atomic_add_double(std::atomic<double>& slot, double delta) {
  double expected = slot.load(std::memory_order_relaxed);
  while (!slot.compare_exchange_weak(expected, expected + delta,
                                     std::memory_order_relaxed,
                                     std::memory_order_relaxed)) {
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Counter

struct Counter::Shard {
  alignas(64) std::atomic<std::uint64_t> value{0};
};

Counter::Shard& Counter::shard() {
  if (void* cached = find_shard(this))
    return *static_cast<Shard*>(cached);
  const std::scoped_lock lock(mutex_);
  shards_.push_back(std::make_unique<Shard>());
  Shard* fresh = shards_.back().get();
  tl_shards[this] = fresh;
  return *fresh;
}

void Counter::add(std::uint64_t n) {
  shard().value.fetch_add(n, std::memory_order_relaxed);
}

std::uint64_t Counter::value() const {
  const std::scoped_lock lock(mutex_);
  std::uint64_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_)
    total += shard->value.load(std::memory_order_relaxed);
  return total;
}

// ---------------------------------------------------------------------------
// Histogram

struct Histogram::Shard {
  explicit Shard(std::size_t n_buckets) : counts(n_buckets) {}
  std::vector<std::atomic<std::uint64_t>> counts;  ///< incl. overflow bucket
  std::atomic<double> sum{0.0};
};

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  WLSMS_EXPECTS(!bounds_.empty());
  for (std::size_t i = 0; i + 1 < bounds_.size(); ++i)
    WLSMS_EXPECTS(bounds_[i] < bounds_[i + 1]);
}

Histogram::Shard& Histogram::shard() {
  if (void* cached = find_shard(this))
    return *static_cast<Shard*>(cached);
  const std::scoped_lock lock(mutex_);
  shards_.push_back(std::make_unique<Shard>(bounds_.size() + 1));
  Shard* fresh = shards_.back().get();
  tl_shards[this] = fresh;
  return *fresh;
}

void Histogram::observe(double value) {
  // First bucket whose upper bound is >= value; a boundary value belongs to
  // the bucket it bounds. NaN compares false against every bound and falls
  // through to the overflow bucket. Non-finite observations (NaN, +/-inf)
  // are counted but excluded from the sum, which must stay finite.
  std::size_t bucket = bounds_.size();
  for (std::size_t i = 0; i < bounds_.size(); ++i)
    if (value <= bounds_[i]) {
      bucket = i;
      break;
    }
  Shard& s = shard();
  s.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  if (std::isfinite(value)) atomic_add_double(s.sum, value);
}

HistogramSnapshot Histogram::snapshot_values() const {
  HistogramSnapshot snapshot;
  snapshot.upper_bounds = bounds_;
  snapshot.counts.assign(bounds_.size() + 1, 0);
  const std::scoped_lock lock(mutex_);
  for (const std::unique_ptr<Shard>& shard : shards_) {
    for (std::size_t b = 0; b < shard->counts.size(); ++b)
      snapshot.counts[b] += shard->counts[b].load(std::memory_order_relaxed);
    snapshot.sum += shard->sum.load(std::memory_order_relaxed);
  }
  for (std::uint64_t count : snapshot.counts) snapshot.total += count;
  return snapshot;
}

// ---------------------------------------------------------------------------
// Registry

Registry& Registry::instance() {
  // Leaked: metric references and thread-local shard pointers outlive every
  // static-destruction order, so instrumentation is safe from any thread at
  // any point of shutdown.
  static Registry* registry = [] {
    install_fork_handlers();
    return new Registry();
  }();
  return *registry;
}

Counter& Registry::counter(std::string_view name) {
  const std::scoped_lock lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_
             .emplace(std::string(name),
                      std::unique_ptr<Counter>(new Counter()))
             .first;
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  const std::scoped_lock lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), std::unique_ptr<Gauge>(new Gauge()))
             .first;
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<double> bounds) {
  const std::scoped_lock lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::unique_ptr<Histogram>(
                          new Histogram(std::move(bounds))))
             .first;
    return *it->second;
  }
  if (it->second->upper_bounds() != bounds)
    throw Error("histogram '" + std::string(name) +
                "' re-registered with different bucket bounds");
  return *it->second;
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot snapshot;
  const std::scoped_lock lock(mutex_);
  for (const auto& [name, counter] : counters_)
    snapshot.counters.emplace(name, counter->value());
  for (const auto& [name, gauge] : gauges_)
    snapshot.gauges.emplace(name, gauge->value());
  for (const auto& [name, histogram] : histograms_)
    snapshot.histograms.emplace(name, histogram->snapshot_values());
  return snapshot;
}

void Registry::reset_values_for_testing() {
  const std::scoped_lock lock(mutex_);
  for (const auto& [name, counter] : counters_) {
    const std::scoped_lock shard_lock(counter->mutex_);
    for (const std::unique_ptr<Counter::Shard>& shard : counter->shards_)
      shard->value.store(0, std::memory_order_relaxed);
  }
  for (const auto& [name, gauge] : gauges_)
    gauge->value_.store(0.0, std::memory_order_relaxed);
  for (const auto& [name, histogram] : histograms_) {
    const std::scoped_lock shard_lock(histogram->mutex_);
    for (const std::unique_ptr<Histogram::Shard>& shard :
         histogram->shards_) {
      for (std::atomic<std::uint64_t>& count : shard->counts)
        count.store(0, std::memory_order_relaxed);
      shard->sum.store(0.0, std::memory_order_relaxed);
    }
  }
}

void Registry::lock_for_fork() {
  mutex_.lock();
  for (const auto& [name, counter] : counters_) counter->mutex_.lock();
  for (const auto& [name, histogram] : histograms_) histogram->mutex_.lock();
}

void Registry::unlock_after_fork() {
  for (const auto& [name, histogram] : histograms_) histogram->mutex_.unlock();
  for (const auto& [name, counter] : counters_) counter->mutex_.unlock();
  mutex_.unlock();
}

void Registry::install_fork_handlers() {
  // A fork()ed worker rank (comm kProcess transport) inherits the address
  // space but only the forking thread. Holding every metric mutex across
  // the fork guarantees the child never inherits a mutex locked by a
  // thread that does not exist there — worker-side solver instrumentation
  // stays safe with a live snapshot thread in the controller.
  pthread_atfork([] { instance().lock_for_fork(); },
                 [] { instance().unlock_after_fork(); },
                 [] { instance().unlock_after_fork(); });
}

}  // namespace wlsms::obs
