#pragma once

/// \file trace.hpp
/// Span tracing: RAII Span objects with begin/end timestamps, thread ids,
/// and parent links, buffered in per-thread rings and exportable as Chrome
/// trace_event JSON — load the file in Perfetto (https://ui.perfetto.dev)
/// or chrome://tracing to see WL sweeps, LSMS solve phases, and comm frames
/// on a shared timeline.
///
/// Cost model: tracing is globally off by default; a Span on the disabled
/// path is one relaxed atomic load, so permanent instrumentation of the
/// solver and driver is free. When enabled, a completed span costs two
/// clock reads plus a push into its thread's ring under an uncontended
/// per-thread mutex (the mutex is contended only by export/collect).
///
/// Ring overflow drops the *oldest* events — the tail of a run always
/// survives — and every dropped event is counted (dropped_trace_events()
/// and the `trace.dropped_events` registry counter), so truncation is
/// never silent.
///
/// Spans nest per thread: the innermost live Span on the constructing
/// thread is recorded as the parent. Rings of exited threads are retained
/// until reset, so export after a thread pool is torn down still sees its
/// spans. fork(): handlers mirror metrics.cpp, so forked worker ranks can
/// trace their shard solves.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace wlsms::obs {

/// Maximum span-name length retained (longer names are truncated). Names
/// are copied into the event, so dynamically built names are safe.
inline constexpr std::size_t kTraceNameCapacity = 47;

/// One completed span.
struct TraceEvent {
  char name[kTraceNameCapacity + 1] = {};
  std::uint64_t begin_us = 0;  ///< microseconds since tracing epoch
  std::uint64_t dur_us = 0;
  std::uint32_t tid = 0;     ///< small sequential id per tracing thread
  std::uint64_t id = 0;      ///< unique span id (non-zero)
  std::uint64_t parent = 0;  ///< enclosing span's id; 0 = top-level
};

/// Default per-thread ring capacity (events).
inline constexpr std::size_t kDefaultTraceRingCapacity = 8192;

/// Turns tracing on. Rings created after this call hold `ring_capacity`
/// events each. Idempotent; capacity changes apply to new rings only.
void enable_tracing(std::size_t ring_capacity = kDefaultTraceRingCapacity);

/// Turns tracing off: new Spans become no-ops; live Spans still record.
void disable_tracing();

bool tracing_enabled();

/// RAII span. Construction samples the clock, copies the name, and links to
/// the innermost live span of this thread; destruction records the event.
class Span {
 public:
  explicit Span(const char* name);
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span();

 private:
  char name_[kTraceNameCapacity + 1] = {};
  std::uint64_t begin_us_ = 0;
  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
  void* ring_ = nullptr;  ///< ThreadRing*; non-null iff the span records
};

/// All buffered events from every thread's ring, oldest-first per thread,
/// merged and sorted by begin timestamp.
std::vector<TraceEvent> collect_trace_events();

/// Events lost to ring overflow since the last reset, summed over threads.
std::uint64_t dropped_trace_events();

/// Clears every ring and the drop counters. Callers must ensure no Span is
/// live and no thread is mid-record. Testing/benchmarking only.
void reset_trace_for_testing();

/// Writes every buffered event as Chrome trace_event JSON ("X" complete
/// events; span id/parent under "args"). Throws wlsms::Error on I/O error.
void write_chrome_trace(const std::string& path);

}  // namespace wlsms::obs
