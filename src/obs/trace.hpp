#pragma once

/// \file trace.hpp
/// Span tracing: RAII Span objects with begin/end timestamps, thread ids,
/// and parent links, buffered in per-thread rings and exportable as Chrome
/// trace_event JSON — load the file in Perfetto (https://ui.perfetto.dev)
/// or chrome://tracing to see WL sweeps, LSMS solve phases, and comm frames
/// on a shared timeline.
///
/// Cost model: tracing is globally off by default; a Span on the disabled
/// path is one relaxed atomic load, so permanent instrumentation of the
/// solver and driver is free. When enabled, a completed span costs two
/// clock reads plus a push into its thread's ring under an uncontended
/// per-thread mutex (the mutex is contended only by export/collect).
///
/// Ring overflow drops the *oldest* events — the tail of a run always
/// survives — and every dropped event is counted (dropped_trace_events()
/// and the `trace.dropped_events` registry counter), so truncation is
/// never silent.
///
/// Spans nest per thread: the innermost live Span on the constructing
/// thread is recorded as the parent. Rings of exited threads are retained
/// until reset, so export after a thread pool is torn down still sees its
/// spans. fork(): handlers mirror metrics.cpp, so forked worker ranks can
/// trace their shard solves.
///
/// Distributed traces: every process draws one random nonzero
/// `local_trace_node()` id stamped into its trace file. A TraceContext
/// (node id + span id) travels on the WLSM wire; the receiving process
/// adopts it with the two-argument Span constructor or emit_span(), which
/// records the remote parent on the event. tools/trace_merge.py resolves
/// those cross-file links and shifts each file by its recorded clock
/// offset (set_clock_offset(), estimated NTP-style on the transport
/// handshake/heartbeats), producing one Perfetto timeline in the reference
/// process's timebase.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace wlsms::obs {

/// Maximum span-name length retained (longer names are truncated). Names
/// are copied into the event, so dynamically built names are safe.
inline constexpr std::size_t kTraceNameCapacity = 47;

/// A span's identity as it travels between processes: which process's
/// trace file the parent span lives in (`trace_id` == that process's
/// local_trace_node()) and its span id within that file. A default
/// (zero/zero) context means "no remote parent"; zeros travel the wire
/// when tracing is off, so propagation costs nothing unobserved.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
};

/// One completed span.
struct TraceEvent {
  char name[kTraceNameCapacity + 1] = {};
  std::uint64_t begin_us = 0;  ///< microseconds since tracing epoch
  std::uint64_t dur_us = 0;
  std::uint32_t tid = 0;     ///< small sequential id per tracing thread
  std::uint64_t id = 0;      ///< unique span id (non-zero)
  std::uint64_t parent = 0;  ///< enclosing span's id; 0 = top-level
  /// Adopted remote parent: the trace-node id of the originating process
  /// and the parent span's id in that process's file. Zero when the parent
  /// (if any) is local.
  std::uint64_t remote_trace = 0;
  std::uint64_t remote_parent = 0;
};

/// Default per-thread ring capacity (events).
inline constexpr std::size_t kDefaultTraceRingCapacity = 8192;

/// Turns tracing on. Rings created after this call hold `ring_capacity`
/// events each. Idempotent; capacity changes apply to new rings only.
void enable_tracing(std::size_t ring_capacity = kDefaultTraceRingCapacity);

/// Turns tracing off: new Spans become no-ops; live Spans still record.
void disable_tracing();

bool tracing_enabled();

/// RAII span. Construction samples the clock, copies the name, and links to
/// the innermost live span of this thread; destruction records the event.
class Span {
 public:
  explicit Span(const char* name);
  /// Adopting constructor: links under `remote_parent` (a context received
  /// off the wire) instead of this thread's innermost span. A context whose
  /// trace_id matches local_trace_node() is recognized as local and linked
  /// directly; a zero context degrades to a top-level span.
  Span(const char* name, const TraceContext& remote_parent);
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span();

 private:
  char name_[kTraceNameCapacity + 1] = {};
  std::uint64_t begin_us_ = 0;
  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
  std::uint64_t remote_trace_ = 0;
  std::uint64_t remote_parent_ = 0;
  void* ring_ = nullptr;  ///< ThreadRing*; non-null iff the span records
};

/// The context an outgoing request should carry: this process's trace node
/// and the innermost live span of the calling thread. Zero/zero when
/// tracing is off (or no span is live), so callers can propagate
/// unconditionally.
TraceContext current_trace_context();

/// Records one already-measured span directly (for request-scoped spans
/// whose begin/end straddle scheduler queues rather than one C++ scope).
/// Timestamps are trace_now_us() values; no-op while tracing is off.
void emit_span(const char* name, std::uint64_t begin_us, std::uint64_t end_us,
               const TraceContext& remote_parent = {});

/// Microseconds since this process's tracing epoch (steady clock). Always
/// available, tracing enabled or not — the clock-alignment probes use it.
std::uint64_t trace_now_us();

/// This process's random nonzero trace-node id (48-bit, so it survives a
/// double-typed JSON writer exactly). Lazily drawn; redrawn in forked
/// children so two processes never share a node id.
std::uint64_t local_trace_node();

/// Records this process's estimated clock offset to a reference process:
/// `reference_trace_now_us ≈ trace_now_us() + offset_us`. Stamped into the
/// trace file so trace_merge.py can shift this file into the reference
/// timebase. `reference_node` is the reference process's trace node.
void set_clock_offset(double offset_us, std::uint64_t reference_node);

/// Estimated offset last recorded via set_clock_offset() (0 by default).
double clock_offset_us();

/// Short process label stamped into the trace file ("serve", "worker",
/// ...); defaults to "wlsms".
void set_trace_process_name(const std::string& name);

/// All buffered events from every thread's ring, oldest-first per thread,
/// merged and sorted by begin timestamp.
std::vector<TraceEvent> collect_trace_events();

/// Events lost to ring overflow since the last reset, summed over threads.
std::uint64_t dropped_trace_events();

/// Clears every ring and the drop counters. Callers must ensure no Span is
/// live and no thread is mid-record. Testing/benchmarking only.
void reset_trace_for_testing();

/// Writes every buffered event as Chrome trace_event JSON ("X" complete
/// events; span id/parent under "args"). Top-level keys `trace_node`,
/// `clock_offset_us`, `clock_reference`, `wall_epoch_ms`, and `process`
/// carry the merge metadata (Perfetto ignores unknown keys). Throws
/// wlsms::Error on I/O error.
void write_chrome_trace(const std::string& path);

}  // namespace wlsms::obs
