#pragma once

/// \file json.hpp
/// Minimal JSON value, writer, and parser — just enough for the telemetry
/// artifacts (Chrome traces, JSONL snapshots, BENCH_*.json) to be produced
/// and round-tripped without an external dependency. Numbers are doubles;
/// integers up to 2^53 round-trip exactly and are printed without a
/// fractional part.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/error.hpp"

namespace wlsms::obs {

/// Thrown by JsonValue::parse on malformed input.
class JsonError : public Error {
 public:
  explicit JsonError(const std::string& what) : Error(what) {}
};

class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue>;

  JsonValue() : value_(nullptr) {}
  explicit JsonValue(std::nullptr_t) : value_(nullptr) {}
  explicit JsonValue(bool b) : value_(b) {}
  explicit JsonValue(double number) : value_(number) {}
  explicit JsonValue(std::uint64_t number)
      : value_(static_cast<double>(number)) {}
  explicit JsonValue(std::string text) : value_(std::move(text)) {}
  explicit JsonValue(Array array) : value_(std::move(array)) {}
  explicit JsonValue(Object object) : value_(std::move(object)) {}

  // Out-of-line special members: keeps the variant copy/move machinery in
  // one translation unit (GCC 12's -Wmaybe-uninitialized misfires when it
  // inlines std::variant's move path into every consumer).
  JsonValue(const JsonValue&);
  JsonValue(JsonValue&&) noexcept;
  JsonValue& operator=(const JsonValue&);
  JsonValue& operator=(JsonValue&&) noexcept;
  ~JsonValue();

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_number() const { return std::holds_alternative<double>(value_); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<Array>(value_); }
  bool is_object() const { return std::holds_alternative<Object>(value_); }

  /// Typed accessors; throw JsonError on a type mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Object member access; throws JsonError when absent or not an object.
  const JsonValue& at(const std::string& key) const;
  bool contains(const std::string& key) const;

  /// Serializes compactly (no insignificant whitespace).
  std::string dump() const;

  /// Parses one JSON document (must consume the whole input up to trailing
  /// whitespace). Supports the full value grammar with \uXXXX escapes
  /// (surrogate pairs included).
  static JsonValue parse(std::string_view text);

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object>
      value_;
};

/// Escapes `text` for embedding in a JSON string literal (no quotes added).
std::string json_escape(std::string_view text);

/// Formats a double the way dump() does: integral values within the exact
/// range print without a fraction, everything else with %.17g.
std::string json_number(double value);

}  // namespace wlsms::obs
