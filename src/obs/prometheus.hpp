#pragma once

/// \file prometheus.hpp
/// Dependency-free Prometheus text exposition (version 0.0.4) of the
/// metrics registry, so a live daemon or controller can be scraped — or
/// inspected by `wlsms status` — without a metrics file path fixed at
/// launch.
///
/// Name mapping: registry names are dotted (`serve.accepted`); Prometheus
/// names allow [a-zA-Z0-9_:], so dots (and any other outlaw byte) become
/// underscores. Two dotted families carry an identity segment that maps to
/// a label instead of a name fragment, keeping cardinality out of the
/// metric namespace:
///
///   serve.tenant.<tenant>.<rest>  ->  serve_tenant_<rest>{tenant="<tenant>"}
///   comm.clock_offset_us.rank<k>  ->  comm_clock_offset_us{rank="<k>"}
///
/// Histograms render as the canonical cumulative `_bucket{le="..."}`
/// series plus `_sum` and `_count`.

#include <string>

#include "obs/metrics.hpp"

namespace wlsms::obs {

/// Renders one registry snapshot as Prometheus text exposition.
std::string expose_prometheus(const MetricsSnapshot& snapshot);

/// Convenience: snapshots Registry::instance() and renders it.
std::string expose_prometheus();

/// `count` strictly increasing histogram bucket bounds starting at `start`
/// and multiplying by `factor` (> 1): start, start*factor, ... — the
/// exponential edges latency histograms need to resolve a p99 that spans
/// decades. Throws wlsms::Error on a non-positive start, factor <= 1, or
/// count == 0.
std::vector<double> exponential_bounds(double start, double factor,
                                       std::size_t count);

}  // namespace wlsms::obs
