#include "obs/prometheus.hpp"

#include <cctype>
#include <cmath>
#include <map>
#include <string_view>
#include <vector>

#include "common/error.hpp"
#include "obs/json.hpp"

namespace wlsms::obs {

namespace {

// Dots and anything else outside the Prometheus name alphabet become '_'.
// A leading digit gets an underscore prefix (names must not start with one).
std::string sanitize_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (!out.empty() && out.front() >= '0' && out.front() <= '9')
    out.insert(out.begin(), '_');
  return out;
}

// Label values need \\, \", and \n escaped per the exposition format.
std::string escape_label_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    if (c == '\\')
      out += "\\\\";
    else if (c == '"')
      out += "\\\"";
    else if (c == '\n')
      out += "\\n";
    else
      out.push_back(c);
  }
  return out;
}

/// One registry name split into an exposition name plus an optional label.
struct ExpositionName {
  std::string name;
  std::string label;  ///< rendered `key="value"`; empty = no label
};

ExpositionName map_name(std::string_view raw) {
  // serve.tenant.<tenant>.<rest> -> serve_tenant_<rest>{tenant="<tenant>"}
  constexpr std::string_view kTenantPrefix = "serve.tenant.";
  if (raw.size() > kTenantPrefix.size() &&
      raw.substr(0, kTenantPrefix.size()) == kTenantPrefix) {
    const std::string_view tail = raw.substr(kTenantPrefix.size());
    const std::size_t dot = tail.find('.');
    if (dot != std::string_view::npos && dot > 0 && dot + 1 < tail.size()) {
      const std::string_view tenant = tail.substr(0, dot);
      const std::string_view rest = tail.substr(dot + 1);
      return {"serve_tenant_" + sanitize_name(rest),
              "tenant=\"" + escape_label_value(tenant) + "\""};
    }
  }
  // comm.clock_offset_us.rank<k> -> comm_clock_offset_us{rank="<k>"}
  constexpr std::string_view kRankPrefix = "comm.clock_offset_us.rank";
  if (raw.size() > kRankPrefix.size() &&
      raw.substr(0, kRankPrefix.size()) == kRankPrefix) {
    const std::string_view rank = raw.substr(kRankPrefix.size());
    bool digits = !rank.empty();
    for (const char c : rank) digits = digits && c >= '0' && c <= '9';
    if (digits)
      return {"comm_clock_offset_us", "rank=\"" + std::string(rank) + "\""};
  }
  return {sanitize_name(raw), ""};
}

std::string format_value(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  return json_number(v);
}

/// Rendered series grouped per exposition name so the # TYPE header is
/// emitted exactly once per name even when labels (tenants, ranks) fan a
/// family out over many registry entries.
struct Family {
  std::string type;
  std::vector<std::string> lines;
};

void render_counter(std::map<std::string, Family>& families,
                    const std::string& raw, std::uint64_t value) {
  const ExpositionName mapped = map_name(raw);
  Family& family = families[mapped.name];
  family.type = "counter";
  std::string line = mapped.name;
  if (!mapped.label.empty()) line += "{" + mapped.label + "}";
  line += " " + std::to_string(value);
  family.lines.push_back(std::move(line));
}

void render_gauge(std::map<std::string, Family>& families,
                  const std::string& raw, double value) {
  const ExpositionName mapped = map_name(raw);
  Family& family = families[mapped.name];
  family.type = "gauge";
  std::string line = mapped.name;
  if (!mapped.label.empty()) line += "{" + mapped.label + "}";
  line += " " + format_value(value);
  family.lines.push_back(std::move(line));
}

void render_histogram(std::map<std::string, Family>& families,
                      const std::string& raw,
                      const HistogramSnapshot& snapshot) {
  const ExpositionName mapped = map_name(raw);
  Family& family = families[mapped.name];
  family.type = "histogram";
  const std::string label_prefix =
      mapped.label.empty() ? std::string() : mapped.label + ",";
  std::uint64_t cumulative = 0;
  for (std::size_t k = 0; k < snapshot.upper_bounds.size(); ++k) {
    cumulative += snapshot.counts[k];
    family.lines.push_back(mapped.name + "_bucket{" + label_prefix + "le=\"" +
                           format_value(snapshot.upper_bounds[k]) + "\"} " +
                           std::to_string(cumulative));
  }
  family.lines.push_back(mapped.name + "_bucket{" + label_prefix +
                         "le=\"+Inf\"} " + std::to_string(snapshot.total));
  std::string sum_line = mapped.name + "_sum";
  std::string count_line = mapped.name + "_count";
  if (!mapped.label.empty()) {
    sum_line += "{" + mapped.label + "}";
    count_line += "{" + mapped.label + "}";
  }
  family.lines.push_back(sum_line + " " + format_value(snapshot.sum));
  family.lines.push_back(count_line + " " + std::to_string(snapshot.total));
}

}  // namespace

std::string expose_prometheus(const MetricsSnapshot& snapshot) {
  std::map<std::string, Family> families;
  for (const auto& [name, value] : snapshot.counters)
    render_counter(families, name, value);
  for (const auto& [name, value] : snapshot.gauges)
    render_gauge(families, name, value);
  for (const auto& [name, histogram] : snapshot.histograms)
    render_histogram(families, name, histogram);

  std::string out;
  for (const auto& [name, family] : families) {
    out += "# TYPE " + name + " " + family.type + "\n";
    for (const std::string& line : family.lines) out += line + "\n";
  }
  return out;
}

std::string expose_prometheus() {
  return expose_prometheus(Registry::instance().snapshot());
}

std::vector<double> exponential_bounds(double start, double factor,
                                       std::size_t count) {
  if (!(start > 0.0)) throw Error("exponential_bounds: start must be > 0");
  if (!(factor > 1.0)) throw Error("exponential_bounds: factor must be > 1");
  if (count == 0) throw Error("exponential_bounds: count must be >= 1");
  std::vector<double> bounds;
  bounds.reserve(count);
  double edge = start;
  for (std::size_t k = 0; k < count; ++k) {
    bounds.push_back(edge);
    edge *= factor;
  }
  return bounds;
}

}  // namespace wlsms::obs
