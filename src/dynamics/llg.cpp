#include "dynamics/llg.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace wlsms::dynamics {

SpinDynamics::SpinDynamics(const heisenberg::HeisenbergModel& model,
                           spin::MomentConfiguration initial,
                           LlgParameters params)
    : model_(model), config_(std::move(initial)), params_(params),
      rng_(params.seed) {
  WLSMS_EXPECTS(config_.size() == model.n_sites());
  WLSMS_EXPECTS(params.damping >= 0.0);
  WLSMS_EXPECTS(params.timestep > 0.0);
  WLSMS_EXPECTS(params.temperature_k >= 0.0);
  if (params.temperature_k > 0.0) {
    WLSMS_EXPECTS(params.damping > 0.0);  // bath couples through damping
    // Fluctuation-dissipation (Brown 1963 for this Landau-Lifshitz form,
    // gamma = mu = 1): per-component variance of the thermal field is
    // 2 a k_B T / dt. Validated against Metropolis sampling across damping
    // values in tests/test_dynamics.cpp.
    noise_amplitude_ = std::sqrt(2.0 * params.damping *
                                 units::k_boltzmann_ry *
                                 params.temperature_k / params.timestep);
  }
  const std::size_t n = config_.size();
  fields_.resize(n);
  noise_.resize(n);
  predictor_.resize(n);
  slopes_.resize(n);
}

Vec3 SpinDynamics::effective_field_of(
    std::size_t i, const spin::MomentConfiguration& config) const {
  return model_.effective_field(i, config);
}

Vec3 SpinDynamics::effective_field(std::size_t i) const {
  WLSMS_EXPECTS(i < config_.size());
  return effective_field_of(i, config_);
}

Vec3 SpinDynamics::llg_rhs(std::size_t i,
                           const spin::MomentConfiguration& config,
                           const Vec3& field) const {
  const Vec3& m = config[i];
  const Vec3 precession = m.cross(field);
  const Vec3 damping_torque = m.cross(precession);
  const double a = params_.damping;
  return (precession + a * damping_torque) * (-1.0 / (1.0 + a * a));
}

void SpinDynamics::step() {
  const std::size_t n = config_.size();
  const double dt = params_.timestep;

  // One thermal-field realization per step, shared by predictor and
  // corrector (the Heun scheme for Stratonovich SDEs).
  for (std::size_t i = 0; i < n; ++i) {
    noise_[i] = noise_amplitude_ > 0.0
                    ? Vec3{noise_amplitude_ * rng_.normal(),
                           noise_amplitude_ * rng_.normal(),
                           noise_amplitude_ * rng_.normal()}
                    : Vec3{};
  }

  // Predictor: Euler step with the current fields.
  for (std::size_t i = 0; i < n; ++i)
    fields_[i] = effective_field_of(i, config_) + noise_[i];
  for (std::size_t i = 0; i < n; ++i)
    slopes_[i] = llg_rhs(i, config_, fields_[i]);

  spin::MomentConfiguration trial = config_;
  for (std::size_t i = 0; i < n; ++i) {
    predictor_[i] = config_[i] + dt * slopes_[i];
    trial.set(i, predictor_[i]);
  }

  // Corrector: average the slopes at the start and predicted points.
  for (std::size_t i = 0; i < n; ++i)
    fields_[i] = effective_field_of(i, trial) + noise_[i];
  for (std::size_t i = 0; i < n; ++i) {
    const Vec3 slope_end = llg_rhs(i, trial, fields_[i]);
    const Vec3 updated =
        config_[i] + (0.5 * dt) * (slopes_[i] + slope_end);
    config_.set(i, updated);  // set() renormalizes to unit length
  }
  time_ += dt;
}

void SpinDynamics::run(std::uint64_t n) {
  for (std::uint64_t k = 0; k < n; ++k) step();
}

}  // namespace wlsms::dynamics
