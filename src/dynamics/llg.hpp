#pragma once

/// \file llg.hpp
/// Stochastic Landau-Lifshitz-Gilbert spin dynamics.
///
/// The paper's introduction motivates Wang-Landau by the failure mode of
/// exactly this method: "molecular and spin dynamics simulation techniques
/// are serial in nature", and "for systems with corrugated energy surfaces
/// [they] tend to be stuck in local energy minima and unrealistically long
/// simulations would be required" (§I). This module implements the
/// alternative so the comparison can be *run* (bench_ablation_dynamics):
///
///   dm_i/dt = -1/(1+a^2) [ m_i x (H_i + h_i)
///                          + a m_i x (m_i x (H_i + h_i)) ]
///
/// in reduced units (gyromagnetic ratio and moment magnitude 1), with the
/// effective field H_i = -dE/dm_i from the Heisenberg model (+ anisotropy)
/// and a Langevin thermal field h_i obeying the fluctuation-dissipation
/// relation <h h> = 2 a k_B T / ((1+a^2) dt) per Cartesian component, so
/// the stationary distribution is the Boltzmann ensemble at T (validated
/// against Metropolis in tests/test_dynamics.cpp). Integration is Heun
/// (stochastic predictor-corrector) with renormalization.

#include <cstdint>

#include "common/rng.hpp"
#include "heisenberg/heisenberg.hpp"
#include "spin/moments.hpp"

namespace wlsms::dynamics {

/// Integration and bath parameters (reduced time units: 1/(gamma J-scale)).
struct LlgParameters {
  double damping = 0.1;        ///< Gilbert damping alpha (> 0 to relax)
  double timestep = 0.05;      ///< reduced-time step; stability needs
                               ///< dt * |H| << 1
  double temperature_k = 0.0;  ///< Langevin bath temperature; 0 = none
  std::uint64_t seed = 1;      ///< thermal-noise stream
};

/// Deterministic/stochastic LLG integrator over a Heisenberg energy.
class SpinDynamics {
 public:
  /// `model` must outlive the integrator.
  SpinDynamics(const heisenberg::HeisenbergModel& model,
               spin::MomentConfiguration initial, LlgParameters params);

  /// Advances one Heun step.
  void step();

  /// Advances n steps.
  void run(std::uint64_t n);

  const spin::MomentConfiguration& configuration() const { return config_; }
  double time() const { return time_; }
  double energy() const { return model_.energy(config_); }
  double magnetization() const { return config_.magnetization(); }
  double magnetization_z() const { return config_.magnetization_z(); }

  /// Effective field -dE/dm at site i for the current configuration
  /// (exposed for tests).
  Vec3 effective_field(std::size_t i) const;

 private:
  Vec3 llg_rhs(std::size_t i, const spin::MomentConfiguration& config,
               const Vec3& field) const;
  Vec3 effective_field_of(std::size_t i,
                          const spin::MomentConfiguration& config) const;

  const heisenberg::HeisenbergModel& model_;
  spin::MomentConfiguration config_;
  LlgParameters params_;
  Rng rng_;
  double time_ = 0.0;
  double noise_amplitude_ = 0.0;
  // Scratch buffers reused across steps.
  std::vector<Vec3> fields_;
  std::vector<Vec3> noise_;
  std::vector<Vec3> predictor_;
  std::vector<Vec3> slopes_;
};

}  // namespace wlsms::dynamics
