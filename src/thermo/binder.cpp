#include "thermo/binder.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"
#include "spin/moves.hpp"

namespace wlsms::thermo {

namespace {

CumulantPoint sample_at(const wl::EnergyFunction& energy,
                        spin::MomentConfiguration& state, double temperature_k,
                        const CumulantConfig& config, Rng& rng) {
  const double beta = units::beta_from_kelvin(temperature_k);
  double e = energy.total_energy(state);
  const spin::UniformSphereMove mover;

  double sum_m2 = 0.0;
  double sum_m4 = 0.0;
  std::uint64_t samples = 0;
  const std::uint64_t total =
      config.thermalization_steps + config.measurement_steps;
  for (std::uint64_t step = 0; step < total; ++step) {
    const spin::TrialMove move = mover.propose(state, rng);
    const double e_new = energy.energy_after_move(state, move, e);
    const double delta = e_new - e;
    if (delta <= 0.0 || rng.uniform() < std::exp(-beta * delta)) {
      state.set(move.site, move.new_direction);
      e = e_new;
    }
    if (step >= config.thermalization_steps &&
        (step - config.thermalization_steps) % config.measure_interval == 0) {
      const double m = state.magnetization();
      const double m2 = m * m;
      sum_m2 += m2;
      sum_m4 += m2 * m2;
      ++samples;
    }
    if ((step & ((1u << 22) - 1)) == 0) e = energy.total_energy(state);
  }

  CumulantPoint point;
  point.temperature = temperature_k;
  WLSMS_ENSURES(samples > 0);
  point.m2 = sum_m2 / static_cast<double>(samples);
  point.m4 = sum_m4 / static_cast<double>(samples);
  point.binder_u4 = 1.0 - point.m4 / (3.0 * point.m2 * point.m2);
  return point;
}

}  // namespace

std::vector<CumulantPoint> binder_cumulant_sweep(
    const wl::EnergyFunction& energy, const std::vector<double>& temperatures,
    const CumulantConfig& config, Rng& rng) {
  WLSMS_EXPECTS(!temperatures.empty());
  WLSMS_EXPECTS(config.measure_interval >= 1);
  for (double t : temperatures) WLSMS_EXPECTS(t > 0.0);

  // Anneal hot -> cold, warm-starting each chain from the previous one.
  std::vector<std::size_t> order(temperatures.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return temperatures[a] > temperatures[b];
  });

  std::vector<CumulantPoint> points(temperatures.size());
  spin::MomentConfiguration state =
      spin::MomentConfiguration::random(energy.n_sites(), rng);
  for (std::size_t i : order)
    points[i] = sample_at(energy, state, temperatures[i], config, rng);
  return points;
}

double binder_crossing(const std::vector<CumulantPoint>& small_system,
                       const std::vector<CumulantPoint>& large_system) {
  WLSMS_EXPECTS(small_system.size() == large_system.size());
  WLSMS_EXPECTS(small_system.size() >= 2);

  // Work on the temperature-sorted difference d(T) = U4_small - U4_large.
  std::vector<std::size_t> order(small_system.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return small_system[a].temperature < small_system[b].temperature;
  });

  for (std::size_t k = 1; k < order.size(); ++k) {
    const CumulantPoint& s0 = small_system[order[k - 1]];
    const CumulantPoint& s1 = small_system[order[k]];
    const CumulantPoint& l0 = large_system[order[k - 1]];
    const CumulantPoint& l1 = large_system[order[k]];
    WLSMS_EXPECTS(s0.temperature == l0.temperature);
    const double d0 = s0.binder_u4 - l0.binder_u4;
    const double d1 = s1.binder_u4 - l1.binder_u4;
    if (d0 == 0.0) return s0.temperature;
    if (d0 < 0.0 && d1 >= 0.0) {
      // Linear interpolation of the sign change.
      const double frac = d0 / (d0 - d1);
      return s0.temperature + frac * (s1.temperature - s0.temperature);
    }
  }
  return -1.0;
}

}  // namespace wlsms::thermo
