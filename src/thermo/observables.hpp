#pragma once

/// \file observables.hpp
/// Thermodynamics from a converged density of states.
///
/// Implements eqs. 9-16 of the paper: with the moments
///
///   I_n(T) = Integral E^n g(E) e^{-E/(k_B T)} dE                  (eq. 12)
///
/// one gets Z = I_0 (13), F = -k_B T ln I_0 (14), U = I_1/I_0 (15) and
///
///   c = (I_2/I_0 - I_1^2/I_0^2) / (k_B T^2)                       (eq. 16).
///
/// Because only ln g is known (and only up to the unknown additive constant
/// ln g_0, eq. 9), every quantity is computed in log space with the
/// log-sum-exp trick; F carries the g_0 ambiguity (the paper plots
/// F' = F + k_B T ln g_0, Fig. 5) while U, c and S' = (U - F')/T are
/// absolute, exactly as the paper notes below eq. 11.

#include <cstddef>
#include <utility>
#include <vector>

#include "wl/dos_grid.hpp"

namespace wlsms::thermo {

/// A tabulated ln g(E): energies (bin centres) and ln g values.
struct DosTable {
  std::vector<double> energy;  ///< [Ry]
  std::vector<double> ln_g;    ///< unnormalized
};

/// Extracts the visited part of a DosGrid as a table.
DosTable dos_table(const wl::DosGrid& dos);

/// Thermodynamic quantities at one temperature.
struct Observables {
  double temperature = 0.0;    ///< [K]
  double free_energy = 0.0;    ///< F' = -k_B T ln(I_0) [Ry] (g0-ambiguous)
  double internal_energy = 0.0;///< U = I_1/I_0 [Ry] (absolute)
  double specific_heat = 0.0;  ///< c, eq. 16 [Ry/K] (absolute)
  double entropy = 0.0;        ///< S' = (U - F')/T [Ry/K] (g0-ambiguous)
};

/// Evaluates eqs. 13-16 at `temperature_k` (> 0) from the tabulated DOS.
Observables observables_at(const DosTable& dos, double temperature_k);

/// Evaluates a whole temperature sweep [t_min, t_max] with `n_points`
/// uniformly spaced temperatures.
std::vector<Observables> temperature_sweep(const DosTable& dos, double t_min,
                                           double t_max, std::size_t n_points);

/// Location and height of the specific-heat peak over a sweep: the paper's
/// Curie-temperature estimate ("a transition temperature ... can be read
/// off these graphs", Fig. 6). Runs a coarse sweep then refines by golden-
/// section search to `tolerance_k`.
struct CurieEstimate {
  double tc = 0.0;            ///< peak position [K]
  double peak_height = 0.0;   ///< c at the peak [Ry/K]
};
CurieEstimate estimate_curie_temperature(const DosTable& dos, double t_min,
                                         double t_max,
                                         std::size_t coarse_points = 200,
                                         double tolerance_k = 0.5);

}  // namespace wlsms::thermo
