#pragma once

/// \file binder.hpp
/// Binder-cumulant finite-size analysis.
///
/// The paper's §III closes with: "Calculations with 128 and 432 atom cells
/// are currently under way and an estimate [of] the true transition
/// temperature predicted by the WL-LSMS method using the finite size
/// scaling techniques of [Binder & Landau, PRB 30, 1477 (1984)] will be
/// published". This module implements that analysis: the fourth-order
/// magnetization cumulant
///
///   U4(T, L) = 1 - <m^4> / (3 <m^2>^2)
///
/// is size-independent at the critical temperature, so the crossing of
/// U4(T, L1) and U4(T, L2) estimates the bulk Tc free of the leading
/// finite-size shift that moves the specific-heat peaks of Fig. 6.
/// Moments are accumulated by canonical (Metropolis) sampling per
/// temperature — the natural estimator for fixed-T moments of m.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "wl/energy_function.hpp"

namespace wlsms::thermo {

/// Magnetization moments at one temperature for one system size.
struct CumulantPoint {
  double temperature = 0.0;  ///< [K]
  double m2 = 0.0;           ///< <m^2> per site
  double m4 = 0.0;           ///< <m^4> per site
  double binder_u4 = 0.0;    ///< 1 - m4 / (3 m2^2)
};

/// Sampling effort for the cumulant estimation.
struct CumulantConfig {
  std::uint64_t thermalization_steps = 100000;
  std::uint64_t measurement_steps = 400000;
  std::uint64_t measure_interval = 10;
};

/// Estimates U4(T) over `temperatures` for `energy` by annealed Metropolis
/// sampling (hot to cold, warm-started). Returned in the order given.
std::vector<CumulantPoint> binder_cumulant_sweep(
    const wl::EnergyFunction& energy, const std::vector<double>& temperatures,
    const CumulantConfig& config, Rng& rng);

/// The crossing temperature of two U4(T) curves (same temperature grid):
/// linear interpolation of the sign change of U4_small - U4_large. In the
/// ordered phase U4 -> 2/3 for every size and in the disordered phase the
/// smaller system has the larger U4, so a unique crossing brackets Tc.
/// Returns a negative value when no crossing exists on the grid.
double binder_crossing(const std::vector<CumulantPoint>& small_system,
                       const std::vector<CumulantPoint>& large_system);

}  // namespace wlsms::thermo
