#pragma once

/// \file joint_observables.hpp
/// Thermodynamics from a joint density of states g(E, M).
///
/// The joint DOS yields the magnetization curve M(T) (paper §II-B: the
/// moments are recovered "in a joint density of states calculation") and
/// the constrained free-energy profile
///
///   F(M; T) = -k_B T ln Integral g(E, M) e^{-E/(k_B T)} dE ,
///
/// whose barrier between the two field-free minima is the temperature-
/// dependent switching barrier of the FePt nanoparticle application
/// (paper refs [14], [15] and §V outlook).

#include <cstddef>
#include <vector>

#include "wl/joint_dos.hpp"

namespace wlsms::thermo {

/// Constrained free-energy profile at one temperature.
struct FreeEnergyProfile {
  double temperature = 0.0;       ///< [K]
  std::vector<double> m;          ///< magnetization bin centres
  std::vector<double> f;          ///< F(M; T) [Ry], min shifted to zero
};

/// F(M; T) over the visited magnetization bins.
FreeEnergyProfile free_energy_profile(const wl::JointDos& dos,
                                      double temperature_k);

/// Height of the barrier separating M < 0 from M > 0 at `temperature_k`:
/// F at the maximum of the profile over the interior, minus the lower of
/// the two boundary minima. Returns 0 if the profile is barrier-free.
double switching_barrier(const wl::JointDos& dos, double temperature_k);

/// Thermal expectation <|M|>(T) from the joint DOS.
double mean_abs_magnetization(const wl::JointDos& dos, double temperature_k);

/// Sweep of <|M|>(T); the magnetization-vs-temperature curve.
std::vector<std::pair<double, double>> magnetization_curve(
    const wl::JointDos& dos, double t_min, double t_max, std::size_t n_points);

}  // namespace wlsms::thermo
