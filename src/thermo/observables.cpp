#include "thermo/observables.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace wlsms::thermo {

DosTable dos_table(const wl::DosGrid& dos) {
  DosTable table;
  for (const auto& [e, ln_g] : dos.visited_series()) {
    table.energy.push_back(e);
    table.ln_g.push_back(ln_g);
  }
  return table;
}

namespace {

/// Boltzmann-weighted statistics of the tabulated DOS at inverse
/// temperature beta, computed stably: every weight is shifted by the
/// maximum log-weight L before exponentiation.
struct WeightedStats {
  double log_i0;   ///< ln Sum_i g_i exp(-beta E_i)  (bin width dropped: it
                   ///< shifts F by a T-linear constant, like ln g_0)
  double mean_e;   ///< <E>
  double var_e;    ///< <E^2> - <E>^2
};

WeightedStats weighted_stats(const DosTable& dos, double beta) {
  WLSMS_EXPECTS(!dos.energy.empty());
  WLSMS_EXPECTS(dos.energy.size() == dos.ln_g.size());

  double max_log_w = -1e300;
  for (std::size_t i = 0; i < dos.energy.size(); ++i)
    max_log_w = std::max(max_log_w, dos.ln_g[i] - beta * dos.energy[i]);

  double sum_w = 0.0;
  double sum_we = 0.0;
  double sum_we2 = 0.0;
  for (std::size_t i = 0; i < dos.energy.size(); ++i) {
    const double w = std::exp(dos.ln_g[i] - beta * dos.energy[i] - max_log_w);
    sum_w += w;
    sum_we += w * dos.energy[i];
    sum_we2 += w * dos.energy[i] * dos.energy[i];
  }
  const double mean = sum_we / sum_w;
  const double mean2 = sum_we2 / sum_w;
  return {max_log_w + std::log(sum_w), mean,
          std::max(0.0, mean2 - mean * mean)};
}

}  // namespace

Observables observables_at(const DosTable& dos, double temperature_k) {
  WLSMS_EXPECTS(temperature_k > 0.0);
  const double kt = units::k_boltzmann_ry * temperature_k;
  const WeightedStats stats = weighted_stats(dos, 1.0 / kt);

  Observables obs;
  obs.temperature = temperature_k;
  obs.free_energy = -kt * stats.log_i0;                       // eq. 14
  obs.internal_energy = stats.mean_e;                         // eq. 15
  obs.specific_heat =
      stats.var_e / (units::k_boltzmann_ry * temperature_k * temperature_k);
  // eq. 16: c = (I2/I0 - I1^2/I0^2)/(k_B T^2) = Var(E)/(k_B T^2).
  obs.entropy = (obs.internal_energy - obs.free_energy) / temperature_k;
  return obs;
}

std::vector<Observables> temperature_sweep(const DosTable& dos, double t_min,
                                           double t_max,
                                           std::size_t n_points) {
  WLSMS_EXPECTS(t_max > t_min && t_min > 0.0);
  WLSMS_EXPECTS(n_points >= 2);
  std::vector<Observables> sweep;
  sweep.reserve(n_points);
  for (std::size_t k = 0; k < n_points; ++k) {
    const double t =
        t_min + (t_max - t_min) * static_cast<double>(k) /
                    static_cast<double>(n_points - 1);
    sweep.push_back(observables_at(dos, t));
  }
  return sweep;
}

CurieEstimate estimate_curie_temperature(const DosTable& dos, double t_min,
                                         double t_max,
                                         std::size_t coarse_points,
                                         double tolerance_k) {
  WLSMS_EXPECTS(coarse_points >= 8);
  WLSMS_EXPECTS(tolerance_k > 0.0);
  const std::vector<Observables> sweep =
      temperature_sweep(dos, t_min, t_max, coarse_points);

  std::size_t best = 0;
  for (std::size_t k = 1; k < sweep.size(); ++k)
    if (sweep[k].specific_heat > sweep[best].specific_heat) best = k;

  // Golden-section refinement in the bracketing interval.
  const double step = (t_max - t_min) / static_cast<double>(coarse_points - 1);
  double lo = std::max(t_min, sweep[best].temperature - step);
  double hi = std::min(t_max, sweep[best].temperature + step);
  const double phi = 0.5 * (std::sqrt(5.0) - 1.0);
  const auto c_at = [&dos](double t) {
    return observables_at(dos, t).specific_heat;
  };
  double x1 = hi - phi * (hi - lo);
  double x2 = lo + phi * (hi - lo);
  double c1 = c_at(x1);
  double c2 = c_at(x2);
  while (hi - lo > tolerance_k) {
    if (c1 < c2) {
      lo = x1;
      x1 = x2;
      c1 = c2;
      x2 = lo + phi * (hi - lo);
      c2 = c_at(x2);
    } else {
      hi = x2;
      x2 = x1;
      c2 = c1;
      x1 = hi - phi * (hi - lo);
      c1 = c_at(x1);
    }
  }
  const double tc = 0.5 * (lo + hi);
  return {tc, c_at(tc)};
}

}  // namespace wlsms::thermo
