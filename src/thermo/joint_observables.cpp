#include "thermo/joint_observables.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace wlsms::thermo {

namespace {

/// ln Sum_e g(e, m-bin) exp(-beta e) per magnetization bin; bins never
/// visited at any energy get -infinity (excluded).
std::vector<double> ln_constrained_z(const wl::JointDos& dos, double beta) {
  const std::size_t m_bins = dos.m_bins();
  const std::size_t e_bins = dos.e_bins();
  std::vector<double> ln_z(m_bins, -1e300);

  for (std::size_t bm = 0; bm < m_bins; ++bm) {
    double max_log_w = -1e300;
    for (std::size_t be = 0; be < e_bins; ++be) {
      if (!dos.cell_visited(be, bm)) continue;
      max_log_w = std::max(max_log_w,
                           dos.cell_ln_g(be, bm) - beta * dos.e_center(be));
    }
    if (max_log_w <= -1e299) continue;
    double sum = 0.0;
    for (std::size_t be = 0; be < e_bins; ++be) {
      if (!dos.cell_visited(be, bm)) continue;
      sum += std::exp(dos.cell_ln_g(be, bm) - beta * dos.e_center(be) -
                      max_log_w);
    }
    ln_z[bm] = max_log_w + std::log(sum);
  }
  return ln_z;
}

}  // namespace

FreeEnergyProfile free_energy_profile(const wl::JointDos& dos,
                                      double temperature_k) {
  WLSMS_EXPECTS(temperature_k > 0.0);
  const double kt = units::k_boltzmann_ry * temperature_k;
  const std::vector<double> ln_z = ln_constrained_z(dos, 1.0 / kt);

  FreeEnergyProfile profile;
  profile.temperature = temperature_k;
  double f_min = 1e300;
  for (std::size_t bm = 0; bm < dos.m_bins(); ++bm) {
    if (ln_z[bm] <= -1e299) continue;
    profile.m.push_back(dos.m_center(bm));
    profile.f.push_back(-kt * ln_z[bm]);
    f_min = std::min(f_min, profile.f.back());
  }
  for (double& f : profile.f) f -= f_min;
  return profile;
}

double switching_barrier(const wl::JointDos& dos, double temperature_k) {
  const FreeEnergyProfile profile = free_energy_profile(dos, temperature_k);
  if (profile.m.size() < 3) return 0.0;

  // Minima on the negative-M and positive-M branches, maximum in between.
  double min_neg = 1e300;
  double min_pos = 1e300;
  for (std::size_t i = 0; i < profile.m.size(); ++i) {
    if (profile.m[i] < 0.0) min_neg = std::min(min_neg, profile.f[i]);
    if (profile.m[i] > 0.0) min_pos = std::min(min_pos, profile.f[i]);
  }
  if (min_neg >= 1e299 || min_pos >= 1e299) return 0.0;

  // Barrier: maximum of F along the lowest path crossing M = 0; with a 1-D
  // profile that is simply F near M = 0.
  double f_at_zero = 1e300;
  for (std::size_t i = 0; i < profile.m.size(); ++i)
    if (std::abs(profile.m[i]) < 2.0 / static_cast<double>(dos.m_bins()))
      f_at_zero = std::min(f_at_zero, profile.f[i]);
  if (f_at_zero >= 1e299) {
    // No sampled states near M = 0; use the interior maximum as a fallback.
    f_at_zero = *std::max_element(profile.f.begin(), profile.f.end());
  }
  const double barrier = f_at_zero - std::max(min_neg, min_pos);
  return std::max(0.0, barrier);
}

double mean_abs_magnetization(const wl::JointDos& dos, double temperature_k) {
  WLSMS_EXPECTS(temperature_k > 0.0);
  const double beta = 1.0 / (units::k_boltzmann_ry * temperature_k);
  const std::vector<double> ln_z = ln_constrained_z(dos, beta);

  double max_ln_z = -1e300;
  for (double v : ln_z) max_ln_z = std::max(max_ln_z, v);
  WLSMS_ENSURES(max_ln_z > -1e299);

  double sum_w = 0.0;
  double sum_wm = 0.0;
  for (std::size_t bm = 0; bm < ln_z.size(); ++bm) {
    if (ln_z[bm] <= -1e299) continue;
    const double w = std::exp(ln_z[bm] - max_ln_z);
    sum_w += w;
    sum_wm += w * std::abs(dos.m_center(bm));
  }
  return sum_wm / sum_w;
}

std::vector<std::pair<double, double>> magnetization_curve(
    const wl::JointDos& dos, double t_min, double t_max,
    std::size_t n_points) {
  WLSMS_EXPECTS(t_max > t_min && t_min > 0.0);
  WLSMS_EXPECTS(n_points >= 2);
  std::vector<std::pair<double, double>> curve;
  curve.reserve(n_points);
  for (std::size_t k = 0; k < n_points; ++k) {
    const double t =
        t_min + (t_max - t_min) * static_cast<double>(k) /
                    static_cast<double>(n_points - 1);
    curve.emplace_back(t, mean_abs_magnetization(dos, t));
  }
  return curve;
}

}  // namespace wlsms::thermo
