#include "spin/rotation.hpp"

#include <algorithm>
#include <cmath>

namespace wlsms::spin {

namespace {
constexpr Complex kI{0.0, 1.0};
}

Spin2x2 pauli_x() {
  return {Complex{0, 0}, Complex{1, 0}, Complex{1, 0}, Complex{0, 0}};
}

Spin2x2 pauli_y() { return {Complex{0, 0}, -kI, kI, Complex{0, 0}}; }

Spin2x2 pauli_z() {
  return {Complex{1, 0}, Complex{0, 0}, Complex{0, 0}, Complex{-1, 0}};
}

Spin2x2 pauli_dot(const Vec3& e) {
  return {Complex{e.z, 0.0}, Complex{e.x, -e.y}, Complex{e.x, e.y},
          Complex{-e.z, 0.0}};
}

Spin2x2 su2_from_direction(const Vec3& e) {
  // Spherical angles of e; rotation R = exp(-i phi sigma_z/2)
  //                                  * exp(-i theta sigma_y/2).
  const double theta = std::acos(std::clamp(e.z, -1.0, 1.0));
  const double phi = std::atan2(e.y, e.x);
  const double ct = std::cos(0.5 * theta);
  const double st = std::sin(0.5 * theta);
  const Complex em{std::cos(0.5 * phi), -std::sin(0.5 * phi)};
  const Complex ep{std::cos(0.5 * phi), std::sin(0.5 * phi)};
  return {em * ct, -em * st, ep * st, ep * ct};
}

Spin2x2 multiply2(const Spin2x2& a, const Spin2x2& b) {
  return {a[0] * b[0] + a[1] * b[2], a[0] * b[1] + a[1] * b[3],
          a[2] * b[0] + a[3] * b[2], a[2] * b[1] + a[3] * b[3]};
}

Spin2x2 dagger(const Spin2x2& a) {
  return {std::conj(a[0]), std::conj(a[2]), std::conj(a[1]), std::conj(a[3])};
}

Spin2x2 conjugate(const Spin2x2& r, const Spin2x2& a) {
  return multiply2(multiply2(r, a), dagger(r));
}

Spin2x2 rotated_t_matrix(Complex t_up, Complex t_dn, const Vec3& e) {
  const Complex t_bar = 0.5 * (t_up + t_dn);
  const Complex dt = 0.5 * (t_up - t_dn);
  const Spin2x2 sde = pauli_dot(e);
  return {t_bar + dt * sde[0], dt * sde[1], dt * sde[2], t_bar + dt * sde[3]};
}

double max_abs_diff(const Spin2x2& a, const Spin2x2& b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < 4; ++i)
    worst = std::max(worst, std::abs(a[i] - b[i]));
  return worst;
}

}  // namespace wlsms::spin
