#pragma once

/// \file serialize.hpp
/// Binary (de)serialization of moment configurations on the shared serial
/// schema (common/serial.hpp). Used by both persistence (wl/checkpoint) and
/// transport (comm/wire) so a configuration has exactly one byte layout
/// everywhere: u64 site count, then 3 raw IEEE-754 doubles per site.
/// Round trips are bit-exact (decode uses from_raw_directions).

#include "common/serial.hpp"
#include "spin/moments.hpp"

namespace wlsms::spin {

/// Appends `moments` to `encoder` (payload fragment, no header).
void encode_moments(serial::Encoder& encoder,
                    const MomentConfiguration& moments);

/// Reads a configuration previously written by encode_moments; throws
/// serial::SerializationError on truncation or a corrupt site count.
MomentConfiguration decode_moments(serial::Decoder& decoder);

/// Framed single-configuration convenience (header + payload), used where
/// a configuration travels alone rather than inside a larger message.
std::vector<std::byte> encode_moments_framed(const MomentConfiguration&);
MomentConfiguration decode_moments_framed(const std::vector<std::byte>&);

}  // namespace wlsms::spin
