#include "spin/serialize.hpp"

namespace wlsms::spin {

void encode_moments(serial::Encoder& encoder,
                    const MomentConfiguration& moments) {
  encoder.put_u64(moments.size());
  for (const Vec3& d : moments.directions()) {
    encoder.put_double(d.x);
    encoder.put_double(d.y);
    encoder.put_double(d.z);
  }
}

MomentConfiguration decode_moments(serial::Decoder& decoder) {
  const std::uint64_t n = decoder.get_u64();
  if (n == 0)
    throw serial::SerializationError("moment configuration with 0 sites");
  decoder.expect_sequence(n, 3 * sizeof(double));
  std::vector<Vec3> dirs(static_cast<std::size_t>(n));
  for (Vec3& d : dirs) {
    d.x = decoder.get_double();
    d.y = decoder.get_double();
    d.z = decoder.get_double();
    if (!(d.norm2() > 0.0))
      throw serial::SerializationError("corrupt moment direction (zero/NaN)");
  }
  return MomentConfiguration::from_raw_directions(std::move(dirs));
}

std::vector<std::byte> encode_moments_framed(
    const MomentConfiguration& moments) {
  serial::Encoder encoder;
  serial::write_header(encoder, serial::PayloadKind::kMomentConfiguration);
  encode_moments(encoder, moments);
  return encoder.take();
}

MomentConfiguration decode_moments_framed(
    const std::vector<std::byte>& buffer) {
  serial::Decoder decoder(buffer);
  serial::read_header(decoder, serial::PayloadKind::kMomentConfiguration);
  MomentConfiguration moments = decode_moments(decoder);
  decoder.expect_end();
  return moments;
}

}  // namespace wlsms::spin
