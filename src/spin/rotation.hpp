#pragma once

/// \file rotation.hpp
/// SU(2) spin rotations and Pauli algebra. In the frozen-potential picture
/// the applied local field "simply rotates the exchange potential on an
/// atomic site" (paper §II-B): the single-site scattering matrix of an atom
/// whose moment points along e is t(e) = R(e) diag(t_up, t_dn) R(e)^dagger,
/// with R(e) the SU(2) rotation taking z to e. Equivalently
/// t(e) = t_bar * 1 + dt * (sigma . e); both forms are provided and tested
/// against each other.

#include <array>

#include "common/vec3.hpp"
#include "linalg/matrix.hpp"

namespace wlsms::spin {

using linalg::Complex;

/// 2x2 complex matrix in a flat array, row-major: {m00, m01, m10, m11}.
using Spin2x2 = std::array<Complex, 4>;

/// Pauli matrices sigma_x, sigma_y, sigma_z.
Spin2x2 pauli_x();
Spin2x2 pauli_y();
Spin2x2 pauli_z();

/// sigma . e for a unit vector e.
Spin2x2 pauli_dot(const Vec3& e);

/// SU(2) rotation R with R sigma_z R^dagger = sigma . e. The standard
/// half-angle construction; for e = -z (theta = pi, phi undefined) a fixed
/// azimuth of 0 is used, which is a valid representative.
Spin2x2 su2_from_direction(const Vec3& e);

/// Conjugation R A R^dagger.
Spin2x2 conjugate(const Spin2x2& r, const Spin2x2& a);

/// Matrix product A B for 2x2 blocks.
Spin2x2 multiply2(const Spin2x2& a, const Spin2x2& b);

/// Hermitian conjugate.
Spin2x2 dagger(const Spin2x2& a);

/// Spin-diagonal scattering matrix rotated to direction e:
/// t(e) = t_bar * 1 + dt * (sigma . e), with t_bar = (t_up + t_dn)/2 and
/// dt = (t_up - t_dn)/2.
Spin2x2 rotated_t_matrix(Complex t_up, Complex t_dn, const Vec3& e);

/// Max |a_ij - b_ij| over the four elements.
double max_abs_diff(const Spin2x2& a, const Spin2x2& b);

}  // namespace wlsms::spin
