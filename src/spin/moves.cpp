#include "spin/moves.hpp"

#include <cmath>

#include "common/error.hpp"

namespace wlsms::spin {

TrialMove UniformSphereMove::propose(const MomentConfiguration& config,
                                     Rng& rng) const {
  TrialMove move;
  move.site = rng.uniform_index(config.size());
  move.new_direction = rng.unit_vector();
  return move;
}

ConeMove::ConeMove(double half_angle) : half_angle_(half_angle) {
  WLSMS_EXPECTS(half_angle > 0.0 && half_angle <= std::acos(-1.0));
}

TrialMove ConeMove::propose(const MomentConfiguration& config,
                            Rng& rng) const {
  TrialMove move;
  move.site = rng.uniform_index(config.size());
  const Vec3 e = config[move.site];

  // Uniform point on the spherical cap around +z of opening half_angle_:
  // cos(theta) uniform in [cos(half_angle), 1].
  const double cos_min = std::cos(half_angle_);
  const double cos_theta = rng.uniform(cos_min, 1.0);
  const double sin_theta = std::sqrt(std::max(0.0, 1.0 - cos_theta * cos_theta));
  const double phi = rng.uniform(0.0, 2.0 * std::acos(-1.0));
  const Vec3 local{sin_theta * std::cos(phi), sin_theta * std::sin(phi),
                   cos_theta};

  // Rotate the cap from +z onto the current direction e via an orthonormal
  // frame {u, v, e}.
  Vec3 axis = (std::abs(e.z) < 0.9) ? Vec3{0.0, 0.0, 1.0} : Vec3{1.0, 0.0, 0.0};
  const Vec3 u = e.cross(axis).normalized();
  const Vec3 v = e.cross(u);
  move.new_direction =
      (u * local.x + v * local.y + e * local.z).normalized();
  return move;
}

}  // namespace wlsms::spin
