#pragma once

/// \file moments.hpp
/// Magnetic moment configurations: the classical collective variables the
/// Wang-Landau walk moves through. Each atom carries a unit vector e_i, the
/// direction its frozen-potential exchange field is rotated to (paper
/// §II-B/Fig. 2); the moment magnitude is fixed by the ferromagnetic
/// reference potential.

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "common/vec3.hpp"

namespace wlsms::spin {

/// A set of N unit-vector moment directions {e_i}.
class MomentConfiguration {
 public:
  MomentConfiguration() = default;

  /// All moments along +z: the ferromagnetic reference state.
  static MomentConfiguration ferromagnetic(std::size_t n);

  /// Independent uniform directions on the sphere (infinite-temperature
  /// state); the usual WL starting point.
  static MomentConfiguration random(std::size_t n, Rng& rng);

  /// Checkerboard +z/-z according to `sublattice` (one entry per atom,
  /// false = up). For bcc cells this realizes the B2 antiferromagnetic
  /// arrangement the paper uses as the top of the energy range.
  static MomentConfiguration staggered(const std::vector<bool>& sublattice);

  /// From explicit directions (normalized on ingestion).
  static MomentConfiguration from_directions(std::vector<Vec3> directions);

  /// From directions that are already unit vectors, taken bit-for-bit with
  /// NO renormalization. Deserialization must use this: normalization is
  /// not bitwise idempotent, and both the checkpoint and the comm wire
  /// format promise that a configuration survives a round trip unchanged
  /// to the last ulp.
  static MomentConfiguration from_raw_directions(std::vector<Vec3> directions);

  std::size_t size() const { return directions_.size(); }
  const Vec3& operator[](std::size_t i) const { return directions_[i]; }
  const std::vector<Vec3>& directions() const { return directions_; }

  /// Replaces moment i (normalizes the input).
  void set(std::size_t i, const Vec3& direction);

  /// Total moment vector Sum_i e_i.
  Vec3 total_moment() const;

  /// Magnetization per site |Sum_i e_i| / N in [0, 1].
  double magnetization() const;

  /// z-component of the total moment per site, in [-1, 1]. This is the
  /// second collective variable of the joint DOS g(E, M_z) used for
  /// switching-barrier studies (paper ref [14]).
  double magnetization_z() const;

 private:
  std::vector<Vec3> directions_;
};

}  // namespace wlsms::spin
