#include "spin/moments.hpp"

#include "common/error.hpp"

namespace wlsms::spin {

MomentConfiguration MomentConfiguration::ferromagnetic(std::size_t n) {
  WLSMS_EXPECTS(n > 0);
  MomentConfiguration c;
  c.directions_.assign(n, Vec3{0.0, 0.0, 1.0});
  return c;
}

MomentConfiguration MomentConfiguration::random(std::size_t n, Rng& rng) {
  WLSMS_EXPECTS(n > 0);
  MomentConfiguration c;
  c.directions_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) c.directions_.push_back(rng.unit_vector());
  return c;
}

MomentConfiguration MomentConfiguration::staggered(
    const std::vector<bool>& sublattice) {
  WLSMS_EXPECTS(!sublattice.empty());
  MomentConfiguration c;
  c.directions_.reserve(sublattice.size());
  for (bool flipped : sublattice)
    c.directions_.push_back(Vec3{0.0, 0.0, flipped ? -1.0 : 1.0});
  return c;
}

MomentConfiguration MomentConfiguration::from_directions(
    std::vector<Vec3> directions) {
  WLSMS_EXPECTS(!directions.empty());
  MomentConfiguration c;
  c.directions_ = std::move(directions);
  for (Vec3& d : c.directions_) {
    WLSMS_EXPECTS(d.norm2() > 0.0);
    d = d.normalized();
  }
  return c;
}

MomentConfiguration MomentConfiguration::from_raw_directions(
    std::vector<Vec3> directions) {
  WLSMS_EXPECTS(!directions.empty());
  MomentConfiguration c;
  c.directions_ = std::move(directions);
  for (const Vec3& d : c.directions_) WLSMS_EXPECTS(d.norm2() > 0.0);
  return c;
}

void MomentConfiguration::set(std::size_t i, const Vec3& direction) {
  WLSMS_EXPECTS(i < size());
  WLSMS_EXPECTS(direction.norm2() > 0.0);
  directions_[i] = direction.normalized();
}

Vec3 MomentConfiguration::total_moment() const {
  Vec3 m;
  for (const Vec3& d : directions_) m += d;
  return m;
}

double MomentConfiguration::magnetization() const {
  return total_moment().norm() / static_cast<double>(size());
}

double MomentConfiguration::magnetization_z() const {
  return total_moment().z / static_cast<double>(size());
}

}  // namespace wlsms::spin
