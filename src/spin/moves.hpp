#pragma once

/// \file moves.hpp
/// Trial-move generators for the Monte Carlo layers.
///
/// The paper's WL driver "generates a new trial move for a given instance by
/// randomly picking one moment in its set and generating a new random
/// direction on a sphere for it" (§II-C); that is UniformSphereMove. The
/// Metropolis baseline additionally offers a cone move, the standard choice
/// for continuous spins at low temperature.

#include <cstddef>

#include "common/rng.hpp"
#include "spin/moments.hpp"

namespace wlsms::spin {

/// A proposed single-moment update.
struct TrialMove {
  std::size_t site = 0;
  Vec3 new_direction;
};

/// Picks a uniformly random site and a uniformly random new direction on
/// the sphere (the paper's move; symmetric, ergodic, temperature-free).
class UniformSphereMove {
 public:
  TrialMove propose(const MomentConfiguration& config, Rng& rng) const;
};

/// Picks a uniformly random site and perturbs its direction within a cone of
/// opening `half_angle` radians around the current direction. Symmetric
/// (uniform over the spherical cap), so no proposal-ratio correction is
/// needed in acceptance rules.
class ConeMove {
 public:
  explicit ConeMove(double half_angle);
  TrialMove propose(const MomentConfiguration& config, Rng& rng) const;
  double half_angle() const { return half_angle_; }

 private:
  double half_angle_;
};

}  // namespace wlsms::spin
