#pragma once

/// \file des.hpp
/// Discrete-event simulation of the two-level WL-LSMS parallelization
/// (paper Fig. 3): M walkers, each bound to an LSMS instance of N cores
/// (one atom per core), feeding one or more Wang-Landau master processes.
///
/// The instance compute time per energy evaluation comes from the analytic
/// KKR cost model (lsms/cost_model.hpp) and the machine's sustained per-core
/// rate; the master serializes result processing with a fixed service time;
/// messages pay a one-way latency. The simulator reproduces the paper's
/// §IV experiments — weak scaling (Fig. 7), sustained performance
/// (Table II), the production core-hour budgets (Table I) — and the §V
/// outlook ablation: the single-master Amdahl wall for fast energy
/// functions and its removal by multiple masters.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "cluster/machine.hpp"
#include "lsms/cost_model.hpp"

namespace wlsms::cluster {

/// One simulated WL-LSMS job.
struct JobDescription {
  std::size_t n_atoms = 1024;        ///< atoms per walker = cores per instance
  std::size_t n_walkers = 10;        ///< concurrent LSMS instances
  std::size_t steps_per_walker = 20; ///< energy calculations per walker
  std::size_t n_masters = 1;         ///< Wang-Landau driver processes
  lsms::LsmsFidelity fidelity;       ///< production KKR fidelity
  /// Relative standard deviation of per-evaluation compute time (OS and
  /// network noise); 0 disables jitter.
  double compute_jitter = 0.005;
  std::uint64_t seed = 1;            ///< jitter stream seed
  /// Override for the per-evaluation compute time [s]; <= 0 uses the
  /// analytic cost model. Used by the multi-master ablation to emulate
  /// "cases where the energy evaluation [is] very fast" (§V).
  double energy_time_override_s = 0.0;
};

/// Aggregate result of one simulated job.
struct SimulationResult {
  std::size_t n_walkers = 0;
  std::size_t cores = 0;            ///< instance cores + one master node
  double makespan_s = 0.0;          ///< job start to last result processed
  double total_flops = 0.0;         ///< retired by all instances
  double sustained_flops = 0.0;     ///< total_flops / makespan
  double fraction_of_peak = 0.0;    ///< sustained / (cores * peak-per-core)
  double core_hours = 0.0;          ///< makespan * cores / 3600
  double master_busy_fraction = 0.0;///< busiest master's utilization
  std::uint64_t results_processed = 0;
};

/// Runs the discrete-event simulation of `job` on `machine`.
SimulationResult simulate_wl_lsms(const MachineDescription& machine,
                                  const JobDescription& job);

/// Weak scaling (paper Fig. 7): fixed steps per walker, growing walker
/// count; returns one SimulationResult per entry of `walker_counts`.
std::vector<SimulationResult> weak_scaling(const MachineDescription& machine,
                                           JobDescription base,
                                           const std::vector<std::size_t>&
                                               walker_counts);

/// Strong scaling (§IV text): fixed *total* number of samples distributed
/// over a growing walker count.
std::vector<SimulationResult> strong_scaling(const MachineDescription& machine,
                                             JobDescription base,
                                             std::size_t total_steps,
                                             const std::vector<std::size_t>&
                                                 walker_counts);

}  // namespace wlsms::cluster
