#include "cluster/des.hpp"

#include <algorithm>
#include <queue>

#include "common/error.hpp"

namespace wlsms::cluster {

namespace {

/// A result message arriving at a master.
struct Arrival {
  double time = 0.0;
  std::size_t walker = 0;
  bool operator>(const Arrival& other) const { return time > other.time; }
};

}  // namespace

SimulationResult simulate_wl_lsms(const MachineDescription& machine,
                                  const JobDescription& job) {
  WLSMS_EXPECTS(job.n_walkers >= 1);
  WLSMS_EXPECTS(job.steps_per_walker >= 1);
  WLSMS_EXPECTS(job.n_masters >= 1);

  const double base_eval_time =
      job.energy_time_override_s > 0.0
          ? job.energy_time_override_s
          : lsms::seconds_per_energy(job.fidelity,
                                     machine.sustained_flops_per_core());
  const double flops_per_eval =
      job.energy_time_override_s > 0.0
          ? job.energy_time_override_s * machine.sustained_flops_per_core() *
                static_cast<double>(job.n_atoms)
          : static_cast<double>(
                lsms::flops_per_energy(job.fidelity, job.n_atoms));

  Rng rng(job.seed);
  const auto eval_time = [&]() {
    if (job.compute_jitter <= 0.0) return base_eval_time;
    const double factor = 1.0 + job.compute_jitter * rng.normal();
    return base_eval_time * std::max(0.1, factor);
  };

  // Per-walker remaining evaluations and per-master busy horizon.
  std::vector<std::size_t> remaining(job.n_walkers, job.steps_per_walker);
  std::vector<double> master_free(job.n_masters, 0.0);
  std::vector<double> master_busy(job.n_masters, 0.0);

  std::priority_queue<Arrival, std::vector<Arrival>, std::greater<Arrival>>
      arrivals;
  for (std::size_t w = 0; w < job.n_walkers; ++w) {
    // Initial configurations are evaluated first (the seeding round).
    arrivals.push({machine.setup_time_s + eval_time() +
                       machine.message_latency_s,
                   w});
    --remaining[w];
  }

  double last_processed = machine.setup_time_s;
  std::uint64_t processed = 0;
  while (!arrivals.empty()) {
    const Arrival arrival = arrivals.top();
    arrivals.pop();
    const std::size_t m = arrival.walker % job.n_masters;
    const double start = std::max(master_free[m], arrival.time);
    const double done = start + machine.master_service_time_s;
    master_free[m] = done;
    master_busy[m] += machine.master_service_time_s;
    last_processed = std::max(last_processed, done);
    ++processed;

    if (remaining[arrival.walker] > 0) {
      --remaining[arrival.walker];
      // Trial configuration travels to the instance, is evaluated, and the
      // energy travels back.
      arrivals.push({done + 2.0 * machine.message_latency_s + eval_time(),
                     arrival.walker});
    }
  }

  SimulationResult result;
  result.n_walkers = job.n_walkers;
  result.cores = job.n_walkers * job.n_atoms + machine.cores_per_node;
  result.makespan_s = last_processed;
  result.results_processed = processed;
  result.total_flops =
      flops_per_eval * static_cast<double>(processed);
  result.sustained_flops = result.total_flops / result.makespan_s;
  result.fraction_of_peak =
      result.sustained_flops /
      (static_cast<double>(result.cores) * machine.peak_flops_per_core);
  result.core_hours =
      result.makespan_s * static_cast<double>(result.cores) / 3600.0;
  double busiest = 0.0;
  for (double b : master_busy) busiest = std::max(busiest, b);
  result.master_busy_fraction = busiest / result.makespan_s;
  return result;
}

std::vector<SimulationResult> weak_scaling(
    const MachineDescription& machine, JobDescription base,
    const std::vector<std::size_t>& walker_counts) {
  std::vector<SimulationResult> results;
  results.reserve(walker_counts.size());
  for (std::size_t walkers : walker_counts) {
    base.n_walkers = walkers;
    results.push_back(simulate_wl_lsms(machine, base));
  }
  return results;
}

std::vector<SimulationResult> strong_scaling(
    const MachineDescription& machine, JobDescription base,
    std::size_t total_steps, const std::vector<std::size_t>& walker_counts) {
  WLSMS_EXPECTS(total_steps >= 1);
  std::vector<SimulationResult> results;
  results.reserve(walker_counts.size());
  for (std::size_t walkers : walker_counts) {
    base.n_walkers = walkers;
    base.steps_per_walker = std::max<std::size_t>(1, total_steps / walkers);
    results.push_back(simulate_wl_lsms(machine, base));
  }
  return results;
}

}  // namespace wlsms::cluster
