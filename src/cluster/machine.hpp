#pragma once

/// \file machine.hpp
/// Machine description for the discrete-event cluster simulator.
///
/// The paper's numbers come from the Cray XT5 partition of Jaguar at ORNL:
/// quad-core AMD Opterons at 2.3 GHz (9.2 GFlop/s peak per core), two
/// sockets per node, and a measured sustained fraction of 75.8 % of peak
/// for the WL-LSMS hot loop (Table II). This environment has one CPU core,
/// so the scaling section of the paper is reproduced by simulation against
/// this description (DESIGN.md §2, substitution 3).

#include <cstddef>

namespace wlsms::cluster {

/// Hardware and runtime parameters of the simulated machine.
struct MachineDescription {
  double peak_flops_per_core = 9.2e9;   ///< 2.3 GHz Opteron, 4 flops/cycle
  /// Fraction of peak the LSMS dense-complex kernel sustains on one core;
  /// the paper measures 75.8 % (Table II).
  double sustained_fraction = 0.758;
  std::size_t cores_per_node = 8;       ///< two quad-core sockets
  /// One-way message latency, seconds (SeaStar2+ interconnect scale).
  double message_latency_s = 8e-6;
  /// Master service time per received result: acceptance test, DOS update,
  /// next trial generation, send. Measured from the real driver on this
  /// host by bench_fig7's calibration step; the default is a conservative
  /// Opteron-era value.
  double master_service_time_s = 20e-6;
  /// Job setup time before the first energy evaluation starts (paper §IV:
  /// "the setup time of the calculations remains the same if the runs were
  /// longer").
  double setup_time_s = 60.0;

  /// Sustained per-core evaluation rate [flops/s].
  double sustained_flops_per_core() const {
    return peak_flops_per_core * sustained_fraction;
  }
};

/// The Cray XT5 "jaguarpf" partition the paper ran on.
inline MachineDescription jaguar_xt5() { return MachineDescription{}; }

}  // namespace wlsms::cluster
