// In-process Communicator: every rank is a std::thread, channels are
// lock-guarded queues. Semantically identical to the process transport —
// same liveness model, same heartbeat bookkeeping — but deterministic and
// sanitizer-friendly, so the `sanitize` ctest label exercises the full
// distributed energy path on it. kill() emulates node death by closing the
// rank's queues: the worker may still be mid-task, but nothing it sends
// afterwards reaches the controller, exactly like a partitioned node.

#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>

#include "comm/communicator.hpp"
#include "common/error.hpp"
#include "common/logging.hpp"

namespace wlsms::comm {

namespace {

using Clock = std::chrono::steady_clock;

class InProcessCommunicator final : public Communicator {
 public:
  InProcessCommunicator(std::size_t n_ranks, WorkerMain worker_main);
  ~InProcessCommunicator() override { shutdown(); }

  std::size_t n_ranks() const override { return ranks_.size(); }
  bool alive(std::size_t rank) const override;
  bool send(std::size_t rank, const Message& message) override;
  std::optional<Incoming> recv(std::chrono::milliseconds timeout) override;
  std::uint64_t millis_since_heard(std::size_t rank) const override;
  void kill(std::size_t rank) override;
  void shutdown() override;

 private:
  struct Rank {
    std::mutex mutex;
    std::condition_variable inbox_cv;
    std::deque<Message> inbox;
    bool closed = false;           ///< no further inbound; recv -> nullopt
    std::atomic<bool> alive{true}; ///< controller-visible liveness
    std::thread thread;
  };

  class Channel final : public WorkerChannel {
   public:
    Channel(InProcessCommunicator& owner, std::size_t rank)
        : owner_(owner), rank_(rank) {}
    std::size_t rank() const override { return rank_; }
    void send(const Message& message) override {
      owner_.worker_send(rank_, message);
    }
    std::optional<Message> recv() override { return owner_.worker_recv(rank_); }

   private:
    InProcessCommunicator& owner_;
    std::size_t rank_;
  };

  void worker_send(std::size_t rank, const Message& message);
  std::optional<Message> worker_recv(std::size_t rank);
  void heard(std::size_t rank);

  // Controller-inbound state. `last_heard_` is indexed by rank and only
  // ever written under `in_mutex_`.
  mutable std::mutex in_mutex_;
  std::condition_variable in_cv_;
  std::deque<Incoming> inbound_;
  std::vector<Clock::time_point> last_heard_;

  std::vector<std::unique_ptr<Rank>> ranks_;
  bool shut_down_ = false;
};

InProcessCommunicator::InProcessCommunicator(std::size_t n_ranks,
                                             WorkerMain worker_main) {
  WLSMS_EXPECTS(n_ranks >= 1);
  WLSMS_EXPECTS(worker_main != nullptr);
  last_heard_.assign(n_ranks, Clock::now());
  ranks_.reserve(n_ranks);
  for (std::size_t r = 0; r < n_ranks; ++r)
    ranks_.push_back(std::make_unique<Rank>());
  // Threads start only after every Rank exists: a worker may send to the
  // controller (touching in_mutex_/inbound_) immediately.
  for (std::size_t r = 0; r < n_ranks; ++r) {
    ranks_[r]->thread = std::thread([this, r, worker_main] {
      try {
        Channel channel(*this, r);
        worker_main(channel);
      } catch (...) {
        // A throwing worker is a dying worker (matching the process
        // transport, where it would _exit(1)), not a terminating driver.
      }
      // Worker exit is rank death: flip liveness and wake a controller
      // that may be blocked in recv() waiting for this rank.
      ranks_[r]->alive.store(false);
      in_cv_.notify_all();
    });
  }
}

bool InProcessCommunicator::alive(std::size_t rank) const {
  WLSMS_EXPECTS(rank < ranks_.size());
  return ranks_[rank]->alive.load();
}

void InProcessCommunicator::heard(std::size_t rank) {
  const std::scoped_lock lock(in_mutex_);
  last_heard_[rank] = Clock::now();
}

bool InProcessCommunicator::send(std::size_t rank, const Message& message) {
  WLSMS_EXPECTS(rank < ranks_.size());
  Rank& target = *ranks_[rank];
  if (!target.alive.load()) return false;
  {
    const std::scoped_lock lock(target.mutex);
    if (target.closed) return false;
    target.inbox.push_back(message);
  }
  target.inbox_cv.notify_one();
  return true;
}

std::optional<Incoming> InProcessCommunicator::recv(
    std::chrono::milliseconds timeout) {
  std::unique_lock lock(in_mutex_);
  in_cv_.wait_for(lock, timeout, [this] { return !inbound_.empty(); });
  if (inbound_.empty()) return std::nullopt;
  Incoming incoming = std::move(inbound_.front());
  inbound_.pop_front();
  return incoming;
}

std::uint64_t InProcessCommunicator::millis_since_heard(
    std::size_t rank) const {
  WLSMS_EXPECTS(rank < ranks_.size());
  if (!ranks_[rank]->alive.load()) return ~std::uint64_t{0};
  const std::scoped_lock lock(in_mutex_);
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                            last_heard_[rank])
          .count());
}

void InProcessCommunicator::kill(std::size_t rank) {
  WLSMS_EXPECTS(rank < ranks_.size());
  Rank& target = *ranks_[rank];
  if (target.alive.load())
    log_debug("comm: closing in-process rank ", rank, "'s queues (kill)");
  {
    const std::scoped_lock lock(target.mutex);
    target.closed = true;
    target.inbox.clear();
  }
  target.inbox_cv.notify_all();
  // Liveness flips immediately; anything the worker thread still sends is
  // dropped in worker_send. The thread itself is reaped in shutdown().
  target.alive.store(false);
  in_cv_.notify_all();
}

void InProcessCommunicator::shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  for (std::unique_ptr<Rank>& rank : ranks_) {
    {
      const std::scoped_lock lock(rank->mutex);
      rank->closed = true;
    }
    rank->inbox_cv.notify_all();
  }
  for (std::unique_ptr<Rank>& rank : ranks_)
    if (rank->thread.joinable()) rank->thread.join();
  for (std::unique_ptr<Rank>& rank : ranks_) rank->alive.store(false);
}

void InProcessCommunicator::worker_send(std::size_t rank,
                                        const Message& message) {
  Rank& self = *ranks_[rank];
  // A killed rank is dead to the controller: drop, like a partitioned node.
  if (!self.alive.load()) return;
  {
    const std::scoped_lock lock(in_mutex_);
    inbound_.push_back({rank, message});
    last_heard_[rank] = Clock::now();
  }
  in_cv_.notify_one();
}

std::optional<Message> InProcessCommunicator::worker_recv(std::size_t rank) {
  Rank& self = *ranks_[rank];
  std::unique_lock lock(self.mutex);
  while (true) {
    if (!self.inbox.empty()) {
      Message message = std::move(self.inbox.front());
      self.inbox.pop_front();
      return message;
    }
    if (self.closed) return std::nullopt;
    if (self.inbox_cv.wait_for(lock, kHeartbeatInterval) ==
        std::cv_status::timeout) {
      // Idle heartbeat so the controller can distinguish "busy elsewhere"
      // from "wedged": refresh last_heard without surfacing a message.
      lock.unlock();
      heard(rank);
      lock.lock();
    }
  }
}

}  // namespace

std::unique_ptr<Communicator> make_in_process_communicator(
    std::size_t n_ranks, WorkerMain worker_main) {
  return std::make_unique<InProcessCommunicator>(n_ranks,
                                                 std::move(worker_main));
}

}  // namespace wlsms::comm
