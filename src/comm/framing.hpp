#pragma once

/// \file framing.hpp
/// The byte-stream substrate shared by the socketpair (kProcess) and TCP
/// (kTcp) transports: one frame codec, one bounded writer, one frame
/// reassembler, one worker-side channel, and one controller-side base class
/// — so the two transports differ only in how their file descriptors come
/// to exist (fork+socketpair vs listen+accept+handshake) and how ranks are
/// reaped.
///
/// Frame layout on the wire: [u32 length][u32 tag][payload], little-endian,
/// where `length` covers tag + payload. Hardening rules, enforced here for
/// every byte-stream transport:
///  - a frame whose length field would exceed kMaxFrameBytes is rejected on
///    the SEND side with CommError (a u32 length cannot represent a >=4 GiB
///    payload; silently truncating it would desync the stream — the
///    receiver enforces the same bound and kills the rank);
///  - every controller-side write carries an overall deadline
///    (StreamOptions::send_deadline), so a peer whose socket buffer stays
///    full — a SIGSTOPped child, a partitioned node — turns into a dead
///    rank instead of a controller wedged inside send();
///  - small frames to one rank are corked and flushed as one batched write
///    per poll cycle (StreamOptions::coalesce_budget), so a delta scatter
///    to many ranks plus the idle heartbeats does not pay one syscall —
///    and, over real networks, one TCP_NODELAY packet — per frame.

#include <chrono>
#include <csignal>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "comm/communicator.hpp"

namespace wlsms::comm {

/// Channel-level control tags, outside the application range. Application
/// tags must stay below these.
inline constexpr std::uint32_t kTagHeartbeat = 0xFFFFFFFEu;
inline constexpr std::uint32_t kTagShutdown = 0xFFFFFFFFu;
inline constexpr std::uint32_t kTagHello = 0xFFFFFFFDu;
inline constexpr std::uint32_t kTagWelcome = 0xFFFFFFFCu;

/// A frame length beyond this is a protocol violation (corrupt stream), not
/// a real message; both sides enforce it — the receiver kills the rank, the
/// sender throws before desyncing the stream.
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 30;

using StreamClock = std::chrono::steady_clock;

/// Appends the encoded frame of `message` to `out`. Throws CommError when
/// tag + payload would not fit a `max_frame_bytes`-bounded u32 length field
/// (the receiver would kill the rank for it; failing the send is the only
/// non-desyncing option). `max_frame_bytes` is a parameter so tests can
/// exercise the bound without gigabyte payloads.
void append_frame(std::vector<std::byte>& out, const Message& message,
                  std::uint32_t max_frame_bytes = kMaxFrameBytes);

/// The encoded frame of `message` as a fresh buffer. Same oversize rule.
std::vector<std::byte> frame_bytes(const Message& message,
                                   std::uint32_t max_frame_bytes =
                                       kMaxFrameBytes);

/// Writes exactly `n` bytes, waiting out EAGAIN on non-blocking sockets but
/// never past `deadline`. Returns false on peer death (EPIPE/ECONNRESET),
/// any other hard error, or deadline expiry with bytes still unwritten.
bool write_all(int fd, const void* data, std::size_t n,
               StreamClock::time_point deadline);

/// Reads exactly `n` bytes from a blocking fd; false on EOF or error.
bool read_all(int fd, void* data, std::size_t n);

/// Incremental reassembly of [u32 length][u32 tag][payload] frames from an
/// arbitrarily chunked byte stream.
class FrameAssembler {
 public:
  /// Appends raw received bytes.
  void push(const void* data, std::size_t n);

  /// Pops the next complete frame into `out`; returns false when no
  /// complete frame is buffered yet. Throws CommError on a corrupt length
  /// field (< 4 or > kMaxFrameBytes) — the stream cannot be resynchronized
  /// and the peer should be treated as dead.
  bool pop(Message& out);

  /// Bytes buffered but not yet popped (complete frames + partials).
  std::size_t buffered() const { return buffer_.size() - at_; }

  /// Drops everything buffered (after a corrupt stream, say).
  void reset();

 private:
  std::vector<std::byte> buffer_;
  std::size_t at_ = 0;  ///< consumed prefix, compacted lazily
};

/// Worker-side channel over any byte-stream fd (a socketpair end or a
/// handshaken TCP socket): blocking frame reads, idle heartbeats every
/// kHeartbeatInterval, controller heartbeats consumed silently, shutdown
/// tag or EOF -> nullopt.
class StreamWorkerChannel final : public WorkerChannel {
 public:
  StreamWorkerChannel(int fd, std::size_t rank) : fd_(fd), rank_(rank) {}

  std::size_t rank() const override { return rank_; }
  void send(const Message& message) override;
  std::optional<Message> recv() override;

 private:
  int fd_;
  std::size_t rank_;
};

/// Controller-side common machinery of the byte-stream transports: per-rank
/// liveness, frame reassembly, coalesced sends, heartbeat bookkeeping, and
/// the recv/poll loop. Derived classes create the fds (fork+socketpair or
/// listen+accept) and implement kill()/shutdown() (how a rank is terminated
/// and reaped is the one genuinely transport-specific piece).
class StreamCommunicatorBase : public Communicator {
 public:
  std::size_t n_ranks() const override { return peers_.size(); }
  bool alive(std::size_t rank) const override;
  bool send(std::size_t rank, const Message& message) override;
  std::optional<Incoming> recv(std::chrono::milliseconds timeout) override;
  std::uint64_t millis_since_heard(std::size_t rank) const override;

 protected:
  explicit StreamCommunicatorBase(StreamOptions options)
      : options_(options) {}

  struct Peer {
    int fd = -1;
    bool alive = true;
    FrameAssembler rx;
    std::vector<std::byte> tx;  ///< corked frames awaiting one batched write
    std::size_t tx_frames = 0;
    StreamClock::time_point cork_started{};
    StreamClock::time_point last_sent = StreamClock::now();
    StreamClock::time_point last_heard = StreamClock::now();
    /// Clock probes run on their own cadence: data traffic suppresses idle
    /// heartbeats (last_sent keeps advancing) but must not starve the
    /// offset estimate, or a busy run never refreshes its per-rank gauges.
    StreamClock::time_point last_probe{};
  };

  /// Registers a connected peer fd as the next rank. Construction-time only.
  void add_peer(int fd);

  /// Flips liveness off and closes the fd. Idempotent. Calls on_peer_dead
  /// exactly once per rank.
  void mark_dead(std::size_t rank);

  /// Transport hook, fired from mark_dead (first time only).
  virtual void on_peer_dead(std::size_t /*rank*/) {}

  /// Drains readable bytes of `rank` and extracts complete frames into
  /// pending_ (heartbeats only refresh last_heard). A corrupt frame or EOF
  /// marks the rank dead; frames completed before the failure still
  /// surface (the service layer discards posthumous gathers itself).
  void drain(std::size_t rank);

  /// Writes rank's corked frames as one batch; false marks the rank dead
  /// (send failure or deadline). True when nothing was corked.
  bool flush(std::size_t rank);
  void flush_all();

  /// Closes one heartbeat clock probe ([t0][t1][t2] echo from `rank`):
  /// estimates the rank's clock offset NTP-style and publishes it as the
  /// `comm.clock_offset_us.rank<k>` gauge.
  void observe_clock_echo(std::size_t rank,
                          const std::vector<std::byte>& payload);

  /// Marks every rank dead (closing every fd); the shutdown() preamble.
  void close_all_peers();

  const StreamOptions& stream_options() const { return options_; }
  bool shutting_down() const { return shut_down_; }
  void begin_shutdown() { shut_down_ = true; }

 private:
  /// Corks an idle heartbeat for every alive rank not written to within
  /// kHeartbeatInterval, so workers on a real network can tell a quiet
  /// controller from a dead one.
  void heartbeat_tick();

  StreamOptions options_;
  std::vector<Peer> peers_;
  std::deque<Incoming> pending_;
  bool shut_down_ = false;
};

/// Reaps forked children with ONE shared grace period: polls every pid in
/// `pids` (entries < 0 are already reaped and skipped) with WNOHANG until
/// all exit or `grace` elapses, then SIGKILLs the stragglers together and
/// collects them. Reaped entries are set to -1. Teardown cost is bounded by
/// one grace period regardless of how many ranks are stuck.
void reap_children(std::vector<pid_t>& pids, std::chrono::milliseconds grace);

}  // namespace wlsms::comm
