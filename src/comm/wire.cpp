#include "comm/wire.hpp"

#include "spin/serialize.hpp"

namespace wlsms::comm {

using serial::Decoder;
using serial::Encoder;
using serial::PayloadKind;
using serial::SerializationError;

std::vector<std::byte> encode_shard_request(const ShardRequest& request) {
  Encoder e;
  serial::write_header(e, PayloadKind::kShardRequest);
  e.put_u64(request.ticket);
  e.put_u32(request.attempt);
  e.put_u64(request.session);
  e.put_u64(request.trace.trace_id);
  e.put_u64(request.trace.span_id);
  e.put_u64(request.walker);
  e.put_u64(request.first_atom);
  e.put_u64(request.n_shard_atoms);
  e.put_u8(static_cast<std::uint8_t>(request.kind));
  if (request.kind == ShardRequest::ConfigKind::kFull) {
    spin::encode_moments(e, request.full);
  } else {
    e.put_u64(request.n_total_atoms);
    e.put_u64(request.moved_sites.size());
    for (const MovedSite& m : request.moved_sites) {
      e.put_u64(m.site);
      e.put_double(m.direction.x);
      e.put_double(m.direction.y);
      e.put_double(m.direction.z);
    }
  }
  return e.take();
}

ShardRequest decode_shard_request(const std::vector<std::byte>& buffer) {
  Decoder d(buffer);
  serial::read_header(d, PayloadKind::kShardRequest);
  ShardRequest request;
  request.ticket = d.get_u64();
  request.attempt = d.get_u32();
  request.session = d.get_u64();
  request.trace.trace_id = d.get_u64();
  request.trace.span_id = d.get_u64();
  request.walker = d.get_u64();
  request.first_atom = d.get_u64();
  request.n_shard_atoms = d.get_u64();
  const std::uint8_t kind = d.get_u8();
  if (kind > 1) throw SerializationError("corrupt shard-request config kind");
  request.kind = static_cast<ShardRequest::ConfigKind>(kind);
  if (request.kind == ShardRequest::ConfigKind::kFull) {
    request.full = spin::decode_moments(d);
    request.n_total_atoms = request.full.size();
  } else {
    request.n_total_atoms = d.get_u64();
    const std::uint64_t count = d.get_u64();
    d.expect_sequence(count, 8 + 3 * sizeof(double));
    request.moved_sites.resize(static_cast<std::size_t>(count));
    for (MovedSite& m : request.moved_sites) {
      m.site = d.get_u64();
      m.direction.x = d.get_double();
      m.direction.y = d.get_double();
      m.direction.z = d.get_double();
      if (m.site >= request.n_total_atoms)
        throw SerializationError("corrupt shard-request moved site index");
      if (!(m.direction.norm2() > 0.0))
        throw SerializationError("corrupt shard-request direction");
    }
  }
  if (request.n_shard_atoms == 0 ||
      request.first_atom + request.n_shard_atoms > request.n_total_atoms)
    throw SerializationError("corrupt shard-request atom range");
  d.expect_end();
  return request;
}

std::vector<std::byte> encode_shard_result(const ShardResult& result) {
  Encoder e;
  serial::write_header(e, PayloadKind::kShardResult);
  e.put_u64(result.ticket);
  e.put_u32(result.attempt);
  e.put_u64(result.first_atom);
  e.put_u64(result.energies.size());
  for (double v : result.energies) e.put_double(v);
  return e.take();
}

ShardResult decode_shard_result(const std::vector<std::byte>& buffer) {
  Decoder d(buffer);
  serial::read_header(d, PayloadKind::kShardResult);
  ShardResult result;
  result.ticket = d.get_u64();
  result.attempt = d.get_u32();
  result.first_atom = d.get_u64();
  const std::uint64_t count = d.get_u64();
  if (count == 0) throw SerializationError("empty shard-result");
  d.expect_sequence(count, sizeof(double));
  result.energies.resize(static_cast<std::size_t>(count));
  for (double& v : result.energies) v = d.get_double();
  d.expect_end();
  return result;
}

std::vector<std::byte> encode_shard_evict(const ShardEvict& evict) {
  Encoder e;
  serial::write_header(e, PayloadKind::kShardEvict);
  e.put_u64(evict.session);
  return e.take();
}

ShardEvict decode_shard_evict(const std::vector<std::byte>& buffer) {
  Decoder d(buffer);
  serial::read_header(d, PayloadKind::kShardEvict);
  ShardEvict evict;
  evict.session = d.get_u64();
  d.expect_end();
  return evict;
}

std::vector<std::byte> encode_energy_request(const wl::EnergyRequest& request) {
  Encoder e;
  serial::write_header(e, PayloadKind::kEnergyRequest);
  e.put_u64(request.walker);
  e.put_u64(request.ticket);
  e.put_u64(request.session);
  e.put_u64(request.trace.trace_id);
  e.put_u64(request.trace.span_id);
  spin::encode_moments(e, request.config);
  return e.take();
}

wl::EnergyRequest decode_energy_request(const std::vector<std::byte>& buffer) {
  Decoder d(buffer);
  serial::read_header(d, PayloadKind::kEnergyRequest);
  wl::EnergyRequest request;
  request.walker = static_cast<std::size_t>(d.get_u64());
  request.ticket = d.get_u64();
  request.session = d.get_u64();
  request.trace.trace_id = d.get_u64();
  request.trace.span_id = d.get_u64();
  request.config = spin::decode_moments(d);
  d.expect_end();
  return request;
}

std::vector<std::byte> encode_energy_result(const wl::EnergyResult& result) {
  Encoder e;
  serial::write_header(e, PayloadKind::kEnergyResult);
  e.put_u64(result.walker);
  e.put_u64(result.ticket);
  e.put_double(result.energy);
  e.put_u8(result.failed ? 1 : 0);
  return e.take();
}

wl::EnergyResult decode_energy_result(const std::vector<std::byte>& buffer) {
  Decoder d(buffer);
  serial::read_header(d, PayloadKind::kEnergyResult);
  wl::EnergyResult result;
  result.walker = static_cast<std::size_t>(d.get_u64());
  result.ticket = d.get_u64();
  result.energy = d.get_double();
  const std::uint8_t failed = d.get_u8();
  if (failed > 1) throw SerializationError("corrupt energy-result flag");
  result.failed = failed != 0;
  d.expect_end();
  return result;
}

}  // namespace wlsms::comm
