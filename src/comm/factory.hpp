#pragma once

/// \file factory.hpp
/// The one way to build an EnergyService. Every realization of the paper's
/// driver <-> LSMS-instance boundary — the synchronous reference, the
/// deterministic reorderer, the thread-pool instance farm, the
/// group-sharded distributed service, and the serve-daemon client — is
/// constructed from one spec, so call sites (CLI, benches, examples, tests)
/// pick a topology by data instead of by type. Two decorators compose on
/// top of any of them: failure injection (innermost) and the speculative
/// mixed-fidelity screen (outermost, so injected failures exercise its
/// retry accounting).
///
/// This header lives under src/comm/ but builds into its own library,
/// wlsms_factory: the serve daemon links wlsms_comm, and the factory links
/// the serve *client*, so folding it into wlsms_comm would close a
/// dependency cycle.

#include <cstdint>
#include <memory>
#include <string>

#include "comm/distributed_service.hpp"
#include "serve/client.hpp"
#include "wl/energy_function.hpp"
#include "wl/energy_service.hpp"
#include "wl/speculator.hpp"

namespace wlsms::comm {

/// Which realization of the EnergyService boundary to build.
enum class ServiceKind {
  kSynchronous,  ///< in-order, single-threaded; the validation reference
  kReordering,   ///< single-threaded, deterministically out-of-order
  kAsyncThreads, ///< thread-pool instance farm (parallel::AsyncEnergyService)
  kDistributed,  ///< group-sharded over a Communicator (this module)
  kServeClient,  ///< remote `wlsms serve` daemon (serve::ServeClient)
};

/// Everything needed to build any service.
struct EnergyServiceSpec {
  ServiceKind kind = ServiceKind::kSynchronous;

  /// The energy backend. Required for every kind except kServeClient
  /// (whose backend is the daemon's); for kDistributed it must be (or wrap)
  /// a wl::LsmsEnergy, because the workers run per-atom LIZ shards of its
  /// solver. Must outlive the returned service.
  const wl::EnergyFunction* energy = nullptr;

  std::size_t n_instances = 1;  ///< kAsyncThreads: worker threads

  std::uint64_t reorder_seed = 0x5eed;  ///< kReordering: shuffle stream

  DistributedConfig distributed;  ///< kDistributed: topology + transport

  std::string serve_address;          ///< kServeClient: daemon host:port
  serve::ClientOptions serve_client;  ///< kServeClient: handshake/timeouts

  /// When > 0, the built service is wrapped in a failure-injecting
  /// decorator losing each submission with this probability (the paper §V
  /// resilience path; the driver resubmits failed results).
  double failure_probability = 0.0;
  std::uint64_t failure_seed = 0xfa17;

  /// When set, the (possibly failure-wrapped) service is wrapped in a
  /// wl::SpeculativeEnergyService screening proposals with a Heisenberg
  /// surrogate. Off by default: exact mode stays bit-identical.
  bool speculate = false;
  wl::SpeculationConfig speculation;
  /// Lattice the surrogate is built on. May stay null when `energy` is an
  /// LsmsEnergy (its solver's structure is used); required otherwise —
  /// notably for kServeClient, which has no local solver. Must outlive the
  /// returned service.
  const lattice::Structure* speculation_structure = nullptr;
};

/// Builds the service described by `spec`. Throws wlsms::Error on an
/// unsatisfiable spec (no energy backend, a distributed spec whose backend
/// is not LSMS, an out-of-range failure probability, speculation without a
/// structure to build the surrogate on) and comm::CommError when the serve
/// client cannot reach its daemon.
std::unique_ptr<wl::EnergyService> make_energy_service(
    const EnergyServiceSpec& spec);

}  // namespace wlsms::comm
