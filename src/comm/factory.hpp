#pragma once

/// \file factory.hpp
/// The one way to build an EnergyService. Every realization of the paper's
/// driver <-> LSMS-instance boundary — the synchronous reference, the
/// deterministic reorderer, the thread-pool instance farm, and the
/// group-sharded distributed service — is constructed from one spec, so
/// call sites (CLI, benches, examples, tests) pick a topology by data
/// instead of by type. Failure injection composes on top of any of them.

#include <cstdint>
#include <memory>

#include "comm/distributed_service.hpp"
#include "wl/energy_function.hpp"
#include "wl/energy_service.hpp"

namespace wlsms::comm {

/// Which realization of the EnergyService boundary to build.
enum class ServiceKind {
  kSynchronous,  ///< in-order, single-threaded; the validation reference
  kReordering,   ///< single-threaded, deterministically out-of-order
  kAsyncThreads, ///< thread-pool instance farm (parallel::AsyncEnergyService)
  kDistributed,  ///< group-sharded over a Communicator (this module)
};

/// Everything needed to build any service.
struct EnergyServiceSpec {
  ServiceKind kind = ServiceKind::kSynchronous;

  /// The energy backend. Required for every kind; for kDistributed it must
  /// be (or wrap) a wl::LsmsEnergy, because the workers run per-atom LIZ
  /// shards of its solver. Must outlive the returned service.
  const wl::EnergyFunction* energy = nullptr;

  std::size_t n_instances = 1;  ///< kAsyncThreads: worker threads

  std::uint64_t reorder_seed = 0x5eed;  ///< kReordering: shuffle stream

  DistributedConfig distributed;  ///< kDistributed: topology + transport

  /// When > 0, the built service is wrapped in a failure-injecting
  /// decorator losing each submission with this probability (the paper §V
  /// resilience path; the driver resubmits failed results).
  double failure_probability = 0.0;
  std::uint64_t failure_seed = 0xfa17;
};

/// Builds the service described by `spec`. Throws wlsms::Error on an
/// unsatisfiable spec (no energy backend, a distributed spec whose backend
/// is not LSMS, an out-of-range failure probability).
std::unique_ptr<wl::EnergyService> make_energy_service(
    const EnergyServiceSpec& spec);

}  // namespace wlsms::comm
