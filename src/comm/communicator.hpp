#pragma once

/// \file communicator.hpp
/// Transport-agnostic controller <-> worker messaging: the API seam that
/// lets the Wang-Landau master drive LSMS groups without knowing whether a
/// "rank" is a thread in this process or a forked OS process on the other
/// end of a UNIX-domain socket (paper §II-C / Fig. 3: one WL driver feeding
/// M independent N-core LSMS instances).
///
/// Topology: a Communicator owns a fixed set of worker ranks, all spawned
/// at construction, each running the caller-supplied worker function over
/// its WorkerChannel. The controller sends tagged byte payloads to a rank
/// and receives (rank, message) pairs from any rank; payload encoding is
/// the caller's business (comm/wire.hpp for the energy protocol).
///
/// Liveness: a rank is `alive` until its worker exits, its transport
/// endpoint closes (process death is an immediate EOF), or the controller
/// kills it. Workers emit heartbeats while idle-waiting; the controller
/// reads `millis_since_heard` to detect a rank that is wedged mid-task
/// without having died — the timeout half of the failure-detection story,
/// feeding the same reroute path as hard death.
///
/// Transports:
///  - kInProcess: each rank is a std::thread with lock-guarded queues.
///    Deterministic enough for the sanitizer-labeled stress suites; kill()
///    closes the rank's queues so death is emulated exactly.
///  - kProcess: each rank is a fork()ed child on a socketpair. kill() is
///    SIGKILL. Real isolation — a crashing worker cannot take the driver
///    down — at the cost of copy-on-write duplication of the parent.
///    Fork safety: create the communicator before enabling any in-process
///    thread pools (linalg::set_zgemm_threads stays at 1 in workers), and
///    keep worker code off OpenMP paths; the child only ever runs the
///    worker function plus what it calls.
///  - kTcp: each rank is a TCP connection accepted by a controller-side
///    listener after a magic/version/rank handshake. Workers either run on
///    other nodes (`wlsms worker --connect host:port`) or, for loopback
///    tests and single-host use, are fork()ed locally and connect back to
///    the listener. Same frames, heartbeats, and EOF-death detection as
///    kProcess — both byte-stream transports share src/comm/framing.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace wlsms::comm {

/// Thrown on transport-level misuse or total communication failure.
class CommError : public Error {
 public:
  explicit CommError(const std::string& what) : Error(what) {}
};

/// A tagged byte payload. Tags are application-defined (comm/wire.hpp);
/// the transport only routes them.
struct Message {
  std::uint32_t tag = 0;
  std::vector<std::byte> payload;
};

/// A message the controller received, with the rank it came from.
struct Incoming {
  std::size_t rank = 0;
  Message message;
};

/// Worker-side view of the channel back to the controller.
class WorkerChannel {
 public:
  virtual ~WorkerChannel() = default;

  /// This rank's id within the communicator.
  virtual std::size_t rank() const = 0;

  /// Sends a message to the controller; drops silently if the controller
  /// side is gone (the worker is about to be reaped anyway).
  virtual void send(const Message& message) = 0;

  /// Blocks for the next message from the controller; emits heartbeats
  /// while waiting. Returns nullopt when the channel is closed (shutdown,
  /// kill) — the worker function should then return.
  virtual std::optional<Message> recv() = 0;
};

/// The code a worker rank runs; returning ends the rank.
using WorkerMain = std::function<void(WorkerChannel&)>;

/// Controller-side endpoint set. All methods are controller-thread-only
/// (the controller is single-threaded by design, like the paper's WL
/// master process).
class Communicator {
 public:
  virtual ~Communicator() = default;

  virtual std::size_t n_ranks() const = 0;

  /// False once the rank's worker exited, its endpoint closed, or kill()
  /// was called on it.
  virtual bool alive(std::size_t rank) const = 0;

  /// Number of ranks still alive.
  std::size_t n_alive() const;

  /// Sends to a rank. Returns false (and marks the rank dead) if the rank
  /// is already dead or dies during the send; never throws for peer death.
  virtual bool send(std::size_t rank, const Message& message) = 0;

  /// Blocks up to `timeout` for a message from any rank. Heartbeats are
  /// consumed internally (they update millis_since_heard and never
  /// surface). Returns nullopt on timeout. Rank death discovered while
  /// waiting flips alive() and does not surface as a message.
  virtual std::optional<Incoming> recv(std::chrono::milliseconds timeout) = 0;

  /// Milliseconds since the rank was last heard from (any message or
  /// heartbeat; spawn counts as heard). Large values on a rank with work
  /// assigned mean it is wedged. Returns a huge value for dead ranks.
  virtual std::uint64_t millis_since_heard(std::size_t rank) const = 0;

  /// Forcibly terminates a rank (SIGKILL / queue closure). Idempotent.
  /// Also the failure-injection hook for resilience tests.
  virtual void kill(std::size_t rank) = 0;

  /// Graceful teardown: closes every channel and reaps the workers.
  /// Called by the destructor; exposed for explicit shutdown ordering.
  virtual void shutdown() = 0;
};

/// Which realization of the Communicator to build.
enum class Transport {
  kInProcess,  ///< worker ranks are threads of this process
  kProcess,    ///< worker ranks are fork()ed OS processes
  kTcp,        ///< worker ranks are TCP connections (loopback or remote)
};

/// Parses "inprocess" / "process" / "tcp" (the CLI --transport values).
Transport parse_transport(const std::string& name);
const char* transport_name(Transport transport);

/// Tuning knobs shared by the byte-stream transports (kProcess, kTcp).
struct StreamOptions {
  /// Upper bound on one controller-side send (all retries included). A peer
  /// whose socket buffer stays full past this — a SIGSTOPped child, a
  /// partitioned node — is marked dead and `send` returns false instead of
  /// wedging the controller. Defaults to the heartbeat-timeout scale.
  std::chrono::milliseconds send_deadline{5000};
  /// One shared grace period for the whole teardown: shutdown() polls every
  /// child in one pass for this long, then SIGKILLs the stragglers together
  /// (teardown is O(grace), not O(ranks * grace)).
  std::chrono::milliseconds shutdown_grace{5000};
  /// Controller-side frame coalescing: small frames to one rank are corked
  /// into a single batched write, flushed at the next poll cycle, once the
  /// cork is older than this budget, or when it outgrows
  /// `coalesce_max_bytes`. Zero disables corking entirely.
  std::chrono::milliseconds coalesce_budget{1};
  std::size_t coalesce_max_bytes = 256 * 1024;
};

/// How to build a kTcp communicator.
struct TcpOptions {
  /// Controller bind address as host:port; port 0 picks an ephemeral port.
  std::string listen = "127.0.0.1:0";
  /// True (default): fork one local worker per rank, each connecting back
  /// to the listener over loopback — self-contained, like kProcess. False:
  /// expect `n_ranks` external workers (`wlsms worker --connect`) to dial
  /// in; `worker_main` is not used.
  bool spawn_workers = true;
  /// Called once the listener is bound, with the actual "host:port" (the
  /// ephemeral port resolved). With external workers this is the moment to
  /// tell them where to connect.
  std::function<void(const std::string&)> on_listening;
  /// Construction fails with CommError if the full group has not formed
  /// (accepted + handshaken) within this window.
  std::chrono::milliseconds accept_timeout{15000};
  /// Worker-side non-blocking connect deadline.
  std::chrono::milliseconds connect_timeout{5000};
  StreamOptions stream;
};

std::unique_ptr<Communicator> make_in_process_communicator(
    std::size_t n_ranks, WorkerMain worker_main);
std::unique_ptr<Communicator> make_process_communicator(std::size_t n_ranks,
                                                        WorkerMain worker_main);
std::unique_ptr<Communicator> make_process_communicator(
    std::size_t n_ranks, WorkerMain worker_main, const StreamOptions& options);
/// Listens, accepts `n_ranks` workers (spawned on loopback or external),
/// and returns once the group has formed. Throws CommError on bind/accept
/// failure or an incomplete group at `options.accept_timeout`.
std::unique_ptr<Communicator> make_tcp_communicator(std::size_t n_ranks,
                                                    WorkerMain worker_main,
                                                    const TcpOptions& options);
std::unique_ptr<Communicator> make_communicator(Transport transport,
                                                std::size_t n_ranks,
                                                WorkerMain worker_main);

/// The worker end of the TCP transport: connects to a controller at
/// "host:port" (non-blocking connect bounded by `connect_timeout`),
/// performs the magic/version/rank handshake, runs `worker_main` over the
/// stream channel until the controller closes it, and returns the rank the
/// controller assigned. Throws CommError on connect or handshake failure.
/// This is what `wlsms worker --connect` calls on other nodes.
std::size_t run_tcp_worker(
    const std::string& address, const WorkerMain& worker_main,
    std::chrono::milliseconds connect_timeout = std::chrono::milliseconds{
        5000});

/// Interval at which idle workers heartbeat. Controllers should use a
/// detection timeout of several multiples of this.
inline constexpr std::chrono::milliseconds kHeartbeatInterval{100};

}  // namespace wlsms::comm
