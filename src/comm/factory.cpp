#include "comm/factory.hpp"

#include <utility>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "parallel/async_service.hpp"
#include "parallel/failure.hpp"

namespace wlsms::comm {

namespace {

/// FailureInjectingService holds a non-owning reference; the factory hands
/// out a single owner, so the decorator and its inner service travel
/// together. Member order makes the injector die before the inner service.
class OwningFailureService final : public wl::EnergyService {
 public:
  OwningFailureService(std::unique_ptr<wl::EnergyService> inner,
                       double failure_probability, Rng rng)
      : inner_(std::move(inner)),
        injector_(*inner_, failure_probability, std::move(rng)) {}

  void submit(wl::EnergyRequest request) override {
    injector_.submit(std::move(request));
  }
  wl::EnergyResult retrieve() override { return injector_.retrieve(); }
  std::size_t outstanding() const override { return injector_.outstanding(); }

 private:
  std::unique_ptr<wl::EnergyService> inner_;
  parallel::FailureInjectingService injector_;
};

}  // namespace

std::unique_ptr<wl::EnergyService> make_energy_service(
    const EnergyServiceSpec& spec) {
  if (spec.energy == nullptr && spec.kind != ServiceKind::kServeClient)
    throw Error("make_energy_service: spec.energy is required");
  if (!(spec.failure_probability >= 0.0 && spec.failure_probability < 1.0))
    throw Error("make_energy_service: failure_probability outside [0, 1)");

  std::unique_ptr<wl::EnergyService> service;
  switch (spec.kind) {
    case ServiceKind::kSynchronous:
      service = std::make_unique<wl::SynchronousEnergyService>(*spec.energy);
      break;
    case ServiceKind::kReordering:
      service = std::make_unique<wl::ReorderingEnergyService>(
          *spec.energy, Rng(spec.reorder_seed));
      break;
    case ServiceKind::kAsyncThreads: {
      if (spec.n_instances < 1)
        throw Error("make_energy_service: n_instances must be >= 1");
      service = std::make_unique<parallel::AsyncEnergyService>(
          *spec.energy, spec.n_instances);
      break;
    }
    case ServiceKind::kDistributed: {
      const auto* lsms_energy =
          dynamic_cast<const wl::LsmsEnergy*>(spec.energy);
      if (lsms_energy == nullptr)
        throw Error(
            "make_energy_service: kDistributed requires an LsmsEnergy "
            "backend (workers run per-atom LIZ shards of its solver)");
      service = std::make_unique<DistributedEnergyService>(
          lsms_energy->solver_ptr(), spec.distributed);
      break;
    }
    case ServiceKind::kServeClient: {
      if (spec.serve_address.empty())
        throw Error("make_energy_service: kServeClient requires serve_address");
      service = std::make_unique<serve::ServeClient>(spec.serve_address,
                                                     spec.serve_client);
      break;
    }
  }
  if (service == nullptr)
    throw Error("make_energy_service: unknown service kind");

  if (spec.failure_probability > 0.0)
    service = std::make_unique<OwningFailureService>(
        std::move(service), spec.failure_probability, Rng(spec.failure_seed));

  if (spec.speculate) {
    const lattice::Structure* structure = spec.speculation_structure;
    if (structure == nullptr)
      if (const auto* lsms_energy =
              dynamic_cast<const wl::LsmsEnergy*>(spec.energy))
        structure = &lsms_energy->solver().structure();
    if (structure == nullptr)
      throw Error(
          "make_energy_service: speculation requires speculation_structure "
          "(or an LsmsEnergy backend to take the lattice from)");
    service = std::make_unique<wl::SpeculativeEnergyService>(
        std::move(service), wl::Speculator(*structure, spec.speculation));
  }
  return service;
}

}  // namespace wlsms::comm
