#include "comm/framing.hpp"

#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace wlsms::comm {

namespace {

/// Wire-level traffic counters of the byte-stream controller side. A batch
/// is one physical write (one syscall, and with TCP_NODELAY one packet);
/// frames/batches is the coalescing win bench_comm tracks.
struct StreamMetrics {
  obs::Counter& frames;
  obs::Counter& batches;
  obs::Counter& bytes;
  obs::Counter& heartbeats;
};

StreamMetrics& stream_metrics() {
  static StreamMetrics metrics{
      obs::Registry::instance().counter("comm.stream.frames_sent"),
      obs::Registry::instance().counter("comm.stream.batches_sent"),
      obs::Registry::instance().counter("comm.stream.bytes_sent"),
      obs::Registry::instance().counter("comm.stream.heartbeats_sent"),
  };
  return metrics;
}

int remaining_poll_ms(StreamClock::time_point deadline) {
  const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - StreamClock::now());
  if (remaining.count() <= 0) return 0;
  // Cap individual poll waits so the deadline is honored within ~1 s even
  // if the clock jumps between poll and the recheck.
  return static_cast<int>(std::min<std::int64_t>(remaining.count(), 1000));
}

// Raw little-endian u64 helpers for the fixed-layout heartbeat clock
// payloads (too small and too hot for the WLSM-headered serial codec).
void put_u64_le(std::byte* out, std::uint64_t v) {
  for (int k = 0; k < 8; ++k)
    out[k] = static_cast<std::byte>((v >> (8 * k)) & 0xFFu);
}

std::uint64_t get_u64_le(const std::byte* p) {
  std::uint64_t v = 0;
  for (int k = 0; k < 8; ++k)
    v |= static_cast<std::uint64_t>(p[k]) << (8 * k);
  return v;
}

// Heartbeat payload shapes: a controller probe is [t0] (8 bytes, controller
// clock); a worker echo is [t0][t1][t2] (24 bytes, t1/t2 worker clock); an
// empty heartbeat is plain liveness (the worker's own idle beats, and any
// peer predating the probes). Anything else is ignored as liveness only.
constexpr std::size_t kClockProbeBytes = 8;
constexpr std::size_t kClockEchoBytes = 24;

}  // namespace

void append_frame(std::vector<std::byte>& out, const Message& message,
                  std::uint32_t max_frame_bytes) {
  // Length arithmetic in 64 bits: the historical bug was computing
  // 4 + payload.size() in u32, where a >= 2^32-4 payload silently wrapped
  // and desynced the stream.
  const std::uint64_t length = 4 + static_cast<std::uint64_t>(
                                       message.payload.size());
  if (length > max_frame_bytes)
    throw CommError("frame of " + std::to_string(message.payload.size()) +
                    " payload bytes exceeds the " +
                    std::to_string(max_frame_bytes) +
                    "-byte frame limit; refusing to desync the stream");
  const std::size_t base = out.size();
  out.resize(base + 8 + message.payload.size());
  auto put_u32 = [&out, base](std::size_t at, std::uint32_t v) {
    for (int k = 0; k < 4; ++k)
      out[base + at + static_cast<std::size_t>(k)] =
          static_cast<std::byte>((v >> (8 * k)) & 0xFFu);
  };
  put_u32(0, static_cast<std::uint32_t>(length));
  put_u32(4, message.tag);
  if (!message.payload.empty())
    std::memcpy(out.data() + base + 8, message.payload.data(),
                message.payload.size());
}

std::vector<std::byte> frame_bytes(const Message& message,
                                   std::uint32_t max_frame_bytes) {
  std::vector<std::byte> frame;
  append_frame(frame, message, max_frame_bytes);
  return frame;
}

bool write_all(int fd, const void* data, std::size_t n,
               StreamClock::time_point deadline) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    // MSG_DONTWAIT regardless of the fd's mode: a blocking ::send would
    // sleep inside the kernel with no way to enforce `deadline`, which is
    // exactly the controller-wedged-on-a-stopped-peer bug this deadline
    // exists to fix. Full-buffer conditions surface as EAGAIN and are
    // waited out in poll below, where the deadline is honored.
    const ssize_t wrote = ::send(fd, p, n, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (wrote > 0) {
      p += wrote;
      n -= static_cast<std::size_t>(wrote);
      continue;
    }
    if (wrote < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      const int wait_ms = remaining_poll_ms(deadline);
      if (wait_ms <= 0) return false;  // peer unwritable past the deadline
      struct pollfd pfd{fd, POLLOUT, 0};
      (void)::poll(&pfd, 1, wait_ms);
      continue;
    }
    if (wrote < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

bool read_all(int fd, void* data, std::size_t n) {
  char* p = static_cast<char*>(data);
  while (n > 0) {
    const ssize_t got = ::read(fd, p, n);
    if (got > 0) {
      p += got;
      n -= static_cast<std::size_t>(got);
      continue;
    }
    if (got < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// FrameAssembler

void FrameAssembler::push(const void* data, std::size_t n) {
  const auto* bytes = static_cast<const std::byte*>(data);
  buffer_.insert(buffer_.end(), bytes, bytes + n);
}

bool FrameAssembler::pop(Message& out) {
  if (buffer_.size() - at_ < 8) return false;
  auto get_u32 = [this](std::size_t from) {
    std::uint32_t v = 0;
    for (int k = 0; k < 4; ++k)
      v |= static_cast<std::uint32_t>(buffer_[from + static_cast<std::size_t>(
                                                         k)])
           << (8 * k);
    return v;
  };
  const std::uint32_t length = get_u32(at_);
  if (length < 4 || length > kMaxFrameBytes)
    throw CommError("corrupt frame length " + std::to_string(length) +
                    " on the stream; peer is not speaking the protocol");
  if (buffer_.size() - at_ < 4 + static_cast<std::size_t>(length))
    return false;
  out.tag = get_u32(at_ + 4);
  out.payload.assign(buffer_.begin() + static_cast<std::ptrdiff_t>(at_ + 8),
                     buffer_.begin() +
                         static_cast<std::ptrdiff_t>(at_ + 4 + length));
  at_ += 4 + static_cast<std::size_t>(length);
  // Compact once the consumed prefix dominates, so long-lived streams do
  // not grow without bound while staying O(1) amortized.
  if (at_ >= 4096 && at_ * 2 >= buffer_.size()) {
    buffer_.erase(buffer_.begin(), buffer_.begin() +
                                       static_cast<std::ptrdiff_t>(at_));
    at_ = 0;
  }
  return true;
}

void FrameAssembler::reset() {
  buffer_.clear();
  at_ = 0;
}

// ---------------------------------------------------------------------------
// StreamWorkerChannel (child / remote-worker side)

void StreamWorkerChannel::send(const Message& message) {
  const std::vector<std::byte> frame = frame_bytes(message);
  // Workers drop silently if the controller is gone (about to be reaped),
  // but still bound the write: a wedged controller must not pin the worker
  // inside send() forever either.
  (void)write_all(fd_, frame.data(), frame.size(),
                  StreamClock::now() + std::chrono::milliseconds{5000});
}

std::optional<Message> StreamWorkerChannel::recv() {
  while (true) {
    struct pollfd pfd{fd_, POLLIN, 0};
    const int ready =
        ::poll(&pfd, 1, static_cast<int>(kHeartbeatInterval.count()));
    if (ready < 0) {
      if (errno == EINTR) continue;
      return std::nullopt;
    }
    if (ready == 0) {
      // Idle: tell the controller we are still here.
      send(Message{kTagHeartbeat, {}});
      continue;
    }
    std::uint32_t header[2];
    if (!read_all(fd_, header, sizeof(header))) return std::nullopt;
    const std::uint32_t length = header[0];
    if (length < 4 || length > kMaxFrameBytes) return std::nullopt;
    Message message;
    message.tag = header[1];
    message.payload.resize(length - 4);
    if (!message.payload.empty() &&
        !read_all(fd_, message.payload.data(), message.payload.size()))
      return std::nullopt;
    if (message.tag == kTagShutdown) return std::nullopt;
    if (message.tag == kTagHeartbeat) {
      // A probe heartbeat carries the controller's send timestamp; echo it
      // back with our receive/reply timestamps so the controller can close
      // an NTP-style offset estimate for this rank. Empty (or unknown)
      // payloads are plain liveness.
      if (message.payload.size() == kClockProbeBytes) {
        const std::uint64_t t0 = get_u64_le(message.payload.data());
        const std::uint64_t t1 = obs::trace_now_us();
        Message echo{kTagHeartbeat, std::vector<std::byte>(kClockEchoBytes)};
        put_u64_le(echo.payload.data(), t0);
        put_u64_le(echo.payload.data() + 8, t1);
        put_u64_le(echo.payload.data() + 16, obs::trace_now_us());
        send(echo);
      }
      continue;
    }
    return message;
  }
}

// ---------------------------------------------------------------------------
// StreamCommunicatorBase (controller side)

void StreamCommunicatorBase::add_peer(int fd) {
  Peer peer;
  peer.fd = fd;
  peers_.push_back(std::move(peer));
}

bool StreamCommunicatorBase::alive(std::size_t rank) const {
  WLSMS_EXPECTS(rank < peers_.size());
  return peers_[rank].alive;
}

bool StreamCommunicatorBase::send(std::size_t rank, const Message& message) {
  WLSMS_EXPECTS(rank < peers_.size());
  Peer& peer = peers_[rank];
  if (!peer.alive) return false;
  stream_metrics().frames.inc();

  const bool corkable =
      options_.coalesce_budget.count() > 0 &&
      8 + message.payload.size() < options_.coalesce_max_bytes;
  if (!corkable) {
    // Order-preserving: anything already corked goes first.
    if (!flush(rank)) return false;
    const std::vector<std::byte> frame = frame_bytes(message);
    stream_metrics().batches.inc();
    stream_metrics().bytes.add(frame.size());
    peer.last_sent = StreamClock::now();
    if (!write_all(peer.fd, frame.data(), frame.size(),
                   StreamClock::now() + options_.send_deadline)) {
      mark_dead(rank);
      return false;
    }
    return true;
  }

  if (peer.tx.empty()) peer.cork_started = StreamClock::now();
  append_frame(peer.tx, message);
  ++peer.tx_frames;
  peer.last_sent = StreamClock::now();
  if (peer.tx.size() >= options_.coalesce_max_bytes ||
      StreamClock::now() - peer.cork_started >= options_.coalesce_budget)
    return flush(rank);
  return true;
}

bool StreamCommunicatorBase::flush(std::size_t rank) {
  Peer& peer = peers_[rank];
  if (!peer.alive) return false;
  if (peer.tx.empty()) return true;
  stream_metrics().batches.inc();
  stream_metrics().bytes.add(peer.tx.size());
  const bool ok = write_all(peer.fd, peer.tx.data(), peer.tx.size(),
                            StreamClock::now() + options_.send_deadline);
  peer.tx.clear();
  peer.tx_frames = 0;
  peer.last_sent = StreamClock::now();
  if (!ok) {
    mark_dead(rank);
    return false;
  }
  return true;
}

void StreamCommunicatorBase::flush_all() {
  for (std::size_t r = 0; r < peers_.size(); ++r)
    if (peers_[r].alive && !peers_[r].tx.empty()) (void)flush(r);
}

void StreamCommunicatorBase::heartbeat_tick() {
  const StreamClock::time_point now = StreamClock::now();
  for (std::size_t r = 0; r < peers_.size(); ++r) {
    Peer& peer = peers_[r];
    if (!peer.alive) continue;
    if (now - peer.last_sent < kHeartbeatInterval &&
        now - peer.last_probe < kHeartbeatInterval)
      continue;
    if (peer.tx.empty()) peer.cork_started = now;
    // Each heartbeat doubles as a clock probe: it carries our send
    // timestamp, and the worker's echo closes the four-timestamp offset
    // estimate in drain(). Probes run on their own cadence (last_probe)
    // so a busy link — where data traffic suppresses idle heartbeats —
    // still refreshes the offset estimate every interval. The cork flushes
    // within this poll cycle, so the stamped t0 is at most the flush
    // latency stale.
    Message probe{kTagHeartbeat, std::vector<std::byte>(kClockProbeBytes)};
    put_u64_le(probe.payload.data(), obs::trace_now_us());
    append_frame(peer.tx, probe);
    ++peer.tx_frames;
    peer.last_sent = now;
    peer.last_probe = now;
    stream_metrics().frames.inc();
    stream_metrics().heartbeats.inc();
  }
}

void StreamCommunicatorBase::drain(std::size_t rank) {
  Peer& peer = peers_[rank];
  char chunk[65536];
  while (true) {
    const ssize_t got = ::recv(peer.fd, chunk, sizeof(chunk), MSG_DONTWAIT);
    if (got > 0) {
      peer.rx.push(chunk, static_cast<std::size_t>(got));
      if (got == static_cast<ssize_t>(sizeof(chunk))) continue;
      break;
    }
    if (got < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (got < 0 && errno == EINTR) continue;
    mark_dead(rank);  // EOF or hard error
    break;
  }

  // Extract complete frames — including frames fully received before an
  // EOF; the service layer decides what to do with posthumous gathers.
  Message message;
  try {
    while (peer.rx.pop(message)) {
      peer.last_heard = StreamClock::now();
      if (message.tag == kTagHeartbeat) {
        if (message.payload.size() == kClockEchoBytes)
          observe_clock_echo(rank, message.payload);
        continue;
      }
      pending_.push_back({rank, std::move(message)});
    }
  } catch (const CommError& error) {
    if (!shut_down_)
      log_warn("comm: rank ", rank, " stream corrupt (", error.what(),
               "); marking dead");
    peer.rx.reset();
    mark_dead(rank);
  }
}

std::optional<Incoming> StreamCommunicatorBase::recv(
    std::chrono::milliseconds timeout) {
  const StreamClock::time_point deadline = StreamClock::now() + timeout;
  while (true) {
    if (!pending_.empty()) {
      Incoming incoming = std::move(pending_.front());
      pending_.pop_front();
      return incoming;
    }
    // Every poll cycle: top up idle heartbeats, then flush all corked
    // frames — this is the "flushed on retrieve" half of the coalescing
    // contract (the age/size triggers inside send() are the other half).
    heartbeat_tick();
    flush_all();

    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - StreamClock::now());
    if (remaining.count() <= 0) return std::nullopt;

    std::vector<struct pollfd> fds;
    std::vector<std::size_t> fd_rank;
    for (std::size_t r = 0; r < peers_.size(); ++r) {
      if (!peers_[r].alive) continue;
      fds.push_back({peers_[r].fd, POLLIN, 0});
      fd_rank.push_back(r);
    }
    if (fds.empty()) return std::nullopt;  // everyone is dead

    // Wake at least every heartbeat interval so controller heartbeats keep
    // flowing even when no worker traffic arrives.
    const int wait_ms = static_cast<int>(
        std::min<std::int64_t>(remaining.count(), kHeartbeatInterval.count()));
    const int ready = ::poll(fds.data(), fds.size(), wait_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw CommError(std::string("poll failed: ") + std::strerror(errno));
    }
    if (ready == 0) continue;  // deadline rechecked at the top
    for (std::size_t k = 0; k < fds.size(); ++k)
      if (fds[k].revents & (POLLIN | POLLHUP | POLLERR)) drain(fd_rank[k]);
  }
}

void StreamCommunicatorBase::observe_clock_echo(
    std::size_t rank, const std::vector<std::byte>& payload) {
  const std::uint64_t t0 = get_u64_le(payload.data());
  const std::uint64_t t1 = get_u64_le(payload.data() + 8);
  const std::uint64_t t2 = get_u64_le(payload.data() + 16);
  const std::uint64_t t3 = obs::trace_now_us();
  // NTP four-timestamp estimate: offset = worker clock - controller clock,
  // assuming symmetric one-way delays. t0/t3 are our clock, t1/t2 theirs.
  const double offset_us =
      ((static_cast<double>(t1) - static_cast<double>(t0)) +
       (static_cast<double>(t2) - static_cast<double>(t3))) /
      2.0;
  obs::Registry::instance()
      .gauge("comm.clock_offset_us.rank" + std::to_string(rank))
      .set(offset_us);
}

std::uint64_t StreamCommunicatorBase::millis_since_heard(
    std::size_t rank) const {
  WLSMS_EXPECTS(rank < peers_.size());
  if (!peers_[rank].alive) return ~std::uint64_t{0};
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          StreamClock::now() - peers_[rank].last_heard)
          .count());
}

void StreamCommunicatorBase::mark_dead(std::size_t rank) {
  Peer& peer = peers_[rank];
  if (!peer.alive) return;
  peer.alive = false;
  peer.tx.clear();
  peer.tx_frames = 0;
  if (!shut_down_)
    log_debug("comm: stream rank ", rank, " endpoint closed; marking dead");
  if (peer.fd >= 0) {
    ::close(peer.fd);
    peer.fd = -1;
  }
  on_peer_dead(rank);
}

void StreamCommunicatorBase::close_all_peers() {
  for (std::size_t r = 0; r < peers_.size(); ++r) mark_dead(r);
}

// ---------------------------------------------------------------------------

void reap_children(std::vector<pid_t>& pids, std::chrono::milliseconds grace) {
  const StreamClock::time_point deadline = StreamClock::now() + grace;
  // One shared grace period across ALL children: poll everyone each pass,
  // so teardown of an n-rank group costs one grace, not n.
  while (true) {
    bool all_reaped = true;
    for (pid_t& pid : pids) {
      if (pid < 0) continue;
      const pid_t got = ::waitpid(pid, nullptr, WNOHANG);
      if (got == pid || (got < 0 && errno == ECHILD))
        pid = -1;
      else
        all_reaped = false;
    }
    if (all_reaped) return;
    if (StreamClock::now() >= deadline) break;
    ::usleep(1000);
  }
  // Grace exhausted: SIGKILL every straggler together, then collect them.
  for (pid_t pid : pids)
    if (pid >= 0) ::kill(pid, SIGKILL);
  for (pid_t& pid : pids) {
    if (pid < 0) continue;
    (void)::waitpid(pid, nullptr, 0);
    pid = -1;
  }
}

}  // namespace wlsms::comm
