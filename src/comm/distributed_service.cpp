#include "comm/distributed_service.hpp"

#include <chrono>
#include <cstring>
#include <utility>

#include "comm/wire.hpp"
#include "common/error.hpp"
#include "common/logging.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace wlsms::comm {

namespace {

constexpr std::size_t kNoGroup = ~std::size_t{0};

struct CommMetrics {
  obs::Counter& frames_sent;
  obs::Counter& bytes_sent;
  obs::Counter& frames_received;
  obs::Counter& bytes_received;
  obs::Counter& full_scatters;
  obs::Counter& delta_scatters;
  obs::Counter& heartbeat_misses;
  obs::Counter& reroutes;
  obs::Counter& rank_deaths;
  obs::Gauge& dead_ranks;
  obs::Histogram& retrieve_latency_ms;
};

CommMetrics& comm_metrics() {
  static CommMetrics metrics{
      obs::Registry::instance().counter("comm.frames_sent"),
      obs::Registry::instance().counter("comm.bytes_sent"),
      obs::Registry::instance().counter("comm.frames_received"),
      obs::Registry::instance().counter("comm.bytes_received"),
      obs::Registry::instance().counter("comm.full_scatters"),
      obs::Registry::instance().counter("comm.delta_scatters"),
      obs::Registry::instance().counter("comm.heartbeat_misses"),
      obs::Registry::instance().counter("comm.reroutes"),
      obs::Registry::instance().counter("comm.rank_deaths"),
      obs::Registry::instance().gauge("comm.dead_ranks"),
      obs::Registry::instance().histogram(
          "comm.retrieve_latency_ms",
          {0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0, 300.0, 1000.0, 3000.0}),
  };
  return metrics;
}

/// Bitwise direction equality. Vec3::operator== would treat -0.0 == 0.0 and
/// could miss a representation change; the delta scatter must be exact at
/// the bit level because the worker reconstructs the configuration from it.
bool same_bits(const Vec3& a, const Vec3& b) {
  return std::memcmp(&a, &b, sizeof(Vec3)) == 0;
}

}  // namespace

void run_shard_worker(WorkerChannel& channel,
                      std::shared_ptr<const lsms::LsmsSolver> solver) {
  WLSMS_EXPECTS(solver != nullptr);
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::vector<Vec3>> cache;
  while (std::optional<Message> message = channel.recv()) {
    if (message->tag == kTagShardEvict) {
      // A tenant session ended: drop its cached configurations so the cache
      // cannot grow without bound under session churn.
      const ShardEvict evict = decode_shard_evict(message->payload);
      for (auto it = cache.lower_bound({evict.session, 0});
           it != cache.end() && it->first.first == evict.session;)
        it = cache.erase(it);
      continue;
    }
    if (message->tag != kTagShardRequest) continue;
    const ShardRequest request = decode_shard_request(message->payload);
    std::vector<Vec3>& directions =
        cache[{request.session, request.walker}];
    if (request.kind == ShardRequest::ConfigKind::kFull) {
      directions = request.full.directions();
    } else {
      if (directions.size() != request.n_total_atoms)
        throw CommError("delta scatter without matching base configuration");
      for (const MovedSite& moved : request.moved_sites)
        directions[moved.site] = moved.direction;
    }
    ShardResult result;
    result.ticket = request.ticket;
    result.attempt = request.attempt;
    result.first_atom = request.first_atom;
    {
      // Adopted from the originating driver span (possibly in another
      // process), so the merged trace nests this rank's solve under it.
      const obs::Span span("comm.shard_solve", request.trace);
      result.energies = solver->shard_energies(
          spin::MomentConfiguration::from_raw_directions(directions),
          static_cast<std::size_t>(request.first_atom),
          static_cast<std::size_t>(request.n_shard_atoms));
    }
    channel.send({kTagShardResult, encode_shard_result(result)});
  }
}

DistributedEnergyService::DistributedEnergyService(
    std::shared_ptr<const lsms::LsmsSolver> solver, DistributedConfig config)
    : solver_(std::move(solver)), config_(config) {
  WLSMS_EXPECTS(solver_ != nullptr);
  WLSMS_EXPECTS(config_.n_groups >= 1);
  WLSMS_EXPECTS(config_.group_size >= 1);
  WLSMS_EXPECTS(config_.poll_interval.count() > 0);
  WLSMS_EXPECTS(config_.heartbeat_timeout.count() > 0);

  const std::size_t n_ranks = config_.n_groups * config_.group_size;
  groups_.resize(config_.n_groups);
  rank_group_.resize(n_ranks);
  sent_.resize(n_ranks);
  death_counted_.assign(n_ranks, 0);
  for (std::size_t r = 0; r < n_ranks; ++r) {
    const std::size_t g = r / config_.group_size;
    rank_group_[r] = g;
    groups_[g].ranks.push_back(r);
  }

  // The worker rank is run_shard_worker over this controller's solver —
  // forked locally on the process/tcp transports (copy-on-write solver),
  // threaded in-process, or not at all when external TCP workers bring
  // their own solver build.
  WorkerMain worker_main = [solver = solver_](WorkerChannel& channel) {
    run_shard_worker(channel, solver);
  };
  if (config_.transport == Transport::kTcp)
    comm_ = make_tcp_communicator(n_ranks, std::move(worker_main),
                                  config_.tcp);
  else
    comm_ =
        make_communicator(config_.transport, n_ranks, std::move(worker_main));
}

DistributedEnergyService::~DistributedEnergyService() {
  if (comm_) comm_->shutdown();
}

void DistributedEnergyService::submit(wl::EnergyRequest request) {
  WLSMS_EXPECTS(request.config.size() == solver_->n_atoms());
  ++outstanding_;
  waiting_.push_back(std::move(request));
  pump_waiting();
}

wl::EnergyResult DistributedEnergyService::retrieve() {
  if (outstanding_ == 0)
    throw CommError("EnergyService::retrieve() with nothing outstanding");
  const obs::Span span("comm.retrieve");
  const auto enter = std::chrono::steady_clock::now();
  while (done_.empty()) {
    if (comm_->n_alive() == 0)
      throw CommError("all worker ranks dead with requests outstanding");
    if (std::optional<Incoming> incoming = comm_->recv(config_.poll_interval)) {
      if (incoming->message.tag == kTagShardResult) {
        if (!comm_->alive(incoming->rank)) {
          // A gather from a rank already declared dead: the kill raced the
          // worker's last send. Honoring it would make failover outcomes
          // depend on that race; discard and let the reroute recompute.
          log_debug("comm: discarding posthumous frame from dead rank ",
                    incoming->rank);
        } else {
          on_shard_result(incoming->rank, incoming->message.payload);
        }
      }
    }
    check_health();
    pump_waiting();
  }
  wl::EnergyResult result = std::move(done_.front());
  done_.pop_front();
  --outstanding_;
  comm_metrics().retrieve_latency_ms.observe(
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - enter)
          .count());
  return result;
}

void DistributedEnergyService::evict_session(std::uint64_t session) {
  const Message message{kTagShardEvict, encode_shard_evict({session})};
  for (std::size_t rank = 0; rank < sent_.size(); ++rank) {
    auto& cache = sent_[rank];
    for (auto it = cache.lower_bound({session, 0});
         it != cache.end() && it->first.first == session;)
      it = cache.erase(it);
    // Every alive rank gets the evict, even ones with no controller-side
    // entries: a scatter aborted mid-send can leave a worker holding a
    // configuration the controller no longer remembers sending.
    if (comm_->alive(rank)) (void)comm_->send(rank, message);
  }
}

std::size_t DistributedEnergyService::delta_cache_entries() const {
  std::size_t total = 0;
  for (const auto& cache : sent_) total += cache.size();
  return total;
}

std::size_t DistributedEnergyService::idle_group() const {
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    if (groups_[g].busy) continue;
    for (std::size_t rank : groups_[g].ranks)
      if (comm_->alive(rank)) return g;
  }
  return kNoGroup;
}

void DistributedEnergyService::pump_waiting() {
  while (!waiting_.empty()) {
    const std::size_t g = idle_group();
    if (g == kNoGroup) return;
    wl::EnergyRequest request = std::move(waiting_.front());
    waiting_.pop_front();
    if (!dispatch(g, request)) {
      // The group's last ranks died under us; park the request and let the
      // loop try the remaining groups (idle_group now skips this one).
      waiting_.push_front(std::move(request));
    }
  }
}

bool DistributedEnergyService::dispatch(std::size_t g,
                                        const wl::EnergyRequest& request) {
  const obs::Span span("comm.dispatch");
  Group& group = groups_[g];
  const std::size_t n_atoms = request.config.size();
  const std::vector<Vec3>& directions = request.config.directions();

  // A send failure mid-scatter means a rank died between the alive() check
  // and the write: restart the whole scatter over the survivors with a
  // fresh attempt number, so partial shards of the aborted scatter are
  // recognizably stale.
  while (true) {
    std::vector<std::size_t> alive;
    for (std::size_t rank : group.ranks)
      if (comm_->alive(rank)) alive.push_back(rank);
    if (alive.empty()) {
      group.busy = false;
      return false;
    }
    const std::size_t n_shards = std::min(alive.size(), n_atoms);
    group.busy = true;
    group.request = request;
    group.attempt = next_attempt_++;
    group.assigned.clear();
    group.per_atom.assign(n_atoms, 0.0);
    group.have_atom.assign(n_atoms, 0);
    group.missing = n_atoms;

    bool scatter_ok = true;
    const std::size_t base = n_atoms / n_shards;
    const std::size_t rem = n_atoms % n_shards;
    std::size_t first = 0;
    for (std::size_t s = 0; s < n_shards; ++s) {
      const std::size_t rank = alive[s];
      const std::size_t count = base + (s < rem ? 1 : 0);

      ShardRequest shard;
      shard.ticket = request.ticket;
      shard.attempt = group.attempt;
      shard.session = request.session;
      shard.trace = request.trace;
      shard.walker = request.walker;
      shard.first_atom = first;
      shard.n_shard_atoms = count;
      shard.n_total_atoms = n_atoms;

      // Delta against what this rank last saw for this walker, when the
      // delta is genuinely smaller than resending the configuration; a
      // MovedSite costs a site index on top of the direction.
      const auto cached = sent_[rank].find({request.session, request.walker});
      if (cached != sent_[rank].end() && cached->second.size() == n_atoms) {
        shard.kind = ShardRequest::ConfigKind::kDelta;
        for (std::size_t i = 0; i < n_atoms; ++i)
          if (!same_bits(cached->second[i], directions[i]))
            shard.moved_sites.push_back({i, directions[i]});
        if (shard.moved_sites.size() * 4 >= n_atoms * 3) {
          shard.kind = ShardRequest::ConfigKind::kFull;
          shard.moved_sites.clear();
        }
      }
      if (shard.kind == ShardRequest::ConfigKind::kFull)
        shard.full = request.config;

      const Message message{kTagShardRequest, encode_shard_request(shard)};
      const std::size_t frame_bytes = message.payload.size();
      if (!comm_->send(rank, message)) {
        log_debug("comm: send to rank ", rank, " (group ", g,
                  ") failed mid-scatter of ticket ", request.ticket,
                  "; restarting scatter over survivors");
        sent_[rank].clear();
        scatter_ok = false;
        break;
      }
      CommMetrics& metrics = comm_metrics();
      metrics.frames_sent.inc();
      metrics.bytes_sent.add(frame_bytes);
      if (shard.kind == ShardRequest::ConfigKind::kDelta)
        metrics.delta_scatters.inc();
      else
        metrics.full_scatters.inc();
      sent_[rank][{request.session, request.walker}] = directions;
      group.assigned.push_back({rank, first, count});
      first += count;
    }
    if (scatter_ok) return true;
  }
}

void DistributedEnergyService::on_shard_result(
    std::size_t rank, const std::vector<std::byte>& payload) {
  CommMetrics& metrics = comm_metrics();
  metrics.frames_received.inc();
  metrics.bytes_received.add(payload.size());

  ShardResult result;
  try {
    result = decode_shard_result(payload);
  } catch (const serial::SerializationError& error) {
    // A rank speaking a corrupt protocol is as good as dead.
    log_warn("comm: rank ", rank, " (group ", rank_group_[rank],
             ") sent a corrupt shard result (", error.what(),
             "); killing it");
    comm_->kill(rank);
    on_rank_death(rank);
    return;
  }

  Group& group = groups_[rank_group_[rank]];
  if (!group.busy || group.request.ticket != result.ticket ||
      group.attempt != result.attempt) {
    log_debug("comm: rank ", rank, " (group ", rank_group_[rank],
              ") returned a stale gather for ticket ", result.ticket,
              " attempt ", result.attempt, "; discarded");
    return;  // stale gather from an aborted scatter
  }
  const std::size_t n_atoms = group.per_atom.size();
  if (result.first_atom + result.energies.size() > n_atoms) {
    log_warn("comm: rank ", rank, " (group ", rank_group_[rank],
             ") returned an out-of-range shard [", result.first_atom, ", ",
             result.first_atom + result.energies.size(), ") of ", n_atoms,
             " atoms; killing it");
    comm_->kill(rank);
    on_rank_death(rank);
    return;
  }

  for (std::size_t k = 0; k < result.energies.size(); ++k) {
    const std::size_t atom = static_cast<std::size_t>(result.first_atom) + k;
    if (group.have_atom[atom]) continue;
    group.have_atom[atom] = 1;
    group.per_atom[atom] = result.energies[k];
    --group.missing;
  }
  if (group.missing > 0) return;

  // Full gather: sum in atom order, exactly like LsmsSolver::energies sums
  // per_atom — this sequential reduction is what keeps the distributed
  // total bit-identical to the serial one.
  wl::EnergyResult done;
  done.walker = group.request.walker;
  done.ticket = group.request.ticket;
  done.energy = 0.0;
  for (double e : group.per_atom) done.energy += e;
  done.failed = false;
  done_.push_back(done);
  group.busy = false;
  pump_waiting();
}

void DistributedEnergyService::check_health() {
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    Group& group = groups_[g];
    if (!group.busy) continue;
    for (const Assignment& assignment : group.assigned) {
      bool shard_done = true;
      for (std::size_t a = assignment.first;
           a < assignment.first + assignment.count; ++a)
        if (!group.have_atom[a]) {
          shard_done = false;
          break;
        }
      if (shard_done) continue;

      if (!comm_->alive(assignment.rank)) {
        log_warn("comm: rank ", assignment.rank, " (group ", g,
                 ") died with atoms [", assignment.first, ", ",
                 assignment.first + assignment.count,
                 ") assigned; rerouting");
        on_rank_death(assignment.rank);
        break;  // group state was rebuilt; assignments are gone
      }
      const std::uint64_t silent_ms =
          comm_->millis_since_heard(assignment.rank);
      if (silent_ms >
          static_cast<std::uint64_t>(config_.heartbeat_timeout.count())) {
        // Alive but silent past the deadline with work assigned: wedged.
        // Kill it so the transport stops waiting on it, then reroute.
        comm_metrics().heartbeat_misses.inc();
        log_warn("comm: rank ", assignment.rank, " (group ", g,
                 ") unheard for ", silent_ms, " ms (timeout ",
                 config_.heartbeat_timeout.count(), " ms) with atoms [",
                 assignment.first, ", ",
                 assignment.first + assignment.count,
                 ") assigned; killing and rerouting");
        comm_->kill(assignment.rank);
        on_rank_death(assignment.rank);
        break;
      }
    }
  }
}

void DistributedEnergyService::on_rank_death(std::size_t rank) {
  CommMetrics& metrics = comm_metrics();
  if (!death_counted_[rank]) {
    death_counted_[rank] = 1;
    metrics.rank_deaths.inc();
  }
  metrics.dead_ranks.set(
      static_cast<double>(comm_->n_ranks() - comm_->n_alive()));

  // The worker's configuration cache died with it.
  sent_[rank].clear();
  const std::size_t g = rank_group_[rank];
  Group& group = groups_[g];
  if (!group.busy) return;
  bool was_assigned = false;
  for (const Assignment& assignment : group.assigned)
    if (assignment.rank == rank) {
      was_assigned = true;
      break;
    }
  if (!was_assigned) return;

  ++reroutes_;
  metrics.reroutes.inc();
  wl::EnergyRequest request = std::move(group.request);
  group.busy = false;
  if (dispatch(g, request)) {
    log_info("comm: rescattered ticket ", request.ticket, " over group ", g,
             "'s survivors after the death of rank ", rank);
  } else {
    // The whole group is gone: migrate the request to another group.
    log_warn("comm: group ", g, " is extinct after the death of rank ", rank,
             "; migrating ticket ", request.ticket, " to another group");
    waiting_.push_front(std::move(request));
    pump_waiting();
  }
}

}  // namespace wlsms::comm
