#pragma once

/// \file wire.hpp
/// The versioned wire protocol of the distributed energy service: what the
/// controller and the worker ranks of an LSMS group actually say to each
/// other. Every payload is framed by the shared serial schema (magic +
/// schema version + payload kind), so a wire message and a checkpoint are
/// the same dialect; truncated or corrupted buffers throw
/// serial::SerializationError and can never crash the decoder.
///
/// The group protocol mirrors the paper's Fig. 3 communication pattern:
///  - ShardRequest scatters one configuration over a group's ranks, each
///    rank owning a contiguous atom range of the per-atom LIZ solves. The
///    configuration travels either whole (kFull) or as the moved-site
///    delta against the configuration the SAME rank saw last for that
///    walker (kDelta) — the t-matrix-update scatter of §II-C, since a
///    one-moment move invalidates exactly one site's t-matrix.
///  - ShardResult gathers the shard's per-atom energies e_i back; the
///    controller reassembles and sums them in atom order, which is what
///    makes the distributed total bit-identical to the serial solver.
///
/// `attempt` versions a scatter: after a worker death the controller
/// re-scatters the same ticket with attempt+1, and stale results from the
/// previous scatter are recognizably obsolete.

#include <cstdint>
#include <vector>

#include "common/serial.hpp"
#include "common/vec3.hpp"
#include "obs/trace.hpp"
#include "spin/moments.hpp"
#include "wl/energy_service.hpp"

namespace wlsms::comm {

/// Application-level message tags (Message::tag).
enum Tag : std::uint32_t {
  kTagEnergyRequest = 1,
  kTagEnergyResult = 2,
  kTagShardRequest = 3,
  kTagShardResult = 4,
  kTagShardEvict = 5,
};

/// One site whose moment changed: the unit of the delta scatter.
struct MovedSite {
  std::uint64_t site = 0;
  Vec3 direction;
};

/// Scatter of one configuration shard to one rank.
struct ShardRequest {
  std::uint64_t ticket = 0;   ///< driver-level request id
  std::uint32_t attempt = 0;  ///< scatter generation (reroute bumps it)
  std::uint64_t session = 0;  ///< tenant-session id (0 = single local tenant)
  /// Originating span of the submitted request: the worker's shard-solve
  /// span adopts it, so a merged trace nests the remote solve under the
  /// driver span that caused it. Zero/zero when tracing is off.
  obs::TraceContext trace = {};
  std::uint64_t walker = 0;   ///< with session, keys the worker's config cache
  std::uint64_t first_atom = 0;
  std::uint64_t n_shard_atoms = 0;  ///< this rank solves [first, first+n)

  enum class ConfigKind : std::uint8_t { kFull = 0, kDelta = 1 };
  ConfigKind kind = ConfigKind::kFull;
  /// kFull: the whole configuration (moved_sites empty).
  spin::MomentConfiguration full;
  /// kDelta: changed sites against the rank's cached configuration for
  /// `walker` (full is empty). n_total_atoms lets the worker validate.
  std::vector<MovedSite> moved_sites;
  std::uint64_t n_total_atoms = 0;
};

/// Controller -> worker: forget every delta-cache entry of one tenant
/// session. A daemon multiplexing many short-lived sessions over one
/// service sends this when a session ends, so neither side's per-(session,
/// walker) configuration caches grow without bound under session churn.
struct ShardEvict {
  std::uint64_t session = 0;
};

/// Gather of one shard's per-atom energies.
struct ShardResult {
  std::uint64_t ticket = 0;
  std::uint32_t attempt = 0;
  std::uint64_t first_atom = 0;
  std::vector<double> energies;  ///< e_i for i in [first, first+size)
};

std::vector<std::byte> encode_shard_request(const ShardRequest&);
ShardRequest decode_shard_request(const std::vector<std::byte>&);

std::vector<std::byte> encode_shard_result(const ShardResult&);
ShardResult decode_shard_result(const std::vector<std::byte>&);

std::vector<std::byte> encode_shard_evict(const ShardEvict&);
ShardEvict decode_shard_evict(const std::vector<std::byte>&);

/// Whole-request codecs (a full configuration with its ticket), used when a
/// group has a single rank and by anything that ships an EnergyService
/// conversation across a boundary wholesale.
std::vector<std::byte> encode_energy_request(const wl::EnergyRequest&);
wl::EnergyRequest decode_energy_request(const std::vector<std::byte>&);

std::vector<std::byte> encode_energy_result(const wl::EnergyResult&);
wl::EnergyResult decode_energy_result(const std::vector<std::byte>&);

}  // namespace wlsms::comm
