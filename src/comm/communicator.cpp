#include "comm/communicator.hpp"

namespace wlsms::comm {

std::size_t Communicator::n_alive() const {
  std::size_t count = 0;
  for (std::size_t r = 0; r < n_ranks(); ++r)
    if (alive(r)) ++count;
  return count;
}

Transport parse_transport(const std::string& name) {
  if (name == "inprocess" || name == "threads") return Transport::kInProcess;
  if (name == "process" || name == "fork") return Transport::kProcess;
  if (name == "tcp" || name == "net") return Transport::kTcp;
  throw CommError("unknown transport '" + name +
                  "' (expected 'inprocess', 'process', or 'tcp')");
}

const char* transport_name(Transport transport) {
  switch (transport) {
    case Transport::kInProcess: return "inprocess";
    case Transport::kProcess: return "process";
    case Transport::kTcp: return "tcp";
  }
  return "unknown";
}

std::unique_ptr<Communicator> make_communicator(Transport transport,
                                                std::size_t n_ranks,
                                                WorkerMain worker_main) {
  switch (transport) {
    case Transport::kInProcess:
      return make_in_process_communicator(n_ranks, std::move(worker_main));
    case Transport::kProcess:
      return make_process_communicator(n_ranks, std::move(worker_main));
    case Transport::kTcp:
      // Default options: loopback listener on an ephemeral port, workers
      // forked locally. Callers needing external workers pass TcpOptions
      // through make_tcp_communicator directly.
      return make_tcp_communicator(n_ranks, std::move(worker_main),
                                   TcpOptions{});
  }
  throw CommError("unknown transport");
}

}  // namespace wlsms::comm
