#include "comm/communicator.hpp"

namespace wlsms::comm {

std::size_t Communicator::n_alive() const {
  std::size_t count = 0;
  for (std::size_t r = 0; r < n_ranks(); ++r)
    if (alive(r)) ++count;
  return count;
}

Transport parse_transport(const std::string& name) {
  if (name == "inprocess" || name == "threads") return Transport::kInProcess;
  if (name == "process" || name == "fork") return Transport::kProcess;
  throw CommError("unknown transport '" + name +
                  "' (expected 'inprocess' or 'process')");
}

const char* transport_name(Transport transport) {
  switch (transport) {
    case Transport::kInProcess: return "inprocess";
    case Transport::kProcess: return "process";
  }
  return "unknown";
}

std::unique_ptr<Communicator> make_communicator(Transport transport,
                                                std::size_t n_ranks,
                                                WorkerMain worker_main) {
  switch (transport) {
    case Transport::kInProcess:
      return make_in_process_communicator(n_ranks, std::move(worker_main));
    case Transport::kProcess:
      return make_process_communicator(n_ranks, std::move(worker_main));
  }
  throw CommError("unknown transport");
}

}  // namespace wlsms::comm
