// TCP Communicator: the multi-node transport. The controller binds a
// listening socket, workers dial in — from other nodes via `wlsms worker
// --connect host:port`, or (for loopback tests and single-host runs) as
// fork()ed local children — and each connection becomes one rank after a
// magic/version handshake framed in the shared WLSM serial schema. From
// then on the stream is indistinguishable from the socketpair transport:
// the same [u32 length][u32 tag] frames, coalesced controller writes,
// bounded send deadlines, idle heartbeats both ways, and EOF/ECONNRESET
// death detection feeding alive()/millis_since_heard (comm/framing).
//
// Handshake (before any framing trust is extended):
//   worker -> controller   frame{kTagHello,   WLSM header kTcpHello +
//                                             u64 trace_node + u64 t0}
//   controller -> worker   frame{kTagWelcome, WLSM header kTcpWelcome +
//                                             u64 rank + u64 n_ranks +
//                                             u64 trace_node + u64 t1 +
//                                             u64 t2}
// The trace_node/t0..t2 fields double the handshake as an NTP-style clock
// probe: the worker samples t3 at welcome receipt and records its offset to
// the controller clock (obs::set_clock_offset + comm.clock_offset_us), so
// its trace file can be merged into the controller's timebase.
// A connection that sends anything else — wrong magic, wrong schema
// version, garbage, or nothing within the per-connection window — is
// closed and never occupies a rank slot; the controller keeps accepting
// until the group is complete or options.accept_timeout expires.

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "comm/framing.hpp"
#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/serial.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace wlsms::comm {

namespace {

using std::chrono::milliseconds;

/// Per-connection handshake window: generous for a WAN round-trip, small
/// enough that a garbage connection cannot stall group formation.
constexpr milliseconds kHandshakeTimeout{2000};

struct HostPort {
  std::string host;
  std::string port;
};

HostPort split_address(const std::string& address) {
  const std::size_t colon = address.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == address.size())
    throw CommError("tcp: address '" + address +
                    "' is not of the form host:port");
  return {address.substr(0, colon), address.substr(colon + 1)};
}

void set_nodelay(int fd) {
  int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void set_cloexec(int fd) {
  const int flags = ::fcntl(fd, F_GETFD, 0);
  if (flags >= 0) (void)::fcntl(fd, F_SETFD, flags | FD_CLOEXEC);
}

/// RAII socket so every throw path closes cleanly.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  ~Socket() { close(); }

  int get() const { return fd_; }
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_ = -1;
};

/// Reads one complete frame from `fd` within `deadline`; nullopt on EOF,
/// error, timeout, or a corrupt length (the assembler throw is mapped to
/// nullopt — a handshake failure, not a controller crash). May consume
/// bytes PAST the frame it returns — controller-side use only, where the
/// worker is guaranteed silent between its hello and our welcome.
std::optional<Message> read_frame_with_deadline(
    int fd, StreamClock::time_point deadline) {
  FrameAssembler assembler;
  Message message;
  char chunk[4096];
  while (true) {
    try {
      if (assembler.pop(message)) return message;
    } catch (const CommError&) {
      return std::nullopt;
    }
    const auto remaining =
        std::chrono::duration_cast<milliseconds>(deadline -
                                                 StreamClock::now());
    if (remaining.count() <= 0) return std::nullopt;
    struct pollfd pfd{fd, POLLIN, 0};
    const int ready =
        ::poll(&pfd, 1, static_cast<int>(remaining.count()));
    if (ready < 0) {
      if (errno == EINTR) continue;
      return std::nullopt;
    }
    if (ready == 0) return std::nullopt;
    const ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
    if (got > 0) {
      assembler.push(chunk, static_cast<std::size_t>(got));
      continue;
    }
    if (got < 0 && (errno == EINTR || errno == EAGAIN ||
                    errno == EWOULDBLOCK))
      continue;
    return std::nullopt;  // EOF or hard error
  }
}

/// Reads exactly one frame — header then payload, nothing more — so bytes
/// that follow it stay in the kernel buffer. The worker MUST use this for
/// the welcome: the controller's first coalesced batch (heartbeat + first
/// scatter) can already be queued behind it, and a greedy read would
/// silently swallow frames that belong to the StreamWorkerChannel.
std::optional<Message> read_one_frame_exact(int fd,
                                            StreamClock::time_point deadline) {
  while (true) {
    const auto remaining =
        std::chrono::duration_cast<milliseconds>(deadline -
                                                 StreamClock::now());
    if (remaining.count() <= 0) return std::nullopt;
    struct pollfd pfd{fd, POLLIN, 0};
    const int ready =
        ::poll(&pfd, 1, static_cast<int>(remaining.count()));
    if (ready < 0) {
      if (errno == EINTR) continue;
      return std::nullopt;
    }
    if (ready == 0) return std::nullopt;
    break;
  }
  std::uint32_t header[2];
  if (!read_all(fd, header, sizeof(header))) return std::nullopt;
  const std::uint32_t length = header[0];
  if (length < 4 || length > kMaxFrameBytes) return std::nullopt;
  Message message;
  message.tag = header[1];
  message.payload.resize(length - 4);
  if (!message.payload.empty() &&
      !read_all(fd, message.payload.data(), message.payload.size()))
    return std::nullopt;
  return message;
}

std::vector<std::byte> hello_payload(std::uint64_t t0_us) {
  serial::Encoder encoder;
  serial::write_header(encoder, serial::PayloadKind::kTcpHello);
  encoder.put_u64(obs::local_trace_node());
  encoder.put_u64(t0_us);  // worker clock at hello send
  return encoder.take();
}

std::vector<std::byte> welcome_payload(std::uint64_t rank,
                                       std::uint64_t n_ranks,
                                       std::uint64_t t1_us) {
  serial::Encoder encoder;
  serial::write_header(encoder, serial::PayloadKind::kTcpWelcome);
  encoder.put_u64(rank);
  encoder.put_u64(n_ranks);
  encoder.put_u64(obs::local_trace_node());
  encoder.put_u64(t1_us);                // controller clock at hello receipt
  encoder.put_u64(obs::trace_now_us());  // t2: controller clock at send
  return encoder.take();
}

// ---------------------------------------------------------------------------
// Controller side.

class TcpCommunicator final : public StreamCommunicatorBase {
 public:
  TcpCommunicator(std::size_t n_ranks, const WorkerMain& worker_main,
                  const TcpOptions& options);
  ~TcpCommunicator() override { shutdown(); }

  void kill(std::size_t rank) override;
  void shutdown() override;

 private:
  /// Pid of rank r's locally spawned worker, or -1 (external / reaped).
  std::vector<pid_t> pids_;
};

TcpCommunicator::TcpCommunicator(std::size_t n_ranks,
                                 const WorkerMain& worker_main,
                                 const TcpOptions& options)
    : StreamCommunicatorBase(options.stream) {
  WLSMS_EXPECTS(n_ranks >= 1);
  if (options.spawn_workers) WLSMS_EXPECTS(worker_main != nullptr);

  const HostPort bind_to = split_address(options.listen);

  // Bind + listen before anything can try to connect.
  struct addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE | AI_NUMERICSERV;
  struct addrinfo* resolved = nullptr;
  const int rc = ::getaddrinfo(bind_to.host.c_str(), bind_to.port.c_str(),
                               &hints, &resolved);
  if (rc != 0)
    throw CommError("tcp: cannot resolve listen address '" + options.listen +
                    "': " + ::gai_strerror(rc));
  Socket listener(::socket(resolved->ai_family, resolved->ai_socktype, 0));
  if (listener.get() < 0) {
    ::freeaddrinfo(resolved);
    throw CommError(std::string("tcp: socket failed: ") +
                    std::strerror(errno));
  }
  set_cloexec(listener.get());
  int one = 1;
  (void)::setsockopt(listener.get(), SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
  const int bind_rc =
      ::bind(listener.get(), resolved->ai_addr, resolved->ai_addrlen);
  ::freeaddrinfo(resolved);
  if (bind_rc != 0)
    throw CommError("tcp: bind to '" + options.listen +
                    "' failed: " + std::strerror(errno));
  if (::listen(listener.get(), static_cast<int>(n_ranks) + 8) != 0)
    throw CommError(std::string("tcp: listen failed: ") +
                    std::strerror(errno));

  // Resolve the ephemeral port the kernel picked.
  struct sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listener.get(),
                    reinterpret_cast<struct sockaddr*>(&bound),
                    &bound_len) != 0)
    throw CommError(std::string("tcp: getsockname failed: ") +
                    std::strerror(errno));
  const std::uint16_t port = ntohs(bound.sin_port);
  const std::string bound_address =
      bind_to.host + ":" + std::to_string(port);
  log_debug("comm: tcp controller listening on ", bound_address, " for ",
            n_ranks, " workers");
  if (options.on_listening) options.on_listening(bound_address);

  pids_.assign(n_ranks, -1);
  if (options.spawn_workers) {
    // Loopback workers, forked exactly like the kProcess transport (same
    // copy-on-write solver reuse, same _exit discipline) but connected
    // through the real listener so the full accept/handshake path runs.
    const std::string connect_address =
        "127.0.0.1:" + std::to_string(port);
    std::fflush(nullptr);
    for (std::size_t r = 0; r < n_ranks; ++r) {
      const pid_t pid = ::fork();
      if (pid < 0)
        throw CommError(std::string("tcp: fork failed: ") +
                        std::strerror(errno));
      if (pid == 0) {
        listener.close();
        int status = 0;
        try {
          (void)run_tcp_worker(connect_address, worker_main,
                               options.connect_timeout);
        } catch (...) {
          status = 1;
        }
        ::_exit(status);
      }
      pids_[r] = pid;
    }
  }

  // Accept until the group is complete. A connection that fails the
  // handshake is closed and does not consume a rank slot.
  const StreamClock::time_point accept_deadline =
      StreamClock::now() + options.accept_timeout;
  std::size_t accepted = 0;
  while (accepted < n_ranks) {
    const auto remaining = std::chrono::duration_cast<milliseconds>(
        accept_deadline - StreamClock::now());
    if (remaining.count() <= 0) break;
    struct pollfd pfd{listener.get(), POLLIN, 0};
    const int ready =
        ::poll(&pfd, 1, static_cast<int>(remaining.count()));
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw CommError(std::string("tcp: poll on listener failed: ") +
                      std::strerror(errno));
    }
    if (ready == 0) break;  // deadline
    Socket conn(::accept(listener.get(), nullptr, nullptr));
    if (conn.get() < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      throw CommError(std::string("tcp: accept failed: ") +
                      std::strerror(errno));
    }
    set_nodelay(conn.get());
    set_cloexec(conn.get());

    // Validate the hello before the connection becomes a rank.
    const std::optional<Message> hello = read_frame_with_deadline(
        conn.get(), StreamClock::now() + kHandshakeTimeout);
    const std::uint64_t t1_us = obs::trace_now_us();
    if (!hello || hello->tag != kTagHello) {
      log_warn("comm: tcp connection rejected (no valid hello frame)");
      continue;
    }
    try {
      serial::Decoder decoder(hello->payload);
      serial::read_header(decoder, serial::PayloadKind::kTcpHello);
      (void)decoder.get_u64();  // worker trace node
      (void)decoder.get_u64();  // t0: the worker keeps its own copy
      decoder.expect_end();
    } catch (const serial::SerializationError& error) {
      log_warn("comm: tcp connection rejected (bad hello: ", error.what(),
               ")");
      continue;
    }
    const std::vector<std::byte> welcome = frame_bytes(
        Message{kTagWelcome, welcome_payload(accepted, n_ranks, t1_us)});
    if (!write_all(conn.get(), welcome.data(), welcome.size(),
                   StreamClock::now() + kHandshakeTimeout)) {
      log_warn("comm: tcp connection rejected (welcome write failed)");
      continue;
    }
    log_debug("comm: tcp worker accepted as rank ", accepted);
    add_peer(conn.release());
    ++accepted;
  }
  if (accepted < n_ranks) {
    close_all_peers();
    reap_children(pids_, milliseconds{100});
    throw CommError("tcp: only " + std::to_string(accepted) + " of " +
                    std::to_string(n_ranks) +
                    " workers joined within the accept timeout");
  }
  // Group membership is fixed at construction; stop accepting.
}

void TcpCommunicator::kill(std::size_t rank) {
  WLSMS_EXPECTS(rank < n_ranks());
  if (alive(rank))
    log_debug("comm: tcp kill rank ", rank,
              pids_[rank] >= 0 ? " (SIGKILL local worker)"
                               : " (closing connection)");
  if (pids_[rank] >= 0) {
    ::kill(pids_[rank], SIGKILL);
    (void)::waitpid(pids_[rank], nullptr, 0);
    pids_[rank] = -1;
  }
  // External workers see EOF on the close and exit on their own.
  mark_dead(rank);
}

void TcpCommunicator::shutdown() {
  if (shutting_down()) return;
  begin_shutdown();
  close_all_peers();
  reap_children(pids_, stream_options().shutdown_grace);
}

}  // namespace

std::unique_ptr<Communicator> make_tcp_communicator(std::size_t n_ranks,
                                                    WorkerMain worker_main,
                                                    const TcpOptions& options) {
  return std::make_unique<TcpCommunicator>(n_ranks, worker_main, options);
}

// ---------------------------------------------------------------------------
// Worker side.

std::size_t run_tcp_worker(const std::string& address,
                           const WorkerMain& worker_main,
                           std::chrono::milliseconds connect_timeout) {
  WLSMS_EXPECTS(worker_main != nullptr);
  const HostPort target = split_address(address);

  struct addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_NUMERICSERV;
  struct addrinfo* resolved = nullptr;
  const int rc = ::getaddrinfo(target.host.c_str(), target.port.c_str(),
                               &hints, &resolved);
  if (rc != 0)
    throw CommError("tcp: cannot resolve '" + address +
                    "': " + ::gai_strerror(rc));

  // Non-blocking connect with a deadline: a black-holed controller address
  // fails in connect_timeout, not the kernel's multi-minute SYN retry.
  Socket sock;
  std::string last_error = "no addresses";
  for (struct addrinfo* ai = resolved; ai != nullptr; ai = ai->ai_next) {
    Socket candidate(::socket(ai->ai_family, ai->ai_socktype, 0));
    if (candidate.get() < 0) {
      last_error = std::string("socket: ") + std::strerror(errno);
      continue;
    }
    const int flags = ::fcntl(candidate.get(), F_GETFL, 0);
    (void)::fcntl(candidate.get(), F_SETFL, flags | O_NONBLOCK);
    const int connect_rc =
        ::connect(candidate.get(), ai->ai_addr, ai->ai_addrlen);
    if (connect_rc != 0 && errno != EINPROGRESS) {
      last_error = std::string("connect: ") + std::strerror(errno);
      continue;
    }
    if (connect_rc != 0) {
      struct pollfd pfd{candidate.get(), POLLOUT, 0};
      const int ready = ::poll(&pfd, 1,
                               static_cast<int>(connect_timeout.count()));
      if (ready <= 0) {
        last_error = "connect timed out";
        continue;
      }
      int so_error = 0;
      socklen_t len = sizeof(so_error);
      (void)::getsockopt(candidate.get(), SOL_SOCKET, SO_ERROR, &so_error,
                         &len);
      if (so_error != 0) {
        last_error = std::string("connect: ") + std::strerror(so_error);
        continue;
      }
    }
    // Connected: back to blocking for the worker's read loop.
    (void)::fcntl(candidate.get(), F_SETFL, flags);
    sock = std::move(candidate);
    break;
  }
  ::freeaddrinfo(resolved);
  if (sock.get() < 0)
    throw CommError("tcp: cannot connect to '" + address +
                    "': " + last_error);
  set_nodelay(sock.get());
  set_cloexec(sock.get());

  // Handshake: hello out, welcome (rank assignment) back. The welcome also
  // closes the four-timestamp clock probe opened by the hello, giving this
  // worker its offset to the controller clock before any spans are emitted.
  const std::uint64_t t0_us = obs::trace_now_us();
  const std::vector<std::byte> hello =
      frame_bytes(Message{kTagHello, hello_payload(t0_us)});
  if (!write_all(sock.get(), hello.data(), hello.size(),
                 StreamClock::now() + kHandshakeTimeout))
    throw CommError("tcp: handshake hello to '" + address + "' failed");
  const std::optional<Message> welcome = read_one_frame_exact(
      sock.get(), StreamClock::now() + kHandshakeTimeout);
  const std::uint64_t t3_us = obs::trace_now_us();
  if (!welcome || welcome->tag != kTagWelcome)
    throw CommError("tcp: no welcome from controller at '" + address + "'");
  std::uint64_t rank = 0;
  try {
    serial::Decoder decoder(welcome->payload);
    serial::read_header(decoder, serial::PayloadKind::kTcpWelcome);
    rank = decoder.get_u64();
    (void)decoder.get_u64();  // n_ranks; informational
    const std::uint64_t controller_node = decoder.get_u64();
    const std::uint64_t t1_us = decoder.get_u64();
    const std::uint64_t t2_us = decoder.get_u64();
    decoder.expect_end();
    const double offset_us =
        ((static_cast<double>(t1_us) - static_cast<double>(t0_us)) +
         (static_cast<double>(t2_us) - static_cast<double>(t3_us))) /
        2.0;
    obs::set_clock_offset(offset_us, controller_node);
    obs::Registry::instance()
        .gauge("comm.clock_offset_us")
        .set(offset_us);
  } catch (const serial::SerializationError& error) {
    throw CommError(std::string("tcp: malformed welcome: ") + error.what());
  }

  StreamWorkerChannel channel(sock.get(), static_cast<std::size_t>(rank));
  worker_main(channel);
  return static_cast<std::size_t>(rank);
}

}  // namespace wlsms::comm
