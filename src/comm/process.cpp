// Multi-process Communicator: each rank is a fork()ed child of the
// controller process, connected by a SOCK_STREAM UNIX-domain socketpair.
// Frames are [u32 length][u32 tag][payload]; length covers tag + payload.
//
// Liveness is real here: a SIGKILLed or crashed child closes its socket,
// the controller's poll() sees EOF, and alive() flips — the hard-death
// half of the failure detector. Children heartbeat every
// kHeartbeatInterval while idle so millis_since_heard covers the wedged
// case too.
//
// Fork discipline: children are forked before any request traffic, inherit
// the parent's address space copy-on-write (so a pre-built LsmsSolver is
// usable as-is), never touch OpenMP or in-process thread pools, and leave
// via _exit so no parent-side atexit/static destructors run twice.

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <deque>

#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "comm/communicator.hpp"
#include "common/error.hpp"
#include "common/logging.hpp"

namespace wlsms::comm {

namespace {

using Clock = std::chrono::steady_clock;

// Channel-level control tags, outside the application range.
constexpr std::uint32_t kTagHeartbeat = 0xFFFFFFFEu;
constexpr std::uint32_t kTagShutdown = 0xFFFFFFFFu;

// A frame length beyond this is a protocol violation (corrupt stream), not
// a real message; fail before attempting the allocation.
constexpr std::uint32_t kMaxFrameBytes = 1u << 30;

// Writes exactly `n` bytes, waiting out EAGAIN on non-blocking sockets.
// Returns false on peer death (EPIPE/ECONNRESET) or any other error.
bool write_all(int fd, const void* data, std::size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t wrote = ::send(fd, p, n, MSG_NOSIGNAL);
    if (wrote > 0) {
      p += wrote;
      n -= static_cast<std::size_t>(wrote);
      continue;
    }
    if (wrote < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      struct pollfd pfd{fd, POLLOUT, 0};
      (void)::poll(&pfd, 1, 1000);
      continue;
    }
    if (wrote < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

// Reads exactly `n` bytes from a blocking fd; false on EOF or error.
bool read_all(int fd, void* data, std::size_t n) {
  char* p = static_cast<char*>(data);
  while (n > 0) {
    const ssize_t got = ::read(fd, p, n);
    if (got > 0) {
      p += got;
      n -= static_cast<std::size_t>(got);
      continue;
    }
    if (got < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

std::vector<std::byte> frame_bytes(const Message& message) {
  const std::uint32_t length =
      static_cast<std::uint32_t>(4 + message.payload.size());
  std::vector<std::byte> frame(4 + length);
  auto put_u32 = [&frame](std::size_t at, std::uint32_t v) {
    for (int k = 0; k < 4; ++k)
      frame[at + static_cast<std::size_t>(k)] =
          static_cast<std::byte>((v >> (8 * k)) & 0xFFu);
  };
  put_u32(0, length);
  put_u32(4, message.tag);
  if (!message.payload.empty())
    std::memcpy(frame.data() + 8, message.payload.data(),
                message.payload.size());
  return frame;
}

// ---------------------------------------------------------------------------
// Child side.

class ProcessWorkerChannel final : public WorkerChannel {
 public:
  ProcessWorkerChannel(int fd, std::size_t rank) : fd_(fd), rank_(rank) {}

  std::size_t rank() const override { return rank_; }

  void send(const Message& message) override {
    const std::vector<std::byte> frame = frame_bytes(message);
    (void)write_all(fd_, frame.data(), frame.size());
  }

  std::optional<Message> recv() override {
    while (true) {
      struct pollfd pfd{fd_, POLLIN, 0};
      const int ready = ::poll(
          &pfd, 1, static_cast<int>(kHeartbeatInterval.count()));
      if (ready < 0) {
        if (errno == EINTR) continue;
        return std::nullopt;
      }
      if (ready == 0) {
        // Idle: tell the controller we are still here.
        send(Message{kTagHeartbeat, {}});
        continue;
      }
      std::uint32_t header[2];
      if (!read_all(fd_, header, sizeof(header))) return std::nullopt;
      const std::uint32_t length = header[0];
      if (length < 4 || length > kMaxFrameBytes) return std::nullopt;
      Message message;
      message.tag = header[1];
      message.payload.resize(length - 4);
      if (!message.payload.empty() &&
          !read_all(fd_, message.payload.data(), message.payload.size()))
        return std::nullopt;
      if (message.tag == kTagShutdown) return std::nullopt;
      return message;
    }
  }

 private:
  int fd_;
  std::size_t rank_;
};

// ---------------------------------------------------------------------------
// Controller side.

class ProcessCommunicator final : public Communicator {
 public:
  ProcessCommunicator(std::size_t n_ranks, const WorkerMain& worker_main);
  ~ProcessCommunicator() override { shutdown(); }

  std::size_t n_ranks() const override { return ranks_.size(); }
  bool alive(std::size_t rank) const override {
    WLSMS_EXPECTS(rank < ranks_.size());
    return ranks_[rank].alive;
  }
  bool send(std::size_t rank, const Message& message) override;
  std::optional<Incoming> recv(std::chrono::milliseconds timeout) override;
  std::uint64_t millis_since_heard(std::size_t rank) const override;
  void kill(std::size_t rank) override;
  void shutdown() override;

 private:
  struct Rank {
    int fd = -1;
    pid_t pid = -1;
    bool alive = true;
    bool reaped = false;
    std::vector<std::byte> rxbuf;
    Clock::time_point last_heard = Clock::now();
  };

  void mark_dead(std::size_t rank);
  void reap(std::size_t rank, bool force);
  /// Drains readable bytes of `rank` into its rxbuf and extracts complete
  /// frames into pending_ (heartbeats only refresh last_heard).
  void drain(std::size_t rank);

  std::vector<Rank> ranks_;
  std::deque<Incoming> pending_;
  bool shut_down_ = false;
};

ProcessCommunicator::ProcessCommunicator(std::size_t n_ranks,
                                         const WorkerMain& worker_main) {
  WLSMS_EXPECTS(n_ranks >= 1);
  WLSMS_EXPECTS(worker_main != nullptr);

  // All socketpairs exist before the first fork, so every child can close
  // every descriptor that is not its own.
  std::vector<int> parent_fd(n_ranks, -1), child_fd(n_ranks, -1);
  for (std::size_t r = 0; r < n_ranks; ++r) {
    int fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0)
      throw CommError(std::string("socketpair failed: ") +
                      std::strerror(errno));
    parent_fd[r] = fds[0];
    child_fd[r] = fds[1];
  }

  // Unflushed stdio would be duplicated into every child.
  std::fflush(nullptr);

  ranks_.resize(n_ranks);
  for (std::size_t r = 0; r < n_ranks; ++r) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      for (int fd : parent_fd) ::close(fd);
      for (int fd : child_fd) ::close(fd);
      throw CommError(std::string("fork failed: ") + std::strerror(errno));
    }
    if (pid == 0) {
      // Child: keep only our own endpoint, run the worker, leave quietly.
      for (std::size_t k = 0; k < n_ranks; ++k) {
        if (k != r) ::close(child_fd[k]);
        ::close(parent_fd[k]);
      }
      int status = 0;
      try {
        ProcessWorkerChannel channel(child_fd[r], r);
        worker_main(channel);
      } catch (...) {
        status = 1;
      }
      ::close(child_fd[r]);
      ::_exit(status);
    }
    ranks_[r].fd = parent_fd[r];
    ranks_[r].pid = pid;
  }
  for (int fd : child_fd) ::close(fd);
}

bool ProcessCommunicator::send(std::size_t rank, const Message& message) {
  WLSMS_EXPECTS(rank < ranks_.size());
  Rank& target = ranks_[rank];
  if (!target.alive) return false;
  const std::vector<std::byte> frame = frame_bytes(message);
  if (!write_all(target.fd, frame.data(), frame.size())) {
    mark_dead(rank);
    return false;
  }
  return true;
}

void ProcessCommunicator::drain(std::size_t rank) {
  Rank& source = ranks_[rank];
  char chunk[65536];
  while (true) {
    const ssize_t got = ::recv(source.fd, chunk, sizeof(chunk), MSG_DONTWAIT);
    if (got > 0) {
      source.rxbuf.insert(source.rxbuf.end(),
                          reinterpret_cast<std::byte*>(chunk),
                          reinterpret_cast<std::byte*>(chunk) + got);
      if (got == static_cast<ssize_t>(sizeof(chunk))) continue;
      break;
    }
    if (got < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (got < 0 && errno == EINTR) continue;
    mark_dead(rank);  // EOF or hard error
    break;
  }

  // Extract complete frames.
  std::size_t at = 0;
  auto get_u32 = [&](std::size_t from) {
    std::uint32_t v = 0;
    for (int k = 0; k < 4; ++k)
      v |= static_cast<std::uint32_t>(source.rxbuf[from + k]) << (8 * k);
    return v;
  };
  while (source.rxbuf.size() - at >= 8) {
    const std::uint32_t length = get_u32(at);
    if (length < 4 || length > kMaxFrameBytes) {
      mark_dead(rank);  // corrupt stream; nothing downstream is trustable
      source.rxbuf.clear();
      return;
    }
    if (source.rxbuf.size() - at < 4 + static_cast<std::size_t>(length)) break;
    Message message;
    message.tag = get_u32(at + 4);
    message.payload.assign(source.rxbuf.begin() + at + 8,
                           source.rxbuf.begin() + at + 4 + length);
    at += 4 + static_cast<std::size_t>(length);
    source.last_heard = Clock::now();
    if (message.tag != kTagHeartbeat)
      pending_.push_back({rank, std::move(message)});
  }
  source.rxbuf.erase(source.rxbuf.begin(),
                     source.rxbuf.begin() + static_cast<std::ptrdiff_t>(at));
}

std::optional<Incoming> ProcessCommunicator::recv(
    std::chrono::milliseconds timeout) {
  const Clock::time_point deadline = Clock::now() + timeout;
  while (true) {
    if (!pending_.empty()) {
      Incoming incoming = std::move(pending_.front());
      pending_.pop_front();
      return incoming;
    }
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    if (remaining.count() <= 0) return std::nullopt;

    std::vector<struct pollfd> fds;
    std::vector<std::size_t> fd_rank;
    for (std::size_t r = 0; r < ranks_.size(); ++r) {
      if (!ranks_[r].alive) continue;
      fds.push_back({ranks_[r].fd, POLLIN, 0});
      fd_rank.push_back(r);
    }
    if (fds.empty()) return std::nullopt;  // everyone is dead

    const int ready =
        ::poll(fds.data(), fds.size(), static_cast<int>(remaining.count()));
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw CommError(std::string("poll failed: ") + std::strerror(errno));
    }
    if (ready == 0) return std::nullopt;
    for (std::size_t k = 0; k < fds.size(); ++k)
      if (fds[k].revents & (POLLIN | POLLHUP | POLLERR)) drain(fd_rank[k]);
  }
}

std::uint64_t ProcessCommunicator::millis_since_heard(std::size_t rank) const {
  WLSMS_EXPECTS(rank < ranks_.size());
  if (!ranks_[rank].alive) return ~std::uint64_t{0};
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          Clock::now() - ranks_[rank].last_heard)
          .count());
}

void ProcessCommunicator::mark_dead(std::size_t rank) {
  Rank& target = ranks_[rank];
  if (!target.alive) return;
  target.alive = false;
  if (!shut_down_)
    log_debug("comm: process rank ", rank, " (pid ", target.pid,
              ") endpoint closed; marking dead");
  if (target.fd >= 0) {
    ::close(target.fd);
    target.fd = -1;
  }
}

void ProcessCommunicator::reap(std::size_t rank, bool force) {
  Rank& target = ranks_[rank];
  if (target.reaped || target.pid < 0) return;
  // Closing our end (mark_dead) gives the child EOF; grant it a grace
  // period to finish a task in flight, then force-kill.
  for (int spins = 0; spins < (force ? 1 : 5000); ++spins) {
    const pid_t got = ::waitpid(target.pid, nullptr, WNOHANG);
    if (got == target.pid || (got < 0 && errno == ECHILD)) {
      target.reaped = true;
      return;
    }
    ::usleep(1000);
  }
  ::kill(target.pid, SIGKILL);
  (void)::waitpid(target.pid, nullptr, 0);
  target.reaped = true;
}

void ProcessCommunicator::kill(std::size_t rank) {
  WLSMS_EXPECTS(rank < ranks_.size());
  Rank& target = ranks_[rank];
  if (target.alive)
    log_debug("comm: SIGKILL process rank ", rank, " (pid ", target.pid, ")");
  if (target.pid >= 0 && !target.reaped) {
    ::kill(target.pid, SIGKILL);
    (void)::waitpid(target.pid, nullptr, 0);
    target.reaped = true;
  }
  mark_dead(rank);
}

void ProcessCommunicator::shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  for (std::size_t r = 0; r < ranks_.size(); ++r) mark_dead(r);
  for (std::size_t r = 0; r < ranks_.size(); ++r) reap(r, false);
}

}  // namespace

std::unique_ptr<Communicator> make_process_communicator(
    std::size_t n_ranks, WorkerMain worker_main) {
  return std::make_unique<ProcessCommunicator>(n_ranks, worker_main);
}

}  // namespace wlsms::comm
