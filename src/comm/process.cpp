// Multi-process Communicator: each rank is a fork()ed child of the
// controller process, connected by a SOCK_STREAM UNIX-domain socketpair.
// Frame codec, coalesced controller writes, bounded send deadlines, and
// the poll/drain loop all live in comm/framing; this file owns what is
// genuinely process-shaped — fork discipline, SIGKILL, and reaping.
//
// Liveness is real here: a SIGKILLed or crashed child closes its socket,
// the controller's poll() sees EOF, and alive() flips — the hard-death
// half of the failure detector. Children heartbeat every
// kHeartbeatInterval while idle so millis_since_heard covers the wedged
// case too.
//
// Fork discipline: children are forked before any request traffic, inherit
// the parent's address space copy-on-write (so a pre-built LsmsSolver is
// usable as-is), never touch OpenMP or in-process thread pools, and leave
// via _exit so no parent-side atexit/static destructors run twice.

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>

#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "comm/framing.hpp"
#include "common/error.hpp"
#include "common/logging.hpp"

namespace wlsms::comm {

namespace {

class ProcessCommunicator final : public StreamCommunicatorBase {
 public:
  ProcessCommunicator(std::size_t n_ranks, const WorkerMain& worker_main,
                      const StreamOptions& options);
  ~ProcessCommunicator() override { shutdown(); }

  void kill(std::size_t rank) override;
  void shutdown() override;

 private:
  std::vector<pid_t> pids_;  ///< -1 once reaped
};

ProcessCommunicator::ProcessCommunicator(std::size_t n_ranks,
                                         const WorkerMain& worker_main,
                                         const StreamOptions& options)
    : StreamCommunicatorBase(options) {
  WLSMS_EXPECTS(n_ranks >= 1);
  WLSMS_EXPECTS(worker_main != nullptr);

  // All socketpairs exist before the first fork, so every child can close
  // every descriptor that is not its own.
  std::vector<int> parent_fd(n_ranks, -1), child_fd(n_ranks, -1);
  for (std::size_t r = 0; r < n_ranks; ++r) {
    int fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0)
      throw CommError(std::string("socketpair failed: ") +
                      std::strerror(errno));
    parent_fd[r] = fds[0];
    child_fd[r] = fds[1];
  }

  // Unflushed stdio would be duplicated into every child.
  std::fflush(nullptr);

  pids_.assign(n_ranks, -1);
  for (std::size_t r = 0; r < n_ranks; ++r) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      for (int fd : parent_fd) ::close(fd);
      for (int fd : child_fd) ::close(fd);
      throw CommError(std::string("fork failed: ") + std::strerror(errno));
    }
    if (pid == 0) {
      // Child: keep only our own endpoint, run the worker, leave quietly.
      for (std::size_t k = 0; k < n_ranks; ++k) {
        if (k != r) ::close(child_fd[k]);
        ::close(parent_fd[k]);
      }
      int status = 0;
      try {
        StreamWorkerChannel channel(child_fd[r], r);
        worker_main(channel);
      } catch (...) {
        status = 1;
      }
      ::close(child_fd[r]);
      ::_exit(status);
    }
    add_peer(parent_fd[r]);
    pids_[r] = pid;
  }
  for (int fd : child_fd) ::close(fd);
}

void ProcessCommunicator::kill(std::size_t rank) {
  WLSMS_EXPECTS(rank < n_ranks());
  if (alive(rank))
    log_debug("comm: SIGKILL process rank ", rank, " (pid ", pids_[rank], ")");
  if (pids_[rank] >= 0) {
    ::kill(pids_[rank], SIGKILL);
    (void)::waitpid(pids_[rank], nullptr, 0);
    pids_[rank] = -1;
  }
  mark_dead(rank);
}

void ProcessCommunicator::shutdown() {
  if (shutting_down()) return;
  begin_shutdown();
  // Closing our ends gives every child EOF at once; they share ONE grace
  // period to finish a task in flight, then stragglers are SIGKILLed
  // together — teardown is O(grace), not O(ranks * grace).
  close_all_peers();
  reap_children(pids_, stream_options().shutdown_grace);
}

}  // namespace

std::unique_ptr<Communicator> make_process_communicator(
    std::size_t n_ranks, WorkerMain worker_main) {
  return make_process_communicator(n_ranks, std::move(worker_main),
                                   StreamOptions{});
}

std::unique_ptr<Communicator> make_process_communicator(
    std::size_t n_ranks, WorkerMain worker_main,
    const StreamOptions& options) {
  return std::make_unique<ProcessCommunicator>(n_ranks, worker_main, options);
}

}  // namespace wlsms::comm
