#pragma once

/// \file distributed_service.hpp
/// The paper's two-level decomposition made real: an EnergyService whose
/// evaluations are sharded across the worker ranks of M LSMS groups of N
/// ranks each ("one atom per processor", §II-C / Fig. 3), over either
/// communicator transport — threads for the sanitizer suites, fork()ed
/// processes for genuine multi-process evaluation.
///
/// One submitted configuration occupies one group: the controller scatters
/// contiguous atom shards (full configurations the first time a rank sees
/// a walker, moved-site deltas afterwards — the t-matrix-update scatter),
/// the ranks run the per-atom LIZ solves serially, and the controller
/// gathers the per-atom energies and sums them in atom order, making the
/// distributed total bit-identical to LsmsSolver::energies.
///
/// Resilience (paper §V): rank death — socket EOF, a killed thread, or a
/// heartbeat older than `heartbeat_timeout` while work is assigned — is
/// detected inside retrieve(), the victim's group re-scatters the affected
/// request over its surviving ranks (or the request migrates to another
/// group), and outstanding() never miscounts. Stale gathers from the
/// aborted scatter are discarded by attempt number. Only when every rank
/// of every group is gone does retrieve() throw.

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "comm/communicator.hpp"
#include "lsms/solver.hpp"
#include "wl/energy_service.hpp"

namespace wlsms::comm {

/// Group topology and failure-detection knobs.
struct DistributedConfig {
  std::size_t n_groups = 1;    ///< M independent LSMS groups
  std::size_t group_size = 1;  ///< N worker ranks per group
  Transport transport = Transport::kInProcess;
  /// Controller poll granularity inside retrieve().
  std::chrono::milliseconds poll_interval{20};
  /// A rank with assigned work unheard-from for longer than this is
  /// declared dead and its work rerouted. Must comfortably exceed the
  /// worst-case single-shard solve time (workers cannot heartbeat while
  /// computing).
  std::chrono::milliseconds heartbeat_timeout{5000};
  /// Listener/handshake/coalescing knobs, used only when `transport` is
  /// kTcp. With `tcp.spawn_workers` false the workers are external
  /// processes started by the operator (`wlsms worker --connect`), running
  /// run_shard_worker over their own solver build.
  TcpOptions tcp;
};

/// The worker-rank protocol loop of DistributedEnergyService: caches the
/// last configuration per (session, walker) (the basis delta scatters apply
/// to, dropped again on a ShardEvict when that session ends), runs the
/// serial per-atom shard solves of `solver`, and replies with gathers.
/// Returns when the channel reports shutdown/EOF; throws on a malformed
/// request (a throwing worker is a dying worker — the controller reroutes).
/// Exposed so external TCP workers (`wlsms worker`) run the identical loop
/// the controller forks locally.
void run_shard_worker(WorkerChannel& channel,
                      std::shared_ptr<const lsms::LsmsSolver> solver);

/// Group-sharded, transport-agnostic, fault-tolerant energy service.
class DistributedEnergyService final : public wl::EnergyService {
 public:
  /// Workers run per-atom zone solves of `solver`. With the process
  /// transport the solver must be fully constructed before this call (the
  /// children inherit it copy-on-write) and linalg GEMM threading must be
  /// off (the default) — see communicator.hpp fork discipline.
  DistributedEnergyService(std::shared_ptr<const lsms::LsmsSolver> solver,
                           DistributedConfig config);
  ~DistributedEnergyService() override;

  void submit(wl::EnergyRequest request) override;
  wl::EnergyResult retrieve() override;
  std::size_t outstanding() const override { return outstanding_; }

  /// Drops every (session, walker) delta-cache entry of `session`, on the
  /// controller and on every alive worker rank. Multiplexers serving many
  /// short-lived tenant sessions over one service call this when a session
  /// ends, so the caches cannot grow without bound under session churn; a
  /// reused (session, walker) key simply scatters full again.
  void evict_session(std::uint64_t session);

  /// Controller-side delta-cache entries summed over ranks (for tests and
  /// capacity monitoring).
  std::size_t delta_cache_entries() const;

  /// Requests re-scattered after a detected worker death.
  std::uint64_t reroutes() const { return reroutes_; }
  std::size_t n_workers() const { return comm_->n_ranks(); }
  std::size_t n_alive_workers() const { return comm_->n_alive(); }

  /// The underlying transport — exposed so resilience tests and harnesses
  /// can kill ranks out from under the service.
  Communicator& communicator() { return *comm_; }

 private:
  /// One rank's slice of the current scatter.
  struct Assignment {
    std::size_t rank = 0;
    std::size_t first = 0;  ///< the rank solves atoms [first, first+count)
    std::size_t count = 0;
  };

  struct Group {
    std::vector<std::size_t> ranks;  ///< global rank ids of this group
    bool busy = false;
    wl::EnergyRequest request;            ///< in-flight request
    std::uint32_t attempt = 0;            ///< current scatter generation
    std::vector<Assignment> assigned;     ///< shards of the current scatter
    std::vector<double> per_atom;         ///< gathered e_i
    std::vector<std::uint8_t> have_atom;  ///< gather bitmap
    std::size_t missing = 0;              ///< atoms not yet gathered
  };

  /// Scatters `request` over group `g`'s alive ranks. Returns false (group
  /// untouched further) if the group has no alive ranks left.
  bool dispatch(std::size_t g, const wl::EnergyRequest& request);
  /// Finds an idle group with alive ranks; npos if none.
  std::size_t idle_group() const;
  /// Dispatches waiting requests onto idle groups.
  void pump_waiting();
  /// Handles one gathered shard result message.
  void on_shard_result(std::size_t rank, const std::vector<std::byte>& payload);
  /// Death and heartbeat-timeout sweep over busy groups; reroutes work.
  void check_health();
  /// Reacts to the death of `rank`: forgets its delta cache and, if its
  /// group had work in flight, re-scatters that work.
  void on_rank_death(std::size_t rank);

  std::shared_ptr<const lsms::LsmsSolver> solver_;
  DistributedConfig config_;
  std::unique_ptr<Communicator> comm_;
  std::vector<Group> groups_;
  std::vector<std::size_t> rank_group_;  ///< rank id -> group index

  /// Delta-cache key: one tenant-session's walker. The serving daemon
  /// multiplexes many sessions over one service, so walker id alone would
  /// alias two tenants' configurations and corrupt the delta basis.
  using ConfigKey = std::pair<std::uint64_t, std::uint64_t>;

  /// Per-rank, per-(session, walker) directions last successfully sent:
  /// the basis the moved-site delta scatter is encoded against.
  std::vector<std::map<ConfigKey, std::vector<Vec3>>> sent_;

  /// Per-rank flag: this rank's death was already counted in the
  /// comm.rank_deaths metric (on_rank_death can fire more than once for
  /// one rank — observed death, then heartbeat sweep).
  std::vector<std::uint8_t> death_counted_;

  std::deque<wl::EnergyRequest> waiting_;  ///< submitted, no free group yet
  std::deque<wl::EnergyResult> done_;      ///< completed, not yet retrieved
  std::size_t outstanding_ = 0;
  std::uint32_t next_attempt_ = 1;
  std::uint64_t reroutes_ = 0;
};

}  // namespace wlsms::comm
