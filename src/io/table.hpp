#pragma once

/// \file table.hpp
/// Aligned plain-text tables for the benchmark harness output (the rows of
/// the paper's Tables I/II and the series behind its figures are printed in
/// this format).

#include <string>
#include <vector>

namespace wlsms::io {

/// Builds an aligned text table column by column.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Appends a row of preformatted cells; must match the header width.
  void row(std::vector<std::string> cells);

  /// Renders with right-aligned columns separated by two spaces, including
  /// a header underline.
  std::string render() const;

  /// Convenience: renders and writes to stdout.
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style float formatting helper for table cells.
std::string format_double(double value, int precision = 3);

/// Engineering-style formatting: 1.03e+15 -> "1.03 PFlop/s"-like strings
/// for flop rates.
std::string format_flops(double flops_per_second);

}  // namespace wlsms::io
