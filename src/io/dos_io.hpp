#pragma once

/// \file dos_io.hpp
/// Persistence for densities of states: the converged ln g(E) of a
/// production run is the expensive artifact (paper Table I: millions of
/// core-hours), while every thermodynamic quantity derived from it is
/// essentially free (eqs. 12-16). Saving the table lets the analysis be
/// redone — new temperature grids, new observables — without resampling.
/// Format: the same two-column CSV the bench harness emits, so saved and
/// benchmark outputs are interchangeable.

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "thermo/observables.hpp"

namespace wlsms::io {

/// Thrown on malformed or unreadable DOS files.
class DosIoError : public std::runtime_error {
 public:
  explicit DosIoError(const std::string& what) : std::runtime_error(what) {}
};

/// Writes `table` as CSV with an `energy_ry,ln_g` header.
void write_dos(std::ostream& out, const thermo::DosTable& table);

/// Parses a DOS CSV; throws DosIoError on malformed input (bad header,
/// non-numeric fields, unsorted energies).
thermo::DosTable read_dos(std::istream& in);

/// File-based convenience wrappers.
void save_dos(const std::string& path, const thermo::DosTable& table);
thermo::DosTable load_dos(const std::string& path);

}  // namespace wlsms::io
