#include "io/dos_io.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace wlsms::io {

namespace {
constexpr const char* kHeader = "energy_ry,ln_g";
}

void write_dos(std::ostream& out, const thermo::DosTable& table) {
  WLSMS_EXPECTS(table.energy.size() == table.ln_g.size());
  out.precision(17);
  out << kHeader << '\n';
  for (std::size_t i = 0; i < table.energy.size(); ++i)
    out << table.energy[i] << ',' << table.ln_g[i] << '\n';
}

thermo::DosTable read_dos(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line != kHeader)
    throw DosIoError("bad or missing header: expected '" +
                     std::string(kHeader) + "'");

  thermo::DosTable table;
  std::size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    const std::size_t comma = line.find(',');
    if (comma == std::string::npos)
      throw DosIoError("line " + std::to_string(line_number) + ": no comma");
    try {
      std::size_t used = 0;
      const double e = std::stod(line.substr(0, comma), &used);
      const double g = std::stod(line.substr(comma + 1), &used);
      if (!table.energy.empty() && e <= table.energy.back())
        throw DosIoError("line " + std::to_string(line_number) +
                         ": energies must be strictly increasing");
      table.energy.push_back(e);
      table.ln_g.push_back(g);
    } catch (const std::invalid_argument&) {
      throw DosIoError("line " + std::to_string(line_number) +
                       ": non-numeric field");
    } catch (const std::out_of_range&) {
      throw DosIoError("line " + std::to_string(line_number) +
                       ": value out of range");
    }
  }
  if (table.energy.empty()) throw DosIoError("no data rows");
  return table;
}

void save_dos(const std::string& path, const thermo::DosTable& table) {
  std::ofstream out(path);
  if (!out.good()) throw DosIoError("cannot open for write: " + path);
  write_dos(out, table);
  if (!out.good()) throw DosIoError("write failed: " + path);
}

thermo::DosTable load_dos(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) throw DosIoError("cannot open for read: " + path);
  return read_dos(in);
}

}  // namespace wlsms::io
