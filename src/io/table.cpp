#include "io/table.hpp"

#include <algorithm>
#include <cstdio>

#include "common/error.hpp"

namespace wlsms::io {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  WLSMS_EXPECTS(!headers_.empty());
}

void TextTable::row(std::vector<std::string> cells) {
  WLSMS_EXPECTS(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::string out;
  const auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) out += "  ";
      out.append(widths[c] - cells[c].size(), ' ');
      out += cells[c];
    }
    out += '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c)
    total += widths[c] + (c ? 2 : 0);
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) emit_row(row);
  return out;
}

void TextTable::print() const { std::fputs(render().c_str(), stdout); }

std::string format_double(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", precision, value);
  return buffer;
}

std::string format_flops(double flops_per_second) {
  char buffer[64];
  if (flops_per_second >= 1e15) {
    std::snprintf(buffer, sizeof buffer, "%.3f PFlop/s",
                  flops_per_second / 1e15);
  } else if (flops_per_second >= 1e12) {
    std::snprintf(buffer, sizeof buffer, "%.1f TFlop/s",
                  flops_per_second / 1e12);
  } else if (flops_per_second >= 1e9) {
    std::snprintf(buffer, sizeof buffer, "%.2f GFlop/s",
                  flops_per_second / 1e9);
  } else {
    std::snprintf(buffer, sizeof buffer, "%.2f MFlop/s",
                  flops_per_second / 1e6);
  }
  return buffer;
}

}  // namespace wlsms::io
