#pragma once

/// \file csv.hpp
/// Minimal CSV emission for benchmark series (the data behind each figure
/// is written next to the printed table so it can be re-plotted).

#include <fstream>
#include <string>
#include <vector>

namespace wlsms::io {

/// Streams rows of doubles with a header line to a file.
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header. Throws std::runtime_error
  /// on failure.
  CsvWriter(const std::string& path, const std::vector<std::string>& columns);

  /// Writes one row; must match the header width.
  void row(const std::vector<double>& values);

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::ofstream out_;
  std::size_t columns_;
};

}  // namespace wlsms::io
