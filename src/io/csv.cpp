#include "io/csv.hpp"

#include <stdexcept>

#include "common/error.hpp"

namespace wlsms::io {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& columns)
    : path_(path), out_(path), columns_(columns.size()) {
  WLSMS_EXPECTS(!columns.empty());
  if (!out_.good())
    throw std::runtime_error("CsvWriter: cannot open " + path);
  out_.precision(12);
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i) out_ << ',';
    out_ << columns[i];
  }
  out_ << '\n';
}

void CsvWriter::row(const std::vector<double>& values) {
  WLSMS_EXPECTS(values.size() == columns_);
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out_ << ',';
    out_ << values[i];
  }
  out_ << '\n';
  if (!out_.good()) throw std::runtime_error("CsvWriter: write failed " + path_);
}

}  // namespace wlsms::io
