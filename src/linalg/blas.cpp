#include "linalg/blas.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "perf/flops.hpp"

namespace wlsms::linalg {

namespace {

// Pool-granularity telemetry only: one bookkeeping touch per run() and one
// per worker wake-up. The microkernel and packing loops stay uninstrumented
// (flop accounting already happens once per zgemm call via perf::add_flops).
struct GemmPoolMetrics {
  obs::Counter& pool_runs;
  obs::Counter& pool_tasks;
  obs::Gauge& queue_depth;
  obs::Histogram& task_wait_us;
};

GemmPoolMetrics& gemm_pool_metrics() {
  static GemmPoolMetrics metrics{
      obs::Registry::instance().counter("gemm.pool_runs"),
      obs::Registry::instance().counter("gemm.pool_tasks"),
      obs::Registry::instance().gauge("gemm.pool_queue_depth"),
      obs::Registry::instance().histogram(
          "gemm.task_wait_us",
          {1.0, 3.0, 10.0, 30.0, 100.0, 300.0, 1000.0, 3000.0, 10000.0}),
  };
  return metrics;
}

// ---------------------------------------------------------------------------
// Blocking parameters.
//
// The LIZ matrices the solver produces are ~30-300 square, so one K block
// (kKC) and one M block (kMC) usually cover the whole matrix; the loop
// structure still handles arbitrary sizes. A packed A block is
// kMC x kKC x 2 planes x 8 B = 384 KiB and a packed B block at n = 256 is
// 768 KiB, sized for present-day L2/L3.
constexpr std::size_t kMC = 128;
constexpr std::size_t kKC = 192;
constexpr std::size_t kNC = 512;

constexpr std::size_t kMR = kGemmMR;
constexpr std::size_t kNR = kGemmNR;

// Products below this flop count skip packing entirely; the tiled naive
// kernel wins on tiny shapes (the 2 x k x 2 Schur products, GEMV-like
// slivers).
constexpr std::size_t kPackThresholdFlops = 16 * 1024;

// ---------------------------------------------------------------------------
// Minimal persistent worker pool for the optional M-panel parallelism.
// Default thread count is 1, in which case the pool is never created.

class GemmPool {
 public:
  static GemmPool& instance() {
    static GemmPool pool;
    return pool;
  }

  // Runs fn(0) .. fn(n_tasks - 1); the calling thread executes task 0 and
  // the pool threads claim the rest. Serializes concurrent callers.
  void run(std::size_t n_tasks, const std::function<void(std::size_t)>& fn) {
    std::lock_guard<std::mutex> serial(run_mutex_);
    GemmPoolMetrics& metrics = gemm_pool_metrics();
    metrics.pool_runs.inc();
    metrics.pool_tasks.add(n_tasks);
    metrics.queue_depth.set(static_cast<double>(n_tasks - 1));
    ensure_workers(n_tasks - 1);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      job_ = &fn;
      next_task_ = 1;
      n_tasks_ = n_tasks;
      remaining_ = n_tasks - 1;
      run_start_ = std::chrono::steady_clock::now();
      ++generation_;
    }
    wake_.notify_all();
    fn(0);
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [this] { return remaining_ == 0; });
    job_ = nullptr;
    metrics.queue_depth.set(0.0);
  }

 private:
  GemmPool() = default;

  ~GemmPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  void ensure_workers(std::size_t n) {
    std::lock_guard<std::mutex> lock(mutex_);
    while (workers_.size() < n)
      workers_.emplace_back([this] { worker_loop(); });
  }

  void worker_loop() {
    std::uint64_t seen_generation = 0;
    for (;;) {
      const std::function<void(std::size_t)>* job = nullptr;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_.wait(lock, [&] {
          return stopping_ || generation_ != seen_generation;
        });
        if (stopping_) return;
        seen_generation = generation_;
        job = job_;
      }
      // job_ is nulled between runs; a worker that woke after the run it
      // was signalled for already drained has nothing to do.
      if (job == nullptr) continue;
      // Claim tasks under the mutex, re-checking the generation on every
      // claim: a worker preempted here while its run completes and a new
      // run() installs fresh state must never claim the new run's tasks
      // with the old (now dangling) job pointer, nor decrement the new
      // run's remaining_. Tasks are whole GEMM row-panel chunks, so the
      // per-claim lock is noise next to the work it hands out.
      std::size_t executed = 0;
      for (;;) {
        std::size_t t;
        std::chrono::steady_clock::time_point started{};
        {
          std::lock_guard<std::mutex> lock(mutex_);
          if (generation_ != seen_generation || next_task_ >= n_tasks_) break;
          t = next_task_++;
          started = run_start_;
        }
        if (executed == 0) {
          // Dispatch latency of this worker's first claim: notify-to-claim,
          // one histogram touch per worker per run.
          gemm_pool_metrics().task_wait_us.observe(
              std::chrono::duration<double, std::micro>(
                  std::chrono::steady_clock::now() - started)
                  .count());
        }
        (*job)(t);
        ++executed;
      }
      // Every claimed task belongs to seen_generation, and run() cannot
      // return (so the next run cannot start) until each one is accounted
      // here — remaining_ still belongs to this generation.
      if (executed > 0) {
        std::lock_guard<std::mutex> lock(mutex_);
        remaining_ -= executed;
        if (remaining_ == 0) done_.notify_all();
      }
    }
  }

  std::mutex run_mutex_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  std::vector<std::thread> workers_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t next_task_ = 0;
  std::size_t n_tasks_ = 0;
  std::size_t remaining_ = 0;
  std::uint64_t generation_ = 0;
  std::chrono::steady_clock::time_point run_start_{};
  bool stopping_ = false;
};

std::atomic<std::size_t> g_gemm_threads{1};

// ---------------------------------------------------------------------------
// Packing. A and B panels are deinterleaved into separate real and
// imaginary planes so the microkernel is pure real FMA arithmetic (four
// real products per complex product), which auto-vectorizes cleanly.
//
// A (mc x kc slice, column-major, lda): packed as ceil(mc/MR) row panels;
// within a panel the layout is k-major, ap[(k*MR + i)], zero-padded to MR.
// B (kc x nc slice, column-major, ldb): packed as ceil(nc/NR) column
// panels, k-major, bp[(k*NR + j)], zero-padded to NR.

void pack_a(std::size_t mc, std::size_t kc, const Complex* a, std::size_t lda,
            double* ar, double* ai) {
  for (std::size_t i0 = 0; i0 < mc; i0 += kMR) {
    const std::size_t mr = std::min(kMR, mc - i0);
    double* pr = ar + i0 * kc;
    double* pi = ai + i0 * kc;
    for (std::size_t k = 0; k < kc; ++k) {
      const Complex* col = a + k * lda + i0;
      std::size_t i = 0;
      for (; i < mr; ++i) {
        pr[k * kMR + i] = col[i].real();
        pi[k * kMR + i] = col[i].imag();
      }
      for (; i < kMR; ++i) {
        pr[k * kMR + i] = 0.0;
        pi[k * kMR + i] = 0.0;
      }
    }
  }
}

void pack_b(std::size_t kc, std::size_t nc, const Complex* b, std::size_t ldb,
            double* br, double* bi) {
  for (std::size_t j0 = 0; j0 < nc; j0 += kNR) {
    const std::size_t nr = std::min(kNR, nc - j0);
    double* pr = br + j0 * kc;
    double* pi = bi + j0 * kc;
    for (std::size_t k = 0; k < kc; ++k) {
      std::size_t j = 0;
      for (; j < nr; ++j) {
        const Complex v = b[(j0 + j) * ldb + k];
        pr[k * kNR + j] = v.real();
        pi[k * kNR + j] = v.imag();
      }
      for (; j < kNR; ++j) {
        pr[k * kNR + j] = 0.0;
        pi[k * kNR + j] = 0.0;
      }
    }
  }
}

// MR x NR register tile accumulated over a full K block, writing the
// result into the accr/acci scratch tiles ([j * kMR + i] layout).
//
// The production variant uses GCC/Clang vector extensions with the vector
// width pinned to the ISA instead of relying on the auto-vectorizer (which
// loses the pattern once the kernel is inlined into the panel sweep). Each
// complex product is four independent real FMA streams: the four partial
// sums (ar*br, ai*bi, ar*bi, ai*br) accumulate separately and combine only
// at writeback, so every FMA starts a fresh dependency chain and the tile
// sustains the FMA ports instead of waiting on add latency. With AVX-512
// the 8x4 tile needs 16 of the 32 vector registers for accumulators.
#if defined(__GNUC__) && (defined(__AVX512F__) || defined(__AVX2__))

#if defined(__AVX512F__)
constexpr std::size_t kVec = 8;  // doubles per vector register
#else
constexpr std::size_t kVec = 4;
#endif
static_assert(kMR % kVec == 0, "MR must be a whole number of vectors");
constexpr std::size_t kMV = kMR / kVec;
typedef double Vd __attribute__((vector_size(kVec * sizeof(double))));

inline Vd load_vd(const double* p) {
  Vd v;
  __builtin_memcpy(&v, p, sizeof(Vd));
  return v;
}

void micro_kernel(std::size_t kc, const double* __restrict ar,
                  const double* __restrict ai, const double* __restrict br,
                  const double* __restrict bi, double* __restrict accr,
                  double* __restrict acci) {
  Vd crp[kNR][kMV] = {}, crm[kNR][kMV] = {};
  Vd cip[kNR][kMV] = {}, cim[kNR][kMV] = {};
  for (std::size_t k = 0; k < kc; ++k) {
    Vd arv[kMV], aiv[kMV];
    for (std::size_t v = 0; v < kMV; ++v) {
      arv[v] = load_vd(ar + k * kMR + v * kVec);
      aiv[v] = load_vd(ai + k * kMR + v * kVec);
    }
    for (std::size_t j = 0; j < kNR; ++j) {
      const double brj = br[k * kNR + j];
      const double bij = bi[k * kNR + j];
      for (std::size_t v = 0; v < kMV; ++v) {
        crp[j][v] += arv[v] * brj;
        crm[j][v] += aiv[v] * bij;
        cip[j][v] += arv[v] * bij;
        cim[j][v] += aiv[v] * brj;
      }
    }
  }
  for (std::size_t j = 0; j < kNR; ++j)
    for (std::size_t v = 0; v < kMV; ++v) {
      const Vd cr = crp[j][v] - crm[j][v];
      const Vd ci = cip[j][v] + cim[j][v];
      __builtin_memcpy(accr + j * kMR + v * kVec, &cr, sizeof(Vd));
      __builtin_memcpy(acci + j * kMR + v * kVec, &ci, sizeof(Vd));
    }
}

#else  // portable scalar fallback

void micro_kernel(std::size_t kc, const double* __restrict ar,
                  const double* __restrict ai, const double* __restrict br,
                  const double* __restrict bi, double* __restrict accr,
                  double* __restrict acci) {
  double cr[kNR][kMR] = {};
  double ci[kNR][kMR] = {};
  for (std::size_t k = 0; k < kc; ++k) {
    const double* __restrict a_r = ar + k * kMR;
    const double* __restrict a_i = ai + k * kMR;
    const double* __restrict b_r = br + k * kNR;
    const double* __restrict b_i = bi + k * kNR;
    for (std::size_t j = 0; j < kNR; ++j) {
      const double brj = b_r[j];
      const double bij = b_i[j];
      for (std::size_t i = 0; i < kMR; ++i) {
        cr[j][i] += a_r[i] * brj - a_i[i] * bij;
        ci[j][i] += a_r[i] * bij + a_i[i] * brj;
      }
    }
  }
  for (std::size_t j = 0; j < kNR; ++j)
    for (std::size_t i = 0; i < kMR; ++i) {
      accr[j * kMR + i] = cr[j][i];
      acci[j * kMR + i] = ci[j][i];
    }
}

#endif

// Writes one micro tile into C: C(i0.., j0..) += alpha * (accr + i*acci).
void write_tile(std::size_t mr, std::size_t nr, Complex alpha,
                const double* accr, const double* acci, Complex* c,
                std::size_t ldc) {
  const double alr = alpha.real();
  const double ali = alpha.imag();
  for (std::size_t j = 0; j < nr; ++j) {
    Complex* cj = c + j * ldc;
    for (std::size_t i = 0; i < mr; ++i) {
      const double tr = accr[j * kMR + i];
      const double ti = acci[j * kMR + i];
      cj[i] += Complex{alr * tr - ali * ti, alr * ti + ali * tr};
    }
  }
}

// Per-thread packing buffers, grown on demand and reused across calls so
// the hot path performs no allocation in steady state.
struct PackBuffers {
  std::vector<double> ar, ai, br, bi;
  void reserve_a(std::size_t n) {
    if (ar.size() < n) {
      ar.resize(n);
      ai.resize(n);
    }
  }
  void reserve_b(std::size_t n) {
    if (br.size() < n) {
      br.resize(n);
      bi.resize(n);
    }
  }
};

thread_local PackBuffers tl_buffers;

// Computes the packed product for rows [m0, m1) of the current (pc, jc)
// block: packs the A slice into this thread's buffer and sweeps the
// microkernel over it. B is already packed by the caller.
void gemm_rows(std::size_t m0, std::size_t m1, std::size_t kc,
               std::size_t nc, Complex alpha, const Complex* a,
               std::size_t lda, const double* br, const double* bi,
               Complex* c, std::size_t ldc) {
  PackBuffers& buf = tl_buffers;
  for (std::size_t ic = m0; ic < m1; ic += kMC) {
    const std::size_t mc = std::min(kMC, m1 - ic);
    const std::size_t mc_padded = (mc + kMR - 1) / kMR * kMR;
    buf.reserve_a(mc_padded * kc);
    pack_a(mc, kc, a + ic, lda, buf.ar.data(), buf.ai.data());
    double accr[kMR * kNR];
    double acci[kMR * kNR];
    for (std::size_t jr = 0; jr < nc; jr += kNR) {
      const std::size_t nr = std::min(kNR, nc - jr);
      const double* bpr = br + jr * kc;
      const double* bpi = bi + jr * kc;
      for (std::size_t ir = 0; ir < mc; ir += kMR) {
        const std::size_t mr = std::min(kMR, mc - ir);
        micro_kernel(kc, buf.ar.data() + ir * kc, buf.ai.data() + ir * kc,
                     bpr, bpi, accr, acci);
        write_tile(mr, nr, alpha, accr, acci, c + jr * ldc + ic + ir, ldc);
      }
    }
  }
}

void scale_c(std::size_t m, std::size_t n, Complex beta, Complex* c,
             std::size_t ldc) {
  if (beta == Complex{1.0, 0.0}) return;
  if (beta == Complex{0.0, 0.0}) {
    // Overwrite semantics: never read C, so NaN/Inf in an uninitialized
    // output buffer cannot propagate.
    for (std::size_t j = 0; j < n; ++j)
      std::fill_n(c + j * ldc, m, Complex{0.0, 0.0});
    return;
  }
  for (std::size_t j = 0; j < n; ++j) {
    Complex* cj = c + j * ldc;
    for (std::size_t i = 0; i < m; ++i) cj[i] *= beta;
  }
}

// The original cache-tiled j-k-i kernel, operating on views.
void gemm_naive_view(std::size_t m, std::size_t n, std::size_t k,
                     Complex alpha, const Complex* a, std::size_t lda,
                     const Complex* b, std::size_t ldb, Complex* c,
                     std::size_t ldc) {
  constexpr std::size_t kTileK = 64;
  constexpr std::size_t kTileJ = 64;
  for (std::size_t j0 = 0; j0 < n; j0 += kTileJ) {
    const std::size_t j1 = std::min(j0 + kTileJ, n);
    for (std::size_t k0 = 0; k0 < k; k0 += kTileK) {
      const std::size_t k1 = std::min(k0 + kTileK, k);
      for (std::size_t j = j0; j < j1; ++j) {
        Complex* cj = c + j * ldc;
        const Complex* bj = b + j * ldb;
        for (std::size_t kk = k0; kk < k1; ++kk) {
          const Complex factor = alpha * bj[kk];
          if (factor == Complex{0.0, 0.0}) continue;
          const Complex* ak = a + kk * lda;
          for (std::size_t i = 0; i < m; ++i) cj[i] += factor * ak[i];
        }
      }
    }
  }
}

void gemm_packed_view(std::size_t m, std::size_t n, std::size_t k,
                      Complex alpha, const Complex* a, std::size_t lda,
                      const Complex* b, std::size_t ldb, Complex* c,
                      std::size_t ldc, std::size_t threads) {
  for (std::size_t jc = 0; jc < n; jc += kNC) {
    const std::size_t nc = std::min(kNC, n - jc);
    const std::size_t nc_padded = (nc + kNR - 1) / kNR * kNR;
    for (std::size_t pc = 0; pc < k; pc += kKC) {
      const std::size_t kc = std::min(kKC, k - pc);
      PackBuffers& buf = tl_buffers;
      buf.reserve_b(nc_padded * kc);
      pack_b(kc, nc, b + jc * ldb + pc, ldb, buf.br.data(), buf.bi.data());
      const Complex* a_slice = a + pc * lda;
      Complex* c_slice = c + jc * ldc;
      // Spread M over the pool only when each worker gets a few full row
      // panels; otherwise the fork/join overhead dominates.
      const std::size_t n_chunks =
          std::min(threads, m / (4 * kMR) + 1);
      if (n_chunks <= 1) {
        gemm_rows(0, m, kc, nc, alpha, a_slice, lda, buf.br.data(),
                  buf.bi.data(), c_slice, ldc);
      } else {
        const double* br_shared = buf.br.data();
        const double* bi_shared = buf.bi.data();
        // Chunk boundaries aligned to MR so tiles never straddle workers.
        const std::size_t panels = (m + kMR - 1) / kMR;
        const std::size_t per_chunk = (panels + n_chunks - 1) / n_chunks;
        auto task = [&](std::size_t t) {
          const std::size_t p0 = t * per_chunk;
          const std::size_t p1 = std::min(panels, p0 + per_chunk);
          if (p0 >= p1) return;
          gemm_rows(p0 * kMR, std::min(m, p1 * kMR), kc, nc, alpha, a_slice,
                    lda, br_shared, bi_shared, c_slice, ldc);
        };
        GemmPool::instance().run(n_chunks, task);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Batched dispatch: many independent products per call (the serving
// scheduler's cross-walker coalescing path).

std::atomic<std::size_t> g_gemm_batch_threads{1};

struct GemmBatchMetrics {
  obs::Counter& dispatches;
  obs::Counter& items;
  obs::Histogram& occupancy;
};

GemmBatchMetrics& gemm_batch_metrics() {
  static GemmBatchMetrics metrics{
      obs::Registry::instance().counter("linalg.batch_dispatches"),
      obs::Registry::instance().counter("linalg.batch_items"),
      obs::Registry::instance().histogram(
          "linalg.batch_occupancy",
          {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0}),
  };
  return metrics;
}

// One batch item, exact zgemm_view arithmetic minus the flop booking (the
// batch entry point books every item on the calling thread — pool workers
// park flops in thread-local tallies that drain too late for the windows
// single-threaded callers measure with). The inner kernel is forced serial
// so items running ON pool workers never re-enter the pool.
void run_batch_item(const ZgemmBatchItem& it) {
  scale_c(it.m, it.n, it.beta, it.c, it.ldc);
  if (it.m != 0 && it.n != 0 && it.k != 0 && it.alpha != Complex{0.0, 0.0}) {
    if (8 * it.m * it.n * it.k < kPackThresholdFlops)
      gemm_naive_view(it.m, it.n, it.k, it.alpha, it.a, it.lda, it.b, it.ldb,
                      it.c, it.ldc);
    else
      gemm_packed_view(it.m, it.n, it.k, it.alpha, it.a, it.lda, it.b,
                       it.ldb, it.c, it.ldc, 1);
  }
}

}  // namespace

void zgemm_view_batch(const ZgemmBatchItem* items, std::size_t count) {
  if (count == 0) return;
  GemmBatchMetrics& metrics = gemm_batch_metrics();
  metrics.dispatches.inc();
  metrics.items.add(count);
  metrics.occupancy.observe(static_cast<double>(count));

  const std::size_t threads =
      g_gemm_batch_threads.load(std::memory_order_relaxed);
  const std::size_t n_chunks = std::min(threads, count);
  if (n_chunks <= 1) {
    for (std::size_t i = 0; i < count; ++i) run_batch_item(items[i]);
  } else {
    // Contiguous item chunks, one pool task each (never one task per item:
    // the pool spawns a thread per task). Items never straddle chunks, so
    // every C is written by exactly one thread with the serial arithmetic.
    const std::size_t per_chunk = (count + n_chunks - 1) / n_chunks;
    auto task = [&](std::size_t t) {
      const std::size_t i0 = t * per_chunk;
      const std::size_t i1 = std::min(count, i0 + per_chunk);
      for (std::size_t i = i0; i < i1; ++i) run_batch_item(items[i]);
    };
    GemmPool::instance().run(n_chunks, task);
  }

  for (std::size_t i = 0; i < count; ++i) {
    const ZgemmBatchItem& it = items[i];
    if (it.m != 0 && it.n != 0 && it.k != 0 && it.alpha != Complex{0.0, 0.0})
      perf::add_flops(perf::Kernel::kZgemm,
                      perf::cost::zgemm(it.m, it.n, it.k));
  }
}

void set_zgemm_batch_threads(std::size_t n_threads) {
  g_gemm_batch_threads.store(std::max<std::size_t>(1, n_threads),
                             std::memory_order_relaxed);
}

std::size_t zgemm_batch_threads() {
  return g_gemm_batch_threads.load(std::memory_order_relaxed);
}

void set_zgemm_threads(std::size_t n_threads) {
  g_gemm_threads.store(std::max<std::size_t>(1, n_threads),
                       std::memory_order_relaxed);
}

std::size_t zgemm_threads() {
  return g_gemm_threads.load(std::memory_order_relaxed);
}

void zgemm_view(std::size_t m, std::size_t n, std::size_t k, Complex alpha,
                const Complex* a, std::size_t lda, const Complex* b,
                std::size_t ldb, Complex beta, Complex* c, std::size_t ldc) {
  scale_c(m, n, beta, c, ldc);
  if (m != 0 && n != 0 && k != 0 && alpha != Complex{0.0, 0.0}) {
    if (8 * m * n * k < kPackThresholdFlops)
      gemm_naive_view(m, n, k, alpha, a, lda, b, ldb, c, ldc);
    else
      gemm_packed_view(m, n, k, alpha, a, lda, b, ldb, c, ldc,
                       g_gemm_threads.load(std::memory_order_relaxed));
    // Booked only when the multiply runs, so alpha == 0 quick returns do
    // not inflate the instrumented counter (or the GEMM fraction).
    perf::add_flops(perf::Kernel::kZgemm, perf::cost::zgemm(m, n, k));
  }
}

void zgemm(Complex alpha, const ZMatrix& a, const ZMatrix& b, Complex beta,
           ZMatrix& c) {
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = b.cols();
  WLSMS_EXPECTS(b.rows() == k);
  WLSMS_EXPECTS(c.rows() == m && c.cols() == n);
  zgemm_view(m, n, k, alpha, a.data(), m, b.data(), k, beta, c.data(), m);
}

void zgemm_naive(Complex alpha, const ZMatrix& a, const ZMatrix& b,
                 Complex beta, ZMatrix& c) {
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = b.cols();
  WLSMS_EXPECTS(b.rows() == k);
  WLSMS_EXPECTS(c.rows() == m && c.cols() == n);
  scale_c(m, n, beta, c.data(), m);
  if (m != 0 && n != 0 && k != 0 && alpha != Complex{0.0, 0.0}) {
    gemm_naive_view(m, n, k, alpha, a.data(), m, b.data(), k, c.data(), m);
    perf::add_flops(perf::Kernel::kZgemm, perf::cost::zgemm(m, n, k));
  }
}

ZMatrix multiply(const ZMatrix& a, const ZMatrix& b) {
  ZMatrix c(a.rows(), b.cols());
  zgemm(Complex{1.0, 0.0}, a, b, Complex{0.0, 0.0}, c);
  return c;
}

void zgemv(Complex alpha, const ZMatrix& a, const Complex* x, Complex beta,
           Complex* y) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  if (beta == Complex{0.0, 0.0})
    std::fill_n(y, m, Complex{0.0, 0.0});
  else if (beta != Complex{1.0, 0.0})
    for (std::size_t i = 0; i < m; ++i) y[i] *= beta;
  for (std::size_t j = 0; j < n; ++j) {
    const Complex factor = alpha * x[j];
    const Complex* aj = a.col(j);
    for (std::size_t i = 0; i < m; ++i) y[i] += factor * aj[i];
  }
  perf::add_flops(perf::Kernel::kOther, perf::cost::zgemm(m, 1, n));
}

}  // namespace wlsms::linalg
