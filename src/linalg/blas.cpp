#include "linalg/blas.hpp"

#include <algorithm>

#include "perf/flops.hpp"

namespace wlsms::linalg {

namespace {
// Cache-blocking tile sizes chosen for the ~100-300 square matrices the LIZ
// solver produces; a 64x64 complex tile (64 KiB) fits in L2 comfortably.
constexpr std::size_t kTileK = 64;
constexpr std::size_t kTileJ = 64;
}  // namespace

void zgemm(Complex alpha, const ZMatrix& a, const ZMatrix& b, Complex beta,
           ZMatrix& c) {
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = b.cols();
  WLSMS_EXPECTS(b.rows() == k);
  WLSMS_EXPECTS(c.rows() == m && c.cols() == n);

  if (beta != Complex{1.0, 0.0}) {
    for (std::size_t j = 0; j < n; ++j) {
      Complex* cj = c.col(j);
      for (std::size_t i = 0; i < m; ++i) cj[i] *= beta;
    }
  }

  // j-k-i loop order: innermost loop streams a column of A (unit stride) and
  // a column of C (unit stride), the classical column-major GEMM kernel.
  for (std::size_t j0 = 0; j0 < n; j0 += kTileJ) {
    const std::size_t j1 = std::min(j0 + kTileJ, n);
    for (std::size_t k0 = 0; k0 < k; k0 += kTileK) {
      const std::size_t k1 = std::min(k0 + kTileK, k);
      for (std::size_t j = j0; j < j1; ++j) {
        Complex* cj = c.col(j);
        const Complex* bj = b.col(j);
        for (std::size_t kk = k0; kk < k1; ++kk) {
          const Complex factor = alpha * bj[kk];
          if (factor == Complex{0.0, 0.0}) continue;
          const Complex* ak = a.col(kk);
          for (std::size_t i = 0; i < m; ++i) cj[i] += factor * ak[i];
        }
      }
    }
  }
  perf::add_flops(perf::cost::zgemm(m, n, k));
}

ZMatrix multiply(const ZMatrix& a, const ZMatrix& b) {
  ZMatrix c(a.rows(), b.cols());
  zgemm(Complex{1.0, 0.0}, a, b, Complex{0.0, 0.0}, c);
  return c;
}

void zgemv(Complex alpha, const ZMatrix& a, const Complex* x, Complex beta,
           Complex* y) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  if (beta != Complex{1.0, 0.0})
    for (std::size_t i = 0; i < m; ++i) y[i] *= beta;
  for (std::size_t j = 0; j < n; ++j) {
    const Complex factor = alpha * x[j];
    const Complex* aj = a.col(j);
    for (std::size_t i = 0; i < m; ++i) y[i] += factor * aj[i];
  }
  perf::add_flops(perf::cost::zgemm(m, 1, n));
}

}  // namespace wlsms::linalg
