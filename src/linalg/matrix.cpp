#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>

namespace wlsms::linalg {

void ZMatrix::set_zero() {
  std::fill(data_.begin(), data_.end(), Complex{0.0, 0.0});
}

void ZMatrix::axpy(Complex alpha, const ZMatrix& b) {
  WLSMS_EXPECTS(rows_ == b.rows_ && cols_ == b.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * b.data_[i];
}

double ZMatrix::frobenius_norm() const {
  double sum = 0.0;
  for (const Complex& v : data_) sum += std::norm(v);
  return std::sqrt(sum);
}

double ZMatrix::max_abs_diff(const ZMatrix& other) const {
  WLSMS_EXPECTS(rows_ == other.rows_ && cols_ == other.cols_);
  double worst = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i)
    worst = std::max(worst, std::abs(data_[i] - other.data_[i]));
  return worst;
}

ZMatrix ZMatrix::block(std::size_t row0, std::size_t col0,
                       std::size_t size) const {
  WLSMS_EXPECTS(row0 + size <= rows_ && col0 + size <= cols_);
  ZMatrix out(size, size);
  for (std::size_t c = 0; c < size; ++c)
    for (std::size_t r = 0; r < size; ++r)
      out(r, c) = (*this)(row0 + r, col0 + c);
  return out;
}

}  // namespace wlsms::linalg
