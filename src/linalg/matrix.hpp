#pragma once

/// \file matrix.hpp
/// Dense column-major complex matrix used by the multiple-scattering solver.
///
/// The LSMS hot path is the factorization of the local KKR matrix
/// tau = (1 - t G0)^-1 t built over each atom's LIZ (paper §II-B); those
/// matrices are dense complex and of moderate size (130 x 130 for the
/// paper's 65-atom LIZ with one s-channel per spin; (2 (lmax+1)^2 N_LIZ)^2
/// in general). Storage is column-major to match the BLAS convention the
/// original code (ZGEMM) uses.

#include <complex>
#include <cstddef>
#include <vector>

#include "common/error.hpp"

namespace wlsms::linalg {

using Complex = std::complex<double>;

/// Dense column-major matrix of complex<double>.
class ZMatrix {
 public:
  ZMatrix() = default;

  /// Creates a rows x cols matrix initialized to zero.
  ZMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, Complex{0.0, 0.0}) {}

  /// Identity factory.
  static ZMatrix identity(std::size_t n) {
    ZMatrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = Complex{1.0, 0.0};
    return m;
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool square() const { return rows_ == cols_; }

  /// Element access (column-major: consecutive rows within a column are
  /// adjacent in memory).
  Complex& operator()(std::size_t r, std::size_t c) {
    return data_[c * rows_ + r];
  }
  const Complex& operator()(std::size_t r, std::size_t c) const {
    return data_[c * rows_ + r];
  }

  Complex* data() { return data_.data(); }
  const Complex* data() const { return data_.data(); }

  /// Pointer to the top of column c.
  Complex* col(std::size_t c) { return data_.data() + c * rows_; }
  const Complex* col(std::size_t c) const { return data_.data() + c * rows_; }

  /// Sets every element to zero.
  void set_zero();

  /// In-place A += alpha * B (same shape required).
  void axpy(Complex alpha, const ZMatrix& b);

  /// Frobenius norm.
  double frobenius_norm() const;

  /// Max |a_ij - b_ij| over all elements; shapes must match.
  double max_abs_diff(const ZMatrix& other) const;

  /// Extracts the square sub-block of size `size` whose top-left corner is
  /// (row0, col0). Used to pull the central-atom block out of a LIZ matrix.
  ZMatrix block(std::size_t row0, std::size_t col0, std::size_t size) const;

  bool operator==(const ZMatrix& other) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<Complex> data_;
};

}  // namespace wlsms::linalg
