#pragma once

/// \file lu.hpp
/// LU factorization (ZGETRF/ZGETRS equivalents) and the derived operations
/// the multiple-scattering solver needs: matrix inverse and log-determinant.
///
/// Two factorization algorithms are provided behind one interface: the
/// original unblocked rank-1-update loop (reference) and a blocked
/// right-looking variant (panel factorization + unit-lower TRSM on the row
/// panel + ZGEMM trailing update) that retires the bulk of its flops in the
/// packed ZGEMM — the level-3-rich structure the paper's LSMS relies on
/// (§II-B). `kAuto` picks blocked at and above `kLuBlockedThreshold`.
///
/// Lloyd's formula evaluates ln det M(z) of the LIZ scattering matrix on a
/// complex-energy contour; the determinant's logarithm is accumulated from
/// the U diagonal of the pivoted LU factorization, tracking the branch
/// explicitly so d/dz ln det stays continuous along the contour.

#include <cstdint>
#include <optional>
#include <vector>

#include "linalg/blas.hpp"
#include "linalg/matrix.hpp"

namespace wlsms::linalg {

/// Factorization algorithm selector.
enum class LuAlgorithm {
  kAuto,       ///< blocked for order >= kLuBlockedThreshold, else unblocked
  kUnblocked,  ///< reference rank-1-update loop
  kBlocked,    ///< right-looking blocked (panel + TRSM + GEMM)
};

/// Panel width of the blocked factorization. Narrow enough that the GEMM
/// trailing updates dominate the flop count already at LIZ-sized matrices
/// (n ~ 130: ~80 % of the factorization flops are ZGEMM).
inline constexpr std::size_t kLuBlockSize = 16;

/// Matrix order at and above which kAuto picks the blocked algorithm.
inline constexpr std::size_t kLuBlockedThreshold = 64;

/// In-place pivoted LU factorization A = P L U; on return `a` holds the
/// packed L (unit lower) and U factors and `pivots[k]` is the row swapped
/// with row k at step k. Returns the pivot-swap parity (+1/-1). Throws
/// SingularMatrixError on an exactly zero pivot. Flops are booked per
/// kernel (panel / TRSM / GEMM); `zgetrf_flops(n)` returns the exact total
/// the chosen algorithm will report.
int zgetrf_in_place(ZMatrix& a, std::vector<std::size_t>& pivots,
                    LuAlgorithm algorithm = LuAlgorithm::kAuto);

/// Incremental driver of the blocked right-looking factorization: each
/// step() factorizes the next pivot panel and applies the unit-lower TRSM
/// to the row panel — exactly the per-panel work of the blocked
/// zgetrf_in_place — and hands the trailing-update GEMM back to the caller
/// as a batch-item descriptor (m == 0 at the final panel, where no
/// trailing block remains). The caller must apply the returned update
/// (directly via zgemm_view, or fused with other matrices' updates in one
/// zgemm_view_batch) before calling step() again. The blocked
/// zgetrf_in_place itself runs on this driver, so stepped and monolithic
/// factorizations are the same arithmetic by construction — which is what
/// lets the batched Schur solve (lsms) advance many same-order member
/// eliminations in lock step bit-identically. Throws SingularMatrixError
/// from step() on a zero pivot.
class BlockedLuStepper {
 public:
  /// Binds to `a` (square) and `pivots` (resized to the order); both must
  /// outlive the stepper.
  BlockedLuStepper(ZMatrix& a, std::vector<std::size_t>& pivots);

  bool done() const { return k0_ >= n_; }

  /// Advances one panel; returns the trailing-update descriptor.
  ZgemmBatchItem step();

  /// Pivot-swap parity of the panels factorized so far.
  int parity() const { return parity_; }

 private:
  ZMatrix* a_;
  std::vector<std::size_t>* pivots_;
  std::size_t n_;
  std::size_t k0_ = 0;
  int parity_ = 1;
};

/// Solves A X = B in place given the packed factors and pivots from
/// zgetrf_in_place. `b` points to `nrhs` column-major columns with leading
/// dimension `ldb` (>= order).
void zgetrs_in_place(const ZMatrix& lu, const std::vector<std::size_t>& pivots,
                     Complex* b, std::size_t nrhs, std::size_t ldb);

/// Exact instrumented flop count of zgetrf_in_place for an n x n matrix
/// under the given algorithm (the analytic side of the perf assertion).
std::uint64_t zgetrf_flops(std::size_t n,
                           LuAlgorithm algorithm = LuAlgorithm::kAuto);

/// Pivoted LU factorization of a square matrix, A = P L U.
/// Holds the packed factors plus the pivot sequence.
class LuFactorization {
 public:
  /// Factorizes `a` (copied). Throws SingularMatrixError if a zero pivot is
  /// encountered (exactly singular input).
  explicit LuFactorization(ZMatrix a,
                           LuAlgorithm algorithm = LuAlgorithm::kAuto);

  std::size_t order() const { return lu_.rows(); }

  /// Solves A x = b in place; b has order() entries.
  void solve_in_place(Complex* b) const;

  /// Solves A X = B for a matrix of right-hand sides.
  ZMatrix solve(const ZMatrix& b) const;

  /// A^-1 via n solves against the identity.
  ZMatrix inverse() const;

  /// Principal value of ln det A: sum of ln(U_ii) plus i*pi per row swap...
  /// More precisely: log|det| is exact; the imaginary part is the sum of
  /// arg(U_ii) over the diagonal (each in (-pi, pi]) with the pivot sign
  /// folded in, which is the standard KKR practice for Lloyd's formula.
  Complex log_det() const;

  /// det A (may overflow/underflow for large matrices; prefer log_det).
  Complex det() const;

  const ZMatrix& packed() const { return lu_; }
  const std::vector<std::size_t>& pivots() const { return pivots_; }

 private:
  ZMatrix lu_;
  std::vector<std::size_t> pivots_;  // pivots_[k] = row swapped with row k
  int swap_parity_ = 1;              // +1 even number of swaps, -1 odd
};

/// Thrown when a factorization meets an exactly singular matrix.
class SingularMatrixError : public std::runtime_error {
 public:
  explicit SingularMatrixError(std::size_t column)
      : std::runtime_error("singular matrix: zero pivot in column " +
                           std::to_string(column)) {}
};

/// Convenience: A^-1.
ZMatrix inverse(const ZMatrix& a);

/// Convenience: ln det A (see LuFactorization::log_det for branch rules).
Complex log_det(const ZMatrix& a);

}  // namespace wlsms::linalg
