#pragma once

/// \file lu.hpp
/// LU factorization (ZGETRF/ZGETRS equivalents) and the derived operations
/// the multiple-scattering solver needs: matrix inverse and log-determinant.
///
/// Lloyd's formula evaluates ln det M(z) of the LIZ scattering matrix on a
/// complex-energy contour; the determinant's logarithm is accumulated from
/// the U diagonal of the pivoted LU factorization, tracking the branch
/// explicitly so d/dz ln det stays continuous along the contour.

#include <optional>
#include <vector>

#include "linalg/matrix.hpp"

namespace wlsms::linalg {

/// Pivoted LU factorization of a square matrix, A = P L U.
/// Holds the packed factors plus the pivot sequence.
class LuFactorization {
 public:
  /// Factorizes `a` (copied). Throws SingularMatrixError if a zero pivot is
  /// encountered (exactly singular input).
  explicit LuFactorization(ZMatrix a);

  std::size_t order() const { return lu_.rows(); }

  /// Solves A x = b in place; b has order() entries.
  void solve_in_place(Complex* b) const;

  /// Solves A X = B for a matrix of right-hand sides.
  ZMatrix solve(const ZMatrix& b) const;

  /// A^-1 via n solves against the identity.
  ZMatrix inverse() const;

  /// Principal value of ln det A: sum of ln(U_ii) plus i*pi per row swap...
  /// More precisely: log|det| is exact; the imaginary part is the sum of
  /// arg(U_ii) over the diagonal (each in (-pi, pi]) with the pivot sign
  /// folded in, which is the standard KKR practice for Lloyd's formula.
  Complex log_det() const;

  /// det A (may overflow/underflow for large matrices; prefer log_det).
  Complex det() const;

  const ZMatrix& packed() const { return lu_; }
  const std::vector<std::size_t>& pivots() const { return pivots_; }

 private:
  ZMatrix lu_;
  std::vector<std::size_t> pivots_;  // pivots_[k] = row swapped with row k
  int swap_parity_ = 1;              // +1 even number of swaps, -1 odd
};

/// Thrown when a factorization meets an exactly singular matrix.
class SingularMatrixError : public std::runtime_error {
 public:
  explicit SingularMatrixError(std::size_t column)
      : std::runtime_error("singular matrix: zero pivot in column " +
                           std::to_string(column)) {}
};

/// Convenience: A^-1.
ZMatrix inverse(const ZMatrix& a);

/// Convenience: ln det A (see LuFactorization::log_det for branch rules).
Complex log_det(const ZMatrix& a);

}  // namespace wlsms::linalg
