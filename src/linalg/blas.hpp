#pragma once

/// \file blas.hpp
/// Hand-rolled complex BLAS-3/2 kernels with flop accounting.
///
/// The paper attributes LSMS's high sustained fraction of peak to ZGEMM
/// (§II-B); this reproduction implements ZGEMM from scratch (register-blocked
/// over a column-major layout) and instruments it so the Table II harness
/// can report sustained Flop/s the same way PAPI did.

#include "linalg/matrix.hpp"

namespace wlsms::linalg {

/// C = beta*C + alpha * A * B (no transposes; shapes must conform).
void zgemm(Complex alpha, const ZMatrix& a, const ZMatrix& b, Complex beta,
           ZMatrix& c);

/// Convenience: returns A * B.
ZMatrix multiply(const ZMatrix& a, const ZMatrix& b);

/// y = beta*y + alpha * A * x with x, y dense vectors (y.size == A.rows).
void zgemv(Complex alpha, const ZMatrix& a, const Complex* x, Complex beta,
           Complex* y);

}  // namespace wlsms::linalg
