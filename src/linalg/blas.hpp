#pragma once

/// \file blas.hpp
/// Hand-rolled complex BLAS-3/2 kernels with flop accounting.
///
/// The paper attributes LSMS's high sustained fraction of peak to ZGEMM
/// (§II-B); this reproduction implements ZGEMM from scratch and instruments
/// it so the Table II harness can report sustained Flop/s (and the fraction
/// of flops in ZGEMM) the same way PAPI did.
///
/// Two implementations are provided:
///  - `zgemm` / `zgemm_view`: the production path. A/B panels are packed
///    into split real/imaginary planes (so the microkernel is four real
///    FMA streams the compiler vectorizes cleanly), the inner kernel is a
///    register-blocked MR x NR tile accumulated over the full K block, and
///    the M dimension can optionally be spread over an internal worker pool
///    (`set_zgemm_threads`).
///  - `zgemm_naive`: the original cache-tiled j-k-i loop, kept as the
///    conformance/benchmark reference.

#include "linalg/matrix.hpp"

namespace wlsms::linalg {

/// Packed-panel microkernel tile sizes (rows x cols of C held in
/// registers). Exposed so tests can cover the non-multiple-of-tile edge
/// cases deliberately.
inline constexpr std::size_t kGemmMR = 8;
inline constexpr std::size_t kGemmNR = 4;

/// C = beta*C + alpha * A * B (no transposes; shapes must conform).
/// beta == 0 overwrites C without reading it (BLAS semantics: NaN/Inf in
/// the output buffer do not propagate).
void zgemm(Complex alpha, const ZMatrix& a, const ZMatrix& b, Complex beta,
           ZMatrix& c);

/// Reference implementation (cache-tiled triple loop, no packing). Same
/// contract as zgemm; used for conformance tests and as the naive side of
/// the kernel benchmarks. Small products inside zgemm fall through to this.
void zgemm_naive(Complex alpha, const ZMatrix& a, const ZMatrix& b,
                 Complex beta, ZMatrix& c);

/// Raw column-major GEMM on sub-matrix views:
/// C (m x n, leading dimension ldc) = beta*C + alpha * A (m x k, lda) *
/// B (k x n, ldb). This is the seam the blocked LU's trailing update and
/// the Schur-complement solve use, and the seam a future accelerator
/// backend slots into.
void zgemm_view(std::size_t m, std::size_t n, std::size_t k, Complex alpha,
                const Complex* a, std::size_t lda, const Complex* b,
                std::size_t ldb, Complex beta, Complex* c, std::size_t ldc);

/// Number of threads the packed ZGEMM spreads M-panels over (default 1 =
/// fully serial, no pool interaction). Worker threads are lazily created
/// and shared process-wide; concurrent multi-threaded GEMMs serialize on
/// the pool. Thread count is clamped to at least 1.
void set_zgemm_threads(std::size_t n_threads);
std::size_t zgemm_threads();

/// One C = beta*C + alpha*A*B product of a batched dispatch. Same
/// column-major view contract as zgemm_view; an item with m == 0 is a
/// no-op placeholder (batch slots may be empty).
struct ZgemmBatchItem {
  std::size_t m = 0, n = 0, k = 0;
  Complex alpha{0.0, 0.0};
  const Complex* a = nullptr;
  std::size_t lda = 0;
  const Complex* b = nullptr;
  std::size_t ldb = 0;
  Complex beta{1.0, 0.0};
  Complex* c = nullptr;
  std::size_t ldc = 0;
};

/// Computes every item of the batch. Each item runs the exact zgemm_view
/// arithmetic (same naive/packed selection, serial inner kernel), so
/// results are bitwise what `count` zgemm_view calls would produce; items
/// are merely independent, letting them spread over the internal worker
/// pool when `set_zgemm_batch_threads` raises the batch thread count
/// (items never split across threads — each C is written by exactly one).
/// Flops for all items are booked on the calling thread, keeping
/// perf::FlopWindow accounting around a batched solve identical to the
/// singleton path. This is the coalescing seam the serving scheduler
/// dispatches cross-walker LIZ solves through, and the array-of-products
/// shape a future batched accelerator ZGEMM slots into.
void zgemm_view_batch(const ZgemmBatchItem* items, std::size_t count);

/// Threads zgemm_view_batch spreads items over (default 1 = serial, no
/// pool interaction). Clamped to at least 1. Independent of
/// set_zgemm_threads: per-item inner kernels always run serially.
void set_zgemm_batch_threads(std::size_t n_threads);
std::size_t zgemm_batch_threads();

/// Convenience: returns A * B.
ZMatrix multiply(const ZMatrix& a, const ZMatrix& b);

/// y = beta*y + alpha * A * x with x, y dense vectors (y.size == A.rows).
/// beta == 0 overwrites y without reading it.
void zgemv(Complex alpha, const ZMatrix& a, const Complex* x, Complex beta,
           Complex* y);

}  // namespace wlsms::linalg
