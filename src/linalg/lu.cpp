#include "linalg/lu.hpp"

#include <cmath>
#include <utility>

#include "perf/flops.hpp"

namespace wlsms::linalg {

LuFactorization::LuFactorization(ZMatrix a) : lu_(std::move(a)) {
  WLSMS_EXPECTS(lu_.square());
  const std::size_t n = lu_.rows();
  pivots_.resize(n);

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: largest |.| in column k at or below the diagonal.
    std::size_t pivot_row = k;
    double pivot_mag = std::abs(lu_(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double mag = std::abs(lu_(i, k));
      if (mag > pivot_mag) {
        pivot_mag = mag;
        pivot_row = i;
      }
    }
    if (pivot_mag == 0.0) throw SingularMatrixError(k);
    pivots_[k] = pivot_row;
    if (pivot_row != k) {
      swap_parity_ = -swap_parity_;
      for (std::size_t j = 0; j < n; ++j)
        std::swap(lu_(k, j), lu_(pivot_row, j));
    }

    const Complex inv_pivot = Complex{1.0, 0.0} / lu_(k, k);
    for (std::size_t i = k + 1; i < n; ++i) lu_(i, k) *= inv_pivot;

    // Rank-1 trailing update, column-wise for unit stride.
    for (std::size_t j = k + 1; j < n; ++j) {
      const Complex ukj = lu_(k, j);
      if (ukj == Complex{0.0, 0.0}) continue;
      Complex* colj = lu_.col(j);
      const Complex* colk = lu_.col(k);
      for (std::size_t i = k + 1; i < n; ++i) colj[i] -= colk[i] * ukj;
    }
  }
  perf::add_flops(perf::cost::zgetrf(n));
}

void LuFactorization::solve_in_place(Complex* b) const {
  const std::size_t n = order();
  // Apply row interchanges.
  for (std::size_t k = 0; k < n; ++k)
    if (pivots_[k] != k) std::swap(b[k], b[pivots_[k]]);
  // Forward substitution with unit-lower L.
  for (std::size_t k = 0; k < n; ++k) {
    const Complex bk = b[k];
    if (bk == Complex{0.0, 0.0}) continue;
    const Complex* colk = lu_.col(k);
    for (std::size_t i = k + 1; i < n; ++i) b[i] -= colk[i] * bk;
  }
  // Backward substitution with U.
  for (std::size_t k = n; k-- > 0;) {
    b[k] /= lu_(k, k);
    const Complex bk = b[k];
    const Complex* colk = lu_.col(k);
    for (std::size_t i = 0; i < k; ++i) b[i] -= colk[i] * bk;
  }
  perf::add_flops(perf::cost::zgetrs(n, 1));
}

ZMatrix LuFactorization::solve(const ZMatrix& b) const {
  WLSMS_EXPECTS(b.rows() == order());
  ZMatrix x = b;
  for (std::size_t j = 0; j < x.cols(); ++j) solve_in_place(x.col(j));
  return x;
}

ZMatrix LuFactorization::inverse() const {
  return solve(ZMatrix::identity(order()));
}

Complex LuFactorization::log_det() const {
  double log_abs = 0.0;
  double arg_sum = (swap_parity_ < 0) ? std::acos(-1.0) : 0.0;
  for (std::size_t k = 0; k < order(); ++k) {
    const Complex u = lu_(k, k);
    log_abs += std::log(std::abs(u));
    arg_sum += std::arg(u);
  }
  return {log_abs, arg_sum};
}

Complex LuFactorization::det() const {
  Complex d{static_cast<double>(swap_parity_), 0.0};
  for (std::size_t k = 0; k < order(); ++k) d *= lu_(k, k);
  return d;
}

ZMatrix inverse(const ZMatrix& a) { return LuFactorization(a).inverse(); }

Complex log_det(const ZMatrix& a) { return LuFactorization(a).log_det(); }

}  // namespace wlsms::linalg
