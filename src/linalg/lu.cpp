#include "linalg/lu.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "linalg/blas.hpp"
#include "perf/flops.hpp"

namespace wlsms::linalg {

namespace {

// Unblocked partial-pivoting factorization of the panel occupying columns
// [k0, k0+width) of an n x n matrix, rows k0..n-1. Row swaps are applied to
// the *full* rows immediately (equivalent to LAPACK's deferred ZLASWP), so
// the packed factors are laid out exactly as the unblocked algorithm leaves
// them. Rank-1 updates stay inside the panel columns; the trailing matrix
// is updated by the caller via TRSM + GEMM. Returns the swap parity
// contribution of this panel.
// Pivot magnitude |re| + |im| (LAPACK's CABS1, as in ZGETF2): a cheaper
// magnitude proxy that is within sqrt(2) of the modulus but NOT
// order-equivalent to it (cabs1(3+4i) = 7 > cabs1(6) = 6 while
// |3+4i| = 5 < 6), so it can select different — equally valid — pivots
// than the std::abs pivoting used before the blocked rewrite. Factors may
// therefore differ from earlier releases in row ordering and rounding,
// within normal partial-pivoting error bounds.
double cabs1(Complex z) { return std::abs(z.real()) + std::abs(z.imag()); }

int factor_panel(ZMatrix& a, std::vector<std::size_t>& pivots, std::size_t k0,
                 std::size_t width) {
  const std::size_t n = a.rows();
  int parity = 1;
  for (std::size_t j = k0; j < k0 + width; ++j) {
    std::size_t pivot_row = j;
    double pivot_mag = cabs1(a(j, j));
    for (std::size_t i = j + 1; i < n; ++i) {
      const double mag = cabs1(a(i, j));
      if (mag > pivot_mag) {
        pivot_mag = mag;
        pivot_row = i;
      }
    }
    if (pivot_mag == 0.0) throw SingularMatrixError(j);
    pivots[j] = pivot_row;
    if (pivot_row != j) {
      parity = -parity;
      for (std::size_t c = 0; c < n; ++c) std::swap(a(j, c), a(pivot_row, c));
    }

    const Complex inv_pivot = Complex{1.0, 0.0} / a(j, j);
    Complex* colj = a.col(j);
    for (std::size_t i = j + 1; i < n; ++i) colj[i] *= inv_pivot;

    for (std::size_t c = j + 1; c < k0 + width; ++c) {
      const Complex ujc = a(j, c);
      if (ujc == Complex{0.0, 0.0}) continue;
      Complex* colc = a.col(c);
      for (std::size_t i = j + 1; i < n; ++i) colc[i] -= colj[i] * ujc;
    }
  }
  perf::add_flops(perf::Kernel::kPanel,
                  perf::cost::zgetrf_panel(n - k0, width));
  return parity;
}

// B (width x nrhs columns starting at `b`, leading dimension ldb) :=
// L11^{-1} B with L11 the unit-lower panel block a[k0.., k0..].
void trsm_unit_lower(const ZMatrix& a, std::size_t k0, std::size_t width,
                     Complex* b, std::size_t nrhs, std::size_t ldb) {
  for (std::size_t r = 0; r < nrhs; ++r) {
    Complex* col = b + r * ldb;
    for (std::size_t kk = 0; kk < width; ++kk) {
      const Complex bk = col[kk];
      if (bk == Complex{0.0, 0.0}) continue;
      const Complex* lk = a.col(k0 + kk) + k0;
      for (std::size_t i = kk + 1; i < width; ++i) col[i] -= lk[i] * bk;
    }
  }
  perf::add_flops(perf::Kernel::kTrsm,
                  perf::cost::ztrsm_unit_lower(width, nrhs));
}

int zgetrf_unblocked(ZMatrix& a, std::vector<std::size_t>& pivots) {
  return factor_panel(a, pivots, 0, a.rows());
}

int zgetrf_blocked(ZMatrix& a, std::vector<std::size_t>& pivots) {
  BlockedLuStepper stepper(a, pivots);
  while (!stepper.done()) {
    const ZgemmBatchItem update = stepper.step();
    if (update.m != 0)
      zgemm_view(update.m, update.n, update.k, update.alpha, update.a,
                 update.lda, update.b, update.ldb, update.beta, update.c,
                 update.ldc);
  }
  return stepper.parity();
}

bool use_blocked(std::size_t n, LuAlgorithm algorithm) {
  switch (algorithm) {
    case LuAlgorithm::kUnblocked:
      return false;
    case LuAlgorithm::kBlocked:
      return true;
    case LuAlgorithm::kAuto:
    default:
      return n >= kLuBlockedThreshold;
  }
}

}  // namespace

BlockedLuStepper::BlockedLuStepper(ZMatrix& a,
                                   std::vector<std::size_t>& pivots)
    : a_(&a), pivots_(&pivots), n_(a.rows()) {
  WLSMS_EXPECTS(a.square());
  pivots.resize(n_);
}

ZgemmBatchItem BlockedLuStepper::step() {
  WLSMS_EXPECTS(!done());
  ZMatrix& a = *a_;
  const std::size_t k0 = k0_;
  const std::size_t w = std::min(kLuBlockSize, n_ - k0);
  parity_ *= factor_panel(a, *pivots_, k0, w);
  const std::size_t rem = n_ - k0 - w;
  ZgemmBatchItem update;
  if (rem != 0) {
    // Row panel: U12 = L11^{-1} A12.
    trsm_unit_lower(a, k0, w, a.col(k0 + w) + k0, rem, n_);
    // Trailing update A22 -= L21 * U12 — the GEMM that dominates — returned
    // as a descriptor so callers can fuse it with other matrices' updates.
    update.m = rem;
    update.n = rem;
    update.k = w;
    update.alpha = Complex{-1.0, 0.0};
    update.a = a.col(k0) + k0 + w;
    update.lda = n_;
    update.b = a.col(k0 + w) + k0;
    update.ldb = n_;
    update.beta = Complex{1.0, 0.0};
    update.c = a.col(k0 + w) + k0 + w;
    update.ldc = n_;
  }
  k0_ += w;
  return update;
}

int zgetrf_in_place(ZMatrix& a, std::vector<std::size_t>& pivots,
                    LuAlgorithm algorithm) {
  WLSMS_EXPECTS(a.square());
  const std::size_t n = a.rows();
  pivots.resize(n);
  if (n == 0) return 1;
  return use_blocked(n, algorithm) ? zgetrf_blocked(a, pivots)
                                   : zgetrf_unblocked(a, pivots);
}

void zgetrs_in_place(const ZMatrix& lu, const std::vector<std::size_t>& pivots,
                     Complex* b, std::size_t nrhs, std::size_t ldb) {
  const std::size_t n = lu.rows();
  WLSMS_EXPECTS(pivots.size() == n && ldb >= n);
  for (std::size_t r = 0; r < nrhs; ++r) {
    Complex* col = b + r * ldb;
    // Apply row interchanges.
    for (std::size_t k = 0; k < n; ++k)
      if (pivots[k] != k) std::swap(col[k], col[pivots[k]]);
    // Forward substitution with unit-lower L.
    for (std::size_t k = 0; k < n; ++k) {
      const Complex bk = col[k];
      if (bk == Complex{0.0, 0.0}) continue;
      const Complex* colk = lu.col(k);
      for (std::size_t i = k + 1; i < n; ++i) col[i] -= colk[i] * bk;
    }
    // Backward substitution with U.
    for (std::size_t k = n; k-- > 0;) {
      col[k] /= lu(k, k);
      const Complex bk = col[k];
      const Complex* colk = lu.col(k);
      for (std::size_t i = 0; i < k; ++i) col[i] -= colk[i] * bk;
    }
  }
  perf::add_flops(perf::Kernel::kTrsm, perf::cost::zgetrs(n, nrhs));
}

std::uint64_t zgetrf_flops(std::size_t n, LuAlgorithm algorithm) {
  return use_blocked(n, algorithm)
             ? perf::cost::zgetrf_blocked(n, kLuBlockSize)
             : perf::cost::zgetrf_panel(n, n);
}

LuFactorization::LuFactorization(ZMatrix a, LuAlgorithm algorithm)
    : lu_(std::move(a)) {
  swap_parity_ = zgetrf_in_place(lu_, pivots_, algorithm);
}

void LuFactorization::solve_in_place(Complex* b) const {
  zgetrs_in_place(lu_, pivots_, b, 1, order());
}

ZMatrix LuFactorization::solve(const ZMatrix& b) const {
  WLSMS_EXPECTS(b.rows() == order());
  ZMatrix x = b;
  zgetrs_in_place(lu_, pivots_, x.data(), x.cols(), order());
  return x;
}

ZMatrix LuFactorization::inverse() const {
  return solve(ZMatrix::identity(order()));
}

Complex LuFactorization::log_det() const {
  double log_abs = 0.0;
  double arg_sum = (swap_parity_ < 0) ? std::acos(-1.0) : 0.0;
  for (std::size_t k = 0; k < order(); ++k) {
    const Complex u = lu_(k, k);
    log_abs += std::log(std::abs(u));
    arg_sum += std::arg(u);
  }
  return {log_abs, arg_sum};
}

Complex LuFactorization::det() const {
  Complex d{static_cast<double>(swap_parity_), 0.0};
  for (std::size_t k = 0; k < order(); ++k) d *= lu_(k, k);
  return d;
}

ZMatrix inverse(const ZMatrix& a) { return LuFactorization(a).inverse(); }

Complex log_det(const ZMatrix& a) { return LuFactorization(a).log_det(); }

}  // namespace wlsms::linalg
