#include "lattice/cluster.hpp"

#include <cmath>

#include "common/error.hpp"

namespace wlsms::lattice {

Structure make_spherical_cluster(CubicLattice lattice, double a, double radius,
                                 bool center_on_atom) {
  WLSMS_EXPECTS(radius > 0.0);
  // Generate a supercell comfortably larger than the sphere, then cut.
  const std::size_t n =
      static_cast<std::size_t>(std::ceil(2.0 * radius / a)) + 2;
  const Structure super = make_supercell(lattice, a, n, n, n);

  const double half = 0.5 * static_cast<double>(n) * a;
  Vec3 center{half, half, half};
  if (center_on_atom) {
    // Snap to the nearest lattice site so the sphere is atom-centred.
    double best = 1e300;
    for (const Vec3& p : super.positions()) {
      const double d2 = (p - Vec3{half, half, half}).norm2();
      if (d2 < best) {
        best = d2;
        center = p;
      }
    }
  }

  std::vector<Vec3> kept;
  for (const Vec3& p : super.positions())
    if ((p - center).norm() <= radius) kept.push_back(p - center);
  WLSMS_ENSURES(!kept.empty());
  return Structure::finite(std::move(kept));
}

Structure make_cubic_cluster(CubicLattice lattice, double a, std::size_t nx,
                             std::size_t ny, std::size_t nz) {
  const Structure super = make_supercell(lattice, a, nx, ny, nz);
  std::vector<Vec3> positions = super.positions();
  return Structure::finite(std::move(positions));
}

std::vector<std::size_t> surface_atoms(const Structure& cluster,
                                       double nn_cutoff,
                                       std::size_t bulk_coordination) {
  std::vector<std::size_t> surface;
  for (std::size_t i = 0; i < cluster.size(); ++i)
    if (cluster.neighbors_within(i, nn_cutoff).size() < bulk_coordination)
      surface.push_back(i);
  return surface;
}

}  // namespace wlsms::lattice
