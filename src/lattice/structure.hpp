#pragma once

/// \file structure.hpp
/// Atomic geometry: periodic supercells and finite clusters.
///
/// The paper's simulations use periodically repeated bcc Fe cells of 16, 250
/// and 1024 atoms (2^3, 5^3 and 8^3 cubic cells with a 2-atom basis) at the
/// experimental lattice parameter a = 5.42 a0, and each atom's local
/// interaction zone (LIZ) is the set of atoms within 11.5 a0, which encloses
/// 65 atoms (§II-B, §III). This module provides the geometry, periodic image
/// handling, and neighbour enumeration those setups need.

#include <cstddef>
#include <vector>

#include "common/vec3.hpp"

namespace wlsms::lattice {

/// One neighbour of a central atom: which site it is (index into the
/// structure), the actual displacement vector from the centre (including the
/// periodic image offset), and its length.
struct Neighbor {
  std::size_t site = 0;
  Vec3 displacement;  ///< r_j - r_i including image shift, in a0
  double distance = 0.0;
};

/// A collection of atomic positions, optionally periodic in all three
/// directions with an orthorhombic repeat box. Periodicity is all-or-nothing
/// (bulk supercell vs free-standing nanoparticle), which covers every system
/// in the paper.
class Structure {
 public:
  /// Finite (non-periodic) structure from explicit positions.
  static Structure finite(std::vector<Vec3> positions);

  /// Periodic structure with an orthorhombic box of edge lengths `box`
  /// (atoms outside the box are wrapped in).
  static Structure periodic(std::vector<Vec3> positions, Vec3 box);

  std::size_t size() const { return positions_.size(); }
  bool is_periodic() const { return periodic_; }

  /// Repeat box edge lengths; zero vector for finite structures.
  const Vec3& box() const { return box_; }

  const Vec3& position(std::size_t i) const { return positions_[i]; }
  const std::vector<Vec3>& positions() const { return positions_; }

  /// Minimum-image displacement r_j - r_i (plain difference when finite).
  Vec3 displacement(std::size_t i, std::size_t j) const;

  /// Minimum-image distance between sites i and j.
  double distance(std::size_t i, std::size_t j) const;

  /// All neighbours of site i strictly within `cutoff`, including periodic
  /// images (an image of i itself, and multiple images of the same site,
  /// appear as separate entries when the cutoff exceeds half the box).
  /// Sorted by distance, then by site index. The centre atom itself (zero
  /// displacement) is excluded.
  std::vector<Neighbor> neighbors_within(std::size_t i, double cutoff) const;

 private:
  Structure() = default;

  std::vector<Vec3> positions_;
  bool periodic_ = false;
  Vec3 box_{0.0, 0.0, 0.0};
};

/// Cubic Bravais lattices with a basis, enough for the paper's systems.
enum class CubicLattice { kSimpleCubic, kBcc, kFcc };

/// Number of basis atoms per cubic cell for `lattice`.
std::size_t basis_size(CubicLattice lattice);

/// Builds an nx x ny x nz periodic supercell of cubic cells with lattice
/// parameter `a` (in a0). Site order: cell-major, basis-minor.
Structure make_supercell(CubicLattice lattice, double a, std::size_t nx,
                         std::size_t ny, std::size_t nz);

/// The paper's bcc-Fe supercells: n x n x n cubic cells, 2 n^3 atoms, at the
/// experimental lattice parameter (units.hpp).
Structure make_fe_supercell(std::size_t n);

}  // namespace wlsms::lattice
