#include "lattice/shells.hpp"

namespace wlsms::lattice {

std::vector<Shell> neighbor_shells(const Structure& structure,
                                   std::size_t site, double cutoff,
                                   double tolerance) {
  const std::vector<Neighbor> neighbors =
      structure.neighbors_within(site, cutoff);
  std::vector<Shell> shells;
  for (const Neighbor& n : neighbors) {
    if (shells.empty() ||
        n.distance - shells.back().radius > tolerance) {
      shells.push_back(Shell{n.distance, {}});
    }
    shells.back().members.push_back(n);
  }
  return shells;
}

std::vector<std::size_t> shell_coordinations(const Structure& structure,
                                             std::size_t site, double cutoff,
                                             double tolerance) {
  std::vector<std::size_t> out;
  for (const Shell& s : neighbor_shells(structure, site, cutoff, tolerance))
    out.push_back(s.coordination());
  return out;
}

}  // namespace wlsms::lattice
