#pragma once

/// \file shells.hpp
/// Neighbour-shell analysis: groups the neighbours of a site by distance.
/// The effective Heisenberg model extracted from the LSMS substrate carries
/// one exchange constant per shell, and the LIZ ablation sweeps cutoff radii
/// shell by shell.

#include <cstddef>
#include <vector>

#include "lattice/structure.hpp"

namespace wlsms::lattice {

/// A group of neighbours at (numerically) the same distance from a site.
struct Shell {
  double radius = 0.0;                  ///< shell distance in a0
  std::vector<Neighbor> members;        ///< neighbours on this shell
  std::size_t coordination() const { return members.size(); }
};

/// Groups neighbors_within(site, cutoff) into shells. Two distances belong
/// to the same shell when they differ by less than `tolerance` (absolute,
/// in a0). Shells are sorted by radius.
std::vector<Shell> neighbor_shells(const Structure& structure,
                                   std::size_t site, double cutoff,
                                   double tolerance = 1e-6);

/// Coordination numbers per shell (convenience for tests and reports).
std::vector<std::size_t> shell_coordinations(const Structure& structure,
                                             std::size_t site, double cutoff,
                                             double tolerance = 1e-6);

}  // namespace wlsms::lattice
