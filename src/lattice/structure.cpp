#include "lattice/structure.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace wlsms::lattice {

namespace {

double wrap_coordinate(double x, double edge) {
  const double wrapped = x - edge * std::floor(x / edge);
  // floor can leave exactly `edge` for tiny negatives; fold it back.
  return (wrapped >= edge) ? wrapped - edge : wrapped;
}

double min_image_component(double d, double edge) {
  d -= edge * std::round(d / edge);
  return d;
}

}  // namespace

Structure Structure::finite(std::vector<Vec3> positions) {
  WLSMS_EXPECTS(!positions.empty());
  Structure s;
  s.positions_ = std::move(positions);
  s.periodic_ = false;
  return s;
}

Structure Structure::periodic(std::vector<Vec3> positions, Vec3 box) {
  WLSMS_EXPECTS(!positions.empty());
  WLSMS_EXPECTS(box.x > 0.0 && box.y > 0.0 && box.z > 0.0);
  Structure s;
  s.positions_ = std::move(positions);
  for (Vec3& p : s.positions_) {
    p.x = wrap_coordinate(p.x, box.x);
    p.y = wrap_coordinate(p.y, box.y);
    p.z = wrap_coordinate(p.z, box.z);
  }
  s.periodic_ = true;
  s.box_ = box;
  return s;
}

Vec3 Structure::displacement(std::size_t i, std::size_t j) const {
  WLSMS_EXPECTS(i < size() && j < size());
  Vec3 d = positions_[j] - positions_[i];
  if (periodic_) {
    d.x = min_image_component(d.x, box_.x);
    d.y = min_image_component(d.y, box_.y);
    d.z = min_image_component(d.z, box_.z);
  }
  return d;
}

double Structure::distance(std::size_t i, std::size_t j) const {
  return displacement(i, j).norm();
}

std::vector<Neighbor> Structure::neighbors_within(std::size_t i,
                                                  double cutoff) const {
  WLSMS_EXPECTS(i < size());
  WLSMS_EXPECTS(cutoff > 0.0);
  std::vector<Neighbor> out;
  const Vec3 center = positions_[i];

  if (!periodic_) {
    for (std::size_t j = 0; j < size(); ++j) {
      if (j == i) continue;
      const Vec3 d = positions_[j] - center;
      const double r = d.norm();
      if (r < cutoff) out.push_back({j, d, r});
    }
  } else {
    // Enumerate enough image cells that every image within the cutoff is
    // found even when the cutoff exceeds the box (the paper's 16-atom cell
    // with an 11.5 a0 LIZ is exactly this situation).
    const int mx = static_cast<int>(std::ceil(cutoff / box_.x));
    const int my = static_cast<int>(std::ceil(cutoff / box_.y));
    const int mz = static_cast<int>(std::ceil(cutoff / box_.z));
    for (std::size_t j = 0; j < size(); ++j) {
      const Vec3 base = positions_[j] - center;
      for (int cx = -mx; cx <= mx; ++cx)
        for (int cy = -my; cy <= my; ++cy)
          for (int cz = -mz; cz <= mz; ++cz) {
            const Vec3 d = base + Vec3{cx * box_.x, cy * box_.y, cz * box_.z};
            const double r = d.norm();
            if (r < cutoff && r > 1e-12) out.push_back({j, d, r});
          }
    }
  }

  std::sort(out.begin(), out.end(), [](const Neighbor& a, const Neighbor& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.site < b.site;
  });
  return out;
}

std::size_t basis_size(CubicLattice lattice) {
  switch (lattice) {
    case CubicLattice::kSimpleCubic:
      return 1;
    case CubicLattice::kBcc:
      return 2;
    case CubicLattice::kFcc:
      return 4;
  }
  return 0;
}

Structure make_supercell(CubicLattice lattice, double a, std::size_t nx,
                         std::size_t ny, std::size_t nz) {
  WLSMS_EXPECTS(a > 0.0);
  WLSMS_EXPECTS(nx > 0 && ny > 0 && nz > 0);

  std::vector<Vec3> basis;
  switch (lattice) {
    case CubicLattice::kSimpleCubic:
      basis = {{0.0, 0.0, 0.0}};
      break;
    case CubicLattice::kBcc:
      basis = {{0.0, 0.0, 0.0}, {0.5, 0.5, 0.5}};
      break;
    case CubicLattice::kFcc:
      basis = {{0.0, 0.0, 0.0}, {0.5, 0.5, 0.0}, {0.5, 0.0, 0.5},
               {0.0, 0.5, 0.5}};
      break;
  }

  std::vector<Vec3> positions;
  positions.reserve(nx * ny * nz * basis.size());
  for (std::size_t cx = 0; cx < nx; ++cx)
    for (std::size_t cy = 0; cy < ny; ++cy)
      for (std::size_t cz = 0; cz < nz; ++cz)
        for (const Vec3& b : basis)
          positions.push_back({(static_cast<double>(cx) + b.x) * a,
                               (static_cast<double>(cy) + b.y) * a,
                               (static_cast<double>(cz) + b.z) * a});

  return Structure::periodic(
      std::move(positions),
      {static_cast<double>(nx) * a, static_cast<double>(ny) * a,
       static_cast<double>(nz) * a});
}

Structure make_fe_supercell(std::size_t n) {
  return make_supercell(CubicLattice::kBcc, units::fe_lattice_parameter_a0, n,
                        n, n);
}

}  // namespace wlsms::lattice
