#pragma once

/// \file cluster.hpp
/// Finite nanoparticle geometries. The paper motivates WL-LSMS with magnetic
/// nanoparticles of "around one hundred to a few thousand atoms" whose
/// surface region drives the interesting physics (§I, §V: FePt switching
/// barriers). These builders cut free-standing clusters out of a cubic
/// lattice so the examples and benches can study exactly that regime.

#include <cstddef>
#include <vector>

#include "lattice/structure.hpp"

namespace wlsms::lattice {

/// Spherical cluster: all lattice sites within `radius` (a0) of a chosen
/// centre. `center_on_atom` picks the sphere centre on an atom (true) or on
/// the cube-cell midpoint between atoms (false), which changes the exact
/// atom count for the same radius.
Structure make_spherical_cluster(CubicLattice lattice, double a, double radius,
                                 bool center_on_atom = true);

/// Cubic cluster of nx x ny x nz cells with open boundaries.
Structure make_cubic_cluster(CubicLattice lattice, double a, std::size_t nx,
                             std::size_t ny, std::size_t nz);

/// Indices of surface atoms: atoms whose first-shell coordination is below
/// the bulk value `bulk_coordination` at nearest-neighbour cutoff
/// `nn_cutoff`. Used to quantify the surface fraction the paper discusses.
std::vector<std::size_t> surface_atoms(const Structure& cluster,
                                       double nn_cutoff,
                                       std::size_t bulk_coordination);

}  // namespace wlsms::lattice
