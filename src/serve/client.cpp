#include "serve/client.hpp"

#include <cerrno>
#include <cstring>
#include <utility>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/error.hpp"
#include "common/serial.hpp"
#include "obs/metrics.hpp"
#include "obs/prometheus.hpp"
#include "obs/trace.hpp"
#include "serve/socket_util.hpp"

namespace wlsms::serve {

namespace {

/// Reads exactly one frame — header, then that frame's payload, and not a
/// byte more — within `deadline`. The greedy alternative (buffer whatever
/// is readable) would swallow frames the daemon queued right behind the
/// welcome (replayed results, say). Throws CommError on EOF, timeout, or a
/// corrupt length.
comm::Message read_one_frame_exact(int fd,
                                   comm::StreamClock::time_point deadline) {
  const auto read_exact = [&](void* out, std::size_t n) {
    std::byte* at = static_cast<std::byte*>(out);
    std::size_t done = 0;
    while (done < n) {
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              deadline - comm::StreamClock::now());
      if (remaining.count() <= 0)
        throw comm::CommError("serve client: handshake timed out");
      struct pollfd pfd{fd, POLLIN, 0};
      const int ready =
          ::poll(&pfd, 1, static_cast<int>(remaining.count()));
      if (ready < 0 && errno == EINTR) continue;
      if (ready <= 0)
        throw comm::CommError("serve client: handshake timed out");
      const ssize_t got = ::read(fd, at + done, n - done);
      if (got == 0)
        throw comm::CommError("serve client: daemon closed the connection");
      if (got < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
          continue;
        throw comm::CommError(std::string("serve client: read failed: ") +
                              std::strerror(errno));
      }
      done += static_cast<std::size_t>(got);
    }
  };

  std::uint32_t header[2] = {0, 0};
  read_exact(header, sizeof(header));
  const std::uint32_t length = header[0];
  if (length < 4 || length > comm::kMaxFrameBytes)
    throw comm::CommError("serve client: corrupt frame length in handshake");
  comm::Message message;
  message.tag = header[1];
  message.payload.resize(length - 4);
  if (!message.payload.empty())
    read_exact(message.payload.data(), message.payload.size());
  return message;
}

}  // namespace

ServeClient::ServeClient(const std::string& address, ClientOptions options)
    : options_(std::move(options)) {
  net::Socket sock =
      net::connect_with_timeout(address, options_.connect_timeout);

  ServeHello hello;
  hello.tenant = options_.tenant;
  hello.resume_session = options_.resume_session;
  hello.resume_token = options_.resume_token;
  hello.trace_node = obs::local_trace_node();
  hello.t0_us = obs::trace_now_us();
  comm::Message hello_frame;
  hello_frame.tag = kTagServeHello;
  hello_frame.payload = encode_serve_hello(hello);
  const std::vector<std::byte> bytes = comm::frame_bytes(hello_frame);
  const auto deadline = comm::StreamClock::now() + options_.handshake_timeout;
  if (!comm::write_all(sock.get(), bytes.data(), bytes.size(), deadline))
    throw comm::CommError("serve client: hello write failed");

  comm::Message reply = read_one_frame_exact(sock.get(), deadline);
  while (reply.tag == comm::kTagHeartbeat)
    reply = read_one_frame_exact(sock.get(), deadline);
  const std::uint64_t t3_us = obs::trace_now_us();  // welcome receipt time
  if (reply.tag == kTagServeReject)
    throw comm::CommError("serve client: handshake rejected by daemon");
  if (reply.tag != kTagServeWelcome)
    throw comm::CommError("serve client: unexpected handshake reply tag " +
                          std::to_string(reply.tag));
  ServeWelcome welcome;
  try {
    welcome = decode_serve_welcome(reply.payload);
  } catch (const serial::SerializationError& error) {
    throw comm::CommError(std::string("serve client: corrupt welcome: ") +
                          error.what());
  }
  session_ = welcome.session;
  resume_token_ = welcome.resume_token;
  n_atoms_ = static_cast<std::size_t>(welcome.n_atoms);
  resumed_ = welcome.resumed;
  // The welcome closes the four-timestamp clock probe the hello opened:
  // offset = daemon clock - client clock, so the client's trace file can be
  // shifted into the daemon's timebase by tools/trace_merge.py.
  if (welcome.trace_node != 0) {
    const double offset_us =
        ((static_cast<double>(welcome.t1_us) -
          static_cast<double>(hello.t0_us)) +
         (static_cast<double>(welcome.t2_us) - static_cast<double>(t3_us))) /
        2.0;
    obs::set_clock_offset(offset_us, welcome.trace_node);
    obs::Registry::instance().gauge("comm.clock_offset_us").set(offset_us);
  }
  // A resumed session already owes us results: the replayed ones and the
  // re-enqueued requests (some of which may come back as rejects).
  outstanding_ =
      static_cast<std::size_t>(welcome.n_replayed + welcome.n_pending);
  fd_ = sock.release();
}

ServeClient::~ServeClient() {
  if (fd_ >= 0) ::close(fd_);
}

void ServeClient::abort_socket() {
  if (fd_ < 0) return;
  (void)::shutdown(fd_, SHUT_RDWR);
  ::close(fd_);
  fd_ = -1;
}

void ServeClient::submit(wl::EnergyRequest request) {
  if (fd_ < 0) throw comm::CommError("serve client: connection is closed");
  comm::Message message;
  message.tag = kTagServeSubmit;
  message.payload = encode_serve_submit(request);
  const std::vector<std::byte> bytes = comm::frame_bytes(message);
  if (!comm::write_all(fd_, bytes.data(), bytes.size(),
                       comm::StreamClock::now() + options_.send_deadline)) {
    abort_socket();
    throw comm::CommError("serve client: submit write failed");
  }
  in_flight_[request.ticket] = {request.walker, obs::trace_now_us()};
  ++outstanding_;
}

wl::EnergyResult ServeClient::pop_completed(const comm::Message& frame) {
  if (frame.tag == kTagServeResult) {
    const ServeResultFrame reply = decode_serve_result_frame(frame.payload);
    const auto it = in_flight_.find(reply.result.ticket);
    if (it != in_flight_.end()) {
      // Wire time = round trip minus the daemon's own stage vector: what
      // the network (plus daemon scheduling slack) cost this request.
      const std::uint64_t now_us = obs::trace_now_us();
      const std::uint64_t round_trip_us =
          now_us > it->second.submitted_us ? now_us - it->second.submitted_us
                                           : 0;
      const std::uint64_t daemon_us = reply.stages.queue_us +
                                      reply.stages.solve_us +
                                      reply.stages.serialize_us;
      obs::Registry::instance()
          .histogram("serve.client.wire_ms",
                     obs::exponential_bounds(0.01, 4.0, 12))
          .observe(static_cast<double>(round_trip_us > daemon_us
                                           ? round_trip_us - daemon_us
                                           : 0) /
                   1000.0);
      in_flight_.erase(it);
    }
    --outstanding_;
    return reply.result;
  }
  // ServeReject: admission control refused the request; surface it through
  // the same failed-result path a dead rank uses.
  const ServeReject reject = decode_serve_reject(frame.payload);
  wl::EnergyResult result;
  result.ticket = reject.ticket;
  const auto it = in_flight_.find(reject.ticket);
  result.walker = it == in_flight_.end() ? 0 : it->second.walker;
  if (it != in_flight_.end()) in_flight_.erase(it);
  result.failed = true;
  --outstanding_;
  return result;
}

wl::EnergyResult ServeClient::retrieve() {
  if (outstanding_ == 0)
    throw Error("serve client: retrieve() with nothing outstanding");
  if (fd_ < 0) throw comm::CommError("serve client: connection is closed");

  const auto deadline =
      comm::StreamClock::now() + options_.retrieve_timeout;
  comm::Message frame;
  while (true) {
    try {
      while (rx_.pop(frame)) {
        if (frame.tag == comm::kTagHeartbeat) continue;
        if (frame.tag == kTagServeResult || frame.tag == kTagServeReject)
          return pop_completed(frame);
        throw comm::CommError("serve client: unexpected frame tag " +
                              std::to_string(frame.tag));
      }
    } catch (const serial::SerializationError& error) {
      // Corrupt payload or corrupt frame length: the stream is unusable.
      abort_socket();
      throw comm::CommError(std::string("serve client: corrupt frame: ") +
                            error.what());
    } catch (const comm::CommError&) {
      abort_socket();
      throw;
    }

    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - comm::StreamClock::now());
    if (remaining.count() <= 0)
      throw comm::CommError("serve client: retrieve timed out");
    struct pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(remaining.count()));
    if (ready < 0 && errno == EINTR) continue;
    if (ready <= 0)
      throw comm::CommError("serve client: retrieve timed out");
    char buffer[65536];
    const ssize_t n = ::read(fd_, buffer, sizeof(buffer));
    if (n == 0) {
      abort_socket();
      throw comm::CommError("serve client: daemon closed the connection");
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
        continue;
      abort_socket();
      throw comm::CommError(std::string("serve client: read failed: ") +
                            std::strerror(errno));
    }
    rx_.push(buffer, static_cast<std::size_t>(n));
  }
}

}  // namespace wlsms::serve
