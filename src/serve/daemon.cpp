#include "serve/daemon.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <random>
#include <utility>

#include <dirent.h>
#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include "comm/framing.hpp"
#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/serial.hpp"
#include "linalg/blas.hpp"
#include "obs/metrics.hpp"
#include "obs/prometheus.hpp"
#include "obs/trace.hpp"
#include "serve/socket_util.hpp"

namespace wlsms::serve {

namespace {

obs::Gauge& sessions_gauge() {
  static obs::Gauge& gauge = obs::Registry::instance().gauge("serve.sessions");
  return gauge;
}

/// Shared bucket edges of every serve.stage_ms.* series (aggregate and
/// per-tenant): the registry rejects re-registration with different bounds,
/// so a single source of truth keeps all sites agreeing.
const std::vector<double>& stage_bounds() {
  static const std::vector<double> bounds =
      obs::exponential_bounds(0.01, 4.0, 12);
  return bounds;
}

void observe_stage(const std::string& stage, const std::string& tenant_label,
                   std::uint64_t micros) {
  const double ms = static_cast<double>(micros) / 1000.0;
  obs::Registry& registry = obs::Registry::instance();
  registry.histogram("serve.stage_ms." + stage, stage_bounds()).observe(ms);
  registry
      .histogram("serve.tenant." + tenant_label + ".stage_ms." + stage,
                 stage_bounds())
      .observe(ms);
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

ServeReject::Reason reject_reason(BatchScheduler::Admission admission) {
  return admission == BatchScheduler::Admission::kQueueFull
             ? ServeReject::Reason::kQueueFull
             : ServeReject::Reason::kQuotaExceeded;
}

/// Whole-file slurp; empty on any error (a missing file and an unreadable
/// one are the same to the resume path: no checkpoint).
std::vector<std::byte> read_file_bytes(const std::string& path) {
  std::vector<std::byte> bytes;
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return bytes;
  char chunk[4096];
  while (in.read(chunk, sizeof(chunk)) || in.gcount() > 0)
    bytes.insert(bytes.end(), reinterpret_cast<std::byte*>(chunk),
                 reinterpret_cast<std::byte*>(chunk) + in.gcount());
  return bytes;
}

/// splitmix64: cheap, well-mixed resume tokens (never zero).
std::uint64_t next_token(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return (z ^ (z >> 31)) | 1ull;
}

}  // namespace

Daemon::Daemon(std::shared_ptr<const lsms::LsmsSolver> solver,
               ServeOptions options)
    : solver_(std::move(solver)),
      options_(std::move(options)),
      scheduler_(solver_, options_.limits) {
  net::Socket listener = net::make_listener(options_.listen, 32, address_);
  set_nonblocking(listener.get());
  listener_ = listener.release();

  int pipe_fds[2] = {-1, -1};
  if (::pipe(pipe_fds) != 0) {
    ::close(listener_);
    listener_ = -1;
    throw comm::CommError(std::string("serve: self-pipe failed: ") +
                          std::strerror(errno));
  }
  stop_read_ = pipe_fds[0];
  stop_write_ = pipe_fds[1];
  set_nonblocking(stop_read_);
  net::set_cloexec(stop_read_);
  net::set_cloexec(stop_write_);

  token_state_ = (static_cast<std::uint64_t>(std::random_device{}()) << 32) ^
                 std::random_device{}();
  seed_next_session();

  if (options_.on_listening) options_.on_listening(address_);
}

void Daemon::seed_next_session() {
  if (options_.checkpoint_dir.empty()) return;
  DIR* dir = ::opendir(options_.checkpoint_dir.c_str());
  if (dir == nullptr) return;
  // Checkpoints from previous runs own their session ids: a fresh client
  // must never be handed one, or it would first block that tenant's resume
  // and then overwrite the file on disconnect.
  while (struct dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    constexpr std::size_t kFixed = 13;  // "session-" + ".wlsm"
    if (name.size() <= kFixed || name.compare(0, 8, "session-") != 0 ||
        name.compare(name.size() - 5, 5, ".wlsm") != 0)
      continue;
    const std::string digits = name.substr(8, name.size() - kFixed);
    if (digits.find_first_not_of("0123456789") != std::string::npos) continue;
    errno = 0;
    const unsigned long long id = std::strtoull(digits.c_str(), nullptr, 10);
    if (errno != 0) continue;  // out-of-range id: not one we issued
    if (id >= next_session_) next_session_ = id + 1;
  }
  ::closedir(dir);
}

const std::string& Daemon::tenant_label(const std::string& tenant) {
  static const std::string kOther = "other";
  const auto it = tenant_labels_.find(tenant);
  if (it != tenant_labels_.end()) return *it;
  if (tenant_labels_.size() < options_.max_tenant_series)
    return *tenant_labels_.insert(tenant).first;
  return kOther;
}

Daemon::~Daemon() {
  for (auto& [fd, conn] : connections_) ::close(fd);
  connections_.clear();
  if (listener_ >= 0) ::close(listener_);
  if (stop_read_ >= 0) ::close(stop_read_);
  if (stop_write_ >= 0) ::close(stop_write_);
}

void Daemon::stop() {
  const char byte = 's';
  (void)!::write(stop_write_, &byte, 1);
}

std::string Daemon::checkpoint_path(std::uint64_t session) const {
  return options_.checkpoint_dir + "/session-" + std::to_string(session) +
         ".wlsm";
}

int Daemon::poll_timeout_ms() const {
  const auto now = std::chrono::steady_clock::now();
  std::optional<std::chrono::steady_clock::time_point> deadline;
  if (scheduler_.pending() >= options_.limits.max_batch) return 0;
  if (const auto oldest = scheduler_.oldest_pending_since())
    deadline = *oldest + options_.limits.batch_window;
  for (const auto& [fd, conn] : connections_)
    if (!conn.handshaken) {
      const auto expiry = conn.connected_at + options_.handshake_timeout;
      if (!deadline || expiry < *deadline) deadline = expiry;
    }
  if (!deadline) return -1;
  const auto remaining =
      std::chrono::duration_cast<std::chrono::milliseconds>(*deadline - now);
  return remaining.count() < 0 ? 0 : static_cast<int>(remaining.count() + 1);
}

void Daemon::run() {
  // Pin the batch-GEMM worker count for the daemon's lifetime if asked.
  const std::size_t saved_batch_threads = linalg::zgemm_batch_threads();
  if (options_.gemm_batch_threads > 0)
    linalg::set_zgemm_batch_threads(options_.gemm_batch_threads);

  bool stopping = false;
  std::vector<struct pollfd> pfds;
  while (!stopping) {
    pfds.clear();
    pfds.push_back({stop_read_, POLLIN, 0});
    pfds.push_back({listener_, POLLIN, 0});
    for (const auto& [fd, conn] : connections_)
      pfds.push_back({fd, POLLIN, 0});

    const int rc = ::poll(pfds.data(), pfds.size(), poll_timeout_ms());
    if (rc < 0 && errno != EINTR) break;

    if (pfds[0].revents & POLLIN) {
      char drain[64];
      while (::read(stop_read_, drain, sizeof(drain)) > 0) {
      }
      stopping = true;
    }
    if (!stopping) {
      if (pfds[1].revents & (POLLIN | POLLERR)) accept_pending();
      for (std::size_t i = 2; i < pfds.size(); ++i)
        if (pfds[i].revents & (POLLIN | POLLHUP | POLLERR))
          if (connections_.count(pfds[i].fd) != 0)
            read_connection(pfds[i].fd);
      expire_handshakes();
    }
    dispatch_ready_batches();
  }

  // Drain: solve and route everything still pending (the batch window no
  // longer applies), then checkpoint and drop every session so nothing is
  // silently lost.
  dispatch_ready_batches(/*force=*/true);
  while (!connections_.empty()) {
    const int fd = connections_.begin()->first;
    const std::uint64_t session = connections_.begin()->second.session;
    ::close(fd);
    connections_.erase(connections_.begin());
    if (session != 0 && sessions_.count(session) != 0)
      sessions_[session].fd = -1;
  }
  while (!sessions_.empty()) close_session(sessions_.begin()->first);

  linalg::set_zgemm_batch_threads(saved_batch_threads);
}

void Daemon::accept_pending() {
  while (true) {
    const int fd = ::accept(listener_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN, or a transient accept error: try later
    net::set_nodelay(fd);
    net::set_cloexec(fd);
    set_nonblocking(fd);
    if (options_.client_sndbuf > 0) {
      const int bytes = static_cast<int>(options_.client_sndbuf);
      (void)::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &bytes, sizeof(bytes));
    }
    Connection conn;
    conn.connected_at = std::chrono::steady_clock::now();
    connections_.emplace(fd, std::move(conn));
  }
}

void Daemon::read_connection(int fd) {
  char buffer[65536];
  while (true) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n > 0) {
      Connection& conn = connections_[fd];
      try {
        conn.rx.push(buffer, static_cast<std::size_t>(n));
        comm::Message frame;
        while (conn.rx.pop(frame))
          if (!handle_frame(fd, frame)) {
            drop_connection(fd);
            return;
          }
      } catch (const comm::CommError&) {
        // Corrupt frame length: the stream cannot be resynchronized.
        drop_connection(fd);
        return;
      } catch (const serial::SerializationError&) {
        drop_connection(fd);
        return;
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    drop_connection(fd);  // EOF or hard error
    return;
  }
}

bool Daemon::handle_frame(int fd, const comm::Message& frame) {
  if (frame.tag == comm::kTagHeartbeat) return true;
  if (frame.tag == kTagServeStatus) {
    // Introspection probe: answer with the live metrics registry rendered
    // as Prometheus text. Accepted before any handshake — a status probe is
    // not a session and holds no daemon state.
    decode_status_request(frame.payload);  // throws on garbage
    return send_frame(fd, kTagServeStatusReply,
                      encode_status_text(obs::expose_prometheus()));
  }
  const Connection& conn = connections_[fd];
  if (!conn.handshaken) {
    if (frame.tag != kTagServeHello) return false;
    return handle_hello(fd, frame.payload);
  }
  if (frame.tag != kTagServeSubmit) return false;
  return handle_submit(fd, frame.payload);
}

bool Daemon::handle_hello(int fd, const std::vector<std::byte>& payload) {
  const std::uint64_t t1_us = obs::trace_now_us();  // hello receipt time
  const ServeHello hello = decode_serve_hello(payload);  // throws on garbage
  Connection& conn = connections_[fd];

  std::uint64_t session = 0;
  SessionCheckpoint restored;
  bool resumed = false;
  if (hello.resume_session != 0) {
    // Resume: the checkpoint file is the session's entire disconnected
    // state; tenant + token are the proof of ownership.
    bool valid = !options_.checkpoint_dir.empty() &&
                 sessions_.count(hello.resume_session) == 0;
    if (valid) {
      const std::vector<std::byte> bytes =
          read_file_bytes(checkpoint_path(hello.resume_session));
      valid = !bytes.empty();
      if (valid) {
        try {
          restored = decode_session_checkpoint(bytes);
        } catch (const serial::SerializationError&) {
          valid = false;
        }
        valid = valid && restored.session == hello.resume_session &&
                restored.tenant == hello.tenant &&
                restored.resume_token == hello.resume_token;
      }
    }
    if (!valid) {
      ServeReject reject;
      reject.reason = ServeReject::Reason::kBadRequest;
      (void)send_frame(fd, kTagServeReject, encode_serve_reject(reject));
      return false;
    }
    session = restored.session;
    resumed = true;
  } else {
    session = next_session_++;
  }

  Session state;
  state.tenant = hello.tenant;
  state.metric_label = tenant_label(hello.tenant);
  state.resume_token =
      resumed ? restored.resume_token : next_token(token_state_);
  state.fd = fd;
  if (resumed)
    state.undelivered.assign(restored.undelivered.begin(),
                             restored.undelivered.end());
  sessions_.emplace(session, std::move(state));
  if (resumed && session >= next_session_) next_session_ = session + 1;
  conn.handshaken = true;
  conn.session = session;
  sessions_gauge().set(static_cast<double>(sessions_.size()));
  obs::Registry::instance()
      .counter("serve.tenant." + sessions_[session].metric_label + ".sessions")
      .inc();

  // Re-enqueue the checkpointed requests before any wire traffic: from here
  // on the scheduler plus the session's undelivered deque ARE the restored
  // state, so a disconnect at any point of the replay below re-checkpoints
  // all of it faithfully. Requests the admission path now refuses (the
  // daemon may have filled up meanwhile) come back as ordinary rejects
  // after the replay.
  std::vector<std::pair<std::uint64_t, BatchScheduler::Admission>> refused;
  if (resumed)
    for (wl::EnergyRequest& request : restored.pending) {
      const std::uint64_t ticket = request.ticket;
      const BatchScheduler::Admission admission =
          scheduler_.submit(session, std::move(request));
      if (admission != BatchScheduler::Admission::kAccepted)
        refused.emplace_back(ticket, admission);
    }

  ServeWelcome welcome;
  welcome.session = session;
  welcome.resume_token = sessions_[session].resume_token;
  welcome.n_atoms = scheduler_.n_atoms();
  welcome.resumed = resumed;
  welcome.n_replayed = resumed ? restored.undelivered.size() : 0;
  welcome.n_pending = resumed ? restored.pending.size() : 0;
  welcome.trace_node = obs::local_trace_node();
  welcome.t1_us = t1_us;
  welcome.t2_us = obs::trace_now_us();  // welcome send time
  if (!send_frame(fd, kTagServeWelcome, encode_serve_welcome(welcome)))
    return false;

  if (resumed) {
    // Replay results computed while disconnected; each one leaves the live
    // deque only once its send lands, so a client that dies mid-replay
    // keeps the unsent tail checkpointed instead of losing it.
    Session& live = sessions_[session];
    while (!live.undelivered.empty()) {
      if (!send_frame(fd, kTagServeResult,
                      encode_serve_result(live.undelivered.front())))
        return false;
      live.undelivered.pop_front();
    }
    for (const auto& [ticket, admission] : refused) {
      ServeReject reject;
      reject.ticket = ticket;
      reject.reason = reject_reason(admission);
      if (!send_frame(fd, kTagServeReject, encode_serve_reject(reject)))
        return false;
    }
    (void)std::remove(checkpoint_path(session).c_str());
  }
  return true;
}

bool Daemon::handle_submit(int fd, const std::vector<std::byte>& payload) {
  wl::EnergyRequest request = decode_serve_submit(payload);  // throws
  const std::uint64_t session = connections_[fd].session;
  Session& state = sessions_[session];
  obs::Registry& registry = obs::Registry::instance();

  if (request.config.size() != scheduler_.n_atoms()) {
    registry.counter("serve.tenant." + state.metric_label + ".rejected").inc();
    ServeReject reject;
    reject.ticket = request.ticket;
    reject.reason = ServeReject::Reason::kBadRequest;
    return send_frame(fd, kTagServeReject, encode_serve_reject(reject));
  }

  const std::uint64_t ticket = request.ticket;
  const BatchScheduler::Admission admission =
      scheduler_.submit(session, std::move(request));
  if (admission == BatchScheduler::Admission::kAccepted) {
    registry.counter("serve.tenant." + state.metric_label + ".accepted").inc();
    return true;
  }
  registry.counter("serve.tenant." + state.metric_label + ".rejected").inc();
  ServeReject reject;
  reject.ticket = ticket;
  reject.reason = reject_reason(admission);
  return send_frame(fd, kTagServeReject, encode_serve_reject(reject));
}

void Daemon::dispatch_ready_batches(bool force) {
  while (true) {
    const std::size_t pending = scheduler_.pending();
    if (pending == 0) break;
    if (!force && pending < options_.limits.max_batch) {
      const auto oldest = scheduler_.oldest_pending_since();
      if (!oldest || std::chrono::steady_clock::now() - *oldest <
                         options_.limits.batch_window)
        break;
    }
    completed_.clear();
    scheduler_.run_next_batch(completed_);
    for (const BatchScheduler::Completed& done : completed_) deliver(done);
    // A client that died mid-batch was unhooked inside deliver(); finish
    // the teardown now that every completion of this batch is routed.
    std::vector<std::uint64_t> orphaned;
    for (const auto& [session, state] : sessions_)
      if (state.fd < 0) orphaned.push_back(session);
    for (std::uint64_t session : orphaned) close_session(session);
  }
}

void Daemon::deliver(const BatchScheduler::Completed& done) {
  const auto it = sessions_.find(done.session);
  if (it == sessions_.end()) return;  // session closed while solving
  Session& state = it->second;
  if (state.fd < 0) {
    // Disconnected mid-solve: the result survives for resume; its stage
    // vector does not (a replayed result reports zero stages).
    state.undelivered.push_back(done.result);
    return;
  }
  // serialize_us closes the daemon-side critical path: solved (admitted +
  // queue + solve) -> this result frame encoded.
  StageBreakdown stages = done.stages;
  const std::uint64_t solved_us =
      done.admitted_us + stages.queue_us + stages.solve_us;
  const std::uint64_t encoding_us = obs::trace_now_us();
  stages.serialize_us = encoding_us > solved_us ? encoding_us - solved_us : 0;
  const bool sent = send_frame(state.fd, kTagServeResult,
                               encode_serve_result(done.result, stages));
  const std::uint64_t sent_us = obs::trace_now_us();
  if (!sent) {
    // The socket is gone; keep the result for a future resume and unhook
    // the connection. close_session runs after the batch finishes routing.
    state.undelivered.push_back(done.result);
    ::close(state.fd);
    connections_.erase(state.fd);
    state.fd = -1;
    return;
  }
  obs::Registry::instance()
      .counter("serve.tenant." + state.metric_label + ".results")
      .inc();
  // Critical-path attribution: per-stage histograms (aggregate + tenant)
  // and one serve.request span adopted under the client's submitting span,
  // covering admission through the delivered write.
  observe_stage("queue_wait", state.metric_label, stages.queue_us);
  observe_stage("solve", state.metric_label, stages.solve_us);
  observe_stage("deliver", state.metric_label,
                sent_us > encoding_us ? sent_us - encoding_us : 0);
  if (done.admitted_us != 0)
    obs::emit_span("serve.request", done.admitted_us, sent_us, done.trace);
}

bool Daemon::send_frame(int fd, std::uint32_t tag,
                        std::vector<std::byte> payload) {
  comm::Message message;
  message.tag = tag;
  message.payload = std::move(payload);
  const std::vector<std::byte> frame = comm::frame_bytes(message);
  return comm::write_all(fd, frame.data(), frame.size(),
                         comm::StreamClock::now() + options_.send_deadline);
}

void Daemon::drop_connection(int fd) {
  const auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  const bool handshaken = it->second.handshaken;
  const std::uint64_t session = it->second.session;
  ::close(fd);
  connections_.erase(it);
  if (handshaken && sessions_.count(session) != 0) {
    sessions_[session].fd = -1;
    close_session(session);
  }
}

void Daemon::close_session(std::uint64_t session) {
  const auto it = sessions_.find(session);
  if (it == sessions_.end()) return;
  std::vector<wl::EnergyRequest> pending = scheduler_.take_session(session);
  if (!options_.checkpoint_dir.empty() &&
      may_write_checkpoint(session, it->second)) {
    SessionCheckpoint checkpoint;
    checkpoint.session = session;
    checkpoint.resume_token = it->second.resume_token;
    checkpoint.tenant = it->second.tenant;
    checkpoint.pending = std::move(pending);
    checkpoint.undelivered.assign(it->second.undelivered.begin(),
                                  it->second.undelivered.end());
    const std::vector<std::byte> bytes =
        encode_session_checkpoint(checkpoint);
    std::ofstream out(checkpoint_path(session), std::ios::binary);
    if (out.good())
      out.write(reinterpret_cast<const char*>(bytes.data()),
                static_cast<std::streamsize>(bytes.size()));
  }
  sessions_.erase(it);
  sessions_gauge().set(static_cast<double>(sessions_.size()));
}

bool Daemon::may_write_checkpoint(std::uint64_t session,
                                  const Session& state) const {
  // Defense in depth against id aliasing: never clobber a checkpoint that
  // proves to belong to a different tenant/token (a stale file from an
  // earlier daemon run). A corrupt or unreadable file holds nothing
  // recoverable, so overwriting it is fine.
  const std::vector<std::byte> bytes =
      read_file_bytes(checkpoint_path(session));
  if (bytes.empty()) return true;
  SessionCheckpoint existing;
  try {
    existing = decode_session_checkpoint(bytes);
  } catch (const serial::SerializationError&) {
    return true;
  }
  if (existing.tenant == state.tenant &&
      existing.resume_token == state.resume_token)
    return true;
  log_warn("serve: refusing to overwrite checkpoint of session ", session,
           " — it belongs to tenant '", existing.tenant,
           "', not the departing tenant '", state.tenant, "'");
  return false;
}

void Daemon::expire_handshakes() {
  const auto now = std::chrono::steady_clock::now();
  std::vector<int> expired;
  for (const auto& [fd, conn] : connections_)
    if (!conn.handshaken &&
        now - conn.connected_at >= options_.handshake_timeout)
      expired.push_back(fd);
  for (int fd : expired) drop_connection(fd);
}

}  // namespace wlsms::serve
