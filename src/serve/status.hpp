#pragma once

/// \file status.hpp
/// Live introspection endpoint shared by the daemon and the distributed
/// controller, plus the client side of the Status conversation.
///
/// The daemon answers kTagServeStatus frames inside its own poll loop (it
/// already owns a listener); a long-running controller has no listener of
/// its own, so StatusServer gives it one: a background thread that accepts
/// connections, answers exactly one Status request per connection with the
/// process's metrics registry rendered as Prometheus text, and closes. The
/// conversation rides the same [u32 length][u32 tag][WLSM payload] framing
/// as everything else, so `wlsms status host:port` works identically
/// against a daemon and a controller.

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

namespace wlsms::serve {

/// Background one-request-per-connection Prometheus exposition server.
/// Construct (binds + listens + spawns the thread), read address(), destroy
/// to stop. The reply is rendered at request time, so it always reflects
/// the live registry.
class StatusServer {
 public:
  /// Binds `listen` ("host:port"; port 0 picks an ephemeral port).
  explicit StatusServer(const std::string& listen);
  ~StatusServer();
  StatusServer(const StatusServer&) = delete;
  StatusServer& operator=(const StatusServer&) = delete;

  /// Resolved listen address (ephemeral port filled in).
  const std::string& address() const { return address_; }

 private:
  void serve_loop();

  std::string address_;
  int listener_ = -1;
  int stop_read_ = -1;
  int stop_write_ = -1;
  std::thread thread_;
};

/// Client side: connects to `address`, sends one Status request, and
/// returns the Prometheus text reply. Throws comm::CommError on connect
/// failure, timeout, or a malformed reply.
std::string fetch_status(const std::string& address,
                         std::chrono::milliseconds timeout =
                             std::chrono::milliseconds{5000});

}  // namespace wlsms::serve
