#pragma once

/// \file scheduler.hpp
/// The daemon's request scheduler: admission control over a bounded pending
/// queue with per-session quotas, round-robin batch formation across
/// sessions, and the batched solve itself.
///
/// Coalescing (DESIGN.md §12): every pending request is an independent
/// walker configuration of the same structure, so their per-atom LIZ solves
/// at a given contour point share the (geometry, contour-point)
/// SchurTemplates. One batch of B requests becomes lock-step Schur
/// eliminations whose trailing updates go out as B-wide zgemm_view_batch
/// dispatches — the cross-walker GEMM batching the paper's traffic shape
/// (M walkers, shared solver substrate) makes possible and a GPU backend
/// wants. Under light load (a lone pending request) the scheduler falls
/// back to a real SynchronousEnergyService, and because the batched path
/// reorders work only between independent matrices, both paths return
/// bit-identical energies.

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "lsms/solver.hpp"
#include "serve/protocol.hpp"
#include "wl/energy_function.hpp"
#include "wl/energy_service.hpp"

namespace wlsms::serve {

/// Admission and batching knobs.
struct ServeLimits {
  /// Daemon-wide cap on accepted-but-uncompleted requests; submissions
  /// beyond it are rejected with kQueueFull (backpressure, not buffering).
  std::size_t max_pending = 256;
  /// Per-session outstanding quota; beyond it kQuotaExceeded.
  std::size_t max_session_outstanding = 64;
  /// Most requests one batched dispatch coalesces.
  std::size_t max_batch = 16;
  /// Latency budget: a pending request older than this forces a (possibly
  /// singleton) dispatch even if the batch is not full.
  std::chrono::milliseconds batch_window{5};
};

/// Session-aware batching scheduler over one LsmsSolver.
class BatchScheduler {
 public:
  enum class Admission { kAccepted, kQueueFull, kQuotaExceeded };

  /// One completed request, routed back by session. Carries the critical-
  /// path stage vector (queue_us/solve_us stamped here; serialize_us filled
  /// by the daemon at encode time) and the originating trace context plus
  /// admission timestamp, so the daemon can emit one serve.request span per
  /// request adopted under the client's driver span.
  struct Completed {
    std::uint64_t session = 0;
    wl::EnergyResult result;
    StageBreakdown stages;
    obs::TraceContext trace;
    std::uint64_t admitted_us = 0;  ///< obs::trace_now_us() at admission
  };

  /// Dispatch accounting, exposed for the bench and tests.
  struct Stats {
    std::uint64_t batches = 0;            ///< run_next_batch calls
    std::uint64_t batched_requests = 0;   ///< requests solved in multi-batches
    std::uint64_t singleton_requests = 0; ///< requests solved one-at-a-time
  };

  BatchScheduler(std::shared_ptr<const lsms::LsmsSolver> solver,
                 ServeLimits limits);

  /// Admission-controlled enqueue. On kAccepted the request is owned by the
  /// scheduler until run_next_batch completes it or take_session removes it.
  Admission submit(std::uint64_t session, wl::EnergyRequest request);

  std::size_t pending() const { return n_pending_; }
  std::size_t session_pending(std::uint64_t session) const;

  /// Enqueue time of the oldest pending request (nullopt when idle); the
  /// daemon schedules its poll timeout so the batch window expires on time.
  std::optional<std::chrono::steady_clock::time_point> oldest_pending_since()
      const;

  /// Forms the next batch — round-robin across sessions, one request per
  /// session per lap, up to max_batch — solves it, and appends the results
  /// to `out`. A batch of one runs through the synchronous reference
  /// service; a failed batch (singular matrix) is retried request by
  /// request so only the genuinely failing ones come back failed=true,
  /// matching singleton semantics. No-op when nothing is pending.
  void run_next_batch(std::vector<Completed>& out);

  /// Removes and returns every pending request of `session` (disconnect ->
  /// checkpoint). Oldest first.
  std::vector<wl::EnergyRequest> take_session(std::uint64_t session);

  const Stats& stats() const { return stats_; }
  const ServeLimits& limits() const { return limits_; }
  std::size_t n_atoms() const { return solver_->n_atoms(); }

 private:
  struct Queued {
    wl::EnergyRequest request;
    std::chrono::steady_clock::time_point enqueued;
    std::uint64_t admitted_us = 0;  ///< obs::trace_now_us() at admission
  };

  wl::EnergyResult solve_singleton(wl::EnergyRequest request);

  std::shared_ptr<const lsms::LsmsSolver> solver_;
  ServeLimits limits_;
  /// The singleton / retry path: a real SynchronousEnergyService over the
  /// same solver, constructed directly — the factory (wlsms_factory) sits
  /// above the serve client and thus above this library, so the daemon
  /// cannot link back into it.
  wl::LsmsEnergy energy_;
  std::unique_ptr<wl::EnergyService> singleton_;

  /// Ordered by session id for deterministic round-robin; the cursor
  /// rotates so one chatty session cannot starve the others.
  std::map<std::uint64_t, std::deque<Queued>> queues_;
  std::uint64_t cursor_ = 0;
  std::size_t n_pending_ = 0;
  Stats stats_;
};

}  // namespace wlsms::serve
