#pragma once

/// \file socket_util.hpp
/// Internal socket plumbing shared by the serve daemon and client: RAII fd
/// ownership, host:port splitting, and the bind/listen and bounded-connect
/// rituals. Mirrors the (deliberately private) helpers inside comm/tcp.cpp;
/// serve keeps its own copies so the comm transport's internals stay
/// internal. Not installed as public API — serve/*.cpp only.

#include <cerrno>
#include <cstring>
#include <string>

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "comm/communicator.hpp"
#include "common/error.hpp"

namespace wlsms::serve::net {

struct HostPort {
  std::string host;
  std::string port;
};

inline HostPort split_address(const std::string& address) {
  const std::size_t colon = address.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == address.size())
    throw comm::CommError("serve: address '" + address +
                          "' is not of the form host:port");
  return {address.substr(0, colon), address.substr(colon + 1)};
}

inline void set_nodelay(int fd) {
  int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

inline void set_cloexec(int fd) {
  const int flags = ::fcntl(fd, F_GETFD, 0);
  if (flags >= 0) (void)::fcntl(fd, F_SETFD, flags | FD_CLOEXEC);
}

/// RAII socket so every throw path closes cleanly.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  ~Socket() { close(); }

  int get() const { return fd_; }
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_ = -1;
};

/// Binds and listens on `address` (port 0 = kernel-assigned); returns the
/// listener and writes the resolved host:port to `bound_address`.
inline Socket make_listener(const std::string& address, int backlog,
                            std::string& bound_address) {
  const HostPort bind_to = split_address(address);
  struct addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE | AI_NUMERICSERV;
  struct addrinfo* resolved = nullptr;
  const int rc = ::getaddrinfo(bind_to.host.c_str(), bind_to.port.c_str(),
                               &hints, &resolved);
  if (rc != 0)
    throw comm::CommError("serve: cannot resolve listen address '" + address +
                          "': " + ::gai_strerror(rc));
  Socket listener(::socket(resolved->ai_family, resolved->ai_socktype, 0));
  if (listener.get() < 0) {
    ::freeaddrinfo(resolved);
    throw comm::CommError(std::string("serve: socket failed: ") +
                          std::strerror(errno));
  }
  set_cloexec(listener.get());
  int one = 1;
  (void)::setsockopt(listener.get(), SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
  const int bind_rc =
      ::bind(listener.get(), resolved->ai_addr, resolved->ai_addrlen);
  ::freeaddrinfo(resolved);
  if (bind_rc != 0)
    throw comm::CommError("serve: bind to '" + address +
                          "' failed: " + std::strerror(errno));
  if (::listen(listener.get(), backlog) != 0)
    throw comm::CommError(std::string("serve: listen failed: ") +
                          std::strerror(errno));
  struct sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listener.get(),
                    reinterpret_cast<struct sockaddr*>(&bound),
                    &bound_len) != 0)
    throw comm::CommError(std::string("serve: getsockname failed: ") +
                          std::strerror(errno));
  bound_address = bind_to.host + ":" + std::to_string(ntohs(bound.sin_port));
  return listener;
}

/// Non-blocking connect with a deadline (a black-holed daemon address fails
/// in `timeout`, not the kernel's multi-minute SYN retry). Returns a
/// connected blocking socket; throws CommError on failure.
inline Socket connect_with_timeout(const std::string& address,
                                   std::chrono::milliseconds timeout) {
  const HostPort target = split_address(address);
  struct addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_NUMERICSERV;
  struct addrinfo* resolved = nullptr;
  const int rc = ::getaddrinfo(target.host.c_str(), target.port.c_str(),
                               &hints, &resolved);
  if (rc != 0)
    throw comm::CommError("serve: cannot resolve '" + address +
                          "': " + ::gai_strerror(rc));
  Socket sock;
  std::string last_error = "no addresses";
  for (struct addrinfo* ai = resolved; ai != nullptr; ai = ai->ai_next) {
    Socket candidate(::socket(ai->ai_family, ai->ai_socktype, 0));
    if (candidate.get() < 0) {
      last_error = std::string("socket: ") + std::strerror(errno);
      continue;
    }
    const int flags = ::fcntl(candidate.get(), F_GETFL, 0);
    (void)::fcntl(candidate.get(), F_SETFL, flags | O_NONBLOCK);
    const int connect_rc =
        ::connect(candidate.get(), ai->ai_addr, ai->ai_addrlen);
    if (connect_rc != 0 && errno != EINPROGRESS) {
      last_error = std::string("connect: ") + std::strerror(errno);
      continue;
    }
    if (connect_rc != 0) {
      struct pollfd pfd{candidate.get(), POLLOUT, 0};
      const int ready = ::poll(&pfd, 1, static_cast<int>(timeout.count()));
      if (ready <= 0) {
        last_error = "connect timed out";
        continue;
      }
      int so_error = 0;
      socklen_t len = sizeof(so_error);
      (void)::getsockopt(candidate.get(), SOL_SOCKET, SO_ERROR, &so_error,
                         &len);
      if (so_error != 0) {
        last_error = std::string("connect: ") + std::strerror(so_error);
        continue;
      }
    }
    (void)::fcntl(candidate.get(), F_SETFL, flags);
    sock = std::move(candidate);
    break;
  }
  ::freeaddrinfo(resolved);
  if (sock.get() < 0)
    throw comm::CommError("serve: cannot connect to '" + address +
                          "': " + last_error);
  set_nodelay(sock.get());
  set_cloexec(sock.get());
  return sock;
}

}  // namespace wlsms::serve::net
