#include "serve/status.hpp"

#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

#include <poll.h>
#include <unistd.h>

#include "comm/framing.hpp"
#include "common/error.hpp"
#include "common/serial.hpp"
#include "obs/prometheus.hpp"
#include "serve/protocol.hpp"
#include "serve/socket_util.hpp"

namespace wlsms::serve {

namespace {

/// Reads exactly one frame within `deadline`; throws CommError on EOF,
/// timeout, or a corrupt length field.
comm::Message read_one_frame(int fd, comm::StreamClock::time_point deadline) {
  const auto read_exact = [&](void* out, std::size_t n) {
    std::byte* at = static_cast<std::byte*>(out);
    std::size_t done = 0;
    while (done < n) {
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              deadline - comm::StreamClock::now());
      if (remaining.count() <= 0)
        throw comm::CommError("status: read timed out");
      struct pollfd pfd{fd, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, static_cast<int>(remaining.count()));
      if (ready < 0 && errno == EINTR) continue;
      if (ready <= 0) throw comm::CommError("status: read timed out");
      const ssize_t got = ::read(fd, at + done, n - done);
      if (got == 0)
        throw comm::CommError("status: peer closed the connection");
      if (got < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
          continue;
        throw comm::CommError(std::string("status: read failed: ") +
                              std::strerror(errno));
      }
      done += static_cast<std::size_t>(got);
    }
  };

  std::uint32_t header[2] = {0, 0};
  read_exact(header, sizeof(header));
  const std::uint32_t length = header[0];
  if (length < 4 || length > comm::kMaxFrameBytes)
    throw comm::CommError("status: corrupt frame length");
  comm::Message message;
  message.tag = header[1];
  message.payload.resize(length - 4);
  if (!message.payload.empty())
    read_exact(message.payload.data(), message.payload.size());
  return message;
}

constexpr std::chrono::milliseconds kConnectionWindow{2000};

}  // namespace

StatusServer::StatusServer(const std::string& listen) {
  net::Socket listener = net::make_listener(listen, 8, address_);
  int pipe_fds[2] = {-1, -1};
  if (::pipe(pipe_fds) != 0)
    throw comm::CommError(std::string("status: self-pipe failed: ") +
                          std::strerror(errno));
  stop_read_ = pipe_fds[0];
  stop_write_ = pipe_fds[1];
  net::set_cloexec(stop_read_);
  net::set_cloexec(stop_write_);
  listener_ = listener.release();
  thread_ = std::thread([this] { serve_loop(); });
}

StatusServer::~StatusServer() {
  const char byte = 's';
  (void)!::write(stop_write_, &byte, 1);
  if (thread_.joinable()) thread_.join();
  if (listener_ >= 0) ::close(listener_);
  if (stop_read_ >= 0) ::close(stop_read_);
  if (stop_write_ >= 0) ::close(stop_write_);
}

void StatusServer::serve_loop() {
  while (true) {
    struct pollfd pfds[2] = {{stop_read_, POLLIN, 0}, {listener_, POLLIN, 0}};
    const int rc = ::poll(pfds, 2, -1);
    if (rc < 0 && errno == EINTR) continue;
    if (rc < 0) return;
    if (pfds[0].revents & POLLIN) return;  // destructor asked us to stop
    if (!(pfds[1].revents & POLLIN)) continue;
    net::Socket conn(::accept(listener_, nullptr, nullptr));
    if (conn.get() < 0) continue;
    net::set_nodelay(conn.get());
    net::set_cloexec(conn.get());
    // One bounded request/reply per connection; a bad or slow client costs
    // at most the connection window, and can neither crash the loop nor
    // hold it open.
    try {
      const auto deadline = comm::StreamClock::now() + kConnectionWindow;
      const comm::Message request = read_one_frame(conn.get(), deadline);
      if (request.tag != kTagServeStatus) continue;
      decode_status_request(request.payload);
      comm::Message reply;
      reply.tag = kTagServeStatusReply;
      reply.payload = encode_status_text(obs::expose_prometheus());
      const std::vector<std::byte> bytes = comm::frame_bytes(reply);
      (void)comm::write_all(conn.get(), bytes.data(), bytes.size(), deadline);
    } catch (const comm::CommError&) {
    } catch (const serial::SerializationError&) {
    }
  }
}

std::string fetch_status(const std::string& address,
                         std::chrono::milliseconds timeout) {
  net::Socket sock = net::connect_with_timeout(address, timeout);
  const auto deadline = comm::StreamClock::now() + timeout;
  comm::Message request;
  request.tag = kTagServeStatus;
  request.payload = encode_status_request();
  const std::vector<std::byte> bytes = comm::frame_bytes(request);
  if (!comm::write_all(sock.get(), bytes.data(), bytes.size(), deadline))
    throw comm::CommError("status: request write failed");
  comm::Message reply = read_one_frame(sock.get(), deadline);
  while (reply.tag == comm::kTagHeartbeat)
    reply = read_one_frame(sock.get(), deadline);
  if (reply.tag != kTagServeStatusReply)
    throw comm::CommError("status: unexpected reply tag " +
                          std::to_string(reply.tag));
  return decode_status_text(reply.payload);
}

}  // namespace wlsms::serve
