#include "serve/protocol.hpp"

#include "spin/serialize.hpp"

namespace wlsms::serve {

using serial::Decoder;
using serial::Encoder;
using serial::PayloadKind;
using serial::SerializationError;

namespace {

void put_tenant(Encoder& e, const std::string& tenant) {
  e.put_u64(tenant.size());
  e.put_bytes(tenant.data(), tenant.size());
}

/// Tenant names feed per-tenant metric series and checkpoint filenames, so
/// hostile bytes are rejected at the decode boundary: bounded length,
/// printable ASCII, no spaces.
std::string get_tenant(Decoder& d) {
  const std::uint64_t size = d.get_u64();
  if (size == 0 || size > kMaxTenantBytes)
    throw SerializationError("serve tenant name empty or oversized");
  std::string tenant(static_cast<std::size_t>(size), '\0');
  d.get_bytes(tenant.data(), tenant.size());
  for (char c : tenant)
    if (c < '!' || c > '~')
      throw SerializationError("serve tenant name has non-printable bytes");
  return tenant;
}

}  // namespace

std::vector<std::byte> encode_serve_hello(const ServeHello& hello) {
  Encoder e;
  serial::write_header(e, PayloadKind::kServeHello);
  put_tenant(e, hello.tenant);
  e.put_u64(hello.resume_session);
  e.put_u64(hello.resume_token);
  e.put_u64(hello.trace_node);
  e.put_u64(hello.t0_us);
  return e.take();
}

ServeHello decode_serve_hello(const std::vector<std::byte>& buffer) {
  Decoder d(buffer);
  serial::read_header(d, PayloadKind::kServeHello);
  ServeHello hello;
  hello.tenant = get_tenant(d);
  hello.resume_session = d.get_u64();
  hello.resume_token = d.get_u64();
  hello.trace_node = d.get_u64();
  hello.t0_us = d.get_u64();
  d.expect_end();
  return hello;
}

std::vector<std::byte> encode_serve_welcome(const ServeWelcome& welcome) {
  Encoder e;
  serial::write_header(e, PayloadKind::kServeWelcome);
  e.put_u64(welcome.session);
  e.put_u64(welcome.resume_token);
  e.put_u64(welcome.n_atoms);
  e.put_u8(welcome.resumed ? 1 : 0);
  e.put_u64(welcome.n_replayed);
  e.put_u64(welcome.n_pending);
  e.put_u64(welcome.trace_node);
  e.put_u64(welcome.t1_us);
  e.put_u64(welcome.t2_us);
  return e.take();
}

ServeWelcome decode_serve_welcome(const std::vector<std::byte>& buffer) {
  Decoder d(buffer);
  serial::read_header(d, PayloadKind::kServeWelcome);
  ServeWelcome welcome;
  welcome.session = d.get_u64();
  welcome.resume_token = d.get_u64();
  welcome.n_atoms = d.get_u64();
  const std::uint8_t resumed = d.get_u8();
  if (resumed > 1) throw SerializationError("corrupt serve-welcome flag");
  welcome.resumed = resumed != 0;
  welcome.n_replayed = d.get_u64();
  welcome.n_pending = d.get_u64();
  welcome.trace_node = d.get_u64();
  welcome.t1_us = d.get_u64();
  welcome.t2_us = d.get_u64();
  if (welcome.session == 0)
    throw SerializationError("serve-welcome with null session id");
  d.expect_end();
  return welcome;
}

std::vector<std::byte> encode_serve_submit(const wl::EnergyRequest& request) {
  Encoder e;
  serial::write_header(e, PayloadKind::kServeSubmit);
  e.put_u64(request.walker);
  e.put_u64(request.ticket);
  e.put_u64(request.trace.trace_id);
  e.put_u64(request.trace.span_id);
  spin::encode_moments(e, request.config);
  return e.take();
}

wl::EnergyRequest decode_serve_submit(const std::vector<std::byte>& buffer) {
  Decoder d(buffer);
  serial::read_header(d, PayloadKind::kServeSubmit);
  wl::EnergyRequest request;
  request.walker = static_cast<std::size_t>(d.get_u64());
  request.ticket = d.get_u64();
  request.trace.trace_id = d.get_u64();
  request.trace.span_id = d.get_u64();
  request.config = spin::decode_moments(d);
  if (request.config.size() == 0)
    throw SerializationError("serve-submit with empty configuration");
  d.expect_end();
  return request;
}

std::vector<std::byte> encode_serve_result(const wl::EnergyResult& result,
                                           const StageBreakdown& stages) {
  Encoder e;
  serial::write_header(e, PayloadKind::kServeResult);
  e.put_u64(result.walker);
  e.put_u64(result.ticket);
  e.put_double(result.energy);
  e.put_u8(result.failed ? 1 : 0);
  e.put_u64(stages.queue_us);
  e.put_u64(stages.solve_us);
  e.put_u64(stages.serialize_us);
  return e.take();
}

ServeResultFrame decode_serve_result_frame(
    const std::vector<std::byte>& buffer) {
  Decoder d(buffer);
  serial::read_header(d, PayloadKind::kServeResult);
  ServeResultFrame frame;
  frame.result.walker = static_cast<std::size_t>(d.get_u64());
  frame.result.ticket = d.get_u64();
  frame.result.energy = d.get_double();
  const std::uint8_t failed = d.get_u8();
  if (failed > 1) throw SerializationError("corrupt serve-result flag");
  frame.result.failed = failed != 0;
  frame.stages.queue_us = d.get_u64();
  frame.stages.solve_us = d.get_u64();
  frame.stages.serialize_us = d.get_u64();
  d.expect_end();
  return frame;
}

wl::EnergyResult decode_serve_result(const std::vector<std::byte>& buffer) {
  return decode_serve_result_frame(buffer).result;
}

std::vector<std::byte> encode_status_request() {
  Encoder e;
  serial::write_header(e, PayloadKind::kServeStatus);
  return e.take();
}

void decode_status_request(const std::vector<std::byte>& buffer) {
  Decoder d(buffer);
  serial::read_header(d, PayloadKind::kServeStatus);
  d.expect_end();
}

std::vector<std::byte> encode_status_text(const std::string& text) {
  Encoder e;
  serial::write_header(e, PayloadKind::kServeStatusText);
  e.put_u64(text.size());
  e.put_bytes(text.data(), text.size());
  return e.take();
}

std::string decode_status_text(const std::vector<std::byte>& buffer) {
  Decoder d(buffer);
  serial::read_header(d, PayloadKind::kServeStatusText);
  const std::uint64_t size = d.get_u64();
  d.expect_sequence(size, 1);
  std::string text(static_cast<std::size_t>(size), '\0');
  d.get_bytes(text.data(), text.size());
  d.expect_end();
  return text;
}

std::vector<std::byte> encode_serve_reject(const ServeReject& reject) {
  Encoder e;
  serial::write_header(e, PayloadKind::kServeReject);
  e.put_u64(reject.ticket);
  e.put_u8(static_cast<std::uint8_t>(reject.reason));
  return e.take();
}

ServeReject decode_serve_reject(const std::vector<std::byte>& buffer) {
  Decoder d(buffer);
  serial::read_header(d, PayloadKind::kServeReject);
  ServeReject reject;
  reject.ticket = d.get_u64();
  const std::uint8_t reason = d.get_u8();
  if (reason > static_cast<std::uint8_t>(ServeReject::Reason::kShuttingDown))
    throw SerializationError("corrupt serve-reject reason");
  reject.reason = static_cast<ServeReject::Reason>(reason);
  d.expect_end();
  return reject;
}

std::vector<std::byte> encode_session_checkpoint(
    const SessionCheckpoint& checkpoint) {
  Encoder e;
  serial::write_header(e, PayloadKind::kServeSession);
  e.put_u64(checkpoint.session);
  e.put_u64(checkpoint.resume_token);
  put_tenant(e, checkpoint.tenant);
  e.put_u64(checkpoint.pending.size());
  for (const wl::EnergyRequest& request : checkpoint.pending) {
    e.put_u64(request.walker);
    e.put_u64(request.ticket);
    spin::encode_moments(e, request.config);
  }
  e.put_u64(checkpoint.undelivered.size());
  for (const wl::EnergyResult& result : checkpoint.undelivered) {
    e.put_u64(result.walker);
    e.put_u64(result.ticket);
    e.put_double(result.energy);
    e.put_u8(result.failed ? 1 : 0);
  }
  return e.take();
}

SessionCheckpoint decode_session_checkpoint(
    const std::vector<std::byte>& buffer) {
  Decoder d(buffer);
  serial::read_header(d, PayloadKind::kServeSession);
  SessionCheckpoint checkpoint;
  checkpoint.session = d.get_u64();
  checkpoint.resume_token = d.get_u64();
  checkpoint.tenant = get_tenant(d);
  if (checkpoint.session == 0)
    throw SerializationError("session checkpoint with null session id");
  const std::uint64_t n_pending = d.get_u64();
  // A pending request is at least walker + ticket + site count.
  d.expect_sequence(n_pending, 24);
  checkpoint.pending.resize(static_cast<std::size_t>(n_pending));
  for (wl::EnergyRequest& request : checkpoint.pending) {
    request.walker = static_cast<std::size_t>(d.get_u64());
    request.ticket = d.get_u64();
    request.config = spin::decode_moments(d);
    if (request.config.size() == 0)
      throw SerializationError("session checkpoint with empty configuration");
  }
  const std::uint64_t n_undelivered = d.get_u64();
  d.expect_sequence(n_undelivered, 25);
  checkpoint.undelivered.resize(static_cast<std::size_t>(n_undelivered));
  for (wl::EnergyResult& result : checkpoint.undelivered) {
    result.walker = static_cast<std::size_t>(d.get_u64());
    result.ticket = d.get_u64();
    result.energy = d.get_double();
    const std::uint8_t failed = d.get_u8();
    if (failed > 1)
      throw SerializationError("corrupt session-checkpoint result flag");
    result.failed = failed != 0;
  }
  d.expect_end();
  return checkpoint;
}

}  // namespace wlsms::serve
