#pragma once

/// \file client.hpp
/// Client side of the serve protocol: a wl::EnergyService whose compute
/// backend is a remote `wlsms serve` daemon. submit() ships the walker
/// configuration as one frame; retrieve() blocks for the next ServeResult
/// (or ServeReject, surfaced as failed=true) — exactly the out-of-order
/// contract every other EnergyService honours, so a Wang-Landau driver can
/// run against a shared daemon without knowing it.

#include <chrono>
#include <cstdint>
#include <map>
#include <string>

#include "comm/framing.hpp"
#include "serve/protocol.hpp"
#include "wl/energy_service.hpp"

namespace wlsms::serve {

/// Client connection knobs.
struct ClientOptions {
  /// Tenant name presented in the handshake (printable ASCII, <= 64 B).
  std::string tenant = "default";
  std::chrono::milliseconds connect_timeout{5000};
  /// Bound on the hello -> welcome round trip.
  std::chrono::milliseconds handshake_timeout{5000};
  /// Bound on one retrieve(); a daemon silent past this throws CommError.
  std::chrono::milliseconds retrieve_timeout{120000};
  /// Bound on one submit write.
  std::chrono::milliseconds send_deadline{5000};
  /// Nonzero: resume this session (with its token) instead of opening a
  /// fresh one. After a resume, outstanding() starts at the number of
  /// results the daemon will replay plus the requests it re-enqueued.
  std::uint64_t resume_session = 0;
  std::uint64_t resume_token = 0;
};

/// Connects and handshakes in the constructor; throws comm::CommError on
/// connect, timeout, or a rejected handshake. Single-threaded, like every
/// EnergyService.
class ServeClient final : public wl::EnergyService {
 public:
  ServeClient(const std::string& address, ClientOptions options = {});
  ~ServeClient() override;
  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  void submit(wl::EnergyRequest request) override;
  wl::EnergyResult retrieve() override;
  std::size_t outstanding() const override { return outstanding_; }

  std::uint64_t session() const { return session_; }
  std::uint64_t resume_token() const { return resume_token_; }
  std::size_t n_atoms() const { return n_atoms_; }
  bool resumed() const { return resumed_; }

  /// Chaos hook: hard-kills the socket (both directions) without the
  /// protocol goodbye, so tests can die on the daemon mid-batch. Subsequent
  /// submit/retrieve throw CommError.
  void abort_socket();

 private:
  wl::EnergyResult pop_completed(const comm::Message& frame);

  ClientOptions options_;
  int fd_ = -1;
  comm::FrameAssembler rx_;
  std::uint64_t session_ = 0;
  std::uint64_t resume_token_ = 0;
  std::size_t n_atoms_ = 0;
  bool resumed_ = false;
  std::size_t outstanding_ = 0;
  struct InFlight {
    std::size_t walker = 0;
    std::uint64_t submitted_us = 0;  ///< obs::trace_now_us() at submit
  };
  /// ticket -> walker + submit time, so a ServeReject (which carries only
  /// the ticket) can be surfaced with the right walker id and a ServeResult
  /// can price its wire time (round trip minus the daemon's stage vector).
  /// Requests replayed by a resumed daemon predate this client object and
  /// fall back to walker 0.
  std::map<std::uint64_t, InFlight> in_flight_;
};

}  // namespace wlsms::serve
