#pragma once

/// \file daemon.hpp
/// The `wlsms serve` daemon: a persistent, multi-tenant energy service. One
/// single-threaded poll loop owns a TCP listener, the per-connection frame
/// reassembly, and a BatchScheduler over one shared LsmsSolver; independent
/// clients (tenants) hand their walkers' configurations to the same solver
/// and the scheduler coalesces concurrent requests into cross-walker
/// batched ZGEMM dispatches (scheduler.hpp, DESIGN.md §12).
///
/// Fault containment mirrors the comm transports: a connection that sends
/// garbage, violates the handshake, or goes quiet is closed — never allowed
/// to crash or desync the daemon — and a *handshaken* session that drops is
/// checkpointed (pending requests + computed-but-undelivered results) to a
/// versioned WLSM file so the tenant can reconnect and resume exactly where
/// the socket died.

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "comm/framing.hpp"
#include "serve/protocol.hpp"
#include "serve/scheduler.hpp"

namespace wlsms::serve {

/// Daemon construction knobs.
struct ServeOptions {
  /// Bind address; port 0 picks an ephemeral port (resolved address is
  /// available via Daemon::address() and on_listening).
  std::string listen = "127.0.0.1:0";
  ServeLimits limits;
  /// A connection that has not completed the hello/welcome handshake within
  /// this window is closed (half-open sockets cannot pin daemon slots).
  std::chrono::milliseconds handshake_timeout{2000};
  /// Upper bound on one result/reject write to a client; a client whose
  /// socket buffer stays full past this is treated as dead.
  std::chrono::milliseconds send_deadline{5000};
  /// Directory for session-resume checkpoints; empty disables resume (a
  /// dropped session's pending work is discarded). Session ids are seeded
  /// past any session-<id>.wlsm already present, so a restarted daemon can
  /// never hand a fresh client an id whose checkpoint belongs to an earlier
  /// run's tenant.
  std::string checkpoint_dir;
  /// Most distinct tenant names that get their own serve.tenant.<name>.*
  /// metric series; tenants beyond the cap are folded into the "other"
  /// label. Tenant names arrive unauthenticated on the wire, so without a
  /// cap a hostile client could grow the metrics registry without bound by
  /// handshaking with fresh names.
  std::size_t max_tenant_series = 64;
  /// When nonzero, SO_SNDBUF for accepted client sockets: bounds the
  /// kernel-side buffering per client, so a stalled reader trips
  /// send_deadline instead of absorbing results invisibly (0 = kernel
  /// default).
  std::size_t client_sndbuf = 0;
  /// Called once the listener is bound, with the resolved "host:port".
  std::function<void(const std::string&)> on_listening;
  /// When nonzero, run() pins linalg::set_zgemm_batch_threads to this for
  /// the daemon's lifetime (0 = leave the process-wide setting alone).
  std::size_t gemm_batch_threads = 0;
};

/// The serve daemon. Construct (binds + listens), then run() the poll loop;
/// stop() — the only thread-safe method — makes run() checkpoint every live
/// session and return.
class Daemon {
 public:
  Daemon(std::shared_ptr<const lsms::LsmsSolver> solver, ServeOptions options);
  ~Daemon();
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Resolved listen address (ephemeral port filled in).
  const std::string& address() const { return address_; }

  /// Serves until stop(). Not reentrant.
  void run();

  /// Signals run() to drain and return: every live session is checkpointed
  /// (when checkpointing is on) and every connection closed. Callable from
  /// any thread, any number of times.
  void stop();

  /// Scheduler dispatch accounting (read after run() returns).
  const BatchScheduler::Stats& scheduler_stats() const {
    return scheduler_.stats();
  }

  /// Sessions currently live (handshaken and not yet disconnected). For
  /// tests; the obs gauge `serve.sessions` tracks the same number.
  std::size_t n_sessions() const { return sessions_.size(); }

 private:
  struct Connection {
    comm::FrameAssembler rx;
    bool handshaken = false;
    std::uint64_t session = 0;
    std::chrono::steady_clock::time_point connected_at;
  };

  struct Session {
    std::string tenant;
    std::string metric_label;  ///< tenant, or "other" past max_tenant_series
    std::uint64_t resume_token = 0;
    int fd = -1;  ///< -1 while disconnected (only transiently, mid-teardown)
    std::deque<wl::EnergyResult> undelivered;
  };

  void accept_pending();
  void read_connection(int fd);
  bool handle_frame(int fd, const comm::Message& frame);
  bool handle_hello(int fd, const std::vector<std::byte>& payload);
  bool handle_submit(int fd, const std::vector<std::byte>& payload);
  void dispatch_ready_batches(bool force = false);
  /// Routes one completion to its session: encodes the result with its
  /// completed stage vector, feeds the serve.stage_ms.* histograms, and
  /// emits the per-request serve.request span (adopted under the client's
  /// submitting span when the request carried a trace context).
  void deliver(const BatchScheduler::Completed& done);
  bool send_frame(int fd, std::uint32_t tag, std::vector<std::byte> payload);
  void drop_connection(int fd);
  void close_session(std::uint64_t session);
  void expire_handshakes();
  int poll_timeout_ms() const;
  std::string checkpoint_path(std::uint64_t session) const;
  /// Advances next_session_ past every session-<id>.wlsm in checkpoint_dir.
  void seed_next_session();
  /// The metric label for `tenant`: itself for the first max_tenant_series
  /// distinct names this daemon sees, "other" afterwards.
  const std::string& tenant_label(const std::string& tenant);
  /// False iff a checkpoint file for `session` exists and provably belongs
  /// to a different tenant/token (never overwrite someone else's state).
  bool may_write_checkpoint(std::uint64_t session, const Session& state) const;

  std::shared_ptr<const lsms::LsmsSolver> solver_;
  ServeOptions options_;
  BatchScheduler scheduler_;
  std::string address_;
  int listener_ = -1;
  int stop_read_ = -1;   ///< self-pipe: run() polls this...
  int stop_write_ = -1;  ///< ...and stop() writes one byte to it
  std::map<int, Connection> connections_;          ///< by fd
  std::map<std::uint64_t, Session> sessions_;      ///< by session id
  std::uint64_t next_session_ = 1;
  std::uint64_t token_state_;  ///< splitmix64 state for resume tokens
  std::set<std::string> tenant_labels_;  ///< tenants with own metric series
  std::vector<BatchScheduler::Completed> completed_;  ///< reused scratch
};

}  // namespace wlsms::serve
