#pragma once

/// \file protocol.hpp
/// Wire protocol of the multi-tenant energy daemon (`wlsms serve`): the
/// session handshake, the submit/result/reject conversation, and the
/// session-resume checkpoint. Every payload rides the shared WLSM serial
/// schema (magic + version + payload kind) inside the same
/// [u32 length][u32 tag][payload] frames as the comm transports, so a serve
/// stream is parsed by the identical hardened machinery: truncated or
/// corrupted payloads throw serial::SerializationError, corrupt frame
/// lengths throw CommError from the assembler, and neither can crash or
/// desync the daemon.
///
/// Conversation:
///   client -> daemon   ServeHello   (tenant name; optionally a session to
///                                    resume with its proof-of-ownership
///                                    token)
///   daemon -> client   ServeWelcome (session id + resume token + n_atoms;
///                                    on resume, counts of replayed results
///                                    and re-enqueued requests follow)
///   client -> daemon   ServeSubmit  (one walker configuration per frame)
///   daemon -> client   ServeResult  (completed energies, any order)
///                  or  ServeReject  (admission control: queue full, quota,
///                                    malformed request, shutdown)

#include <cstdint>
#include <string>
#include <vector>

#include "common/serial.hpp"
#include "wl/energy_service.hpp"

namespace wlsms::serve {

/// Application frame tags of the serve conversation. Distinct from the
/// comm::Tag shard/energy range (1..4) so a serve frame routed into a group
/// stream — or vice versa — is recognizably foreign, and far below the
/// channel control tags (0xFFFFFFFC..) per the framing.hpp rule.
enum Tag : std::uint32_t {
  kTagServeHello = 10,
  kTagServeWelcome = 11,
  kTagServeSubmit = 12,
  kTagServeResult = 13,
  kTagServeReject = 14,
  kTagServeStatus = 15,       ///< introspection: metrics request
  kTagServeStatusReply = 16,  ///< introspection: Prometheus text reply
};

/// Longest accepted tenant name. Tenant names label per-tenant metric
/// series, so they are bounded and restricted to printable ASCII.
inline constexpr std::size_t kMaxTenantBytes = 64;

/// Client -> daemon session handshake. Carries the client's trace node and
/// a send timestamp so the welcome closes an NTP-style four-timestamp clock
/// probe: offset = ((t1-t0)+(t2-t3))/2 with t3 sampled at welcome receipt.
struct ServeHello {
  std::string tenant;                ///< non-empty printable ASCII, <= 64 B
  std::uint64_t resume_session = 0;  ///< 0 = fresh session
  std::uint64_t resume_token = 0;    ///< proof of ownership when resuming
  std::uint64_t trace_node = 0;      ///< client's obs::local_trace_node()
  std::uint64_t t0_us = 0;           ///< client clock at hello send
};

/// Daemon -> client session grant.
struct ServeWelcome {
  std::uint64_t session = 0;
  std::uint64_t resume_token = 0;  ///< present this to resume later
  std::uint64_t n_atoms = 0;       ///< configuration size the daemon serves
  bool resumed = false;
  /// On resume: results computed while disconnected, replayed as ServeResult
  /// frames immediately after this welcome.
  std::uint64_t n_replayed = 0;
  /// On resume: checkpointed requests re-enqueued on the client's behalf
  /// (their results arrive as normal ServeResult frames).
  std::uint64_t n_pending = 0;
  std::uint64_t trace_node = 0;  ///< daemon's obs::local_trace_node()
  std::uint64_t t1_us = 0;       ///< daemon clock at hello receipt
  std::uint64_t t2_us = 0;       ///< daemon clock at welcome send
};

/// Per-request critical-path attribution, returned on every ServeResult:
/// where the daemon spent this request's wall time. The client adds its own
/// wire time (round trip minus the daemon stages) to complete the picture.
struct StageBreakdown {
  std::uint64_t queue_us = 0;      ///< admitted -> batch formed
  std::uint64_t solve_us = 0;      ///< batch formed -> solved
  std::uint64_t serialize_us = 0;  ///< solved -> result frame encoded
};

/// One decoded ServeResult frame: the energy plus its stage vector.
struct ServeResultFrame {
  wl::EnergyResult result;
  StageBreakdown stages;
};

/// Daemon -> client admission rejection for one submitted ticket.
struct ServeReject {
  enum class Reason : std::uint8_t {
    kQueueFull = 0,      ///< daemon-wide pending queue at capacity
    kQuotaExceeded = 1,  ///< this session's outstanding quota exhausted
    kBadRequest = 2,     ///< malformed or wrong-sized configuration
    kShuttingDown = 3,   ///< daemon is draining
  };
  std::uint64_t ticket = 0;
  Reason reason = Reason::kBadRequest;
};

/// Everything a disconnected session needs to resume: the accepted-but-
/// uncomputed requests and the computed-but-undelivered results. Written
/// to `<checkpoint-dir>/session-<id>.wlsm` on disconnect, consumed (and
/// deleted) by a successful resume. Versioned like every WLSM payload: a
/// checkpoint from an incompatible build is rejected, not misread.
struct SessionCheckpoint {
  std::uint64_t session = 0;
  std::uint64_t resume_token = 0;
  std::string tenant;
  std::vector<wl::EnergyRequest> pending;
  std::vector<wl::EnergyResult> undelivered;
};

std::vector<std::byte> encode_serve_hello(const ServeHello&);
ServeHello decode_serve_hello(const std::vector<std::byte>&);

std::vector<std::byte> encode_serve_welcome(const ServeWelcome&);
ServeWelcome decode_serve_welcome(const std::vector<std::byte>&);

/// Submit carries walker + ticket + trace context + configuration; the
/// session identity is implied by the connection (the daemon stamps it
/// server-side, so a client cannot submit into another tenant's session).
std::vector<std::byte> encode_serve_submit(const wl::EnergyRequest&);
wl::EnergyRequest decode_serve_submit(const std::vector<std::byte>&);

std::vector<std::byte> encode_serve_result(const wl::EnergyResult&,
                                           const StageBreakdown& = {});
ServeResultFrame decode_serve_result_frame(const std::vector<std::byte>&);
/// Convenience: the energy alone, stage vector discarded.
wl::EnergyResult decode_serve_result(const std::vector<std::byte>&);

/// Introspection conversation: an empty Status request answered with the
/// daemon's metrics registry rendered as Prometheus text. Accepted before
/// any handshake (a status probe is not a session), one reply per request.
std::vector<std::byte> encode_status_request();
void decode_status_request(const std::vector<std::byte>&);

std::vector<std::byte> encode_status_text(const std::string& text);
std::string decode_status_text(const std::vector<std::byte>&);

std::vector<std::byte> encode_serve_reject(const ServeReject&);
ServeReject decode_serve_reject(const std::vector<std::byte>&);

std::vector<std::byte> encode_session_checkpoint(const SessionCheckpoint&);
SessionCheckpoint decode_session_checkpoint(const std::vector<std::byte>&);

}  // namespace wlsms::serve
