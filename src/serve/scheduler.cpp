#include "serve/scheduler.hpp"

#include <memory>
#include <utility>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/prometheus.hpp"
#include "obs/trace.hpp"

namespace wlsms::serve {

namespace {

struct SchedulerMetrics {
  obs::Counter& accepted;
  obs::Counter& rejects_queue_full;
  obs::Counter& rejects_quota;
  obs::Counter& batches;
  obs::Counter& batch_failures;
  obs::Gauge& pending;
  obs::Histogram& batch_occupancy;
  obs::Histogram& request_latency_ms;
};

SchedulerMetrics& scheduler_metrics() {
  static SchedulerMetrics metrics{
      obs::Registry::instance().counter("serve.accepted"),
      obs::Registry::instance().counter("serve.rejects_queue_full"),
      obs::Registry::instance().counter("serve.rejects_quota"),
      obs::Registry::instance().counter("serve.batches"),
      obs::Registry::instance().counter("serve.batch_failures"),
      obs::Registry::instance().gauge("serve.pending"),
      obs::Registry::instance().histogram(
          "serve.batch_occupancy",
          {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0}),
      obs::Registry::instance().histogram(
          "serve.request_latency_ms",
          obs::exponential_bounds(0.1, 2.0, 16)),
  };
  return metrics;
}

}  // namespace

BatchScheduler::BatchScheduler(std::shared_ptr<const lsms::LsmsSolver> solver,
                               ServeLimits limits)
    : solver_(std::move(solver)), limits_(limits), energy_(solver_) {
  WLSMS_EXPECTS(solver_ != nullptr);
  WLSMS_EXPECTS(limits_.max_pending >= 1);
  WLSMS_EXPECTS(limits_.max_session_outstanding >= 1);
  WLSMS_EXPECTS(limits_.max_batch >= 1);
  singleton_ = std::make_unique<wl::SynchronousEnergyService>(energy_);
}

BatchScheduler::Admission BatchScheduler::submit(std::uint64_t session,
                                                 wl::EnergyRequest request) {
  SchedulerMetrics& metrics = scheduler_metrics();
  if (n_pending_ >= limits_.max_pending) {
    metrics.rejects_queue_full.inc();
    return Admission::kQueueFull;
  }
  std::deque<Queued>& queue = queues_[session];
  if (queue.size() >= limits_.max_session_outstanding) {
    if (queue.empty()) queues_.erase(session);
    metrics.rejects_quota.inc();
    return Admission::kQuotaExceeded;
  }
  request.session = session;
  queue.push_back({std::move(request), std::chrono::steady_clock::now(),
                   obs::trace_now_us()});
  ++n_pending_;
  metrics.accepted.inc();
  metrics.pending.set(static_cast<double>(n_pending_));
  return Admission::kAccepted;
}

std::size_t BatchScheduler::session_pending(std::uint64_t session) const {
  const auto it = queues_.find(session);
  return it == queues_.end() ? 0 : it->second.size();
}

std::optional<std::chrono::steady_clock::time_point>
BatchScheduler::oldest_pending_since() const {
  std::optional<std::chrono::steady_clock::time_point> oldest;
  for (const auto& [session, queue] : queues_)
    if (!queue.empty() &&
        (!oldest || queue.front().enqueued < *oldest))
      oldest = queue.front().enqueued;
  return oldest;
}

wl::EnergyResult BatchScheduler::solve_singleton(wl::EnergyRequest request) {
  singleton_->submit(std::move(request));
  return singleton_->retrieve();
}

void BatchScheduler::run_next_batch(std::vector<Completed>& out) {
  if (n_pending_ == 0) return;
  const obs::Span span("serve.batch");
  SchedulerMetrics& metrics = scheduler_metrics();

  // Round-robin batch formation: walk sessions in id order starting past
  // the cursor, taking the oldest request of each, lap after lap, until the
  // batch is full or the queues are dry. One chatty session fills at most
  // its fair share per lap, so light tenants keep their latency.
  std::vector<Queued> batch;
  batch.reserve(std::min(limits_.max_batch, n_pending_));
  bool took_any = true;
  while (took_any && batch.size() < limits_.max_batch) {
    took_any = false;
    auto it = queues_.upper_bound(cursor_);
    for (std::size_t visited = 0;
         visited < queues_.size() && batch.size() < limits_.max_batch;
         ++visited, ++it) {
      if (it == queues_.end()) it = queues_.begin();
      if (it->second.empty()) continue;
      batch.push_back(std::move(it->second.front()));
      it->second.pop_front();
      cursor_ = it->first;
      took_any = true;
    }
  }
  for (auto it = queues_.begin(); it != queues_.end();)
    it = it->second.empty() ? queues_.erase(it) : std::next(it);
  if (batch.empty()) return;
  n_pending_ -= batch.size();
  metrics.pending.set(static_cast<double>(n_pending_));
  ++stats_.batches;
  metrics.batches.inc();
  metrics.batch_occupancy.observe(static_cast<double>(batch.size()));
  const std::uint64_t batch_formed_us = obs::trace_now_us();

  const auto complete = [&](const Queued& queued, double energy,
                            bool failed) {
    Completed done;
    done.session = queued.request.session;
    done.result.walker = queued.request.walker;
    done.result.ticket = queued.request.ticket;
    done.result.energy = energy;
    done.result.failed = failed;
    done.trace = queued.request.trace;
    done.admitted_us = queued.admitted_us;
    // Stage vector: admitted -> batch formed is queue wait, batch formed ->
    // now is the solve (per-request stamps; the daemon adds serialize_us).
    const std::uint64_t solved_us = obs::trace_now_us();
    done.stages.queue_us = batch_formed_us > queued.admitted_us
                               ? batch_formed_us - queued.admitted_us
                               : 0;
    done.stages.solve_us =
        solved_us > batch_formed_us ? solved_us - batch_formed_us : 0;
    out.push_back(std::move(done));
    metrics.request_latency_ms.observe(
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - queued.enqueued)
            .count());
  };

  if (batch.size() == 1) {
    // Light load: the synchronous reference path, unbatched.
    ++stats_.singleton_requests;
    try {
      wl::EnergyResult result = solve_singleton(batch.front().request);
      complete(batch.front(), result.energy, result.failed);
    } catch (const linalg::SingularMatrixError&) {
      complete(batch.front(), 0.0, true);
    }
    return;
  }

  std::vector<const spin::MomentConfiguration*> configs;
  configs.reserve(batch.size());
  for (const Queued& queued : batch)
    configs.push_back(&queued.request.config);
  try {
    const std::vector<lsms::LocalEnergies> energies =
        solver_->batch_energies(configs);
    stats_.batched_requests += batch.size();
    for (std::size_t i = 0; i < batch.size(); ++i)
      complete(batch[i], energies[i].total, false);
  } catch (const linalg::SingularMatrixError&) {
    // One singular member matrix abandons the co-batched solves mid-flight;
    // retry each request alone so only the truly singular ones fail —
    // exactly what the singleton path would have produced.
    metrics.batch_failures.inc();
    for (const Queued& queued : batch) {
      ++stats_.singleton_requests;
      try {
        wl::EnergyResult result = solve_singleton(queued.request);
        complete(queued, result.energy, result.failed);
      } catch (const linalg::SingularMatrixError&) {
        complete(queued, 0.0, true);
      }
    }
  }
}

std::vector<wl::EnergyRequest> BatchScheduler::take_session(
    std::uint64_t session) {
  std::vector<wl::EnergyRequest> taken;
  const auto it = queues_.find(session);
  if (it == queues_.end()) return taken;
  taken.reserve(it->second.size());
  for (Queued& queued : it->second)
    taken.push_back(std::move(queued.request));
  n_pending_ -= it->second.size();
  queues_.erase(it);
  scheduler_metrics().pending.set(static_cast<double>(n_pending_));
  return taken;
}

}  // namespace wlsms::serve
