#pragma once

/// \file failure.hpp
/// Failure injection for the resilience path. The paper's outlook (§V)
/// plans to "make the WL method resilient to the loss of processing
/// nodes"; the WlDriver implements that by resubmitting failed results,
/// and this decorator provides the faults to survive: each retrieved
/// result is converted into a failure with a configurable probability,
/// emulating an LSMS instance dying mid-calculation.

#include "common/rng.hpp"
#include "wl/energy_service.hpp"

namespace wlsms::parallel {

/// Decorator that randomly fails results from an inner service.
class FailureInjectingService final : public wl::EnergyService {
 public:
  /// Each result independently fails with `failure_probability`.
  FailureInjectingService(wl::EnergyService& inner, double failure_probability,
                          Rng rng);

  void submit(wl::EnergyRequest request) override;
  wl::EnergyResult retrieve() override;
  std::size_t outstanding() const override { return inner_.outstanding(); }

  std::uint64_t injected_failures() const { return injected_; }

 private:
  wl::EnergyService& inner_;
  double failure_probability_;
  Rng rng_;
  std::uint64_t injected_ = 0;
};

}  // namespace wlsms::parallel
