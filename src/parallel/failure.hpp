#pragma once

/// \file failure.hpp
/// Failure injection for the resilience path. The paper's outlook (§V)
/// plans to "make the WL method resilient to the loss of processing
/// nodes"; the WlDriver implements that by resubmitting failed results,
/// and this decorator provides the faults to survive: each *submitted*
/// request is lost with a configurable probability, emulating an LSMS
/// instance dying mid-calculation. A lost request never reaches the inner
/// service; it surfaces as a `failed` result from retrieve() and stays
/// counted in outstanding() until then, so the protocol invariant
/// "submitted = retrieved" holds and the driver can resubmit the same
/// configuration (possibly losing it again — retries are independent).

#include <deque>

#include "common/rng.hpp"
#include "wl/energy_service.hpp"

namespace wlsms::parallel {

/// Decorator that randomly loses submitted requests from an inner service.
class FailureInjectingService final : public wl::EnergyService {
 public:
  /// Each submission is independently lost with `failure_probability`.
  FailureInjectingService(wl::EnergyService& inner, double failure_probability,
                          Rng rng);

  void submit(wl::EnergyRequest request) override;

  /// Returns a pending failure notice if one exists, otherwise forwards to
  /// the inner service.
  wl::EnergyResult retrieve() override;

  /// Lost-but-unreported requests count as outstanding: the failure notice
  /// is still owed to the caller. (Forwarding to the inner service alone
  /// would undercount and let a driver drain loop exit with failures —
  /// and therefore resubmittable work — still queued.)
  std::size_t outstanding() const override {
    return inner_.outstanding() + failed_.size();
  }

  std::uint64_t injected_failures() const { return injected_; }

 private:
  wl::EnergyService& inner_;
  double failure_probability_;
  Rng rng_;
  std::deque<wl::EnergyResult> failed_;  ///< failure notices not yet retrieved
  std::uint64_t injected_ = 0;
};

}  // namespace wlsms::parallel
