#include "parallel/async_service.hpp"

#include "common/error.hpp"

namespace wlsms::parallel {

AsyncEnergyService::AsyncEnergyService(const wl::EnergyFunction& energy,
                                       std::size_t n_instances)
    : energy_(energy), pool_(n_instances) {}

void AsyncEnergyService::submit(wl::EnergyRequest request) {
  {
    const std::scoped_lock lock(mutex_);
    ++in_flight_;
  }
  pool_.post([this, request = std::move(request)] {
    wl::EnergyResult result{request.walker, request.ticket,
                            energy_.total_energy(request.config), false};
    {
      const std::scoped_lock lock(mutex_);
      results_.push_back(result);
      --in_flight_;
    }
    results_ready_.notify_one();
  });
}

wl::EnergyResult AsyncEnergyService::retrieve() {
  std::unique_lock lock(mutex_);
  WLSMS_EXPECTS(in_flight_ > 0 || !results_.empty());
  results_ready_.wait(lock, [this] { return !results_.empty(); });
  const wl::EnergyResult result = results_.front();
  results_.pop_front();
  return result;
}

std::size_t AsyncEnergyService::outstanding() const {
  const std::scoped_lock lock(mutex_);
  return in_flight_ + results_.size();
}

}  // namespace wlsms::parallel
