#pragma once

/// \file thread_pool.hpp
/// Fixed-size worker pool. Stands in for the farm of LSMS instances of the
/// paper's Fig. 3: each queued task is one instance's energy evaluation;
/// completion order is whatever the scheduler produces, which is exactly
/// the out-of-order arrival the WL driver must tolerate.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wlsms::parallel {

/// Simple FIFO thread pool.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t n_threads);

  /// Drains the queue and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; never blocks.
  void post(std::function<void()> task);

  std::size_t n_threads() const { return workers_.size(); }

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace wlsms::parallel
