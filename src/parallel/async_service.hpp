#pragma once

/// \file async_service.hpp
/// Thread-pool-backed EnergyService: the real asynchronous realization of
/// the paper's driver <-> instance protocol (Fig. 3). Each submitted
/// configuration is evaluated on a worker thread; retrieve() blocks on the
/// completion queue, so results genuinely arrive out of submission order
/// under scheduler noise — the condition §II-C says the driver must (and
/// does) tolerate.

#include <condition_variable>
#include <deque>
#include <mutex>

#include "parallel/thread_pool.hpp"
#include "wl/energy_service.hpp"

namespace wlsms::parallel {

/// Asynchronous energy service over a ThreadPool.
class AsyncEnergyService final : public wl::EnergyService {
 public:
  /// `energy` must be safe for concurrent total_energy calls (all backends
  /// in this library are) and must outlive the service.
  AsyncEnergyService(const wl::EnergyFunction& energy, std::size_t n_instances);

  void submit(wl::EnergyRequest request) override;
  wl::EnergyResult retrieve() override;
  std::size_t outstanding() const override;

 private:
  const wl::EnergyFunction& energy_;
  mutable std::mutex mutex_;
  std::condition_variable results_ready_;
  std::deque<wl::EnergyResult> results_;
  std::size_t in_flight_ = 0;
  // Declared last so it is destroyed *first*: ~ThreadPool joins the workers,
  // guaranteeing no task is still touching the mutex / condition variable /
  // queue above when they are destroyed.
  ThreadPool pool_;
};

}  // namespace wlsms::parallel
