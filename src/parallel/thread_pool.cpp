#include "parallel/thread_pool.hpp"

#include "common/error.hpp"

namespace wlsms::parallel {

ThreadPool::ThreadPool(std::size_t n_threads) {
  WLSMS_EXPECTS(n_threads >= 1);
  workers_.reserve(n_threads);
  for (std::size_t t = 0; t < n_threads; ++t)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    const std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::post(std::function<void()> task) {
  {
    const std::scoped_lock lock(mutex_);
    queue_.push_back(std::move(task));
  }
  wake_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace wlsms::parallel
