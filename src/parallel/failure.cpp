#include "parallel/failure.hpp"

#include "common/error.hpp"

namespace wlsms::parallel {

FailureInjectingService::FailureInjectingService(wl::EnergyService& inner,
                                                 double failure_probability,
                                                 Rng rng)
    : inner_(inner), failure_probability_(failure_probability), rng_(rng) {
  WLSMS_EXPECTS(failure_probability >= 0.0 && failure_probability < 1.0);
}

void FailureInjectingService::submit(wl::EnergyRequest request) {
  if (rng_.uniform() < failure_probability_) {
    // The instance assigned this request dies: the configuration is never
    // evaluated, and the master eventually learns via a failure notice.
    ++injected_;
    failed_.push_back({request.walker, request.ticket, 0.0, true});
    return;
  }
  inner_.submit(std::move(request));
}

wl::EnergyResult FailureInjectingService::retrieve() {
  WLSMS_EXPECTS(outstanding() > 0);
  if (!failed_.empty()) {
    const wl::EnergyResult result = failed_.front();
    failed_.pop_front();
    return result;
  }
  return inner_.retrieve();
}

}  // namespace wlsms::parallel
