#include "parallel/failure.hpp"

#include "common/error.hpp"

namespace wlsms::parallel {

FailureInjectingService::FailureInjectingService(wl::EnergyService& inner,
                                                 double failure_probability,
                                                 Rng rng)
    : inner_(inner), failure_probability_(failure_probability), rng_(rng) {
  WLSMS_EXPECTS(failure_probability >= 0.0 && failure_probability < 1.0);
}

void FailureInjectingService::submit(wl::EnergyRequest request) {
  inner_.submit(std::move(request));
}

wl::EnergyResult FailureInjectingService::retrieve() {
  wl::EnergyResult result = inner_.retrieve();
  if (!result.failed && rng_.uniform() < failure_probability_) {
    result.failed = true;
    result.energy = 0.0;
    ++injected_;
  }
  return result;
}

}  // namespace wlsms::parallel
