#include "wl/checkpoint.hpp"

#include <fstream>
#include <istream>
#include <ostream>

#include "common/error.hpp"
#include "common/serial.hpp"
#include "spin/serialize.hpp"

namespace wlsms::wl {

namespace {

void require(bool condition, const std::string& what) {
  if (!condition) throw CheckpointError(what);
}

std::vector<std::byte> encode(const Checkpoint& cp) {
  serial::Encoder e;
  serial::write_header(e, serial::PayloadKind::kCheckpoint);
  e.put_double(cp.grid.e_min);
  e.put_double(cp.grid.e_max);
  e.put_u64(cp.grid.bins);
  e.put_double(cp.grid.kernel_width_fraction);
  e.put_double(cp.gamma);
  e.put_u64(cp.total_steps);

  e.put_u64(cp.ln_g.size());
  for (double v : cp.ln_g) e.put_double(v);
  e.put_u64(cp.histogram.size());
  for (std::uint64_t v : cp.histogram) e.put_u64(v);
  e.put_u64(cp.visited.size());
  for (std::uint8_t v : cp.visited) e.put_u8(v);

  e.put_u64(cp.walkers.size());
  for (const spin::MomentConfiguration& w : cp.walkers)
    spin::encode_moments(e, w);
  return e.take();
}

Checkpoint decode(const std::vector<std::byte>& buffer) {
  serial::Decoder d(buffer);
  serial::read_header(d, serial::PayloadKind::kCheckpoint);

  Checkpoint cp;
  cp.grid.e_min = d.get_double();
  cp.grid.e_max = d.get_double();
  cp.grid.bins = static_cast<std::size_t>(d.get_u64());
  cp.grid.kernel_width_fraction = d.get_double();
  cp.gamma = d.get_double();
  cp.total_steps = d.get_u64();

  std::uint64_t count = d.get_u64();
  d.expect_sequence(count, sizeof(double));
  cp.ln_g.resize(static_cast<std::size_t>(count));
  for (double& v : cp.ln_g) v = d.get_double();

  count = d.get_u64();
  d.expect_sequence(count, sizeof(std::uint64_t));
  cp.histogram.resize(static_cast<std::size_t>(count));
  for (std::uint64_t& v : cp.histogram) v = d.get_u64();

  count = d.get_u64();
  d.expect_sequence(count, 1);
  cp.visited.resize(static_cast<std::size_t>(count));
  for (std::uint8_t& v : cp.visited) v = d.get_u8();

  count = d.get_u64();
  cp.walkers.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t w = 0; w < count; ++w)
    cp.walkers.push_back(spin::decode_moments(d));
  d.expect_end();
  return cp;
}

}  // namespace

void write_checkpoint(std::ostream& out, const Checkpoint& checkpoint) {
  const std::vector<std::byte> buffer = encode(checkpoint);
  out.write(reinterpret_cast<const char*>(buffer.data()),
            static_cast<std::streamsize>(buffer.size()));
}

Checkpoint read_checkpoint(std::istream& in) {
  std::vector<std::byte> buffer;
  char chunk[4096];
  while (in.read(chunk, sizeof(chunk)) || in.gcount() > 0)
    buffer.insert(buffer.end(), reinterpret_cast<std::byte*>(chunk),
                  reinterpret_cast<std::byte*>(chunk) + in.gcount());
  try {
    return decode(buffer);
  } catch (const serial::SerializationError& error) {
    throw CheckpointError(error.what());
  }
}

void save_checkpoint(const std::string& path, const Checkpoint& checkpoint) {
  std::ofstream out(path, std::ios::binary);
  require(out.good(), "cannot open for write: " + path);
  write_checkpoint(out, checkpoint);
  require(out.good(), "write failed: " + path);
}

Checkpoint load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  require(in.good(), "cannot open for read: " + path);
  return read_checkpoint(in);
}

Checkpoint make_checkpoint(const DosGrid& dos, double gamma,
                           std::uint64_t total_steps,
                           std::vector<spin::MomentConfiguration> walkers) {
  Checkpoint cp;
  cp.grid = dos.config();
  cp.ln_g = dos.ln_g_values();
  cp.histogram = dos.histogram();
  cp.visited = dos.visited();
  cp.gamma = gamma;
  cp.total_steps = total_steps;
  cp.walkers = std::move(walkers);
  return cp;
}

void restore_dos(const Checkpoint& checkpoint, DosGrid& dos) {
  WLSMS_EXPECTS(dos.bins() == checkpoint.ln_g.size());
  dos.set_ln_g_values(checkpoint.ln_g);
  dos.set_visited(checkpoint.visited);
}

}  // namespace wlsms::wl
