#include "wl/checkpoint.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace wlsms::wl {

namespace {

constexpr const char* kMagic = "wlsms-checkpoint";
constexpr int kVersion = 1;

void require(bool condition, const std::string& what) {
  if (!condition) throw CheckpointError(what);
}

}  // namespace

void write_checkpoint(std::ostream& out, const Checkpoint& checkpoint) {
  out.precision(17);
  out << kMagic << ' ' << kVersion << '\n';
  out << "grid " << checkpoint.grid.e_min << ' ' << checkpoint.grid.e_max
      << ' ' << checkpoint.grid.bins << ' '
      << checkpoint.grid.kernel_width_fraction << '\n';
  out << "gamma " << checkpoint.gamma << '\n';
  out << "steps " << checkpoint.total_steps << '\n';

  out << "ln_g " << checkpoint.ln_g.size() << '\n';
  for (double v : checkpoint.ln_g) out << v << '\n';
  out << "histogram " << checkpoint.histogram.size() << '\n';
  for (std::uint64_t v : checkpoint.histogram) out << v << '\n';
  out << "visited " << checkpoint.visited.size() << '\n';
  for (std::uint8_t v : checkpoint.visited) out << static_cast<int>(v) << '\n';

  out << "walkers " << checkpoint.walkers.size() << '\n';
  for (const spin::MomentConfiguration& w : checkpoint.walkers) {
    out << w.size() << '\n';
    for (const Vec3& d : w.directions())
      out << d.x << ' ' << d.y << ' ' << d.z << '\n';
  }
}

Checkpoint read_checkpoint(std::istream& in) {
  Checkpoint cp;
  std::string token;
  int version = 0;
  require(static_cast<bool>(in >> token >> version), "missing header");
  require(token == kMagic, "bad magic: " + token);
  require(version == kVersion, "unsupported version");

  require(static_cast<bool>(in >> token) && token == "grid", "missing grid");
  require(static_cast<bool>(in >> cp.grid.e_min >> cp.grid.e_max >>
                            cp.grid.bins >> cp.grid.kernel_width_fraction),
          "bad grid line");

  require(static_cast<bool>(in >> token) && token == "gamma", "missing gamma");
  require(static_cast<bool>(in >> cp.gamma), "bad gamma");
  require(static_cast<bool>(in >> token) && token == "steps", "missing steps");
  require(static_cast<bool>(in >> cp.total_steps), "bad steps");

  std::size_t count = 0;
  require(static_cast<bool>(in >> token >> count) && token == "ln_g",
          "missing ln_g");
  cp.ln_g.resize(count);
  for (double& v : cp.ln_g)
    require(static_cast<bool>(in >> v), "truncated ln_g");

  require(static_cast<bool>(in >> token >> count) && token == "histogram",
          "missing histogram");
  cp.histogram.resize(count);
  for (std::uint64_t& v : cp.histogram)
    require(static_cast<bool>(in >> v), "truncated histogram");

  require(static_cast<bool>(in >> token >> count) && token == "visited",
          "missing visited");
  cp.visited.resize(count);
  for (std::uint8_t& v : cp.visited) {
    int value = 0;
    require(static_cast<bool>(in >> value), "truncated visited");
    v = static_cast<std::uint8_t>(value);
  }

  require(static_cast<bool>(in >> token >> count) && token == "walkers",
          "missing walkers");
  cp.walkers.reserve(count);
  for (std::size_t w = 0; w < count; ++w) {
    std::size_t n = 0;
    require(static_cast<bool>(in >> n), "truncated walker count");
    std::vector<Vec3> dirs(n);
    for (Vec3& d : dirs)
      require(static_cast<bool>(in >> d.x >> d.y >> d.z), "truncated walker");
    cp.walkers.push_back(spin::MomentConfiguration::from_directions(dirs));
  }
  return cp;
}

void save_checkpoint(const std::string& path, const Checkpoint& checkpoint) {
  std::ofstream out(path);
  require(out.good(), "cannot open for write: " + path);
  write_checkpoint(out, checkpoint);
  require(out.good(), "write failed: " + path);
}

Checkpoint load_checkpoint(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), "cannot open for read: " + path);
  return read_checkpoint(in);
}

Checkpoint make_checkpoint(const DosGrid& dos, double gamma,
                           std::uint64_t total_steps,
                           std::vector<spin::MomentConfiguration> walkers) {
  Checkpoint cp;
  cp.grid = dos.config();
  cp.ln_g = dos.ln_g_values();
  cp.histogram = dos.histogram();
  cp.visited = dos.visited();
  cp.gamma = gamma;
  cp.total_steps = total_steps;
  cp.walkers = std::move(walkers);
  return cp;
}

void restore_dos(const Checkpoint& checkpoint, DosGrid& dos) {
  WLSMS_EXPECTS(dos.bins() == checkpoint.ln_g.size());
  dos.set_ln_g_values(checkpoint.ln_g);
  dos.set_visited(checkpoint.visited);
}

}  // namespace wlsms::wl
