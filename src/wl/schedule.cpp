#include "wl/schedule.hpp"

#include "common/error.hpp"

namespace wlsms::wl {

HalvingSchedule::HalvingSchedule(double gamma_initial, double gamma_final)
    : gamma_(gamma_initial), gamma_final_(gamma_final) {
  WLSMS_EXPECTS(gamma_initial > gamma_final && gamma_final > 0.0);
}

double HalvingSchedule::on_flat_histogram(std::uint64_t total_steps) {
  (void)total_steps;
  gamma_ *= 0.5;
  ++iterations_;
  return gamma_;
}

std::unique_ptr<ModificationSchedule> HalvingSchedule::clone() const {
  return std::make_unique<HalvingSchedule>(*this);
}

OneOverTSchedule::OneOverTSchedule(std::size_t bins, double gamma_initial,
                                   double gamma_final)
    : bins_(static_cast<double>(bins)),
      gamma_(gamma_initial),
      gamma_final_(gamma_final) {
  WLSMS_EXPECTS(bins >= 1);
  WLSMS_EXPECTS(gamma_initial > gamma_final && gamma_final > 0.0);
}

double OneOverTSchedule::on_flat_histogram(std::uint64_t total_steps) {
  if (!one_over_t_) {
    gamma_ *= 0.5;
    const double one_over_t =
        bins_ / static_cast<double>(total_steps > 0 ? total_steps : 1);
    if (gamma_ < one_over_t) one_over_t_ = true;
  }
  return gamma_;
}

double OneOverTSchedule::on_step(std::uint64_t total_steps) {
  if (one_over_t_ && total_steps > 0) {
    const double one_over_t = bins_ / static_cast<double>(total_steps);
    if (one_over_t < gamma_) gamma_ = one_over_t;
  }
  return gamma_;
}

std::unique_ptr<ModificationSchedule> OneOverTSchedule::clone() const {
  return std::make_unique<OneOverTSchedule>(*this);
}

}  // namespace wlsms::wl
