#include "wl/energy_function.hpp"

#include <utility>

#include "common/error.hpp"
#include "perf/flops.hpp"

namespace wlsms::wl {

double EnergyFunction::energy_after_move(
    const spin::MomentConfiguration& moments, const spin::TrialMove& move,
    double current_energy) const {
  (void)current_energy;
  spin::MomentConfiguration trial = moments;
  trial.set(move.site, move.new_direction);
  return total_energy(trial);
}

HeisenbergEnergy::HeisenbergEnergy(heisenberg::HeisenbergModel model)
    : model_(std::move(model)) {}

double HeisenbergEnergy::total_energy(
    const spin::MomentConfiguration& moments) const {
  return model_.energy(moments);
}

double HeisenbergEnergy::energy_after_move(
    const spin::MomentConfiguration& moments, const spin::TrialMove& move,
    double current_energy) const {
  return current_energy + model_.energy_delta(moments, move);
}

std::uint64_t HeisenbergEnergy::flops_per_evaluation() const {
  // Dot product (5 flops) + multiply-accumulate (2) per bond.
  return 7ULL * model_.bonds().size();
}

LsmsEnergy::LsmsEnergy(std::shared_ptr<const lsms::LsmsSolver> solver)
    : solver_(std::move(solver)) {
  WLSMS_EXPECTS(solver_ != nullptr);
}

double LsmsEnergy::total_energy(
    const spin::MomentConfiguration& moments) const {
  return solver_->energy(moments);
}

std::uint64_t LsmsEnergy::flops_per_evaluation() const {
  return solver_->flops_per_energy();
}

HeisenbergEnergy make_surrogate_energy(const lattice::Structure& structure,
                                       const lsms::ExtractedExchange& exchange,
                                       double energy_scale) {
  WLSMS_EXPECTS(energy_scale > 0.0);
  std::vector<double> j_shells;
  j_shells.reserve(exchange.shells.size());
  for (const lsms::ShellExchange& s : exchange.shells)
    j_shells.push_back(energy_scale * s.j);
  return HeisenbergEnergy(heisenberg::HeisenbergModel(structure, j_shells));
}

}  // namespace wlsms::wl
