#pragma once

/// \file energy_function.hpp
/// The energy-functional interface the Wang-Landau machinery samples, plus
/// adapters for every backend in this repository.
///
/// The paper's split is exactly this interface: the Wang-Landau driver knows
/// nothing about the energy other than "submit a configuration, get E back"
/// (§II-C); the LSMS instances implement it. Backends:
///  - LsmsEnergy:      the multiple-scattering substrate (direct WL-LSMS);
///  - HeisenbergEnergy: an explicit classical Heisenberg model;
///  - SurrogateEnergy: the Heisenberg model with couplings extracted from
///    the LSMS substrate (production converger, DESIGN.md §2).

#include <cstdint>
#include <memory>

#include "heisenberg/heisenberg.hpp"
#include "lsms/exchange.hpp"
#include "lsms/solver.hpp"
#include "spin/moments.hpp"
#include "spin/moves.hpp"

namespace wlsms::wl {

/// A classical energy functional over moment configurations.
class EnergyFunction {
 public:
  virtual ~EnergyFunction() = default;

  /// Number of moments a configuration must carry.
  virtual std::size_t n_sites() const = 0;

  /// Total energy of `moments` [Ry].
  virtual double total_energy(
      const spin::MomentConfiguration& moments) const = 0;

  /// Energy after applying `move` to `moments` whose current energy is
  /// `current_energy`. The default recomputes from scratch; backends with a
  /// cheap local update override it.
  virtual double energy_after_move(const spin::MomentConfiguration& moments,
                                   const spin::TrialMove& move,
                                   double current_energy) const;

  /// Approximate real flops one total_energy evaluation costs; lets the
  /// harnesses report sustained-performance numbers per backend.
  virtual std::uint64_t flops_per_evaluation() const { return 0; }
};

/// Classical Heisenberg backend with O(coordination) move updates.
class HeisenbergEnergy final : public EnergyFunction {
 public:
  explicit HeisenbergEnergy(heisenberg::HeisenbergModel model);

  const heisenberg::HeisenbergModel& model() const { return model_; }

  std::size_t n_sites() const override { return model_.n_sites(); }
  double total_energy(const spin::MomentConfiguration& moments) const override;
  double energy_after_move(const spin::MomentConfiguration& moments,
                           const spin::TrialMove& move,
                           double current_energy) const override;
  std::uint64_t flops_per_evaluation() const override;

 private:
  heisenberg::HeisenbergModel model_;
};

/// Direct multiple-scattering backend (one LIZ solve per atom).
class LsmsEnergy final : public EnergyFunction {
 public:
  explicit LsmsEnergy(std::shared_ptr<const lsms::LsmsSolver> solver);

  const lsms::LsmsSolver& solver() const { return *solver_; }

  /// Shared ownership of the solver, for services that outlive or shard it
  /// (the distributed energy service forks workers around this pointer).
  std::shared_ptr<const lsms::LsmsSolver> solver_ptr() const { return solver_; }

  std::size_t n_sites() const override { return solver_->n_atoms(); }
  double total_energy(const spin::MomentConfiguration& moments) const override;
  std::uint64_t flops_per_evaluation() const override;

 private:
  std::shared_ptr<const lsms::LsmsSolver> solver_;
};

/// Builds the production surrogate: a HeisenbergEnergy whose shell couplings
/// come from an LSMS extraction, optionally rescaled by `energy_scale` (the
/// Curie-temperature calibration of fe_parameters.hpp). The extraction's
/// constant offset e0 is dropped: only energy differences matter to the
/// statistical mechanics, and dropping it puts the ferromagnetic minimum of
/// the surrogate at -sum(J) like any Heisenberg model.
HeisenbergEnergy make_surrogate_energy(const lattice::Structure& structure,
                                       const lsms::ExtractedExchange& exchange,
                                       double energy_scale = 1.0);

}  // namespace wlsms::wl
