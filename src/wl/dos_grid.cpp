#include "wl/dos_grid.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace wlsms::wl {

DosGrid::DosGrid(const DosGridConfig& config) : config_(config) {
  WLSMS_EXPECTS(config.e_max > config.e_min);
  WLSMS_EXPECTS(config.bins >= 3);
  WLSMS_EXPECTS(config.kernel_width_fraction > 0.0 &&
                config.kernel_width_fraction < 1.0);
  bin_width_ = (config.e_max - config.e_min) / static_cast<double>(config.bins);
  kernel_width_ = config.kernel_width_fraction * (config.e_max - config.e_min);
  ln_g_.assign(config.bins, 0.0);
  histogram_.assign(config.bins, 0);
  visited_.assign(config.bins, 0);
}

double DosGrid::bin_center(std::size_t b) const {
  WLSMS_EXPECTS(b < bins());
  return config_.e_min + (static_cast<double>(b) + 0.5) * bin_width_;
}

bool DosGrid::contains(double e) const {
  return e >= config_.e_min && e < config_.e_max;
}

std::size_t DosGrid::bin_index(double e) const {
  WLSMS_EXPECTS(contains(e));
  const auto b =
      static_cast<std::size_t>((e - config_.e_min) / bin_width_);
  return std::min(b, bins() - 1);
}

double DosGrid::ln_g(double e) const {
  WLSMS_EXPECTS(contains(e));
  // Piecewise-linear interpolation on bin centres, clamped at the ends.
  // Interpolation never crosses into a bin the walk has not visited: such
  // bins carry only kernel spill-over, and mixing them in makes energies in
  // the outer half of a support-edge bin look artificially probable — a
  // walker there would reject every outbound proposal and deposit into the
  // edge bin without bound (see tests/test_wl_exact.cpp).
  const double x = (e - config_.e_min) / bin_width_ - 0.5;
  if (x <= 0.0) return ln_g_.front();
  const double upper = static_cast<double>(bins() - 1);
  if (x >= upper) return ln_g_.back();
  const auto b = static_cast<std::size_t>(x);
  const double frac = x - static_cast<double>(b);
  const bool lo_visited = visited_[b] != 0;
  const bool hi_visited = visited_[b + 1] != 0;
  if (lo_visited && !hi_visited) return ln_g_[b];
  if (!lo_visited && hi_visited) return ln_g_[b + 1];
  return (1.0 - frac) * ln_g_[b] + frac * ln_g_[b + 1];
}

bool DosGrid::visit(double e, double gamma) {
  WLSMS_EXPECTS(contains(e));
  WLSMS_EXPECTS(gamma >= 0.0);
  // Epanechnikov-kernel update of eq. 8 over all bins within the support.
  const double lo = e - kernel_width_;
  const double hi = e + kernel_width_;
  const std::size_t b_lo =
      contains(lo) ? bin_index(lo) : (lo < config_.e_min ? 0 : bins() - 1);
  const std::size_t b_hi =
      contains(hi) ? bin_index(hi) : (hi < config_.e_min ? 0 : bins() - 1);
  for (std::size_t b = b_lo; b <= b_hi; ++b) {
    const double x = (bin_center(b) - e) / kernel_width_;
    const double k = 1.0 - x * x;
    if (k > 0.0) ln_g_[b] += gamma * k;
  }
  const std::size_t hit = bin_index(e);
  ++histogram_[hit];
  const bool newly_visited = (visited_[hit] == 0);
  visited_[hit] = 1;
  return newly_visited;
}

void DosGrid::reset_histogram() {
  std::fill(histogram_.begin(), histogram_.end(), 0);
}

std::vector<double> DosGrid::smoothed_histogram() const {
  const auto margin =
      static_cast<std::ptrdiff_t>(std::ceil(kernel_width_ / bin_width_));
  const auto n = static_cast<std::ptrdiff_t>(bins());
  std::vector<double> smoothed(bins(), 0.0);
  for (std::ptrdiff_t b = 0; b < n; ++b) {
    if (!visited_[static_cast<std::size_t>(b)]) continue;
    double weighted = 0.0;
    double weight_sum = 0.0;
    for (std::ptrdiff_t d = -margin; d <= margin; ++d) {
      const std::ptrdiff_t other = b + d;
      if (other < 0 || other >= n) continue;
      if (!visited_[static_cast<std::size_t>(other)]) continue;
      const double x = static_cast<double>(d) * bin_width_ / kernel_width_;
      const double k = 1.0 - x * x;
      if (k <= 0.0) continue;
      weighted += k * static_cast<double>(
                          histogram_[static_cast<std::size_t>(other)]);
      weight_sum += k;
    }
    if (weight_sum > 0.0)
      smoothed[static_cast<std::size_t>(b)] = weighted / weight_sum;
  }
  return smoothed;
}

bool DosGrid::is_flat(double flatness_a, double min_mean_visits) const {
  WLSMS_EXPECTS(flatness_a > 0.0 && flatness_a < 1.0);
  const std::vector<double> smoothed = smoothed_histogram();

  double min_count = 1e300;
  double sum = 0.0;
  std::size_t n_visited = 0;
  for (std::size_t b = 0; b < bins(); ++b) {
    if (!visited_[b]) continue;
    ++n_visited;
    sum += smoothed[b];
    min_count = std::min(min_count, smoothed[b]);
  }
  if (n_visited < 2) return false;
  const double mean = sum / static_cast<double>(n_visited);
  if (mean < min_mean_visits) return false;
  return min_count >= flatness_a * mean;
}

double DosGrid::flatness_ratio() const {
  const std::vector<double> smoothed = smoothed_histogram();
  double min_count = 1e300;
  double sum = 0.0;
  std::size_t n_visited = 0;
  for (std::size_t b = 0; b < bins(); ++b) {
    if (!visited_[b]) continue;
    ++n_visited;
    sum += smoothed[b];
    min_count = std::min(min_count, smoothed[b]);
  }
  if (n_visited < 2 || sum <= 0.0) return 0.0;
  return min_count * static_cast<double>(n_visited) / sum;
}

std::size_t DosGrid::visited_bins() const {
  std::size_t n = 0;
  for (std::uint8_t v : visited_) n += v;
  return n;
}

std::uint64_t DosGrid::histogram_total() const {
  std::uint64_t sum = 0;
  for (std::uint64_t h : histogram_) sum += h;
  return sum;
}

void DosGrid::set_ln_g_values(std::vector<double> values) {
  WLSMS_EXPECTS(values.size() == bins());
  ln_g_ = std::move(values);
}

void DosGrid::set_visited(std::vector<std::uint8_t> visited) {
  WLSMS_EXPECTS(visited.size() == bins());
  visited_ = std::move(visited);
}

std::vector<std::pair<double, double>> DosGrid::visited_series() const {
  double min_ln_g = 0.0;
  bool first = true;
  for (std::size_t b = 0; b < bins(); ++b) {
    if (!visited_[b]) continue;
    if (first || ln_g_[b] < min_ln_g) min_ln_g = ln_g_[b];
    first = false;
  }
  std::vector<std::pair<double, double>> series;
  for (std::size_t b = 0; b < bins(); ++b)
    if (visited_[b]) series.emplace_back(bin_center(b), ln_g_[b] - min_ln_g);
  return series;
}

}  // namespace wlsms::wl
