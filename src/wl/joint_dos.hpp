#pragma once

/// \file joint_dos.hpp
/// Two-dimensional density of states g(E, M) over energy and a second
/// collective variable (here the magnetization component M_z).
///
/// The paper notes that the magnetization as a function of temperature is
/// recovered "in a joint density of states calculation" (§II-B), and its
/// motivating application — temperature-dependent switching barriers of FePt
/// nanoparticles (refs [14], [15]) — needs the free-energy profile F(M_z; T),
/// which is exactly what this joint DOS provides:
///
///   F(M; T) = -k_B T ln Integral g(E, M) e^{-E/(k_B T)} dE .
///
/// Updates use the product of two Epanechnikov kernels (the 2-D analogue of
/// eq. 8), and flatness is evaluated over ever-visited cells.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace wlsms::wl {

/// Grid layout for the joint estimate.
struct JointDosConfig {
  double e_min = 0.0;
  double e_max = 1.0;
  std::size_t e_bins = 101;
  double m_min = -1.0;
  double m_max = 1.0;
  std::size_t m_bins = 41;
  double e_kernel_fraction = 0.02;  ///< kernel width / energy range
  double m_kernel_fraction = 0.05;  ///< kernel width / magnetization range
};

/// ln g(E, M) estimate plus visit histogram on a uniform 2-D grid.
class JointDos {
 public:
  explicit JointDos(const JointDosConfig& config);

  const JointDosConfig& config() const { return config_; }
  std::size_t e_bins() const { return config_.e_bins; }
  std::size_t m_bins() const { return config_.m_bins; }

  double e_center(std::size_t be) const;
  double m_center(std::size_t bm) const;

  bool contains(double e, double m) const;

  /// Bilinear-interpolated ln g at (e, m); requires contains(e, m).
  double ln_g(double e, double m) const;

  /// One WL visit at (e, m): 2-D kernel update, histogram hit, mark visited.
  /// Returns true when the cell was visited for the first time.
  bool visit(double e, double m, double gamma);

  void reset_histogram();

  /// Flatness criterion of eq. 7, min H >= flatness_a * mean H, evaluated
  /// over the cells hit during the *current* iteration (H > 0).
  ///
  /// Unlike the 1-D grid, a 2-D support has a long reachability boundary:
  /// cells discovered once during the exploratory high-gamma phase can be
  /// unreachable under the refined estimate, so a criterion over all
  /// ever-visited cells never fires. Restricting to currently-hit cells
  /// makes the criterion well defined; the sampler guards against a
  /// spuriously shrunken support by also requiring the hit-cell count to
  /// stay near the previous iteration's (JointWangLandau::step).
  bool is_flat(double flatness_a, double min_mean_visits = 10.0) const;

  /// Number of cells with H > 0 in the current iteration.
  std::size_t hit_cells() const;

  std::size_t visited_cells() const;

  /// Raw ln g of cell (be, bm).
  double cell_ln_g(std::size_t be, std::size_t bm) const;
  bool cell_visited(std::size_t be, std::size_t bm) const;
  std::uint64_t cell_hits(std::size_t be, std::size_t bm) const;

 private:
  std::size_t cell(std::size_t be, std::size_t bm) const {
    return be * config_.m_bins + bm;
  }

  JointDosConfig config_;
  double e_width_ = 0.0;
  double m_width_ = 0.0;
  double e_kernel_ = 0.0;
  double m_kernel_ = 0.0;
  std::vector<double> ln_g_;
  std::vector<std::uint64_t> histogram_;
  std::vector<std::uint8_t> visited_;
};

}  // namespace wlsms::wl
