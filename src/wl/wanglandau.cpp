#include "wl/wanglandau.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace wlsms::wl {

WangLandau::WangLandau(const EnergyFunction& energy,
                       const WangLandauConfig& config,
                       std::unique_ptr<ModificationSchedule> schedule, Rng rng)
    : energy_(energy),
      config_(config),
      dos_(config.grid),
      schedule_(std::move(schedule)),
      rng_(rng) {
  WLSMS_EXPECTS(config.n_walkers >= 1);
  WLSMS_EXPECTS(config.flatness > 0.0 && config.flatness < 1.0);
  WLSMS_EXPECTS(config.check_interval >= 1);
  WLSMS_EXPECTS(schedule_ != nullptr);

  walkers_.reserve(config.n_walkers);
  for (std::size_t w = 0; w < config.n_walkers; ++w) {
    Walker walker;
    walker.config =
        spin::MomentConfiguration::random(energy_.n_sites(), rng_);
    walker.energy = energy_.total_energy(walker.config);
    WLSMS_EXPECTS(dos_.contains(walker.energy));
    walkers_.push_back(std::move(walker));
  }
}

WangLandau::WangLandau(const EnergyFunction& energy,
                       const WangLandauConfig& config,
                       std::unique_ptr<ModificationSchedule> schedule, Rng rng,
                       const std::vector<spin::MomentConfiguration>&
                           initial_walkers)
    : energy_(energy),
      config_(config),
      dos_(config.grid),
      schedule_(std::move(schedule)),
      rng_(rng) {
  WLSMS_EXPECTS(config.n_walkers >= 1);
  WLSMS_EXPECTS(config.flatness > 0.0 && config.flatness < 1.0);
  WLSMS_EXPECTS(config.check_interval >= 1);
  WLSMS_EXPECTS(schedule_ != nullptr);
  WLSMS_EXPECTS(initial_walkers.size() == config.n_walkers);

  walkers_.reserve(config.n_walkers);
  for (const spin::MomentConfiguration& initial : initial_walkers) {
    WLSMS_EXPECTS(initial.size() == energy_.n_sites());
    Walker walker;
    walker.config = initial;
    walker.energy = energy_.total_energy(walker.config);
    WLSMS_EXPECTS(dos_.contains(walker.energy));
    walkers_.push_back(std::move(walker));
  }
}

void WangLandau::set_walker(std::size_t w,
                            const spin::MomentConfiguration& config) {
  WLSMS_EXPECTS(w < walkers_.size());
  WLSMS_EXPECTS(config.size() == energy_.n_sites());
  walkers_[w].config = config;
  walkers_[w].energy = energy_.total_energy(config);
  WLSMS_EXPECTS(dos_.contains(walkers_[w].energy));
}

void WangLandau::advance(Walker& walker) {
  const spin::TrialMove move = move_generator_.propose(walker.config, rng_);
  const double e_new =
      energy_.energy_after_move(walker.config, move, walker.energy);
  ++stats_.total_steps;

  bool accepted = false;
  if (!dos_.contains(e_new)) {
    // Proposals outside the window are rejected outright; the walk still
    // deposits weight at its current energy.
    ++stats_.out_of_range;
  } else {
    // Flat-histogram acceptance, eq. 5: min[1, g(E_old)/g(E_new)].
    const double ln_ratio = dos_.ln_g(walker.energy) - dos_.ln_g(e_new);
    if (ln_ratio >= 0.0 || rng_.uniform() < std::exp(ln_ratio)) {
      walker.config.set(move.site, move.new_direction);
      walker.energy = e_new;
      ++stats_.accepted_steps;
      accepted = true;
    }
  }

  // Refresh the incrementally tracked energy periodically so floating-point
  // drift cannot accumulate over long walks.
  if (stats_.total_steps % (1u << 22) == 0)
    walker.energy = energy_.total_energy(walker.config);

  // Update g and H at the walker's current (post-decision) energy. A
  // first-time bin visit restarts the flatness clock: the support grew.
  if (accepted || config_.update_on_rejection) {
    if (dos_.visit(walker.energy, schedule_->gamma())) dos_.reset_histogram();
  }
  schedule_->on_step(stats_.total_steps);
}

bool WangLandau::step() {
  if (converged() || stats_.total_steps >= config_.max_steps) return false;
  for (Walker& walker : walkers_) advance(walker);
  iteration_steps_ += walkers_.size();

  const std::uint64_t cap = config_.max_iteration_steps > 0
                                ? config_.max_iteration_steps
                                : 1000 * dos_.bins();
  if (stats_.total_steps / config_.check_interval !=
      (stats_.total_steps - walkers_.size()) / config_.check_interval) {
    {
      const obs::Span span("wl.flatness_check");
      const bool flat = dos_.is_flat(config_.flatness);
      if (flat || iteration_steps_ >= cap) {
        schedule_->on_flat_histogram(stats_.total_steps);
        dos_.reset_histogram();
        ++stats_.iterations;
        if (!flat) ++stats_.forced_iterations;
        iteration_steps_ = 0;
      }
    }
    publish_metrics();
  }
  return !converged() && stats_.total_steps < config_.max_steps;
}

void WangLandau::publish_metrics() {
  // Batched at flatness-check boundaries so the per-step hot path stays
  // untouched; counters take deltas against what was already published.
  static obs::Counter& steps = obs::Registry::instance().counter("wl.steps");
  static obs::Counter& accepted =
      obs::Registry::instance().counter("wl.accepted_steps");
  static obs::Counter& out_of_range =
      obs::Registry::instance().counter("wl.out_of_range");
  static obs::Counter& iterations =
      obs::Registry::instance().counter("wl.iterations");
  static obs::Gauge& acceptance_rate =
      obs::Registry::instance().gauge("wl.acceptance_rate");
  static obs::Gauge& flatness_ratio =
      obs::Registry::instance().gauge("wl.flatness_ratio");
  static obs::Gauge& ln_f = obs::Registry::instance().gauge("wl.ln_f");

  steps.add(stats_.total_steps - published_.total_steps);
  accepted.add(stats_.accepted_steps - published_.accepted_steps);
  out_of_range.add(stats_.out_of_range - published_.out_of_range);
  iterations.add(stats_.iterations - published_.iterations);
  published_ = stats_;

  if (stats_.total_steps > 0)
    acceptance_rate.set(static_cast<double>(stats_.accepted_steps) /
                        static_cast<double>(stats_.total_steps));
  flatness_ratio.set(dos_.flatness_ratio());
  ln_f.set(schedule_->gamma());
}

const WangLandauStats& WangLandau::run() {
  // One wl.sweep span per flatness-check interval: coarse enough not to
  // swamp the trace ring, fine enough to show the walk's cadence.
  while (true) {
    const obs::Span span("wl.sweep");
    const std::uint64_t target = stats_.total_steps + config_.check_interval;
    bool more = true;
    while ((more = step()) && stats_.total_steps < target) {
    }
    if (!more) break;
  }
  publish_metrics();  // counts accumulated since the last check boundary
  return stats_;
}

const spin::MomentConfiguration& WangLandau::walker_config(
    std::size_t w) const {
  WLSMS_EXPECTS(w < walkers_.size());
  return walkers_[w].config;
}

double WangLandau::walker_energy(std::size_t w) const {
  WLSMS_EXPECTS(w < walkers_.size());
  return walkers_[w].energy;
}

DosGridConfig thermal_window(const EnergyFunction& energy, double e_ground,
                             double t_min_k, Rng& rng, std::size_t bins,
                             double n_sigma, std::size_t samples) {
  WLSMS_EXPECTS(t_min_k > 0.0);
  WLSMS_EXPECTS(n_sigma > 0.0);
  WLSMS_EXPECTS(samples >= 16);

  double sum = 0.0;
  double sum2 = 0.0;
  for (std::size_t s = 0; s < samples; ++s) {
    const double e = energy.total_energy(
        spin::MomentConfiguration::random(energy.n_sites(), rng));
    sum += e;
    sum2 += e * e;
  }
  const double mean = sum / static_cast<double>(samples);
  const double var =
      std::max(0.0, sum2 / static_cast<double>(samples) - mean * mean);
  const double sigma = std::sqrt(var);

  DosGridConfig grid;
  grid.e_min = e_ground + 0.5 * static_cast<double>(energy.n_sites()) *
                              units::k_boltzmann_ry * t_min_k;
  grid.e_max = mean + n_sigma * sigma;
  grid.bins = bins;
  WLSMS_ENSURES(grid.e_max > grid.e_min);
  return grid;
}

DosGridConfig bracket_heisenberg_window(const HeisenbergEnergy& energy,
                                        std::size_t bins,
                                        double margin_fraction) {
  const double e_fm = energy.model().ferromagnetic_energy();
  WLSMS_EXPECTS(e_fm < 0.0);
  const double e_top = -e_fm;
  const double margin = margin_fraction * (e_top - e_fm);
  DosGridConfig grid;
  grid.e_min = e_fm - margin;
  grid.e_max = e_top + margin;
  grid.bins = bins;
  return grid;
}

}  // namespace wlsms::wl
