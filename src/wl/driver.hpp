#pragma once

/// \file driver.hpp
/// The master process of the paper's two-level parallelization: a single
/// Wang-Landau driver owning the density of states and all walker
/// configurations, feeding trial configurations to an EnergyService and
/// consuming energies as they arrive — possibly out of submission order
/// (§II-C: "this destroys the determinism of the pseudorandom-number
/// sequence ... this has no negative effect on the convergence").
///
/// The driver also implements the resilience behaviour the paper lists as
/// future work (§V): a result flagged `failed` (its instance died) is simply
/// resubmitted, so the random walk survives the loss of processing nodes.

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "spin/moments.hpp"
#include "spin/moves.hpp"
#include "wl/dos_grid.hpp"
#include "wl/energy_function.hpp"
#include "wl/energy_service.hpp"
#include "wl/schedule.hpp"
#include "wl/wanglandau.hpp"

namespace wlsms::wl {

/// Counters of a driver run.
struct DriverStats {
  std::uint64_t total_steps = 0;     ///< results processed (energy calcs)
  std::uint64_t accepted_steps = 0;
  std::uint64_t out_of_range = 0;
  std::uint64_t resubmissions = 0;   ///< failed results re-posted
  std::size_t iterations = 0;        ///< gamma reductions
  std::size_t forced_iterations = 0; ///< gamma cuts by iteration-step cap
};

/// Asynchronous master-slave Wang-Landau driver (paper Alg. 1 / Fig. 3).
class WlDriver {
 public:
  /// `service` computes energies for configurations of `n_sites` moments;
  /// the driver keeps exactly one request in flight per walker.
  WlDriver(std::size_t n_sites, EnergyService& service,
           const WangLandauConfig& config,
           std::unique_ptr<ModificationSchedule> schedule, Rng rng);

  /// Runs Algorithm 1 until the schedule converges or the step cap is hit,
  /// then drains outstanding requests so the service is left idle.
  const DriverStats& run();

  const DosGrid& dos() const { return dos_; }
  const DriverStats& stats() const { return stats_; }
  const ModificationSchedule& schedule() const { return *schedule_; }
  std::size_t n_walkers() const { return walkers_.size(); }

 private:
  struct Walker {
    spin::MomentConfiguration current;   ///< last accepted configuration
    double energy = 0.0;                 ///< its energy (valid once seeded)
    bool seeded = false;                 ///< initial energy received
    spin::MomentConfiguration trial;     ///< configuration in flight
    spin::TrialMove pending_move;        ///< move that produced `trial`
    std::uint64_t ticket = 0;            ///< ticket of the in-flight request
  };

  void submit_initial(std::size_t w);
  void submit_trial(std::size_t w);
  /// The in-flight trial of walker `w` as a hinted request (fresh or retry).
  EnergyRequest trial_request(std::size_t w) const;
  void process(const EnergyResult& result);
  void record_visit(Walker& walker);
  void publish_metrics();

  EnergyService& service_;
  WangLandauConfig config_;
  DosGrid dos_;
  std::unique_ptr<ModificationSchedule> schedule_;
  Rng rng_;
  spin::UniformSphereMove move_generator_;
  std::vector<Walker> walkers_;
  DriverStats stats_;
  std::uint64_t next_ticket_ = 1;
  std::uint64_t iteration_steps_ = 0;
  DriverStats published_;  ///< counts already pushed to the registry
};

}  // namespace wlsms::wl
