#include "wl/speculator.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/error.hpp"
#include "linalg/lu.hpp"
#include "obs/metrics.hpp"
#include "spin/moves.hpp"

namespace wlsms::wl {
namespace {

/// Tikhonov scale of the online refit. The rows a random walk produces are
/// correlated (consecutive configurations differ by one moment), so the
/// unregularized normal equations go near-singular early in a window.
constexpr double kRefitRidge = 1e-10;

/// Shared log-spaced bounds [Ry] of the residual histograms. The paper's
/// energies are O(1) Ry per cell; surrogate residuals of interest span
/// sub-uRy (converged fit) to ~0.1 Ry (cold or broken fit).
std::vector<double> residual_bounds() {
  return {1e-7, 3e-7, 1e-6, 3e-6, 1e-5, 3e-5,
          1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1};
}

std::vector<double> initial_couplings(const SpeculationConfig& config) {
  std::vector<double> j = config.initial_j;
  j.resize(config.n_shells, 0.0);
  return j;
}

}  // namespace

Speculator::Speculator(const lattice::Structure& structure,
                       SpeculationConfig config)
    : config_(std::move(config)),
      structure_(structure),
      j_(initial_couplings(config_)),
      model_(structure_, j_),
      bonds_(lsms::enumerate_bonds(structure_, config_.n_shells, nullptr)) {
  WLSMS_EXPECTS(config_.band >= 0.0);
  WLSMS_EXPECTS(config_.audit_fraction >= 0.0 && config_.audit_fraction <= 1.0);
  WLSMS_EXPECTS(config_.error_budget >= 0.0);
  WLSMS_EXPECTS(config_.accept_tol >= 0.0);
  WLSMS_EXPECTS(config_.min_audits >= 1);
  WLSMS_EXPECTS(config_.residual_window >= config_.min_audits);
  WLSMS_EXPECTS(config_.refit_window >= config_.n_shells + 2);
  WLSMS_EXPECTS(config_.n_shells >= 1);
}

double Speculator::delta(const spin::MomentConfiguration& trial,
                         std::size_t site, const Vec3& old_direction) const {
  // Applying (site -> old_direction) to the trial configuration restores the
  // pre-move one, so that reverse delta is -(E_trial - E_current).
  return -model_.energy_delta(trial, spin::TrialMove{site, old_direction});
}

std::vector<double> Speculator::fit_row(
    const spin::MomentConfiguration& config) const {
  return lsms::exchange_fit_row(bonds_, config_.n_shells, config);
}

double Speculator::residual_rms() const {
  if (residuals_.empty()) return 0.0;
  return std::sqrt(residual_sum_sq_ /
                   static_cast<double>(residuals_.size()));
}

void Speculator::clear_residual_window() {
  residuals_.clear();
  residual_sum_sq_ = 0.0;
}

SpeculatorRecordOutcome Speculator::record(std::vector<double> row,
                                           double exact_energy,
                                           double residual) {
  SpeculatorRecordOutcome outcome;

  residuals_.push_back(residual);
  residual_sum_sq_ += residual * residual;
  while (residuals_.size() > config_.residual_window) {
    const double old = residuals_.front();
    residuals_.pop_front();
    residual_sum_sq_ -= old * old;
  }
  // The incremental sum of squares accumulates cancellation error over a
  // long run; re-sum periodically so the rms stays honest.
  if (++residual_pushes_ % 4096 == 0) {
    residual_sum_sq_ = 0.0;
    for (const double r : residuals_) residual_sum_sq_ += r * r;
  }

  fit_rows_.push_back(std::move(row));
  fit_targets_.push_back(exact_energy);
  while (fit_rows_.size() > config_.refit_window) {
    fit_rows_.pop_front();
    fit_targets_.pop_front();
  }

  ++measured_;

  const std::size_t n_params = config_.n_shells + 1;
  if (config_.refit_interval > 0 && measured_ % config_.refit_interval == 0 &&
      fit_rows_.size() >= n_params + 1) {
    outcome.refit = true;
    const std::vector<std::vector<double>> rows(fit_rows_.begin(),
                                                fit_rows_.end());
    const std::vector<double> targets(fit_targets_.begin(),
                                      fit_targets_.end());
    // In-window rms of the *current* couplings with the offset fitted
    // closed-form (the offset never enters move deltas, so only the J error
    // should decide adoption).
    std::vector<double> resid(rows.size());
    double mean = 0.0;
    for (std::size_t r = 0; r < rows.size(); ++r) {
      double shell_part = 0.0;
      for (std::size_t s = 0; s < config_.n_shells; ++s)
        shell_part += rows[r][s + 1] * j_[s];
      resid[r] = targets[r] - shell_part;
      mean += resid[r];
    }
    mean /= static_cast<double>(rows.size());
    double old_ss = 0.0;
    for (const double r : resid) old_ss += (r - mean) * (r - mean);
    const double old_rms =
        std::sqrt(old_ss / static_cast<double>(rows.size()));

    try {
      const lsms::ExchangeFit fit = lsms::fit_exchange_rows(
          rows, targets, config_.n_shells, kRefitRidge);
      if (fit.rms <= old_rms) {
        // How much the adoption moves the window's predictions. When the
        // shift is small against the tracked residual scale the old window
        // still describes the new model, and keeping it avoids re-entering
        // warmup after every routine refit (the steady state: a converged
        // fit re-adopted every cadence with near-identical couplings).
        double shift_ss = 0.0;
        for (const std::vector<double>& r : rows) {
          double shift = 0.0;
          for (std::size_t s = 0; s < config_.n_shells; ++s)
            shift += r[s + 1] * (fit.j[s] - j_[s]);
          shift_ss += shift * shift;
        }
        const double shift_rms =
            std::sqrt(shift_ss / static_cast<double>(rows.size()));
        j_ = fit.j;
        model_ = heisenberg::HeisenbergModel(structure_, j_);
        if (shift_rms > 0.5 * residual_rms()) clear_residual_window();
        outcome.refit_adopted = true;
      }
    } catch (const linalg::SingularMatrixError&) {
      // Degenerate window (e.g. every sample the same configuration); keep
      // the current couplings and try again next cadence.
    }
  }

  if (config_.error_budget > 0.0 && warmed_up()) {
    const double rms = residual_rms();
    if (!tripped_ && rms > config_.error_budget) {
      tripped_ = true;
      outcome.tripped = true;
      // Demand a full fresh window of in-budget residuals to recover.
      clear_residual_window();
    } else if (tripped_ && rms <= config_.error_budget) {
      tripped_ = false;
      outcome.untripped = true;
    }
  }

  return outcome;
}

SpeculativeEnergyService::SpeculativeEnergyService(
    std::unique_ptr<EnergyService> inner, Speculator speculator)
    : inner_(std::move(inner)),
      speculator_(std::move(speculator)),
      m_proposed_(obs::Registry::instance().counter("spec.proposed")),
      m_hits_(obs::Registry::instance().counter("spec.hits")),
      m_audits_(obs::Registry::instance().counter("spec.audits")),
      m_exact_(obs::Registry::instance().counter("spec.exact")),
      m_retries_(obs::Registry::instance().counter("spec.retries")),
      m_refits_(obs::Registry::instance().counter("spec.refits")),
      m_trips_(obs::Registry::instance().counter("spec.trips")),
      m_hit_rate_(obs::Registry::instance().gauge("spec.hit_rate")),
      m_residual_rms_(obs::Registry::instance().gauge("spec.residual_rms")),
      m_tripped_(obs::Registry::instance().gauge("spec.tripped")),
      m_residual_(obs::Registry::instance().histogram("spec.residual",
                                                      residual_bounds())),
      m_audit_mismatch_(obs::Registry::instance().histogram(
          "spec.audit_mismatch", residual_bounds())) {
  WLSMS_EXPECTS(inner_ != nullptr);
}

bool SpeculativeEnergyService::matches_retry(
    const InFlight& saved, const EnergyRequest& request) const {
  // The driver resubmits a failed trial without re-deriving provenance, so a
  // hintless request from a walker with a pending retry IS that retry. A
  // hinted request must carry the same move identity; anything else is a
  // fresh proposal racing a stale entry.
  if (!request.hint.valid) return true;
  return request.hint.site == saved.site &&
         request.hint.old_direction == saved.old_direction &&
         request.hint.current_energy == saved.current_energy;
}

bool SpeculativeEnergyService::resolvable(double current_energy,
                                          double predicted) const {
  const double band = speculator_.band_width();
  const double lo = predicted - band;
  const double hi = predicted + band;
  // Entirely outside the energy window on one side: the driver rejects an
  // out-of-range energy deterministically, whatever the exact value is.
  if (hi < dos_->e_min() || lo >= dos_->e_max()) return true;
  // Straddling a window edge: in-range and out-of-range outcomes differ.
  if (!dos_->contains(lo) || !dos_->contains(hi)) return false;
  if (!dos_->contains(current_energy)) return false;

  // ln g is piecewise linear (or gated-constant) between bin centres, so its
  // extrema over [lo, hi] are attained at the endpoints or at bin centres
  // strictly inside.
  double g_min = dos_->ln_g(lo);
  double g_max = g_min;
  const auto consider = [&](double e) {
    const double g = dos_->ln_g(e);
    g_min = std::min(g_min, g);
    g_max = std::max(g_max, g);
  };
  consider(hi);
  const double width = dos_->bin_width();
  const double first = (lo - dos_->e_min()) / width - 0.5;
  std::size_t b = first <= 0.0 ? 0 : static_cast<std::size_t>(first) + 1;
  for (; b < dos_->bins(); ++b) {
    const double center = dos_->bin_center(b);
    if (center >= hi) break;
    if (center > lo) consider(center);
  }

  const double ln_cur = dos_->ln_g(current_energy);
  const double lr_min = ln_cur - g_max;
  if (lr_min >= 0.0) return true;  // accepted across the whole band
  const double lr_max = ln_cur - g_min;
  const double p_hi = std::exp(std::min(lr_max, 0.0));
  const double p_lo = std::exp(lr_min);
  return p_hi - p_lo <= speculator_.config().accept_tol;
}

void SpeculativeEnergyService::dispatch_exact(EnergyRequest request,
                                              InFlight entry) {
  if (entry.role != Role::kForward) m_exact_.inc();
  in_flight_.emplace(request.ticket, std::move(entry));
  inner_->submit(std::move(request));
}

void SpeculativeEnergyService::submit(EnergyRequest request) {
  // A walker whose last exact dispatch failed resubmits the same trial; that
  // resubmission must reuse the saved role so the move is not re-counted in
  // proposed / hit_rate.
  if (const auto retry = retry_pending_.find(request.walker);
      retry != retry_pending_.end()) {
    if (matches_retry(retry->second, request)) {
      InFlight entry = std::move(retry->second);
      retry_pending_.erase(retry);
      ++stats_.retries;
      m_retries_.inc();
      dispatch_exact(std::move(request), std::move(entry));
      return;
    }
    // Stale entry from a move the driver abandoned; treat as fresh.
    retry_pending_.erase(retry);
  }

  if (!request.hint.valid || dos_ == nullptr) {
    ++stats_.forwarded;
    dispatch_exact(std::move(request), InFlight{});
    return;
  }

  ++stats_.proposed;
  m_proposed_.inc();

  InFlight entry;
  entry.has_prediction = true;
  entry.predicted = request.hint.current_energy +
                    speculator_.delta(request.config, request.hint.site,
                                      request.hint.old_direction);
  entry.row = speculator_.fit_row(request.config);
  entry.site = request.hint.site;
  entry.old_direction = request.hint.old_direction;
  entry.current_energy = request.hint.current_energy;

  // Tripped wins the attribution: a trip clears the residual window, so the
  // recovery phase is simultaneously "over budget" and "warming up" — and
  // over-budget is the state the operator needs to see.
  if (speculator_.tripped()) {
    entry.role = Role::kTripped;
    ++stats_.tripped_exact;
  } else if (!speculator_.warmed_up()) {
    entry.role = Role::kWarmup;
    ++stats_.warmup_exact;
  } else if (!resolvable(request.hint.current_energy, entry.predicted)) {
    entry.role = Role::kBoundary;
    ++stats_.boundary_exact;
  } else {
    audit_accumulator_ += speculator_.config().audit_fraction;
    if (audit_accumulator_ >= 1.0) {
      audit_accumulator_ -= 1.0;
      entry.role = Role::kAudit;
      ++stats_.audits;
      m_audits_.inc();
    } else {
      // Resolved by the surrogate alone: synthesize the result, touch no
      // exact instance.
      ++stats_.speculated;
      m_hits_.inc();
      ready_.push_back({request.walker, request.ticket, entry.predicted,
                        /*failed=*/false});
      publish_gauges();
      return;
    }
  }
  dispatch_exact(std::move(request), std::move(entry));
}

EnergyResult SpeculativeEnergyService::retrieve() {
  if (!ready_.empty()) {
    const EnergyResult result = ready_.front();
    ready_.pop_front();
    return result;
  }

  EnergyResult result = inner_->retrieve();
  const auto it = in_flight_.find(result.ticket);
  if (it == in_flight_.end()) return result;  // not ours (defensive)
  InFlight entry = std::move(it->second);
  in_flight_.erase(it);

  if (result.failed) {
    // Park the provenance; the driver's resubmission reclaims it.
    retry_pending_[result.walker] = std::move(entry);
    return result;
  }

  if (entry.has_prediction) {
    const double residual = result.energy - entry.predicted;
    m_residual_.observe(std::abs(residual));
    if (entry.role == Role::kAudit)
      m_audit_mismatch_.observe(std::abs(residual));

    const SpeculatorRecordOutcome outcome =
        speculator_.record(std::move(entry.row), result.energy, residual);
    if (outcome.refit) {
      if (outcome.refit_adopted) {
        ++stats_.refits;
        m_refits_.inc();
      } else {
        ++stats_.refits_rejected;
      }
    }
    if (outcome.tripped) {
      ++stats_.trips;
      m_trips_.inc();
    }
    if (outcome.untripped) ++stats_.untrips;
    publish_gauges();
  }
  return result;  // the exact energy is always authoritative
}

void SpeculativeEnergyService::publish_gauges() {
  m_hit_rate_.set(stats_.hit_rate());
  m_residual_rms_.set(speculator_.residual_rms());
  m_tripped_.set(speculator_.tripped() ? 1.0 : 0.0);
}

}  // namespace wlsms::wl
