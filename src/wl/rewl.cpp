#include "wl/rewl.hpp"

#include <algorithm>
#include <cmath>
#include <latch>
#include <memory>
#include <utility>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"

namespace wlsms::wl {

std::vector<RewlWindow> make_rewl_windows(const DosGridConfig& global,
                                          std::size_t n_windows,
                                          double overlap) {
  WLSMS_EXPECTS(n_windows >= 1);
  WLSMS_EXPECTS(overlap >= 0.0 && overlap < 1.0);
  WLSMS_EXPECTS(global.bins >= 2);
  WLSMS_EXPECTS(global.e_max > global.e_min);

  if (n_windows == 1) return {{0, global.bins, global}};

  const std::size_t b_total = global.bins;
  const double h = (global.e_max - global.e_min) / static_cast<double>(b_total);

  // Equal-width windows: n*w - (n-1)*overlap*w spans the range, so the
  // window width in bins is ceil(B / (n - (n-1)*overlap)).
  const double denom = static_cast<double>(n_windows) -
                       static_cast<double>(n_windows - 1) * overlap;
  std::size_t w_bins = static_cast<std::size_t>(
      std::ceil(static_cast<double>(b_total) / denom));
  w_bins = std::min(w_bins, b_total);
  WLSMS_EXPECTS(w_bins >= 4);  // too coarse a grid for this decomposition

  std::vector<RewlWindow> windows;
  windows.reserve(n_windows);
  for (std::size_t i = 0; i < n_windows; ++i) {
    // Evenly spaced starts: first window at bin 0, last ending at b_total.
    const std::size_t start =
        (i * (b_total - w_bins) + (n_windows - 1) / 2) / (n_windows - 1);
    RewlWindow window;
    window.first_bin = start;
    window.n_bins = w_bins;
    window.grid.e_min = global.e_min + static_cast<double>(start) * h;
    window.grid.e_max =
        global.e_min + static_cast<double>(start + w_bins) * h;
    window.grid.bins = w_bins;
    // Keep the *absolute* kernel width of the global grid: the fraction is
    // relative to the window range, which shrank.
    window.grid.kernel_width_fraction =
        global.kernel_width_fraction * static_cast<double>(b_total) /
        static_cast<double>(w_bins);
    windows.push_back(window);
  }

  // Replica exchange and stitching both need a real shared region.
  for (std::size_t i = 0; i + 1 < windows.size(); ++i) {
    WLSMS_EXPECTS(windows[i + 1].first_bin + 2 <=
                  windows[i].first_bin + windows[i].n_bins);
  }
  return windows;
}

spin::MomentConfiguration seed_configuration_in_band(
    const EnergyFunction& energy, double e_lo, double e_hi, Rng& rng,
    double margin_fraction, std::uint64_t max_steps) {
  WLSMS_EXPECTS(e_hi > e_lo);
  WLSMS_EXPECTS(margin_fraction >= 0.0 && margin_fraction < 0.5);

  const double margin = margin_fraction * (e_hi - e_lo);
  const double lo = e_lo + margin;
  const double hi = e_hi - margin;
  const double target = 0.5 * (e_lo + e_hi);

  spin::MomentConfiguration config =
      spin::MomentConfiguration::random(energy.n_sites(), rng);
  double e = energy.total_energy(config);
  const spin::UniformSphereMove mover;
  for (std::uint64_t step = 0; step < max_steps; ++step) {
    if (e >= lo && e <= hi) return config;
    const spin::TrialMove move = mover.propose(config, rng);
    const double e_new = energy.energy_after_move(config, move, e);
    if (std::abs(e_new - target) <= std::abs(e - target)) {
      config.set(move.site, move.new_direction);
      e = e_new;
    }
  }
  WLSMS_ENSURES(false);  // window unreachable from a random configuration
  return config;
}

DosGrid stitch_window_estimates(const DosGridConfig& global,
                                const std::vector<RewlWindow>& windows,
                                const std::vector<const DosGrid*>& estimates) {
  WLSMS_EXPECTS(!windows.empty());
  WLSMS_EXPECTS(estimates.size() == windows.size());
  for (std::size_t w = 0; w < windows.size(); ++w) {
    WLSMS_EXPECTS(estimates[w]->bins() == windows[w].n_bins);
    WLSMS_EXPECTS(windows[w].first_bin + windows[w].n_bins <= global.bins);
  }

  std::vector<double> ln_g(global.bins, 0.0);
  std::vector<std::uint8_t> visited(global.bins, 0);

  // Window 0 is the reference branch.
  for (std::size_t k = 0; k < windows[0].n_bins; ++k) {
    if (!estimates[0]->visited()[k]) continue;
    ln_g[windows[0].first_bin + k] = estimates[0]->ln_g_values()[k];
    visited[windows[0].first_bin + k] = 1;
  }
  std::size_t stitched_end = windows[0].first_bin + windows[0].n_bins;

  for (std::size_t w = 1; w < windows.size(); ++w) {
    const RewlWindow& window = windows[w];
    const DosGrid& dos = *estimates[w];

    // Overlap with everything stitched so far, in global bins. A WL walker
    // confined to a window overestimates ln g in the outermost bins (moves
    // beyond the edge are rejected but still deposit weight inside), so the
    // join is restricted to the overlap interior: trim the edge-biased bins
    // of this window's left edge and the previous window's right edge.
    const std::size_t trim = std::max<std::size_t>(2, window.n_bins / 12);
    const std::size_t lo = window.first_bin + trim;
    const std::size_t hi =
        std::min(stitched_end > trim ? stitched_end - trim : 0,
                 window.first_bin + window.n_bins);

    // Join where the log-derivatives of the previous branch and this window
    // agree best; the derivative is offset-free, so it identifies the bin
    // where the two independent estimates have the same local shape.
    std::size_t join = global.bins;  // sentinel: none found yet
    double best = 1e300;
    for (std::size_t b = lo; b < hi; ++b) {
      const std::size_t k = b - window.first_bin;
      if (!visited[b] || !dos.visited()[k]) continue;
      // Derivatives need visited neighbours on both branches.
      if (b == 0 || b + 1 >= hi || !visited[b - 1] || !visited[b + 1]) continue;
      if (k == 0 || k + 1 >= dos.bins() || !dos.visited()[k - 1] ||
          !dos.visited()[k + 1])
        continue;
      const std::size_t prev_first = b - 1 - window.first_bin;
      const double d_prev = (ln_g[b + 1] - ln_g[b - 1]) /
                            (2.0 * dos.bin_width());
      const double d_here = (dos.ln_g_values()[prev_first + 2] -
                             dos.ln_g_values()[prev_first]) /
                            (2.0 * dos.bin_width());
      const double mismatch = std::abs(d_prev - d_here);
      if (mismatch < best) {
        best = mismatch;
        join = b;
      }
    }
    if (join == global.bins) {
      // No interior derivative candidate (e.g. razor-thin overlap): fall
      // back to the first bin visited by both branches, untrimmed.
      const std::size_t raw_hi =
          std::min(stitched_end, window.first_bin + window.n_bins);
      for (std::size_t b = window.first_bin; b < raw_hi && join == global.bins;
           ++b)
        if (visited[b] && dos.visited()[b - window.first_bin]) join = b;
    }
    WLSMS_ENSURES(join < global.bins);  // windows must genuinely overlap

    // The additive constant comes from a small neighbourhood of the seam
    // rather than the single join bin, averaging down per-bin noise while
    // keeping the stitched curve continuous at the seam.
    double offset_sum = 0.0;
    std::size_t offset_count = 0;
    for (std::size_t b = join >= 2 ? join - 2 : 0;
         b <= join + 2 && b < global.bins; ++b) {
      if (b < window.first_bin || b >= window.first_bin + window.n_bins)
        continue;
      const std::size_t k = b - window.first_bin;
      if (!visited[b] || !dos.visited()[k]) continue;
      offset_sum += ln_g[b] - dos.ln_g_values()[k];
      ++offset_count;
    }
    WLSMS_ENSURES(offset_count > 0);
    const double offset = offset_sum / static_cast<double>(offset_count);
    for (std::size_t k = join - window.first_bin; k < window.n_bins; ++k) {
      const std::size_t b = window.first_bin + k;
      if (!dos.visited()[k]) continue;
      ln_g[b] = dos.ln_g_values()[k] + offset;
      visited[b] = 1;
    }
    stitched_end = std::max(stitched_end, window.first_bin + window.n_bins);
  }

  // Canonical normalization: min over visited bins at zero.
  double min_val = 1e300;
  for (std::size_t b = 0; b < global.bins; ++b)
    if (visited[b]) min_val = std::min(min_val, ln_g[b]);
  if (min_val < 1e300)
    for (std::size_t b = 0; b < global.bins; ++b)
      if (visited[b]) ln_g[b] -= min_val;

  DosGrid stitched(global);
  stitched.set_ln_g_values(std::move(ln_g));
  stitched.set_visited(std::move(visited));
  return stitched;
}

RewlResult run_rewl(const EnergyFunction& energy, const RewlConfig& config,
                    const ModificationSchedule& schedule_prototype,
                    Rng root_rng) {
  WLSMS_EXPECTS(config.n_windows >= 1);
  WLSMS_EXPECTS(config.exchange_interval >= 1);

  const std::vector<RewlWindow> windows =
      make_rewl_windows(config.base.grid, config.n_windows, config.overlap);
  const std::size_t n = windows.size();

  // Per-window samplers with walkers seeded inside their window. Every
  // window draws from its own split of the root stream; the exchange sweep
  // owns stream n.
  std::vector<std::unique_ptr<WangLandau>> samplers;
  samplers.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    WangLandauConfig wc = config.base;
    wc.grid = windows[i].grid;
    Rng window_rng = root_rng.split(static_cast<unsigned>(i));
    std::vector<spin::MomentConfiguration> initial;
    initial.reserve(wc.n_walkers);
    for (std::size_t walker = 0; walker < wc.n_walkers; ++walker)
      initial.push_back(seed_configuration_in_band(
          energy, windows[i].grid.e_min, windows[i].grid.e_max, window_rng));
    samplers.push_back(std::make_unique<WangLandau>(
        energy, wc, schedule_prototype.clone(), window_rng, initial));
  }
  Rng exchange_rng = root_rng.split(static_cast<unsigned>(n));

  RewlResult result{DosGrid(config.base.grid), windows, {}, {}, 0, 0, 0, 0};

  const auto window_done = [&](std::size_t i) {
    return samplers[i]->converged() ||
           samplers[i]->stats().total_steps >= config.base.max_steps;
  };

  static obs::Counter& rounds_counter =
      obs::Registry::instance().counter("rewl.rounds");
  static obs::Counter& exchange_attempts_counter =
      obs::Registry::instance().counter("rewl.exchange_attempts");
  static obs::Counter& exchange_accepts_counter =
      obs::Registry::instance().counter("rewl.exchange_accepts");
  static obs::Gauge& exchange_accept_rate =
      obs::Registry::instance().gauge("rewl.exchange_accept_rate");

  parallel::ThreadPool pool(n);
  while (result.rounds < config.max_rounds) {
    const obs::Span round_span("rewl.round");
    std::vector<std::size_t> active;
    for (std::size_t i = 0; i < n; ++i)
      if (!window_done(i)) active.push_back(i);
    if (active.empty()) break;

    // One round: every active window advances exchange_interval steps on
    // the pool. The latch is the barrier that also publishes each window's
    // state back to this thread.
    std::latch round_done(static_cast<std::ptrdiff_t>(active.size()));
    for (std::size_t i : active) {
      pool.post([&, i] {
        const obs::Span window_span("rewl.window_run");
        WangLandau& sampler = *samplers[i];
        for (std::uint64_t s = 0; s < config.exchange_interval; ++s)
          if (!sampler.step()) break;
        round_done.count_down();
      });
    }
    round_done.wait();
    ++result.rounds;
    rounds_counter.inc();

    // Deterministic exchange sweep on this thread, alternating pairings
    // (0,1)(2,3)... and (1,2)(3,4)... between rounds.
    const obs::Span exchange_span("rewl.exchange_sweep");
    for (std::size_t i = result.rounds % 2; i + 1 < n; i += 2) {
      if (window_done(i) || window_done(i + 1)) continue;
      WangLandau& a = *samplers[i];
      WangLandau& b = *samplers[i + 1];
      const std::size_t wa = static_cast<std::size_t>(
          exchange_rng.uniform_index(a.n_walkers()));
      const std::size_t wb = static_cast<std::size_t>(
          exchange_rng.uniform_index(b.n_walkers()));
      const double ea = a.walker_energy(wa);
      const double eb = b.walker_energy(wb);
      if (!a.dos().contains(eb) || !b.dos().contains(ea)) {
        ++result.exchange_ineligible;
        continue;
      }
      ++result.exchange_attempts;
      exchange_attempts_counter.inc();
      // min(1, g_i(E_i) g_j(E_j) / (g_i(E_j) g_j(E_i))) in ln form.
      const double ln_accept = a.dos().ln_g(ea) - a.dos().ln_g(eb) +
                               b.dos().ln_g(eb) - b.dos().ln_g(ea);
      const double u = exchange_rng.uniform();
      if (ln_accept >= 0.0 || u < std::exp(ln_accept)) {
        ++result.exchange_accepts;
        exchange_accepts_counter.inc();
        const spin::MomentConfiguration config_a = a.walker_config(wa);
        const spin::MomentConfiguration config_b = b.walker_config(wb);
        a.set_walker(wa, config_b);
        b.set_walker(wb, config_a);
      }
    }
    if (result.exchange_attempts > 0)
      exchange_accept_rate.set(
          static_cast<double>(result.exchange_accepts) /
          static_cast<double>(result.exchange_attempts));
  }

  result.per_window.reserve(n);
  std::vector<const DosGrid*> views;
  views.reserve(n);
  result.window_dos.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    result.per_window.push_back(samplers[i]->stats());
    result.window_dos.push_back(samplers[i]->dos());
  }
  for (const DosGrid& dos : result.window_dos) views.push_back(&dos);
  result.stitched =
      stitch_window_estimates(config.base.grid, windows, views);
  return result;
}

}  // namespace wlsms::wl
