#include "wl/energy_service.hpp"

#include "common/error.hpp"

namespace wlsms::wl {

SynchronousEnergyService::SynchronousEnergyService(const EnergyFunction& energy)
    : energy_(energy) {}

void SynchronousEnergyService::submit(EnergyRequest request) {
  queue_.push_back(std::move(request));
}

EnergyResult SynchronousEnergyService::retrieve() {
  WLSMS_EXPECTS(!queue_.empty());
  const EnergyRequest request = std::move(queue_.front());
  queue_.pop_front();
  return {request.walker, request.ticket, energy_.total_energy(request.config),
          false};
}

ReorderingEnergyService::ReorderingEnergyService(const EnergyFunction& energy,
                                                 Rng rng)
    : energy_(energy), rng_(rng) {}

void ReorderingEnergyService::submit(EnergyRequest request) {
  buffer_.push_back(std::move(request));
}

EnergyResult ReorderingEnergyService::retrieve() {
  WLSMS_EXPECTS(!buffer_.empty());
  const std::size_t pick =
      static_cast<std::size_t>(rng_.uniform_index(buffer_.size()));
  const EnergyRequest request = std::move(buffer_[pick]);
  buffer_.erase(buffer_.begin() + static_cast<std::ptrdiff_t>(pick));
  return {request.walker, request.ticket, energy_.total_energy(request.config),
          false};
}

}  // namespace wlsms::wl
