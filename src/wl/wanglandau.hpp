#pragma once

/// \file wanglandau.hpp
/// Sequential Wang-Landau sampler: M walkers sharing one density of states,
/// advanced round-robin in a single thread.
///
/// This is the reference implementation of the paper's Algorithm 1 with the
/// energy calculation inlined; it is the engine behind the fully converged
/// production runs on the extracted-exchange surrogate (DESIGN.md §2), and
/// the ground truth the asynchronous master-slave driver (driver.hpp) is
/// validated against. One "WL step" = one trial move = one energy
/// evaluation, matching the step counts of the paper's Table I.

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "spin/moments.hpp"
#include "spin/moves.hpp"
#include "wl/dos_grid.hpp"
#include "wl/energy_function.hpp"
#include "wl/schedule.hpp"

namespace wlsms::wl {

/// Run parameters for a Wang-Landau estimation.
struct WangLandauConfig {
  DosGridConfig grid;
  double flatness = 0.80;               ///< the A of eq. 7
  std::uint64_t check_interval = 1000;  ///< steps between flatness checks
  std::uint64_t max_steps = UINT64_MAX; ///< safety cap on total WL steps
  std::size_t n_walkers = 1;            ///< concurrent random walkers
  /// Upper bound on the length of one flatness iteration, in WL steps
  /// (0 = 1000 * bins). Early iterations at large gamma produce a ragged
  /// ln g estimate whose least-accessible bins cannot equilibrate before
  /// gamma shrinks; capping the iteration bounds that transient — a milder
  /// intervention than the 1/t schedule, which abandons flatness entirely.
  /// Iterations that end by cap rather than flatness are counted in
  /// WangLandauStats::forced_iterations.
  std::uint64_t max_iteration_steps = 0;
  /// When true (classic Wang-Landau), g and H are updated at the walker's
  /// current energy after *every* trial, including rejected ones. When
  /// false, only accepted arrivals update (the reading suggested by the
  /// paper's §II-A: "for every accepted move, a histogram H(E) is
  /// updated"). See tests/test_wl_exact.cpp for the stability comparison.
  bool update_on_rejection = true;
};

/// Progress counters of a run.
struct WangLandauStats {
  std::uint64_t total_steps = 0;     ///< trial moves = energy evaluations
  std::uint64_t accepted_steps = 0;
  std::uint64_t out_of_range = 0;    ///< proposals outside the grid window
  std::size_t iterations = 0;        ///< gamma cuts (flat or forced)
  std::size_t forced_iterations = 0; ///< gamma cuts by iteration-step cap
};

/// Sequential multi-walker Wang-Landau estimator of ln g(E).
class WangLandau {
 public:
  /// `energy` must outlive the sampler. Walkers start from independent
  /// random configurations whose energies must land inside the grid window
  /// (they always do for windows bracketing the model's FM/AFM extremes).
  WangLandau(const EnergyFunction& energy, const WangLandauConfig& config,
             std::unique_ptr<ModificationSchedule> schedule, Rng rng);

  /// As above, but walkers start from the supplied configurations instead
  /// of random draws — required for narrow energy windows (REWL), where a
  /// random configuration almost never lands inside the grid. Supplies one
  /// configuration per walker; each must have its energy inside the window.
  WangLandau(const EnergyFunction& energy, const WangLandauConfig& config,
             std::unique_ptr<ModificationSchedule> schedule, Rng rng,
             const std::vector<spin::MomentConfiguration>& initial_walkers);

  /// Replaces walker w's configuration (e.g. to seed from a checkpoint).
  void set_walker(std::size_t w, const spin::MomentConfiguration& config);

  /// Advances every walker by one WL step. Returns false once converged
  /// (schedule at its floor) or the step cap is reached.
  bool step();

  /// Runs until convergence or the step cap; returns the stats.
  const WangLandauStats& run();

  bool converged() const { return schedule_->converged(); }

  const DosGrid& dos() const { return dos_; }
  DosGrid& dos() { return dos_; }
  const WangLandauStats& stats() const { return stats_; }
  const ModificationSchedule& schedule() const { return *schedule_; }
  std::size_t n_walkers() const { return walkers_.size(); }
  const spin::MomentConfiguration& walker_config(std::size_t w) const;
  double walker_energy(std::size_t w) const;

 private:
  struct Walker {
    spin::MomentConfiguration config;
    double energy = 0.0;
  };

  void advance(Walker& walker);
  void publish_metrics();

  const EnergyFunction& energy_;
  WangLandauConfig config_;
  DosGrid dos_;
  std::unique_ptr<ModificationSchedule> schedule_;
  Rng rng_;
  spin::UniformSphereMove move_generator_;
  std::vector<Walker> walkers_;
  WangLandauStats stats_;
  std::uint64_t iteration_steps_ = 0;  ///< steps since the last gamma cut
  WangLandauStats published_;  ///< counts already pushed to the registry
};

/// Convenience: a grid window bracketing a Heisenberg-like model whose
/// minimum is the ferromagnetic energy and maximum is below |E_FM| in
/// magnitude: [E_FM - margin, -E_FM + margin]. The fully antiparallel
/// arrangement bounds the bond sum from above, so -E_FM (no anisotropy) is
/// a rigorous upper bound.
DosGridConfig bracket_heisenberg_window(const HeisenbergEnergy& energy,
                                        std::size_t bins = 301,
                                        double margin_fraction = 0.02);

/// The production window: the energies the canonical ensemble actually
/// occupies for temperatures in [t_min_k, infinity).
///
/// The full [E_FM, E_AFM] range contains two combinatorially inaccessible
/// tails whose density of states is tens to thousands of ln-units below the
/// bulk; no finite walk flattens them, and no temperature of interest
/// weighs them. (The paper's own Table I step counts — 23,200 for 16 atoms
/// — imply its converged support was similarly restricted.) The window is
///
///   [ E_ground + N k_B t_min / 2 ,  mean + n_sigma * sigma )
///
/// with mean/sigma the energy statistics of uniformly random configurations
/// (the T = infinity ensemble), estimated from `samples` draws:
/// the lower edge sits a factor ~2 below the equipartition internal energy
/// U(t_min) ~= E_ground + N k_B t_min, the upper edge n_sigma standard
/// deviations above the infinite-temperature mean.
DosGridConfig thermal_window(const EnergyFunction& energy, double e_ground,
                             double t_min_k, Rng& rng,
                             std::size_t bins = 301, double n_sigma = 4.0,
                             std::size_t samples = 256);

}  // namespace wlsms::wl
