#pragma once

/// \file speculator.hpp
/// Speculative mixed-fidelity evaluation: an online Heisenberg surrogate in
/// front of the exact LSMS path.
///
/// The paper's driver spends essentially all wall-clock on full LSMS energy
/// evaluations, yet the repo already extracts an effective Heisenberg model
/// from the substrate (lsms/exchange.hpp, PAPER.md §2) that prices a
/// single-moment move in O(coordination). This module promotes that model
/// from offline stand-in to an online *speculator* (ROADMAP "mixed-fidelity
/// speculative evaluation"; the same accept-reject speculation shape the
/// real WL-LSMS lineage used to keep accelerators fed):
///
///   driver proposal ──hint──▶ SpeculativeEnergyService
///        │                         │ surrogate ΔE  (HeisenbergModel::energy_delta)
///        │                         ├─ far from the WL accept boundary
///        │                         │    └─ resolve locally (no LSMS call)
///        │                         ├─ boundary-adjacent, warming up, or
///        │                         │  tripped ─▶ exact inner service
///        │                         └─ deterministic audit fraction
///        ◀──result────────────────┘    └─ exact inner service, residual
///                                          measured, J_ij refit fed
///
/// The accept boundary is evaluated against the *live* ln g estimate: the
/// driver attaches its DosGrid (attach_dos), and a move resolves only when
/// every energy inside the confidence band [E_pred - band, E_pred + band]
/// yields the same accept decision to within `accept_tol` acceptance
/// probability. The band is `band` times the tracked rms residual of the
/// surrogate over recent exact measurements, so the speculator prices its
/// own trustworthiness.
///
/// Audited (and every other exact) result feeds an online J_ij refit — the
/// same shell-coupling regression as lsms::extract_exchange
/// (lsms::fit_exchange_rows) over the last `refit_window` measured
/// configurations, adopted only when it improves the in-window rms. A
/// telemetry-tracked error budget trips the service back to exact-only mode
/// when the residual rms exceeds it; recovery requires a fresh window of
/// residuals back inside the budget (typically after a refit).
///
/// Exact mode stays the default and remains bit-identical: with speculation
/// disabled this module is never constructed, and with `audit_fraction` 1
/// every move is dispatched exactly and the exact result is authoritative.

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "heisenberg/heisenberg.hpp"
#include "lattice/structure.hpp"
#include "lsms/exchange.hpp"
#include "wl/dos_grid.hpp"
#include "wl/energy_service.hpp"

namespace wlsms::obs {
class Counter;
class Gauge;
class Histogram;
}  // namespace wlsms::obs

namespace wlsms::wl {

/// Knobs of the speculation pipeline.
struct SpeculationConfig {
  /// Confidence half-width in units of the tracked rms residual: a move is
  /// resolvable only if the accept decision is stable over
  /// [E_pred - band * rms, E_pred + band * rms]. 0 trusts the surrogate
  /// blindly (useful with audit_fraction 1, which makes every result exact).
  double band = 2.0;
  /// Deterministic fraction of otherwise-resolvable moves dispatched
  /// exactly anyway (counter-based, no RNG: every 1/audit_fraction-th).
  /// Audits keep the residual estimate honest while speculation runs.
  /// 1.0 audits everything — bit-identical to the plain driver.
  double audit_fraction = 0.05;
  /// Measured (exact-with-prediction) samples between J_ij refits; 0 never
  /// refits.
  std::uint64_t refit_interval = 64;
  /// Error budget [Ry]: when the windowed residual rms exceeds it, the
  /// service trips to exact-only mode until a fresh window of residuals
  /// fits the budget again. 0 disables the trip.
  double error_budget = 0.0;
  /// Maximum spread of the WL acceptance probability across the confidence
  /// band for a move to still resolve speculatively.
  double accept_tol = 0.05;
  /// Residual samples required before speculation starts (and again after
  /// every trip or adopted refit clears the window).
  std::size_t min_audits = 16;
  /// Residual samples kept for the rms estimate.
  std::size_t residual_window = 256;
  /// Measured configurations kept for the refit regression.
  std::size_t refit_window = 512;
  /// Neighbour shells of the surrogate model.
  std::size_t n_shells = 2;
  /// Initial per-shell couplings [Ry] (resized to n_shells with zeros).
  /// All-zero couplings predict ΔE = 0 for every move; the warmup
  /// measurements then produce large residuals and the first refit learns
  /// the couplings from scratch.
  std::vector<double> initial_j;
};

/// Counters of the speculation pipeline (one decorator instance).
struct SpeculationStats {
  std::uint64_t proposed = 0;      ///< unique hinted trial moves screened
  std::uint64_t speculated = 0;    ///< resolved by the surrogate alone
  std::uint64_t audits = 0;        ///< resolvable but dispatched for audit
  std::uint64_t boundary_exact = 0;///< accept-boundary-adjacent dispatches
  std::uint64_t warmup_exact = 0;  ///< dispatched while the window refills
  std::uint64_t tripped_exact = 0; ///< dispatched while over budget
  std::uint64_t forwarded = 0;     ///< hintless submissions passed through
  std::uint64_t retries = 0;       ///< failed-result resubmissions (never
                                   ///< re-counted in proposed/hit_rate)
  std::uint64_t refits = 0;        ///< refits adopted
  std::uint64_t refits_rejected = 0;///< refits computed but not adopted
  std::uint64_t trips = 0;
  std::uint64_t untrips = 0;

  /// Fraction of screened moves resolved without an exact call.
  double hit_rate() const {
    return proposed > 0 ? static_cast<double>(speculated) /
                              static_cast<double>(proposed)
                        : 0.0;
  }
};

/// What one recorded measurement changed (decorator telemetry hooks).
struct SpeculatorRecordOutcome {
  bool refit = false;          ///< a refit regression ran
  bool refit_adopted = false;  ///< ... and improved the in-window rms
  bool tripped = false;        ///< the error budget tripped on this sample
  bool untripped = false;      ///< a fresh window fit the budget again
};

/// The surrogate model plus its bookkeeping: move pricing, residual
/// tracking, online refit, error-budget trip. Owns no service machinery, so
/// it unit-tests standalone.
class Speculator {
 public:
  /// Builds the surrogate for `structure` with config.initial_j couplings.
  Speculator(const lattice::Structure& structure, SpeculationConfig config);

  const SpeculationConfig& config() const { return config_; }
  const heisenberg::HeisenbergModel& model() const { return model_; }
  const std::vector<double>& j_shells() const { return j_; }

  /// Surrogate energy change of the move that produced `trial` from the
  /// configuration that had `old_direction` at `site` (O(coordination)).
  double delta(const spin::MomentConfiguration& trial, std::size_t site,
               const Vec3& old_direction) const;

  /// Regression row of `config` for the online refit.
  std::vector<double> fit_row(const spin::MomentConfiguration& config) const;

  /// Records one exact measurement: `residual` = E_exact - E_predicted.
  /// Updates the residual window, checks the error budget, and runs the
  /// refit cadence.
  SpeculatorRecordOutcome record(std::vector<double> row, double exact_energy,
                                 double residual);

  /// True when the residual window holds enough samples to speculate.
  bool warmed_up() const { return residuals_.size() >= config_.min_audits; }
  bool tripped() const { return tripped_; }
  /// Whether a resolvable move may actually be resolved right now.
  bool ready() const { return warmed_up() && !tripped_; }

  /// rms of the residual window (0 when empty).
  double residual_rms() const;
  /// Confidence half-width [Ry]: band * residual_rms().
  double band_width() const { return config_.band * residual_rms(); }

  std::uint64_t measured() const { return measured_; }

 private:
  void clear_residual_window();

  SpeculationConfig config_;
  lattice::Structure structure_;
  std::vector<double> j_;  ///< current couplings; model_ is built from them
  heisenberg::HeisenbergModel model_;
  std::vector<lsms::ExchangeBond> bonds_;

  std::deque<double> residuals_;  ///< |window| most recent residuals
  double residual_sum_sq_ = 0.0;
  std::uint64_t residual_pushes_ = 0;  ///< drives periodic exact resummation

  std::deque<std::vector<double>> fit_rows_;
  std::deque<double> fit_targets_;

  std::uint64_t measured_ = 0;
  bool tripped_ = false;
};

/// EnergyService decorator realizing the speculation pipeline in front of
/// any exact inner service (synchronous, thread farm, distributed, serve
/// client — composed by make_energy_service). Single-threaded like every
/// EnergyService.
class SpeculativeEnergyService final : public EnergyService {
 public:
  /// Owns `inner`; `speculator` carries the surrogate and the knobs.
  SpeculativeEnergyService(std::unique_ptr<EnergyService> inner,
                           Speculator speculator);

  /// Binds the live ln g estimate the accept-boundary screen reads. The
  /// driver calls this with its own DosGrid; without a grid every hinted
  /// submission is forwarded exactly (there is no boundary to be far from).
  void attach_dos(const DosGrid* dos) { dos_ = dos; }

  void submit(EnergyRequest request) override;
  EnergyResult retrieve() override;
  std::size_t outstanding() const override {
    return inner_->outstanding() + ready_.size();
  }

  const SpeculationStats& stats() const { return stats_; }
  const Speculator& speculator() const { return speculator_; }
  EnergyService& inner() { return *inner_; }

 private:
  enum class Role : std::uint8_t {
    kForward,   ///< no hint (seed or raw evaluation): pure passthrough
    kWarmup,    ///< residual window refilling
    kTripped,   ///< error budget exceeded
    kBoundary,  ///< accept decision unstable inside the confidence band
    kAudit,     ///< resolvable, dispatched exactly by the audit cadence
  };

  struct InFlight {
    Role role = Role::kForward;
    bool has_prediction = false;
    double predicted = 0.0;
    std::vector<double> row;  ///< refit regression row (prediction roles)
    // Retry identity: a resubmission after a failed result must re-use this
    // entry instead of being re-counted as a fresh proposal.
    std::size_t site = 0;
    Vec3 old_direction;
    double current_energy = 0.0;
  };

  bool matches_retry(const InFlight& saved, const EnergyRequest& request) const;
  /// True when the accept decision is band-stable at `predicted` given the
  /// walker's current energy (requires an attached DosGrid).
  bool resolvable(double current_energy, double predicted) const;
  void dispatch_exact(EnergyRequest request, InFlight entry);
  void publish_gauges();

  std::unique_ptr<EnergyService> inner_;
  Speculator speculator_;
  const DosGrid* dos_ = nullptr;
  SpeculationStats stats_;
  double audit_accumulator_ = 0.0;
  std::map<std::uint64_t, InFlight> in_flight_;        ///< by ticket
  std::map<std::size_t, InFlight> retry_pending_;      ///< by walker
  std::deque<EnergyResult> ready_;  ///< locally resolved, not yet retrieved

  // Cached process-wide metrics (obs registry).
  obs::Counter& m_proposed_;
  obs::Counter& m_hits_;
  obs::Counter& m_audits_;
  obs::Counter& m_exact_;
  obs::Counter& m_retries_;
  obs::Counter& m_refits_;
  obs::Counter& m_trips_;
  obs::Gauge& m_hit_rate_;
  obs::Gauge& m_residual_rms_;
  obs::Gauge& m_tripped_;
  obs::Histogram& m_residual_;
  obs::Histogram& m_audit_mismatch_;
};

}  // namespace wlsms::wl
