#pragma once

/// \file multimaster.hpp
/// Multiple-master Wang-Landau — the scaling extension the paper sketches
/// in its outlook (§V): "for cases where the energy evaluation [is] very
/// fast ... we will try to distribute the work of the master, in order to
/// scale to large numbers of walkers without running into limitations of
/// Amdahl's law."
///
/// Implementation: K masters run concurrently on std::threads, each owning a
/// private DosGrid and a share of the walkers, all on identical energy
/// windows. Whenever a master's histogram goes flat the masters synchronize
/// at a barrier, their ln g estimates are merged (averaged bin-wise over the
/// union of visited bins), the merged estimate is broadcast back, gamma is
/// halved globally, and all histograms reset. Averaging independent ln g
/// estimates at equal gamma reduces the estimator variance like 1/K while
/// the walk itself parallelizes perfectly, which is exactly the property the
/// single-master throughput ablation (bench_ablation_masters) quantifies.

#include <cstddef>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "wl/dos_grid.hpp"
#include "wl/energy_function.hpp"
#include "wl/wanglandau.hpp"

namespace wlsms::wl {

/// Result of a multi-master run.
struct MultiMasterResult {
  DosGrid merged_dos;             ///< final merged estimate
  std::vector<WangLandauStats> per_master;
  std::size_t gamma_levels = 0;   ///< global gamma reductions performed
};

/// Merges ln g estimates bin-wise: the merged bin is the mean over the
/// masters that visited it; unvisited-by-all bins stay at zero. Exposed for
/// testing. All grids must share a layout.
DosGrid merge_dos_estimates(const std::vector<const DosGrid*>& estimates);

/// Runs `n_masters` masters of `walkers_per_master` walkers each until the
/// halving schedule reaches `gamma_final` (or each master hits
/// `max_steps_per_master`). `energy` must be safe for concurrent calls
/// (every backend in this library is: they are logically const).
MultiMasterResult run_multimaster(const EnergyFunction& energy,
                                  const WangLandauConfig& per_master_config,
                                  std::size_t n_masters, double gamma_final,
                                  Rng seed_rng);

}  // namespace wlsms::wl
