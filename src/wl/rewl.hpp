#pragma once

/// \file rewl.hpp
/// Replica-exchange windowed Wang-Landau (REWL).
///
/// The paper's outlook (§V) proposes distributing the master's work to
/// escape Amdahl's law; multimaster.hpp does that with K masters on
/// *identical* energy windows. The proven way to scale the random walk
/// itself is energy-domain decomposition: split the global window into
/// overlapping sub-windows, run independent Wang-Landau walkers per window,
/// and couple adjacent windows with replica-exchange moves, as in Vogel,
/// Li, Wuest & Landau (arXiv:1305.5615) and Perera, Li, Eisenbach et al.
/// (arXiv:1411.4212). A walker confined to a narrow window flattens its
/// histogram far sooner than one diffusing across the whole spectrum, so
/// the decomposition is a genuine algorithmic speedup on top of the
/// parallelism.
///
/// Determinism: each window owns a private Rng stream split from one root
/// seed and is advanced only by its own task between barrier-synchronized
/// rounds; exchanges are performed sequentially on the coordinating thread
/// from a dedicated stream. A fixed root seed therefore reproduces the
/// stitched ln g(E) bit-for-bit regardless of thread scheduling.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "wl/dos_grid.hpp"
#include "wl/energy_function.hpp"
#include "wl/schedule.hpp"
#include "wl/wanglandau.hpp"

namespace wlsms::wl {

/// One energy window of the decomposition, aligned to global grid bins so
/// stitched estimates map bin-for-bin onto the global grid.
struct RewlWindow {
  std::size_t first_bin = 0;  ///< global index of the window's first bin
  std::size_t n_bins = 0;     ///< bins in this window
  DosGridConfig grid;         ///< sub-grid (same bin width as the global grid)
};

/// Run parameters for a replica-exchange windowed run.
struct RewlConfig {
  /// Global grid plus the per-window WL knobs (flatness, check interval,
  /// walkers *per window*, step caps, update_on_rejection).
  WangLandauConfig base;
  std::size_t n_windows = 2;
  /// Fraction of a window's width shared with each neighbour (Vogel et al.
  /// use 75 %). Larger overlap improves exchange acceptance; smaller
  /// overlap shrinks the windows and accelerates per-window convergence.
  double overlap = 0.75;
  /// WL steps per walker between replica-exchange attempts.
  std::uint64_t exchange_interval = 2000;
  /// Safety cap on barrier rounds (each round is `exchange_interval` steps).
  std::size_t max_rounds = 1000000;
};

/// Result of a replica-exchange windowed run.
struct RewlResult {
  DosGrid stitched;                  ///< global estimate, min ln g = 0
  std::vector<RewlWindow> windows;   ///< the window layout used
  std::vector<DosGrid> window_dos;   ///< per-window final estimates
  std::vector<WangLandauStats> per_window;
  std::uint64_t exchange_attempts = 0;   ///< swaps proposed (both in overlap)
  std::uint64_t exchange_accepts = 0;    ///< swaps accepted
  std::uint64_t exchange_ineligible = 0; ///< proposals outside mutual overlap
  std::size_t rounds = 0;                ///< barrier rounds executed
};

/// Splits `global` into `n_windows` equal-width windows with the requested
/// pairwise overlap fraction, aligned to global bin boundaries. The first
/// window starts at bin 0, the last ends at the final bin, and adjacent
/// windows always share at least two bins (throws ContractError when the
/// grid is too coarse for the requested decomposition). n_windows = 1
/// returns the global grid unchanged.
std::vector<RewlWindow> make_rewl_windows(const DosGridConfig& global,
                                          std::size_t n_windows,
                                          double overlap);

/// Walks a random configuration into the energy band
/// [e_lo + margin, e_hi - margin], margin = `margin_fraction` * (e_hi - e_lo),
/// by greedily accepting single-moment moves that approach the band centre.
/// Deterministic given `rng`; throws ContractError if `max_steps` moves do
/// not reach the band (window outside the model's reachable spectrum).
spin::MomentConfiguration seed_configuration_in_band(
    const EnergyFunction& energy, double e_lo, double e_hi, Rng& rng,
    double margin_fraction = 0.25, std::uint64_t max_steps = 2000000);

/// Stitches per-window ln g estimates into one global grid: window 0 is
/// taken as-is; each later window is joined at the overlap bin where the
/// two windows' log-derivatives d(ln g)/dE agree best, shifted by the
/// additive constant that makes the estimates coincide there (ln g is only
/// defined up to a constant per window). The result is shifted so the
/// minimum over visited bins is zero. Exposed for testing.
DosGrid stitch_window_estimates(const DosGridConfig& global,
                                const std::vector<RewlWindow>& windows,
                                const std::vector<const DosGrid*>& estimates);

/// Runs replica-exchange windowed Wang-Landau: one WangLandau sampler per
/// window (walkers seeded inside the window), `exchange_interval` steps per
/// round on a thread pool, then a deterministic sweep of replica-exchange
/// attempts between adjacent windows with acceptance
///   min(1, g_i(E_i) g_j(E_j) / (g_i(E_j) g_j(E_i))),
/// alternating even/odd pairings per round. Terminates when every window's
/// schedule has converged (or its step cap is hit). `schedule_prototype` is
/// cloned per window. `energy` must be safe for concurrent calls.
RewlResult run_rewl(const EnergyFunction& energy, const RewlConfig& config,
                    const ModificationSchedule& schedule_prototype,
                    Rng root_rng);

}  // namespace wlsms::wl
