#include "wl/multimaster.hpp"

#include <thread>

#include "common/error.hpp"

namespace wlsms::wl {

DosGrid merge_dos_estimates(const std::vector<const DosGrid*>& estimates) {
  WLSMS_EXPECTS(!estimates.empty());
  const DosGrid& first = *estimates.front();
  DosGrid merged(first.config());

  std::vector<double> ln_g(first.bins(), 0.0);
  std::vector<std::uint8_t> visited(first.bins(), 0);
  for (std::size_t b = 0; b < first.bins(); ++b) {
    double sum = 0.0;
    std::size_t contributors = 0;
    for (const DosGrid* grid : estimates) {
      WLSMS_EXPECTS(grid->bins() == first.bins());
      if (!grid->visited()[b]) continue;
      sum += grid->ln_g_values()[b];
      ++contributors;
    }
    if (contributors > 0) {
      ln_g[b] = sum / static_cast<double>(contributors);
      visited[b] = 1;
    }
  }
  merged.set_ln_g_values(std::move(ln_g));
  merged.set_visited(std::move(visited));
  return merged;
}

MultiMasterResult run_multimaster(const EnergyFunction& energy,
                                  const WangLandauConfig& per_master_config,
                                  std::size_t n_masters, double gamma_final,
                                  Rng seed_rng) {
  WLSMS_EXPECTS(n_masters >= 1);
  WLSMS_EXPECTS(gamma_final > 0.0 && gamma_final < 1.0);

  MultiMasterResult result{DosGrid(per_master_config.grid), {}, 0};
  result.per_master.resize(n_masters);

  // Persistent per-master state across gamma levels.
  std::vector<std::vector<spin::MomentConfiguration>> walker_configs(n_masters);
  std::vector<DosGrid> master_dos;
  master_dos.reserve(n_masters);
  for (std::size_t m = 0; m < n_masters; ++m)
    master_dos.emplace_back(per_master_config.grid);
  std::vector<Rng> rngs;
  rngs.reserve(n_masters);
  for (std::size_t m = 0; m < n_masters; ++m)
    rngs.push_back(seed_rng.split(static_cast<unsigned>(m)));

  double gamma = 1.0;
  while (gamma > gamma_final) {
    // Each master runs at fixed `gamma` until its own histogram is flat
    // (one halving of a per-level schedule), in parallel.
    std::vector<std::thread> threads;
    threads.reserve(n_masters);
    for (std::size_t m = 0; m < n_masters; ++m) {
      threads.emplace_back([&, m] {
        auto schedule = std::make_unique<HalvingSchedule>(gamma, 0.6 * gamma);
        WangLandau sampler(energy, per_master_config, std::move(schedule),
                           rngs[m]);
        rngs[m].jump();  // fresh stream next level
        // Seed from the previous level's state.
        if (!walker_configs[m].empty())
          for (std::size_t w = 0; w < sampler.n_walkers(); ++w)
            sampler.set_walker(w, walker_configs[m][w]);
        sampler.dos().set_ln_g_values(master_dos[m].ln_g_values());
        sampler.dos().set_visited(master_dos[m].visited());

        sampler.run();

        result.per_master[m].total_steps += sampler.stats().total_steps;
        result.per_master[m].accepted_steps += sampler.stats().accepted_steps;
        result.per_master[m].out_of_range += sampler.stats().out_of_range;
        result.per_master[m].iterations += sampler.stats().iterations;
        master_dos[m].set_ln_g_values(sampler.dos().ln_g_values());
        master_dos[m].set_visited(sampler.dos().visited());
        walker_configs[m].clear();
        for (std::size_t w = 0; w < sampler.n_walkers(); ++w)
          walker_configs[m].push_back(sampler.walker_config(w));
      });
    }
    for (std::thread& t : threads) t.join();

    // Merge and broadcast.
    std::vector<const DosGrid*> views;
    views.reserve(n_masters);
    for (const DosGrid& d : master_dos) views.push_back(&d);
    DosGrid merged = merge_dos_estimates(views);
    for (DosGrid& d : master_dos) {
      d.set_ln_g_values(merged.ln_g_values());
      d.set_visited(merged.visited());
    }
    result.merged_dos = std::move(merged);

    gamma *= 0.5;
    ++result.gamma_levels;
  }
  return result;
}

}  // namespace wlsms::wl
