#pragma once

/// \file dos_grid.hpp
/// The estimated density of states ln g(E) and visit histogram H(E) on a
/// uniform energy grid.
///
/// This implements the continuous-variable extension of Wang-Landau the
/// paper uses (§II-A, eq. 8, following Zhou et al. PRL 96, 120201): instead
/// of the discrete ln g(E_i) += ln f update, the estimate is raised by a
/// kernel of compact support,
///
///   ln g(E') += gamma * k((E' - E)/delta),   k(x) = max(0, 1 - x^2),
///
/// with the Epanechnikov kernel k and width delta chosen as 2 % of the
/// system's energy range (ferromagnetic minimum to antiferromagnetic
/// maximum). The histogram records visits per bin; the flatness criterion
/// min H >= A mean H (eq. 7) is evaluated over the bins the walk has ever
/// visited, since a continuous system's reachable support is not known in
/// advance.

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace wlsms::wl {

/// Grid layout and kernel parameters.
struct DosGridConfig {
  double e_min = 0.0;    ///< lower edge of the energy window [Ry]
  double e_max = 1.0;    ///< upper edge of the energy window [Ry]
  std::size_t bins = 201;
  /// Kernel half-width delta as a fraction of (e_max - e_min).
  ///
  /// The paper quotes delta = 2 % of the energy range (eq. 8). A kernel that
  /// wide is only stable when the *bin* width is comparable to delta; with
  /// fine bins the spill-over raises bins the walk is being rejected from at
  /// the same rate as the bins it occupies, freezing ln g "walls" into the
  /// estimate (demonstrated quantitatively by bench_ablation_kernel and
  /// tests/test_wl_exact.cpp). The default therefore ties the kernel to half
  /// a bin width at the default bin count, which reproduces eq. 8's behaviour
  /// at matched delta/bin ratio while keeping fine energy resolution.
  double kernel_width_fraction = 0.0025;
};

/// ln g(E) estimate plus visit histogram on a uniform grid.
class DosGrid {
 public:
  explicit DosGrid(const DosGridConfig& config);

  const DosGridConfig& config() const { return config_; }
  std::size_t bins() const { return ln_g_.size(); }
  double e_min() const { return config_.e_min; }
  double e_max() const { return config_.e_max; }
  double bin_width() const { return bin_width_; }
  /// Kernel half-width delta [Ry].
  double kernel_width() const { return kernel_width_; }

  /// Centre energy of bin b.
  double bin_center(std::size_t b) const;

  /// True when E lies inside the grid window.
  bool contains(double e) const;

  /// Bin index of E; requires contains(e).
  std::size_t bin_index(double e) const;

  /// ln g at energy E, linearly interpolated between bin centres (clamped
  /// to the first/last centre). Requires contains(e).
  double ln_g(double e) const;

  /// One Wang-Landau visit at energy E with modification factor `gamma`:
  /// kernel-update ln g, increment H in E's bin, mark the bin visited.
  /// Returns true when E's bin was visited for the *first time* (support
  /// discovery) — samplers reset the histogram then, since flatness is only
  /// meaningful over a stable support. Requires contains(e).
  bool visit(double e, double gamma);

  /// Clears the histogram (kept ln g); called when the flatness criterion
  /// fires and gamma is reduced (paper Alg. 1 line 11).
  void reset_histogram();

  /// Flatness criterion of eq. 7, min H >= flatness_a * mean H, evaluated
  /// on the *kernel-smoothed* histogram over ever-visited bins.
  ///
  /// Rationale: the continuous-variable update (eq. 8) credits ln g to every
  /// bin within a kernel width of the visited energy, so bins near steep
  /// parts of the spectrum receive density they are never landed in for —
  /// their landing measure is suppressed in proportion. A raw per-bin count
  /// criterion therefore never fires. Crediting *visits* through the same
  /// Epanechnikov kernel restores the symmetry: the smoothed count
  /// H~(b) = sum_b' k((b'-b)/w) H(b') / sum_b' k((b'-b)/w) measures coverage
  /// at the resolution the estimator actually has. Regions unexplored on
  /// scales wider than the kernel still register as empty. The
  /// `min_mean_visits` guard keeps early iterations from passing on noise.
  bool is_flat(double flatness_a, double min_mean_visits = 10.0) const;

  /// The kernel-smoothed histogram used by is_flat (exposed for tests and
  /// diagnostics); entries for never-visited bins are zero.
  std::vector<double> smoothed_histogram() const;

  /// min/mean of the smoothed histogram over ever-visited bins — the left
  /// side of eq. 7 normalized by the mean, i.e. the quantity is_flat
  /// compares against flatness_a. Returns 0 with fewer than two visited
  /// bins. A run-health gauge: watching it climb toward flatness_a shows
  /// how close the current WL iteration is to converging.
  double flatness_ratio() const;

  /// Number of ever-visited bins.
  std::size_t visited_bins() const;

  /// Sum of the current histogram (visits since the last reset).
  std::uint64_t histogram_total() const;

  /// Raw accessors (diagnostics, serialization, thermodynamics).
  const std::vector<double>& ln_g_values() const { return ln_g_; }
  const std::vector<std::uint64_t>& histogram() const { return histogram_; }
  const std::vector<std::uint8_t>& visited() const { return visited_; }

  /// Overwrites the stored ln g values (checkpoint restore, merging).
  void set_ln_g_values(std::vector<double> values);
  /// Marks bins visited (checkpoint restore, merging).
  void set_visited(std::vector<std::uint8_t> visited);

  /// (E, ln g) series over visited bins, shifted so min ln g = 0 (the
  /// normalization constant g0 is unknown anyway, paper eq. 9/10).
  std::vector<std::pair<double, double>> visited_series() const;

 private:
  DosGridConfig config_;
  double bin_width_ = 0.0;
  double kernel_width_ = 0.0;
  std::vector<double> ln_g_;
  std::vector<std::uint64_t> histogram_;
  std::vector<std::uint8_t> visited_;
};

}  // namespace wlsms::wl
