#include "wl/joint_dos.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace wlsms::wl {

JointDos::JointDos(const JointDosConfig& config) : config_(config) {
  WLSMS_EXPECTS(config.e_max > config.e_min);
  WLSMS_EXPECTS(config.m_max > config.m_min);
  WLSMS_EXPECTS(config.e_bins >= 3 && config.m_bins >= 3);
  WLSMS_EXPECTS(config.e_kernel_fraction > 0.0 &&
                config.m_kernel_fraction > 0.0);
  e_width_ = (config.e_max - config.e_min) / static_cast<double>(config.e_bins);
  m_width_ = (config.m_max - config.m_min) / static_cast<double>(config.m_bins);
  e_kernel_ = config.e_kernel_fraction * (config.e_max - config.e_min);
  m_kernel_ = config.m_kernel_fraction * (config.m_max - config.m_min);
  const std::size_t cells = config.e_bins * config.m_bins;
  ln_g_.assign(cells, 0.0);
  histogram_.assign(cells, 0);
  visited_.assign(cells, 0);
}

double JointDos::e_center(std::size_t be) const {
  WLSMS_EXPECTS(be < config_.e_bins);
  return config_.e_min + (static_cast<double>(be) + 0.5) * e_width_;
}

double JointDos::m_center(std::size_t bm) const {
  WLSMS_EXPECTS(bm < config_.m_bins);
  return config_.m_min + (static_cast<double>(bm) + 0.5) * m_width_;
}

bool JointDos::contains(double e, double m) const {
  return e >= config_.e_min && e < config_.e_max && m >= config_.m_min &&
         m < config_.m_max;
}

double JointDos::ln_g(double e, double m) const {
  WLSMS_EXPECTS(contains(e, m));
  const double xe =
      std::clamp((e - config_.e_min) / e_width_ - 0.5, 0.0,
                 static_cast<double>(config_.e_bins - 1));
  const double xm =
      std::clamp((m - config_.m_min) / m_width_ - 0.5, 0.0,
                 static_cast<double>(config_.m_bins - 1));
  const auto be = std::min(static_cast<std::size_t>(xe), config_.e_bins - 2);
  const auto bm = std::min(static_cast<std::size_t>(xm), config_.m_bins - 2);
  const double fe = xe - static_cast<double>(be);
  const double fm = xm - static_cast<double>(bm);
  // Bilinear interpolation restricted to *visited* corners (same rationale
  // as DosGrid::ln_g: unvisited cells carry only spill-over and would make
  // support-edge states look spuriously probable). Unvisited corners are
  // dropped and the weights renormalized; with no visited corner the raw
  // average is returned (fresh-territory proposal).
  const std::size_t cells[4] = {cell(be, bm), cell(be, bm + 1),
                                cell(be + 1, bm), cell(be + 1, bm + 1)};
  const double weights[4] = {(1 - fe) * (1 - fm), (1 - fe) * fm,
                             fe * (1 - fm), fe * fm};
  double value = 0.0;
  double weight_sum = 0.0;
  for (int c = 0; c < 4; ++c) {
    if (!visited_[cells[c]]) continue;
    value += weights[c] * ln_g_[cells[c]];
    weight_sum += weights[c];
  }
  if (weight_sum <= 0.0) {
    for (int c = 0; c < 4; ++c) value += weights[c] * ln_g_[cells[c]];
    return value;
  }
  return value / weight_sum;
}

bool JointDos::visit(double e, double m, double gamma) {
  WLSMS_EXPECTS(contains(e, m));
  WLSMS_EXPECTS(gamma >= 0.0);

  const auto be_of = [&](double x) {
    const double b = (x - config_.e_min) / e_width_;
    return std::clamp(b, 0.0, static_cast<double>(config_.e_bins - 1));
  };
  const auto bm_of = [&](double x) {
    const double b = (x - config_.m_min) / m_width_;
    return std::clamp(b, 0.0, static_cast<double>(config_.m_bins - 1));
  };

  const auto be_lo = static_cast<std::size_t>(be_of(e - e_kernel_));
  const auto be_hi = static_cast<std::size_t>(be_of(e + e_kernel_));
  const auto bm_lo = static_cast<std::size_t>(bm_of(m - m_kernel_));
  const auto bm_hi = static_cast<std::size_t>(bm_of(m + m_kernel_));
  for (std::size_t be = be_lo; be <= be_hi; ++be) {
    const double xe = (e_center(be) - e) / e_kernel_;
    const double ke = 1.0 - xe * xe;
    if (ke <= 0.0) continue;
    for (std::size_t bm = bm_lo; bm <= bm_hi; ++bm) {
      const double xm = (m_center(bm) - m) / m_kernel_;
      const double km = 1.0 - xm * xm;
      if (km <= 0.0) continue;
      ln_g_[cell(be, bm)] += gamma * ke * km;
    }
  }

  const auto hit_e = static_cast<std::size_t>(be_of(e));
  const auto hit_m = static_cast<std::size_t>(bm_of(m));
  const std::size_t hit = cell(hit_e, hit_m);
  ++histogram_[hit];
  const bool newly_visited = (visited_[hit] == 0);
  visited_[hit] = 1;
  return newly_visited;
}

void JointDos::reset_histogram() {
  std::fill(histogram_.begin(), histogram_.end(), 0);
}

bool JointDos::is_flat(double flatness_a, double min_mean_visits) const {
  WLSMS_EXPECTS(flatness_a > 0.0 && flatness_a < 1.0);
  std::uint64_t min_count = ~std::uint64_t{0};
  std::uint64_t sum = 0;
  std::size_t n_hit = 0;
  for (std::uint64_t h : histogram_) {
    if (h == 0) continue;
    ++n_hit;
    sum += h;
    min_count = std::min(min_count, h);
  }
  if (n_hit < 2) return false;
  const double mean = static_cast<double>(sum) / static_cast<double>(n_hit);
  if (mean < min_mean_visits) return false;
  return static_cast<double>(min_count) >= flatness_a * mean;
}

std::size_t JointDos::hit_cells() const {
  std::size_t n = 0;
  for (std::uint64_t h : histogram_) n += (h > 0);
  return n;
}

std::size_t JointDos::visited_cells() const {
  std::size_t n = 0;
  for (std::uint8_t v : visited_) n += v;
  return n;
}

double JointDos::cell_ln_g(std::size_t be, std::size_t bm) const {
  WLSMS_EXPECTS(be < config_.e_bins && bm < config_.m_bins);
  return ln_g_[cell(be, bm)];
}

bool JointDos::cell_visited(std::size_t be, std::size_t bm) const {
  WLSMS_EXPECTS(be < config_.e_bins && bm < config_.m_bins);
  return visited_[cell(be, bm)] != 0;
}

std::uint64_t JointDos::cell_hits(std::size_t be, std::size_t bm) const {
  WLSMS_EXPECTS(be < config_.e_bins && bm < config_.m_bins);
  return histogram_[cell(be, bm)];
}

}  // namespace wlsms::wl
