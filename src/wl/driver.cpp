#include "wl/driver.hpp"

#include <cmath>

#include "common/error.hpp"

namespace wlsms::wl {

WlDriver::WlDriver(std::size_t n_sites, EnergyService& service,
                   const WangLandauConfig& config,
                   std::unique_ptr<ModificationSchedule> schedule, Rng rng)
    : service_(service),
      config_(config),
      dos_(config.grid),
      schedule_(std::move(schedule)),
      rng_(rng) {
  WLSMS_EXPECTS(n_sites >= 1);
  WLSMS_EXPECTS(config.n_walkers >= 1);
  WLSMS_EXPECTS(schedule_ != nullptr);

  walkers_.resize(config.n_walkers);
  for (std::size_t w = 0; w < walkers_.size(); ++w) {
    walkers_[w].current = spin::MomentConfiguration::random(n_sites, rng_);
    submit_initial(w);
  }
}

void WlDriver::submit_initial(std::size_t w) {
  Walker& walker = walkers_[w];
  walker.trial = walker.current;
  walker.ticket = next_ticket_++;
  service_.submit({w, walker.ticket, walker.trial});
}

void WlDriver::submit_trial(std::size_t w) {
  Walker& walker = walkers_[w];
  walker.pending_move = move_generator_.propose(walker.current, rng_);
  walker.trial = walker.current;
  walker.trial.set(walker.pending_move.site, walker.pending_move.new_direction);
  walker.ticket = next_ticket_++;
  service_.submit({w, walker.ticket, walker.trial});
}

void WlDriver::record_visit(Walker& walker) {
  if (dos_.visit(walker.energy, schedule_->gamma())) dos_.reset_histogram();
  schedule_->on_step(stats_.total_steps);
  ++iteration_steps_;

  const std::uint64_t cap = config_.max_iteration_steps > 0
                                ? config_.max_iteration_steps
                                : 1000 * dos_.bins();
  if (stats_.total_steps % config_.check_interval == 0) {
    const bool flat = dos_.is_flat(config_.flatness);
    if (flat || iteration_steps_ >= cap) {
      schedule_->on_flat_histogram(stats_.total_steps);
      dos_.reset_histogram();
      ++stats_.iterations;
      if (!flat) ++stats_.forced_iterations;
      iteration_steps_ = 0;
    }
  }
}

void WlDriver::process(const EnergyResult& result) {
  WLSMS_EXPECTS(result.walker < walkers_.size());
  Walker& walker = walkers_[result.walker];
  // Results for superseded tickets cannot occur: one request per walker is
  // in flight at any time.
  WLSMS_EXPECTS(result.ticket == walker.ticket);

  if (result.failed) {
    // Resilience: the computing instance died; repost the same trial.
    ++stats_.resubmissions;
    walker.ticket = next_ticket_++;
    service_.submit({result.walker, walker.ticket, walker.trial});
    return;
  }

  if (!walker.seeded) {
    // First energy of the walker's starting configuration.
    walker.energy = result.energy;
    WLSMS_EXPECTS(dos_.contains(walker.energy));
    walker.seeded = true;
    submit_trial(result.walker);
    return;
  }

  ++stats_.total_steps;
  if (!dos_.contains(result.energy)) {
    ++stats_.out_of_range;
  } else {
    const double ln_ratio = dos_.ln_g(walker.energy) - dos_.ln_g(result.energy);
    if (ln_ratio >= 0.0 || rng_.uniform() < std::exp(ln_ratio)) {
      walker.current = walker.trial;
      walker.energy = result.energy;
      ++stats_.accepted_steps;
    }
  }
  record_visit(walker);
  submit_trial(result.walker);
}

const DriverStats& WlDriver::run() {
  while (!schedule_->converged() && stats_.total_steps < config_.max_steps) {
    process(service_.retrieve());
  }
  // Drain so the service is idle when we hand it back.
  while (service_.outstanding() > 0) (void)service_.retrieve();
  return stats_;
}

}  // namespace wlsms::wl
