#include "wl/driver.hpp"

#include <cmath>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "wl/speculator.hpp"

namespace wlsms::wl {

WlDriver::WlDriver(std::size_t n_sites, EnergyService& service,
                   const WangLandauConfig& config,
                   std::unique_ptr<ModificationSchedule> schedule, Rng rng)
    : service_(service),
      config_(config),
      dos_(config.grid),
      schedule_(std::move(schedule)),
      rng_(rng) {
  WLSMS_EXPECTS(n_sites >= 1);
  WLSMS_EXPECTS(config.n_walkers >= 1);
  WLSMS_EXPECTS(schedule_ != nullptr);

  // A speculating service screens proposals against the live ln g estimate;
  // hand it ours. The driver outlives every run() call, so the pointer stays
  // valid for the whole working life of the service.
  if (auto* speculative = dynamic_cast<SpeculativeEnergyService*>(&service))
    speculative->attach_dos(&dos_);

  walkers_.resize(config.n_walkers);
  for (std::size_t w = 0; w < walkers_.size(); ++w) {
    walkers_[w].current = spin::MomentConfiguration::random(n_sites, rng_);
    submit_initial(w);
  }
}

void WlDriver::submit_initial(std::size_t w) {
  Walker& walker = walkers_[w];
  walker.trial = walker.current;
  walker.ticket = next_ticket_++;
  EnergyRequest request{w, walker.ticket, walker.trial};
  request.trace = obs::current_trace_context();
  service_.submit(std::move(request));
}

void WlDriver::submit_trial(std::size_t w) {
  Walker& walker = walkers_[w];
  walker.pending_move = move_generator_.propose(walker.current, rng_);
  walker.trial = walker.current;
  walker.trial.set(walker.pending_move.site, walker.pending_move.new_direction);
  walker.ticket = next_ticket_++;
  service_.submit(trial_request(w));
}

EnergyRequest WlDriver::trial_request(std::size_t w) const {
  const Walker& walker = walkers_[w];
  EnergyRequest request{w, walker.ticket, walker.trial};
  request.trace = obs::current_trace_context();
  request.hint.valid = true;
  request.hint.current_energy = walker.energy;
  request.hint.site = walker.pending_move.site;
  request.hint.old_direction = walker.current[walker.pending_move.site];
  return request;
}

void WlDriver::record_visit(Walker& walker) {
  if (dos_.visit(walker.energy, schedule_->gamma())) dos_.reset_histogram();
  schedule_->on_step(stats_.total_steps);
  ++iteration_steps_;

  const std::uint64_t cap = config_.max_iteration_steps > 0
                                ? config_.max_iteration_steps
                                : 1000 * dos_.bins();
  if (stats_.total_steps % config_.check_interval == 0) {
    {
      const obs::Span span("wl.flatness_check");
      const bool flat = dos_.is_flat(config_.flatness);
      if (flat || iteration_steps_ >= cap) {
        schedule_->on_flat_histogram(stats_.total_steps);
        dos_.reset_histogram();
        ++stats_.iterations;
        if (!flat) ++stats_.forced_iterations;
        iteration_steps_ = 0;
      }
    }
    publish_metrics();
  }
}

void WlDriver::publish_metrics() {
  // Batched at flatness-check boundaries (same discipline as WangLandau):
  // the per-result hot path costs nothing, and counters take deltas against
  // what was already published so multiple drivers sum correctly.
  static obs::Counter& steps = obs::Registry::instance().counter("wl.steps");
  static obs::Counter& accepted =
      obs::Registry::instance().counter("wl.accepted_steps");
  static obs::Counter& out_of_range =
      obs::Registry::instance().counter("wl.out_of_range");
  static obs::Counter& iterations =
      obs::Registry::instance().counter("wl.iterations");
  static obs::Counter& resubmissions =
      obs::Registry::instance().counter("wl.resubmissions");
  static obs::Gauge& acceptance_rate =
      obs::Registry::instance().gauge("wl.acceptance_rate");
  static obs::Gauge& flatness_ratio =
      obs::Registry::instance().gauge("wl.flatness_ratio");
  static obs::Gauge& ln_f = obs::Registry::instance().gauge("wl.ln_f");

  steps.add(stats_.total_steps - published_.total_steps);
  accepted.add(stats_.accepted_steps - published_.accepted_steps);
  out_of_range.add(stats_.out_of_range - published_.out_of_range);
  iterations.add(stats_.iterations - published_.iterations);
  resubmissions.add(stats_.resubmissions - published_.resubmissions);
  published_ = stats_;

  if (stats_.total_steps > 0)
    acceptance_rate.set(static_cast<double>(stats_.accepted_steps) /
                        static_cast<double>(stats_.total_steps));
  flatness_ratio.set(dos_.flatness_ratio());
  ln_f.set(schedule_->gamma());
}

void WlDriver::process(const EnergyResult& result) {
  WLSMS_EXPECTS(result.walker < walkers_.size());
  Walker& walker = walkers_[result.walker];
  // Results for superseded tickets cannot occur: one request per walker is
  // in flight at any time.
  WLSMS_EXPECTS(result.ticket == walker.ticket);

  if (result.failed) {
    // Resilience: the computing instance died; repost the same trial. A
    // seeded walker's repost carries the same move provenance, so a
    // screening decorator recognizes it as a retry, not a fresh proposal.
    ++stats_.resubmissions;
    walker.ticket = next_ticket_++;
    EnergyRequest repost = walker.seeded
                               ? trial_request(result.walker)
                               : EnergyRequest{result.walker, walker.ticket,
                                               walker.trial};
    repost.trace = obs::current_trace_context();
    service_.submit(std::move(repost));
    return;
  }

  if (!walker.seeded) {
    // First energy of the walker's starting configuration.
    walker.energy = result.energy;
    WLSMS_EXPECTS(dos_.contains(walker.energy));
    walker.seeded = true;
    submit_trial(result.walker);
    return;
  }

  ++stats_.total_steps;
  if (!dos_.contains(result.energy)) {
    ++stats_.out_of_range;
  } else {
    const double ln_ratio = dos_.ln_g(walker.energy) - dos_.ln_g(result.energy);
    if (ln_ratio >= 0.0 || rng_.uniform() < std::exp(ln_ratio)) {
      walker.current = walker.trial;
      walker.energy = result.energy;
      ++stats_.accepted_steps;
    }
  }
  record_visit(walker);
  submit_trial(result.walker);
}

const DriverStats& WlDriver::run() {
  // One wl.sweep span per flatness-check interval of processed results.
  while (!schedule_->converged() && stats_.total_steps < config_.max_steps) {
    const obs::Span span("wl.sweep");
    const std::uint64_t target = stats_.total_steps + config_.check_interval;
    while (!schedule_->converged() && stats_.total_steps < config_.max_steps &&
           stats_.total_steps < target) {
      process(service_.retrieve());
    }
  }
  // Drain so the service is idle when we hand it back.
  while (service_.outstanding() > 0) (void)service_.retrieve();
  // Final flush: counts accumulated since the last check boundary.
  publish_metrics();
  return stats_;
}

}  // namespace wlsms::wl
