#pragma once

/// \file checkpoint.hpp
/// Checkpoint/restart for Wang-Landau state. Production WL-LSMS runs consume
/// millions of core hours (paper Table I: 4.9M for 250 atoms), so the
/// density-of-states estimate, the histogram, the schedule state and the
/// walker configurations must survive job boundaries.
///
/// The format is the shared versioned binary schema of common/serial.hpp
/// (header magic + schema version + kCheckpoint payload) — the same framing
/// the comm wire protocol uses, so there is exactly one serialization
/// convention in the codebase. Loads fail loudly on truncation, corruption,
/// or a schema-version mismatch; walker configurations round-trip
/// bit-exactly (the retired v1 text layout did not).

#include <iosfwd>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "spin/moments.hpp"
#include "wl/dos_grid.hpp"

namespace wlsms::wl {

/// Everything needed to resume a run.
struct Checkpoint {
  DosGridConfig grid;
  std::vector<double> ln_g;
  std::vector<std::uint64_t> histogram;
  std::vector<std::uint8_t> visited;
  double gamma = 1.0;
  std::uint64_t total_steps = 0;
  std::vector<spin::MomentConfiguration> walkers;
};

/// Serializes `checkpoint` to `out`.
void write_checkpoint(std::ostream& out, const Checkpoint& checkpoint);

/// Parses a checkpoint; throws CheckpointError on malformed input.
Checkpoint read_checkpoint(std::istream& in);

/// File-based convenience wrappers.
void save_checkpoint(const std::string& path, const Checkpoint& checkpoint);
Checkpoint load_checkpoint(const std::string& path);

/// Builds a checkpoint from a grid (+ schedule state and walkers).
Checkpoint make_checkpoint(const DosGrid& dos, double gamma,
                           std::uint64_t total_steps,
                           std::vector<spin::MomentConfiguration> walkers);

/// Restores `dos` (must have been constructed with checkpoint.grid).
void restore_dos(const Checkpoint& checkpoint, DosGrid& dos);

/// Thrown on malformed, truncated, or version-mismatched checkpoint data.
class CheckpointError : public Error {
 public:
  explicit CheckpointError(const std::string& what) : Error(what) {}
};

}  // namespace wlsms::wl
