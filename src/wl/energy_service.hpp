#pragma once

/// \file energy_service.hpp
/// The driver <-> LSMS-instance message protocol.
///
/// In the paper (§II-C, Fig. 3) a single Wang-Landau process submits spin
/// configurations to M independent LSMS instances and receives the energies
/// back "in an order that differs from the one in which they were
/// submitted". EnergyService is that boundary: submit() posts a
/// configuration, retrieve() blocks for the next completed result, with no
/// ordering guarantee. Implementations here are single-threaded (exact and
/// deliberately-reordering variants for tests); src/parallel adds the real
/// thread-pool instance farm and a failure-injecting decorator.

#include <cstdint>
#include <deque>
#include <vector>

#include "common/rng.hpp"
#include "obs/trace.hpp"
#include "spin/moments.hpp"
#include "wl/energy_function.hpp"

namespace wlsms::wl {

/// Move provenance attached to a trial-configuration request: everything a
/// screening decorator (wl/speculator.hpp) needs to price the move with an
/// O(coordination) surrogate instead of a full evaluation. The driver fills
/// it for every trial proposal (it owns the data and the cost is O(1));
/// non-screening services simply ignore it, and it never crosses a wire —
/// the wire codecs ship the plain request, because every inner service only
/// ever sees moves the decorator already chose to evaluate exactly.
struct SpeculationHint {
  bool valid = false;          ///< false for seeds and raw (non-move) evals
  double current_energy = 0.0; ///< energy of the pre-move configuration
  std::size_t site = 0;        ///< the single site the move touched
  Vec3 old_direction;          ///< its direction before the move
};

/// A posted energy calculation.
struct EnergyRequest {
  std::size_t walker = 0;      ///< which walker's configuration this is
  std::uint64_t ticket = 0;    ///< driver-assigned id, echoed in the result
  spin::MomentConfiguration config;
  /// Originating session identity (0 = the single local tenant). The
  /// serving daemon multiplexes many tenants over one service; downstream
  /// per-walker state — the distributed delta-scatter caches — must key on
  /// (session, walker) so two tenants with equal walker ids cannot alias.
  std::uint64_t session = 0;
  /// Originating span (obs::current_trace_context() at submit time), carried
  /// across process boundaries so worker-rank and daemon spans link under
  /// the driver span in a merged trace. Zero/zero when tracing is off.
  obs::TraceContext trace = {};
  SpeculationHint hint = {};  ///< move provenance for screening decorators
};

/// A completed (or failed) energy calculation.
struct EnergyResult {
  std::size_t walker = 0;
  std::uint64_t ticket = 0;
  double energy = 0.0;
  bool failed = false;  ///< the computing instance died (resilience path)
};

/// Asynchronous energy evaluation boundary.
class EnergyService {
 public:
  virtual ~EnergyService() = default;

  /// Posts a request; never blocks.
  virtual void submit(EnergyRequest request) = 0;

  /// Blocks until some posted request completes and returns its result.
  /// Order is implementation-defined. Calling with nothing outstanding
  /// throws wlsms::Error (every implementation enforces this — there is
  /// nothing to block on, and a silent hang would look like a lost rank).
  virtual EnergyResult retrieve() = 0;

  /// Requests posted but not yet retrieved.
  virtual std::size_t outstanding() const = 0;
};

/// In-order single-threaded service: retrieve() computes and returns the
/// oldest posted request. Deterministic; the validation reference.
class SynchronousEnergyService final : public EnergyService {
 public:
  explicit SynchronousEnergyService(const EnergyFunction& energy);

  void submit(EnergyRequest request) override;
  EnergyResult retrieve() override;
  std::size_t outstanding() const override { return queue_.size(); }

 private:
  const EnergyFunction& energy_;
  std::deque<EnergyRequest> queue_;
};

/// Single-threaded service that returns results in *random* order, emulating
/// the out-of-order arrival of the parallel machine deterministically:
/// retrieve() completes a uniformly random outstanding request.
class ReorderingEnergyService final : public EnergyService {
 public:
  ReorderingEnergyService(const EnergyFunction& energy, Rng rng);

  void submit(EnergyRequest request) override;
  EnergyResult retrieve() override;
  std::size_t outstanding() const override { return buffer_.size(); }

 private:
  const EnergyFunction& energy_;
  Rng rng_;
  std::vector<EnergyRequest> buffer_;
};

}  // namespace wlsms::wl
