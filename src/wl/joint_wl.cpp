#include "wl/joint_wl.hpp"

#include <cmath>

#include "common/error.hpp"

namespace wlsms::wl {

JointWangLandau::JointWangLandau(const EnergyFunction& energy,
                                 const JointWangLandauConfig& config,
                                 std::unique_ptr<ModificationSchedule> schedule,
                                 Rng rng)
    : energy_(energy),
      config_(config),
      dos_(config.grid),
      schedule_(std::move(schedule)),
      rng_(rng) {
  WLSMS_EXPECTS(schedule_ != nullptr);
  WLSMS_EXPECTS(config.flatness > 0.0 && config.flatness < 1.0);
  config_w_ = spin::MomentConfiguration::random(energy_.n_sites(), rng_);
  energy_w_ = energy_.total_energy(config_w_);
  m_w_ = config_w_.magnetization_z();
  WLSMS_EXPECTS(dos_.contains(energy_w_, m_w_));
}

bool JointWangLandau::step() {
  if (converged() || stats_.total_steps >= config_.max_steps) return false;

  const spin::TrialMove move = move_generator_.propose(config_w_, rng_);
  const double e_new = energy_.energy_after_move(config_w_, move, energy_w_);
  // M_z after a single-moment update follows from the old total moment.
  const double n = static_cast<double>(config_w_.size());
  const double m_new =
      m_w_ + (move.new_direction.normalized().z - config_w_[move.site].z) / n;
  ++stats_.total_steps;

  if (!dos_.contains(e_new, m_new)) {
    ++stats_.out_of_range;
  } else {
    const double ln_ratio = dos_.ln_g(energy_w_, m_w_) - dos_.ln_g(e_new, m_new);
    if (ln_ratio >= 0.0 || rng_.uniform() < std::exp(ln_ratio)) {
      config_w_.set(move.site, move.new_direction);
      energy_w_ = e_new;
      m_w_ = m_new;
      ++stats_.accepted_steps;
    }
  }

  // Refresh the incrementally tracked E and M_z periodically so floating-
  // point drift cannot accumulate over long walks.
  if (stats_.total_steps % (1u << 20) == 0) {
    energy_w_ = energy_.total_energy(config_w_);
    m_w_ = config_w_.magnetization_z();
  }

  if (dos_.visit(energy_w_, m_w_, schedule_->gamma())) dos_.reset_histogram();
  schedule_->on_step(stats_.total_steps);
  ++iteration_steps_;

  const std::uint64_t cap = config_.max_iteration_steps > 0
                                ? config_.max_iteration_steps
                                : 1000 * dos_.e_bins() * dos_.m_bins();
  if (stats_.total_steps % config_.check_interval == 0) {
    // Flatness over currently-hit cells, guarded against a spuriously
    // shrunken support: the hit-cell count must stay near the previous
    // iteration's (a trapped walk covers far fewer cells and must not look
    // flat just because its few cells are even).
    const std::size_t hit = dos_.hit_cells();
    const bool coverage_ok =
        previous_hit_cells_ == 0 ||
        hit >= (3 * previous_hit_cells_) / 4;
    const bool flat = coverage_ok && dos_.is_flat(config_.flatness);
    if (flat || iteration_steps_ >= cap) {
      previous_hit_cells_ = std::max(previous_hit_cells_, hit);
      schedule_->on_flat_histogram(stats_.total_steps);
      dos_.reset_histogram();
      ++stats_.iterations;
      if (!flat) ++stats_.forced_iterations;
      iteration_steps_ = 0;
    }
  }
  return !converged() && stats_.total_steps < config_.max_steps;
}

const JointWangLandauStats& JointWangLandau::run() {
  while (step()) {
  }
  return stats_;
}

}  // namespace wlsms::wl
